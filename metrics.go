package hbo

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Metrics is a full window measurement, including the extension metrics
// (platform power, frame rate, die temperature) beyond the paper's Q and ε.
type Metrics struct {
	// Quality is Eq. 2's average virtual-object quality.
	Quality float64
	// Epsilon is Eq. 4's normalized AI latency.
	Epsilon float64
	// Reward is Eq. 3's B = Q − w·ε.
	Reward float64
	// AveragePowerW is the platform's mean power over the window.
	AveragePowerW float64
	// FPS is the renderer's achieved frame rate under the window's load.
	FPS float64
	// TemperatureC is the die temperature at the end of the window (zero
	// unless EnableThermal was called).
	TemperatureC float64
	// DeadlineMissRate is the fraction of inferences delivered after the
	// next request was already due (stale perception results).
	DeadlineMissRate float64
	// PerTaskLatencyMS maps task ID to its mean inference latency.
	PerTaskLatencyMS map[string]float64
	// TriangleRatio is the scene's total triangle ratio during the window.
	TriangleRatio float64
}

// MeasureMetrics runs the simulator for windowMS and returns the full
// metrics set (Measure returns just the paper's three).
func (a *App) MeasureMetrics(windowMS float64) (Metrics, error) {
	m, err := a.built.Runtime.Measure(windowMS)
	if err != nil {
		return Metrics{}, err
	}
	out := Metrics{
		Quality:          m.Quality,
		Epsilon:          m.Epsilon,
		Reward:           m.Reward(a.cfg.Weight),
		AveragePowerW:    m.AveragePowerW,
		FPS:              m.FPS,
		TemperatureC:     a.built.System.Temperature(),
		DeadlineMissRate: m.DeadlineMissRate,
		PerTaskLatencyMS: m.PerTaskLatency,
		TriangleRatio:    a.built.Scene.TotalRatio(),
	}
	return out, nil
}

// EnableThermal switches on the opt-in thermal model: sustained load heats
// the die and the simulated governor throttles capacity, as on a passively
// cooled phone. Call before running; disabled by default so the calibrated
// paper experiments are untouched.
func (a *App) EnableThermal() {
	a.built.System.SetThermal(soc.DefaultThermal())
}

// SetAllocation pins one AI task to a resource ("CPU", "GPU", "NNAPI")
// manually, bypassing the optimizer — useful for building custom baselines.
func (a *App) SetAllocation(taskID, resource string) error {
	var r tasks.Resource
	switch resource {
	case "CPU":
		r = tasks.CPU
	case "GPU":
		r = tasks.GPU
	case "NNAPI":
		r = tasks.NNAPI
	default:
		return fmt.Errorf("hbo: unknown resource %q (want CPU, GPU or NNAPI)", resource)
	}
	return a.built.System.SetAllocation(taskID, r)
}

// SetTriangleRatio redistributes the scene's triangles to the given total
// ratio using the paper's sensitivity-weighted TD, leaving allocations
// untouched.
func (a *App) SetTriangleRatio(x float64) error {
	if err := alloc.DistributeTriangles(a.built.Scene.Objects(), x); err != nil {
		return err
	}
	a.built.Runtime.SyncRenderLoad()
	return nil
}

// SetInView marks an object as inside (true) or outside (false) the camera
// frustum: hidden objects stop contributing render load and perceived
// quality but stay placed, modeling the user turning away.
func (a *App) SetInView(objectID string, inView bool) error {
	o, err := a.built.Scene.Object(objectID)
	if err != nil {
		return err
	}
	o.OutOfView = !inView
	a.built.Runtime.SyncRenderLoad()
	return nil
}
