// Command hbocalibrate sweeps the SoC contention knobs and scores each
// candidate against the paper's headline shape targets on SC1-CF1
// (Fig. 5 / Fig. 6c):
//
//	ε_HBO ≈ 0.69, ε_SMQ/ε_HBO ≈ 1.5, ε_BNT/ε_HBO ≈ 2.2, ε_AllN/ε_HBO ≈ 3.5
//
// It exists because the paper's absolute numbers come from physical phones;
// the simulator's free constants must be fitted once, and this tool makes
// that fit reproducible instead of hand-tuned. Run with -top to control how
// many best candidates are printed.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"sort"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

type knobs struct {
	CPURender     float64
	RenderPerMTri float64
	NNAPIDelta    float64 // subtracted from the NPU fraction of NNAPI-affine models
	NNAPIContend  float64
	MaxRender     float64
}

type outcome struct {
	K                                 knobs
	HBO, SMQ, SML, BNT, AllN, Quality float64
	Score                             float64
}

func main() {
	top := flag.Int("top", 5, "number of best candidates to print")
	flag.Parse()
	if err := run(*top); err != nil {
		fmt.Fprintf(os.Stderr, "hbocalibrate: %v\n", err)
		os.Exit(1)
	}
}

func run(top int) error {
	var results []outcome
	for _, cpuRender := range []float64{0.5, 1.0} {
		for _, perMTri := range []float64{0.5, 0.65, 0.8, 0.95} {
			for _, delta := range []float64{0.15, 0.25, 0.35} {
				for _, contend := range []float64{2.5, 4, 6} {
					for _, maxRender := range []float64{0.80, 0.92} {
						k := knobs{
							CPURender:     cpuRender,
							RenderPerMTri: perMTri,
							NNAPIDelta:    delta,
							NNAPIContend:  contend,
							MaxRender:     maxRender,
						}
						o, err := evaluate(k)
						if err != nil {
							return err
						}
						results = append(results, o)
					}
				}
			}
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Score < results[j].Score })
	fmt.Println("score  cpuR perMTri dNPU cont maxR |   eps: HBO   SMQ   SML   BNT  AllN | ratios SMQ/BNT/AllN")
	for i := 0; i < top && i < len(results); i++ {
		o := results[i]
		fmt.Printf("%.3f  %.2f  %.2f   %.2f %.1f %.2f | %6.2f %5.2f %5.2f %5.2f %5.2f | %4.1fx %4.1fx %4.1fx\n",
			o.Score, o.K.CPURender, o.K.RenderPerMTri, o.K.NNAPIDelta, o.K.NNAPIContend, o.K.MaxRender,
			o.HBO, o.SMQ, o.SML, o.BNT, o.AllN, o.SMQ/o.HBO, o.BNT/o.HBO, o.AllN/o.HBO)
	}
	return nil
}

// device builds a Pixel 7 profile with the candidate knobs applied.
func device(k knobs) *soc.DeviceProfile {
	dev := soc.Pixel7()
	dev.CPURenderLoad = k.CPURender
	dev.RenderUtilPerMTri = k.RenderPerMTri
	dev.NNAPIContentionMS = k.NNAPIContend
	dev.MaxRenderUtil = k.MaxRender
	for _, name := range []string{tasks.MobileNetDetV1, tasks.EfficientLiteV0, tasks.MobileNetV1, tasks.InceptionV1Q} {
		m := dev.Models[name]
		m.NPUFraction -= k.NNAPIDelta
		if m.NPUFraction < 0.2 {
			m.NPUFraction = 0.2
		}
		dev.Models[name] = m
	}
	return dev
}

func evaluate(k knobs) (outcome, error) {
	dev := device(k)
	set := tasks.CF1()
	prof, err := soc.ProfileTaskset(dev, set, 1)
	if err != nil {
		return outcome{}, err
	}
	lib, err := render.LibraryFor(render.SC1(), 1)
	if err != nil {
		return outcome{}, err
	}

	measure := func(a alloc.Assignment, x float64) (core.Measurement, error) {
		eng := sim.NewEngine(42)
		sys := soc.NewSystem(eng, dev, soc.DefaultConfig())
		scene := render.NewScene(lib)
		if err := scene.PlaceAll(render.SC1(), 1.5); err != nil {
			return core.Measurement{}, err
		}
		rt, err := core.NewRuntime(sys, scene, prof, set)
		if err != nil {
			return core.Measurement{}, err
		}
		if err := rt.ApplyAllocation(a); err != nil {
			return core.Measurement{}, err
		}
		if err := alloc.DistributeTriangles(scene.Objects(), x); err != nil {
			return core.Measurement{}, err
		}
		rt.SyncRenderLoad()
		sys.RunFor(1000)
		return rt.Measure(5000)
	}

	hboAlloc := alloc.Assignment{
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.CPU, "model-metadata": tasks.CPU, "model-metadata_2": tasks.CPU,
	}
	staticAlloc := alloc.Assignment{
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.GPU, "model-metadata": tasks.GPU, "model-metadata_2": tasks.GPU,
	}
	bntAlloc := alloc.Assignment{ // Table IV BNT column: x stays at 1
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.CPU, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.CPU, "model-metadata": tasks.CPU, "model-metadata_2": tasks.CPU,
	}
	bntAlt := hboAlloc // same allocation as HBO but forced to x = 1
	allN := alloc.Assignment{
		"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
		"mnist": tasks.NNAPI, "model-metadata": tasks.NNAPI, "model-metadata_2": tasks.NNAPI,
	}

	hbo, err := measure(hboAlloc, 0.72)
	if err != nil {
		return outcome{}, err
	}
	smq, err := measure(staticAlloc, 0.72)
	if err != nil {
		return outcome{}, err
	}
	sml, err := measure(staticAlloc, 0.5)
	if err != nil {
		return outcome{}, err
	}
	bnt1, err := measure(bntAlloc, 1)
	if err != nil {
		return outcome{}, err
	}
	bnt2, err := measure(bntAlt, 1)
	if err != nil {
		return outcome{}, err
	}
	alln, err := measure(allN, 1)
	if err != nil {
		return outcome{}, err
	}

	// BNT's own Bayesian run would pick the better of the two allocations.
	bntEps := math.Min(bnt1.Epsilon, bnt2.Epsilon)
	o := outcome{
		K: k, HBO: hbo.Epsilon, SMQ: smq.Epsilon, SML: sml.Epsilon,
		BNT: bntEps, AllN: alln.Epsilon, Quality: hbo.Quality,
	}
	logErr := func(got, want float64) float64 {
		if got <= 0 || want <= 0 {
			return 10
		}
		return math.Abs(math.Log(got / want))
	}
	o.Score = logErr(o.HBO, 0.69) +
		logErr(o.SMQ/o.HBO, 1.5) +
		logErr(o.BNT/o.HBO, 2.2) +
		logErr(o.AllN/o.HBO, 3.5)
	return o, nil
}
