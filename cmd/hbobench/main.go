// Command hbobench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints the same rows
// and series the paper reports.
//
// Usage:
//
//	hbobench                 # run everything
//	hbobench -only "Figure 5 + Table IV"
//	hbobench -seed 7         # change the experiment seed
//	hbobench -list           # list artifacts
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/mar-hbo/hbo/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", 42, "experiment seed")
	only := flag.String("only", "", "run only the named artifact (e.g. \"Figure 6\")")
	list := flag.Bool("list", false, "list artifacts and exit")
	ext := flag.Bool("ext", false, "also run the ablation/extension studies")
	csvDir := flag.String("csv", "", "also write replottable CSV series to this directory")
	flag.Parse()
	if err := run(*seed, *only, *list, *ext, *csvDir); err != nil {
		fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
		os.Exit(1)
	}
}

func run(seed uint64, only string, list bool, ext bool, csvDir string) error {
	runners := experiments.All()
	if ext {
		runners = experiments.AllWithExtensions()
	}
	if list {
		for _, r := range runners {
			fmt.Printf("%-22s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if only != "" {
		r, err := experiments.ByID(only)
		if err != nil {
			// Extension studies are addressable by -only as well.
			for _, e := range experiments.Extensions() {
				if strings.EqualFold(e.ID, only) {
					r, err = e, nil
					break
				}
			}
			if err != nil {
				return err
			}
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		fmt.Printf("%s\n%s (seed %d)\n%s\n\n", strings.Repeat("=", 72), r.ID, seed, r.Description)
		start := time.Now()
		out, err := r.Run(seed)
		if err != nil {
			return fmt.Errorf("%s: %w", r.ID, err)
		}
		fmt.Println(out.String())
		if csvDir != "" {
			if c, ok := out.(interface{ CSV() string }); ok {
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					return err
				}
				name := strings.ReplaceAll(strings.ReplaceAll(r.ID, " ", "_"), "+", "and")
				path := filepath.Join(csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					return err
				}
				fmt.Printf("[wrote %s]\n", path)
			}
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", r.ID, time.Since(start).Seconds())
	}
	return nil
}
