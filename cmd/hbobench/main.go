// Command hbobench regenerates every table and figure of the paper's
// evaluation section on the simulated substrate and prints the same rows
// and series the paper reports.
//
// Usage:
//
//	hbobench                 # run everything
//	hbobench -only "Figure 5 + Table IV"
//	hbobench -seed 7         # change the experiment seed
//	hbobench -list           # list artifacts
//	hbobench -jobs 8         # artifact parallelism (default GOMAXPROCS)
//	hbobench -timing t.json  # write per-artifact wall-clock/alloc stats
//	hbobench -arena          # run the optimizer tournament instead
//	hbobench -arena -arena-json a.json -arena-oracle -arena-faults
//	hbobench -multiuser      # shared-edge contention sweep (fairness figure)
//	hbobench -multiuser -mu-users 8,16,32 -mu-json mu.json
//
// Artifacts run on a bounded worker pool (-jobs) and every report is
// byte-identical to a serial run: reports are printed in paper order and
// each experiment derives all randomness from its own seed.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"github.com/mar-hbo/hbo/internal/experiments"
	"github.com/mar-hbo/hbo/internal/obs"
)

func main() {
	seed := flag.Uint64("seed", 42, "experiment seed")
	only := flag.String("only", "", "run only the named artifact (e.g. \"Figure 6\")")
	list := flag.Bool("list", false, "list artifacts and exit")
	ext := flag.Bool("ext", false, "also run the ablation/extension studies")
	csvDir := flag.String("csv", "", "also write replottable CSV series to this directory")
	jobs := flag.Int("jobs", runtime.GOMAXPROCS(0), "max concurrently running artifacts (1 = serial; output is identical either way)")
	timing := flag.String("timing", "", "write per-artifact wall-clock/allocation stats to this JSON file")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file (enables observability; with -jobs > 1 all artifacts aggregate into one registry)")
	arena := flag.Bool("arena", false, "run the optimizer tournament (every registry policy across the Figure-7 grid) instead of the paper artifacts")
	arenaRuns := flag.Int("arena-runs", 0, "runs per (scenario, policy) arena cell (6 when <= 0)")
	arenaJSON := flag.String("arena-json", "", "write benchjson-compatible arena records to this file")
	arenaOracle := flag.Bool("arena-oracle", false, "measure arena regret against the exhaustive oracle instead of the empirical minimum")
	arenaFaults := flag.Bool("arena-faults", false, "also race every policy through the seeded loadgen fault bracket")
	arenaMultiUser := flag.Bool("arena-multiuser", false, "also drive the multi-user shared-edge scenario under the arena's fault plan")
	multiuser := flag.Bool("multiuser", false, "run the multi-user shared-edge contention sweep instead of the paper artifacts")
	muUsers := flag.String("mu-users", "", "comma-separated fleet sizes for -multiuser (default 4,8,16,24)")
	muSlots := flag.Int("mu-slots", 0, "virtual slots per -multiuser cell (96 when <= 0)")
	muJSON := flag.String("mu-json", "", "write benchjson-compatible multi-user records to this file")
	flag.Parse()
	if *arena {
		if err := runArena(*seed, *jobs, *arenaRuns, *arenaJSON, *arenaOracle, *arenaFaults, *arenaMultiUser, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *multiuser {
		if err := runMultiUser(*seed, *jobs, *muUsers, *muSlots, *muJSON, *csvDir); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *metrics != "" {
		// Install before any simulation is built so scenario.Build wires the
		// registry through every layer. The registry is concurrency-safe, so
		// parallel artifacts aggregate into the same instruments.
		obs.SetDefault(obs.New())
	}
	if err := run(*seed, *only, *list, *ext, *csvDir, *jobs, *timing); err != nil {
		fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "hbobench: %v\n", err)
			os.Exit(1)
		}
	}
}

// runArena executes the optimizer tournament and prints the ranking table;
// the JSON artifact (when requested) carries one benchjson-shaped record
// per (scenario, policy) and is byte-identical for every -jobs value.
func runArena(seed uint64, jobs, runs int, jsonPath string, oracle, faultBracket, multiUserBracket bool, csvDir string) error {
	res, err := experiments.RunArena(context.Background(), experiments.ArenaConfig{
		Seed:             seed,
		Jobs:             jobs,
		Runs:             runs,
		Oracle:           oracle,
		FaultBracket:     faultBracket,
		MultiUserBracket: multiUserBracket,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	if jsonPath != "" {
		blob, err := json.MarshalIndent(res.BenchRecords(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, "Arena.csv")
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", path)
	}
	return nil
}

// runMultiUser executes the shared-edge contention sweep and prints the
// fairness table; the JSON artifact (when requested) carries one
// benchjson-shaped record per (user count, mode) and is byte-identical for
// every -jobs value.
func runMultiUser(seed uint64, jobs int, usersCSV string, slots int, jsonPath, csvDir string) error {
	cfg := experiments.MultiUserConfig{Seed: seed, Jobs: jobs, Slots: slots}
	if usersCSV != "" {
		for _, f := range strings.Split(usersCSV, ",") {
			var n int
			if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &n); err != nil {
				return fmt.Errorf("bad -mu-users entry %q: %w", f, err)
			}
			cfg.UserCounts = append(cfg.UserCounts, n)
		}
	}
	res, err := experiments.RunMultiUser(cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.String())
	if jsonPath != "" {
		blob, err := json.MarshalIndent(res.BenchRecords(), "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", jsonPath)
	}
	if csvDir != "" {
		if err := os.MkdirAll(csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(csvDir, "MultiUser.csv")
		if err := os.WriteFile(path, []byte(res.CSV()), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", path)
	}
	return nil
}

// writeMetrics dumps the process-wide registry snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default().Snapshot().WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}

// timingReport is the machine-readable performance record written by
// -timing; it seeds the repo's BENCH_*.json perf trajectory.
type timingReport struct {
	Seed        uint64           `json:"seed"`
	Jobs        int              `json:"jobs"`
	GOMAXPROCS  int              `json:"gomaxprocs"`
	TotalWallMS float64          `json:"total_wall_ms"`
	Artifacts   []artifactTiming `json:"artifacts"`
}

type artifactTiming struct {
	ID     string  `json:"id"`
	WallMS float64 `json:"wall_ms"`
	// AllocBytes is the process-wide heap-allocation delta during the
	// artifact's run; with jobs > 1 concurrent artifacts bleed into each
	// other's figure, so treat it as indicative.
	AllocBytes uint64 `json:"alloc_bytes"`
}

func run(seed uint64, only string, list bool, ext bool, csvDir string, jobs int, timing string) error {
	runners := experiments.All()
	if ext {
		runners = experiments.AllWithExtensions()
	}
	if list {
		for _, r := range runners {
			fmt.Printf("%-22s %s\n", r.ID, r.Description)
		}
		return nil
	}
	if only != "" {
		r, err := experiments.ByID(only)
		if err != nil {
			return err
		}
		runners = []experiments.Runner{r}
	}
	start := time.Now()
	var firstErr error
	reports := experiments.RunAll(runners, seed, jobs, func(rep experiments.Report) {
		if firstErr != nil {
			return
		}
		r := rep.Runner
		if rep.Err != nil {
			firstErr = fmt.Errorf("%s: %w", r.ID, rep.Err)
			return
		}
		fmt.Printf("%s\n%s (seed %d)\n%s\n\n", strings.Repeat("=", 72), r.ID, seed, r.Description)
		fmt.Println(rep.Output.String())
		if csvDir != "" {
			if c, ok := rep.Output.(interface{ CSV() string }); ok {
				if err := os.MkdirAll(csvDir, 0o755); err != nil {
					firstErr = err
					return
				}
				name := strings.ReplaceAll(strings.ReplaceAll(r.ID, " ", "_"), "+", "and")
				path := filepath.Join(csvDir, name+".csv")
				if err := os.WriteFile(path, []byte(c.CSV()), 0o644); err != nil {
					firstErr = err
					return
				}
				fmt.Printf("[wrote %s]\n", path)
			}
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", r.ID, rep.Elapsed.Seconds())
	})
	if firstErr != nil {
		return firstErr
	}
	if timing != "" {
		tr := timingReport{
			Seed:        seed,
			Jobs:        jobs,
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			TotalWallMS: float64(time.Since(start)) / float64(time.Millisecond),
		}
		for _, rep := range reports {
			tr.Artifacts = append(tr.Artifacts, artifactTiming{
				ID:         rep.Runner.ID,
				WallMS:     float64(rep.Elapsed) / float64(time.Millisecond),
				AllocBytes: rep.AllocBytes,
			})
		}
		blob, err := json.MarshalIndent(tr, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(timing, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("[wrote %s]\n", timing)
	}
	return nil
}
