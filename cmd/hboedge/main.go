// Command hboedge runs the standalone edge server of the paper's Figure 3:
// it serves virtual-object decimation, Eq. 1 parameter training, and remote
// Bayesian-optimization steps over HTTP.
//
// The server is hardened for unattended operation: request bodies are
// size-capped, handlers are time-bounded, slow-client reads and writes time
// out, and SIGINT/SIGTERM drain in-flight requests before exit.
//
// Observability endpoints ride alongside the service routes:
//
//	GET /metricsz     JSON snapshot of the metrics registry and event tap
//	GET /debug/vars   expvar (includes the registry under "hbo")
//	GET /debug/pprof  runtime profiles
//
// With -store-dir the session tier becomes durable: every session snapshot
// lands in a checksummed append-only log, a SIGTERM drain flushes dirty
// sessions, and a restart (even after SIGKILL) warm-restarts the sessions
// the log committed.
//
// Usage:
//
//	hboedge -addr :8080
//	hboedge -addr :8080 -store-dir /var/lib/hbo/sessions -fsync
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/render"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	drain := flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
	shards := flag.Int("session-shards", 8, "session store lock stripes (and suggest workers)")
	perShard := flag.Int("session-capacity", 64, "sessions per shard before LRU eviction")
	queue := flag.Int("session-queue", 32, "pending suggests per shard before admission rejects")
	storeDir := flag.String("store-dir", "", "durable session-store directory (empty disables durability)")
	fsync := flag.Bool("fsync", false, "fsync the session store after every append (with -store-dir)")
	snapEvery := flag.Int("snapshot-every", 1, "snapshot a session after this many mutations; 0 saves only on eviction and drain (with -store-dir)")
	flag.Parse()
	sessCfg := sessiond.DefaultConfig()
	sessCfg.Shards = *shards
	sessCfg.SessionsPerShard = *perShard
	sessCfg.QueueBound = *queue
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *storeDir != "" {
		store, err := snapstore.Open(nil, *storeDir, snapstore.Options{Fsync: *fsync})
		if err != nil {
			fmt.Fprintf(os.Stderr, "hboedge: opening session store: %v\n", err)
			os.Exit(1)
		}
		defer store.Close()
		sessCfg.Store = store
		sessCfg.SnapshotEvery = *snapEvery
		if rec := store.Recovery(); rec.Records > 0 || rec.CorruptSegments > 0 {
			fmt.Printf("hboedge: session store recovered %d records from %d segments (%d corrupt, %d torn-tail bytes truncated)\n",
				rec.Records, rec.Segments, rec.CorruptSegments, rec.TornTailBytes)
		}
	}
	if err := run(ctx, *addr, *drain, sessCfg); err != nil {
		fmt.Fprintf(os.Stderr, "hboedge: %v\n", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, addr string, drain time.Duration, sessCfg sessiond.Config) error {
	// The server's catalog covers every Table II asset.
	catalog := append(render.SC1(), render.SC2()...)
	specs := make([]render.ObjectSpec, 0, len(catalog))
	for _, c := range catalog {
		specs = append(specs, c.Spec)
	}
	srv, err := edge.NewServer(specs)
	if err != nil {
		return err
	}
	reg := obs.New()
	srv.SetObserver(reg)
	obs.Publish("hbo", reg)
	sess, err := sessiond.New(sessCfg, srv)
	if err != nil {
		return err
	}
	sess.SetObserver(reg)
	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	sess.Register(mux)
	mux.HandleFunc("GET /metricsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	httpSrv := &http.Server{
		Addr:    addr,
		Handler: mux,
		// Bound every phase of a connection so a stalled peer cannot pin
		// one: header read, full request read, response write, keep-alive.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.ListenAndServe() }()
	fmt.Printf("hboedge: serving %d objects on %s (POST /decimate, /train, /bo/next, /session/{open,suggest,observe,close,decimate}; GET /healthz, /metricsz, /session/statz, /debug/vars, /debug/pprof)\n", len(specs), addr)
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	fmt.Println("hboedge: signal received, draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// All connections are drained; now it is safe to stop the suggest
	// workers and flush every dirty session to the store (a no-op without
	// one) so the next start warm-restarts from exactly this state.
	sess.Close()
	sess.Flush()
	return nil
}
