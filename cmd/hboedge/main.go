// Command hboedge runs the standalone edge server of the paper's Figure 3:
// it serves virtual-object decimation, Eq. 1 parameter training, and remote
// Bayesian-optimization steps over HTTP.
//
// Usage:
//
//	hboedge -addr :8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/render"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintf(os.Stderr, "hboedge: %v\n", err)
		os.Exit(1)
	}
}

func run(addr string) error {
	// The server's catalog covers every Table II asset.
	catalog := append(render.SC1(), render.SC2()...)
	specs := make([]render.ObjectSpec, 0, len(catalog))
	for _, c := range catalog {
		specs = append(specs, c.Spec)
	}
	srv, err := edge.NewServer(specs)
	if err != nil {
		return err
	}
	fmt.Printf("hboedge: serving %d objects on %s (POST /decimate, /train, /bo/next)\n", len(specs), addr)
	return http.ListenAndServe(addr, srv.Handler())
}
