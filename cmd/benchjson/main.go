// Command benchjson converts `go test -bench` text output (read from stdin)
// into a JSON array, one object per benchmark result line, so the repo can
// keep machine-readable performance snapshots (BENCH_<date>.json) next to
// the human-readable logs.
//
// Usage:
//
//	go test -bench=. -benchmem ./... | benchjson > BENCH_$(date +%F).json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line, e.g.
//
//	BenchmarkGPPredictInto-8   1000000   1042 ns/op   0 B/op   0 allocs/op
type result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs,omitempty"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
	// Extra holds any custom metrics a benchmark reported via b.ReportMetric
	// (unit -> value).
	Extra map[string]float64 `json:"extra,omitempty"`
}

func main() {
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var results []result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if r, ok := parseLine(line); ok {
			results = append(results, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}

func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return result{}, false
	}
	r := result{Name: fields[0], Extra: map[string]float64{}}
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name, r.Procs = r.Name[:i], p
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	r.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			r.Extra[fields[i+1]] = v
		}
	}
	if len(r.Extra) == 0 {
		r.Extra = nil
	}
	return r, true
}
