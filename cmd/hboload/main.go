// Command hboload is the deterministic load generator for hboedge's
// multi-session endpoints: it drives N simulated MAR clients — each a full
// paper-stack session with a seeded scenario, fault-tolerant edge client,
// and server-side BO session — and reports per-session reward trajectories,
// suggest tail latency, and the server's admission/eviction behaviour.
//
// Determinism: with a fixed -seed and -jobs 1 the entire run, including
// every per-session B_t trajectory written by -trajectories, is
// bit-identical across repetitions. With -jobs > 1 the per-session
// trajectories stay deterministic; only wall-clock interleaving varies.
//
// Usage:
//
//	hboedge -addr :8080 &
//	hboload -addr http://localhost:8080 -sessions 256 -seed 7
//	hboload -sessions 8 -jobs 1 -trajectories run.txt   # golden-style dump
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/loadgen"
	"github.com/mar-hbo/hbo/internal/obs"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "hboedge base URL")
	sessions := flag.Int("sessions", 64, "number of simulated clients")
	seed := flag.Uint64("seed", 1, "root seed; fixes every per-client stream")
	scen := flag.String("scenario", "SC2-CF2", "Table II scenario each client builds")
	duration := flag.Float64("duration", 60_000, "virtual session length per client (ms)")
	jobs := flag.Int("jobs", 4, "concurrent clients (1 for bit-identical full runs)")
	initSamples := flag.Int("init", 3, "BO init samples per activation")
	iters := flag.Int("iters", 6, "BO iterations per activation")
	useLOD := flag.Bool("lod", false, "route quality manipulation through the server's session mesh cache")
	useStream := flag.Bool("stream", false, "use the binary /session/stream transport (falls back to JSON against old servers)")
	moveAt := flag.Float64("move-at", 0, "scripted user movement time in virtual ms (0 = half the duration, negative = never)")
	moveDist := flag.Float64("move-dist", 4.0, "user-object distance after the scripted movement (m)")
	retries := flag.Int("retries", edge.DefaultClientConfig().MaxRetries, "edge client retries per call")
	faultDrop := flag.Float64("fault-drop", 0, "probability a request is dropped before the server")
	fault500 := flag.Float64("fault-500", 0, "probability a request is answered with a synthesized 503")
	faultLatency := flag.Float64("fault-latency", 0, "mean injected request latency (ms)")
	faultSigma := flag.Float64("fault-sigma", 0, "lognormal sigma of the injected latency")
	trajectories := flag.String("trajectories", "", "write byte-exact per-session trajectories to this file (- for stdout)")
	metrics := flag.String("metrics", "", "write the client-side metrics registry snapshot (JSON) to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	ccfg := edge.DefaultClientConfig()
	ccfg.MaxRetries = *retries
	reg := obs.New()
	cfg := loadgen.Config{
		BaseURL:      *addr,
		Sessions:     *sessions,
		Seed:         *seed,
		Scenario:     *scen,
		DurationMS:   *duration,
		Jobs:         *jobs,
		InitSamples:  *initSamples,
		Iterations:   *iters,
		MoveAtMS:     *moveAt,
		MoveDistance: *moveDist,
		UseLOD:       *useLOD,
		UseStream:    *useStream,
		Faults: faults.Plan{
			DropRate:        *faultDrop,
			ServerErrorRate: *fault500,
			LatencyMeanMS:   *faultLatency,
			LatencySigma:    *faultSigma,
		},
		Client:   &ccfg,
		Observer: reg,
	}
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hboload: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rep.Summary(reg))
	if *trajectories != "" {
		if err := writeTrajectories(rep, *trajectories); err != nil {
			fmt.Fprintf(os.Stderr, "hboload: %v\n", err)
			os.Exit(1)
		}
	}
	if *metrics != "" {
		if err := writeMetrics(reg, *metrics); err != nil {
			fmt.Fprintf(os.Stderr, "hboload: %v\n", err)
			os.Exit(1)
		}
	}
	if rep.Failures > 0 {
		fmt.Fprintf(os.Stderr, "hboload: %d of %d sessions failed\n", rep.Failures, len(rep.Sessions))
		os.Exit(1)
	}
}

func writeTrajectories(rep *loadgen.Report, path string) error {
	if path == "-" {
		return rep.WriteTrajectories(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteTrajectories(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(reg *obs.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Snapshot().WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
