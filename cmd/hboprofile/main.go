// Command hboprofile performs the paper's one-time offline profiling: it
// measures every model's isolation latency on every supported resource of a
// device (regenerating Table I) and prints the priority queue P that
// Algorithm 1 consumes.
//
// Usage:
//
//	hboprofile -device pixel7
//	hboprofile -device s22 -taskset CF1
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/state"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func main() {
	device := flag.String("device", "pixel7", "device: pixel7, s22")
	taskset := flag.String("taskset", "", "optional taskset (CF1, CF2) to print the priority queue for")
	seed := flag.Uint64("seed", 1, "profiling seed")
	out := flag.String("o", "", "write the taskset profile as JSON to this path (requires -taskset)")
	flag.Parse()
	if err := run(*device, *taskset, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "hboprofile: %v\n", err)
		os.Exit(1)
	}
}

func run(device, taskset string, seed uint64, out string) error {
	var dev *soc.DeviceProfile
	switch strings.ToLower(device) {
	case "pixel7", "pixel":
		dev = soc.Pixel7()
	case "s22", "galaxys22":
		dev = soc.GalaxyS22()
	default:
		return fmt.Errorf("unknown device %q (want pixel7 or s22)", device)
	}

	rows, err := soc.TableI(dev, seed)
	if err != nil {
		return err
	}
	fmt.Printf("Isolation profile for %s (ms):\n", dev.Name)
	fmt.Printf("%-22s %8s %8s %8s\n", "model", "GPU", "NNAPI", "CPU")
	for _, m := range tasks.All() {
		row := rows[m.Name]
		fmt.Printf("%-22s %8s %8s %8s\n", m.Name,
			cell(row[tasks.GPU]), cell(row[tasks.NNAPI]), cell(row[tasks.CPU]))
	}

	if taskset == "" {
		return nil
	}
	var set tasks.Set
	switch strings.ToUpper(taskset) {
	case "CF1":
		set = tasks.CF1()
	case "CF2":
		set = tasks.CF2()
	default:
		return fmt.Errorf("unknown taskset %q (want CF1 or CF2)", taskset)
	}
	prof, err := soc.ProfileTaskset(dev, set, seed)
	if err != nil {
		return err
	}
	fmt.Printf("\nPriority queue P for %s (non-decreasing latency):\n", set.Name)
	for i, e := range prof.Entries {
		fmt.Printf("%2d. %-22s on %-5s  %.1f ms\n", i+1, e.TaskID, e.Resource, e.LatencyMS)
	}
	fmt.Println("\nExpected latency tau_e per task:")
	for _, t := range set.Tasks {
		id := t.ID()
		fmt.Printf("  %-22s %.1f ms on %s\n", id, prof.Expected[id], prof.Best[id])
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		if err := state.SaveProfile(f, dev.Name, prof); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nwrote profile to %s\n", out)
	}
	return nil
}

func cell(v float64) string {
	if math.IsNaN(v) {
		return "NA"
	}
	return fmt.Sprintf("%.1f", v)
}
