// Command hbomesh generates, decimates, and exports the catalog's stand-in
// geometry as Wavefront OBJ — the asset-pipeline utility around the edge
// server's decimation algorithm.
//
// Usage:
//
//	hbomesh -object apricot -ratio 0.4 -o apricot_40.obj
//	hbomesh -in model.obj -ratio 0.25 -o model_25.obj
//	hbomesh -list
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/render"
)

func main() {
	object := flag.String("object", "", "catalog object to generate (see -list)")
	in := flag.String("in", "", "input OBJ file to decimate instead of a catalog object")
	ratio := flag.Float64("ratio", 1.0, "decimation ratio in (0,1]")
	out := flag.String("o", "", "output OBJ path (default stdout)")
	list := flag.Bool("list", false, "list catalog objects and exit")
	flag.Parse()
	if err := run(*object, *in, *ratio, *out, *list); err != nil {
		fmt.Fprintf(os.Stderr, "hbomesh: %v\n", err)
		os.Exit(1)
	}
}

func catalog() []render.ObjectCount {
	return append(render.SC1(), render.SC2()...)
}

func run(object, in string, ratio float64, out string, list bool) error {
	if list {
		for _, c := range catalog() {
			fmt.Printf("%-10s %8d triangles (Table II), %s\n", c.Spec.Name, c.Spec.MaxTriangles, shapeName(c.Spec.Shape))
		}
		return nil
	}
	if ratio <= 0 || ratio > 1 {
		return fmt.Errorf("ratio %v out of (0,1]", ratio)
	}

	var m *mesh.Mesh
	switch {
	case in != "":
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		m, err = mesh.ReadOBJ(f)
		closeErr := f.Close()
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}
	case object != "":
		for _, c := range catalog() {
			if c.Spec.Name == object {
				g, err := c.Spec.Geometry()
				if err != nil {
					return err
				}
				m = g
				break
			}
		}
		if m == nil {
			return fmt.Errorf("unknown object %q (try -list)", object)
		}
	default:
		return fmt.Errorf("need -object or -in")
	}

	before := m.TriangleCount()
	dec, err := mesh.DecimateToRatio(m, ratio)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hbomesh: %d -> %d triangles (%.0f%%)\n",
		before, dec.TriangleCount(), 100*float64(dec.TriangleCount())/float64(before))

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "hbomesh: closing %s: %v\n", out, err)
			}
		}()
		w = f
	}
	return mesh.WriteOBJ(w, dec)
}

func shapeName(s render.Shape) string {
	switch s {
	case render.ShapeBlob:
		return "blob"
	case render.ShapeSphere:
		return "sphere"
	case render.ShapeTorus:
		return "torus"
	case render.ShapeBox:
		return "box"
	default:
		return "unknown"
	}
}
