// Command hbosim runs a single MAR-app scenario under a chosen controller
// (HBO or one of the paper's baselines) and prints the resulting
// configuration and performance.
//
// Usage:
//
//	hbosim -scenario SC1-CF1 -controller hbo
//	hbosim -scenario SC2-CF2 -controller alln -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/baselines"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

func main() {
	name := flag.String("scenario", "SC1-CF1", "scenario: SC1-CF1, SC2-CF1, SC1-CF2, SC2-CF2")
	controller := flag.String("controller", "hbo", "controller: hbo, smq, sml, bnt, alln")
	seed := flag.Uint64("seed", 42, "simulation seed")
	weight := flag.Float64("w", 2.5, "latency/quality weight w (Eq. 3)")
	metrics := flag.String("metrics", "", "write a JSON metrics snapshot to this file (enables observability)")
	flag.Parse()
	if *metrics != "" {
		// Install before any simulation is built so scenario.Build wires the
		// registry through every layer.
		obs.SetDefault(obs.New())
	}
	if err := run(*name, *controller, *seed, *weight); err != nil {
		fmt.Fprintf(os.Stderr, "hbosim: %v\n", err)
		os.Exit(1)
	}
	if *metrics != "" {
		if err := writeMetrics(*metrics); err != nil {
			fmt.Fprintf(os.Stderr, "hbosim: %v\n", err)
			os.Exit(1)
		}
	}
}

// writeMetrics dumps the process-wide registry snapshot to path.
func writeMetrics(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.Default().Snapshot().WriteJSON(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("[wrote %s]\n", path)
	return nil
}

func run(name, controller string, seed uint64, weight float64) error {
	spec, err := scenario.ByName(name)
	if err != nil {
		return err
	}
	built, err := spec.Build(seed)
	if err != nil {
		return err
	}
	cfg := core.DefaultConfig()
	cfg.Weight = weight

	fmt.Printf("scenario %s on %s: %d objects (%d triangles max), %d AI tasks\n",
		spec.Name, built.System.Device().Name,
		built.Scene.Len(), built.Scene.TotalMaxTriangles(), len(spec.Taskset.Tasks))

	start, err := built.Runtime.Measure(4000)
	if err != nil {
		return err
	}
	fmt.Printf("before optimization: Q=%.3f eps=%.3f B=%.3f\n\n",
		start.Quality, start.Epsilon, start.Reward(weight))

	switch strings.ToLower(controller) {
	case "hbo":
		res, err := core.RunActivation(built.Runtime, cfg, sim.NewRNG(seed))
		if err != nil {
			return err
		}
		fmt.Printf("HBO solution after %d iterations (best at %d):\n", len(res.Iterations), res.BestIndex+1)
		printAllocation(allocationStrings(res.Assignment))
		fmt.Printf("triangle ratio: %.2f\nQ=%.3f eps=%.3f B=%.3f\n",
			res.Ratio, res.Quality, res.Epsilon, -res.Cost)
		fmt.Print("best-cost trajectory:")
		for _, v := range res.BestCostTrajectory() {
			fmt.Printf(" %.2f", v)
		}
		fmt.Println()
	case "smq", "sml", "bnt", "alln":
		// The static baselines need HBO's outcome as their target; run HBO
		// on an identical twin build first.
		twin, err := spec.Build(seed)
		if err != nil {
			return err
		}
		act, err := core.RunActivation(twin.Runtime, cfg, sim.NewRNG(seed))
		if err != nil {
			return err
		}
		var c baselines.Controller
		switch strings.ToLower(controller) {
		case "smq":
			c = baselines.SMQ{HBORatio: act.Ratio}
		case "sml":
			c = baselines.SML{HBOEpsilon: act.Epsilon, RMin: cfg.RMin}
		case "bnt":
			c = baselines.BNT{Seed: seed}
		case "alln":
			c = baselines.AllN{}
		}
		o, err := c.Run(built.Runtime)
		if err != nil {
			return err
		}
		fmt.Printf("%s solution:\n", o.Name)
		m := make(map[string]string, len(o.Assignment))
		for id, r := range o.Assignment {
			m[id] = r.String()
		}
		printAllocation(m)
		fmt.Printf("triangle ratio: %.2f\nQ=%.3f eps=%.3f B=%.3f\n",
			o.Ratio, o.Quality, o.Epsilon, o.Quality-weight*o.Epsilon)
	default:
		return fmt.Errorf("unknown controller %q", controller)
	}
	return nil
}

func allocationStrings(a alloc.Assignment) map[string]string {
	out := make(map[string]string, len(a))
	for id, r := range a {
		out[id] = r.String()
	}
	return out
}

func printAllocation(a map[string]string) {
	ids := make([]string, 0, len(a))
	for id := range a {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-22s -> %s\n", id, a[id])
	}
}
