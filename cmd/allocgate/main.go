// allocgate is the zero-allocation build gate: it recompiles every package
// containing an //hbo:noalloc function with `go build -gcflags=-m=2` and
// fails (exit 1) if the compiler reports a heap escape inside one of them.
// Run it from the module root:
//
//	go run ./cmd/allocgate          # or: make allocgate
//
// See internal/analysis/allocgate for the annotation and exemption rules.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/mar-hbo/hbo/internal/analysis/allocgate"
)

func main() {
	root := flag.String("C", ".", "module root to gate")
	goBin := flag.String("go", "go", "go binary to build with")
	verbose := flag.Bool("v", false, "list the gated functions")
	flag.Parse()

	targets, findings, err := allocgate.Check(*goBin, *root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "allocgate: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, t := range targets {
			fmt.Printf("gated: %s:%d %s\n", t.File, t.Start, t.Func)
		}
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "allocgate: %d heap escape(s) in //hbo:noalloc functions\n", len(findings))
		os.Exit(1)
	}
	fmt.Printf("allocgate: %d function(s) gated, no heap escapes\n", len(targets))
}
