// hbovet is the project's vettool: the eight hbovet analyzers compiled
// into a unitchecker binary that `go vet -vettool=bin/hbovet ./...` drives
// with full type information per package. Build it with `make bin/hbovet`
// (or just `make lint`, which builds it first).
//
// The first four passes (detlint, obslint, ctxlint, errlint) are AST-level
// hygiene checks from PR 4. The second four guard the session tier's
// concurrency and codec invariants: locklint (blocking ops under shard/
// store locks, lock/unlock path mismatches), copylint (mutex-by-value
// copies), leaklint (goroutines with no cancellation tie, time.After in
// loops), and codeclint (encode/decode parity for //hbo:codec pairs).
//
// Findings are suppressed per line with `//lint:allow <analyzer> <reason>`;
// `make lint` reports the suppression count alongside the run and fails if
// it exceeds the committed lint.budget, so silenced findings stay visible
// and cannot accrete silently.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/mar-hbo/hbo/internal/analysis/codeclint"
	"github.com/mar-hbo/hbo/internal/analysis/copylint"
	"github.com/mar-hbo/hbo/internal/analysis/ctxlint"
	"github.com/mar-hbo/hbo/internal/analysis/detlint"
	"github.com/mar-hbo/hbo/internal/analysis/errlint"
	"github.com/mar-hbo/hbo/internal/analysis/leaklint"
	"github.com/mar-hbo/hbo/internal/analysis/locklint"
	"github.com/mar-hbo/hbo/internal/analysis/obslint"
)

func main() {
	unitchecker.Main(
		detlint.Analyzer,
		obslint.Analyzer,
		ctxlint.Analyzer,
		errlint.Analyzer,
		locklint.Analyzer,
		copylint.Analyzer,
		leaklint.Analyzer,
		codeclint.Analyzer,
	)
}
