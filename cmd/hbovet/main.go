// hbovet is the project's vettool: the four hbovet analyzers compiled into
// a unitchecker binary that `go vet -vettool=bin/hbovet ./...` drives with
// full type information per package. Build it with `make bin/hbovet` (or
// just `make lint`, which builds it first).
//
// Findings are suppressed per line with `//lint:allow <analyzer> <reason>`;
// `make lint` reports the suppression count alongside the run so silenced
// findings stay visible in the vet summary.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"github.com/mar-hbo/hbo/internal/analysis/ctxlint"
	"github.com/mar-hbo/hbo/internal/analysis/detlint"
	"github.com/mar-hbo/hbo/internal/analysis/errlint"
	"github.com/mar-hbo/hbo/internal/analysis/obslint"
)

func main() {
	unitchecker.Main(
		detlint.Analyzer,
		obslint.Analyzer,
		ctxlint.Analyzer,
		errlint.Analyzer,
	)
}
