package hbo_test

import (
	"strings"
	"testing"

	hbo "github.com/mar-hbo/hbo"
)

func TestNewValidatesScenario(t *testing.T) {
	if _, err := hbo.New(hbo.Options{Scenario: "nope"}); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", RMin: 2}); err == nil {
		t.Fatal("invalid RMin accepted")
	}
}

func TestScenariosAndExperimentsLists(t *testing.T) {
	if got := hbo.Scenarios(); len(got) != 4 {
		t.Fatalf("Scenarios() = %v", got)
	}
	if got := hbo.Experiments(); len(got) != 10 {
		t.Fatalf("Experiments() = %v", got)
	}
}

func TestOptimizeImprovesReward(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	_, _, before, err := app.Measure(3000)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := app.Optimize()
	if err != nil {
		t.Fatal(err)
	}
	if sol.Reward <= before {
		t.Errorf("reward %.3f -> %.3f, want improvement", before, sol.Reward)
	}
	if sol.TriangleRatio <= 0 || sol.TriangleRatio > 1 {
		t.Fatalf("ratio %v", sol.TriangleRatio)
	}
	if len(sol.Allocation) != 6 {
		t.Fatalf("allocation covers %d tasks", len(sol.Allocation))
	}
	for id, r := range sol.Allocation {
		switch r {
		case "CPU", "GPU", "NNAPI":
		default:
			t.Errorf("task %s on unknown resource %q", id, r)
		}
	}
	if sol.Iterations != 20 {
		t.Fatalf("iterations %d, want 20", sol.Iterations)
	}
	// The app is left running the solution.
	if got := app.TriangleRatio(); got < sol.TriangleRatio-0.05 || got > sol.TriangleRatio+0.05 {
		t.Errorf("app ratio %v does not reflect solution %v", got, sol.TriangleRatio)
	}
}

func TestSceneManipulation(t *testing.T) {
	app, err := hbo.New(hbo.Options{Scenario: "SC2-CF2", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(app.Objects()); got != 7 {
		t.Fatalf("objects = %d", got)
	}
	if got := len(app.Tasks()); got != 3 {
		t.Fatalf("tasks = %d", got)
	}
	if err := app.PlaceObject("cabin", 2, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := len(app.Objects()); got != 8 {
		t.Fatalf("objects after placement = %d", got)
	}
	if err := app.SetDistance("cabin_2", 5); err != nil {
		t.Fatal(err)
	}
	if err := app.SetDistance("cabin_2", -1); err == nil {
		t.Fatal("negative distance accepted")
	}
	if err := app.SetDistance("ghost", 2); err == nil {
		t.Fatal("unknown object accepted")
	}
	if app.Now() <= 0 {
		// Time only advances through Measure/Optimize; trigger one.
		if _, _, _, err := app.Measure(100); err != nil {
			t.Fatal(err)
		}
		if app.Now() <= 0 {
			t.Fatal("clock did not advance")
		}
	}
}

func TestRunExperimentTableI(t *testing.T) {
	out, err := hbo.RunExperiment("Table I", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "deeplabv3") || !strings.Contains(out, "NA") {
		t.Fatalf("Table I output unexpected:\n%s", out)
	}
	if _, err := hbo.RunExperiment("Figure 99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
