package hbo_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (each iteration regenerates the full artifact on the
// simulated substrate), plus micro-benchmarks for the load-bearing
// components. Run with:
//
//	go test -bench=. -benchmem
//
// The printable artifacts themselves come from cmd/hbobench.

import (
	"net/http/httptest"
	"testing"
	"time"

	hbo "github.com/mar-hbo/hbo"
	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/experiments"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// benchArtifact runs one experiment artifact per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	r, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(uint64(i + 1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableI(b *testing.B)   { benchArtifact(b, "Table I") }
func BenchmarkFigure2a(b *testing.B) { benchArtifact(b, "Figure 2a") }
func BenchmarkFigure2b(b *testing.B) { benchArtifact(b, "Figure 2b") }
func BenchmarkFigure2c(b *testing.B) { benchArtifact(b, "Figure 2c") }
func BenchmarkFigure4TableIII(b *testing.B) {
	benchArtifact(b, "Figure 4 + Table III")
}
func BenchmarkFigure5TableIV(b *testing.B) {
	benchArtifact(b, "Figure 5 + Table IV")
}
func BenchmarkFigure6(b *testing.B) { benchArtifact(b, "Figure 6") }
func BenchmarkFigure7(b *testing.B) { benchArtifact(b, "Figure 7") }
func BenchmarkFigure8(b *testing.B) { benchArtifact(b, "Figure 8") }
func BenchmarkFigure9(b *testing.B) { benchArtifact(b, "Figure 9") }

// BenchmarkActivation measures one full HBO activation (20 control periods)
// on the heaviest scenario — the end-to-end cost of the paper's Algorithm 1
// loop on the simulated substrate.
func BenchmarkActivation(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		app, err := hbo.New(hbo.Options{Scenario: "SC1-CF1", Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := app.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGPFitPredict measures the Gaussian-process surrogate at the
// paper's database size (20 observations, 4 dimensions).
func BenchmarkGPFitPredict(b *testing.B) {
	rng := sim.NewRNG(1)
	dom := bo.Domain{N: 3, RMin: 0.1}
	xs := make([][]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		xs[i] = dom.Sample(rng)
		ys[i] = rng.Norm()
	}
	probe := dom.Sample(rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := bo.NewGP(bo.Matern52{LengthScale: 0.3, SignalVar: 1}, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		if err := gp.Fit(xs, ys); err != nil {
			b.Fatal(err)
		}
		gp.Predict(probe)
	}
}

// BenchmarkBOSuggestion measures one EI-driven suggestion (the per-iteration
// optimizer cost the paper bounds as O(K^3)).
func BenchmarkBOSuggestion(b *testing.B) {
	rng := sim.NewRNG(1)
	dom := bo.Domain{N: 3, RMin: 0.1}
	opt, err := bo.NewOptimizer(dom, bo.DefaultConfig(), rng)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := dom.Sample(rng)
		if err := opt.Observe(p, rng.Norm()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecimation measures QEM edge-collapse on a 3k-triangle mesh to
// half resolution — the edge server's unit of work.
func BenchmarkDecimation(b *testing.B) {
	m, err := mesh.Blob(3000, 7, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.DecimateToRatio(m, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllocationHeuristic measures Algorithm 1 lines 2-22 for the CF1
// taskset.
func BenchmarkAllocationHeuristic(b *testing.B) {
	prof, err := soc.ProfileTaskset(soc.Pixel7(), tasks.CF1(), 1)
	if err != nil {
		b.Fatal(err)
	}
	set := tasks.CF1()
	ids := make([]string, len(set.Tasks))
	for i, t := range set.Tasks {
		ids[i] = t.ID()
	}
	c := []float64{0.4, 0.1, 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		counts, err := alloc.Counts(c, len(ids))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := alloc.Assign(counts, prof, ids); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatorSecond measures one simulated second of the fully loaded
// SC1-CF1 system — the substrate's discrete-event throughput.
func BenchmarkSimulatorSecond(b *testing.B) {
	built, err := scenario.SC1CF1().Build(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built.System.RunFor(1000)
	}
}

// BenchmarkClustering measures the vertex-clustering fast path on the same
// workload as BenchmarkDecimation, quantifying the speed gap that justifies
// offering both on the edge server.
func BenchmarkClustering(b *testing.B) {
	m, err := mesh.Blob(3000, 7, 0.3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mesh.VertexClustering(m, m.TriangleCount()/2); err != nil {
			b.Fatal(err)
		}
	}
}

// benchChaosSession drives a Periodic session through an edge link whose
// requests drop, 5xx, and spike (seeded injector, reproducible per
// iteration). The fault-tolerant client retries, breaks the circuit, and
// degrades to the local decimator; the fail-stop variant (no retries, no
// fallback) dies at the first activation that needs the link. Reported
// metrics: mean reward B_t per completed window and completed window count
// — the cost of not having the fault-tolerance layer.
func benchChaosSession(b *testing.B, failStop bool) {
	b.Helper()
	b.ReportAllocs()
	totalReward, totalWindows := 0.0, 0
	for i := 0; i < b.N; i++ {
		spec := scenario.SC1CF1()
		built, err := spec.Build(uint64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		specs := make([]render.ObjectSpec, 0, len(spec.Objects))
		for _, c := range spec.Objects {
			specs = append(specs, c.Spec)
		}
		srv, err := edge.NewServer(specs)
		if err != nil {
			b.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		inj := faults.NewTransport(nil, uint64(i+1), faults.Plan{
			DropRate:        0.3,
			ServerErrorRate: 0.3,
			LatencyMeanMS:   0.5,
		})
		cfg := edge.DefaultClientConfig()
		cfg.Transport = inj
		cfg.BackoffBase = time.Millisecond
		cfg.BackoffMax = 2 * time.Millisecond
		cfg.BreakerOpenFor = 20 * time.Millisecond
		if failStop {
			cfg.MaxRetries = 0
		}
		client, err := edge.NewClientWithConfig(ts.URL, 32, cfg)
		if err != nil {
			b.Fatal(err)
		}
		rt := built.Runtime
		rt.SetLODProvider(client)
		if !failStop {
			rt.SetLocalFallback(render.NewLocalDecimator(built.Library))
			rt.SetBOBackend(client, 42)
		}
		hboCfg := core.DefaultConfig()
		hboCfg.InitSamples = 2
		hboCfg.Iterations = 2
		hboCfg.PeriodMS = 400
		hboCfg.SettleMS = 100
		hboCfg.MonitorIntervalMS = 500
		sess, err := core.NewSession(rt, core.SessionConfig{
			HBO:                hboCfg,
			Mode:               core.Periodic,
			PeriodicIntervalMS: 1500,
		}, sim.NewRNG(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
		// 20 monitor windows; a fail-stop session aborts at its first
		// activation through the faulty link and keeps whatever it got.
		for w := 0; w < 20; w++ {
			if err := sess.Step(); err != nil {
				break
			}
		}
		for _, s := range sess.Samples() {
			totalReward += s.Reward
			totalWindows++
		}
		ts.Close()
	}
	if totalWindows > 0 {
		b.ReportMetric(totalReward/float64(totalWindows), "reward/window")
	}
	b.ReportMetric(float64(totalWindows)/float64(b.N), "windows/session")
}

// BenchmarkChaosSessionFaultTolerant is the reward under an unreliable link
// with the full fault-tolerance layer (retry + breaker + local fallback).
func BenchmarkChaosSessionFaultTolerant(b *testing.B) { benchChaosSession(b, false) }

// BenchmarkChaosSessionFailStop is the same link with a fail-stop client:
// the session dies at the first fault, so windows/session collapses.
func BenchmarkChaosSessionFailStop(b *testing.B) { benchChaosSession(b, true) }

// gpDataset draws n observations for the GP micro-benchmarks.
func gpDataset(n int) (xs [][]float64, ys []float64, probe []float64) {
	rng := sim.NewRNG(1)
	dom := bo.Domain{N: 3, RMin: 0.1}
	xs = make([][]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = dom.Sample(rng)
		ys[i] = rng.Norm()
	}
	return xs, ys, dom.Sample(rng)
}

// BenchmarkGPAddObservation grows a surrogate to 60 observations one point
// at a time through the incremental Cholesky path — O(n²) per append, O(n³)
// for the whole growth. Compare against BenchmarkGPFullRefitGrowth, which
// pays a fresh O(n³) factorization at every step (O(n⁴) total).
func BenchmarkGPAddObservation(b *testing.B) {
	xs, ys, _ := gpDataset(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := bo.NewGP(bo.Matern52{LengthScale: 0.3, SignalVar: 1}, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		for j := range xs {
			if err := gp.AddObservation(xs[j], ys[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGPFullRefitGrowth is the pre-optimization baseline for
// BenchmarkGPAddObservation: the same growth with a from-scratch Fit at
// every step.
func BenchmarkGPFullRefitGrowth(b *testing.B) {
	xs, ys, _ := gpDataset(60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp, err := bo.NewGP(bo.Matern52{LengthScale: 0.3, SignalVar: 1}, 0.01)
		if err != nil {
			b.Fatal(err)
		}
		for j := range xs {
			if err := gp.Fit(xs[:j+1], ys[:j+1]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkGPPredictInto is the allocation-free posterior query (0
// allocs/op by contract; see TestPredictIntoZeroAlloc).
func BenchmarkGPPredictInto(b *testing.B) {
	xs, ys, probe := gpDataset(30)
	gp, err := bo.NewGP(bo.Matern52{LengthScale: 0.3, SignalVar: 1}, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	if err := gp.Fit(xs, ys); err != nil {
		b.Fatal(err)
	}
	var scratch bo.PredictScratch
	gp.PredictInto(probe, &scratch)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gp.PredictInto(probe, &scratch)
	}
}

// benchSuggestion measures one EI suggestion at a fixed candidate-scoring
// parallelism.
func benchSuggestion(b *testing.B, jobs int) {
	rng := sim.NewRNG(1)
	dom := bo.Domain{N: 3, RMin: 0.1}
	cfg := bo.DefaultConfig()
	cfg.Jobs = jobs
	opt, err := bo.NewOptimizer(dom, cfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p := dom.Sample(rng)
		if err := opt.Observe(p, rng.Norm()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := opt.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBOSuggestionSerial scores the candidate pool on one goroutine;
// BenchmarkBOSuggestionParallel uses GOMAXPROCS workers. Both produce
// bit-identical suggestions.
func BenchmarkBOSuggestionSerial(b *testing.B)   { benchSuggestion(b, 1) }
func BenchmarkBOSuggestionParallel(b *testing.B) { benchSuggestion(b, 0) }

// benchRunAll regenerates a small artifact subset through the scheduler at
// the given parallelism.
func benchRunAll(b *testing.B, jobs int) {
	ids := []string{"Table I", "TD", "CrossDevice"}
	var runners []experiments.Runner
	for _, id := range ids {
		r, err := experiments.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		runners = append(runners, r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, rep := range experiments.RunAll(runners, 42, jobs, nil) {
			if rep.Err != nil {
				b.Fatal(rep.Err)
			}
		}
	}
}

// BenchmarkRunAllSerial vs BenchmarkRunAllParallel is the harness-level
// speedup measurement (identical reports either way).
func BenchmarkRunAllSerial(b *testing.B)   { benchRunAll(b, 1) }
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, 0) }

// benchMeasureWindow measures one 2-second monitoring window on SC1-CF1 with
// the given default registry installed — the observability layer's overhead
// probe. With reg == nil every instrument is a nil pointer whose methods are
// no-ops, so allocs/op must match the pre-observability baseline exactly;
// with a live registry the contract is ≤2% extra wall time.
func benchMeasureWindow(b *testing.B, reg *obs.Registry) {
	b.Helper()
	obs.SetDefault(reg)
	defer obs.SetDefault(nil)
	built, err := scenario.SC1CF1().Build(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := built.Runtime.Measure(2000); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMeasureNilRegistry is the disabled path (nil instruments);
// BenchmarkMeasureLiveRegistry pays the atomic counters and histogram
// observes. Compare the two to verify the zero-overhead-when-disabled and
// ≤2%-when-live guarantees.
func BenchmarkMeasureNilRegistry(b *testing.B)  { benchMeasureWindow(b, nil) }
func BenchmarkMeasureLiveRegistry(b *testing.B) { benchMeasureWindow(b, obs.New()) }
