// Package render models the AR side of a MAR app: the virtual objects on
// screen (with the paper's Table II asset catalog), their per-object
// decimation state and user distance, OpenGL-style backface culling, and the
// GPU load that rendering places on the SoC — the single channel through
// which AR work affects AI latency in the paper.
package render

import (
	"fmt"
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Shape selects the procedural generator standing in for an asset class.
type Shape int

// Shape kinds: organic/detailed (Blob), smooth curved (Sphere), ring-like
// (Torus), flat/architectural (Box).
const (
	ShapeBlob Shape = iota + 1
	ShapeSphere
	ShapeTorus
	ShapeBox
)

// ObjectSpec describes one catalog asset.
type ObjectSpec struct {
	// Name matches Table II ("apricot", "bike", ...).
	Name string
	// MaxTriangles is the full-quality triangle count from Table II.
	MaxTriangles int
	// Shape picks the procedural stand-in geometry.
	Shape Shape
	// ShapeSeed varies the geometry within a shape class.
	ShapeSeed uint64
	// Roughness controls surface detail for blob shapes.
	Roughness float64
	// DistExp is the object's true distance exponent for quality loss.
	DistExp float64
}

// geometryCap bounds the triangle count of the training geometry; the
// nominal Table II count still drives render load, but parameter training
// decimates real meshes and must stay tractable.
const geometryCap = 3000

// Geometry generates the spec's stand-in mesh.
func (s ObjectSpec) Geometry() (*mesh.Mesh, error) {
	n := s.MaxTriangles
	if n > geometryCap {
		n = geometryCap
	}
	if n < 64 {
		n = 64
	}
	switch s.Shape {
	case ShapeBlob:
		return mesh.Blob(n, s.ShapeSeed, s.Roughness)
	case ShapeSphere:
		return mesh.SphereWithTriangles(n)
	case ShapeTorus:
		r := int(math.Sqrt(float64(n) / 4))
		if r < 3 {
			r = 3
		}
		return mesh.Torus(0.35, 2*r, r)
	case ShapeBox:
		side := int(math.Ceil(math.Sqrt(float64(n) / 12)))
		if side < 1 {
			side = 1
		}
		return mesh.Box(side)
	default:
		return nil, fmt.Errorf("render: unknown shape %d for %s", s.Shape, s.Name)
	}
}

// SC1 returns the first Table II object set: high-triangle-count assets.
func SC1() []ObjectCount {
	return []ObjectCount{
		{Spec: ObjectSpec{Name: "apricot", MaxTriangles: 86016, Shape: ShapeBlob, ShapeSeed: 101, Roughness: 0.40, DistExp: 1.2}, Count: 1},
		{Spec: ObjectSpec{Name: "bike", MaxTriangles: 178552, Shape: ShapeBlob, ShapeSeed: 102, Roughness: 0.50, DistExp: 1.0}, Count: 1},
		{Spec: ObjectSpec{Name: "plane", MaxTriangles: 146803, Shape: ShapeBlob, ShapeSeed: 103, Roughness: 0.30, DistExp: 1.1}, Count: 4},
		{Spec: ObjectSpec{Name: "splane", MaxTriangles: 146803, Shape: ShapeSphere, ShapeSeed: 104, DistExp: 1.1}, Count: 1},
		{Spec: ObjectSpec{Name: "Cocacola", MaxTriangles: 94080, Shape: ShapeTorus, ShapeSeed: 105, DistExp: 1.3}, Count: 2},
	}
}

// SC2 returns the second Table II object set: lightweight assets.
func SC2() []ObjectCount {
	return []ObjectCount{
		{Spec: ObjectSpec{Name: "cabin", MaxTriangles: 2324, Shape: ShapeBox, ShapeSeed: 201, DistExp: 0.9}, Count: 1},
		{Spec: ObjectSpec{Name: "andy", MaxTriangles: 2304, Shape: ShapeBlob, ShapeSeed: 202, Roughness: 0.35, DistExp: 1.1}, Count: 2},
		{Spec: ObjectSpec{Name: "ATV", MaxTriangles: 4907, Shape: ShapeBlob, ShapeSeed: 203, Roughness: 0.45, DistExp: 1.0}, Count: 2},
		{Spec: ObjectSpec{Name: "hammer", MaxTriangles: 6250, Shape: ShapeTorus, ShapeSeed: 204, DistExp: 1.2}, Count: 2},
	}
}

// ObjectCount pairs a spec with an instance count, mirroring Table II rows.
type ObjectCount struct {
	Spec  ObjectSpec
	Count int
}

// Library holds the one-time offline training results for a set of specs:
// the ground-truth degradation laws (derived from real stand-in geometry)
// and the fitted Eq. 1 parameters each object ships with.
type Library struct {
	specs  map[string]ObjectSpec
	truths map[string]quality.Truth
	params map[string]quality.Params
}

// NewLibrary trains every spec: generate geometry, derive the ground-truth
// law from it, collect simulated GMSD samples, and fit Eq. 1. Deterministic
// in seed.
func NewLibrary(specs []ObjectSpec, seed uint64) (*Library, error) {
	l := &Library{
		specs:  make(map[string]ObjectSpec, len(specs)),
		truths: make(map[string]quality.Truth, len(specs)),
		params: make(map[string]quality.Params, len(specs)),
	}
	rng := sim.NewRNG(seed)
	for _, s := range specs {
		if _, dup := l.specs[s.Name]; dup {
			return nil, fmt.Errorf("render: duplicate spec %q", s.Name)
		}
		if s.MaxTriangles <= 0 {
			return nil, fmt.Errorf("render: spec %q has non-positive triangle count", s.Name)
		}
		g, err := s.Geometry()
		if err != nil {
			return nil, fmt.Errorf("render: geometry for %q: %w", s.Name, err)
		}
		truth, err := quality.TruthFromMesh(g, s.DistExp)
		if err != nil {
			return nil, fmt.Errorf("render: truth for %q: %w", s.Name, err)
		}
		p, err := quality.Train(truth, rng.Split(), 0.04)
		if err != nil {
			return nil, fmt.Errorf("render: training %q: %w", s.Name, err)
		}
		l.specs[s.Name] = s
		l.truths[s.Name] = truth
		l.params[s.Name] = p
	}
	return l, nil
}

// LibraryFor trains a library covering every spec in the counts list.
func LibraryFor(counts []ObjectCount, seed uint64) (*Library, error) {
	specs := make([]ObjectSpec, 0, len(counts))
	for _, c := range counts {
		specs = append(specs, c.Spec)
	}
	return NewLibrary(specs, seed)
}

// Params returns the trained Eq. 1 parameters for the named spec.
func (l *Library) Params(name string) (quality.Params, error) {
	p, ok := l.params[name]
	if !ok {
		return quality.Params{}, fmt.Errorf("render: no trained params for %q", name)
	}
	return p, nil
}

// Truth returns the ground-truth degradation law for the named spec.
func (l *Library) Truth(name string) (quality.Truth, error) {
	t, ok := l.truths[name]
	if !ok {
		return quality.Truth{}, fmt.Errorf("render: no truth for %q", name)
	}
	return t, nil
}

// Object is one placed virtual object with its current decimation state.
type Object struct {
	Spec     ObjectSpec
	Instance int
	Params   quality.Params
	Truth    quality.Truth
	// Triangles is the currently selected triangle count (TD output).
	Triangles int
	// Distance is the current user-object distance in meters.
	Distance float64
	// Geometry is the currently attached decimated mesh, fetched through an
	// LODProvider (nil until ApplyLOD runs); GeometryRatio is the ratio it
	// was fetched at.
	Geometry      *mesh.Mesh
	GeometryRatio float64
	// OutOfView marks an object currently outside the camera frustum (the
	// user turned away): it contributes no render load and no perceived
	// quality while hidden, but stays placed.
	OutOfView bool
}

// ID returns a stable identifier ("plane_3"; bare name for instance 1).
func (o *Object) ID() string {
	if o.Instance <= 1 {
		return o.Spec.Name
	}
	return fmt.Sprintf("%s_%d", o.Spec.Name, o.Instance)
}

// Ratio returns the object's decimation ratio R = selected/maximum.
func (o *Object) Ratio() float64 {
	return float64(o.Triangles) / float64(o.Spec.MaxTriangles)
}

// VisibleTriangles returns the triangle count surviving backface culling at
// the current distance. Up close the camera sees inside surfaces that
// culling would otherwise drop; far away roughly half the triangles face
// away (the paper's §IV-E observation that distance changes AI latency via
// culling).
func (o *Object) VisibleTriangles() float64 {
	if o.OutOfView {
		return 0
	}
	return float64(o.Triangles) * CullFraction(o.Distance)
}

// CullFraction is the fraction of triangles surviving backface culling at
// the given distance.
func CullFraction(dist float64) float64 {
	if dist < 1 {
		dist = 1
	}
	return 0.5 + 0.5/dist
}

// Scene is the set of on-screen virtual objects.
type Scene struct {
	lib     *Library
	objects []*Object
}

// NewScene returns an empty scene over the trained library.
func NewScene(lib *Library) *Scene {
	return &Scene{lib: lib}
}

// Place adds an instance of the named spec at full quality and the given
// distance, returning the new object.
func (s *Scene) Place(name string, instance int, distance float64) (*Object, error) {
	spec, ok := s.lib.specs[name]
	if !ok {
		return nil, fmt.Errorf("render: unknown object %q", name)
	}
	if distance <= 0 {
		return nil, fmt.Errorf("render: object %q placed at non-positive distance %v", name, distance)
	}
	o := &Object{
		Spec:      spec,
		Instance:  instance,
		Params:    s.lib.params[name],
		Truth:     s.lib.truths[name],
		Triangles: spec.MaxTriangles,
		Distance:  distance,
	}
	for _, e := range s.objects {
		if e.ID() == o.ID() {
			return nil, fmt.Errorf("render: object %s already placed", o.ID())
		}
	}
	s.objects = append(s.objects, o)
	return o, nil
}

// PlaceAll places every instance from the counts list at the given distance.
func (s *Scene) PlaceAll(counts []ObjectCount, distance float64) error {
	for _, c := range counts {
		for i := 1; i <= c.Count; i++ {
			if _, err := s.Place(c.Spec.Name, i, distance); err != nil {
				return err
			}
		}
	}
	return nil
}

// Objects returns the placed objects in placement order. The slice is
// shared; callers must not append.
func (s *Scene) Objects() []*Object { return s.objects }

// Len returns the number of placed objects (L in the paper).
func (s *Scene) Len() int { return len(s.objects) }

// Object finds a placed object by ID.
func (s *Scene) Object(id string) (*Object, error) {
	for _, o := range s.objects {
		if o.ID() == id {
			return o, nil
		}
	}
	return nil, fmt.Errorf("render: no object %s in scene", id)
}

// Remove deletes an object from the scene.
func (s *Scene) Remove(id string) error {
	for i, o := range s.objects {
		if o.ID() == id {
			s.objects = append(s.objects[:i], s.objects[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("render: no object %s in scene", id)
}

// TotalMaxTriangles returns T^max, the full-quality triangle total.
func (s *Scene) TotalMaxTriangles() int {
	sum := 0
	for _, o := range s.objects {
		sum += o.Spec.MaxTriangles
	}
	return sum
}

// TotalTriangles returns the currently selected triangle total.
func (s *Scene) TotalTriangles() int {
	sum := 0
	for _, o := range s.objects {
		sum += o.Triangles
	}
	return sum
}

// TotalRatio returns x, the current total triangle ratio.
func (s *Scene) TotalRatio() float64 {
	max := s.TotalMaxTriangles()
	if max == 0 {
		return 1
	}
	return float64(s.TotalTriangles()) / float64(max)
}

// VisibleTriangles returns the culled on-screen triangle count.
func (s *Scene) VisibleTriangles() float64 {
	sum := 0.0
	for _, o := range s.objects {
		sum += o.VisibleTriangles()
	}
	return sum
}

// RenderUtil converts visible triangles into GPU utilization for a device
// with the given per-megatriangle cost. Clamping to the device maximum
// happens in the SoC simulator.
func (s *Scene) RenderUtil(utilPerMTri float64) float64 {
	return utilPerMTri * s.VisibleTriangles() / 1e6
}

// QualityStates snapshots the Eq. 2 inputs for every on-screen object;
// out-of-view objects are not perceived and do not enter the average.
func (s *Scene) QualityStates() []quality.ObjectState {
	out := make([]quality.ObjectState, 0, len(s.objects))
	for _, o := range s.objects {
		if o.OutOfView {
			continue
		}
		out = append(out, quality.ObjectState{Params: o.Params, Ratio: o.Ratio(), Distance: o.Distance})
	}
	return out
}

// AverageQuality computes Eq. 2 over the scene using the *fitted* model —
// the quantity HBO optimizes.
func (s *Scene) AverageQuality() float64 {
	return quality.Average(s.QualityStates())
}

// TrueAverageQuality computes Eq. 2 using the ground-truth laws — the
// quantity the user study (Fig. 9) perceives. Out-of-view objects are not
// perceived.
func (s *Scene) TrueAverageQuality() float64 {
	sum := 0.0
	n := 0
	for _, o := range s.objects {
		if o.OutOfView {
			continue
		}
		sum += 1 - o.Truth.Error(o.Ratio(), o.Distance)
		n++
	}
	if n == 0 {
		return 1
	}
	return sum / float64(n)
}

// SortedIDs returns object IDs in lexical order for stable output.
func (s *Scene) SortedIDs() []string {
	ids := make([]string, len(s.objects))
	for i, o := range s.objects {
		ids[i] = o.ID()
	}
	sort.Strings(ids)
	return ids
}
