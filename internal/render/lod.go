package render

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/mesh"
)

// LODProvider supplies a decimated version of a catalog object at a given
// ratio. The edge client implements it (Fig. 3's cache → server path); a
// LocalDecimator implements it for offline operation.
type LODProvider interface {
	// Decimate returns the object's geometry at the given triangle ratio.
	Decimate(object string, ratio float64) (*mesh.Mesh, error)
}

// Availability is optionally implemented by providers whose backing service
// can go away (the edge client exposes its circuit breaker through it).
// Degradation logic checks it before issuing work, so an open circuit routes
// straight to the local fallback instead of burning a round of errors.
type Availability interface {
	// Available reports whether the provider would currently attempt work.
	Available() bool
}

// LocalDecimator runs quadric edge collapse on the spec's own geometry,
// caching full-quality meshes per object — the no-edge-server fallback.
type LocalDecimator struct {
	lib    *Library
	meshes map[string]*mesh.Mesh
}

// NewLocalDecimator builds a provider over a trained library.
func NewLocalDecimator(lib *Library) *LocalDecimator {
	return &LocalDecimator{lib: lib, meshes: make(map[string]*mesh.Mesh)}
}

// Decimate implements LODProvider.
func (d *LocalDecimator) Decimate(object string, ratio float64) (*mesh.Mesh, error) {
	spec, ok := d.lib.specs[object]
	if !ok {
		return nil, fmt.Errorf("render: unknown object %q", object)
	}
	full, ok := d.meshes[object]
	if !ok {
		g, err := spec.Geometry()
		if err != nil {
			return nil, err
		}
		d.meshes[object] = g
		full = g
	}
	return mesh.DecimateToRatio(full, ratio)
}

// ApplyLOD fetches each object's decimated geometry at its current ratio and
// attaches it — the "redraw decimated virtual objects" step of Algorithm 1
// line 23, made concrete. Objects whose ratio moved less than minDelta since
// their last fetch keep their current geometry (the provider's cache and
// this threshold together bound churn).
func (s *Scene) ApplyLOD(p LODProvider, minDelta float64) error {
	if p == nil {
		return fmt.Errorf("render: nil LOD provider")
	}
	for _, o := range s.objects {
		ratio := o.Ratio()
		if o.Geometry != nil && absf(ratio-o.GeometryRatio) < minDelta {
			continue
		}
		g, err := p.Decimate(o.Spec.Name, ratio)
		if err != nil {
			return fmt.Errorf("render: LOD for %s: %w", o.ID(), err)
		}
		o.Geometry = g
		o.GeometryRatio = ratio
	}
	return nil
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
