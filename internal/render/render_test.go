package render

import (
	"math"
	"testing"
)

func sc1Library(t *testing.T) *Library {
	t.Helper()
	lib, err := LibraryFor(SC1(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return lib
}

func TestSC1MatchesTableII(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	if err := scene.PlaceAll(SC1(), 1.5); err != nil {
		t.Fatal(err)
	}
	if scene.Len() != 9 {
		t.Fatalf("SC1 has %d objects, want 9", scene.Len())
	}
	want := 86016 + 178552 + 4*146803 + 146803 + 2*94080
	if got := scene.TotalMaxTriangles(); got != want {
		t.Fatalf("SC1 T^max = %d, want %d", got, want)
	}
	if r := scene.TotalRatio(); r != 1 {
		t.Fatalf("fresh scene ratio = %v, want 1", r)
	}
}

func TestSC2MatchesTableII(t *testing.T) {
	lib, err := LibraryFor(SC2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	scene := NewScene(lib)
	if err := scene.PlaceAll(SC2(), 1.5); err != nil {
		t.Fatal(err)
	}
	if scene.Len() != 7 {
		t.Fatalf("SC2 has %d objects, want 7", scene.Len())
	}
	want := 2324 + 2*2304 + 2*4907 + 2*6250
	if got := scene.TotalMaxTriangles(); got != want {
		t.Fatalf("SC2 T^max = %d, want %d", got, want)
	}
}

func TestPlaceDuplicateRejected(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	if _, err := scene.Place("apricot", 1, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := scene.Place("apricot", 1, 2); err == nil {
		t.Fatal("duplicate placement accepted")
	}
	if _, err := scene.Place("ghost", 1, 1); err == nil {
		t.Fatal("unknown object accepted")
	}
	if _, err := scene.Place("bike", 1, 0); err == nil {
		t.Fatal("zero distance accepted")
	}
}

func TestObjectIDAndRatio(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	o1, err := scene.Place("plane", 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	o3, err := scene.Place("plane", 3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if o1.ID() != "plane" || o3.ID() != "plane_3" {
		t.Fatalf("IDs = %s, %s", o1.ID(), o3.ID())
	}
	o1.Triangles = o1.Spec.MaxTriangles / 2
	if math.Abs(o1.Ratio()-0.5) > 1e-4 {
		t.Fatalf("ratio = %v, want 0.5", o1.Ratio())
	}
}

func TestCullFraction(t *testing.T) {
	if f := CullFraction(1); f != 1 {
		t.Fatalf("cull at 1m = %v, want 1", f)
	}
	if f := CullFraction(0.3); f != 1 {
		t.Fatalf("cull below 1m = %v, want clamped to 1", f)
	}
	far := CullFraction(10)
	if far <= 0.5 || far >= CullFraction(2) {
		t.Fatalf("cull fraction should decrease toward 0.5 with distance, got %v", far)
	}
}

func TestVisibleTrianglesDecreaseWithDistance(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	o, err := scene.Place("bike", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	near := scene.VisibleTriangles()
	o.Distance = 5
	farVis := scene.VisibleTriangles()
	if farVis >= near {
		t.Fatalf("visible triangles %v -> %v, want decrease with distance", near, farVis)
	}
	if u := scene.RenderUtil(0.66); u <= 0 {
		t.Fatalf("render util = %v, want positive", u)
	}
}

func TestAverageQualityRespondsToRatio(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	if err := scene.PlaceAll(SC1(), 1.5); err != nil {
		t.Fatal(err)
	}
	full := scene.AverageQuality()
	if full < 0.9 {
		t.Fatalf("full quality = %v, want >= 0.9 (no decimation)", full)
	}
	for _, o := range scene.Objects() {
		o.Triangles = o.Spec.MaxTriangles / 4
	}
	reduced := scene.AverageQuality()
	if reduced >= full {
		t.Fatalf("quality at 25%% triangles (%v) should be below full (%v)", reduced, full)
	}
	trueQ := scene.TrueAverageQuality()
	if math.Abs(trueQ-reduced) > 0.2 {
		t.Fatalf("true quality %v far from fitted %v", trueQ, reduced)
	}
}

func TestRemoveObject(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	if _, err := scene.Place("apricot", 1, 1.5); err != nil {
		t.Fatal(err)
	}
	if err := scene.Remove("apricot"); err != nil {
		t.Fatal(err)
	}
	if scene.Len() != 0 {
		t.Fatal("scene not empty after removal")
	}
	if err := scene.Remove("apricot"); err == nil {
		t.Fatal("double removal succeeded")
	}
}

func TestLibraryRejectsBadSpecs(t *testing.T) {
	_, err := NewLibrary([]ObjectSpec{
		{Name: "a", MaxTriangles: 100, Shape: ShapeSphere},
		{Name: "a", MaxTriangles: 100, Shape: ShapeSphere},
	}, 1)
	if err == nil {
		t.Fatal("duplicate spec accepted")
	}
	_, err = NewLibrary([]ObjectSpec{{Name: "z", MaxTriangles: 0, Shape: ShapeSphere}}, 1)
	if err == nil {
		t.Fatal("zero triangles accepted")
	}
}

func TestLibraryDeterministic(t *testing.T) {
	l1, err := LibraryFor(SC2(), 9)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := LibraryFor(SC2(), 9)
	if err != nil {
		t.Fatal(err)
	}
	p1, _ := l1.Params("cabin")
	p2, _ := l2.Params("cabin")
	if p1 != p2 {
		t.Fatalf("library training not deterministic: %+v vs %+v", p1, p2)
	}
}

func TestGeometryShapes(t *testing.T) {
	for _, spec := range []ObjectSpec{
		{Name: "b", MaxTriangles: 500, Shape: ShapeBlob, Roughness: 0.3},
		{Name: "s", MaxTriangles: 500, Shape: ShapeSphere},
		{Name: "t", MaxTriangles: 500, Shape: ShapeTorus},
		{Name: "x", MaxTriangles: 500, Shape: ShapeBox},
	} {
		g, err := spec.Geometry()
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		if g.TriangleCount() < 100 {
			t.Fatalf("%s geometry too small: %d", spec.Name, g.TriangleCount())
		}
	}
	if _, err := (ObjectSpec{Name: "bad", MaxTriangles: 100}).Geometry(); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestApplyLODLocal(t *testing.T) {
	lib, err := LibraryFor(SC2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	scene := NewScene(lib)
	if err := scene.PlaceAll(SC2(), 1.5); err != nil {
		t.Fatal(err)
	}
	for _, o := range scene.Objects() {
		o.Triangles = o.Spec.MaxTriangles / 2
	}
	dec := NewLocalDecimator(lib)
	if err := scene.ApplyLOD(dec, 0.02); err != nil {
		t.Fatal(err)
	}
	for _, o := range scene.Objects() {
		if o.Geometry == nil {
			t.Fatalf("object %s has no geometry after ApplyLOD", o.ID())
		}
		if err := o.Geometry.Validate(); err != nil {
			t.Fatalf("object %s: %v", o.ID(), err)
		}
		// The attached geometry reflects the requested ratio of the
		// stand-in mesh (capped geometry, so compare ratios not counts).
		full, err := o.Spec.Geometry()
		if err != nil {
			t.Fatal(err)
		}
		got := float64(o.Geometry.TriangleCount()) / float64(full.TriangleCount())
		if math.Abs(got-0.5) > 0.15 {
			t.Errorf("object %s geometry at ratio %.2f, want ~0.5", o.ID(), got)
		}
		if math.Abs(o.GeometryRatio-o.Ratio()) > 1e-9 {
			t.Errorf("object %s GeometryRatio %.3f != Ratio %.3f", o.ID(), o.GeometryRatio, o.Ratio())
		}
	}
	// A tiny ratio change below the threshold keeps the old geometry.
	obj := scene.Objects()[0]
	before := obj.Geometry
	obj.Triangles += 1
	if err := scene.ApplyLOD(dec, 0.02); err != nil {
		t.Fatal(err)
	}
	if obj.Geometry != before {
		t.Error("sub-threshold ratio change refetched geometry")
	}
	// A large change refetches.
	obj.Triangles = obj.Spec.MaxTriangles / 10
	if err := scene.ApplyLOD(dec, 0.02); err != nil {
		t.Fatal(err)
	}
	if obj.Geometry == before {
		t.Error("large ratio change did not refetch geometry")
	}
	if err := scene.ApplyLOD(nil, 0.02); err == nil {
		t.Error("nil provider accepted")
	}
}

func TestLocalDecimatorUnknownObject(t *testing.T) {
	lib, err := LibraryFor(SC2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLocalDecimator(lib).Decimate("ghost", 0.5); err == nil {
		t.Fatal("unknown object accepted")
	}
}

func TestOutOfViewObjects(t *testing.T) {
	lib := sc1Library(t)
	scene := NewScene(lib)
	if err := scene.PlaceAll(SC1(), 1.5); err != nil {
		t.Fatal(err)
	}
	full := scene.VisibleTriangles()
	bike, err := scene.Object("bike")
	if err != nil {
		t.Fatal(err)
	}
	bike.OutOfView = true
	hidden := scene.VisibleTriangles()
	if hidden >= full {
		t.Fatalf("hiding bike did not reduce visible triangles: %v -> %v", full, hidden)
	}
	want := full - float64(bike.Triangles)*CullFraction(bike.Distance)
	if math.Abs(hidden-want) > 1 {
		t.Fatalf("visible after hide = %v, want %v", hidden, want)
	}
	// A hidden degraded object does not drag quality down.
	bike.Triangles = bike.Spec.MaxTriangles / 20
	qHidden := scene.AverageQuality()
	bike.OutOfView = false
	qShown := scene.AverageQuality()
	if qShown >= qHidden {
		t.Fatalf("showing a heavily decimated object should reduce quality: %v -> %v", qHidden, qShown)
	}
	// Hiding everything leaves perfect quality by convention.
	for _, o := range scene.Objects() {
		o.OutOfView = true
	}
	if q := scene.AverageQuality(); q != 1 {
		t.Fatalf("all-hidden quality = %v, want 1", q)
	}
	if q := scene.TrueAverageQuality(); q != 1 {
		t.Fatalf("all-hidden true quality = %v, want 1", q)
	}
}
