// Package tasks defines the AI workload vocabulary of the reproduction: the
// deep-learning models from Table I of the paper (plus mnist, used in the
// Table II tasksets), the resources they can be allocated to, and the CF1/CF2
// taskset definitions. The per-device latency numbers live with the device
// profiles in internal/soc; this package carries only device-independent
// metadata.
package tasks

import "fmt"

// Resource identifies a coarse-grained allocation target for an AI task, the
// same three choices the paper's HBO explores on Android: plain CPU
// inference, the TFLite GPU delegate, or the NNAPI delegate (which internally
// splits operations across NPU and GPU).
type Resource int

// Allocation targets. The integer values index the c-vector of the Bayesian
// optimizer, so they must stay dense and start at zero.
const (
	CPU Resource = iota
	GPU
	NNAPI

	// NumResources is the size of the allocation vector (N in the paper).
	NumResources = 3
)

// String returns the short resource name used throughout the paper's figures
// (C, G, N expand to these).
func (r Resource) String() string {
	switch r {
	case CPU:
		return "CPU"
	case GPU:
		return "GPU"
	case NNAPI:
		return "NNAPI"
	default:
		return fmt.Sprintf("Resource(%d)", int(r))
	}
}

// Letter returns the single-letter code used in Figure 2's allocation
// markers (C1, G3, N5, ...).
func (r Resource) Letter() string {
	switch r {
	case CPU:
		return "C"
	case GPU:
		return "G"
	case NNAPI:
		return "N"
	default:
		return "?"
	}
}

// Resources lists all allocation targets in c-vector order.
func Resources() []Resource {
	return []Resource{CPU, GPU, NNAPI}
}

// Kind is the AI task category, matching Table I's legend.
type Kind int

// Task categories from Table I plus digit classification (mnist, Table II).
const (
	ImageSegmentation Kind = iota + 1
	ObjectDetection
	ImageClassification
	GestureDetection
	DigitClassification
)

// String returns the Table I abbreviation for the kind.
func (k Kind) String() string {
	switch k {
	case ImageSegmentation:
		return "IS"
	case ObjectDetection:
		return "OD"
	case ImageClassification:
		return "IC"
	case GestureDetection:
		return "GD"
	case DigitClassification:
		return "DC"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Model is device-independent metadata for a deep-learning model.
type Model struct {
	// Name is the identifier used in the paper's tables (e.g. "deeplabv3").
	Name string
	// Kind is the task category.
	Kind Kind
}

// Models in the registry, in Table I order, then mnist.
const (
	DeconvMUNet      = "deconv-munet"
	DeepLabV3        = "deeplabv3"
	EfficientDetLite = "efficientdet-lite"
	MobileNetDetV1   = "mobilenetDetv1"
	EfficientLiteV0  = "efficientclass-lite0"
	InceptionV1Q     = "inception-v1-q"
	MobileNetV1      = "mobilenetv1"
	ModelMetadata    = "model-metadata"
	MNIST            = "mnist"
)

var registry = []Model{
	{Name: DeconvMUNet, Kind: ImageSegmentation},
	{Name: DeepLabV3, Kind: ImageSegmentation},
	{Name: EfficientDetLite, Kind: ObjectDetection},
	{Name: MobileNetDetV1, Kind: ObjectDetection},
	{Name: EfficientLiteV0, Kind: ImageClassification},
	{Name: InceptionV1Q, Kind: ImageClassification},
	{Name: MobileNetV1, Kind: ImageClassification},
	{Name: ModelMetadata, Kind: GestureDetection},
	{Name: MNIST, Kind: DigitClassification},
}

// All returns the model registry in stable (Table I) order. The returned
// slice is a copy.
func All() []Model {
	out := make([]Model, len(registry))
	copy(out, registry)
	return out
}

// ByName looks a model up by its Table I name.
func ByName(name string) (Model, error) {
	for _, m := range registry {
		if m.Name == name {
			return m, nil
		}
	}
	return Model{}, fmt.Errorf("tasks: unknown model %q", name)
}

// Task is one running AI task instance: a model plus an instance index, so a
// taskset can contain several copies of the same model (e.g. the two
// model-metadata instances of CF1, or the five deeplabv3 instances of the
// Figure 2b motivation study).
type Task struct {
	// Model is the underlying model name.
	Model string
	// Instance distinguishes copies of the same model, starting at 1.
	Instance int
}

// ID returns a stable human-readable identifier ("model-metadata_2"). For
// single-instance models it is just the model name, matching the paper's
// tables.
func (t Task) ID() string {
	if t.Instance <= 1 {
		return t.Model
	}
	return fmt.Sprintf("%s_%d", t.Model, t.Instance)
}

// Set is a named AI taskset (CF1, CF2, or an ad-hoc one for the motivation
// experiments).
type Set struct {
	Name  string
	Tasks []Task
}

// Expand builds the task list for a multiset of (model, count) pairs,
// numbering instances from 1 within each model.
func Expand(name string, counts []ModelCount) (Set, error) {
	s := Set{Name: name}
	for _, mc := range counts {
		if _, err := ByName(mc.Model); err != nil {
			return Set{}, fmt.Errorf("taskset %s: %w", name, err)
		}
		if mc.Count <= 0 {
			return Set{}, fmt.Errorf("taskset %s: model %s has non-positive count %d", name, mc.Model, mc.Count)
		}
		for i := 1; i <= mc.Count; i++ {
			s.Tasks = append(s.Tasks, Task{Model: mc.Model, Instance: i})
		}
	}
	return s, nil
}

// ModelCount pairs a model name with an instance count, mirroring the rows of
// Table II's taskset listings.
type ModelCount struct {
	Model string
	Count int
}

// CF1 returns the first Table II taskset: six AI tasks, three with GPU
// affinity (mnist plus two model-metadata instances) and three with NNAPI
// affinity (mobilenetDetv1, mobilenetv1, efficientclass-lite0).
func CF1() Set {
	s, err := Expand("CF1", []ModelCount{
		{Model: MNIST, Count: 1},
		{Model: MobileNetDetV1, Count: 1},
		{Model: ModelMetadata, Count: 2},
		{Model: MobileNetV1, Count: 1},
		{Model: EfficientLiteV0, Count: 1},
	})
	if err != nil {
		// The built-in tasksets are static data; failure is a programming error.
		panic(err)
	}
	return s
}

// CF2 returns the second Table II taskset: three AI tasks, one favoring GPU
// (mnist) and two favoring NNAPI.
func CF2() Set {
	s, err := Expand("CF2", []ModelCount{
		{Model: MNIST, Count: 1},
		{Model: MobileNetDetV1, Count: 1},
		{Model: EfficientLiteV0, Count: 1},
	})
	if err != nil {
		panic(err)
	}
	return s
}
