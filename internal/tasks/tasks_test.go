package tasks

import "testing"

func TestRegistryContainsTableIModels(t *testing.T) {
	want := []string{
		DeconvMUNet, DeepLabV3, EfficientDetLite, MobileNetDetV1,
		EfficientLiteV0, InceptionV1Q, MobileNetV1, ModelMetadata, MNIST,
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d models, want %d", len(all), len(want))
	}
	for i, name := range want {
		if all[i].Name != name {
			t.Errorf("registry[%d] = %s, want %s", i, all[i].Name, name)
		}
	}
}

func TestByName(t *testing.T) {
	m, err := ByName(DeepLabV3)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != ImageSegmentation {
		t.Fatalf("deeplabv3 kind = %v, want IS", m.Kind)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) succeeded, want error")
	}
}

func TestAllReturnsCopy(t *testing.T) {
	a := All()
	a[0].Name = "mutated"
	if All()[0].Name == "mutated" {
		t.Fatal("All exposes internal registry storage")
	}
}

func TestTaskID(t *testing.T) {
	cases := []struct {
		task Task
		want string
	}{
		{Task{Model: MNIST, Instance: 1}, "mnist"},
		{Task{Model: ModelMetadata, Instance: 2}, "model-metadata_2"},
		{Task{Model: DeepLabV3, Instance: 5}, "deeplabv3_5"},
	}
	for _, c := range cases {
		if got := c.task.ID(); got != c.want {
			t.Errorf("ID(%v) = %s, want %s", c.task, got, c.want)
		}
	}
}

func TestCF1MatchesTableII(t *testing.T) {
	s := CF1()
	if len(s.Tasks) != 6 {
		t.Fatalf("CF1 has %d tasks, want 6", len(s.Tasks))
	}
	counts := map[string]int{}
	for _, task := range s.Tasks {
		counts[task.Model]++
	}
	want := map[string]int{
		MNIST: 1, MobileNetDetV1: 1, ModelMetadata: 2, MobileNetV1: 1, EfficientLiteV0: 1,
	}
	for m, n := range want {
		if counts[m] != n {
			t.Errorf("CF1 count[%s] = %d, want %d", m, counts[m], n)
		}
	}
}

func TestCF2MatchesTableII(t *testing.T) {
	s := CF2()
	if len(s.Tasks) != 3 {
		t.Fatalf("CF2 has %d tasks, want 3", len(s.Tasks))
	}
}

func TestExpandRejectsUnknownModel(t *testing.T) {
	if _, err := Expand("bad", []ModelCount{{Model: "nope", Count: 1}}); err == nil {
		t.Fatal("Expand accepted unknown model")
	}
	if _, err := Expand("bad", []ModelCount{{Model: MNIST, Count: 0}}); err == nil {
		t.Fatal("Expand accepted zero count")
	}
}

func TestResourceStrings(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" || NNAPI.String() != "NNAPI" {
		t.Fatal("resource names wrong")
	}
	if CPU.Letter() != "C" || GPU.Letter() != "G" || NNAPI.Letter() != "N" {
		t.Fatal("resource letters wrong")
	}
	if len(Resources()) != NumResources {
		t.Fatal("Resources() length mismatch")
	}
}

func TestKindStrings(t *testing.T) {
	pairs := map[Kind]string{
		ImageSegmentation:   "IS",
		ObjectDetection:     "OD",
		ImageClassification: "IC",
		GestureDetection:    "GD",
		DigitClassification: "DC",
	}
	for k, want := range pairs {
		if k.String() != want {
			t.Errorf("%v.String() = %s, want %s", int(k), k.String(), want)
		}
	}
}
