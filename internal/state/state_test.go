package state

import (
	"bytes"
	"strings"
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func TestProfileRoundTrip(t *testing.T) {
	p, err := soc.ProfileTaskset(soc.Pixel7(), tasks.CF1(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveProfile(&buf, "Google Pixel 7", p); err != nil {
		t.Fatal(err)
	}
	back, device, err := LoadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if device != "Google Pixel 7" {
		t.Fatalf("device = %q", device)
	}
	if len(back.Entries) != len(p.Entries) {
		t.Fatalf("entries %d -> %d", len(p.Entries), len(back.Entries))
	}
	for i := range p.Entries {
		if back.Entries[i] != p.Entries[i] {
			t.Fatalf("entry %d changed: %+v -> %+v", i, p.Entries[i], back.Entries[i])
		}
	}
	for id, v := range p.Expected {
		if back.Expected[id] != v {
			t.Fatalf("expected[%s] %v -> %v", id, v, back.Expected[id])
		}
	}
	for id, r := range p.Best {
		if back.Best[id] != r {
			t.Fatalf("best[%s] %v -> %v", id, r, back.Best[id])
		}
	}
}

func TestLoadProfileSortsEntries(t *testing.T) {
	// Hand-built file with out-of-order entries: loading must restore the
	// priority-queue invariant.
	doc := `{"version":1,"device":"x","entries":[
		{"task":"a","resource":"CPU","latency_ms":30},
		{"task":"b","resource":"GPU","latency_ms":10}
	],"expected_ms":{"a":30,"b":10},"best_resource":{"a":"CPU","b":"GPU"}}`
	p, _, err := LoadProfile(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if p.Entries[0].TaskID != "b" {
		t.Fatalf("entries not sorted by latency: %+v", p.Entries)
	}
}

func TestLoadProfileErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":      "not json",
		"bad version":  `{"version":9}`,
		"bad resource": `{"version":1,"entries":[{"task":"a","resource":"TPU","latency_ms":5}]}`,
		"bad latency":  `{"version":1,"entries":[{"task":"a","resource":"CPU","latency_ms":0}]}`,
		"bad best":     `{"version":1,"best_resource":{"a":"XPU"}}`,
	}
	for name, doc := range cases {
		if _, _, err := LoadProfile(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	tab := core.NewLookupTable()
	k1 := core.EnvironmentKey{Taskset: "CF1", TriBucket: 20, DistBucket: 3, Objects: 9}
	k2 := core.EnvironmentKey{Taskset: "CF2", TriBucket: 14, DistBucket: 2, Objects: 7}
	tab.Store(k1, core.LookupEntry{Point: []float64{0.4, 0.1, 0.5, 0.72}, Reward: 0.3})
	tab.Store(k2, core.LookupEntry{Point: []float64{0.0, 0.3, 0.7, 1.0}, Reward: 0.8})

	var buf bytes.Buffer
	if err := SaveLookup(&buf, tab); err != nil {
		t.Fatal(err)
	}
	back, err := LoadLookup(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("loaded %d rows", back.Len())
	}
	e, ok := back.Find(k1)
	if !ok {
		t.Fatal("k1 missing after round trip")
	}
	if e.Reward != 0.3 || e.Point[3] != 0.72 {
		t.Fatalf("k1 entry changed: %+v", e)
	}
}

func TestSaveLookupDeterministic(t *testing.T) {
	tab := core.NewLookupTable()
	for i := 0; i < 8; i++ {
		tab.Store(core.EnvironmentKey{Taskset: "CF1", TriBucket: i, Objects: i},
			core.LookupEntry{Point: []float64{1, 0, 0, 1}, Reward: float64(i)})
	}
	var a, b bytes.Buffer
	if err := SaveLookup(&a, tab); err != nil {
		t.Fatal(err)
	}
	if err := SaveLookup(&b, tab); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("lookup serialization not deterministic")
	}
}

func TestLoadLookupErrors(t *testing.T) {
	if _, err := LoadLookup(strings.NewReader("nope")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadLookup(strings.NewReader(`{"version":5}`)); err == nil {
		t.Fatal("bad version accepted")
	}
	if _, err := LoadLookup(strings.NewReader(`{"version":1,"rows":[{"taskset":"x","point":[]}]}`)); err == nil {
		t.Fatal("empty point accepted")
	}
}
