// Package state persists HBO's durable artifacts as JSON: the one-time
// offline profile (the paper's priority queue P and expected latencies τ_e)
// and the §VI lookup table of remembered solutions. Persisting them is what
// makes the paper's "one-time operation, little inconvenience to the user"
// story real across app restarts.
package state

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// profileDoc is the on-disk profile format.
type profileDoc struct {
	Version  int                `json:"version"`
	Device   string             `json:"device"`
	Entries  []profileEntry     `json:"entries"`
	Expected map[string]float64 `json:"expected_ms"`
	Best     map[string]string  `json:"best_resource"`
}

type profileEntry struct {
	Task      string  `json:"task"`
	Resource  string  `json:"resource"`
	LatencyMS float64 `json:"latency_ms"`
}

const profileVersion = 1

// SaveProfile writes the profile as JSON, tagged with the device it was
// measured on (profiles are device-specific, like the paper's).
func SaveProfile(w io.Writer, device string, p *soc.Profile) error {
	doc := profileDoc{
		Version:  profileVersion,
		Device:   device,
		Expected: p.Expected,
		Best:     make(map[string]string, len(p.Best)),
	}
	for id, r := range p.Best {
		doc.Best[id] = r.String()
	}
	for _, e := range p.Entries {
		doc.Entries = append(doc.Entries, profileEntry{
			Task: e.TaskID, Resource: e.Resource.String(), LatencyMS: e.LatencyMS,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadProfile reads a profile written by SaveProfile, returning it and the
// device name it was measured on.
func LoadProfile(r io.Reader) (*soc.Profile, string, error) {
	var doc profileDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, "", fmt.Errorf("state: decoding profile: %w", err)
	}
	if doc.Version != profileVersion {
		return nil, "", fmt.Errorf("state: unsupported profile version %d", doc.Version)
	}
	p := &soc.Profile{
		Expected: doc.Expected,
		Best:     make(map[string]tasks.Resource, len(doc.Best)),
	}
	if p.Expected == nil {
		p.Expected = map[string]float64{}
	}
	for id, name := range doc.Best {
		r, err := parseResource(name)
		if err != nil {
			return nil, "", err
		}
		p.Best[id] = r
	}
	for _, e := range doc.Entries {
		r, err := parseResource(e.Resource)
		if err != nil {
			return nil, "", err
		}
		if e.LatencyMS <= 0 {
			return nil, "", fmt.Errorf("state: entry %s/%s has non-positive latency", e.Task, e.Resource)
		}
		p.Entries = append(p.Entries, soc.ProfileEntry{
			TaskID: e.Task, Resource: r, LatencyMS: e.LatencyMS,
		})
	}
	// Defend the priority-queue invariant regardless of file ordering.
	sort.SliceStable(p.Entries, func(i, j int) bool {
		return p.Entries[i].LatencyMS < p.Entries[j].LatencyMS
	})
	return p, doc.Device, nil
}

func parseResource(name string) (tasks.Resource, error) {
	for _, r := range tasks.Resources() {
		if r.String() == name {
			return r, nil
		}
	}
	return 0, fmt.Errorf("state: unknown resource %q", name)
}

// lookupDoc is the on-disk lookup-table format; map keys are flattened into
// rows because JSON objects need string keys.
type lookupDoc struct {
	Version int         `json:"version"`
	Rows    []lookupRow `json:"rows"`
}

type lookupRow struct {
	Taskset    string    `json:"taskset"`
	TriBucket  int       `json:"tri_bucket"`
	DistBucket int       `json:"dist_bucket"`
	Objects    int       `json:"objects"`
	Point      []float64 `json:"point"`
	Reward     float64   `json:"reward"`
}

const lookupVersion = 1

// SaveLookup writes the lookup table as JSON, rows sorted for stable output.
func SaveLookup(w io.Writer, t *core.LookupTable) error {
	doc := lookupDoc{Version: lookupVersion}
	for k, e := range t.Entries() {
		doc.Rows = append(doc.Rows, lookupRow{
			Taskset: k.Taskset, TriBucket: k.TriBucket, DistBucket: k.DistBucket,
			Objects: k.Objects, Point: e.Point, Reward: e.Reward,
		})
	}
	sort.Slice(doc.Rows, func(i, j int) bool {
		a, b := doc.Rows[i], doc.Rows[j]
		if a.Taskset != b.Taskset {
			return a.Taskset < b.Taskset
		}
		if a.TriBucket != b.TriBucket {
			return a.TriBucket < b.TriBucket
		}
		if a.DistBucket != b.DistBucket {
			return a.DistBucket < b.DistBucket
		}
		return a.Objects < b.Objects
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// LoadLookup reads a lookup table written by SaveLookup.
func LoadLookup(r io.Reader) (*core.LookupTable, error) {
	var doc lookupDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("state: decoding lookup table: %w", err)
	}
	if doc.Version != lookupVersion {
		return nil, fmt.Errorf("state: unsupported lookup version %d", doc.Version)
	}
	t := core.NewLookupTable()
	for _, row := range doc.Rows {
		if len(row.Point) == 0 {
			return nil, fmt.Errorf("state: lookup row for %s has empty point", row.Taskset)
		}
		t.Store(core.EnvironmentKey{
			Taskset: row.Taskset, TriBucket: row.TriBucket,
			DistBucket: row.DistBucket, Objects: row.Objects,
		}, core.LookupEntry{Point: row.Point, Reward: row.Reward})
	}
	return t, nil
}
