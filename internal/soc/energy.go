package soc

// Energy accounting. The paper's quality model is borrowed from eAR, whose
// objective is energy; and §VI weighs the energy overhead of offloading.
// This file extends the SoC simulator with a simple utilization-based power
// model so configurations can also be compared on average power — one of the
// repository's extension experiments (see experiments.RunEnergyStudy).

// PowerProfile holds a device's power model: a constant platform draw plus
// per-unit active power scaled by utilization.
type PowerProfile struct {
	// IdleW is the platform draw with screen on and everything idle.
	IdleW float64
	// CPUCoreW is the draw of one fully busy core-equivalent.
	CPUCoreW float64
	// GPUW is the draw of the fully busy GPU (rendering plus compute).
	GPUW float64
	// NPUW is the draw of the busy NPU.
	NPUW float64
}

// defaultPower returns a smartphone-plausible power model; both calibrated
// devices use the same one (the paper does not report power).
func defaultPower() PowerProfile {
	return PowerProfile{IdleW: 0.9, CPUCoreW: 1.4, GPUW: 2.6, NPUW: 1.1}
}

// currentPowerW returns the instantaneous platform power for the system's
// present state.
func (s *System) currentPowerW() float64 {
	p := s.dev.Power
	w := p.IdleW

	// CPU: each active AI phase draws its service rate in core-equivalents;
	// the app's own render/tracking threads draw CPURenderLoad.
	cpuUtil := s.dev.CPURenderLoad
	for _, ph := range s.active[cpuUnit] {
		cpuUtil += ph.rate
	}
	w += p.CPUCoreW * cpuUtil

	// GPU: rendering plus the share AI compute actually receives.
	gpuUtil := s.renderUtil
	for _, ph := range s.active[gpuUnit] {
		gpuUtil += ph.rate
	}
	if gpuUtil > 1 {
		gpuUtil = 1
	}
	w += p.GPUW * gpuUtil

	// NPU: busy whenever any NNAPI phase is resident.
	if len(s.active[npuUnit]) > 0 {
		w += p.NPUW
	}
	return w
}

// accrueEnergy integrates the power that held since the last state change.
// reschedule refreshes powerW after reassigning rates.
func (s *System) accrueEnergy() {
	now := s.eng.Now()
	dt := now - s.lastEnergyT
	if dt > 0 {
		s.energyMJ += s.powerW * dt // W × ms = mJ
		s.advanceThermal(dt, s.powerW)
	}
	s.lastEnergyT = now
}

// EnergyMJ returns the total energy consumed since construction (or the last
// ResetEnergy) in millijoules, up to the current virtual time.
func (s *System) EnergyMJ() float64 {
	s.accrueEnergy()
	return s.energyMJ
}

// ResetEnergy clears the energy accumulator (start of a measurement window).
func (s *System) ResetEnergy() {
	s.accrueEnergy()
	s.energyMJ = 0
}

// AveragePowerW returns the mean platform power over a window that consumed
// energyMJ in windowMS of virtual time.
func AveragePowerW(energyMJ, windowMS float64) float64 {
	if windowMS <= 0 {
		return 0
	}
	return energyMJ / windowMS
}
