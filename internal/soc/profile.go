package soc

import (
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// ProfileEntry is one measured (task, resource) latency from isolation
// profiling: the elements of the paper's priority queue P.
type ProfileEntry struct {
	TaskID    string
	Resource  tasks.Resource
	LatencyMS float64
}

// Profile is the result of the paper's one-time offline profiling: for each
// task of a taskset, the isolation latency on every supported resource, plus
// the expected latency τ_e on the most suitable resource (Eq. 4).
type Profile struct {
	// Entries holds every supported (task, resource) pair sorted by
	// non-decreasing latency — the priority queue P of Algorithm 1.
	Entries []ProfileEntry
	// Expected maps task ID to τ_e, the isolation latency on the task's
	// best resource.
	Expected map[string]float64
	// Best maps task ID to its best isolation resource (used by the static
	// baselines SMQ and SML).
	Best map[string]tasks.Resource
}

// ProfileTaskset measures each task of the set in isolation on each
// supported resource by running the simulator with a single task, no other
// AI tasks, and no virtual objects — exactly the paper's profiling protocol.
// The measurement window is long enough to average out run-to-run noise.
func ProfileTaskset(dev *DeviceProfile, set tasks.Set, seed uint64) (*Profile, error) {
	p := &Profile{
		Expected: make(map[string]float64, len(set.Tasks)),
		Best:     make(map[string]tasks.Resource, len(set.Tasks)),
	}
	for _, t := range set.Tasks {
		mp, err := dev.Model(t.Model)
		if err != nil {
			return nil, err
		}
		bestLat := math.Inf(1)
		for _, r := range tasks.Resources() {
			if !mp.Supported(r) {
				continue
			}
			lat, err := measureIsolation(dev, t, r, seed)
			if err != nil {
				return nil, err
			}
			p.Entries = append(p.Entries, ProfileEntry{TaskID: t.ID(), Resource: r, LatencyMS: lat})
			if lat < bestLat {
				bestLat = lat
				p.Best[t.ID()] = r
			}
		}
		p.Expected[t.ID()] = bestLat
	}
	sort.SliceStable(p.Entries, func(i, j int) bool {
		return p.Entries[i].LatencyMS < p.Entries[j].LatencyMS
	})
	return p, nil
}

// measureIsolation runs one task alone on one resource and returns its mean
// latency over the profiling window.
func measureIsolation(dev *DeviceProfile, t tasks.Task, r tasks.Resource, seed uint64) (float64, error) {
	eng := sim.NewEngine(seed)
	sys := NewSystem(eng, dev, DefaultConfig())
	if err := sys.AddTask(t, r); err != nil {
		return 0, err
	}
	// Warm up briefly (delegate initialization), then measure.
	sys.RunFor(500)
	sys.ResetWindow()
	sys.RunFor(3000)
	st := sys.WindowStats()[t.ID()]
	return st.MeanLatencyMS, nil
}

// TableI regenerates the paper's Table I for the device: isolation latency
// of every registry model on every resource, with NaN for unsupported
// delegates. Rows follow registry order; columns follow (GPU, NNAPI, CPU)
// as printed in the paper.
func TableI(dev *DeviceProfile, seed uint64) (map[string][tasks.NumResources]float64, error) {
	out := make(map[string][tasks.NumResources]float64)
	for _, m := range tasks.All() {
		mp, err := dev.Model(m.Name)
		if err != nil {
			return nil, err
		}
		var row [tasks.NumResources]float64
		for _, r := range tasks.Resources() {
			if !mp.Supported(r) {
				row[r] = math.NaN()
				continue
			}
			lat, err := measureIsolation(dev, tasks.Task{Model: m.Name, Instance: 1}, r, seed)
			if err != nil {
				return nil, err
			}
			row[r] = lat
		}
		out[m.Name] = row
	}
	return out, nil
}
