// Package soc simulates a heterogeneous mobile System-on-Chip: CPU, GPU and
// NPU compute units, the three coarse-grained allocation targets the paper
// uses (CPU inference, GPU delegate, NNAPI delegate), and the contention
// between AI inference jobs and AR rendering load on the GPU.
//
// The simulator is the substitute for the paper's physical Pixel 7 and
// Galaxy S22 phones (see DESIGN.md §2). It is calibrated so that profiling
// each model in isolation reproduces Table I of the paper exactly, while
// co-location produces the emergent behaviours of the paper's Figure 2:
// super-linear latency growth when tasks pile on a delegate, coupling
// between virtual-object triangle count and NNAPI/GPU latency, and relief
// when tasks move to an idle CPU.
package soc

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/tasks"
)

// ModelProfile carries the per-device behaviour of one AI model.
type ModelProfile struct {
	// LatencyMS is the isolation response time on each resource, indexed by
	// tasks.Resource. NaN marks an unsupported delegate (the NA cells of
	// Table I).
	LatencyMS [tasks.NumResources]float64

	// NPUFraction is the share of the model's NNAPI work that runs on the
	// NPU. Only meaningful when the NNAPI latency is not NaN.
	NPUFraction float64

	// CPUFraction is the share of the model's NNAPI work whose operators
	// are unsupported on accelerators and fall back to the CPU; the
	// remainder (1 - NPUFraction - CPUFraction) falls back to the GPU (the
	// paper's footnote 2). Only meaningful when NNAPI is supported.
	CPUFraction float64
}

// Supported reports whether the model can be allocated to resource r on this
// device.
func (m ModelProfile) Supported(r tasks.Resource) bool {
	return !math.IsNaN(m.LatencyMS[r])
}

// DeviceProfile describes one simulated smartphone SoC.
type DeviceProfile struct {
	// Name is the marketing name used in the paper ("Google Pixel 7").
	Name string

	// CPUCapacity is the number of single-threaded inference jobs the CPU
	// can run concurrently without slowdown (big cores effectively usable
	// by AI work).
	CPUCapacity float64

	// CPURenderLoad is the CPU capacity consumed by the AR app itself
	// (render thread, tracking, UI) and therefore unavailable to AI jobs.
	CPURenderLoad float64

	// NNAPIOverheadMS is the fixed per-inference scheduling/communication
	// overhead of the NNAPI delegate, already included in the Table I
	// isolation numbers.
	NNAPIOverheadMS float64

	// NNAPIContentionMS is the additional per-inference overhead incurred
	// for each other task resident on the NNAPI delegate, modeling the
	// delegate's scheduling inefficiency under multi-tenancy.
	NNAPIContentionMS float64

	// GPUQueueOverheadMS is the additional per-inference overhead of GPU
	// work (delegate or NNAPI fallback phase) for each other job queued on
	// the GPU, modeling command-queue serialization.
	GPUQueueOverheadMS float64

	// RenderUtilPerMTri is the GPU utilization consumed by rendering one
	// million visible triangles at the device's target frame rate, in the
	// regime where the renderer comfortably makes its frame deadline.
	RenderUtilPerMTri float64

	// RenderKneeMTri is the visible-triangle count (in millions) beyond
	// which the renderer starts missing its frame budget; past the knee,
	// buffered frames keep the GPU busy and utilization grows super-
	// linearly. This knee is what makes the total triangle ratio such a
	// powerful lever in the paper's SC1 scenarios.
	RenderKneeMTri float64

	// RenderKneeBoost is the quadratic coefficient of the past-knee
	// utilization growth.
	RenderKneeBoost float64

	// MaxRenderUtil caps rendering's GPU share so AI jobs never fully
	// starve (the compositor preempts at frame boundaries).
	MaxRenderUtil float64

	// NoiseSigma is the sigma of the multiplicative lognormal noise applied
	// to each inference's service demand, modeling run-to-run variance.
	NoiseSigma float64

	// TargetFPS is the renderer's frame-rate target when it makes its
	// budget.
	TargetFPS float64

	// Power is the platform power model used for energy accounting.
	Power PowerProfile

	// Models maps model name to its per-device profile.
	Models map[string]ModelProfile
}

// Model returns the profile for the named model.
func (d *DeviceProfile) Model(name string) (ModelProfile, error) {
	m, ok := d.Models[name]
	if !ok {
		return ModelProfile{}, fmt.Errorf("soc: device %s has no profile for model %q", d.Name, name)
	}
	return m, nil
}

// RenderUtilFor returns the GPU utilization consumed by rendering the given
// number of visible triangles: linear in the comfortable regime, quadratic
// growth past the device's frame-budget knee, capped at MaxRenderUtil.
func (d *DeviceProfile) RenderUtilFor(visibleTriangles float64) float64 {
	m := visibleTriangles / 1e6
	u := d.RenderUtilPerMTri * m
	if over := m - d.RenderKneeMTri; over > 0 {
		u += d.RenderKneeBoost * over * over
	}
	if u > d.MaxRenderUtil {
		u = d.MaxRenderUtil
	}
	if u < 0 {
		u = 0
	}
	return u
}

// FPSFor returns the achieved frame rate at the given visible-triangle
// count: the target rate while the renderer makes its budget, dropping
// proportionally once the (uncapped) utilization demand exceeds the cap —
// the screen-metric counterpart the paper leaves for future work (§III-A).
func (d *DeviceProfile) FPSFor(visibleTriangles float64) float64 {
	m := visibleTriangles / 1e6
	if m <= d.RenderKneeMTri {
		return d.TargetFPS
	}
	// Past the knee the renderer misses deadlines; throughput falls in
	// proportion to how far demand exceeds the at-knee budget.
	budget := d.RenderUtilPerMTri * d.RenderKneeMTri
	raw := d.RenderUtilPerMTri*m + d.RenderKneeBoost*(m-d.RenderKneeMTri)*(m-d.RenderKneeMTri)
	return d.TargetFPS * budget / raw
}

// BestResource returns the resource with the lowest isolation latency for
// the named model (the paper's τ_e measurement target) and that latency.
func (d *DeviceProfile) BestResource(name string) (tasks.Resource, float64, error) {
	m, err := d.Model(name)
	if err != nil {
		return 0, 0, err
	}
	best := tasks.Resource(-1)
	bestLat := math.Inf(1)
	for _, r := range tasks.Resources() {
		if !m.Supported(r) {
			continue
		}
		if m.LatencyMS[r] < bestLat {
			best, bestLat = r, m.LatencyMS[r]
		}
	}
	if best < 0 {
		return 0, 0, fmt.Errorf("soc: model %q supports no resource on %s", name, d.Name)
	}
	return best, bestLat, nil
}

const na = math.MaxFloat64 // placeholder replaced by NaN in newProfile

// lat builds a latency vector in (CPU, GPU, NNAPI) order from Table I's
// (GPU, NNAPI, CPU) column order, converting the na sentinel to NaN.
func lat(gpu, nnapi, cpu float64) [tasks.NumResources]float64 {
	conv := func(v float64) float64 {
		if v == na {
			return math.NaN()
		}
		return v
	}
	var out [tasks.NumResources]float64
	out[tasks.CPU] = conv(cpu)
	out[tasks.GPU] = conv(gpu)
	out[tasks.NNAPI] = conv(nnapi)
	return out
}

// Pixel7 returns the Google Pixel 7 profile (Tensor G2: octa-core CPU,
// Mali-G710 GPU, TPU). Latencies are the Pixel 7 columns of Table I; mnist
// is the small digit classifier of Table II, with near-uniform latency
// across resources as the paper reports.
func Pixel7() *DeviceProfile {
	return &DeviceProfile{
		Name:               "Google Pixel 7",
		CPUCapacity:        3.0,
		CPURenderLoad:      1.0,
		NNAPIOverheadMS:    2.0,
		NNAPIContentionMS:  4.0,
		GPUQueueOverheadMS: 0.3,
		RenderUtilPerMTri:  0.35,
		RenderKneeMTri:     0.75,
		RenderKneeBoost:    8,
		MaxRenderUtil:      0.90,
		NoiseSigma:         0.06,
		TargetFPS:          60,
		Power:              defaultPower(),
		Models: map[string]ModelProfile{
			tasks.DeconvMUNet:      {LatencyMS: lat(17.9, na, 65.9)},
			tasks.DeepLabV3:        {LatencyMS: lat(136.6, na, 110.1)},
			tasks.EfficientDetLite: {LatencyMS: lat(109.8, na, 97.3)},
			tasks.MobileNetDetV1:   {LatencyMS: lat(56.5, 18.1, 48.9), NPUFraction: 0.72, CPUFraction: 0.15},
			tasks.EfficientLiteV0:  {LatencyMS: lat(43.37, 18.3, 41.5), NPUFraction: 0.75, CPUFraction: 0.15},
			tasks.InceptionV1Q:     {LatencyMS: lat(60.8, 8.7, 63.2), NPUFraction: 0.82, CPUFraction: 0.12},
			tasks.MobileNetV1:      {LatencyMS: lat(37.1, 10.2, 40.5), NPUFraction: 0.75, CPUFraction: 0.15},
			tasks.ModelMetadata:    {LatencyMS: lat(24.6, 40.7, 25.5), NPUFraction: 0.60, CPUFraction: 0.25},
			tasks.MNIST:            {LatencyMS: lat(6.0, 7.0, 7.5), NPUFraction: 0.55, CPUFraction: 0.25},
		},
	}
}

// GalaxyS22 returns the Samsung Galaxy S22 profile; latencies are the S22
// columns of Table I.
func GalaxyS22() *DeviceProfile {
	return &DeviceProfile{
		Name:               "Samsung Galaxy S22",
		CPUCapacity:        3.0,
		CPURenderLoad:      1.0,
		NNAPIOverheadMS:    2.0,
		NNAPIContentionMS:  3.5,
		GPUQueueOverheadMS: 0.3,
		RenderUtilPerMTri:  0.33,
		RenderKneeMTri:     0.75,
		RenderKneeBoost:    8,
		MaxRenderUtil:      0.90,
		NoiseSigma:         0.06,
		TargetFPS:          60,
		Power:              defaultPower(),
		Models: map[string]ModelProfile{
			tasks.DeconvMUNet:      {LatencyMS: lat(18, 33, 58), NPUFraction: 0.55, CPUFraction: 0.15},
			tasks.DeepLabV3:        {LatencyMS: lat(45, 27, 46), NPUFraction: 0.68, CPUFraction: 0.12},
			tasks.EfficientDetLite: {LatencyMS: lat(72, na, 68)},
			tasks.MobileNetDetV1:   {LatencyMS: lat(38, 13, 38), NPUFraction: 0.72, CPUFraction: 0.15},
			tasks.EfficientLiteV0:  {LatencyMS: lat(28, 10, 29), NPUFraction: 0.75, CPUFraction: 0.15},
			tasks.InceptionV1Q:     {LatencyMS: lat(28, 8, 36), NPUFraction: 0.82, CPUFraction: 0.12},
			tasks.MobileNetV1:      {LatencyMS: lat(26, 9.5, 28), NPUFraction: 0.75, CPUFraction: 0.15},
			tasks.ModelMetadata:    {LatencyMS: lat(12.7, 18, 14), NPUFraction: 0.55, CPUFraction: 0.25},
			tasks.MNIST:            {LatencyMS: lat(5.5, 6.5, 7.0), NPUFraction: 0.55, CPUFraction: 0.25},
		},
	}
}

// Devices returns the two calibrated device profiles in paper order.
func Devices() []*DeviceProfile {
	return []*DeviceProfile{GalaxyS22(), Pixel7()}
}
