package soc

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// TestSystemSurvivesRandomOperations drives the simulator with random
// sequences of the operations HBO performs — task additions, removals,
// reallocations, render-load changes — and checks the invariants that must
// hold after any sequence: the internal state validates, every registered
// task keeps completing inferences, and latencies stay finite and positive.
func TestSystemSurvivesRandomOperations(t *testing.T) {
	models := []string{tasks.MobileNetV1, tasks.InceptionV1Q, tasks.DeepLabV3, tasks.ModelMetadata, tasks.MNIST}
	f := func(seed uint64, opsRaw []uint8) bool {
		eng := sim.NewEngine(seed)
		dev := GalaxyS22() // every model supported on every resource
		sys := NewSystem(eng, dev, DefaultConfig())
		rng := sim.NewRNG(seed ^ 0xabcdef)
		instances := map[string]int{}
		var live []tasks.Task

		for _, op := range opsRaw {
			switch op % 4 {
			case 0: // add a task
				model := models[rng.Intn(len(models))]
				instances[model]++
				task := tasks.Task{Model: model, Instance: instances[model]}
				r := tasks.Resources()[rng.Intn(tasks.NumResources)]
				if err := sys.AddTask(task, r); err != nil {
					return false
				}
				live = append(live, task)
			case 1: // remove a task
				if len(live) == 0 {
					continue
				}
				i := rng.Intn(len(live))
				if err := sys.RemoveTask(live[i].ID()); err != nil {
					return false
				}
				live = append(live[:i], live[i+1:]...)
			case 2: // reallocate a task
				if len(live) == 0 {
					continue
				}
				task := live[rng.Intn(len(live))]
				r := tasks.Resources()[rng.Intn(tasks.NumResources)]
				if err := sys.SetAllocation(task.ID(), r); err != nil {
					return false
				}
			case 3: // change render load
				sys.SetRenderUtil(rng.Float64())
			}
			sys.RunFor(200 + 300*rng.Float64())
			if err := sys.Validate(); err != nil {
				t.Logf("validate: %v", err)
				return false
			}
		}

		// Final probe: everyone still makes progress with finite latency.
		if len(live) > 0 {
			sys.ResetWindow()
			sys.RunFor(5000)
			stats := sys.WindowStats()
			for _, task := range live {
				st, ok := stats[task.ID()]
				if !ok {
					return false
				}
				if st.MeanLatencyMS <= 0 || math.IsNaN(st.MeanLatencyMS) || math.IsInf(st.MeanLatencyMS, 0) {
					return false
				}
			}
		}
		// Energy must be monotone and finite.
		if e := sys.EnergyMJ(); e < 0 || math.IsNaN(e) || math.IsInf(e, 0) {
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestAllocationChangeDuringFlight pins the delegate-switch semantics: the
// in-flight inference completes on the old resource, the next one runs on
// the new resource, and nothing is lost in between.
func TestAllocationChangeDuringFlight(t *testing.T) {
	dev := noNoise(GalaxyS22())
	sys := newSys(t, dev)
	task := tasks.Task{Model: tasks.DeepLabV3, Instance: 1}
	if err := sys.AddTask(task, tasks.CPU); err != nil {
		t.Fatal(err)
	}
	// Mid-inference (deeplabv3 CPU takes 46 ms), switch to NNAPI.
	sys.RunFor(20)
	if err := sys.SetAllocation(task.ID(), tasks.NNAPI); err != nil {
		t.Fatal(err)
	}
	if got, _ := sys.Allocation(task.ID()); got != tasks.NNAPI {
		t.Fatalf("pending allocation = %s", got)
	}
	// The in-flight CPU inference must still complete at CPU speed.
	sys.ResetWindow()
	sys.RunFor(40)
	if st := sys.WindowStats()[task.ID()]; st.Count != 1 {
		t.Fatalf("in-flight inference did not complete exactly once: %d", st.Count)
	}
	// After the switch, steady-state latency is the NNAPI number.
	sys.RunFor(500)
	lat := sys.MeanLatencies(3000)[task.ID()]
	want := dev.Models[tasks.DeepLabV3].LatencyMS[tasks.NNAPI]
	if math.Abs(lat-want) > 0.05*want {
		t.Fatalf("post-switch latency %.1f, want ~%.1f", lat, want)
	}
}

// TestRapidReallocationStorm reallocates every control period — far more
// often than HBO would — and checks the system stays consistent.
func TestRapidReallocationStorm(t *testing.T) {
	dev := GalaxyS22()
	sys := newSys(t, dev)
	ids := make([]string, 0, 4)
	for i := 1; i <= 4; i++ {
		task := tasks.Task{Model: tasks.MobileNetV1, Instance: i}
		if err := sys.AddTask(task, tasks.NNAPI); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, task.ID())
	}
	rng := sim.NewRNG(99)
	for step := 0; step < 200; step++ {
		id := ids[rng.Intn(len(ids))]
		r := tasks.Resources()[rng.Intn(tasks.NumResources)]
		if err := sys.SetAllocation(id, r); err != nil {
			t.Fatal(err)
		}
		sys.RunFor(50)
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
	stats := sys.MeanLatencies(3000)
	for _, id := range ids {
		if stats[id] <= 0 {
			t.Fatalf("task %s stalled after reallocation storm", id)
		}
	}
}
