package soc

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/tasks"
)

func TestThermalDisabledByDefault(t *testing.T) {
	sys := newSys(t, noNoise(Pixel7()))
	if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: 1}, tasks.CPU); err != nil {
		t.Fatal(err)
	}
	sys.SetRenderUtil(0.6)
	before := sys.MeanLatencies(3000)["deeplabv3"]
	sys.RunFor(120000) // two minutes of sustained load
	after := sys.MeanLatencies(3000)["deeplabv3"]
	if after > before*1.02 {
		t.Fatalf("latency drifted %v -> %v with thermal model disabled", before, after)
	}
	if sys.Temperature() != 0 {
		t.Fatalf("temperature %v with model disabled", sys.Temperature())
	}
}

func TestThermalThrottlesUnderSustainedLoad(t *testing.T) {
	dev := noNoise(Pixel7())
	sys := newSys(t, dev)
	sys.SetThermal(DefaultThermal())
	for i := 1; i <= 4; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.CPU); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetRenderUtil(0.6)
	cold := sys.MeanLatencies(5000)
	sys.RunFor(240000) // four minutes of sustained heavy load
	hot := sys.MeanLatencies(5000)
	if sys.Temperature() <= DefaultThermal().ThrottleC {
		t.Fatalf("temperature %v did not reach throttle point", sys.Temperature())
	}
	if hot["deeplabv3"] <= cold["deeplabv3"]*1.05 {
		t.Fatalf("throttling did not slow tasks: %v -> %v", cold["deeplabv3"], hot["deeplabv3"])
	}
}

func TestThermalCoolsWhenIdle(t *testing.T) {
	dev := noNoise(Pixel7())
	sys := newSys(t, dev)
	sys.SetThermal(DefaultThermal())
	for i := 1; i <= 4; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.CPU); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetRenderUtil(0.6)
	sys.RunFor(240000)
	hot := sys.Temperature()
	for i := 1; i <= 4; i++ {
		id := tasks.Task{Model: tasks.DeepLabV3, Instance: i}.ID()
		if err := sys.RemoveTask(id); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetRenderUtil(0)
	sys.RunFor(300000)
	cooled := sys.Temperature()
	if cooled >= hot-3 {
		t.Fatalf("die did not cool when idle: %v -> %v", hot, cooled)
	}
	if cooled < DefaultThermal().AmbientC {
		t.Fatalf("cooled below ambient: %v", cooled)
	}
}

func TestThrottleFactorShape(t *testing.T) {
	sys := newSys(t, Pixel7())
	p := DefaultThermal()
	sys.SetThermal(p)
	sys.tempC = p.ThrottleC - 1
	if f := sys.throttleFactor(); f != 1 {
		t.Fatalf("factor below throttle point = %v", f)
	}
	sys.tempC = p.CriticalC + 10
	if f := sys.throttleFactor(); f != p.MinFactor {
		t.Fatalf("factor beyond critical = %v, want %v", f, p.MinFactor)
	}
	sys.tempC = (p.ThrottleC + p.CriticalC) / 2
	f := sys.throttleFactor()
	if f <= p.MinFactor || f >= 1 {
		t.Fatalf("mid-range factor = %v", f)
	}
}
