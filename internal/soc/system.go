package soc

import (
	"fmt"
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// computeUnit identifies a physical execution unit inside the SoC. It is
// distinct from tasks.Resource: the NNAPI *resource* maps to work on both
// the npuUnit and the gpuUnit.
type computeUnit int

const (
	cpuUnit computeUnit = iota + 1
	gpuUnit
	npuUnit
)

// allUnits fixes the iteration order over compute units: event creation
// order must not depend on map iteration, or same-time completions would
// tie-break differently across runs.
var allUnits = [...]computeUnit{cpuUnit, gpuUnit, npuUnit}

// phase is one stage of an inference job executing on a single compute unit
// under processor sharing.
type phase struct {
	job        *job
	unit       computeUnit
	remaining  float64 // ms of service demand left at rate 1
	rate       float64
	lastUpdate float64
	completion *sim.Event
}

// job is one in-flight inference: an ordered list of phases, possibly
// preceded by a pure scheduling delay.
type job struct {
	task     *runningTask
	phases   []*phase
	phaseIdx int
	issued   float64
}

// runningTask is an AI task instance registered with the system, repeatedly
// issuing inferences in a closed loop.
type runningTask struct {
	task    tasks.Task
	profile ModelProfile
	alloc   tasks.Resource
	// pendingAlloc, when valid (>= 0), is applied at the next inference
	// issue; in-flight inferences complete on their old resource, matching
	// how delegate switches behave on Android.
	pendingAlloc tasks.Resource
	inFlight     *job
	nextIssue    *sim.Event
	lastIssue    float64

	// burstPhase alternates under the bursty arrival process.
	burstPhase bool

	// Measurement window accumulators.
	winCount  int
	winLatSum float64
	winMisses int
	lastLat   float64
	totCount  int64
}

// TaskStats summarizes one task's completions inside a measurement window.
type TaskStats struct {
	// Count is the number of inferences completed in the window.
	Count int
	// MeanLatencyMS is the average end-to-end inference latency. If no
	// inference completed in the window, it is the elapsed time of the
	// oldest in-flight inference (a lower bound, which is what a watchdog
	// on a real device would report).
	MeanLatencyMS float64
	// DeadlineMisses counts inferences whose latency exceeded the task's
	// issue period: their result arrived after the next request was already
	// due, so the app consumed stale perception data.
	DeadlineMisses int
}

// ArrivalProcess selects how tasks space their inference requests.
type ArrivalProcess int

// Arrival processes: fixed-period (the paper-shaped default), Poisson
// (exponential gaps with the same mean), and bursty (alternating short and
// long gaps, same mean) — the latter two for robustness studies.
const (
	ArrivalPeriodic ArrivalProcess = iota + 1
	ArrivalPoisson
	ArrivalBursty
)

// Config holds simulator tuning knobs independent of the device profile.
type Config struct {
	// PeriodMS is the mean inference issue period of each task (closed
	// loop with deadline: if an inference overruns its gap the next one is
	// issued immediately after it completes). The default models MAR
	// perception tasks re-running a few times per second.
	PeriodMS float64
	// Arrival selects the request process; zero means ArrivalPeriodic.
	Arrival ArrivalProcess
}

// DefaultConfig returns the workload configuration used by the paper-shaped
// experiments.
func DefaultConfig() Config {
	return Config{PeriodMS: 100, Arrival: ArrivalPeriodic}
}

// System is the discrete-event SoC simulator: a set of closed-loop AI tasks
// spread across CPU/GPU/NNAPI plus a rendering load on the GPU. It is not
// safe for concurrent use; everything runs on the owning engine's virtual
// time.
type System struct {
	eng        *sim.Engine
	dev        *DeviceProfile
	cfg        Config
	rng        *sim.RNG
	renderUtil float64

	byID  map[string]*runningTask
	order []*runningTask

	active map[computeUnit][]*phase

	// Energy accounting (see energy.go).
	energyMJ    float64
	powerW      float64
	lastEnergyT float64

	// Thermal state (see thermal.go; disabled unless SetThermal is called).
	thermal ThermalProfile
	tempC   float64

	// met holds the simulator's observability instruments. The zero value is
	// all-nil — every call is an inlined nil-check no-op — so the inner loop
	// pays nothing until SetObserver attaches a registry. Instruments never
	// feed back into scheduling decisions, keeping event order bit-identical
	// with metrics on or off.
	met sysMetrics
}

// sysMetrics is the per-system instrument set: per-unit queue depths,
// per-resource inference latency histograms, and completion/deadline
// counters. Arrays are indexed by computeUnit and tasks.Resource so the hot
// path never touches a map.
type sysMetrics struct {
	queueDepth [npuUnit + 1]*obs.Gauge
	latency    [tasks.NumResources]*obs.Histogram
	issues     *obs.Counter
	inferences *obs.Counter
	misses     *obs.Counter
}

// SetObserver attaches a metrics registry to the simulator. Passing nil
// detaches, restoring the zero-overhead disabled path.
func (s *System) SetObserver(reg *obs.Registry) {
	s.met.queueDepth[cpuUnit] = reg.Gauge("soc.queue_depth.cpu")
	s.met.queueDepth[gpuUnit] = reg.Gauge("soc.queue_depth.gpu")
	s.met.queueDepth[npuUnit] = reg.Gauge("soc.queue_depth.npu")
	for _, r := range tasks.Resources() {
		s.met.latency[r] = reg.Histogram("soc.inference_latency_ms."+r.String(), obs.LatencyBucketsMS)
	}
	s.met.issues = reg.Counter("soc.inferences_issued")
	s.met.inferences = reg.Counter("soc.inferences_completed")
	s.met.misses = reg.Counter("soc.deadline_misses")
}

// NewSystem builds a simulator for the given device on the given engine.
func NewSystem(eng *sim.Engine, dev *DeviceProfile, cfg Config) *System {
	if cfg.PeriodMS <= 0 {
		cfg.PeriodMS = DefaultConfig().PeriodMS
	}
	s := &System{
		eng:    eng,
		dev:    dev,
		cfg:    cfg,
		rng:    eng.RNG().Split(),
		byID:   make(map[string]*runningTask),
		active: make(map[computeUnit][]*phase),
	}
	s.powerW = s.currentPowerW()
	return s
}

// Device returns the device profile the system simulates.
func (s *System) Device() *DeviceProfile { return s.dev }

// AddTask registers a task and starts its inference loop on resource r.
// Tasks are staggered slightly so identical tasks do not phase-lock.
func (s *System) AddTask(t tasks.Task, r tasks.Resource) error {
	id := t.ID()
	if _, dup := s.byID[id]; dup {
		return fmt.Errorf("soc: task %s already registered", id)
	}
	mp, err := s.dev.Model(t.Model)
	if err != nil {
		return err
	}
	if !mp.Supported(r) {
		return fmt.Errorf("soc: model %s does not support %s on %s", t.Model, r, s.dev.Name)
	}
	rt := &runningTask{task: t, profile: mp, alloc: r, pendingAlloc: -1}
	s.byID[id] = rt
	s.order = append(s.order, rt)
	stagger := float64(len(s.order)-1) * 7.0
	rt.nextIssue = s.eng.After(stagger, func() { s.issue(rt) })
	return nil
}

// RemoveTask stops a task's inference loop. Its in-flight inference (if any)
// is abandoned without affecting other jobs' accounting.
func (s *System) RemoveTask(id string) error {
	rt, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("soc: no task %s", id)
	}
	rt.nextIssue.Cancel()
	if rt.inFlight != nil {
		s.abandon(rt.inFlight)
		rt.inFlight = nil
	}
	delete(s.byID, id)
	for i, o := range s.order {
		if o == rt {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	return nil
}

// SetAllocation moves a task to resource r starting with its next inference.
func (s *System) SetAllocation(id string, r tasks.Resource) error {
	rt, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("soc: no task %s", id)
	}
	if !rt.profile.Supported(r) {
		return fmt.Errorf("soc: model %s does not support %s on %s", rt.task.Model, r, s.dev.Name)
	}
	if rt.inFlight == nil {
		rt.alloc = r
		rt.pendingAlloc = -1
	} else {
		rt.pendingAlloc = r
	}
	return nil
}

// Allocation returns the task's current (or pending) resource.
func (s *System) Allocation(id string) (tasks.Resource, error) {
	rt, ok := s.byID[id]
	if !ok {
		return 0, fmt.Errorf("soc: no task %s", id)
	}
	if rt.pendingAlloc >= 0 {
		return rt.pendingAlloc, nil
	}
	return rt.alloc, nil
}

// TaskIDs returns the registered task identifiers in registration order.
func (s *System) TaskIDs() []string {
	out := make([]string, len(s.order))
	for i, rt := range s.order {
		out[i] = rt.task.ID()
	}
	return out
}

// SetRenderUtil sets the GPU utilization consumed by AR rendering; it takes
// effect immediately, slowing (or speeding up) in-flight GPU phases.
func (s *System) SetRenderUtil(u float64) {
	if u < 0 {
		u = 0
	}
	if u > s.dev.MaxRenderUtil {
		u = s.dev.MaxRenderUtil
	}
	s.renderUtil = u
	s.reschedule()
}

// RenderUtil returns the current rendering GPU utilization.
func (s *System) RenderUtil() float64 { return s.renderUtil }

// ResetWindow clears all per-task measurement accumulators.
func (s *System) ResetWindow() {
	for _, rt := range s.order {
		rt.winCount = 0
		rt.winLatSum = 0
		rt.winMisses = 0
	}
}

// WindowStats returns the per-task statistics accumulated since the last
// ResetWindow, keyed by task ID.
func (s *System) WindowStats() map[string]TaskStats {
	out := make(map[string]TaskStats, len(s.order))
	for _, rt := range s.order {
		st := TaskStats{Count: rt.winCount, DeadlineMisses: rt.winMisses}
		switch {
		case rt.winCount > 0:
			st.MeanLatencyMS = rt.winLatSum / float64(rt.winCount)
		case rt.inFlight != nil:
			st.MeanLatencyMS = s.eng.Now() - rt.inFlight.issued
		default:
			st.MeanLatencyMS = rt.lastLat
		}
		out[rt.task.ID()] = st
	}
	return out
}

// LastLatency returns the most recent completed-inference latency for the
// task, or zero if none completed yet.
func (s *System) LastLatency(id string) float64 {
	if rt, ok := s.byID[id]; ok {
		return rt.lastLat
	}
	return 0
}

// issue starts a new inference for the task.
func (s *System) issue(rt *runningTask) {
	if rt.pendingAlloc >= 0 {
		rt.alloc = rt.pendingAlloc
		rt.pendingAlloc = -1
	}
	now := s.eng.Now()
	rt.lastIssue = now
	s.met.issues.Inc()
	noise := s.rng.LogNormal(s.dev.NoiseSigma)
	j := &job{task: rt, issued: now}
	rt.inFlight = j

	switch rt.alloc {
	case tasks.CPU:
		d := rt.profile.LatencyMS[tasks.CPU] * noise
		j.phases = []*phase{{job: j, unit: cpuUnit, remaining: d}}
		s.startPhase(j)
	case tasks.GPU:
		d := rt.profile.LatencyMS[tasks.GPU]*noise + s.gpuQueuePenalty()
		j.phases = []*phase{{job: j, unit: gpuUnit, remaining: d}}
		s.startPhase(j)
	case tasks.NNAPI:
		work := rt.profile.LatencyMS[tasks.NNAPI] - s.dev.NNAPIOverheadMS
		if work < 0 {
			work = 0
		}
		gpuFrac := 1 - rt.profile.NPUFraction - rt.profile.CPUFraction
		if gpuFrac < 0 {
			gpuFrac = 0
		}
		j.phases = []*phase{
			{job: j, unit: npuUnit, remaining: rt.profile.NPUFraction * work * noise},
			{job: j, unit: cpuUnit, remaining: rt.profile.CPUFraction * work * noise},
			{job: j, unit: gpuUnit, remaining: gpuFrac*work*noise + s.gpuQueuePenalty()},
		}
		// The NNAPI scheduling overhead is a pure delay that grows with the
		// number of other NNAPI inferences actually in flight right now.
		delay := s.dev.NNAPIOverheadMS + s.dev.NNAPIContentionMS*float64(s.nnapiInFlight(rt))
		s.eng.After(delay, func() {
			if rt.inFlight == j {
				s.startPhase(j)
			}
		})
	default:
		panic(fmt.Sprintf("soc: task %s has invalid allocation %d", rt.task.ID(), rt.alloc))
	}
}

// nnapiInFlight counts other NNAPI-allocated tasks with an inference in
// flight.
func (s *System) nnapiInFlight(self *runningTask) int {
	n := 0
	for _, rt := range s.order {
		if rt != self && rt.alloc == tasks.NNAPI && rt.inFlight != nil {
			n++
		}
	}
	return n
}

// gpuQueuePenalty returns the extra demand added to a GPU phase for each AI
// job already queued on the GPU.
func (s *System) gpuQueuePenalty() float64 {
	return s.dev.GPUQueueOverheadMS * float64(len(s.active[gpuUnit]))
}

// startPhase activates the job's current phase on its compute unit.
func (s *System) startPhase(j *job) {
	p := j.phases[j.phaseIdx]
	p.lastUpdate = s.eng.Now()
	s.active[p.unit] = append(s.active[p.unit], p)
	s.met.queueDepth[p.unit].Set(float64(len(s.active[p.unit])))
	s.reschedule()
}

// finishPhase completes the job's current phase; either the next phase
// starts or the inference completes.
func (s *System) finishPhase(p *phase) {
	j := p.job
	s.detach(p)
	j.phaseIdx++
	if j.phaseIdx < len(j.phases) {
		s.startPhase(j)
		return
	}
	rt := j.task
	now := s.eng.Now()
	latency := now - j.issued
	rt.inFlight = nil
	rt.lastLat = latency
	rt.winCount++
	rt.winLatSum += latency
	s.met.inferences.Inc()
	s.met.latency[rt.alloc].Observe(latency)
	if latency > s.cfg.PeriodMS {
		rt.winMisses++
		s.met.misses.Inc()
	}
	rt.totCount++
	next := rt.lastIssue + s.nextGap(rt)
	if next < now+0.1 {
		next = now + 0.1
	}
	rt.nextIssue = s.eng.At(next, func() { s.issue(rt) })
	s.reschedule()
}

// nextGap draws the task's next inter-request gap according to the
// configured arrival process. All processes share the mean PeriodMS.
func (s *System) nextGap(rt *runningTask) float64 {
	switch s.cfg.Arrival {
	case ArrivalPoisson:
		return s.rng.Exp(s.cfg.PeriodMS)
	case ArrivalBursty:
		// Alternate short and long gaps (mean preserved: (0.25+1.75)/2 = 1).
		rt.burstPhase = !rt.burstPhase
		if rt.burstPhase {
			return 0.25 * s.cfg.PeriodMS
		}
		return 1.75 * s.cfg.PeriodMS
	default:
		return s.cfg.PeriodMS
	}
}

// abandon removes a job's active phase (if any) from its unit.
func (s *System) abandon(j *job) {
	if j.phaseIdx < len(j.phases) {
		s.detach(j.phases[j.phaseIdx])
	}
	s.reschedule()
}

// detach removes the phase from its unit's active list and cancels its
// completion event.
func (s *System) detach(p *phase) {
	p.completion.Cancel()
	list := s.active[p.unit]
	for i, q := range list {
		if q == p {
			s.active[p.unit] = append(list[:i], list[i+1:]...)
			s.met.queueDepth[p.unit].Set(float64(len(s.active[p.unit])))
			return
		}
	}
}

// unitCapacity returns the service capacity of a unit: how many
// milliseconds of demand it retires per millisecond, for the work AI jobs
// can use.
func (s *System) unitCapacity(u computeUnit) float64 {
	var capacity float64
	switch u {
	case cpuUnit:
		capacity = s.dev.CPUCapacity - s.dev.CPURenderLoad
	case gpuUnit:
		capacity = 1 - s.renderUtil
	case npuUnit:
		capacity = 1
	}
	capacity *= s.throttleFactor()
	const floor = 0.05
	if capacity < floor {
		capacity = floor
	}
	return capacity
}

// reschedule recomputes every active phase's remaining demand under its old
// rate, then reassigns rates and completion events. Called on every state
// change; with at most a dozen concurrent phases this is cheap.
func (s *System) reschedule() {
	s.accrueEnergy()
	now := s.eng.Now()
	for _, u := range allUnits {
		for _, p := range s.active[u] {
			if p.completion != nil {
				p.remaining -= p.rate * (now - p.lastUpdate)
				if p.remaining < 0 {
					p.remaining = 0
				}
				p.completion.Cancel()
			}
			p.lastUpdate = now
		}
	}
	for _, u := range allUnits {
		list := s.active[u]
		if len(list) == 0 {
			continue
		}
		// Processor sharing, each job capped at full speed: the CPU
		// timeslices across cores, and the accelerators' op-granular
		// command queues approximate fair sharing for whole inferences.
		rate := s.unitCapacity(u) / float64(len(list))
		if rate > 1 {
			rate = 1
		}
		for _, p := range list {
			p := p
			p.rate = rate
			p.completion = s.eng.At(now+p.remaining/rate, func() { s.finishPhase(p) })
		}
	}
	s.powerW = s.currentPowerW()
}

// Run advances the simulation to absolute virtual time t.
func (s *System) Run(t float64) { s.eng.RunUntil(t) }

// RunFor advances the simulation by d milliseconds.
func (s *System) RunFor(d float64) { s.eng.RunUntil(s.eng.Now() + d) }

// Now returns the current virtual time.
func (s *System) Now() float64 { return s.eng.Now() }

// MeanLatencies runs the simulation for window milliseconds and returns each
// task's mean latency over that window, keyed by task ID.
func (s *System) MeanLatencies(window float64) map[string]float64 {
	s.ResetWindow()
	s.RunFor(window)
	stats := s.WindowStats()
	out := make(map[string]float64, len(stats))
	for id, st := range stats {
		out[id] = st.MeanLatencyMS
	}
	return out
}

// SortedTaskIDs returns task IDs in lexical order (stable output for tables).
func (s *System) SortedTaskIDs() []string {
	ids := s.TaskIDs()
	sort.Strings(ids)
	return ids
}

// Validate performs internal consistency checks; it is used by tests and
// debug builds.
func (s *System) Validate() error {
	for u, list := range s.active {
		for _, p := range list {
			if p.remaining < -1e-9 || math.IsNaN(p.remaining) {
				return fmt.Errorf("soc: phase on unit %d has invalid remaining %v", u, p.remaining)
			}
		}
	}
	return nil
}
