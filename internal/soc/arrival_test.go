package soc

import (
	"sort"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// runArrival measures mean latency and throughput for one arrival process
// under a moderately contended configuration.
func runArrival(t *testing.T, arrival ArrivalProcess) (meanLat float64, count int) {
	t.Helper()
	eng := sim.NewEngine(31)
	cfg := DefaultConfig()
	cfg.Arrival = arrival
	dev := GalaxyS22()
	sys := NewSystem(eng, dev, cfg)
	for i := 1; i <= 4; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.NNAPI); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetRenderUtil(0.4)
	sys.RunFor(2000)
	sys.ResetWindow()
	sys.RunFor(30000)
	// Sum in sorted-key order so the float accumulation replays
	// bit-identically (map iteration order would not).
	stats := sys.WindowStats()
	ids := make([]string, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var sum float64
	for _, id := range ids {
		sum += stats[id].MeanLatencyMS
		count += stats[id].Count
	}
	return sum / 4, count
}

func TestArrivalProcessesThroughput(t *testing.T) {
	_, periodic := runArrival(t, ArrivalPeriodic)
	_, poisson := runArrival(t, ArrivalPoisson)
	_, bursty := runArrival(t, ArrivalBursty)
	// Same mean period: throughput within 25% of the periodic baseline.
	for name, got := range map[string]int{"poisson": poisson, "bursty": bursty} {
		lo, hi := periodic*3/4, periodic*5/4
		if got < lo || got > hi {
			t.Errorf("%s completed %d inferences, want within [%d,%d] of periodic %d",
				name, got, lo, hi, periodic)
		}
	}
}

func TestPhaseLockedPeriodicIsWorstCase(t *testing.T) {
	// Four identical tasks with the same fixed period phase-lock: every
	// request collides with the same neighbours every cycle, so the smooth
	// schedule is — perhaps counterintuitively — the most contended one.
	// Randomized gaps decorrelate the tasks and relieve the collisions.
	periodicLat, _ := runArrival(t, ArrivalPeriodic)
	poissonLat, _ := runArrival(t, ArrivalPoisson)
	burstyLat, _ := runArrival(t, ArrivalBursty)
	if poissonLat >= periodicLat {
		t.Errorf("poisson latency %.1f should fall below phase-locked periodic %.1f", poissonLat, periodicLat)
	}
	if burstyLat >= periodicLat {
		t.Errorf("bursty latency %.1f should fall below phase-locked periodic %.1f", burstyLat, periodicLat)
	}
	// But never below the isolation floor.
	base := GalaxyS22().Models["deeplabv3"].LatencyMS[2] // NNAPI
	for name, lat := range map[string]float64{"poisson": poissonLat, "bursty": burstyLat} {
		if lat < base {
			t.Errorf("%s latency %.1f below isolation %.1f", name, lat, base)
		}
	}
}

func TestZeroArrivalDefaultsToPeriodic(t *testing.T) {
	eng := sim.NewEngine(1)
	sys := NewSystem(eng, GalaxyS22(), Config{PeriodMS: 100})
	if err := sys.AddTask(tasks.Task{Model: tasks.MNIST, Instance: 1}, tasks.CPU); err != nil {
		t.Fatal(err)
	}
	sys.ResetWindow()
	sys.RunFor(5000)
	st := sys.WindowStats()["mnist"]
	// Periodic at 100ms over 5s: ~50 completions.
	if st.Count < 45 || st.Count > 55 {
		t.Fatalf("zero-valued arrival process completed %d inferences, want ~50", st.Count)
	}
}
