package soc

import (
	"math"
	"sort"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func newSys(t *testing.T, dev *DeviceProfile) *System {
	t.Helper()
	eng := sim.NewEngine(42)
	return NewSystem(eng, dev, DefaultConfig())
}

// noNoise returns a Pixel 7 profile with observation noise disabled so
// latency assertions can be tight.
func noNoise(dev *DeviceProfile) *DeviceProfile {
	d := *dev
	d.NoiseSigma = 0
	return &d
}

func TestIsolationLatencyMatchesTableI(t *testing.T) {
	for _, dev := range Devices() {
		dev := noNoise(dev)
		for _, m := range tasks.All() {
			mp := dev.Models[m.Name]
			for _, r := range tasks.Resources() {
				if !mp.Supported(r) {
					continue
				}
				sys := newSys(t, dev)
				task := tasks.Task{Model: m.Name, Instance: 1}
				if err := sys.AddTask(task, r); err != nil {
					t.Fatalf("%s/%s/%s: %v", dev.Name, m.Name, r, err)
				}
				lat := sys.MeanLatencies(3000)[task.ID()]
				want := mp.LatencyMS[r]
				if math.Abs(lat-want) > 0.02*want+0.01 {
					t.Errorf("%s: %s on %s isolation latency = %.2f, want %.2f",
						dev.Name, m.Name, r, lat, want)
				}
			}
		}
	}
}

func TestUnsupportedDelegateRejected(t *testing.T) {
	sys := newSys(t, Pixel7())
	err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: 1}, tasks.NNAPI)
	if err == nil {
		t.Fatal("deeplabv3 on Pixel 7 NNAPI should be rejected (NA in Table I)")
	}
}

func TestDuplicateTaskRejected(t *testing.T) {
	sys := newSys(t, Pixel7())
	task := tasks.Task{Model: tasks.MNIST, Instance: 1}
	if err := sys.AddTask(task, tasks.CPU); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddTask(task, tasks.GPU); err == nil {
		t.Fatal("duplicate task accepted")
	}
}

func TestCPUColocationWithinCapacityUnslowed(t *testing.T) {
	dev := noNoise(Pixel7()) // CPUCapacity 3, render load 0.5 -> 2 jobs fit
	sys := newSys(t, dev)
	for i := 1; i <= 2; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.ModelMetadata, Instance: i}, tasks.CPU); err != nil {
			t.Fatal(err)
		}
	}
	lats := sys.MeanLatencies(3000)
	want := dev.Models[tasks.ModelMetadata].LatencyMS[tasks.CPU]
	for id, lat := range lats {
		if lat > want*1.05 {
			t.Errorf("task %s latency %.2f with 2 CPU tasks, want ~%.2f (within capacity)", id, lat, want)
		}
	}
}

func TestCPUOversubscriptionSlowsDown(t *testing.T) {
	dev := noNoise(Pixel7())
	sys := newSys(t, dev)
	const n = 6 // twice CPU capacity
	for i := 1; i <= n; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.CPU); err != nil {
			t.Fatal(err)
		}
	}
	lats := sys.MeanLatencies(5000)
	base := dev.Models[tasks.DeepLabV3].LatencyMS[tasks.CPU]
	for id, lat := range lats {
		if lat < base*1.3 {
			t.Errorf("task %s latency %.2f with %d CPU tasks, want clearly above base %.2f", id, lat, n, base)
		}
	}
}

func TestRenderLoadSlowsGPUTasks(t *testing.T) {
	dev := noNoise(Pixel7())
	sys := newSys(t, dev)
	task := tasks.Task{Model: tasks.DeconvMUNet, Instance: 1}
	if err := sys.AddTask(task, tasks.GPU); err != nil {
		t.Fatal(err)
	}
	base := sys.MeanLatencies(3000)[task.ID()]
	sys.SetRenderUtil(0.6)
	loaded := sys.MeanLatencies(3000)[task.ID()]
	if loaded < base*1.8 {
		t.Errorf("GPU task latency %.2f under 0.6 render load, want >= 1.8x base %.2f", loaded, base)
	}
	sys.SetRenderUtil(0)
	relaxed := sys.MeanLatencies(3000)[task.ID()]
	if relaxed > base*1.1 {
		t.Errorf("GPU task latency %.2f after load removed, want ~base %.2f", relaxed, base)
	}
}

func TestRenderLoadSlowsNNAPITasksViaGPUPhase(t *testing.T) {
	// The paper's key coupling (Fig. 2b, red crosses): adding triangles
	// increases NNAPI task latency because some operators fall back to GPU.
	dev := noNoise(GalaxyS22())
	sys := newSys(t, dev)
	task := tasks.Task{Model: tasks.DeepLabV3, Instance: 1}
	if err := sys.AddTask(task, tasks.NNAPI); err != nil {
		t.Fatal(err)
	}
	base := sys.MeanLatencies(3000)[task.ID()]
	sys.SetRenderUtil(0.8)
	loaded := sys.MeanLatencies(3000)[task.ID()]
	if loaded <= base*1.15 {
		t.Errorf("NNAPI latency %.2f under render load, want > 1.15x base %.2f", loaded, base)
	}
}

func TestNNAPIColocationGrowsLatency(t *testing.T) {
	// Fig. 2b t=40..95s: progressively adding instances to NNAPI raises
	// everyone's response time.
	dev := noNoise(GalaxyS22())
	prev := 0.0
	for n := 1; n <= 5; n++ {
		sys := newSys(t, dev)
		for i := 1; i <= n; i++ {
			if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.NNAPI); err != nil {
				t.Fatal(err)
			}
		}
		// Sorted-key accumulation keeps the mean bit-identical across runs.
		lats := sys.MeanLatencies(5000)
		ids := make([]string, 0, len(lats))
		for id := range lats {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		sum := 0.0
		for _, id := range ids {
			sum += lats[id]
		}
		mean := sum / float64(n)
		if n > 1 && mean < prev {
			t.Errorf("mean NNAPI latency decreased from %.2f to %.2f when adding instance %d", prev, mean, n)
		}
		prev = mean
	}
}

func TestRelocationToCPURelievesNNAPI(t *testing.T) {
	// Fig. 2b t=200s: with render load high, moving one deeplabv3 instance
	// to the CPU improves both the moved task and the remaining NNAPI ones.
	dev := noNoise(GalaxyS22())
	sys := newSys(t, dev)
	for i := 1; i <= 5; i++ {
		if err := sys.AddTask(tasks.Task{Model: tasks.DeepLabV3, Instance: i}, tasks.NNAPI); err != nil {
			t.Fatal(err)
		}
	}
	sys.SetRenderUtil(0.7)
	before := sys.MeanLatencies(6000)
	if err := sys.SetAllocation("deeplabv3_5", tasks.CPU); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(1000) // let the switch take effect
	after := sys.MeanLatencies(6000)
	if after["deeplabv3_5"] >= before["deeplabv3_5"] {
		t.Errorf("moved task latency %.2f -> %.2f, want improvement", before["deeplabv3_5"], after["deeplabv3_5"])
	}
	if after["deeplabv3"] >= before["deeplabv3"] {
		t.Errorf("remaining NNAPI task latency %.2f -> %.2f, want improvement", before["deeplabv3"], after["deeplabv3"])
	}
}

func TestSetAllocationUnknownTask(t *testing.T) {
	sys := newSys(t, Pixel7())
	if err := sys.SetAllocation("ghost", tasks.CPU); err == nil {
		t.Fatal("SetAllocation on unknown task succeeded")
	}
}

func TestRemoveTask(t *testing.T) {
	sys := newSys(t, Pixel7())
	task := tasks.Task{Model: tasks.MNIST, Instance: 1}
	if err := sys.AddTask(task, tasks.CPU); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(500)
	if err := sys.RemoveTask(task.ID()); err != nil {
		t.Fatal(err)
	}
	sys.RunFor(500)
	if got := len(sys.TaskIDs()); got != 0 {
		t.Fatalf("TaskIDs has %d entries after removal", got)
	}
	if err := sys.RemoveTask(task.ID()); err == nil {
		t.Fatal("double removal succeeded")
	}
	if err := sys.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() map[string]float64 {
		eng := sim.NewEngine(7)
		sys := NewSystem(eng, Pixel7(), DefaultConfig())
		for i := 1; i <= 3; i++ {
			if err := sys.AddTask(tasks.Task{Model: tasks.MobileNetV1, Instance: i}, tasks.NNAPI); err != nil {
				t.Fatal(err)
			}
		}
		sys.SetRenderUtil(0.4)
		return sys.MeanLatencies(4000)
	}
	a, b := run(), run()
	for id, v := range a {
		if b[id] != v {
			t.Errorf("task %s latency differs across identical runs: %v vs %v", id, v, b[id])
		}
	}
}

func TestBestResource(t *testing.T) {
	dev := Pixel7()
	r, lat, err := dev.BestResource(tasks.MobileNetV1)
	if err != nil {
		t.Fatal(err)
	}
	if r != tasks.NNAPI || lat != 10.2 {
		t.Fatalf("best resource for mobilenetv1 = %s/%.1f, want NNAPI/10.2", r, lat)
	}
	r, lat, err = dev.BestResource(tasks.ModelMetadata)
	if err != nil {
		t.Fatal(err)
	}
	if r != tasks.GPU || lat != 24.6 {
		t.Fatalf("best resource for model-metadata = %s/%.1f, want GPU/24.6", r, lat)
	}
}

func TestProfileTaskset(t *testing.T) {
	p, err := ProfileTaskset(Pixel7(), tasks.CF2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Expected) != 3 {
		t.Fatalf("profile has %d expected entries, want 3", len(p.Expected))
	}
	// Entries sorted non-decreasing.
	for i := 1; i < len(p.Entries); i++ {
		if p.Entries[i].LatencyMS < p.Entries[i-1].LatencyMS {
			t.Fatalf("profile entries not sorted at %d", i)
		}
	}
	// mnist best resource is GPU; detection/classification prefer NNAPI.
	if p.Best["mnist"] != tasks.GPU {
		t.Errorf("mnist best = %s, want GPU", p.Best["mnist"])
	}
	if p.Best["mobilenetDetv1"] != tasks.NNAPI {
		t.Errorf("mobilenetDetv1 best = %s, want NNAPI", p.Best["mobilenetDetv1"])
	}
	// τ_e within noise of Table I.
	if e := p.Expected["mobilenetDetv1"]; math.Abs(e-18.1) > 1.5 {
		t.Errorf("expected latency for mobilenetDetv1 = %.2f, want ~18.1", e)
	}
}

func TestTableIRegeneration(t *testing.T) {
	rows, err := TableI(GalaxyS22(), 3)
	if err != nil {
		t.Fatal(err)
	}
	dev := GalaxyS22()
	for name, row := range rows {
		want := dev.Models[name].LatencyMS
		for _, r := range tasks.Resources() {
			switch {
			case math.IsNaN(want[r]):
				if !math.IsNaN(row[r]) {
					t.Errorf("%s on %s: got %.2f, want NA", name, r, row[r])
				}
			default:
				if math.Abs(row[r]-want[r]) > 0.05*want[r]+0.5 {
					t.Errorf("%s on %s: got %.2f, want ~%.2f", name, r, row[r], want[r])
				}
			}
		}
	}
}
