package soc

// Thermal model (opt-in). Sustained contention on a passively cooled phone
// raises die temperature until the governor throttles capacity — a
// second-order effect the paper's minutes-long runs flirt with but do not
// model. It is disabled by default so the calibrated Table I / Figure 2
// behaviour is untouched; the Thermal extension study switches it on.

// ThermalProfile describes the die's thermal behaviour.
type ThermalProfile struct {
	// Enabled switches the model on.
	Enabled bool
	// AmbientC is the equilibrium temperature with the platform idle.
	AmbientC float64
	// ThrottleC is where the governor starts reducing capacity.
	ThrottleC float64
	// CriticalC is where throttling saturates.
	CriticalC float64
	// HeatPerJ is the temperature rise per joule dissipated above idle.
	HeatPerJ float64
	// CoolPerSec is the exponential cooling constant toward ambient.
	CoolPerSec float64
	// MinFactor is the capacity multiplier at (and beyond) CriticalC.
	MinFactor float64
}

// DefaultThermal returns a plausible passively cooled phone: roughly five
// sustained watts push the die from 30°C to throttling in a couple of
// minutes.
func DefaultThermal() ThermalProfile {
	return ThermalProfile{
		Enabled:    true,
		AmbientC:   30,
		ThrottleC:  42,
		CriticalC:  55,
		HeatPerJ:   0.035,
		CoolPerSec: 0.01,
		MinFactor:  0.55,
	}
}

// SetThermal installs a thermal profile on the system and initializes the
// die at ambient. Call before running.
func (s *System) SetThermal(p ThermalProfile) {
	s.thermal = p
	s.tempC = p.AmbientC
}

// Temperature returns the current die temperature (integrated up to the
// current virtual time); with the model disabled it returns zero.
func (s *System) Temperature() float64 {
	s.accrueEnergy()
	return s.tempC
}

// throttleFactor is the capacity multiplier the governor applies at the
// current temperature.
func (s *System) throttleFactor() float64 {
	p := s.thermal
	if !p.Enabled || s.tempC <= p.ThrottleC {
		return 1
	}
	if s.tempC >= p.CriticalC {
		return p.MinFactor
	}
	frac := (s.tempC - p.ThrottleC) / (p.CriticalC - p.ThrottleC)
	return 1 - frac*(1-p.MinFactor)
}

// advanceThermal integrates die temperature over dt milliseconds at the
// given power.
func (s *System) advanceThermal(dtMS, powerW float64) {
	p := s.thermal
	if !p.Enabled || dtMS <= 0 {
		return
	}
	dtS := dtMS / 1000
	heat := (powerW - p.IdleLikePower()) * p.HeatPerJ * dtS
	cool := p.CoolPerSec * (s.tempC - p.AmbientC) * dtS
	s.tempC += heat - cool
	if s.tempC < p.AmbientC {
		s.tempC = p.AmbientC
	}
}

// IdleLikePower is the power level that holds the die at ambient.
func (p ThermalProfile) IdleLikePower() float64 { return 1.0 }
