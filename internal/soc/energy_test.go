package soc

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func TestIdleEnergyIsBaseline(t *testing.T) {
	dev := noNoise(Pixel7())
	sys := newSys(t, dev)
	sys.RunFor(10000)
	e := sys.EnergyMJ()
	// No tasks, no render: idle plus the app's own CPU load.
	wantW := dev.Power.IdleW + dev.Power.CPUCoreW*dev.CPURenderLoad
	if got := AveragePowerW(e, 10000); math.Abs(got-wantW) > 0.01 {
		t.Fatalf("idle power = %.3f W, want %.3f", got, wantW)
	}
}

func TestEnergyGrowsWithLoad(t *testing.T) {
	dev := noNoise(Pixel7())

	idle := func() float64 {
		sys := newSys(t, dev)
		sys.RunFor(5000)
		return sys.EnergyMJ()
	}()

	loaded := func() float64 {
		sys := newSys(t, dev)
		for i := 1; i <= 3; i++ {
			if err := sys.AddTask(tasks.Task{Model: tasks.MobileNetV1, Instance: i}, tasks.NNAPI); err != nil {
				t.Fatal(err)
			}
		}
		sys.SetRenderUtil(0.5)
		sys.RunFor(5000)
		return sys.EnergyMJ()
	}()

	if loaded <= idle*1.3 {
		t.Fatalf("loaded energy %.0f mJ should clearly exceed idle %.0f mJ", loaded, idle)
	}
}

func TestResetEnergy(t *testing.T) {
	sys := newSys(t, noNoise(Pixel7()))
	sys.RunFor(2000)
	if sys.EnergyMJ() <= 0 {
		t.Fatal("no energy accrued")
	}
	sys.ResetEnergy()
	if e := sys.EnergyMJ(); e != 0 {
		t.Fatalf("energy after reset = %v", e)
	}
	sys.RunFor(1000)
	if sys.EnergyMJ() <= 0 {
		t.Fatal("energy not accruing after reset")
	}
}

func TestEnergyDeterministic(t *testing.T) {
	run := func() float64 {
		eng := sim.NewEngine(5)
		sys := NewSystem(eng, Pixel7(), DefaultConfig())
		if err := sys.AddTask(tasks.Task{Model: tasks.MNIST, Instance: 1}, tasks.GPU); err != nil {
			t.Fatal(err)
		}
		sys.SetRenderUtil(0.3)
		sys.RunFor(4000)
		return sys.EnergyMJ()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("energy differs across identical runs: %v vs %v", a, b)
	}
}

func TestFPSForKnee(t *testing.T) {
	dev := Pixel7()
	// Below the knee: full target rate.
	if fps := dev.FPSFor(100_000); fps != dev.TargetFPS {
		t.Fatalf("fps at light load = %v, want %v", fps, dev.TargetFPS)
	}
	// Well past the knee: rate drops.
	heavy := dev.FPSFor(1_300_000)
	if heavy >= dev.TargetFPS {
		t.Fatalf("fps at heavy load = %v, want below target", heavy)
	}
	// Monotone non-increasing in load.
	prev := math.Inf(1)
	for _, tri := range []float64{0, 3e5, 6e5, 9e5, 1.2e6, 1.5e6} {
		fps := dev.FPSFor(tri)
		if fps > prev {
			t.Fatalf("fps increased with load at %v triangles", tri)
		}
		prev = fps
	}
	if heavy <= 0 {
		t.Fatal("fps must stay positive")
	}
}

func TestAveragePowerWZeroWindow(t *testing.T) {
	if AveragePowerW(100, 0) != 0 {
		t.Fatal("zero window should yield zero power")
	}
}
