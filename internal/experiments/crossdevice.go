package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// DeviceOutcome is HBO's result on one device.
type DeviceOutcome struct {
	Device string
	ScenarioOutcome
	// StartEpsilon is the unoptimized (static-best, full-triangle) ε, so
	// the improvement factor is visible per device.
	StartEpsilon float64
}

// CrossDeviceResult checks the paper's §V-A remark that results are similar
// across devices ("Due to space limitation and similarity ... we show the
// results with the Pixel 7"): HBO run on SC1-CF1 for both calibrated
// devices.
type CrossDeviceResult struct {
	Outcomes []DeviceOutcome
}

var _ fmt.Stringer = (*CrossDeviceResult)(nil)

// RunCrossDevice executes one HBO activation per device on the SC1-CF1
// combination.
func RunCrossDevice(seed uint64) (*CrossDeviceResult, error) {
	return RunCrossDeviceJobs(seed, 1)
}

// RunCrossDeviceJobs is RunCrossDevice with the per-device activations run
// on up to jobs workers; each device owns its own built system and seed-
// derived RNG, so the report is byte-identical for every jobs value.
func RunCrossDeviceJobs(seed uint64, jobs int) (*CrossDeviceResult, error) {
	devs := []func() *soc.DeviceProfile{soc.Pixel7, soc.GalaxyS22}
	outs := make([]DeviceOutcome, len(devs))
	errs := make([]error, len(devs))
	forEach(jobs, len(devs), func(i int) {
		spec := scenario.Spec{
			Name:     "SC1-CF1",
			Device:   devs[i],
			Objects:  render.SC1(),
			Taskset:  tasks.CF1(),
			Distance: 1.5,
		}
		built, err := spec.Build(seed)
		if err != nil {
			errs[i] = err
			return
		}
		start, err := built.Runtime.Measure(4000)
		if err != nil {
			errs[i] = err
			return
		}
		act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s: %w", built.System.Device().Name, err)
			return
		}
		outs[i] = DeviceOutcome{
			Device:          built.System.Device().Name,
			ScenarioOutcome: summarizeActivation("SC1-CF1", act),
			StartEpsilon:    start.Epsilon,
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return &CrossDeviceResult{Outcomes: outs}, nil
}

// Outcome finds a device's outcome.
func (r *CrossDeviceResult) Outcome(device string) (DeviceOutcome, error) {
	for _, o := range r.Outcomes {
		if strings.Contains(o.Device, device) {
			return o, nil
		}
	}
	return DeviceOutcome{}, fmt.Errorf("experiments: no outcome for device %q", device)
}

// String renders the per-device comparison.
func (r *CrossDeviceResult) String() string {
	var b strings.Builder
	b.WriteString("Cross-device study: HBO on SC1-CF1, both calibrated devices\n")
	rows := [][]string{{"Device", "CPU", "GPU", "NNAPI", "Ratio", "Eps before", "Eps after", "Quality"}}
	for _, o := range r.Outcomes {
		rows = append(rows, []string{
			o.Device,
			fmt.Sprintf("%d", o.AllocationCounts[tasks.CPU]),
			fmt.Sprintf("%d", o.AllocationCounts[tasks.GPU]),
			fmt.Sprintf("%d", o.AllocationCounts[tasks.NNAPI]),
			fmt.Sprintf("%.2f", o.Ratio),
			fmt.Sprintf("%.3f", o.StartEpsilon),
			fmt.Sprintf("%.3f", o.Epsilon),
			fmt.Sprintf("%.3f", o.Quality),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}

// Churn is one mobility pattern's activation accounting in the §VI
// dynamic-environment study.
type Churn struct {
	Pattern     string
	Activations int
	Replays     int
	// MeanReward is the mean monitored reward across the run.
	MeanReward float64
}

// DynamicEnvResult is the §VI limitation study: a user who keeps moving
// (distance oscillation) causes the event-based policy to re-activate often;
// the lookup-table extension absorbs recurring conditions.
type DynamicEnvResult struct {
	Rows []Churn
}

var _ fmt.Stringer = (*DynamicEnvResult)(nil)

// RunDynamicEnv runs three sessions on SC1-CF2 (heavy objects, so distance
// genuinely moves both render load and quality): a calm user (static
// distances), a pacing user without the lookup table, and a pacing user with
// it.
func RunDynamicEnv(seed uint64) (*DynamicEnvResult, error) {
	res := &DynamicEnvResult{}
	type variant struct {
		name   string
		pacing bool
		lookup bool
	}
	for _, v := range []variant{
		{"calm user", false, false},
		{"pacing user", true, false},
		{"pacing user + lookup", true, true},
	} {
		built, err := scenario.SC1CF2().Build(seed)
		if err != nil {
			return nil, err
		}
		hbo := core.DefaultConfig()
		hbo.PeriodMS = 1000
		hbo.SettleMS = 250
		hbo.InitSamples = 3
		hbo.Iterations = 5
		// The production cooldown is disabled here on purpose: this study
		// isolates the raw §VI churn phenomenon that the cooldown (and the
		// lookup table) exist to mitigate.
		hbo.CooldownMS = 0
		cfg := core.SessionConfig{HBO: hbo, Mode: core.EventBased, UseLookup: v.lookup}
		session, err := core.NewSession(built.Runtime, cfg, sim.NewRNG(seed))
		if err != nil {
			return nil, err
		}
		// 4 minutes: the pacing user alternates near/far every 20 s between
		// monitor steps.
		near := true
		for built.System.Now() < 240000 {
			if v.pacing && int(built.System.Now()/20000)%2 == 0 != near {
				near = !near
				d := 1.0
				if !near {
					d = 4.0
				}
				for _, o := range built.Scene.Objects() {
					o.Distance = d
				}
				built.Runtime.SyncRenderLoad()
			}
			if err := session.Step(); err != nil {
				return nil, err
			}
		}
		replays := 0
		var rewardSum float64
		n := 0
		for _, a := range session.Activations() {
			if a.FromLookup {
				replays++
			}
		}
		for _, s := range session.Samples() {
			if !s.InActivation {
				rewardSum += s.Reward
				n++
			}
		}
		mean := 0.0
		if n > 0 {
			mean = rewardSum / float64(n)
		}
		res.Rows = append(res.Rows, Churn{
			Pattern:     v.name,
			Activations: len(session.Activations()),
			Replays:     replays,
			MeanReward:  mean,
		})
	}
	return res, nil
}

// Row finds a pattern's churn record.
func (r *DynamicEnvResult) Row(pattern string) (Churn, error) {
	for _, row := range r.Rows {
		if row.Pattern == pattern {
			return row, nil
		}
	}
	return Churn{}, fmt.Errorf("experiments: no churn row %q", pattern)
}

// String renders the churn comparison.
func (r *DynamicEnvResult) String() string {
	var b strings.Builder
	b.WriteString("Dynamic-environment study (§VI): activation churn under user mobility\n")
	rows := [][]string{{"Pattern", "Activations", "Lookup Replays", "Mean Reward"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Pattern,
			fmt.Sprintf("%d", row.Activations),
			fmt.Sprintf("%d", row.Replays),
			fmt.Sprintf("%.3f", row.MeanReward),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
