package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEach checks the worker-pool primitive covers every index exactly
// once at any parallelism.
func TestForEach(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 64} {
		hits := make([]atomic.Int64, 100)
		forEach(jobs, len(hits), func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: index %d visited %d times", jobs, i, got)
			}
		}
	}
}

// TestFirstError picks the lowest-index error, matching what a serial loop
// with early return would have surfaced.
func TestFirstError(t *testing.T) {
	if err := firstError([]error{nil, nil}); err != nil {
		t.Fatalf("want nil, got %v", err)
	}
	e1, e2 := errors.New("one"), errors.New("two")
	if err := firstError([]error{nil, e1, e2}); err != e1 {
		t.Fatalf("want %v, got %v", e1, err)
	}
}

// TestRunAllEmitsInOrder verifies reports stream in paper order even when
// later artifacts finish first.
func TestRunAllEmitsInOrder(t *testing.T) {
	mk := func(id string) Runner {
		return Runner{ID: id, Run: func(seed uint64) (fmt.Stringer, error) {
			return stringer(id), nil
		}}
	}
	runners := []Runner{mk("a"), mk("b"), mk("c"), mk("d"), mk("e")}
	var order []string
	reports := RunAll(runners, 42, 8, func(rep Report) {
		order = append(order, rep.Runner.ID)
	})
	want := "a b c d e"
	if got := strings.Join(order, " "); got != want {
		t.Fatalf("emit order %q, want %q", got, want)
	}
	if len(reports) != len(runners) {
		t.Fatalf("got %d reports, want %d", len(reports), len(runners))
	}
	for i, rep := range reports {
		if rep.Runner.ID != runners[i].ID {
			t.Fatalf("report %d is %q, want %q", i, rep.Runner.ID, runners[i].ID)
		}
	}
}

type stringer string

func (s stringer) String() string { return string(s) }

// TestRunAllParallelGolden is the determinism gate for the parallel
// harness: a representative artifact subset — including every experiment
// with internal RunJobs parallelism that the subset's runtime budget allows
// — must render byte-identical reports at jobs=1 and jobs=8.
func TestRunAllParallelGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second golden comparison")
	}
	ids := []string{"Table I", "TD", "CrossDevice", "Figure 7", "Figure 9"}
	var runners []Runner
	for _, id := range ids {
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		runners = append(runners, r)
	}
	render := func(jobs int) string {
		var b strings.Builder
		reports := RunAll(runners, 42, jobs, func(rep Report) {
			if rep.Err != nil {
				t.Fatalf("jobs=%d: %s: %v", jobs, rep.Runner.ID, rep.Err)
			}
			fmt.Fprintf(&b, "== %s ==\n%s\n", rep.Runner.ID, rep.Output.String())
		})
		if len(reports) != len(runners) {
			t.Fatalf("jobs=%d: got %d reports, want %d", jobs, len(reports), len(runners))
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

// TestRunAllPropagatesError checks a failing artifact surfaces its error in
// its own report while the others still complete.
func TestRunAllPropagatesError(t *testing.T) {
	boom := errors.New("boom")
	runners := []Runner{
		{ID: "ok", Run: func(seed uint64) (fmt.Stringer, error) { return stringer("fine"), nil }},
		{ID: "bad", Run: func(seed uint64) (fmt.Stringer, error) { return nil, boom }},
	}
	reports := RunAll(runners, 1, 4, nil)
	if reports[0].Err != nil {
		t.Fatalf("ok runner errored: %v", reports[0].Err)
	}
	if !errors.Is(reports[1].Err, boom) {
		t.Fatalf("bad runner error = %v, want %v", reports[1].Err, boom)
	}
}

// TestByIDFindsExtensions pins the fix for the registry lookup: extension
// studies must be addressable by ID just like paper artifacts.
func TestByIDFindsExtensions(t *testing.T) {
	for _, id := range []string{"Figure 7", "CrossDevice", "Optimality", "Acquisition"} {
		if _, err := ByID(id); err != nil {
			t.Fatalf("ByID(%q): %v", id, err)
		}
	}
	if _, err := ByID("no such artifact"); err == nil {
		t.Fatal("ByID of unknown artifact succeeded")
	}
}
