package experiments_test

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/experiments"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

var update = flag.Bool("update", false, "rewrite golden files from the current output")

// reducedArena is the fixed tournament the golden test fences: one scenario,
// every registry entrant, two runs, a 3+5 budget — small enough for CI,
// wide enough that every policy's full Next/Observe cycle is exercised.
func reducedArena(jobs int) experiments.ArenaConfig {
	return experiments.ArenaConfig{
		Scenarios:   []string{"SC2-CF2"},
		Policies:    policies.Names(),
		Runs:        2,
		InitSamples: 3,
		Iterations:  5,
		Seed:        42,
		Jobs:        jobs,
	}
}

func runReduced(t *testing.T, jobs int) *experiments.ArenaResult {
	t.Helper()
	res, err := experiments.RunArena(context.Background(), reducedArena(jobs))
	if err != nil {
		t.Fatalf("arena (jobs=%d): %v", jobs, err)
	}
	return res
}

func dumpArena(t *testing.T, res *experiments.ArenaResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteTrajectories(&buf); err != nil {
		t.Fatalf("write trajectories: %v", err)
	}
	return buf.Bytes()
}

// TestArenaGolden is the tournament's regression fence: the fixed-seed
// reduced grid must reproduce the checked-in per-policy cost/best/regret
// trajectories byte for byte, hex float bits included. Regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestArenaGolden -update
func TestArenaGolden(t *testing.T) {
	got := dumpArena(t, runReduced(t, 1))

	golden := filepath.Join("testdata", "arena.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("arena trajectories drifted from golden file %s:\n%s\n"+
			"If the change is intentional, regenerate with -update.",
			golden, arenaFirstDiff(want, got))
	}
}

// TestArenaJobsInvariance runs the same tournament serially and on eight
// workers and requires byte-identical dumps and JSON artifacts — the
// scheduler must be invisible in every emitted byte.
func TestArenaJobsInvariance(t *testing.T) {
	serial := runReduced(t, 1)
	parallel := runReduced(t, 8)
	if a, b := dumpArena(t, serial), dumpArena(t, parallel); !bytes.Equal(a, b) {
		t.Fatalf("jobs=1 vs jobs=8 trajectory dumps diverge:\n%s", arenaFirstDiff(a, b))
	}
	aj, err := json.Marshal(serial.BenchRecords())
	if err != nil {
		t.Fatalf("marshal serial records: %v", err)
	}
	bj, err := json.Marshal(parallel.BenchRecords())
	if err != nil {
		t.Fatalf("marshal parallel records: %v", err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("jobs=1 vs jobs=8 JSON artifacts diverge:\n want %s\n got %s", aj, bj)
	}
}

// TestArenaGPEIMatchesCoreActivation pins the tentpole's bit-identity
// claim in the arena context: the gp-ei entrant's best-cost trajectory at
// the paper's full budget must equal core.RunActivation's on the same seed
// and scenario — the Policy seam and the tournament loop add nothing.
func TestArenaGPEIMatchesCoreActivation(t *testing.T) {
	res, err := experiments.RunArena(context.Background(), experiments.ArenaConfig{
		Scenarios: []string{"SC2-CF2"},
		Policies:  []string{policies.NameGPEI},
		Runs:      1,
		Seed:      42,
		Jobs:      1,
	})
	if err != nil {
		t.Fatalf("arena: %v", err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d, want 1", len(res.Cells))
	}
	built, err := scenario.SC2CF2().Build(42 + 1000)
	if err != nil {
		t.Fatalf("build twin: %v", err)
	}
	act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(42+1000))
	if err != nil {
		t.Fatalf("core activation: %v", err)
	}
	want := act.BestCostTrajectory()
	got := res.Cells[0].Best
	if len(got) != len(want) {
		t.Fatalf("trajectory length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("step %d: arena gp-ei %x, core activation %x — Policy seam not bit-identical",
				i, math.Float64bits(got[i]), math.Float64bits(want[i]))
		}
	}
}

// TestArenaRankingShape sanity-checks the derived boards: every entrant is
// ranked exactly once in ascending mean-final-best order, regret curves are
// monotone non-decreasing (costs can never beat the empirical baseline),
// and the benchjson records cover the scenario × policy grid.
func TestArenaRankingShape(t *testing.T) {
	res := runReduced(t, 2)
	if len(res.Ranking) != len(res.Policies) {
		t.Fatalf("ranking has %d rows for %d policies", len(res.Ranking), len(res.Policies))
	}
	seen := map[string]bool{}
	for i, s := range res.Ranking {
		if s.Rank != i+1 {
			t.Fatalf("row %d has rank %d", i, s.Rank)
		}
		if seen[s.Policy] {
			t.Fatalf("policy %q ranked twice", s.Policy)
		}
		seen[s.Policy] = true
		if i > 0 && s.MeanFinalBest < res.Ranking[i-1].MeanFinalBest {
			t.Fatalf("ranking not ascending at row %d", i)
		}
		// The baselines here are empirical minima over the same cells, so
		// no entrant's final best can undercut them: the gap is >= 0, and
		// exactly 0 only for an entrant that matched the floor everywhere.
		if s.MeanOracleGap < 0 {
			t.Fatalf("policy %q has negative oracle gap %v against an empirical baseline",
				s.Policy, s.MeanOracleGap)
		}
	}
	if !strings.Contains(res.String(), "Mean Oracle Gap") {
		t.Fatalf("ranking table is missing the oracle-gap column:\n%s", res.String())
	}
	for _, c := range res.Cells {
		for i := 1; i < len(c.Regret); i++ {
			if c.Regret[i] < c.Regret[i-1] {
				t.Fatalf("%s/%s run %d: regret decreases at step %d (baseline above an observed cost)",
					c.Scenario, c.Policy, c.Run, i)
			}
		}
	}
	recs := res.BenchRecords()
	if len(recs) != len(res.Scenarios)*len(res.Policies) {
		t.Fatalf("%d bench records for a %d×%d grid", len(recs), len(res.Scenarios), len(res.Policies))
	}
	for _, r := range recs {
		if r.Extra["rank"] < 1 || r.Extra["rank"] > float64(len(res.Policies)) {
			t.Fatalf("record %s has rank %v", r.Name, r.Extra["rank"])
		}
	}
}

// arenaFirstDiff locates the first differing line of two dumps.
func arenaFirstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
