package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// HeuristicRow is one proportion vector's outcome under both translation
// policies.
type HeuristicRow struct {
	Proportions []float64
	// PQEpsilon is ε under Algorithm 1's priority-queue assignment.
	PQEpsilon float64
	// RandomEpsilon is the mean ε over random assignments honoring the same
	// per-resource counts.
	RandomEpsilon float64
}

// HeuristicStudyResult ablates the greedy priority-queue step of Algorithm 1
// (lines 13–22): given the same per-resource counts from the same BO output,
// does assigning lowest-latency pairs first actually beat a random
// assignment honoring the counts? This isolates the heuristic's contribution
// from the Bayesian search's.
type HeuristicStudyResult struct {
	Rows []HeuristicRow
	// RandomTrials is the number of random assignments averaged per row.
	RandomTrials int
}

var _ fmt.Stringer = (*HeuristicStudyResult)(nil)

// RunHeuristicStudy compares the two policies on SC1-CF1 across several BO
// proportion vectors at the paper's triangle ratio.
func RunHeuristicStudy(seed uint64) (*HeuristicStudyResult, error) {
	const trials = 4
	res := &HeuristicStudyResult{RandomTrials: trials}
	vectors := [][]float64{
		{0.5, 0.0, 0.5},
		{0.34, 0.33, 0.33},
		{0.17, 0.17, 0.66},
		{0.0, 0.5, 0.5},
	}
	for _, c := range vectors {
		row := HeuristicRow{Proportions: c}
		// Priority-queue assignment.
		eps, err := measureAssignmentPolicy(seed, c, nil)
		if err != nil {
			return nil, err
		}
		row.PQEpsilon = eps
		// Random assignments honoring the same counts.
		sum := 0.0
		for trial := 0; trial < trials; trial++ {
			rng := sim.NewRNG(seed + uint64(trial)*131)
			eps, err := measureAssignmentPolicy(seed, c, rng)
			if err != nil {
				return nil, err
			}
			sum += eps
		}
		row.RandomEpsilon = sum / trials
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// measureAssignmentPolicy builds a fresh SC1-CF1 system, assigns tasks from
// the proportion vector — via Algorithm 1 when rng is nil, else via a random
// counts-honoring shuffle — and measures ε at ratio 0.72.
func measureAssignmentPolicy(seed uint64, c []float64, rng *sim.RNG) (float64, error) {
	built, err := scenario.SC1CF1().Build(seed)
	if err != nil {
		return 0, err
	}
	rt := built.Runtime
	ids := rt.TaskIDs()
	counts, err := alloc.Counts(c, len(ids))
	if err != nil {
		return 0, err
	}
	var assignment alloc.Assignment
	if rng == nil {
		assignment, err = alloc.Assign(counts, rt.Profile, ids)
		if err != nil {
			return 0, err
		}
	} else {
		assignment, err = randomAssignment(counts, rt, ids, rng)
		if err != nil {
			return 0, err
		}
	}
	if err := rt.ApplyAllocation(assignment); err != nil {
		return 0, err
	}
	if err := alloc.DistributeTriangles(rt.Scene.Objects(), 0.72); err != nil {
		return 0, err
	}
	rt.SyncRenderLoad()
	rt.Sys.RunFor(800)
	m, err := rt.Measure(4000)
	if err != nil {
		return 0, err
	}
	return m.Epsilon, nil
}

// randomAssignment shuffles tasks onto resources honoring the counts and
// each model's delegate compatibility (incompatible draws fall back to a
// supported resource with remaining capacity, like Assign's repair pass).
func randomAssignment(counts []int, rt *core.Runtime, ids []string, rng *sim.RNG) (alloc.Assignment, error) {
	remaining := append([]int(nil), counts...)
	dev := rt.Sys.Device()
	out := make(alloc.Assignment, len(ids))
	// Visit tasks in random order.
	order := append([]string(nil), ids...)
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for _, id := range order {
		mp, err := dev.Model(modelOf(id))
		if err != nil {
			return nil, err
		}
		// Collect feasible resources (capacity left + supported).
		var feasible []tasks.Resource
		for _, r := range tasks.Resources() {
			if remaining[r] > 0 && mp.Supported(r) {
				feasible = append(feasible, r)
			}
		}
		if len(feasible) == 0 {
			// Repair: any supported resource.
			for _, r := range tasks.Resources() {
				if mp.Supported(r) {
					feasible = append(feasible, r)
				}
			}
		}
		r := feasible[rng.Intn(len(feasible))]
		out[id] = r
		if remaining[r] > 0 {
			remaining[r]--
		}
	}
	return out, nil
}

// String renders the ablation table.
func (r *HeuristicStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Allocation-heuristic ablation (Algorithm 1 lines 13-22 vs random, %d trials)\n", r.RandomTrials)
	rows := [][]string{{"Proportions c", "PQ eps", "Random eps", "PQ advantage"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			formatVec(row.Proportions),
			fmt.Sprintf("%.3f", row.PQEpsilon),
			fmt.Sprintf("%.3f", row.RandomEpsilon),
			fmt.Sprintf("%+.0f%%", (row.RandomEpsilon/row.PQEpsilon-1)*100),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
