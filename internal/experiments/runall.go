package experiments

import (
	"fmt"
	"runtime"
	"time"
)

// Report is one artifact's outcome from RunAll.
type Report struct {
	// Runner identifies the artifact.
	Runner Runner
	// Output is the artifact's printable report (nil when Err is set).
	Output fmt.Stringer
	// Err is the run's failure, if any.
	Err error
	// Elapsed is the artifact's wall-clock time.
	Elapsed time.Duration
	// AllocBytes is the heap allocated during the run (process-wide delta,
	// so it is approximate when other artifacts run concurrently).
	AllocBytes uint64
}

// RunAll executes the runners with at most jobs of them in flight at once
// (jobs == 1 is strictly serial; jobs < 1 means GOMAXPROCS, matching
// bo.Config.Jobs) and returns their reports in the given
// (paper) order. Every runner derives all randomness from its own seed, so
// reports are byte-identical for every jobs value. Runners that support
// internal parallelism (Runner.RunJobs) receive the same worker budget;
// total concurrency can therefore transiently exceed jobs, which only
// overlaps CPU-bound goroutines and never changes output.
//
// If emit is non-nil it is called once per runner, in paper order, as soon
// as the report and all of its predecessors are available — so a CLI can
// stream ordered output while later artifacts are still running.
func RunAll(runners []Runner, seed uint64, jobs int, emit func(Report)) []Report {
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	reports := make([]Report, len(runners))
	done := make([]chan struct{}, len(runners))
	for i := range done {
		done[i] = make(chan struct{})
	}
	sem := make(chan struct{}, jobs)
	go func() {
		for i := range runners {
			sem <- struct{}{}
			go func(i int) {
				defer func() { <-sem }()
				defer close(done[i])
				reports[i] = runOne(runners[i], seed, jobs)
			}(i)
		}
	}()
	for i := range runners {
		<-done[i]
		if emit != nil {
			emit(reports[i])
		}
	}
	return reports
}

// runOne executes a single runner, preferring its parallel entry point.
func runOne(r Runner, seed uint64, jobs int) Report {
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	//lint:allow detlint harness wall timing feeds Report.Elapsed only, never an artifact byte
	start := time.Now()
	var out fmt.Stringer
	var err error
	if r.RunJobs != nil {
		out, err = r.RunJobs(seed, jobs)
	} else {
		out, err = r.Run(seed)
	}
	//lint:allow detlint harness wall timing feeds Report.Elapsed only, never an artifact byte
	elapsed := time.Since(start)
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return Report{
		Runner:     r,
		Output:     out,
		Err:        err,
		Elapsed:    elapsed,
		AllocBytes: after.TotalAlloc - before.TotalAlloc,
	}
}
