package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// SessionTrace is one activation-policy run over the scripted Fig. 8
// timeline.
type SessionTrace struct {
	Policy      string
	Samples     []core.RewardSample
	Activations []core.ActivationMark
	ObjectAdds  []Mark
}

// Figure8Result compares the paper's event-based activation policy (8a)
// against periodic re-optimization (8b) on the same scripted session: ten
// object additions (the last one heavy) followed by a user-distance change.
type Figure8Result struct {
	Event    SessionTrace
	Periodic SessionTrace
}

var _ fmt.Stringer = (*Figure8Result)(nil)

// fig8Catalog is the union catalog for the scripted session: lightweight
// SC2 assets for the first placements, heavy SC1 assets for the additions
// that push the renderer past its frame budget (the paper's 10th object has
// ~150k triangles and triggers an activation).
func fig8Catalog() []render.ObjectCount {
	return append(render.SC2(), render.SC1()...)
}

// fig8Schedule is the placement script: (time s, object, instance).
type fig8Placement struct {
	atS      float64
	object   string
	instance int
}

func fig8Schedule() []fig8Placement {
	return []fig8Placement{
		{0, "cabin", 1},
		{30, "apricot", 1},
		{60, "Cocacola", 1},
		{90, "Cocacola", 2},
		{120, "plane", 1},
		{150, "plane", 2},
		{180, "plane", 3},
		{210, "plane", 4},  // renderer approaches its frame budget
		{240, "splane", 1}, // 9th: crosses the knee (paper: 9th triggers)
		{255, "bike", 1},   // 10th: heaviest asset (paper's heavy add)
	}
}

const (
	fig8DistanceChangeS = 320
	fig8EndS            = 420
	fig8FarDistance     = 4.0
)

// fig8HBOConfig shortens the per-iteration control period so an activation
// fits the session timeline, as in the paper's figure.
func fig8HBOConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.PeriodMS = 1500
	cfg.SettleMS = 400
	return cfg
}

// RunFigure8 runs the scripted session under both activation policies.
func RunFigure8(seed uint64) (*Figure8Result, error) {
	event, err := runFig8Session(seed, core.SessionConfig{
		HBO:  fig8HBOConfig(),
		Mode: core.EventBased,
	}, "event-based")
	if err != nil {
		return nil, err
	}
	periodic, err := runFig8Session(seed, core.SessionConfig{
		HBO:                fig8HBOConfig(),
		Mode:               core.Periodic,
		PeriodicIntervalMS: 55000,
	}, "periodic")
	if err != nil {
		return nil, err
	}
	return &Figure8Result{Event: *event, Periodic: *periodic}, nil
}

func runFig8Session(seed uint64, cfg core.SessionConfig, policy string) (*SessionTrace, error) {
	lib, err := render.LibraryFor(fig8Catalog(), seed)
	if err != nil {
		return nil, err
	}
	spec := scenario.Spec{
		Name:       "Fig8",
		Device:     soc.Pixel7,
		Taskset:    tasks.CF1(),
		Distance:   1.5,
		StartEmpty: true,
	}
	// Build by hand: the union catalog is not one of the Table II sets.
	prof, err := soc.ProfileTaskset(spec.Device(), spec.Taskset, seed)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	sys := soc.NewSystem(eng, spec.Device(), soc.DefaultConfig())
	scene := render.NewScene(lib)
	rt, err := core.NewRuntime(sys, scene, prof, spec.Taskset)
	if err != nil {
		return nil, err
	}
	session, err := core.NewSession(rt, cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}

	tr := &SessionTrace{Policy: policy}
	schedule := fig8Schedule()
	next := 0
	distanceChanged := false
	for sys.Now() < fig8EndS*1000 {
		nowS := sys.Now() / 1000
		for next < len(schedule) && schedule[next].atS <= nowS {
			p := schedule[next]
			if _, err := scene.Place(p.object, p.instance, spec.Distance); err != nil {
				return nil, err
			}
			rt.SyncRenderLoad()
			tr.ObjectAdds = append(tr.ObjectAdds, Mark{TimeS: nowS, Label: fmt.Sprintf("O%d", next+1)})
			next++
		}
		if !distanceChanged && nowS >= fig8DistanceChangeS {
			for _, o := range scene.Objects() {
				o.Distance = fig8FarDistance
			}
			rt.SyncRenderLoad()
			tr.ObjectAdds = append(tr.ObjectAdds, Mark{TimeS: nowS, Label: "D"})
			distanceChanged = true
		}
		if err := session.Step(); err != nil {
			return nil, err
		}
	}
	tr.Samples = session.Samples()
	tr.Activations = session.Activations()
	return tr, nil
}

// String summarizes both traces: activation times and counts, plus the
// reward timeline.
func (r *Figure8Result) String() string {
	var b strings.Builder
	for _, tr := range []SessionTrace{r.Event, r.Periodic} {
		fmt.Fprintf(&b, "Figure 8 (%s): %d activations\n", tr.Policy, len(tr.Activations))
		b.WriteString("  object adds: ")
		for i, m := range tr.ObjectAdds {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s@%.0fs", m.Label, m.TimeS)
		}
		b.WriteString("\n  activations: ")
		for i, a := range tr.Activations {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%.0fs", a.TimeMS/1000)
		}
		b.WriteString("\n  reward samples (every ~10th): ")
		for i, s := range tr.Samples {
			if i%10 != 0 {
				continue
			}
			mark := ""
			if s.InActivation {
				mark = "*"
			}
			fmt.Fprintf(&b, "%.0fs:%.2f%s ", s.TimeMS/1000, s.Reward, mark)
		}
		b.WriteString("\n\n")
	}
	return b.String()
}

// CSV renders both policies' reward timelines and activation marks as
// replottable rows.
func (r *Figure8Result) CSV() string {
	var b strings.Builder
	b.WriteString("time_ms,series,value\n")
	for _, tr := range []SessionTrace{r.Event, r.Periodic} {
		for _, s := range tr.Samples {
			kind := "reward"
			if s.InActivation {
				kind = "reward-exploring"
			}
			fmt.Fprintf(&b, "%.1f,%s:%s,%.6g\n", s.TimeMS, tr.Policy, kind, s.Reward)
		}
		for _, a := range tr.Activations {
			fmt.Fprintf(&b, "%.1f,%s:activation,0\n", a.TimeMS, tr.Policy)
		}
		for _, m := range tr.ObjectAdds {
			fmt.Fprintf(&b, "%.1f,%s:mark:%s,0\n", m.TimeS*1000, tr.Policy, m.Label)
		}
	}
	return b.String()
}
