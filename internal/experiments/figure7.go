package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// ConvergenceRun is one run's best-cost trajectory and final solution.
type ConvergenceRun struct {
	Run      int
	BestCost []float64
	Ratio    float64
	// Proportions is the winning allocation-proportion vector (the paper
	// quotes these for Fig. 7a's first and sixth runs).
	Proportions []float64
}

// Figure7Result is the convergence-robustness study: six independent runs
// of SC1-CF2 and SC2-CF2 from different random initializations.
type Figure7Result struct {
	// Runs maps scenario name to its six runs.
	Runs map[string][]ConvergenceRun
}

var _ fmt.Stringer = (*Figure7Result)(nil)

// FinalCosts returns the last best-cost value of each run for a scenario.
func (r *Figure7Result) FinalCosts(scenarioName string) []float64 {
	var out []float64
	for _, run := range r.Runs[scenarioName] {
		out = append(out, run.BestCost[len(run.BestCost)-1])
	}
	return out
}

// RunFigure7 executes six activations per scenario, varying the seed to
// change the five random initialization points, as the paper's robustness
// study does.
func RunFigure7(seed uint64) (*Figure7Result, error) {
	return RunFigure7Jobs(seed, 1)
}

// RunFigure7Jobs is RunFigure7 with the twelve independent runs (two
// scenarios × six seeds) spread over up to jobs workers. Each run owns a
// freshly built system and an RNG derived from its own run seed, so the
// result is byte-identical for every jobs value.
func RunFigure7Jobs(seed uint64, jobs int) (*Figure7Result, error) {
	specs := []scenario.Spec{scenario.SC1CF2(), scenario.SC2CF2()}
	const runsPerSpec = 6
	type job struct {
		spec scenario.Spec
		run  int
	}
	var todo []job
	for _, spec := range specs {
		for run := 1; run <= runsPerSpec; run++ {
			todo = append(todo, job{spec, run})
		}
	}
	outs := make([]ConvergenceRun, len(todo))
	errs := make([]error, len(todo))
	forEach(jobs, len(todo), func(i int) {
		spec, run := todo[i].spec, todo[i].run
		runSeed := seed + uint64(run)*1000
		built, err := spec.Build(runSeed)
		if err != nil {
			errs[i] = err
			return
		}
		act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(runSeed))
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s run %d: %w", spec.Name, run, err)
			return
		}
		outs[i] = ConvergenceRun{
			Run:         run,
			BestCost:    act.BestCostTrajectory(),
			Ratio:       act.Ratio,
			Proportions: act.Point[:len(act.Point)-1],
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	res := &Figure7Result{Runs: make(map[string][]ConvergenceRun)}
	for i, j := range todo {
		res.Runs[j.spec.Name] = append(res.Runs[j.spec.Name], outs[i])
	}
	return res, nil
}

// String renders per-run trajectories and final solutions.
func (r *Figure7Result) String() string {
	var b strings.Builder
	for _, name := range sortedKeys(r.Runs) {
		fmt.Fprintf(&b, "Figure 7: best-cost convergence, %s (6 runs)\n", name)
		for _, run := range r.Runs[name] {
			fmt.Fprintf(&b, " run %d (ratio %.2f, c = %v):", run.Run, run.Ratio, formatVec(run.Proportions))
			for _, v := range run.BestCost {
				fmt.Fprintf(&b, " %6.2f", v)
			}
			b.WriteByte('\n')
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.2f", x)
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// CSV renders every run's best-cost trajectory as replottable rows.
func (r *Figure7Result) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,series,value\n")
	for _, name := range sortedKeys(r.Runs) {
		for _, run := range r.Runs[name] {
			for i, v := range run.BestCost {
				fmt.Fprintf(&b, "%d,%s-run%d,%.6g\n", i+1, name, run.Run, v)
			}
		}
	}
	return b.String()
}
