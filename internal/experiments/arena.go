package experiments

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http/httptest"
	"sort"
	"strings"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/loadgen"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// ArenaConfig shapes one optimizer tournament.
type ArenaConfig struct {
	// Scenarios names the Table II combinations every policy races on
	// (the Figure-7 robustness grid — SC1-CF2 and SC2-CF2 — when empty).
	Scenarios []string
	// Policies are the registry entrants (all of them when empty).
	Policies []string
	// Runs is the number of independent runs per (scenario, policy) cell
	// (6 when <= 0, matching Figure 7). Run r of every policy shares one
	// run seed, so entrants race from identical initial RNG states on
	// identically built systems.
	Runs int
	// InitSamples and Iterations set each run's evaluation budget (the
	// paper's 5+15 when <= 0).
	InitSamples int
	Iterations  int
	// Seed roots every run seed (runSeed = Seed + run*1000, Figure 7's
	// derivation).
	Seed uint64
	// Jobs bounds cell parallelism; the result is byte-identical for every
	// value.
	Jobs int
	// Oracle, when set, brute-forces each scenario (exhaustive allocation ×
	// ratio-grid sweep) and measures regret against the true optimum;
	// otherwise the baseline is the empirical minimum cost any entrant
	// observed on that scenario.
	Oracle bool
	// FaultBracket, when set, additionally races every entrant through a
	// seeded loadgen fault schedule (dropped requests and injected 500s
	// against a live sessiond server) and reports per-policy resilience.
	FaultBracket bool
	// FaultSessions is the bracket's fleet size per policy (4 when <= 0).
	FaultSessions int
	// MultiUserBracket, when set, additionally drives the multi-user
	// shared-edge contention scenario under the fault bracket's drop/error
	// plan and attaches its fairness sweep — the arena's view of how the
	// contention-aware scheduler holds up when the network misbehaves.
	MultiUserBracket bool
}

func (c ArenaConfig) withDefaults() ArenaConfig {
	if len(c.Scenarios) == 0 {
		c.Scenarios = []string{"SC1-CF2", "SC2-CF2"}
	}
	if len(c.Policies) == 0 {
		c.Policies = policies.Names()
	}
	if c.Runs <= 0 {
		c.Runs = 6
	}
	if c.InitSamples <= 0 {
		c.InitSamples = core.DefaultConfig().InitSamples
	}
	if c.Iterations <= 0 {
		c.Iterations = core.DefaultConfig().Iterations
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.FaultSessions <= 0 {
		c.FaultSessions = 4
	}
	return c
}

func (c ArenaConfig) validate() error {
	for _, name := range c.Scenarios {
		if _, err := scenario.ByName(name); err != nil {
			return err
		}
	}
	for _, name := range c.Policies {
		if !policies.Valid(name) {
			return fmt.Errorf("experiments: arena: unknown policy %q", name)
		}
	}
	return nil
}

// ArenaTrajectory is one (scenario, policy, run) cell: the measured cost of
// every evaluation (the negated reward trajectory), the best-so-far curve,
// and the cumulative regret against the scenario baseline.
type ArenaTrajectory struct {
	Scenario string    `json:"scenario"`
	Policy   string    `json:"policy"`
	Run      int       `json:"run"`
	Costs    []float64 `json:"costs"`
	Best     []float64 `json:"best"`
	Regret   []float64 `json:"regret"`
}

// ArenaStanding is one entrant's final ranking row.
type ArenaStanding struct {
	Rank   int    `json:"rank"`
	Policy string `json:"policy"`
	// MeanFinalBest averages the final best-so-far cost over every
	// (scenario, run) cell — the primary ranking key (ascending, ties
	// broken by name).
	MeanFinalBest float64 `json:"mean_final_best"`
	// MeanFinalRegret averages the final cumulative regret.
	MeanFinalRegret float64 `json:"mean_final_regret"`
	// MeanOracleGap averages final-best minus the scenario baseline over
	// every cell: how far the entrant lands from the oracle (or empirical
	// minimum), in cost units. Zero means it matched the baseline in every
	// bracket; unlike MeanFinalBest it is comparable across scenario mixes
	// because each cell is measured against its own floor.
	MeanOracleGap float64 `json:"mean_oracle_gap"`
	// Wins counts (scenario, run) brackets this entrant won outright
	// (lowest final best; ties go to the lexicographically first name).
	Wins int `json:"wins"`
}

// ArenaFaultRow is one entrant's fault-bracket outcome.
type ArenaFaultRow struct {
	Policy string `json:"policy"`
	// Sessions and Failures count the fleet and its terminal failures.
	Sessions int `json:"sessions"`
	Failures int `json:"failures"`
	// MeanFinalReward averages the fleet's final window rewards.
	MeanFinalReward float64 `json:"mean_final_reward"`
	// Reopens counts transparent re-admissions after server-side evictions;
	// Fallback counts BO iterations recovered locally after remote failures.
	Reopens  int `json:"reopens"`
	Fallback int `json:"fallback"`
}

// ArenaResult is a full tournament outcome.
type ArenaResult struct {
	Scenarios   []string `json:"scenarios"`
	Policies    []string `json:"policies"`
	Runs        int      `json:"runs"`
	InitSamples int      `json:"init_samples"`
	Iterations  int      `json:"iterations"`
	Seed        uint64   `json:"seed"`
	// Oracle records whether Baselines came from the exhaustive sweep or
	// the empirical minimum.
	Oracle bool `json:"oracle"`
	// Baselines maps scenario name to its regret baseline cost.
	Baselines map[string]float64 `json:"baselines"`
	// Cells holds every trajectory, scenario-major, then policy, then run —
	// a deterministic order for any jobs value.
	Cells []ArenaTrajectory `json:"cells"`
	// Ranking is the final table, best entrant first.
	Ranking []ArenaStanding `json:"ranking"`
	// Faults is the optional fault-bracket board (nil unless requested).
	Faults []ArenaFaultRow `json:"faults,omitempty"`
	// MultiUser is the optional shared-edge contention sweep run under the
	// fault bracket's plan (nil unless requested).
	MultiUser *MultiUserResult `json:"multi_user,omitempty"`
}

var _ fmt.Stringer = (*ArenaResult)(nil)

// RunArena races every configured policy across the scenario grid and
// returns trajectories, cumulative-regret curves, and the final ranking.
// All randomness derives from ArenaConfig.Seed through sim.RNG, so the
// result is byte-identical for every Jobs value. The context bounds only
// the fault bracket's live client/server traffic; the simulation cells run
// on virtual time and finish regardless.
func RunArena(ctx context.Context, cfg ArenaConfig) (*ArenaResult, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}

	type cellJob struct {
		scenario string
		policy   string
		run      int
	}
	var todo []cellJob
	for _, sc := range cfg.Scenarios {
		for _, pol := range cfg.Policies {
			for run := 1; run <= cfg.Runs; run++ {
				todo = append(todo, cellJob{sc, pol, run})
			}
		}
	}
	cells := make([]ArenaTrajectory, len(todo))
	errs := make([]error, len(todo))
	forEach(cfg.Jobs, len(todo), func(i int) {
		j := todo[i]
		spec, err := scenario.ByName(j.scenario)
		if err != nil {
			errs[i] = err
			return
		}
		runSeed := cfg.Seed + uint64(j.run)*1000
		costs, best, err := runArenaCell(spec, j.policy, runSeed, cfg.InitSamples, cfg.Iterations)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: arena %s/%s run %d: %w", j.scenario, j.policy, j.run, err)
			return
		}
		cells[i] = ArenaTrajectory{
			Scenario: j.scenario, Policy: j.policy, Run: j.run,
			Costs: costs, Best: best,
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}

	res := &ArenaResult{
		Scenarios:   cfg.Scenarios,
		Policies:    cfg.Policies,
		Runs:        cfg.Runs,
		InitSamples: cfg.InitSamples,
		Iterations:  cfg.Iterations,
		Seed:        cfg.Seed,
		Oracle:      cfg.Oracle,
		Baselines:   make(map[string]float64, len(cfg.Scenarios)),
		Cells:       cells,
	}
	if err := res.fillBaselines(cfg); err != nil {
		return nil, err
	}
	res.fillRegret()
	res.rank()
	if cfg.FaultBracket {
		rows, err := runFaultBracket(ctx, cfg)
		if err != nil {
			return nil, err
		}
		res.Faults = rows
	}
	if cfg.MultiUserBracket {
		mu, err := RunMultiUser(MultiUserConfig{
			UserCounts: []int{8, 16},
			Slots:      48,
			Seed:       cfg.Seed,
			Jobs:       cfg.Jobs,
			Faults:     arenaFaultPlan,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: arena multi-user bracket: %w", err)
		}
		res.MultiUser = mu
	}
	return res, nil
}

// arenaFaultPlan is the shared fault schedule both arena brackets inject:
// the live loadgen bracket applies it at the transport and the multi-user
// bracket reinterprets the same rates as deterministic per-slot offload
// failures.
var arenaFaultPlan = faults.Plan{DropRate: 0.05, ServerErrorRate: 0.05}

// runArenaCell runs one policy's full activation loop on a freshly built
// system, mirroring core.RunActivation's evaluate-observe cycle with the
// optimizer swapped for a registry entrant. GP-EI through this path is
// bit-identical to core.RunActivation at the paper's budget.
func runArenaCell(spec scenario.Spec, policy string, runSeed uint64, init, iters int) (costs, best []float64, err error) {
	built, err := spec.Build(runSeed)
	if err != nil {
		return nil, nil, err
	}
	cfg := core.DefaultConfig()
	dom := bo.Domain{N: tasks.NumResources, RMin: cfg.RMin}
	boCfg := bo.DefaultConfig()
	boCfg.InitSamples = init
	pol, err := policies.New(policy, dom, boCfg, sim.NewRNG(runSeed))
	if err != nil {
		return nil, nil, err
	}
	total := init + iters
	costs = make([]float64, 0, total)
	best = make([]float64, 0, total)
	for i := 0; i < total; i++ {
		point, err := pol.Next()
		if err != nil {
			return nil, nil, err
		}
		if _, err := built.Runtime.ApplyConfiguration(point[:tasks.NumResources], point[tasks.NumResources]); err != nil {
			return nil, nil, err
		}
		built.Runtime.Sys.RunFor(cfg.SettleMS)
		m, err := built.Runtime.Measure(cfg.PeriodMS)
		if err != nil {
			return nil, nil, err
		}
		cost := m.Cost(cfg.Weight)
		if err := pol.Observe(point, cost); err != nil {
			return nil, nil, err
		}
		costs = append(costs, cost)
		if len(best) == 0 || cost < best[len(best)-1] {
			best = append(best, cost)
		} else {
			best = append(best, best[len(best)-1])
		}
	}
	return costs, best, nil
}

// fillBaselines computes each scenario's regret baseline: the oracle's
// exhaustive optimum when requested, else the empirical minimum cost any
// entrant observed there.
func (r *ArenaResult) fillBaselines(cfg ArenaConfig) error {
	for _, name := range r.Scenarios {
		if cfg.Oracle {
			spec, err := scenario.ByName(name)
			if err != nil {
				return err
			}
			best, _, err := oracleSearch(spec, cfg.Seed, cfg.Jobs)
			if err != nil {
				return fmt.Errorf("experiments: arena oracle %s: %w", name, err)
			}
			r.Baselines[name] = best.Cost
			continue
		}
		base := math.Inf(1)
		for _, c := range r.Cells {
			if c.Scenario != name {
				continue
			}
			for _, v := range c.Costs {
				if v < base {
					base = v
				}
			}
		}
		r.Baselines[name] = base
	}
	return nil
}

// fillRegret turns each cell's cost series into a cumulative-regret curve
// against its scenario baseline.
func (r *ArenaResult) fillRegret() {
	for i := range r.Cells {
		c := &r.Cells[i]
		base := r.Baselines[c.Scenario]
		c.Regret = make([]float64, len(c.Costs))
		var cum float64
		for t, v := range c.Costs {
			cum += v - base
			c.Regret[t] = cum
		}
	}
}

// rank builds the final table: mean final best cost ascending, ties broken
// by policy name, with per-bracket win counts.
func (r *ArenaResult) rank() {
	type agg struct {
		finalBest   float64
		finalRegret float64
		oracleGap   float64
		cells       int
		wins        int
	}
	aggs := make(map[string]*agg, len(r.Policies))
	for _, p := range r.Policies {
		aggs[p] = &agg{}
	}
	for _, c := range r.Cells {
		a := aggs[c.Policy]
		a.finalBest += c.Best[len(c.Best)-1]
		a.finalRegret += c.Regret[len(c.Regret)-1]
		a.oracleGap += c.Best[len(c.Best)-1] - r.Baselines[c.Scenario]
		a.cells++
	}
	// Bracket wins: for every (scenario, run), the lowest final best wins,
	// ties to the lexicographically first policy name.
	for _, sc := range r.Scenarios {
		for run := 1; run <= r.Runs; run++ {
			winner := ""
			bestCost := math.Inf(1)
			for _, c := range r.Cells {
				if c.Scenario != sc || c.Run != run {
					continue
				}
				final := c.Best[len(c.Best)-1]
				tied := math.Float64bits(final) == math.Float64bits(bestCost)
				if final < bestCost || (tied && c.Policy < winner) {
					bestCost = final
					winner = c.Policy
				}
			}
			if winner != "" {
				aggs[winner].wins++
			}
		}
	}
	r.Ranking = r.Ranking[:0]
	for _, p := range r.Policies {
		a := aggs[p]
		n := float64(a.cells)
		if n == 0 {
			n = 1
		}
		r.Ranking = append(r.Ranking, ArenaStanding{
			Policy:          p,
			MeanFinalBest:   a.finalBest / n,
			MeanFinalRegret: a.finalRegret / n,
			MeanOracleGap:   a.oracleGap / n,
			Wins:            a.wins,
		})
	}
	sort.SliceStable(r.Ranking, func(i, j int) bool {
		a, b := r.Ranking[i].MeanFinalBest, r.Ranking[j].MeanFinalBest
		if math.Float64bits(a) != math.Float64bits(b) {
			return a < b
		}
		return r.Ranking[i].Policy < r.Ranking[j].Policy
	})
	for i := range r.Ranking {
		r.Ranking[i].Rank = i + 1
	}
}

// Standing returns a policy's ranking row.
func (r *ArenaResult) Standing(policy string) (ArenaStanding, error) {
	for _, s := range r.Ranking {
		if s.Policy == policy {
			return s, nil
		}
	}
	return ArenaStanding{}, fmt.Errorf("experiments: arena: no standing for policy %q", policy)
}

// runFaultBracket races every entrant's fleet through an identical seeded
// fault schedule against its own live sessiond server. Each bracket runs
// its sessions serially (loadgen Jobs=1) so per-policy reports are
// byte-identical; brackets themselves run under the arena's job bound.
func runFaultBracket(ctx context.Context, cfg ArenaConfig) ([]ArenaFaultRow, error) {
	rows := make([]ArenaFaultRow, len(cfg.Policies))
	errs := make([]error, len(cfg.Policies))
	forEach(cfg.Jobs, len(cfg.Policies), func(i int) {
		policy := cfg.Policies[i]
		svc, err := sessiond.New(sessiond.DefaultConfig(), nil)
		if err != nil {
			errs[i] = err
			return
		}
		defer svc.Close()
		ts := httptest.NewServer(svc.Handler())
		defer ts.Close()
		rep, err := loadgen.Run(ctx, loadgen.Config{
			BaseURL:    ts.URL,
			Sessions:   cfg.FaultSessions,
			Seed:       cfg.Seed,
			Jobs:       1,
			DurationMS: 20_000,
			Policy:     policy,
			Faults:     arenaFaultPlan,
		})
		if err != nil {
			errs[i] = fmt.Errorf("experiments: arena fault bracket %s: %w", policy, err)
			return
		}
		row := ArenaFaultRow{
			Policy:   policy,
			Sessions: len(rep.Sessions),
			Failures: rep.Failures,
			Reopens:  rep.TotalReopens,
			Fallback: rep.TotalFallback,
		}
		for _, s := range rep.Sessions {
			row.MeanFinalReward += s.FinalReward
		}
		if len(rep.Sessions) > 0 {
			row.MeanFinalReward /= float64(len(rep.Sessions))
		}
		rows[i] = row
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return rows, nil
}

// BenchRecord is one benchjson-shaped arena metric (the same schema
// cmd/benchjson emits for `go test -bench` output), so arena artifacts can
// sit next to BENCH_*.json snapshots and flow through the same tooling.
// NsPerOp stays zero: arena records carry optimization quality, not wall
// clock, and wall clock would break jobs-invariant byte-identity.
type BenchRecord struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64              `json:"allocs_per_op,omitempty"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// BenchRecords flattens the tournament into benchjson-compatible records,
// one per (scenario, policy): Arena/<scenario>/<policy> with the cell's
// mean final best cost, its gap to the scenario baseline, mean final
// cumulative regret, and the entrant's global rank. Record order is
// deterministic (scenario-major, then the configured policy order).
func (r *ArenaResult) BenchRecords() []BenchRecord {
	rank := make(map[string]int, len(r.Ranking))
	for _, s := range r.Ranking {
		rank[s.Policy] = s.Rank
	}
	var out []BenchRecord
	for _, sc := range r.Scenarios {
		for _, p := range r.Policies {
			var finalBest, finalRegret float64
			var n int
			for _, c := range r.Cells {
				if c.Scenario != sc || c.Policy != p {
					continue
				}
				finalBest += c.Best[len(c.Best)-1]
				finalRegret += c.Regret[len(c.Regret)-1]
				n++
			}
			if n == 0 {
				continue
			}
			out = append(out, BenchRecord{
				Name:       "Arena/" + sc + "/" + p,
				Iterations: int64(n),
				Extra: map[string]float64{
					"final_best_cost":  finalBest / float64(n),
					"final_cum_regret": finalRegret / float64(n),
					"oracle_gap":       finalBest/float64(n) - r.Baselines[sc],
					"rank":             float64(rank[p]),
				},
			})
		}
	}
	return out
}

// String renders the ranking table, per-scenario baselines, and (when run)
// the fault bracket.
func (r *ArenaResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Optimizer arena: %d polic%s × %d scenario%s × %d runs (budget %d+%d, seed %d)\n",
		len(r.Policies), plural(len(r.Policies), "y", "ies"),
		len(r.Scenarios), plural(len(r.Scenarios), "", "s"),
		r.Runs, r.InitSamples, r.Iterations, r.Seed)
	base := "empirical minimum"
	if r.Oracle {
		base = "exhaustive oracle"
	}
	for _, sc := range r.Scenarios {
		fmt.Fprintf(&b, "  %s baseline (%s): %.3f\n", sc, base, r.Baselines[sc])
	}
	b.WriteByte('\n')
	rows := [][]string{{"Rank", "Policy", "Mean Final Cost", "Mean Oracle Gap", "Mean Cum Regret", "Wins"}}
	for _, s := range r.Ranking {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s.Rank),
			displayPolicy(s.Policy),
			fmt.Sprintf("%.3f", s.MeanFinalBest),
			fmt.Sprintf("%.3f", s.MeanOracleGap),
			fmt.Sprintf("%.2f", s.MeanFinalRegret),
			fmt.Sprintf("%d", s.Wins),
		})
	}
	b.WriteString(table(rows))
	if len(r.Faults) > 0 {
		b.WriteString("\nFault bracket (seeded drops + 500s, per-policy fleets)\n")
		frows := [][]string{{"Policy", "Sessions", "Failures", "Mean Final Reward", "Reopens", "Fallback"}}
		for _, f := range r.Faults {
			frows = append(frows, []string{
				displayPolicy(f.Policy),
				fmt.Sprintf("%d", f.Sessions),
				fmt.Sprintf("%d", f.Failures),
				fmt.Sprintf("%.3f", f.MeanFinalReward),
				fmt.Sprintf("%d", f.Reopens),
				fmt.Sprintf("%d", f.Fallback),
			})
		}
		b.WriteString(table(frows))
	}
	if r.MultiUser != nil {
		b.WriteString("\nMulti-user bracket (shared-edge contention under the fault plan)\n")
		b.WriteString(r.MultiUser.String())
	}
	return b.String()
}

func displayPolicy(name string) string {
	if policies.Canonical(name) == "" {
		return policies.NameGPEI
	}
	return name
}

func plural(n int, one, many string) string {
	if n == 1 {
		return one
	}
	return many
}

// arenaTrajectoryFormat versions the WriteTrajectories dump; bump it on any
// layout change so stale goldens fail loudly instead of mis-diffing.
const arenaTrajectoryFormat = "arena-trajectories-v1"

// WriteTrajectories dumps every cell's cost, best-so-far, and cumulative
// regret series as IEEE-754 hex bits — a byte-exact regression format (the
// same idiom as loadgen's trajectory goldens). Cells appear in their
// deterministic result order, baselines in scenario order, and the final
// ranking as a trailer, so one dump fences the whole tournament.
func (r *ArenaResult) WriteTrajectories(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s seed=%016x runs=%d budget=%d+%d oracle=%d\n",
		arenaTrajectoryFormat, r.Seed, r.Runs, r.InitSamples, r.Iterations, boolBit(r.Oracle))
	for _, sc := range r.Scenarios {
		fmt.Fprintf(bw, "baseline %s %016x\n", sc, math.Float64bits(r.Baselines[sc]))
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(bw, "cell %s %s run=%d evals=%d\n",
			c.Scenario, displayPolicy(c.Policy), c.Run, len(c.Costs))
		for t := range c.Costs {
			fmt.Fprintf(bw, "%016x %016x %016x\n",
				math.Float64bits(c.Costs[t]), math.Float64bits(c.Best[t]), math.Float64bits(c.Regret[t]))
		}
	}
	for _, s := range r.Ranking {
		fmt.Fprintf(bw, "rank %d %s %016x %016x wins=%d\n",
			s.Rank, displayPolicy(s.Policy),
			math.Float64bits(s.MeanFinalBest), math.Float64bits(s.MeanFinalRegret), s.Wins)
	}
	return bw.Flush()
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

// CSV renders every cell's cumulative-regret curve as replottable rows.
func (r *ArenaResult) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,series,value\n")
	for _, c := range r.Cells {
		for i, v := range c.Regret {
			fmt.Fprintf(&b, "%d,%s-%s-run%d,%.6g\n", i+1, c.Scenario, c.Policy, c.Run, v)
		}
	}
	return b.String()
}
