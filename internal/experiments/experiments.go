// Package experiments regenerates every table and figure of the paper's
// evaluation (§V) on the simulated substrate: each runner reproduces one
// artifact's workload and parameters and renders the same rows or series the
// paper reports. The per-experiment index lives in DESIGN.md §4;
// paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Runner regenerates one paper artifact.
type Runner struct {
	// ID is the paper artifact ("Table I", "Figure 2b", ...).
	ID string
	// Description says what the artifact shows.
	Description string
	// Run executes the experiment and returns a printable report.
	Run func(seed uint64) (fmt.Stringer, error)
	// RunJobs, when non-nil, executes the experiment with an internal
	// worker budget (its independent sub-runs — seeds, devices, oracle
	// configurations — spread over up to jobs goroutines). The report is
	// byte-identical to Run's for every jobs value.
	RunJobs func(seed uint64, jobs int) (fmt.Stringer, error)
}

// All returns every experiment runner in paper order.
func All() []Runner {
	return []Runner{
		{ID: "Table I", Description: "isolation response time of each model on each resource, both devices",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunTableI(seed) }},
		{ID: "Figure 2a", Description: "deconv instances across CPU/GPU, scripted reallocations",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure2a(seed) }},
		{ID: "Figure 2b", Description: "five deeplabv3 instances across NNAPI/CPU with object additions",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure2b(seed) }},
		{ID: "Figure 2c", Description: "mixed taskset across GPU/NNAPI",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure2c(seed) }},
		{ID: "Figure 4 + Table III", Description: "HBO allocation, triangle ratio, and convergence across the four scenarios",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure4(seed) }},
		{ID: "Figure 5 + Table IV", Description: "HBO vs SMQ/SML/BNT/AllN on SC1-CF1",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure5(seed) }},
		{ID: "Figure 6", Description: "in-depth analysis of one SC1-CF1 activation",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure6(seed) }},
		{ID: "Figure 7", Description: "best-cost convergence across six runs, SC1-CF2 and SC2-CF2",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunFigure7(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunFigure7Jobs(seed, jobs) }},
		{ID: "Figure 8", Description: "event-based vs periodic activation over a scripted session",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunFigure8(seed) }},
		{ID: "Figure 9", Description: "simulated user study, HBO vs SML at close and far distance",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunFigure9(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunFigure9Jobs(seed, jobs) }},
	}
}

// ByID finds a runner by artifact name among the paper artifacts and the
// ablation/extension studies.
func ByID(id string) (Runner, error) {
	for _, r := range AllWithExtensions() {
		if strings.EqualFold(r.ID, id) {
			return r, nil
		}
	}
	return Runner{}, fmt.Errorf("experiments: unknown artifact %q", id)
}

// table renders rows with aligned columns; the first row is the header.
func table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	for ri, row := range rows {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
		if ri == 0 {
			for i, w := range widths {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// sortedKeys returns map keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
