package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// TableIResult holds the regenerated Table I: per-device isolation response
// times of every registry model on GPU, NNAPI and CPU.
type TableIResult struct {
	// Rows maps device name -> model name -> latency vector.
	Rows map[string]map[string][tasks.NumResources]float64
}

var _ fmt.Stringer = (*TableIResult)(nil)

// RunTableI profiles every model in isolation on both calibrated devices,
// reproducing the measurement protocol behind the paper's Table I.
func RunTableI(seed uint64) (*TableIResult, error) {
	res := &TableIResult{Rows: make(map[string]map[string][tasks.NumResources]float64)}
	for _, dev := range soc.Devices() {
		rows, err := soc.TableI(dev, seed)
		if err != nil {
			return nil, err
		}
		res.Rows[dev.Name] = rows
	}
	return res, nil
}

// String renders the table in the paper's layout: one row per model, (GPU,
// NNAPI, CPU) columns per device, NA for unsupported delegates.
func (r *TableIResult) String() string {
	var b strings.Builder
	b.WriteString("Table I: isolation response time (ms) per model and resource\n")
	header := []string{"AI Model", "Task"}
	var devices []string
	for _, dev := range soc.Devices() {
		if _, ok := r.Rows[dev.Name]; ok {
			devices = append(devices, dev.Name)
			header = append(header, dev.Name+" GPU", "NNAPI", "CPU")
		}
	}
	rows := [][]string{header}
	for _, m := range tasks.All() {
		row := []string{m.Name, m.Kind.String()}
		for _, dev := range devices {
			lat := r.Rows[dev][m.Name]
			for _, res := range []tasks.Resource{tasks.GPU, tasks.NNAPI, tasks.CPU} {
				if math.IsNaN(lat[res]) {
					row = append(row, "NA")
				} else {
					row = append(row, fmt.Sprintf("%.1f", lat[res]))
				}
			}
		}
		rows = append(rows, row)
	}
	b.WriteString(table(rows))
	return b.String()
}
