package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/baselines"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// ComparisonRow is one controller's outcome in the Fig. 5 / Table IV
// comparison.
type ComparisonRow struct {
	Name       string
	Assignment map[string]tasks.Resource
	Ratio      float64
	Quality    float64
	Epsilon    float64
	// LatencyRatio is ε relative to HBO's (the y-axis of Fig. 5c).
	LatencyRatio float64
	// PerTaskLatency supports the Fig. 6d style per-model breakdown.
	PerTaskLatency map[string]float64
}

// Figure5Result covers Fig. 5a-c and Table IV on SC1-CF1.
type Figure5Result struct {
	HBO  ComparisonRow
	Rows []ComparisonRow // SMQ, SML, BNT, AllN
}

var _ fmt.Stringer = (*Figure5Result)(nil)

// RunFigure5 runs HBO on SC1-CF1, then each baseline on a fresh build of the
// same scenario, deriving SMQ's ratio and SML's latency target from HBO's
// solution as the paper does.
func RunFigure5(seed uint64) (*Figure5Result, error) {
	spec := scenario.SC1CF1()

	hboBuilt, err := spec.Build(seed)
	if err != nil {
		return nil, err
	}
	act, err := core.RunActivation(hboBuilt.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	// Re-measure HBO's enforced solution over the baselines' common window
	// so all rows share a protocol.
	m, err := hboBuilt.Runtime.Measure(5000)
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{HBO: ComparisonRow{
		Name:           "HBO",
		Assignment:     act.Assignment,
		Ratio:          act.Ratio,
		Quality:        m.Quality,
		Epsilon:        m.Epsilon,
		LatencyRatio:   1,
		PerTaskLatency: m.PerTaskLatency,
	}}

	controllers := []baselines.Controller{
		baselines.SMQ{HBORatio: act.Ratio},
		baselines.SML{HBOEpsilon: m.Epsilon, RMin: core.DefaultConfig().RMin},
		baselines.BNT{Seed: seed},
		baselines.AllN{},
	}
	for _, c := range controllers {
		built, err := spec.Build(seed)
		if err != nil {
			return nil, err
		}
		o, err := c.Run(built.Runtime)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", c.Name(), err)
		}
		row := ComparisonRow{
			Name:           o.Name,
			Assignment:     o.Assignment,
			Ratio:          o.Ratio,
			Quality:        o.Quality,
			Epsilon:        o.Epsilon,
			PerTaskLatency: o.PerTaskLatency,
		}
		if m.Epsilon > 0 {
			row.LatencyRatio = o.Epsilon / m.Epsilon
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Row finds a baseline row by name.
func (r *Figure5Result) Row(name string) (ComparisonRow, error) {
	if name == "HBO" {
		return r.HBO, nil
	}
	for _, row := range r.Rows {
		if row.Name == name {
			return row, nil
		}
	}
	return ComparisonRow{}, fmt.Errorf("experiments: no row %s", name)
}

// String renders Table IV plus the Fig. 5b/5c summary.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Table IV: allocation and triangle ratio, HBO vs baselines (SC1-CF1)\n")
	all := append([]ComparisonRow{r.HBO}, r.Rows...)
	taskSet := map[string]struct{}{}
	for _, row := range all {
		for id := range row.Assignment {
			taskSet[id] = struct{}{}
		}
	}
	header := []string{"AI Model/Experiment"}
	for _, row := range all {
		header = append(header, row.Name)
	}
	t := [][]string{header}
	for _, id := range sortedKeys(taskSet) {
		line := []string{id}
		for _, row := range all {
			line = append(line, row.Assignment[id].String())
		}
		t = append(t, line)
	}
	ratio := []string{"Triangle Count Ratio"}
	for _, row := range all {
		ratio = append(ratio, fmt.Sprintf("%.2f", row.Ratio))
	}
	t = append(t, ratio)
	b.WriteString(table(t))

	b.WriteString("\nFigure 5b/5c: average quality and latency ratio\n")
	s := [][]string{{"Controller", "Ratio", "Avg Quality", "Epsilon", "Latency vs HBO"}}
	for _, row := range all {
		s = append(s, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%.3f", row.Quality),
			fmt.Sprintf("%.3f", row.Epsilon),
			fmt.Sprintf("%.2fx", row.LatencyRatio),
		})
	}
	b.WriteString(table(s))
	return b.String()
}
