package experiments

import (
	"strings"
	"testing"
)

func TestExtensionsRegistry(t *testing.T) {
	ext := Extensions()
	if len(ext) != 11 {
		t.Fatalf("extensions registry has %d entries", len(ext))
	}
	all := AllWithExtensions()
	if len(all) != len(All())+len(ext) {
		t.Fatalf("AllWithExtensions has %d entries", len(all))
	}
}

func TestAcquisitionStudy(t *testing.T) {
	res, err := RunAcquisitionStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 3 {
		t.Fatalf("got %d outcomes", len(res.Outcomes))
	}
	byName := map[string]AcquisitionOutcome{}
	for _, o := range res.Outcomes {
		if len(o.FinalCosts) != res.Trials {
			t.Fatalf("%s has %d trials", o.Name, len(o.FinalCosts))
		}
		byName[o.Name] = o
	}
	ei, ok := byName["EI"]
	if !ok {
		t.Fatal("no EI outcome")
	}
	// The paper chooses EI; on our substrate it must at least not be the
	// worst of the three on mean final cost.
	worse := 0
	for name, o := range byName {
		if name != "EI" && o.MeanFinal >= ei.MeanFinal {
			worse++
		}
	}
	if worse == 0 {
		t.Errorf("EI (%v) was strictly worst: %+v", ei.MeanFinal, byName)
	}
	if !strings.Contains(res.String(), "EI") {
		t.Error("render missing EI row")
	}
}

func TestEnergyStudy(t *testing.T) {
	res, err := RunEnergyStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	hbo, err := res.Row("HBO")
	if err != nil {
		t.Fatal(err)
	}
	alln, err := res.Row("AllN")
	if err != nil {
		t.Fatal(err)
	}
	static, err := res.Row("Static")
	if err != nil {
		t.Fatal(err)
	}
	// HBO's reduced triangle count must save platform power relative to
	// both full-quality configurations.
	if hbo.AveragePowerW >= alln.AveragePowerW {
		t.Errorf("HBO power %.2fW should be below AllN %.2fW", hbo.AveragePowerW, alln.AveragePowerW)
	}
	if hbo.AveragePowerW >= static.AveragePowerW {
		t.Errorf("HBO power %.2fW should be below Static %.2fW", hbo.AveragePowerW, static.AveragePowerW)
	}
	// Full-triangle SC1 drives the renderer past its budget: frame rate
	// collapses, while HBO holds the target.
	if hbo.FPS <= alln.FPS {
		t.Errorf("HBO fps %.0f should exceed AllN %.0f", hbo.FPS, alln.FPS)
	}
	if alln.FPS >= 60 {
		t.Errorf("AllN at full triangles should miss the frame budget, got %.0f fps", alln.FPS)
	}
	// Sanity on power scale: a phone SoC, not a space heater.
	for _, row := range res.Rows {
		if row.AveragePowerW < 1 || row.AveragePowerW > 15 {
			t.Errorf("%s power %.2fW implausible", row.Name, row.AveragePowerW)
		}
	}
}

func TestTDStudy(t *testing.T) {
	res, err := RunTDStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Sensitivity weighting exists to beat the uniform split when
		// objects differ in distance/shape.
		if row.QualitySens <= row.QualityUniform {
			t.Errorf("ratio %.1f: sensitivity TD %.3f not better than uniform %.3f",
				row.TotalRatio, row.QualitySens, row.QualityUniform)
		}
		if row.QualitySens > 1 || row.QualityUniform <= 0 {
			t.Errorf("ratio %.1f: implausible qualities %v/%v", row.TotalRatio, row.QualitySens, row.QualityUniform)
		}
	}
}

func TestThermalStudy(t *testing.T) {
	res, err := RunThermalStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	hbo, err := res.Trace("HBO-config")
	if err != nil {
		t.Fatal(err)
	}
	alln, err := res.Trace("AllN")
	if err != nil {
		t.Fatal(err)
	}
	if len(hbo.Samples) != 30 || len(alln.Samples) != 30 {
		t.Fatalf("sample counts %d/%d", len(hbo.Samples), len(alln.Samples))
	}
	// AllN runs the SoC hotter and ends up more throttled.
	if hbo.Final().TemperatureC >= alln.Final().TemperatureC {
		t.Errorf("HBO config should run cooler: %.1fC vs %.1fC",
			hbo.Final().TemperatureC, alln.Final().TemperatureC)
	}
	// Temperatures stay in a physical range.
	for _, tr := range res.Traces {
		for _, s := range tr.Samples {
			if s.TemperatureC < 25 || s.TemperatureC > 90 {
				t.Fatalf("%s: implausible temperature %.1fC", tr.Name, s.TemperatureC)
			}
		}
	}
	// AllN's latency degrades as throttling kicks in (first vs last third).
	early := alln.Samples[4].Epsilon
	late := alln.Final().Epsilon
	if late <= early {
		t.Logf("note: AllN eps did not visibly drift (%.2f -> %.2f); saturation may dominate", early, late)
	}
}

func TestCrossDeviceStudy(t *testing.T) {
	res, err := RunCrossDevice(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 2 {
		t.Fatalf("got %d devices", len(res.Outcomes))
	}
	for _, o := range res.Outcomes {
		// The paper's similarity claim: both devices relocate tasks off the
		// accelerators, reduce triangles, and improve massively over the
		// unoptimized start.
		if o.AllocationCounts[1] != 0 { // tasks.GPU == 1
			t.Errorf("%s: tasks left on GPU delegate under render load", o.Device)
		}
		if o.Ratio > 0.95 {
			t.Errorf("%s: ratio %.2f, want reduction on SC1", o.Device, o.Ratio)
		}
		if o.Epsilon >= o.StartEpsilon/2 {
			t.Errorf("%s: eps %.3f did not clearly improve on start %.3f", o.Device, o.Epsilon, o.StartEpsilon)
		}
	}
	p7, err := res.Outcome("Pixel")
	if err != nil {
		t.Fatal(err)
	}
	s22, err := res.Outcome("S22")
	if err != nil {
		t.Fatal(err)
	}
	if p7.Device == s22.Device {
		t.Fatal("device lookup broken")
	}
}

func TestDynamicEnvStudy(t *testing.T) {
	res, err := RunDynamicEnv(42)
	if err != nil {
		t.Fatal(err)
	}
	calm, err := res.Row("calm user")
	if err != nil {
		t.Fatal(err)
	}
	pacing, err := res.Row("pacing user")
	if err != nil {
		t.Fatal(err)
	}
	lookup, err := res.Row("pacing user + lookup")
	if err != nil {
		t.Fatal(err)
	}
	// §VI's limitation: mobility causes activation churn.
	if pacing.Activations <= calm.Activations {
		t.Errorf("pacing (%d activations) should churn more than calm (%d)",
			pacing.Activations, calm.Activations)
	}
	// The lookup table converts most triggers into cheap replays...
	if lookup.Replays == 0 {
		t.Error("lookup run produced no replays")
	}
	fullExplorations := lookup.Activations - lookup.Replays
	if fullExplorations >= pacing.Activations {
		t.Errorf("lookup did not reduce full explorations: %d vs %d",
			fullExplorations, pacing.Activations)
	}
	// ...and the user experiences a better average reward than under
	// constant re-exploration.
	if lookup.MeanReward <= pacing.MeanReward {
		t.Errorf("lookup mean reward %.3f should beat pacing %.3f",
			lookup.MeanReward, pacing.MeanReward)
	}
}

func TestOptimalityStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle brute-force is slow")
	}
	res, err := RunOptimalityStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	// 27 allocations x 10 ratios on SC2-CF2, all NNAPI-compatible.
	if res.Evaluated != 270 {
		t.Fatalf("oracle evaluated %d configurations, want 270", res.Evaluated)
	}
	if res.HBOEvaluations != 20 {
		t.Fatalf("HBO measured %d configurations, want 20", res.HBOEvaluations)
	}
	// The oracle is an upper bound on any feasible reward.
	if res.HBO.Cost < res.Oracle.Cost-0.1 {
		t.Fatalf("HBO cost %.3f beats the oracle %.3f beyond noise — oracle broken",
			res.HBO.Cost, res.Oracle.Cost)
	}
	// The near-optimal claim, quantified: HBO lands within half of the
	// optimum's reward scale while measuring 13x fewer configurations.
	if res.GapPercent > 50 {
		t.Errorf("optimality gap %.1f%%, want <= 50%%", res.GapPercent)
	}
	// SC2-CF2's optimum keeps quality essentially intact.
	if res.Oracle.Ratio < 0.8 {
		t.Errorf("oracle ratio %.2f, expected light scene to keep quality", res.Oracle.Ratio)
	}
}

func TestQualityFit(t *testing.T) {
	res, err := RunQualityFit(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 { // full Table II catalog
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// The quadratic cannot be exact (the truth is a power law), but the
		// pipeline must track it well enough for HBO's decisions.
		if row.RMSE > 0.08 {
			t.Errorf("%s: fit RMSE %.3f too high", row.Object, row.RMSE)
		}
		if row.WorstAbs > 0.25 {
			t.Errorf("%s: worst fit error %.3f too high", row.Object, row.WorstAbs)
		}
		if row.Severity <= 0 || row.Gamma <= 0 {
			t.Errorf("%s: implausible truth %+v", row.Object, row)
		}
	}
}

func TestMultiAppStudy(t *testing.T) {
	res, err := RunMultiApp(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) != 3 {
		t.Fatalf("got %d rounds", len(res.Rounds))
	}
	for _, r := range res.Rounds {
		// Structural sanity: both apps keep producing finite, plausible
		// measurements while sharing the SoC. (Convergence is explicitly
		// NOT asserted — uncoordinated optimizers interfere, which is the
		// study's finding.)
		if r.ServiceEpsilon <= 0 || r.ServiceEpsilon > 30 {
			t.Errorf("round %d: service eps %v implausible", r.Round, r.ServiceEpsilon)
		}
		if r.ARReward < -45 || r.ARReward > 2 {
			t.Errorf("round %d: AR reward %v implausible", r.Round, r.ARReward)
		}
		if r.ARRatio <= 0 || r.ARRatio > 1 {
			t.Errorf("round %d: AR ratio %v out of range", r.Round, r.ARRatio)
		}
	}
	if !strings.Contains(res.String(), "coordinate") {
		t.Error("report missing the coordination caveat")
	}
}

func TestHeuristicStudy(t *testing.T) {
	res, err := RunHeuristicStudy(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Algorithm 1's greedy lowest-latency-first assignment must not
		// lose to random placement under the same per-resource counts.
		if row.PQEpsilon > row.RandomEpsilon {
			t.Errorf("c=%v: PQ eps %.3f worse than random %.3f",
				row.Proportions, row.PQEpsilon, row.RandomEpsilon)
		}
		if row.PQEpsilon <= 0 {
			t.Errorf("c=%v: implausible PQ eps %.3f", row.Proportions, row.PQEpsilon)
		}
	}
}
