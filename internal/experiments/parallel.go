package experiments

import (
	"sync"
	"sync/atomic"
)

// forEach runs fn(i) for every i in [0, n) on at most jobs concurrent
// workers. jobs <= 1 degenerates to a plain loop. It is the building block
// behind every parallel experiment: the callers pre-derive all per-index
// inputs (seeds, specs) deterministically, write results only to index i,
// and combine them in index order afterwards, so the output is byte-
// identical for every jobs value (see DESIGN.md §9).
func forEach(jobs, n int, fn func(i int)) {
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	next.Store(-1)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// firstError returns the lowest-index error of a per-index error slice, so
// a parallel run reports the same failure a serial scan would.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
