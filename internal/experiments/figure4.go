package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// ScenarioOutcome is HBO's solution for one SC×CF combination.
type ScenarioOutcome struct {
	Scenario string
	// AllocationCounts is the number of tasks on each resource (Fig. 4a).
	AllocationCounts [tasks.NumResources]int
	// Assignment is the per-task breakdown (Table III).
	Assignment map[string]tasks.Resource
	// Ratio is the chosen triangle count ratio (Fig. 4b / Table III).
	Ratio float64
	// BestCost is the cost trajectory across iterations (Fig. 4c).
	BestCost []float64
	// Quality and Epsilon are the winning configuration's measurements.
	Quality float64
	Epsilon float64
	// ConvergedAt is the 1-based iteration at which the final best cost was
	// first reached (the paper: best case 7, average 13).
	ConvergedAt int
}

// Figure4Result covers Fig. 4a-c and Table III: HBO run on all four Table II
// scenario combinations.
type Figure4Result struct {
	Outcomes []ScenarioOutcome
}

var _ fmt.Stringer = (*Figure4Result)(nil)

// RunFigure4 executes one HBO activation per scenario with the paper's
// configuration (w = 2.5, 5 random seeds + 15 iterations).
func RunFigure4(seed uint64) (*Figure4Result, error) {
	res := &Figure4Result{}
	for _, spec := range scenario.All() {
		built, err := spec.Build(seed)
		if err != nil {
			return nil, err
		}
		act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", spec.Name, err)
		}
		res.Outcomes = append(res.Outcomes, summarizeActivation(spec.Name, act))
	}
	return res, nil
}

// summarizeActivation converts an activation result into a scenario outcome.
func summarizeActivation(name string, act *core.Result) ScenarioOutcome {
	out := ScenarioOutcome{
		Scenario:   name,
		Assignment: make(map[string]tasks.Resource, len(act.Assignment)),
		Ratio:      act.Ratio,
		BestCost:   act.BestCostTrajectory(),
		Quality:    act.Quality,
		Epsilon:    act.Epsilon,
	}
	for id, r := range act.Assignment {
		out.Assignment[id] = r
		out.AllocationCounts[r]++
	}
	best := out.BestCost[len(out.BestCost)-1]
	for i, v := range out.BestCost {
		// Identity search within the same slice: bit comparison is exact.
		if math.Float64bits(v) == math.Float64bits(best) {
			out.ConvergedAt = i + 1
			break
		}
	}
	return out
}

// String renders Fig. 4a (allocation counts), Fig. 4b (ratios), Table III
// (per-task), and the Fig. 4c trajectories.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4a: HBO task allocation counts per scenario\n")
	rows := [][]string{{"Scenario", "CPU", "GPU", "NNAPI", "Ratio (Fig 4b)", "Converged@"}}
	for _, o := range r.Outcomes {
		rows = append(rows, []string{
			o.Scenario,
			fmt.Sprintf("%d", o.AllocationCounts[tasks.CPU]),
			fmt.Sprintf("%d", o.AllocationCounts[tasks.GPU]),
			fmt.Sprintf("%d", o.AllocationCounts[tasks.NNAPI]),
			fmt.Sprintf("%.2f", o.Ratio),
			fmt.Sprintf("%d", o.ConvergedAt),
		})
	}
	b.WriteString(table(rows))

	b.WriteString("\nTable III: per-task allocation and triangle ratio\n")
	taskSet := map[string]struct{}{}
	for _, o := range r.Outcomes {
		for id := range o.Assignment {
			taskSet[id] = struct{}{}
		}
	}
	header := []string{"AI Model/Scenario"}
	for _, o := range r.Outcomes {
		header = append(header, o.Scenario)
	}
	t3 := [][]string{header}
	for _, id := range sortedKeys(taskSet) {
		row := []string{id}
		for _, o := range r.Outcomes {
			if res, ok := o.Assignment[id]; ok {
				row = append(row, res.String())
			} else {
				row = append(row, "-")
			}
		}
		t3 = append(t3, row)
	}
	ratioRow := []string{"Triangle Count Ratio"}
	for _, o := range r.Outcomes {
		ratioRow = append(ratioRow, fmt.Sprintf("%.2f", o.Ratio))
	}
	t3 = append(t3, ratioRow)
	b.WriteString(table(t3))

	b.WriteString("\nFigure 4c: best cost through iterations\n")
	for _, o := range r.Outcomes {
		fmt.Fprintf(&b, "%-8s:", o.Scenario)
		for _, v := range o.BestCost {
			fmt.Fprintf(&b, " %6.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Outcome finds a scenario's outcome by name.
func (r *Figure4Result) Outcome(name string) (ScenarioOutcome, error) {
	for _, o := range r.Outcomes {
		if o.Scenario == name {
			return o, nil
		}
	}
	return ScenarioOutcome{}, fmt.Errorf("experiments: no outcome for %s", name)
}

// CSV renders each scenario's best-cost trajectory as replottable rows.
func (r *Figure4Result) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,series,value\n")
	for _, o := range r.Outcomes {
		for i, v := range o.BestCost {
			fmt.Fprintf(&b, "%d,%s,%.6g\n", i+1, o.Scenario, v)
		}
	}
	return b.String()
}
