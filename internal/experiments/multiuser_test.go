package experiments_test

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/mar-hbo/hbo/internal/experiments"
	"github.com/mar-hbo/hbo/internal/faults"
)

// reducedMultiUser is the fixed sweep the golden test fences: one
// uncontended and one contended fleet, short sessions — small enough for
// CI, wide enough that the scheduler's degrade/defer machinery fires.
func reducedMultiUser(jobs int) experiments.MultiUserConfig {
	return experiments.MultiUserConfig{
		UserCounts: []int{4, 16},
		Slots:      48,
		Seed:       42,
		Jobs:       jobs,
	}
}

func runReducedMultiUser(t *testing.T, jobs int) *experiments.MultiUserResult {
	t.Helper()
	res, err := experiments.RunMultiUser(reducedMultiUser(jobs))
	if err != nil {
		t.Fatalf("multiuser (jobs=%d): %v", jobs, err)
	}
	return res
}

func dumpMultiUser(t *testing.T, res *experiments.MultiUserResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := res.WriteTrajectories(&buf); err != nil {
		t.Fatalf("write trajectories: %v", err)
	}
	return buf.Bytes()
}

// TestMultiUserGolden is the contention model's regression fence: the
// fixed-seed sweep must reproduce the checked-in aggregate-B_t and per-user
// trajectories byte for byte, hex float bits included. Regenerate
// deliberately with:
//
//	go test ./internal/experiments -run TestMultiUserGolden -update
func TestMultiUserGolden(t *testing.T) {
	got := dumpMultiUser(t, runReducedMultiUser(t, 1))
	// In-process repetition first: a drift here is nondeterminism, not a
	// stale golden.
	if again := dumpMultiUser(t, runReducedMultiUser(t, 1)); !bytes.Equal(got, again) {
		t.Fatalf("two in-process runs diverge:\n%s", arenaFirstDiff(got, again))
	}

	golden := filepath.Join("testdata", "multiuser.golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", golden, len(got))
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("multiuser trajectories drifted from golden file %s:\n%s\n"+
			"If the change is intentional, regenerate with -update.",
			golden, arenaFirstDiff(want, got))
	}
}

// TestMultiUserJobsInvariance runs the same sweep serially and on eight
// workers and requires byte-identical dumps and JSON artifacts.
func TestMultiUserJobsInvariance(t *testing.T) {
	serial := runReducedMultiUser(t, 1)
	parallel := runReducedMultiUser(t, 8)
	if a, b := dumpMultiUser(t, serial), dumpMultiUser(t, parallel); !bytes.Equal(a, b) {
		t.Fatalf("jobs=1 vs jobs=8 trajectory dumps diverge:\n%s", arenaFirstDiff(a, b))
	}
	aj, err := json.Marshal(serial.BenchRecords())
	if err != nil {
		t.Fatalf("marshal serial records: %v", err)
	}
	bj, err := json.Marshal(parallel.BenchRecords())
	if err != nil {
		t.Fatalf("marshal parallel records: %v", err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("jobs=1 vs jobs=8 JSON artifacts diverge:\n want %s\n got %s", aj, bj)
	}
}

// TestJainIndex pins the fairness metric on hand-computed vectors.
func TestJainIndex(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 1, 1, 1}, 1},                // perfect equality
		{[]float64{5}, 1},                         // single user is trivially fair
		{[]float64{1, 0, 0, 0}, 0.25},             // one user takes all: 1/n
		{[]float64{2, 4}, 0.9},                    // (2+4)² / (2·(4+16)) = 36/40
		{[]float64{1, 2, 3}, 36.0 / (3.0 * 14.0)}, // (6²)/(3·14)
		{nil, 0},             // empty
		{[]float64{0, 0}, 0}, // no service at all
	}
	for i, c := range cases {
		if got := experiments.JainIndex(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: JainIndex(%v) = %v, want %v", i, c.xs, got, c.want)
		}
	}
}

// TestMultiUserSchedulerFairnessShape is the headline ranking assertion: on
// the default sweep at the committed seed, the contention-aware scheduler
// must beat independent per-session HBO on both Jain fairness and aggregate
// reward at every contended fleet size (N >= 16), while staying neutral on
// uncontended fleets.
func TestMultiUserSchedulerFairnessShape(t *testing.T) {
	res, err := experiments.RunMultiUserStudy(42)
	if err != nil {
		t.Fatalf("multiuser study: %v", err)
	}
	for _, n := range res.UserCounts {
		ind, err := res.Cell(n, experiments.ModeIndependent)
		if err != nil {
			t.Fatal(err)
		}
		sch, err := res.Cell(n, experiments.ModeScheduler)
		if err != nil {
			t.Fatal(err)
		}
		if n >= 16 {
			if sch.Fairness <= ind.Fairness {
				t.Errorf("N=%d: scheduler fairness %.4f <= independent %.4f",
					n, sch.Fairness, ind.Fairness)
			}
			if sch.MeanAgg <= ind.MeanAgg {
				t.Errorf("N=%d: scheduler mean B %.4f <= independent %.4f",
					n, sch.MeanAgg, ind.MeanAgg)
			}
			if sch.Degrades+sch.Defers == 0 {
				t.Errorf("N=%d: contended fleet but scheduler never degraded or deferred", n)
			}
		} else {
			// Uncontended fleets: the scheduler must not distort anything —
			// same admissions, same outcomes as laissez-faire.
			if sch.Defers != 0 || sch.Degrades != 0 {
				t.Errorf("N=%d: uncontended fleet saw %d degrades, %d defers",
					n, sch.Degrades, sch.Defers)
			}
			if math.Abs(sch.MeanAgg-ind.MeanAgg) > 1e-12 {
				t.Errorf("N=%d: uncontended modes diverge: %.6f vs %.6f",
					n, sch.MeanAgg, ind.MeanAgg)
			}
		}
	}
}

// TestMultiUserChaos drives a contended fleet through the loadgen fault
// bracket's drop/error plan and asserts graceful degradation: the run
// completes, fallbacks are counted, every reward stays finite and positive,
// and neither aggregate performance nor fairness collapses.
func TestMultiUserChaos(t *testing.T) {
	cfg := experiments.MultiUserConfig{
		UserCounts: []int{12},
		Slots:      48,
		Seed:       42,
		Faults:     faults.Plan{DropRate: 0.25, ServerErrorRate: 0.15},
	}
	res, err := experiments.RunMultiUser(cfg)
	if err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	clean, err := experiments.RunMultiUser(experiments.MultiUserConfig{
		UserCounts: []int{12}, Slots: 48, Seed: 42,
	})
	if err != nil {
		t.Fatalf("clean run: %v", err)
	}
	for _, c := range res.Cells {
		if c.Drops == 0 {
			t.Errorf("%d/%s: fault plan active but no drops recorded", c.Users, c.Mode)
		}
		for s, v := range c.AggB {
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
				t.Fatalf("%d/%s slot %d: aggregate reward %v not finite-positive", c.Users, c.Mode, s, v)
			}
		}
		if c.Fairness <= 0.5 || c.Fairness > 1 {
			t.Errorf("%d/%s: fairness %v collapsed under faults", c.Users, c.Mode, c.Fairness)
		}
		cc, err := clean.Cell(c.Users, c.Mode)
		if err != nil {
			t.Fatal(err)
		}
		if c.MeanAgg <= 0.25*cc.MeanAgg {
			t.Errorf("%d/%s: faulted mean B %v collapsed vs clean %v", c.Users, c.Mode, c.MeanAgg, cc.MeanAgg)
		}
	}
}
