package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func TestRegistryCoversEveryArtifact(t *testing.T) {
	want := []string{
		"Table I", "Figure 2a", "Figure 2b", "Figure 2c",
		"Figure 4 + Table III", "Figure 5 + Table IV",
		"Figure 6", "Figure 7", "Figure 8", "Figure 9",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d runners, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("runner %d = %s, want %s", i, all[i].ID, id)
		}
	}
	if _, err := ByID("figure 6"); err != nil {
		t.Error("ByID should be case-insensitive")
	}
	if _, err := ByID("Figure 99"); err == nil {
		t.Error("unknown artifact accepted")
	}
}

func TestTableIMatchesCalibration(t *testing.T) {
	res, err := RunTableI(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, dev := range soc.Devices() {
		rows, ok := res.Rows[dev.Name]
		if !ok {
			t.Fatalf("no rows for %s", dev.Name)
		}
		for name, mp := range dev.Models {
			for _, r := range tasks.Resources() {
				got := rows[name][r]
				want := mp.LatencyMS[r]
				switch {
				case math.IsNaN(want):
					if !math.IsNaN(got) {
						t.Errorf("%s/%s/%s: got %.1f, want NA", dev.Name, name, r, got)
					}
				default:
					if math.Abs(got-want) > 0.05*want+0.5 {
						t.Errorf("%s/%s/%s: got %.1f, want ~%.1f", dev.Name, name, r, got, want)
					}
				}
			}
		}
	}
	if !strings.Contains(res.String(), "deeplabv3") {
		t.Error("rendered table missing model rows")
	}
}

func TestFigure2bShape(t *testing.T) {
	res, err := RunFigure2b(42)
	if err != nil {
		t.Fatal(err)
	}
	// Instance 1: CPU (0-25s) is slower than after moving to NNAPI (25-40s).
	cpuPhase := res.Latency("deeplabv3", 5, 24)
	nnapiAlone := res.Latency("deeplabv3", 28, 40)
	if nnapiAlone >= cpuPhase {
		t.Errorf("NNAPI reallocation did not help: CPU %.1f vs NNAPI %.1f", cpuPhase, nnapiAlone)
	}
	// Latency grows as instances pile on NNAPI (t=95..120 vs t=28..40).
	crowded := res.Latency("deeplabv3", 100, 119)
	if crowded <= nnapiAlone {
		t.Errorf("crowding NNAPI did not raise latency: %.1f vs %.1f", crowded, nnapiAlone)
	}
	// The object additions at 150/180s spike everyone's latency.
	loaded := res.Latency("deeplabv3", 185, 199)
	if loaded <= crowded*1.3 {
		t.Errorf("objects did not spike latency: loaded %.1f vs crowded %.1f", loaded, crowded)
	}
	// Relocating instances 5 and 4 to CPU at 200/220s relieves the others.
	relieved := res.Latency("deeplabv3", 230, 258)
	if relieved >= loaded {
		t.Errorf("CPU relocation did not relieve NNAPI: %.1f vs %.1f", relieved, loaded)
	}
	// All five instances are recorded, and marks follow the script.
	if got := len(res.Recorder.Names()); got != 5 {
		t.Fatalf("recorded %d series, want 5", got)
	}
	if res.Marks[0].Label != "C1" || res.Marks[len(res.Marks)-1].Label != "C4" {
		t.Fatalf("marks wrong: %+v", res.Marks)
	}
}

func TestFigure2aAnd2cRun(t *testing.T) {
	a, err := RunFigure2a(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Recorder.Names()) != 4 {
		t.Fatalf("2a recorded %d series, want 4", len(a.Recorder.Names()))
	}
	c, err := RunFigure2c(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Recorder.Names()) != 5 {
		t.Fatalf("2c recorded %d series, want 5", len(c.Recorder.Names()))
	}
	// Objects must hurt the GPU-resident task in 2a.
	before := a.Latency("deconv-munet", 120, 139)
	after := a.Latency("deconv-munet", 145, 168)
	if after <= before {
		t.Errorf("2a: objects did not slow GPU task: %.1f vs %.1f", after, before)
	}
}

func TestFigure4Shape(t *testing.T) {
	res, err := RunFigure4(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 4 {
		t.Fatalf("got %d outcomes", len(res.Outcomes))
	}
	sc1cf1, err := res.Outcome("SC1-CF1")
	if err != nil {
		t.Fatal(err)
	}
	sc2cf1, err := res.Outcome("SC2-CF1")
	if err != nil {
		t.Fatal(err)
	}
	// Heavy scenes force triangle reduction; light scenes keep quality
	// (paper: SC1 ratios 0.72/0.85 vs SC2 ratios 1.0/0.94).
	if sc1cf1.Ratio >= sc2cf1.Ratio {
		t.Errorf("SC1-CF1 ratio %.2f should be below SC2-CF1 %.2f", sc1cf1.Ratio, sc2cf1.Ratio)
	}
	// CF1 scenarios relocate the GPU-affine tasks away from the contended
	// accelerators (paper: model-metadata instances move to CPU).
	if sc1cf1.AllocationCounts[tasks.CPU] == 0 {
		t.Error("SC1-CF1 should relocate at least one task to CPU")
	}
	// Every scenario's trajectory is non-increasing and converges within
	// the iteration budget.
	for _, o := range res.Outcomes {
		for i := 1; i < len(o.BestCost); i++ {
			if o.BestCost[i] > o.BestCost[i-1]+1e-9 {
				t.Errorf("%s: best cost increased at %d", o.Scenario, i)
			}
		}
		if o.ConvergedAt < 1 || o.ConvergedAt > len(o.BestCost) {
			t.Errorf("%s: converged at %d", o.Scenario, o.ConvergedAt)
		}
	}
	out := res.String()
	for _, want := range []string{"Table III", "Figure 4c", "Triangle Count Ratio"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	res, err := RunFigure5(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("got %d baseline rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Epsilon <= res.HBO.Epsilon {
			t.Errorf("%s epsilon %.3f should exceed HBO %.3f", row.Name, row.Epsilon, res.HBO.Epsilon)
		}
		if row.LatencyRatio <= 1 {
			t.Errorf("%s latency ratio %.2f should exceed 1", row.Name, row.LatencyRatio)
		}
	}
	smq, err := res.Row("SMQ")
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(smq.Ratio-res.HBO.Ratio) > 1e-9 {
		t.Errorf("SMQ ratio %.2f must match HBO %.2f", smq.Ratio, res.HBO.Ratio)
	}
	if math.Abs(smq.Quality-res.HBO.Quality) > 0.05 {
		t.Errorf("SMQ quality %.3f should match HBO %.3f", smq.Quality, res.HBO.Quality)
	}
	sml, err := res.Row("SML")
	if err != nil {
		t.Fatal(err)
	}
	if sml.Quality >= res.HBO.Quality {
		t.Errorf("SML quality %.3f should be below HBO %.3f", sml.Quality, res.HBO.Quality)
	}
	for _, name := range []string{"BNT", "AllN"} {
		row, err := res.Row(name)
		if err != nil {
			t.Fatal(err)
		}
		if row.Ratio != 1 {
			t.Errorf("%s ratio %.2f, want 1 (no triangle regulation)", name, row.Ratio)
		}
	}
}

func TestFigure6Shape(t *testing.T) {
	res, err := RunFigure6(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Distances) != 19 || len(res.BestCost) != 20 || len(res.Quality) != 20 {
		t.Fatalf("series lengths %d/%d/%d", len(res.Distances), len(res.BestCost), len(res.Quality))
	}
	// SMQ is never faster than HBO on the majority of tasks (Fig. 6d).
	worse := 0
	for id, hbo := range res.HBOLatency {
		if res.SMQLatency[id] >= hbo {
			worse++
		}
	}
	if worse < len(res.HBOLatency)/2+1 {
		t.Errorf("SMQ slower on only %d/%d tasks", worse, len(res.HBOLatency))
	}
	if !strings.Contains(res.String(), "Figure 6d") {
		t.Error("render missing panel 6d")
	}
}

func TestFigure7Robustness(t *testing.T) {
	res, err := RunFigure7(42)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"SC1-CF2", "SC2-CF2"} {
		finals := res.FinalCosts(name)
		if len(finals) != 6 {
			t.Fatalf("%s has %d runs", name, len(finals))
		}
		// The paper's claim: all runs converge to a similar-cost solution.
		// Require most runs to land clearly below their starting cost and
		// in negative-cost (positive-reward) territory.
		good := 0
		for _, f := range finals {
			if f < 0 {
				good++
			}
		}
		if good < 4 {
			t.Errorf("%s: only %d/6 runs converged to positive reward: %v", name, good, finals)
		}
	}
}

func TestFigure8PolicyComparison(t *testing.T) {
	res, err := RunFigure8(42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Event.Activations) == 0 {
		t.Fatal("event policy never activated")
	}
	// First activation fires at the first object placement.
	if res.Event.Activations[0].TimeMS > 10000 {
		t.Errorf("first activation at %.0fms, want near first placement", res.Event.Activations[0].TimeMS)
	}
	// The event policy activates less often than periodic (the paper's
	// point: periodic wastes seven activations).
	if len(res.Event.Activations) >= len(res.Periodic.Activations) {
		t.Errorf("event policy used %d activations, periodic %d",
			len(res.Event.Activations), len(res.Periodic.Activations))
	}
	if len(res.Periodic.Activations) < 5 {
		t.Errorf("periodic policy activated %d times, want ~7", len(res.Periodic.Activations))
	}
	if len(res.Event.ObjectAdds) != 11 { // 10 objects + distance change
		t.Errorf("recorded %d scene events, want 11", len(res.Event.ObjectAdds))
	}
}

func TestFigure9StudyShape(t *testing.T) {
	res, err := RunFigure9(42)
	if err != nil {
		t.Fatal(err)
	}
	if res.PanelSize != 7 {
		t.Fatalf("panel size %d, want 7 (paper)", res.PanelSize)
	}
	for _, dist := range []string{"close", "far"} {
		hbo, err := res.Condition("HBO", dist)
		if err != nil {
			t.Fatal(err)
		}
		sml, err := res.Condition("SML", dist)
		if err != nil {
			t.Fatal(err)
		}
		if hbo.MeanScore <= sml.MeanScore {
			t.Errorf("%s: HBO score %.1f should beat SML %.1f", dist, hbo.MeanScore, sml.MeanScore)
		}
		if hbo.Ratio <= sml.Ratio {
			t.Errorf("%s: HBO ratio %.2f should exceed SML %.2f", dist, hbo.Ratio, sml.Ratio)
		}
	}
	hboClose, _ := res.Condition("HBO", "close")
	if hboClose.MeanScore < 4.3 {
		t.Errorf("HBO close score %.1f, want near 4.9 (paper)", hboClose.MeanScore)
	}
}

// TestEveryArtifactRunsAtAlternateSeed exercises every paper artifact and
// extension study end-to-end at a seed none of the shape tests use, so
// seed-specific assumptions cannot hide in the runners.
func TestEveryArtifactRunsAtAlternateSeed(t *testing.T) {
	if testing.Short() {
		t.Skip("full artifact sweep is slow")
	}
	for _, r := range AllWithExtensions() {
		if r.ID == "Optimality" {
			continue // brute force; covered by its own test
		}
		r := r
		t.Run(r.ID, func(t *testing.T) {
			out, err := r.Run(7)
			if err != nil {
				t.Fatalf("%s: %v", r.ID, err)
			}
			if len(out.String()) < 40 {
				t.Fatalf("%s: implausibly short report", r.ID)
			}
		})
	}
}

// TestArtifactDeterminism pins the repository-wide reproducibility claim:
// re-running an experiment with the same seed inside one process yields
// byte-identical reports. This is the regression test for tie-breaking leaks
// (e.g. event creation order depending on map iteration), which surface as
// occasional run-to-run drift long before they break a shape assertion.
func TestArtifactDeterminism(t *testing.T) {
	for _, id := range []string{"Figure 2b", "Figure 6"} {
		r, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		a, err := r.Run(42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r.Run(42)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s: identical seeds produced different reports", id)
		}
	}
}

// TestCSVExports checks every artifact that offers replottable CSV series:
// header present, rows well-formed, and content matching the run.
func TestCSVExports(t *testing.T) {
	type csver interface{ CSV() string }
	checks := []struct {
		id     string
		header string
	}{
		{"Figure 2b", "time_ms,series,value"},
		{"Figure 4 + Table III", "iteration,series,value"},
		{"Figure 6", "iteration,series,value"},
		{"Figure 7", "iteration,series,value"},
		{"Figure 8", "time_ms,series,value"},
	}
	for _, c := range checks {
		r, err := ByID(c.id)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(42)
		if err != nil {
			t.Fatal(err)
		}
		cv, ok := out.(csver)
		if !ok {
			t.Fatalf("%s does not export CSV", c.id)
		}
		csv := cv.CSV()
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		if lines[0] != c.header {
			t.Fatalf("%s: header %q, want %q", c.id, lines[0], c.header)
		}
		if len(lines) < 10 {
			t.Fatalf("%s: only %d CSV rows", c.id, len(lines))
		}
		for i, line := range lines[1:] {
			if strings.Count(line, ",") != 2 {
				t.Fatalf("%s row %d malformed: %q", c.id, i+1, line)
			}
		}
	}
}
