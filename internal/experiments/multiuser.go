package experiments

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/contend"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/loadgen"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Multi-user scenario modes: every user count runs once under each.
const (
	// ModeIndependent is the paper's single-user HBO applied verbatim per
	// session: every user optimizes its own (allocation, quality) point and
	// offloads whatever it wants — the shared edge absorbs the sum under
	// processor sharing, so contention shows up only as latency.
	ModeIndependent = "independent"
	// ModeScheduler routes the same fleet through the contention-aware
	// look-ahead scheduler: each slot it admits, degrades, or defers each
	// session's offload bid before the shared edge sees it.
	ModeScheduler = "scheduler"
)

// MultiUserConfig shapes one shared-edge contention study.
type MultiUserConfig struct {
	// UserCounts are the fleet sizes swept ({4, 8, 16, 24} when empty).
	// The default shared edge saturates near 16 concurrent users, so the
	// sweep crosses from uncontended into overload.
	UserCounts []int
	// Slots is the virtual session length in scheduler slots (96 when <= 0).
	Slots int
	// SlotMS is the slot length in virtual milliseconds (100 when zero).
	SlotMS float64
	// WindowSlots is each user's HBO activation window: one suggest/observe
	// cycle per window (6 when <= 0).
	WindowSlots int
	// Policy selects every user's per-session optimizer from the registry
	// (the GP-EI default when empty).
	Policy string
	// Seed roots the study; both modes of a given user count share one
	// population seed, so they race identical fleets.
	Seed uint64
	// Jobs bounds cell parallelism; the result is byte-identical for every
	// value.
	Jobs int
	// Faults, when non-zero, injects deterministic per-user offload
	// failures: DropRate is the chance a slot's uplink drops and
	// ServerErrorRate the chance the edge rejects it — either way the user
	// falls back to degraded local execution for that slot. Other Plan
	// fields are transport-level and ignored in this virtual-time model.
	Faults faults.Plan
	// Edge sizes the shared edge (contend.DefaultConfig when zero) and
	// Sched the look-ahead scheduler (contend.DefaultSchedulerConfig when
	// zero); SlotMS and Capacity are kept coherent between them.
	Edge  contend.Config
	Sched contend.SchedulerConfig
}

func (c MultiUserConfig) withDefaults() MultiUserConfig {
	if len(c.UserCounts) == 0 {
		c.UserCounts = []int{4, 8, 16, 24}
	}
	if c.Slots <= 0 {
		c.Slots = 96
	}
	if c.SlotMS == 0 {
		c.SlotMS = 100
	}
	if c.WindowSlots <= 0 {
		c.WindowSlots = 6
	}
	if c.Jobs <= 0 {
		c.Jobs = 1
	}
	if c.Edge == (contend.Config{}) {
		c.Edge = contend.DefaultConfig()
	}
	if c.Sched == (contend.SchedulerConfig{}) {
		c.Sched = contend.DefaultSchedulerConfig()
		c.Sched.Capacity = c.Edge.GPUCapacity
		c.Sched.SlotMS = c.SlotMS
	}
	return c
}

// Per-user workload and reward shaping. The numbers are calibrated so the
// default edge (capacity 4 demand-ms/ms over 100 ms slots = 400 demand-ms
// per slot) saturates between 16 and 24 users at typical learned qualities.
const (
	// muSlotWork is one user's full-quality service demand per slot
	// (demand-ms) at unit base load.
	muSlotWork = 60.0
	// muLocalSlowdown is the device-to-edge service ratio: local execution
	// retires demand-ms at 1/3 the edge's unit rate.
	muLocalSlowdown = 3.0
	// muMinDemandFrac is the degraded offload's share of the full bid (the
	// quality-floor fetch the scheduler may grant instead).
	muMinDemandFrac = 0.4
	// muDegradeQuality scales perceived quality when served degraded.
	muDegradeQuality = 0.6
	// muLocalQuality scales perceived quality on local fallback (defer or
	// fault): the device renders the coarse LOD it already has.
	muLocalQuality = 0.8
	// muPayloadKB is the per-slot transfer payload at q=1 (poses up, frames
	// and mesh patches down).
	muPayloadKB = 30.0
	// muMeshWork is the decimation service demand per unit of quality
	// change when a user re-targets its LOD at a window boundary.
	muMeshWork = 25.0
)

// MultiUserCell is one (user count, mode) outcome.
type MultiUserCell struct {
	Users int    `json:"users"`
	Mode  string `json:"mode"`
	// AggB is the fleet-mean reward per slot (the aggregate B_t series).
	AggB []float64 `json:"agg_b"`
	// PerUserMean is each user's mean per-slot reward, index = user.
	PerUserMean []float64 `json:"per_user_mean"`
	// PerUserSat is each user's satisfaction: realized reward over its own
	// uncontended ideal (sole tenant, fault-free, full quality), in (0, 1].
	// Normalizing per user follows Jain's original formulation — fairness
	// measures how evenly contention is borne, not how users' intrinsic
	// quality choices differ.
	PerUserSat []float64 `json:"per_user_sat"`
	// MeanAgg is the time-mean of AggB; Fairness is the Jain index over
	// PerUserSat.
	MeanAgg  float64 `json:"mean_agg"`
	Fairness float64 `json:"fairness"`
	// Verdict counts: independent mode admits everything, so its degrade /
	// defer / forced counts stay zero and drops count fault fallbacks only.
	Admits   int `json:"admits"`
	Degrades int `json:"degrades"`
	Defers   int `json:"defers"`
	Forced   int `json:"forced"`
	Drops    int `json:"drops"`
}

// MultiUserResult is a full contention study.
type MultiUserResult struct {
	UserCounts []int   `json:"user_counts"`
	Slots      int     `json:"slots"`
	SlotMS     float64 `json:"slot_ms"`
	Seed       uint64  `json:"seed"`
	Policy     string  `json:"policy"`
	// Cells appear user-count-major, independent before scheduler — a
	// deterministic order for any Jobs value.
	Cells []MultiUserCell `json:"cells"`
}

var _ fmt.Stringer = (*MultiUserResult)(nil)

// JainIndex returns Jain's fairness index (Σx)² / (n·Σx²) over the values:
// 1 when all users fare equally, 1/n when one user takes everything. Values
// must be non-negative; an empty or all-zero vector scores zero.
func JainIndex(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// RunMultiUser sweeps fleet sizes across both admission modes on the shared
// edge. Both modes of each user count share one population seed (identical
// users, walks, optimizers, and fault draws), so the comparison isolates the
// scheduler. All randomness flows from cfg.Seed through sim.RNG; the result
// is byte-identical for every Jobs value.
func RunMultiUser(cfg MultiUserConfig) (*MultiUserResult, error) {
	cfg = cfg.withDefaults()
	for _, n := range cfg.UserCounts {
		if n < 1 {
			return nil, fmt.Errorf("experiments: multiuser: user count %d must be >= 1", n)
		}
	}
	if !policies.Valid(cfg.Policy) {
		return nil, fmt.Errorf("experiments: multiuser: unknown policy %q", cfg.Policy)
	}
	// One population seed per user count, pre-drawn in sweep order so cell
	// scheduling never shifts them; both modes reuse the same seed.
	popSeeds := make([]uint64, len(cfg.UserCounts))
	root := sim.NewRNG(cfg.Seed)
	for i := range popSeeds {
		popSeeds[i] = root.Uint64()
	}
	modes := []string{ModeIndependent, ModeScheduler}
	cells := make([]MultiUserCell, len(cfg.UserCounts)*len(modes))
	errs := make([]error, len(cells))
	forEach(cfg.Jobs, len(cells), func(i int) {
		nIdx, mIdx := i/len(modes), i%len(modes)
		cell, err := runMultiUserCell(cfg, cfg.UserCounts[nIdx], modes[mIdx], popSeeds[nIdx])
		if err != nil {
			errs[i] = fmt.Errorf("experiments: multiuser %d users/%s: %w",
				cfg.UserCounts[nIdx], modes[mIdx], err)
			return
		}
		cells[i] = cell
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	return &MultiUserResult{
		UserCounts: cfg.UserCounts,
		Slots:      cfg.Slots,
		SlotMS:     cfg.SlotMS,
		Seed:       cfg.Seed,
		Policy:     displayPolicy(cfg.Policy),
		Cells:      cells,
	}, nil
}

// muUser is one simulated session's state.
type muUser struct {
	mob  *loadgen.Mobility
	frng *sim.RNG
	pol  bo.Policy
	// base scales the user's workload; point is the active (allocation,
	// quality) configuration, prevQ the previous window's quality (drives
	// decimation work on change).
	base  float64
	point []float64
	prevQ float64
	// windowCost accumulates the activation window's mean cost.
	windowCost  float64
	windowSlots int
	rewards     []float64
	// ideals holds the same slots' uncontended-ideal rewards: full quality,
	// sole tenant of the edge, no faults. The satisfaction ratio
	// Σrewards/Σideals isolates what contention (and the admission policy)
	// cost this user.
	ideals []float64
}

// q returns the user's requested quality ratio (the point's last coord).
func (u *muUser) q() float64 { return u.point[len(u.point)-1] }

// localShare returns the fraction of the user's AI work pinned to the
// device (the point's first allocation coordinate).
func (u *muUser) localShare() float64 { return u.point[0] }

// runMultiUserCell simulates one fleet for one mode. Everything advances in
// virtual time: per slot each user bids an offload demand shaped by its
// optimizer's current point and its wireless link, the mode decides what the
// shared edge sees, the edge drains under processor sharing, and per-slot
// rewards (quality benefit minus slot-normalized latency) feed each user's
// next activation window.
func runMultiUserCell(cfg MultiUserConfig, users int, mode string, popSeed uint64) (MultiUserCell, error) {
	cell := MultiUserCell{Users: users, Mode: mode}
	edge, err := contend.New(cfg.Edge)
	if err != nil {
		return cell, err
	}
	var sched *contend.Scheduler
	if mode == ModeScheduler {
		if sched, err = contend.NewScheduler(cfg.Sched); err != nil {
			return cell, err
		}
	}

	// Build the fleet. Per-user seeds are drawn in index order from the
	// population seed, so user i is the same person in both modes.
	prng := sim.NewRNG(popSeed)
	boCfg := bo.DefaultConfig()
	boCfg.InitSamples = 3
	boCfg.Candidates = 32
	boCfg.RefineSteps = 5
	dom := bo.Domain{N: 2, RMin: 0.3}
	fleet := make([]*muUser, users)
	for i := range fleet {
		mobSeed := prng.Uint64()
		polSeed := prng.Uint64()
		faultSeed := prng.Uint64()
		baseDraw := prng.Float64()
		pol, err := policies.New(cfg.Policy, dom, boCfg, sim.NewRNG(polSeed))
		if err != nil {
			return cell, err
		}
		fleet[i] = &muUser{
			mob:  loadgen.NewMobility(mobSeed, loadgen.MobilityConfig{}, float64(cfg.Slots)*cfg.SlotMS),
			frng: sim.NewRNG(faultSeed),
			pol:  pol,
			base: 0.6 + 1.2*baseDraw,
		}
	}

	cell.AggB = make([]float64, cfg.Slots)
	type bid struct {
		edgeWant float64 // full-quality offload demand (demand-ms)
		minWant  float64 // quality-floor offload demand
		localMS  float64 // device-side compute latency this slot
		transfer float64 // wireless transfer time (ms)
		qEff     float64 // perceived quality before admission verdicts
		decim    float64 // decimation demand on LOD re-target
		faulted  bool
	}
	bids := make([]bid, users)
	decided := make([]contend.Decision, users)
	jobs := make([]*contend.Job, users)
	decimJobs := make([]*contend.Job, users)

	for slot := 0; slot < cfg.Slots; slot++ {
		t := float64(slot) * cfg.SlotMS
		// Activation boundaries: observe the finished window, get the next
		// suggestion. Window 0 only suggests.
		if slot%cfg.WindowSlots == 0 {
			for _, u := range fleet {
				if u.point != nil {
					if err := u.pol.Observe(u.point, u.windowCost/float64(u.windowSlots)); err != nil {
						return cell, err
					}
					u.prevQ = u.q()
				}
				p, err := u.pol.Next()
				if err != nil {
					return cell, err
				}
				u.point = p
				u.windowCost, u.windowSlots = 0, 0
			}
		}

		// Phase 1: every user forms its slot bid. Fault draws happen here,
		// unconditionally and in user order, so both modes consume identical
		// randomness.
		for i, u := range fleet {
			link := loadgen.LinkAt(u.mob.DistanceAt(t))
			q := u.q()
			work := u.base * muSlotWork * q
			b := bid{
				edgeWant: (1 - u.localShare()) * work,
				localMS:  u.localShare() * work * muLocalSlowdown,
				transfer: link.TransferMS(muPayloadKB * q),
				qEff:     q,
			}
			b.minWant = muMinDemandFrac * b.edgeWant
			if slot%cfg.WindowSlots == 0 && u.prevQ != 0 {
				if dq := math.Abs(q - u.prevQ); dq > 0 {
					b.decim = muMeshWork * dq
				}
			}
			dropped := u.frng.Float64() < cfg.Faults.DropRate
			rejected := u.frng.Float64() < cfg.Faults.ServerErrorRate
			b.faulted = dropped || rejected
			bids[i] = b
		}

		// Phase 2: the mode decides what reaches the shared edge. A faulted
		// user never reaches it (its uplink dropped or the edge rejected it),
		// in either mode.
		if sched != nil {
			reqs := make([]contend.Request, 0, users)
			reqIdx := make([]int, 0, users)
			for i := range bids {
				if bids[i].faulted {
					continue
				}
				reqs = append(reqs, contend.Request{
					User:      i,
					Demand:    bids[i].edgeWant,
					MinDemand: bids[i].minWant,
				})
				reqIdx = append(reqIdx, i)
			}
			for i := range decided {
				decided[i] = contend.Decision{}
			}
			for k, d := range sched.Plan(reqs) {
				decided[reqIdx[k]] = d
			}
		}

		// Phase 3: submissions, in user order (the edge's deterministic
		// tie-break for equal arrival ticks).
		arrive := math.Max(t, edge.Now())
		for i := range bids {
			jobs[i], decimJobs[i] = nil, nil
			b := &bids[i]
			if b.faulted {
				cell.Drops++
				continue
			}
			grant := b.edgeWant
			if sched != nil {
				switch decided[i].Action {
				case contend.ActionAdmit:
					cell.Admits++
				case contend.ActionDegrade:
					grant = decided[i].Grant
					b.qEff *= muDegradeQuality
					cell.Degrades++
				default:
					cell.Defers++
					continue
				}
			} else {
				cell.Admits++
			}
			if jobs[i], err = edge.Submit(contend.Inference, i, arrive, grant); err != nil {
				return cell, err
			}
			if b.decim > 0 {
				if decimJobs[i], err = edge.Submit(contend.Decimation, i, arrive, b.decim); err != nil {
					return cell, err
				}
			}
		}
		edge.Drain()

		// Phase 4: realized latencies and rewards. Device and edge work run
		// concurrently, so an admitted slot's latency is the slower of the
		// two paths; latency is measured from the slot boundary, so backlog
		// carried past a slot's end shows up as queueing delay. The per-slot
		// reward is a bounded QoE ratio, qEff / (1 + latency/SlotMS):
		// positive by construction (so fairness over it is never degenerate)
		// and decreasing in both quality loss and lateness.
		for i, u := range fleet {
			b := &bids[i]
			var lat float64
			switch {
			case b.faulted, sched != nil && decided[i].Action != contend.ActionAdmit && decided[i].Action != contend.ActionDegrade:
				// Local fallback: the device absorbs the whole workload
				// serially and renders the coarse LOD it already has.
				lat = b.localMS + (b.edgeWant+b.decim)*muLocalSlowdown
				b.qEff = u.q() * muLocalQuality
			default:
				edgeLat := b.transfer + jobs[i].Finish - t
				if decimJobs[i] != nil && decimJobs[i].Finish-t > edgeLat {
					edgeLat = decimJobs[i].Finish - t
				}
				lat = math.Max(b.localMS, edgeLat)
			}
			reward := b.qEff / (1 + lat/cfg.SlotMS)
			// The uncontended ideal: same configuration, but sole tenant of
			// a fault-free edge (unit service rate, no queueing).
			idealLat := math.Max(b.localMS, b.transfer+b.edgeWant+b.decim)
			u.ideals = append(u.ideals, u.q()/(1+idealLat/cfg.SlotMS))
			u.rewards = append(u.rewards, reward)
			u.windowCost -= reward
			u.windowSlots++
			cell.AggB[slot] += reward
		}
		cell.AggB[slot] /= float64(users)
		cell.MeanAgg += cell.AggB[slot]
	}
	cell.MeanAgg /= float64(cfg.Slots)
	if sched != nil {
		cell.Forced = sched.ForcedAdmits()
	}

	cell.PerUserMean = make([]float64, users)
	cell.PerUserSat = make([]float64, users)
	for i, u := range fleet {
		var sum, ideal float64
		for s, r := range u.rewards {
			sum += r
			ideal += u.ideals[s]
		}
		cell.PerUserMean[i] = sum / float64(len(u.rewards))
		cell.PerUserSat[i] = sum / ideal
	}
	cell.Fairness = JainIndex(cell.PerUserSat)
	return cell, nil
}

// Cell returns the (users, mode) cell.
func (r *MultiUserResult) Cell(users int, mode string) (MultiUserCell, error) {
	for _, c := range r.Cells {
		if c.Users == users && c.Mode == mode {
			return c, nil
		}
	}
	return MultiUserCell{}, fmt.Errorf("experiments: multiuser: no cell for %d users/%s", users, mode)
}

// String renders the sweep: one row per user count with both modes'
// aggregate reward and fairness side by side.
func (r *MultiUserResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-user shared edge: %v users × {%s, %s}, %d slots × %.0f ms, policy %s, seed %d\n",
		r.UserCounts, ModeIndependent, ModeScheduler, r.Slots, r.SlotMS, r.Policy, r.Seed)
	rows := [][]string{{"Users", "Indep B", "Sched B", "Indep Jain", "Sched Jain", "Degrades", "Defers", "Drops"}}
	for _, n := range r.UserCounts {
		ind, err1 := r.Cell(n, ModeIndependent)
		sch, err2 := r.Cell(n, ModeScheduler)
		if err1 != nil || err2 != nil {
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.3f", ind.MeanAgg),
			fmt.Sprintf("%.3f", sch.MeanAgg),
			fmt.Sprintf("%.3f", ind.Fairness),
			fmt.Sprintf("%.3f", sch.Fairness),
			fmt.Sprintf("%d", sch.Degrades),
			fmt.Sprintf("%d", sch.Defers),
			fmt.Sprintf("%d", ind.Drops+sch.Drops),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}

// multiUserTrajectoryFormat versions the WriteTrajectories dump; bump it on
// any layout change so stale goldens fail loudly instead of mis-diffing.
const multiUserTrajectoryFormat = "multiuser-trajectories-v1"

// WriteTrajectories dumps every cell's aggregate B_t series, per-user mean
// rewards, and fairness index as IEEE-754 hex bits — the same byte-exact
// regression format as the arena and loadgen goldens.
func (r *MultiUserResult) WriteTrajectories(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s seed=%016x slots=%d slot_ms=%016x policy=%s\n",
		multiUserTrajectoryFormat, r.Seed, r.Slots, math.Float64bits(r.SlotMS), r.Policy)
	for i := range r.Cells {
		c := &r.Cells[i]
		fmt.Fprintf(bw, "cell users=%d mode=%s fairness=%016x mean_agg=%016x admits=%d degrades=%d defers=%d drops=%d\n",
			c.Users, c.Mode, math.Float64bits(c.Fairness), math.Float64bits(c.MeanAgg),
			c.Admits, c.Degrades, c.Defers, c.Drops)
		for _, v := range c.AggB {
			fmt.Fprintf(bw, "%016x\n", math.Float64bits(v))
		}
		for u, v := range c.PerUserMean {
			fmt.Fprintf(bw, "user %016x %016x\n", math.Float64bits(v), math.Float64bits(c.PerUserSat[u]))
		}
	}
	return bw.Flush()
}

// CSV renders the sweep's summary metrics as replottable rows.
func (r *MultiUserResult) CSV() string {
	var b strings.Builder
	b.WriteString("users,mode,mean_agg_b,fairness,admits,degrades,defers,drops\n")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%d,%s,%.6g,%.6g,%d,%d,%d,%d\n",
			c.Users, c.Mode, c.MeanAgg, c.Fairness, c.Admits, c.Degrades, c.Defers, c.Drops)
	}
	return b.String()
}

// BenchRecords flattens the sweep into benchjson-compatible records, one per
// cell: MultiUser/<n>/<mode> with aggregate reward, fairness, and verdict
// counts. Record order matches Cells.
func (r *MultiUserResult) BenchRecords() []BenchRecord {
	var out []BenchRecord
	for _, c := range r.Cells {
		out = append(out, BenchRecord{
			Name:       fmt.Sprintf("MultiUser/%d/%s", c.Users, c.Mode),
			Iterations: int64(r.Slots),
			Extra: map[string]float64{
				"mean_agg_b": c.MeanAgg,
				"fairness":   c.Fairness,
				"degrades":   float64(c.Degrades),
				"defers":     float64(c.Defers),
				"drops":      float64(c.Drops),
			},
		})
	}
	return out
}

// RunMultiUserStudy is the Runner entry point: the default sweep at the
// given seed.
func RunMultiUserStudy(seed uint64) (*MultiUserResult, error) {
	return RunMultiUserStudyJobs(seed, 1)
}

// RunMultiUserStudyJobs is RunMultiUserStudy under a parallelism bound; the
// result is byte-identical for every jobs value.
func RunMultiUserStudyJobs(seed uint64, jobs int) (*MultiUserResult, error) {
	return RunMultiUser(MultiUserConfig{Seed: seed, Jobs: jobs})
}
