package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/baselines"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Figure6Result is the in-depth analysis of one SC1-CF1 activation:
// exploration distances (6a), best-cost trajectory (6b), per-iteration
// quality and latency (6c), and the per-model latency comparison against
// SMQ at the same triangle ratio (6d).
type Figure6Result struct {
	// Distances between consecutive BO inputs (Fig. 6a).
	Distances []float64
	// BestCost through iterations (Fig. 6b).
	BestCost []float64
	// Quality and Epsilon per iteration (Fig. 6c).
	Quality []float64
	Epsilon []float64
	// BestIndex marks the winning iteration (the red cross of Fig. 6c).
	BestIndex int
	// HBOLatency and SMQLatency map model/task to mean latency in ms at the
	// same triangle ratio (Fig. 6d).
	HBOLatency map[string]float64
	SMQLatency map[string]float64
	// Ratio is HBO's chosen triangle ratio.
	Ratio float64
}

var _ fmt.Stringer = (*Figure6Result)(nil)

// RunFigure6 performs one HBO activation on SC1-CF1 and the SMQ comparison
// at HBO's triangle ratio.
func RunFigure6(seed uint64) (*Figure6Result, error) {
	spec := scenario.SC1CF1()
	built, err := spec.Build(seed)
	if err != nil {
		return nil, err
	}
	act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	m, err := built.Runtime.Measure(5000)
	if err != nil {
		return nil, err
	}
	res := &Figure6Result{
		Distances:  act.InputDistances(),
		BestCost:   act.BestCostTrajectory(),
		BestIndex:  act.BestIndex,
		HBOLatency: m.PerTaskLatency,
		Ratio:      act.Ratio,
	}
	for _, it := range act.Iterations {
		res.Quality = append(res.Quality, it.Quality)
		res.Epsilon = append(res.Epsilon, it.Epsilon)
	}
	smqBuilt, err := spec.Build(seed)
	if err != nil {
		return nil, err
	}
	smq, err := baselines.SMQ{HBORatio: act.Ratio}.Run(smqBuilt.Runtime)
	if err != nil {
		return nil, err
	}
	res.SMQLatency = smq.PerTaskLatency
	return res, nil
}

// String renders the four panels as aligned numeric rows.
func (r *Figure6Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 6a: Euclidean distance between consecutive BO inputs\n ")
	for _, d := range r.Distances {
		fmt.Fprintf(&b, " %5.2f", d)
	}
	b.WriteString("\n\nFigure 6b: best cost through iterations\n ")
	for _, v := range r.BestCost {
		fmt.Fprintf(&b, " %6.2f", v)
	}
	fmt.Fprintf(&b, "\n\nFigure 6c: quality and normalized latency per iteration (best = iteration %d)\n", r.BestIndex+1)
	rows := [][]string{{"Iteration", "Avg Quality", "Avg Latency (eps)"}}
	for i := range r.Quality {
		marker := ""
		if i == r.BestIndex {
			marker = " *"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%s", i+1, marker),
			fmt.Sprintf("%.3f", r.Quality[i]),
			fmt.Sprintf("%.3f", r.Epsilon[i]),
		})
	}
	b.WriteString(table(rows))

	fmt.Fprintf(&b, "\nFigure 6d: per-model latency (ms), HBO vs SMQ at ratio %.2f\n", r.Ratio)
	rows = [][]string{{"Task", "HBO", "SMQ", "Improvement"}}
	for _, id := range sortedKeys(r.HBOLatency) {
		hbo := r.HBOLatency[id]
		smq := r.SMQLatency[id]
		imp := "-"
		if hbo > 0 {
			imp = fmt.Sprintf("%+.0f%%", (smq/hbo-1)*100)
		}
		rows = append(rows, []string{id, fmt.Sprintf("%.1f", hbo), fmt.Sprintf("%.1f", smq), imp})
	}
	b.WriteString(table(rows))
	return b.String()
}

// CSV renders the per-iteration panels (6a-6c) as replottable rows.
func (r *Figure6Result) CSV() string {
	var b strings.Builder
	b.WriteString("iteration,series,value\n")
	for i, d := range r.Distances {
		fmt.Fprintf(&b, "%d,input-distance,%.6g\n", i+2, d)
	}
	for i := range r.BestCost {
		fmt.Fprintf(&b, "%d,best-cost,%.6g\n", i+1, r.BestCost[i])
		fmt.Fprintf(&b, "%d,quality,%.6g\n", i+1, r.Quality[i])
		fmt.Fprintf(&b, "%d,epsilon,%.6g\n", i+1, r.Epsilon[i])
	}
	return b.String()
}
