package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// OracleConfig is one exhaustively evaluated configuration.
type OracleConfig struct {
	Assignment alloc.Assignment
	Ratio      float64
	Cost       float64
	Quality    float64
	Epsilon    float64
}

// OptimalityResult quantifies the paper's "near-optimal" claim on a
// tractable instance: SC2-CF2 has M = 3 tasks over N = 3 resources, so the
// joint space (27 allocations × a ratio grid) can be brute-forced and HBO's
// converged cost compared against the true optimum.
type OptimalityResult struct {
	// Oracle is the best configuration found by exhaustive search.
	Oracle OracleConfig
	// Evaluated is the number of configurations the oracle measured.
	Evaluated int
	// HBO is the activation's converged cost on an identical twin system.
	HBO OracleConfig
	// GapPercent is (HBO reward − oracle reward) relative to the oracle's
	// reward magnitude; zero means HBO matched the optimum.
	GapPercent float64
	// HBOEvaluations is the number of configurations HBO measured (its
	// sample efficiency against Evaluated).
	HBOEvaluations int
}

var _ fmt.Stringer = (*OptimalityResult)(nil)

// ratioGrid is the oracle's triangle-ratio discretization.
var ratioGrid = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}

// RunOptimalityStudy brute-forces SC2-CF2 and runs HBO on an identical twin.
func RunOptimalityStudy(seed uint64) (*OptimalityResult, error) {
	return RunOptimalityStudyJobs(seed, 1)
}

// RunOptimalityStudyJobs is RunOptimalityStudy with the exhaustive sweep
// spread over up to jobs workers. The supported configurations are
// enumerated sequentially in the serial order, each is measured on its own
// freshly built twin, and the minimum is taken in enumeration order with
// strict improvement — so the oracle (and the report) is byte-identical
// for every jobs value.
func RunOptimalityStudyJobs(seed uint64, jobs int) (*OptimalityResult, error) {
	spec := scenario.SC2CF2()
	cfg := core.DefaultConfig()

	best, evaluated, err := oracleSearch(spec, seed, jobs)
	if err != nil {
		return nil, err
	}
	res := &OptimalityResult{Oracle: best, Evaluated: evaluated}

	// HBO on an identical twin.
	twin, err := spec.Build(seed)
	if err != nil {
		return nil, err
	}
	act, err := core.RunActivation(twin.Runtime, cfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	res.HBO = OracleConfig{
		Assignment: act.Assignment,
		Ratio:      act.Ratio,
		Cost:       act.Cost,
		Quality:    act.Quality,
		Epsilon:    act.Epsilon,
	}
	res.HBOEvaluations = len(act.Iterations)
	oracleReward := -res.Oracle.Cost
	hboReward := -res.HBO.Cost
	scale := math.Abs(oracleReward)
	if scale < 0.1 {
		scale = 0.1
	}
	res.GapPercent = (oracleReward - hboReward) / scale * 100
	return res, nil
}

// oracleSearch exhaustively measures every supported (allocation, grid
// ratio) configuration of spec on a fresh twin each and returns the best one
// plus the number evaluated. The supported configurations are enumerated
// sequentially in the serial order and the minimum is taken in enumeration
// order with strict improvement, so the result is byte-identical for every
// jobs value. It backs both the optimality study and the arena's
// oracle-regret baseline.
func oracleSearch(spec scenario.Spec, seed uint64, jobs int) (OracleConfig, int, error) {
	cfg := core.DefaultConfig()

	// Enumerate every per-task allocation (skipping unsupported ones) at
	// every grid ratio, each measured on a fresh twin so history does not
	// leak between configurations.
	built, err := spec.Build(seed)
	if err != nil {
		return OracleConfig{}, 0, err
	}
	ids := built.Runtime.TaskIDs()
	m := len(ids)
	dev := built.System.Device()

	total := 1
	for i := 0; i < m; i++ {
		total *= tasks.NumResources
	}
	type oracleJob struct {
		assignment alloc.Assignment
		ratio      float64
	}
	var todo []oracleJob
	for enc := 0; enc < total; enc++ {
		assignment := make(alloc.Assignment, m)
		code := enc
		supported := true
		for _, id := range ids {
			r := tasks.Resource(code % tasks.NumResources)
			code /= tasks.NumResources
			mp, err := dev.Model(modelOf(id))
			if err != nil {
				return OracleConfig{}, 0, err
			}
			if !mp.Supported(r) {
				supported = false
				break
			}
			assignment[id] = r
		}
		if !supported {
			continue
		}
		for _, x := range ratioGrid {
			todo = append(todo, oracleJob{assignment, x})
		}
	}
	measured := make([]OracleConfig, len(todo))
	errs := make([]error, len(todo))
	forEach(jobs, len(todo), func(i int) {
		twin, err := spec.Build(seed)
		if err != nil {
			errs[i] = err
			return
		}
		if err := twin.Runtime.ApplyAllocation(todo[i].assignment); err != nil {
			errs[i] = err
			return
		}
		if err := alloc.DistributeTriangles(twin.Scene.Objects(), todo[i].ratio); err != nil {
			errs[i] = err
			return
		}
		twin.Runtime.SyncRenderLoad()
		twin.System.RunFor(500)
		meas, err := twin.Runtime.Measure(cfg.PeriodMS)
		if err != nil {
			errs[i] = err
			return
		}
		measured[i] = OracleConfig{
			Assignment: todo[i].assignment,
			Ratio:      todo[i].ratio,
			Cost:       meas.Cost(cfg.Weight),
			Quality:    meas.Quality,
			Epsilon:    meas.Epsilon,
		}
	})
	if err := firstError(errs); err != nil {
		return OracleConfig{}, 0, err
	}
	best := OracleConfig{Cost: math.Inf(1)}
	for i := range measured {
		if measured[i].Cost < best.Cost {
			best = measured[i]
			best.Assignment = cloneAssignment(measured[i].Assignment)
		}
	}
	return best, len(todo), nil
}

func modelOf(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '_' {
			return id[:i]
		}
	}
	return id
}

func cloneAssignment(a alloc.Assignment) alloc.Assignment {
	out := make(alloc.Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// String renders the oracle comparison.
func (r *OptimalityResult) String() string {
	var b strings.Builder
	b.WriteString("Optimality study: exhaustive oracle vs HBO on SC2-CF2\n")
	fmt.Fprintf(&b, "oracle searched %d configurations; HBO measured %d\n\n", r.Evaluated, r.HBOEvaluations)
	rows := [][]string{{"", "Ratio", "Cost", "Quality", "Epsilon"}}
	rows = append(rows, []string{"Oracle", fmt.Sprintf("%.2f", r.Oracle.Ratio),
		fmt.Sprintf("%.3f", r.Oracle.Cost), fmt.Sprintf("%.3f", r.Oracle.Quality), fmt.Sprintf("%.3f", r.Oracle.Epsilon)})
	rows = append(rows, []string{"HBO", fmt.Sprintf("%.2f", r.HBO.Ratio),
		fmt.Sprintf("%.3f", r.HBO.Cost), fmt.Sprintf("%.3f", r.HBO.Quality), fmt.Sprintf("%.3f", r.HBO.Epsilon)})
	b.WriteString(table(rows))
	fmt.Fprintf(&b, "\nreward gap to optimum: %.1f%% (lower is better)\n", r.GapPercent)
	for _, id := range sortedKeys(r.Oracle.Assignment) {
		fmt.Fprintf(&b, "  %-22s oracle %-6s hbo %-6s\n", id, r.Oracle.Assignment[id], r.HBO.Assignment[id])
	}
	return b.String()
}
