package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/render"
)

// FitRow is one object's training-fidelity record.
type FitRow struct {
	Object string
	// Severity and Gamma are the ground-truth law parameters derived from
	// the object's real geometry.
	Severity float64
	Gamma    float64
	// RMSE is the root-mean-square error between the fitted Eq. 1 model and
	// the ground truth over the operating grid.
	RMSE float64
	// WorstAbs is the largest absolute model error on the grid.
	WorstAbs float64
}

// QualityFitResult validates the offline training pipeline the paper
// inherits from eAR: for every Table II asset, how closely does the fitted
// quadratic of Eq. 1 track the geometry-derived ground-truth degradation?
// The residual here is a noise floor every HBO decision inherits.
type QualityFitResult struct {
	Rows []FitRow
}

var _ fmt.Stringer = (*QualityFitResult)(nil)

// RunQualityFit trains the full Table II catalog and measures fit fidelity
// on a ratio × distance grid.
func RunQualityFit(seed uint64) (*QualityFitResult, error) {
	catalog := append(render.SC1(), render.SC2()...)
	lib, err := render.LibraryFor(catalog, seed)
	if err != nil {
		return nil, err
	}
	res := &QualityFitResult{}
	ratios := []float64{0.15, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0}
	dists := []float64{0.7, 1, 1.5, 2.5, 4}
	for _, c := range catalog {
		truth, err := lib.Truth(c.Spec.Name)
		if err != nil {
			return nil, err
		}
		params, err := lib.Params(c.Spec.Name)
		if err != nil {
			return nil, err
		}
		var sumSq, worst float64
		n := 0
		for _, r := range ratios {
			for _, d := range dists {
				diff := math.Abs(params.Error(r, d) - truth.Error(r, d))
				sumSq += diff * diff
				if diff > worst {
					worst = diff
				}
				n++
			}
		}
		res.Rows = append(res.Rows, FitRow{
			Object:   c.Spec.Name,
			Severity: truth.Severity,
			Gamma:    truth.Gamma,
			RMSE:     math.Sqrt(sumSq / float64(n)),
			WorstAbs: worst,
		})
	}
	return res, nil
}

// String renders the per-object fit table.
func (r *QualityFitResult) String() string {
	var b strings.Builder
	b.WriteString("Quality-model training fidelity (Eq. 1 fit vs geometry-derived truth)\n")
	rows := [][]string{{"Object", "Severity", "Gamma", "RMSE", "Worst |err|"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Object,
			fmt.Sprintf("%.2f", row.Severity),
			fmt.Sprintf("%.2f", row.Gamma),
			fmt.Sprintf("%.3f", row.RMSE),
			fmt.Sprintf("%.3f", row.WorstAbs),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
