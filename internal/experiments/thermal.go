package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
	"github.com/mar-hbo/hbo/internal/trace"
)

// ThermalSample is one point of the thermal timeline.
type ThermalSample struct {
	TimeS        float64
	TemperatureC float64
	Epsilon      float64
}

// ThermalTrace is one configuration's five-minute thermal run.
type ThermalTrace struct {
	Name    string
	Samples []ThermalSample
}

// Final returns the last sample.
func (t ThermalTrace) Final() ThermalSample {
	if len(t.Samples) == 0 {
		return ThermalSample{}
	}
	return t.Samples[len(t.Samples)-1]
}

// ThermalStudyResult is the opt-in thermal extension: with die temperature
// and throttling modeled, configurations that run the SoC hot degrade over
// minutes — a second-order argument for HBO's load shedding that the
// paper's minutes-long runs flirt with but do not isolate.
type ThermalStudyResult struct {
	Traces []ThermalTrace
}

var _ fmt.Stringer = (*ThermalStudyResult)(nil)

// RunThermalStudy runs HBO's Table IV configuration and AllN for five
// simulated minutes each with the thermal model enabled, sampling every ten
// seconds.
func RunThermalStudy(seed uint64) (*ThermalStudyResult, error) {
	configs := []struct {
		name  string
		alloc func(rt *core.Runtime) alloc.Assignment
		ratio float64
	}{
		{"HBO-config", func(rt *core.Runtime) alloc.Assignment {
			return alloc.Assignment{
				"mobilenetDetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI, "mobilenetv1": tasks.NNAPI,
				"mnist": tasks.CPU, "model-metadata": tasks.CPU, "model-metadata_2": tasks.CPU,
			}
		}, 0.72},
		{"AllN", func(rt *core.Runtime) alloc.Assignment {
			a := make(alloc.Assignment)
			for _, task := range rt.Taskset.Tasks {
				a[task.ID()] = tasks.NNAPI
			}
			return a
		}, 1.0},
	}
	res := &ThermalStudyResult{}
	for _, cfg := range configs {
		built, err := scenario.SC1CF1().Build(seed)
		if err != nil {
			return nil, err
		}
		built.System.SetThermal(soc.DefaultThermal())
		rt := built.Runtime
		if err := rt.ApplyAllocation(cfg.alloc(rt)); err != nil {
			return nil, err
		}
		if err := alloc.DistributeTriangles(rt.Scene.Objects(), cfg.ratio); err != nil {
			return nil, err
		}
		rt.SyncRenderLoad()
		tr := ThermalTrace{Name: cfg.name}
		for step := 0; step < 30; step++ { // 30 × 10 s = 5 minutes
			m, err := rt.Measure(10000)
			if err != nil {
				return nil, err
			}
			tr.Samples = append(tr.Samples, ThermalSample{
				TimeS:        rt.Sys.Now() / 1000,
				TemperatureC: rt.Sys.Temperature(),
				Epsilon:      m.Epsilon,
			})
		}
		res.Traces = append(res.Traces, tr)
	}
	return res, nil
}

// Trace finds a configuration's trace.
func (r *ThermalStudyResult) Trace(name string) (ThermalTrace, error) {
	for _, t := range r.Traces {
		if t.Name == name {
			return t, nil
		}
	}
	return ThermalTrace{}, fmt.Errorf("experiments: no thermal trace %s", name)
}

// String renders temperature timelines and the end state.
func (r *ThermalStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Thermal extension: 5 minutes of sustained SC1-CF1 load (thermal model on)\n\n")
	for _, tr := range r.Traces {
		var temp trace.Series
		temp.Name = tr.Name + " temperature (C)"
		for _, s := range tr.Samples {
			_ = temp.Add(s.TimeS*1000, s.TemperatureC)
		}
		b.WriteString(trace.ASCIIChart(&temp, 60, 6))
		f := tr.Final()
		fmt.Fprintf(&b, "  final: %.1f C, eps %.2f\n\n", f.TemperatureC, f.Epsilon)
	}
	return b.String()
}
