package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
	"github.com/mar-hbo/hbo/internal/trace"
)

// Mark annotates a timeline event, matching the dots ("C1", "N5") and red
// crosses ("O") at the bottom of the paper's Figure 2.
type Mark struct {
	TimeS float64
	Label string
}

// Figure2Result is one motivation-study timeline: per-task response time
// sampled every second, with allocation-change and object-addition marks.
type Figure2Result struct {
	Title    string
	Recorder *trace.Recorder
	Marks    []Mark
}

var _ fmt.Stringer = (*Figure2Result)(nil)

// String renders each task's latency timeline as an ASCII chart plus the
// mark list.
func (r *Figure2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.Title)
	b.WriteString("marks: ")
	for i, m := range r.Marks {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s@%.0fs", m.Label, m.TimeS)
	}
	b.WriteString("\n\n")
	for _, name := range r.Recorder.Names() {
		b.WriteString(trace.ASCIIChart(r.Recorder.Series(name), 72, 8))
		b.WriteByte('\n')
	}
	return b.String()
}

// Latency returns a task's mean latency over the given time window
// (seconds), for shape assertions in tests.
func (r *Figure2Result) Latency(task string, fromS, toS float64) float64 {
	s := r.Recorder.Series(task)
	if s == nil {
		return 0
	}
	pts := s.Window(fromS*1000, toS*1000)
	if len(pts) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range pts {
		sum += p.Value
	}
	return sum / float64(len(pts))
}

// fig2Script drives a scripted motivation experiment on the Galaxy S22.
type fig2Script struct {
	title  string
	endS   float64
	events []fig2Event
}

type fig2Event struct {
	atS   float64
	label string
	apply func(st *fig2State) error
}

// fig2State is the mutable world a script manipulates.
type fig2State struct {
	sys   *soc.System
	scene *render.Scene
	dev   *soc.DeviceProfile
}

// placeObjects adds the named catalog objects and refreshes the render load.
func (st *fig2State) placeObjects(distance float64, names ...string) error {
	for _, n := range names {
		instance := 1
		for {
			if _, err := st.scene.Place(n, instance, distance); err == nil {
				break
			}
			instance++
			if instance > 16 {
				return fmt.Errorf("experiments: cannot place %s", n)
			}
		}
	}
	st.sys.SetRenderUtil(st.dev.RenderUtilFor(st.scene.VisibleTriangles()))
	return nil
}

// run executes the script, sampling every task's mean latency per second.
func (s fig2Script) run(seed uint64) (*Figure2Result, error) {
	dev := soc.GalaxyS22()
	lib, err := render.LibraryFor(render.SC1(), seed)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine(seed)
	st := &fig2State{
		sys:   soc.NewSystem(eng, dev, soc.DefaultConfig()),
		scene: render.NewScene(lib),
		dev:   dev,
	}
	res := &Figure2Result{Title: s.title, Recorder: trace.NewRecorder()}
	next := 0
	for sec := 0.0; sec < s.endS; sec++ {
		for next < len(s.events) && s.events[next].atS <= sec {
			ev := s.events[next]
			if err := ev.apply(st); err != nil {
				return nil, fmt.Errorf("experiments: %s at %gs: %w", ev.label, ev.atS, err)
			}
			res.Marks = append(res.Marks, Mark{TimeS: ev.atS, Label: ev.label})
			next++
		}
		st.sys.ResetWindow()
		st.sys.RunFor(1000)
		// Record in sorted ID order: ranging the stats map directly would
		// let Go's random map iteration decide the first-seen series order,
		// making the rendered timeline (and CSV) drift run to run.
		stats := st.sys.WindowStats()
		for _, id := range sortedKeys(stats) {
			if err := res.Recorder.Record(id, st.sys.Now(), stats[id].MeanLatencyMS); err != nil {
				return nil, err
			}
		}
	}
	return res, nil
}

// addTask registers instance n of a model on a resource.
func addTask(model string, instance int, r tasks.Resource) func(*fig2State) error {
	return func(st *fig2State) error {
		return st.sys.AddTask(tasks.Task{Model: model, Instance: instance}, r)
	}
}

// moveTask reallocates a running task.
func moveTask(model string, instance int, r tasks.Resource) func(*fig2State) error {
	return func(st *fig2State) error {
		return st.sys.SetAllocation(tasks.Task{Model: model, Instance: instance}.ID(), r)
	}
}

// RunFigure2a reproduces Fig. 2a: deconv instances shuffled between CPU and
// GPU, then squeezed by virtual objects.
func RunFigure2a(seed uint64) (*Figure2Result, error) {
	s := fig2Script{
		title: "Figure 2a: deconv instances on CPU/GPU (Galaxy S22)",
		endS:  200,
		events: []fig2Event{
			{0, "C1", addTask(tasks.DeconvMUNet, 1, tasks.CPU)},
			{20, "G1", moveTask(tasks.DeconvMUNet, 1, tasks.GPU)},
			{40, "G2", addTask(tasks.DeconvMUNet, 2, tasks.GPU)},
			{60, "G3", addTask(tasks.DeconvMUNet, 3, tasks.GPU)},
			{80, "G4", addTask(tasks.DeconvMUNet, 4, tasks.GPU)},
			{110, "C4", moveTask(tasks.DeconvMUNet, 4, tasks.CPU)},
			{140, "O", func(st *fig2State) error {
				return st.placeObjects(1.5, "plane", "plane", "Cocacola", "Cocacola", "bike")
			}},
			{170, "C3", moveTask(tasks.DeconvMUNet, 3, tasks.CPU)},
		},
	}
	return s.run(seed)
}

// RunFigure2b reproduces Fig. 2b: five deeplabv3 instances on NNAPI/CPU
// with object additions around t=150s and t=180s, following the paper's
// narration step by step.
func RunFigure2b(seed uint64) (*Figure2Result, error) {
	s := fig2Script{
		title: "Figure 2b: five deeplabv3 instances on NNAPI/CPU (Galaxy S22)",
		endS:  260,
		events: []fig2Event{
			{0, "C1", addTask(tasks.DeepLabV3, 1, tasks.CPU)},
			{25, "N1", moveTask(tasks.DeepLabV3, 1, tasks.NNAPI)},
			{40, "N2", addTask(tasks.DeepLabV3, 2, tasks.NNAPI)},
			{55, "N3", addTask(tasks.DeepLabV3, 3, tasks.NNAPI)},
			{75, "N4", addTask(tasks.DeepLabV3, 4, tasks.NNAPI)},
			{95, "N5", addTask(tasks.DeepLabV3, 5, tasks.NNAPI)},
			{120, "C5", moveTask(tasks.DeepLabV3, 5, tasks.CPU)},
			{140, "N5", moveTask(tasks.DeepLabV3, 5, tasks.NNAPI)},
			{150, "O", func(st *fig2State) error { return st.placeObjects(1.5, "plane", "plane", "Cocacola", "Cocacola") }},
			{180, "O", func(st *fig2State) error { return st.placeObjects(1.5, "bike", "splane", "plane", "plane", "apricot") }},
			{200, "C5", moveTask(tasks.DeepLabV3, 5, tasks.CPU)},
			{220, "C4", moveTask(tasks.DeepLabV3, 4, tasks.CPU)},
		},
	}
	return s.run(seed)
}

// RunFigure2c reproduces Fig. 2c: a mixed taskset across GPU and NNAPI.
func RunFigure2c(seed uint64) (*Figure2Result, error) {
	s := fig2Script{
		title: "Figure 2c: mixed taskset on GPU/NNAPI (Galaxy S22)",
		endS:  180,
		events: []fig2Event{
			{0, "N1", addTask(tasks.MobileNetV1, 1, tasks.NNAPI)},
			{0, "N1", addTask(tasks.InceptionV1Q, 1, tasks.NNAPI)},
			{0, "G1", addTask(tasks.DeconvMUNet, 1, tasks.GPU)},
			{30, "N2", addTask(tasks.InceptionV1Q, 2, tasks.NNAPI)},
			{50, "G2", addTask(tasks.DeconvMUNet, 2, tasks.GPU)},
			{80, "N2", moveTask(tasks.DeconvMUNet, 2, tasks.NNAPI)},
			{110, "O", func(st *fig2State) error { return st.placeObjects(1.5, "plane", "splane", "bike", "Cocacola") }},
			{140, "C2", moveTask(tasks.InceptionV1Q, 2, tasks.CPU)},
		},
	}
	return s.run(seed)
}

// CSV renders the timeline as replottable rows (time_ms, series, value),
// with allocation/object marks as zero-valued "mark:<label>" series.
func (r *Figure2Result) CSV() string {
	var b strings.Builder
	b.WriteString(r.Recorder.CSV())
	for _, m := range r.Marks {
		fmt.Fprintf(&b, "%.1f,mark:%s,0\n", m.TimeS*1000, m.Label)
	}
	return b.String()
}
