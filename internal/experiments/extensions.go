package experiments

import (
	"fmt"
	"math"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Extensions returns the ablation/extension experiments that go beyond the
// paper's published artifacts: design choices the paper asserts but does not
// plot, and metrics it defers to future work.
func Extensions() []Runner {
	return []Runner{
		{ID: "Acquisition", Description: "EI vs PI vs LCB acquisition functions (the paper's §IV-C claim)",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunAcquisitionStudy(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunAcquisitionStudyJobs(seed, jobs) }},
		{ID: "Energy", Description: "average platform power and frame rate per controller (eAR-lineage extension)",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunEnergyStudy(seed) }},
		{ID: "TD", Description: "sensitivity-weighted vs uniform triangle distribution (Algorithm 1 line 23 ablation)",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunTDStudy(seed) }},
		{ID: "Thermal", Description: "die temperature and throttling over 5 minutes, HBO config vs AllN (opt-in thermal model)",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunThermalStudy(seed) }},
		{ID: "CrossDevice", Description: "HBO on SC1-CF1 for both calibrated devices (the paper's §V-A similarity remark)",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunCrossDevice(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunCrossDeviceJobs(seed, jobs) }},
		{ID: "DynamicEnv", Description: "activation churn under user mobility, with and without the lookup table (§VI)",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunDynamicEnv(seed) }},
		{ID: "Optimality", Description: "exhaustive oracle vs HBO on the tractable SC2-CF2 instance (the \"near-optimal\" claim)",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunOptimalityStudy(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunOptimalityStudyJobs(seed, jobs) }},
		{ID: "QualityFit", Description: "per-object Eq. 1 training fidelity against the geometry-derived ground truth",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunQualityFit(seed) }},
		{ID: "MultiApp", Description: "foreground MAR app + background AI service alternating optimization on one SoC",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunMultiApp(seed) }},
		{ID: "Heuristic", Description: "Algorithm 1's priority-queue assignment vs random assignments honoring the same counts",
			Run: func(seed uint64) (fmt.Stringer, error) { return RunHeuristicStudy(seed) }},
		{ID: "MultiUser", Description: "shared-edge contention: aggregate B_t and Jain fairness vs user count, independent HBO vs look-ahead scheduler",
			Run:     func(seed uint64) (fmt.Stringer, error) { return RunMultiUserStudy(seed) },
			RunJobs: func(seed uint64, jobs int) (fmt.Stringer, error) { return RunMultiUserStudyJobs(seed, jobs) }},
	}
}

// AllWithExtensions returns the paper artifacts followed by the extensions.
func AllWithExtensions() []Runner {
	return append(All(), Extensions()...)
}

// AcquisitionOutcome is one acquisition function's aggregate performance.
type AcquisitionOutcome struct {
	Name string
	// FinalCosts is the best cost reached in each trial.
	FinalCosts []float64
	// MeanFinal is their mean.
	MeanFinal float64
	// MeanConvergedAt is the mean 1-based iteration where the final best
	// cost was first reached.
	MeanConvergedAt float64
}

// AcquisitionStudyResult compares acquisition functions on SC1-CF1, backing
// the paper's §IV-C argument for Expected Improvement over Probability of
// Improvement ("too conservative") and Lower Confidence Bound ("requires
// tuning a dedicated parameter").
type AcquisitionStudyResult struct {
	Trials   int
	Outcomes []AcquisitionOutcome
}

var _ fmt.Stringer = (*AcquisitionStudyResult)(nil)

// RunAcquisitionStudy runs HBO activations under each acquisition function
// across several seeds.
func RunAcquisitionStudy(seed uint64) (*AcquisitionStudyResult, error) {
	return RunAcquisitionStudyJobs(seed, 1)
}

// RunAcquisitionStudyJobs is RunAcquisitionStudy with the independent
// (acquisition, trial) activations spread over up to jobs workers; each
// trial owns a system and RNG derived from its own trial seed, so the
// report is byte-identical for every jobs value.
func RunAcquisitionStudyJobs(seed uint64, jobs int) (*AcquisitionStudyResult, error) {
	const trials = 3
	acqs := []bo.Acquisition{bo.EI{}, bo.PI{Xi: 0.01}, bo.LCB{Beta: 2}}
	type trialOut struct {
		final       float64
		convergedAt float64
	}
	outs := make([]trialOut, len(acqs)*trials)
	errs := make([]error, len(acqs)*trials)
	forEach(jobs, len(outs), func(i int) {
		acq := acqs[i/trials]
		trial := i % trials
		trialSeed := seed + uint64(trial)*7919
		built, err := scenario.SC1CF1().Build(trialSeed)
		if err != nil {
			errs[i] = err
			return
		}
		act, err := runActivationWithAcquisition(built.Runtime, acq, trialSeed)
		if err != nil {
			errs[i] = fmt.Errorf("experiments: %s trial %d: %w", acq.Name(), trial, err)
			return
		}
		traj := act.BestCostTrajectory()
		outs[i].final = traj[len(traj)-1]
		for j, v := range traj {
			// Identity search: the final value IS an element of traj, so
			// bit comparison is exact, not approximate.
			if math.Float64bits(v) == math.Float64bits(outs[i].final) {
				outs[i].convergedAt = float64(j + 1)
				break
			}
		}
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	res := &AcquisitionStudyResult{Trials: trials}
	for ai, acq := range acqs {
		out := AcquisitionOutcome{Name: acq.Name()}
		var convSum float64
		for trial := 0; trial < trials; trial++ {
			o := outs[ai*trials+trial]
			out.FinalCosts = append(out.FinalCosts, o.final)
			convSum += o.convergedAt
		}
		for _, c := range out.FinalCosts {
			out.MeanFinal += c
		}
		out.MeanFinal /= trials
		out.MeanConvergedAt = convSum / trials
		res.Outcomes = append(res.Outcomes, out)
	}
	return res, nil
}

// runActivationWithAcquisition mirrors core.RunActivation but swaps the
// acquisition function — kept here so the core package stays exactly the
// paper's algorithm.
func runActivationWithAcquisition(rt *core.Runtime, acq bo.Acquisition, seed uint64) (*core.Result, error) {
	cfg := core.DefaultConfig()
	dom := bo.Domain{N: tasks.NumResources, RMin: cfg.RMin}
	boCfg := bo.DefaultConfig()
	boCfg.InitSamples = cfg.InitSamples
	boCfg.Acquisition = acq
	opt, err := bo.NewOptimizer(dom, boCfg, sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	res := &core.Result{}
	total := cfg.InitSamples + cfg.Iterations
	for i := 0; i < total; i++ {
		point, err := opt.Next()
		if err != nil {
			return nil, err
		}
		assignment, err := rt.ApplyConfiguration(point[:tasks.NumResources], point[tasks.NumResources])
		if err != nil {
			return nil, err
		}
		rt.Sys.RunFor(cfg.SettleMS)
		m, err := rt.Measure(cfg.PeriodMS)
		if err != nil {
			return nil, err
		}
		cost := m.Cost(cfg.Weight)
		if err := opt.Observe(point, cost); err != nil {
			return nil, err
		}
		res.Iterations = append(res.Iterations, core.Iteration{
			Point: point, Cost: cost, Quality: m.Quality, Epsilon: m.Epsilon, Assignment: assignment,
		})
		if cost < res.Iterations[res.BestIndex].Cost {
			res.BestIndex = i
		}
	}
	return res, nil
}

// String renders the acquisition comparison.
func (r *AcquisitionStudyResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Acquisition-function ablation on SC1-CF1 (%d trials each)\n", r.Trials)
	rows := [][]string{{"Acquisition", "Mean Final Cost", "Mean Converged@", "Per-trial finals"}}
	for _, o := range r.Outcomes {
		finals := make([]string, len(o.FinalCosts))
		for i, c := range o.FinalCosts {
			finals[i] = fmt.Sprintf("%.2f", c)
		}
		rows = append(rows, []string{
			o.Name,
			fmt.Sprintf("%.3f", o.MeanFinal),
			fmt.Sprintf("%.1f", o.MeanConvergedAt),
			strings.Join(finals, " "),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}

// EnergyRow is one controller's power/frame-rate outcome.
type EnergyRow struct {
	Name          string
	Ratio         float64
	Epsilon       float64
	Quality       float64
	AveragePowerW float64
	FPS           float64
}

// EnergyStudyResult extends the Fig. 5 comparison with platform power and
// achieved frame rate — the energy dimension of HBO's eAR lineage and the
// screen metric the paper defers (§III-A).
type EnergyStudyResult struct {
	Rows []EnergyRow
}

var _ fmt.Stringer = (*EnergyStudyResult)(nil)

// RunEnergyStudy measures HBO's solution, the static-best allocation at full
// quality, and AllN on SC1-CF1.
func RunEnergyStudy(seed uint64) (*EnergyStudyResult, error) {
	spec := scenario.SC1CF1()
	res := &EnergyStudyResult{}

	// HBO.
	built, err := spec.Build(seed)
	if err != nil {
		return nil, err
	}
	act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
	if err != nil {
		return nil, err
	}
	m, err := built.Runtime.Measure(5000)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, EnergyRow{
		Name: "HBO", Ratio: act.Ratio, Epsilon: m.Epsilon, Quality: m.Quality,
		AveragePowerW: m.AveragePowerW, FPS: m.FPS,
	})

	// Static best at full quality, and AllN.
	for _, mode := range []string{"Static", "AllN"} {
		built, err := spec.Build(seed)
		if err != nil {
			return nil, err
		}
		rt := built.Runtime
		a := make(alloc.Assignment, len(rt.Taskset.Tasks))
		for _, task := range rt.Taskset.Tasks {
			switch mode {
			case "Static":
				a[task.ID()] = rt.Profile.Best[task.ID()]
			case "AllN":
				a[task.ID()] = tasks.NNAPI
			}
		}
		if err := rt.ApplyAllocation(a); err != nil {
			return nil, err
		}
		rt.SyncRenderLoad()
		rt.Sys.RunFor(1000)
		m, err := rt.Measure(5000)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, EnergyRow{
			Name: mode, Ratio: 1, Epsilon: m.Epsilon, Quality: m.Quality,
			AveragePowerW: m.AveragePowerW, FPS: m.FPS,
		})
	}
	return res, nil
}

// Row finds an energy row by controller name.
func (r *EnergyStudyResult) Row(name string) (EnergyRow, error) {
	for _, row := range r.Rows {
		if row.Name == name {
			return row, nil
		}
	}
	return EnergyRow{}, fmt.Errorf("experiments: no energy row %s", name)
}

// String renders the energy comparison.
func (r *EnergyStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Energy/frame-rate extension on SC1-CF1\n")
	rows := [][]string{{"Controller", "Ratio", "Epsilon", "Quality", "Avg Power (W)", "FPS"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Name,
			fmt.Sprintf("%.2f", row.Ratio),
			fmt.Sprintf("%.3f", row.Epsilon),
			fmt.Sprintf("%.3f", row.Quality),
			fmt.Sprintf("%.2f", row.AveragePowerW),
			fmt.Sprintf("%.0f", row.FPS),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}

// TDRow compares the two distribution policies at one total ratio.
type TDRow struct {
	TotalRatio     float64
	QualitySens    float64
	QualityUniform float64
}

// TDStudyResult isolates the value of the sensitivity-weighted triangle
// distribution (Algorithm 1, line 23) against a uniform split, at several
// total ratios on the SC1 scene with mixed distances.
type TDStudyResult struct {
	Rows []TDRow
}

var _ fmt.Stringer = (*TDStudyResult)(nil)

// RunTDStudy compares the policies on SC1 with objects spread over several
// distances (sensitivity weighting only matters when objects differ).
func RunTDStudy(seed uint64) (*TDStudyResult, error) {
	built, err := scenario.SC1CF1().Build(seed)
	if err != nil {
		return nil, err
	}
	// Spread the objects over distances so their sensitivities differ.
	dists := []float64{0.8, 1.2, 1.6, 2.2, 3.0, 4.0, 1.0, 2.6, 3.4}
	for i, o := range built.Scene.Objects() {
		o.Distance = dists[i%len(dists)]
	}
	res := &TDStudyResult{}
	for _, x := range []float64{0.8, 0.6, 0.4, 0.2} {
		if err := alloc.DistributeTriangles(built.Scene.Objects(), x); err != nil {
			return nil, err
		}
		qs := built.Scene.AverageQuality()
		if err := alloc.DistributeTrianglesUniform(built.Scene.Objects(), x); err != nil {
			return nil, err
		}
		qu := built.Scene.AverageQuality()
		res.Rows = append(res.Rows, TDRow{TotalRatio: x, QualitySens: qs, QualityUniform: qu})
	}
	return res, nil
}

// String renders the TD ablation table.
func (r *TDStudyResult) String() string {
	var b strings.Builder
	b.WriteString("Triangle-distribution ablation (SC1, mixed distances)\n")
	rows := [][]string{{"Total Ratio", "Quality (sensitivity TD)", "Quality (uniform)", "Gain"}}
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%.1f", row.TotalRatio),
			fmt.Sprintf("%.3f", row.QualitySens),
			fmt.Sprintf("%.3f", row.QualityUniform),
			fmt.Sprintf("%+.1f%%", (row.QualitySens/row.QualityUniform-1)*100),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
