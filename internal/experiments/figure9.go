package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/baselines"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
	"github.com/mar-hbo/hbo/internal/userstudy"
)

// StudyCondition is one rated condition of the user study.
type StudyCondition struct {
	Controller string
	Distance   string // "close" or "far"
	Ratio      float64
	// TrueQuality is the ground-truth scene quality the raters perceive.
	TrueQuality float64
	// MeanScore is the panel's 1-5 mean opinion score.
	MeanScore float64
	// Scores are the individual rater scores.
	Scores []float64
}

// Figure9Result is the simulated §V-E user study: HBO vs SML (matched AI
// latency) rated by a panel at close and far distances against a
// max-quality reference.
type Figure9Result struct {
	PanelSize  int
	Conditions []StudyCondition
}

var _ fmt.Stringer = (*Figure9Result)(nil)

// fig9Catalog mixes heavy and lightweight objects as the paper's study does.
func fig9Catalog() []render.ObjectCount {
	return []render.ObjectCount{
		{Spec: render.SC2()[0].Spec, Count: 1}, // cabin
		{Spec: render.SC2()[1].Spec, Count: 2}, // andy x2
		{Spec: render.SC1()[0].Spec, Count: 1}, // apricot (86k)
		{Spec: render.SC1()[3].Spec, Count: 1}, // splane (147k)
		{Spec: render.SC1()[4].Spec, Count: 1}, // Cocacola (94k)
	}
}

// RunFigure9 evaluates HBO and SML at close (1 m) and far (4 m) distances
// and collects panel scores.
func RunFigure9(seed uint64) (*Figure9Result, error) {
	return RunFigure9Jobs(seed, 1)
}

// fig9Condition is one distance's simulated outcome, before panel rating.
type fig9Condition struct {
	hboRatio float64
	hboQ     float64
	smlRatio float64
	smlQ     float64
}

// RunFigure9Jobs is RunFigure9 with the two distance conditions simulated
// on up to jobs workers. The rater panel consumes its RNG stream strictly
// in condition order (close-HBO, close-SML, far-HBO, far-SML) after the
// simulations complete, so scores — and the report — are byte-identical
// for every jobs value.
func RunFigure9Jobs(seed uint64, jobs int) (*Figure9Result, error) {
	panel, err := userstudy.NewPanel(7, seed)
	if err != nil {
		return nil, err
	}
	dists := []struct {
		label string
		m     float64
	}{{"close", 1.0}, {"far", 4.0}}
	conds := make([]fig9Condition, len(dists))
	errs := make([]error, len(dists))
	forEach(jobs, len(dists), func(i int) {
		spec := scenario.Spec{
			Name:     "Fig9-" + dists[i].label,
			Device:   soc.Pixel7,
			Objects:  fig9Catalog(),
			Taskset:  tasks.CF1(),
			Distance: dists[i].m,
		}
		// HBO condition.
		built, err := spec.Build(seed)
		if err != nil {
			errs[i] = err
			return
		}
		act, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(seed))
		if err != nil {
			errs[i] = err
			return
		}
		conds[i].hboRatio = act.Ratio
		conds[i].hboQ = built.Scene.TrueAverageQuality()
		// SML condition: match HBO's AI latency with the static allocation.
		smlBuilt, err := spec.Build(seed)
		if err != nil {
			errs[i] = err
			return
		}
		sml, err := baselines.SML{HBOEpsilon: act.Epsilon, RMin: core.DefaultConfig().RMin}.Run(smlBuilt.Runtime)
		if err != nil {
			errs[i] = err
			return
		}
		conds[i].smlRatio = sml.Ratio
		conds[i].smlQ = smlBuilt.Scene.TrueAverageQuality()
	})
	if err := firstError(errs); err != nil {
		return nil, err
	}
	res := &Figure9Result{PanelSize: panel.Size()}
	for i, dist := range dists {
		scores := panel.Scores(conds[i].hboQ)
		res.Conditions = append(res.Conditions, StudyCondition{
			Controller:  "HBO",
			Distance:    dist.label,
			Ratio:       conds[i].hboRatio,
			TrueQuality: conds[i].hboQ,
			MeanScore:   mean(scores),
			Scores:      scores,
		})
		smlScores := panel.Scores(conds[i].smlQ)
		res.Conditions = append(res.Conditions, StudyCondition{
			Controller:  "SML",
			Distance:    dist.label,
			Ratio:       conds[i].smlRatio,
			TrueQuality: conds[i].smlQ,
			MeanScore:   mean(smlScores),
			Scores:      smlScores,
		})
	}
	return res, nil
}

func mean(v []float64) float64 {
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}

// Condition finds a study condition.
func (r *Figure9Result) Condition(controller, distance string) (StudyCondition, error) {
	for _, c := range r.Conditions {
		if c.Controller == controller && c.Distance == distance {
			return c, nil
		}
	}
	return StudyCondition{}, fmt.Errorf("experiments: no condition %s/%s", controller, distance)
}

// String renders the study table (the bars of Fig. 9a).
func (r *Figure9Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: user study, %d raters, 1-5 scale vs max-quality reference\n", r.PanelSize)
	rows := [][]string{{"Condition", "Triangle Ratio", "True Quality", "Mean Score"}}
	for _, c := range r.Conditions {
		rows = append(rows, []string{
			fmt.Sprintf("%s (%s)", c.Controller, c.Distance),
			fmt.Sprintf("%.2f", c.Ratio),
			fmt.Sprintf("%.3f", c.TrueQuality),
			fmt.Sprintf("%.1f", c.MeanScore),
		})
	}
	b.WriteString(table(rows))
	return b.String()
}
