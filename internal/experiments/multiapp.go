package experiments

import (
	"fmt"
	"strings"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// MultiAppRound records both apps' performance after one optimization round.
type MultiAppRound struct {
	Round int
	// ARReward is the foreground MAR app's B = Q − w·ε after its activation.
	ARReward float64
	ARRatio  float64
	// ServiceEpsilon is the background AI service's normalized latency
	// after its (allocation-only) optimization.
	ServiceEpsilon float64
}

// MultiAppResult is the coexistence study: a foreground MAR app running full
// HBO and a background AI service running allocation-only optimization share
// one SoC and re-optimize in alternation. The paper treats the taskset as
// one app's; this extension checks that two independent optimizers on the
// same silicon settle rather than thrash.
type MultiAppResult struct {
	Rounds []MultiAppRound
}

var _ fmt.Stringer = (*MultiAppResult)(nil)

// serviceTaskset is the background app: a camera/vision service with tasks
// disjoint from CF1.
func serviceTaskset() (tasks.Set, error) {
	return tasks.Expand("service", []tasks.ModelCount{
		{Model: tasks.InceptionV1Q, Count: 2},
		{Model: tasks.DeconvMUNet, Count: 1},
	})
}

// RunMultiApp builds both apps on one SoC and alternates optimization for
// three rounds.
func RunMultiApp(seed uint64) (*MultiAppResult, error) {
	dev := soc.Pixel7()
	eng := sim.NewEngine(seed)
	sys := soc.NewSystem(eng, dev, soc.DefaultConfig())

	arSet := tasks.CF1()
	svcSet, err := serviceTaskset()
	if err != nil {
		return nil, err
	}
	arProf, err := soc.ProfileTaskset(dev, arSet, seed)
	if err != nil {
		return nil, err
	}
	svcProf, err := soc.ProfileTaskset(dev, svcSet, seed)
	if err != nil {
		return nil, err
	}
	lib, err := render.LibraryFor(render.SC1(), seed)
	if err != nil {
		return nil, err
	}

	// The background service first (its empty scene must not be the last to
	// set the render load), then the AR app, whose scene governs the GPU.
	svcScene := render.NewScene(lib)
	svcRT, err := core.NewRuntime(sys, svcScene, svcProf, svcSet)
	if err != nil {
		return nil, err
	}
	arScene := render.NewScene(lib)
	if err := arScene.PlaceAll(render.SC1(), 1.5); err != nil {
		return nil, err
	}
	arRT, err := core.NewRuntime(sys, arScene, arProf, arSet)
	if err != nil {
		return nil, err
	}

	cfg := core.DefaultConfig()
	cfg.InitSamples = 3
	cfg.Iterations = 7
	rng := sim.NewRNG(seed)

	res := &MultiAppResult{}
	for round := 1; round <= 3; round++ {
		// Foreground app: full HBO activation (allocation + triangles).
		act, err := core.RunActivation(arRT, cfg, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: AR round %d: %w", round, err)
		}
		// Background service: allocation-only optimization of its own
		// tasks; it must not touch the scene or the render load.
		svcEps, err := optimizeServiceAllocation(svcRT, rng.Split())
		if err != nil {
			return nil, fmt.Errorf("experiments: service round %d: %w", round, err)
		}
		// Re-measure the AR app after the service's moves disturbed it.
		m, err := arRT.Measure(3000)
		if err != nil {
			return nil, err
		}
		res.Rounds = append(res.Rounds, MultiAppRound{
			Round:          round,
			ARReward:       m.Reward(cfg.Weight),
			ARRatio:        act.Ratio,
			ServiceEpsilon: svcEps,
		})
	}
	return res, nil
}

// optimizeServiceAllocation runs a small allocation-only Bayesian loop for
// the background taskset and returns the best measured ε.
func optimizeServiceAllocation(rt *core.Runtime, rng *sim.RNG) (float64, error) {
	dom := bo.Domain{N: tasks.NumResources, RMin: 1} // x pinned; unused
	boCfg := bo.DefaultConfig()
	boCfg.InitSamples = 3
	opt, err := bo.NewOptimizer(dom, boCfg, rng)
	if err != nil {
		return 0, err
	}
	best := -1.0
	for i := 0; i < 8; i++ {
		point, err := opt.Next()
		if err != nil {
			return 0, err
		}
		counts, err := alloc.Counts(point[:tasks.NumResources], len(rt.Taskset.Tasks))
		if err != nil {
			return 0, err
		}
		assignment, err := alloc.Assign(counts, rt.Profile, rt.TaskIDs())
		if err != nil {
			return 0, err
		}
		if err := rt.ApplyAllocation(assignment); err != nil {
			return 0, err
		}
		rt.Sys.RunFor(400)
		m, err := rt.Measure(1500)
		if err != nil {
			return 0, err
		}
		if err := opt.Observe(point, m.Epsilon); err != nil {
			return 0, err
		}
		if best < 0 || m.Epsilon < best {
			best = m.Epsilon
		}
	}
	return best, nil
}

// String renders the round table.
func (r *MultiAppResult) String() string {
	var b strings.Builder
	b.WriteString("Multi-app coexistence: foreground MAR app (HBO) + background AI service\n")
	rows := [][]string{{"Round", "AR reward", "AR ratio", "Service eps"}}
	for _, round := range r.Rounds {
		rows = append(rows, []string{
			fmt.Sprintf("%d", round.Round),
			fmt.Sprintf("%.3f", round.ARReward),
			fmt.Sprintf("%.2f", round.ARRatio),
			fmt.Sprintf("%.3f", round.ServiceEpsilon),
		})
	}
	b.WriteString(table(rows))
	b.WriteString("\nNote: the two optimizers do not coordinate; each one's moves shift the\n" +
		"other's black box. Oscillation across rounds is the expected finding —\n" +
		"multi-app coordination is exactly the kind of extension the paper's §VI\n" +
		"leaves open.\n")
	return b.String()
}
