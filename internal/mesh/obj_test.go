package mesh

import (
	"bytes"
	"strings"
	"testing"
)

func TestOBJRoundTrip(t *testing.T) {
	m, err := Blob(1000, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOBJ(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.TriangleCount() != m.TriangleCount() {
		t.Fatalf("triangles %d -> %d", m.TriangleCount(), back.TriangleCount())
	}
	if len(back.Vertices) != len(m.Vertices) {
		t.Fatalf("vertices %d -> %d", len(m.Vertices), len(back.Vertices))
	}
	for i := range m.Vertices {
		d := m.Vertices[i].Sub(back.Vertices[i]).Norm()
		if d > 1e-9 {
			t.Fatalf("vertex %d moved by %v", i, d)
		}
	}
}

func TestReadOBJQuadFanAndSlashes(t *testing.T) {
	src := `
# a unit quad with texture/normal indices
v 0 0 0
v 1 0 0
v 1 1 0
v 0 1 0
vn 0 0 1
vt 0 0
f 1/1/1 2/1/1 3/1/1 4/1/1
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() != 2 {
		t.Fatalf("quad fanned into %d triangles, want 2", m.TriangleCount())
	}
}

func TestReadOBJNegativeIndices(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
f -3 -2 -1
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() != 1 || m.Triangles[0] != (Triangle{0, 1, 2}) {
		t.Fatalf("negative-index face parsed as %v", m.Triangles)
	}
}

func TestReadOBJErrors(t *testing.T) {
	cases := map[string]string{
		"no geometry":      "# empty\n",
		"short vertex":     "v 1 2\nf 1 1 1\n",
		"bad float":        "v a b c\n",
		"zero face index":  "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 0 1 2\n",
		"out of range":     "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 9\n",
		"short face":       "v 0 0 0\nv 1 0 0\nf 1 2\n",
		"bad face integer": "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 x\n",
	}
	for name, src := range cases {
		if _, err := ReadOBJ(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadOBJSkipsDegenerateFaces(t *testing.T) {
	src := `
v 0 0 0
v 1 0 0
v 0 1 0
f 1 1 2
f 1 2 3
`
	m, err := ReadOBJ(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() != 1 {
		t.Fatalf("degenerate face not skipped: %d triangles", m.TriangleCount())
	}
}

func TestWriteOBJRejectsInvalidMesh(t *testing.T) {
	bad := &Mesh{Vertices: []Vec3{{0, 0, 0}}, Triangles: []Triangle{{0, 1, 2}}}
	if err := WriteOBJ(&bytes.Buffer{}, bad); err == nil {
		t.Fatal("invalid mesh serialized")
	}
}
