package mesh

import (
	"bytes"
	"math"
	"testing"
)

// FuzzOBJParse feeds arbitrary bytes to the OBJ reader. The contract under
// fuzz: never panic, and any stream the parser accepts must validate and
// survive a write/re-read round trip bit-identically (vertices compared by
// float bits so NaN coordinates — which ParseFloat accepts — don't break
// equality).
func FuzzOBJParse(f *testing.F) {
	seeds := []string{
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n",
		"# comment\nv 0 0 0\nv 1 0 0\nv 0 1 0\nv 1 1 0\nf 1 2 3 4\n",
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n",
		"v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1/1/1 2/2/2 3//3\n",
		"v NaN 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n",
		"v 1e308 -1e308 0.5\nv 1 0 0\nv 0 1 0\nf 1 1 2\nf 1 2 3\n",
		"v 0x1p-3 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n",
		"vn 0 0 1\nvt 0 0\ng g\no o\ns 1\nusemtl m\nmtllib l\n",
		"f 1 2 3\n",
		"v 0 0\n",
		"f 0 1 2\n",
		"",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadOBJ(bytes.NewReader(data))
		if err != nil {
			return // rejected input; only a panic is a failure here
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("accepted mesh fails validation: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteOBJ(&buf, m); werr != nil {
			t.Fatalf("accepted mesh does not serialize: %v", werr)
		}
		m2, rerr := ReadOBJ(bytes.NewReader(buf.Bytes()))
		if rerr != nil {
			t.Fatalf("serialized mesh does not re-parse: %v\n%s", rerr, buf.Bytes())
		}
		if len(m2.Vertices) != len(m.Vertices) || len(m2.Triangles) != len(m.Triangles) {
			t.Fatalf("round trip changed shape: %dv/%dt -> %dv/%dt",
				len(m.Vertices), len(m.Triangles), len(m2.Vertices), len(m2.Triangles))
		}
		for i := range m.Vertices {
			if !sameVec3Bits(m.Vertices[i], m2.Vertices[i]) {
				t.Fatalf("vertex %d changed: %v -> %v", i, m.Vertices[i], m2.Vertices[i])
			}
		}
		for i := range m.Triangles {
			if m.Triangles[i] != m2.Triangles[i] {
				t.Fatalf("triangle %d changed: %v -> %v", i, m.Triangles[i], m2.Triangles[i])
			}
		}
	})
}

// sameVec3Bits compares coordinates by their float64 bit patterns, so NaN
// equals NaN and -0 is distinguished from +0.
func sameVec3Bits(a, b Vec3) bool {
	return math.Float64bits(a.X) == math.Float64bits(b.X) &&
		math.Float64bits(a.Y) == math.Float64bits(b.Y) &&
		math.Float64bits(a.Z) == math.Float64bits(b.Z)
}
