package mesh

import (
	"math"
	"testing"
)

func TestStatsSphere(t *testing.T) {
	m, err := SphereWithTriangles(5000)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(m)
	if !st.IsWatertight() {
		t.Fatalf("sphere not watertight: %+v", st)
	}
	if st.EulerCharacteristic != 2 || st.Genus() != 0 {
		t.Fatalf("sphere topology wrong: chi=%d genus=%d", st.EulerCharacteristic, st.Genus())
	}
	// Volume approaches 4/3 pi from below for an inscribed polyhedron.
	want := 4.0 / 3 * math.Pi
	if st.Volume > want || st.Volume < 0.97*want {
		t.Fatalf("sphere volume %v, want just under %v", st.Volume, want)
	}
	if st.SphereVolumeError() > 0.05 {
		t.Fatalf("sphere volume error %v", st.SphereVolumeError())
	}
	if st.MeanEdgeLength <= 0 {
		t.Fatal("mean edge length not computed")
	}
}

func TestStatsTorus(t *testing.T) {
	m, err := Torus(0.3, 24, 16)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(m)
	if !st.IsWatertight() {
		t.Fatalf("torus not watertight: %+v", st)
	}
	if st.EulerCharacteristic != 0 || st.Genus() != 1 {
		t.Fatalf("torus topology wrong: chi=%d genus=%d", st.EulerCharacteristic, st.Genus())
	}
	// Analytic torus volume: 2 pi^2 R r^2 with R=1, r=0.3.
	want := 2 * math.Pi * math.Pi * 0.09
	if math.Abs(st.Volume-want)/want > 0.05 {
		t.Fatalf("torus volume %v, want ~%v", st.Volume, want)
	}
}

func TestStatsBoxHasBoundaries(t *testing.T) {
	m, err := Box(3)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(m)
	// Box faces are generated independently: edges along the seams are
	// boundaries, so the surface is not watertight and genus is undefined.
	if st.IsWatertight() {
		t.Fatal("independently-faced box should not be watertight")
	}
	if st.BoundaryEdges == 0 {
		t.Fatal("box should have boundary edges at the seams")
	}
	if st.Genus() != -1 {
		t.Fatalf("genus of non-watertight mesh = %d, want -1", st.Genus())
	}
}

func TestDecimationPreservesTopologyClass(t *testing.T) {
	m, err := SphereWithTriangles(3000)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decimate(m, 300)
	if err != nil {
		t.Fatal(err)
	}
	st := Stats(dec)
	// QEM on a closed surface should keep it closed and spherical.
	if !st.IsWatertight() {
		t.Fatalf("decimated sphere not watertight: %+v", st)
	}
	if st.Genus() != 0 {
		t.Fatalf("decimated sphere genus = %d", st.Genus())
	}
}
