package mesh

import (
	"math"
	"testing"
)

func TestVertexClusteringReachesTarget(t *testing.T) {
	m, err := SphereWithTriangles(4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{2000, 800, 200, 50} {
		out, err := VertexClustering(m, target)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if out.TriangleCount() > target {
			t.Errorf("target %d: got %d triangles", target, out.TriangleCount())
		}
		if out.TriangleCount() == 0 {
			t.Errorf("target %d: collapsed to nothing", target)
		}
	}
}

func TestVertexClusteringPreservesBounds(t *testing.T) {
	m, err := Blob(3000, 7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	out, err := VertexClustering(m, 400)
	if err != nil {
		t.Fatal(err)
	}
	lo0, hi0 := m.Bounds()
	lo1, hi1 := out.Bounds()
	diag := hi0.Sub(lo0).Norm()
	if lo1.Sub(lo0).Norm() > 0.2*diag || hi1.Sub(hi0).Norm() > 0.2*diag {
		t.Fatalf("bounds moved too far: %v..%v -> %v..%v", lo0, hi0, lo1, hi1)
	}
}

func TestVertexClusteringNoOpAboveCount(t *testing.T) {
	m, err := SphereWithTriangles(300)
	if err != nil {
		t.Fatal(err)
	}
	out, err := VertexClustering(m, m.TriangleCount()+1)
	if err != nil {
		t.Fatal(err)
	}
	if out.TriangleCount() != m.TriangleCount() {
		t.Fatalf("no-op changed count %d -> %d", m.TriangleCount(), out.TriangleCount())
	}
	if _, err := VertexClustering(m, 0); err == nil {
		t.Fatal("zero target accepted")
	}
}

// TestQEMBeatsClusteringOnQuality quantifies why QEM is the edge server's
// default and clustering only the fast path: at the same triangle budget the
// quadric result deviates less from the original surface.
func TestQEMBeatsClusteringOnQuality(t *testing.T) {
	m, err := Blob(4000, 11, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	const target = 400
	qem, err := Decimate(m, target)
	if err != nil {
		t.Fatal(err)
	}
	clus, err := VertexClustering(m, target)
	if err != nil {
		t.Fatal(err)
	}
	devQEM := meanNearestDistance(m, qem)
	devClus := meanNearestDistance(m, clus)
	if devQEM >= devClus {
		t.Fatalf("QEM deviation %.5f should be below clustering %.5f at %d triangles",
			devQEM, devClus, target)
	}
}

// meanNearestDistance samples original vertices and measures the mean
// distance to the nearest simplified vertex.
func meanNearestDistance(orig, simplified *Mesh) float64 {
	step := len(orig.Vertices)/200 + 1
	sum := 0.0
	n := 0
	for i := 0; i < len(orig.Vertices); i += step {
		v := orig.Vertices[i]
		best := math.Inf(1)
		for _, w := range simplified.Vertices {
			if d := v.Sub(w).Norm(); d < best {
				best = d
			}
		}
		sum += best
		n++
	}
	return sum / float64(n)
}
