package mesh

import (
	"fmt"
	"math"
	"sort"
)

// VertexClustering simplifies the mesh to at most target triangles by
// snapping vertices to a uniform grid and collapsing each occupied cell to
// its centroid — the classic fast-but-coarse alternative to quadric edge
// collapse. The edge server can use it as a low-latency path when a client
// needs a decimated version faster than QEM can produce one; the tests
// quantify the quality gap between the two.
func VertexClustering(m *Mesh, target int) (*Mesh, error) {
	if target < 1 {
		return nil, fmt.Errorf("mesh: clustering target %d must be >= 1", target)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if target >= m.TriangleCount() {
		return m.Clone().Compact(), nil
	}
	// Binary search the largest grid resolution whose result still fits the
	// target, starting from a geometric guess (cells scale with the square
	// of resolution for surfaces) to keep the search window tight.
	guess := int(math.Sqrt(float64(target) / 2))
	if guess < 1 {
		guess = 1
	}
	lo, hi := 1, 256
	if g := guess * 4; g < hi {
		// Verify the reduced window still brackets the answer.
		if clusteredCount(m, g) > target {
			hi = g
		}
	}
	best := 1
	for lo <= hi {
		mid := (lo + hi) / 2
		if n := clusteredCount(m, mid); n <= target {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	out := clusterAt(m, best)
	return out, nil
}

// cellKey packs a grid cell's (x, y, z) into one integer: 21 bits per axis
// comfortably covers the 256-cell maximum resolution and keeps the hot maps
// integer-keyed.
type cellKey int64

// cellOf maps a vertex into the grid.
func cellOf(v, lo Vec3, inv float64) cellKey {
	x := int64(math.Floor((v.X - lo.X) * inv))
	y := int64(math.Floor((v.Y - lo.Y) * inv))
	z := int64(math.Floor((v.Z - lo.Z) * inv))
	return cellKey(x | y<<21 | z<<42)
}

// gridParams computes the cell size inverse for a resolution.
func gridParams(m *Mesh, resolution int) (Vec3, float64) {
	lo, hi := m.Bounds()
	extent := math.Max(hi.X-lo.X, math.Max(hi.Y-lo.Y, hi.Z-lo.Z))
	if extent <= 0 {
		extent = 1
	}
	return lo, float64(resolution) / (extent * 1.0000001)
}

// clusteredCount returns the surviving triangle count at a resolution
// without building the mesh.
func clusteredCount(m *Mesh, resolution int) int {
	lo, inv := gridParams(m, resolution)
	cellOfVert := make([]cellKey, len(m.Vertices))
	for i, v := range m.Vertices {
		cellOfVert[i] = cellOf(v, lo, inv)
	}
	seen := make(map[[3]cellKey]struct{}, len(m.Triangles)/2)
	count := 0
	for _, t := range m.Triangles {
		a, b, c := cellOfVert[t[0]], cellOfVert[t[1]], cellOfVert[t[2]]
		if a == b || b == c || a == c {
			continue
		}
		key := sortedTriple(a, b, c)
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		count++
	}
	return count
}

// clusterAt builds the clustered mesh at a resolution.
func clusterAt(m *Mesh, resolution int) *Mesh {
	lo, inv := gridParams(m, resolution)
	cellIndex := make(map[cellKey]int, len(m.Vertices)/4)
	var sums []Vec3
	var counts []int
	vertCell := make([]int, len(m.Vertices))
	for i, v := range m.Vertices {
		key := cellOf(v, lo, inv)
		idx, ok := cellIndex[key]
		if !ok {
			idx = len(sums)
			cellIndex[key] = idx
			sums = append(sums, Vec3{})
			counts = append(counts, 0)
		}
		sums[idx] = sums[idx].Add(v)
		counts[idx]++
		vertCell[i] = idx
	}
	out := &Mesh{Vertices: make([]Vec3, len(sums))}
	for i := range sums {
		out.Vertices[i] = sums[i].Scale(1 / float64(counts[i]))
	}
	seen := make(map[[3]int]struct{})
	for _, t := range m.Triangles {
		a, b, c := vertCell[t[0]], vertCell[t[1]], vertCell[t[2]]
		if a == b || b == c || a == c {
			continue
		}
		key := [3]int{a, b, c}
		sort.Ints(key[:])
		if _, dup := seen[key]; dup {
			continue
		}
		seen[key] = struct{}{}
		out.Triangles = append(out.Triangles, Triangle{a, b, c})
	}
	return out.Compact()
}

// sortedTriple canonicalizes three cell keys for dedup.
func sortedTriple(a, b, c cellKey) [3]cellKey {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return [3]cellKey{a, b, c}
}
