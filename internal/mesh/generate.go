package mesh

import (
	"fmt"
	"math"
)

// UVSphere generates a unit sphere with the given number of latitude rings
// and longitude segments. Triangle count is 2*segments*(rings-1).
func UVSphere(rings, segments int) (*Mesh, error) {
	if rings < 2 || segments < 3 {
		return nil, fmt.Errorf("mesh: UVSphere needs rings >= 2 and segments >= 3, got %d/%d", rings, segments)
	}
	m := &Mesh{}
	// Poles plus interior ring vertices.
	m.Vertices = append(m.Vertices, Vec3{0, 1, 0})
	for r := 1; r < rings; r++ {
		phi := math.Pi * float64(r) / float64(rings)
		for s := 0; s < segments; s++ {
			theta := 2 * math.Pi * float64(s) / float64(segments)
			m.Vertices = append(m.Vertices, Vec3{
				X: math.Sin(phi) * math.Cos(theta),
				Y: math.Cos(phi),
				Z: math.Sin(phi) * math.Sin(theta),
			})
		}
	}
	m.Vertices = append(m.Vertices, Vec3{0, -1, 0})
	southPole := len(m.Vertices) - 1
	idx := func(r, s int) int { return 1 + (r-1)*segments + (s % segments) }
	// Top cap.
	for s := 0; s < segments; s++ {
		m.Triangles = append(m.Triangles, Triangle{0, idx(1, s+1), idx(1, s)})
	}
	// Body quads.
	for r := 1; r < rings-1; r++ {
		for s := 0; s < segments; s++ {
			a, b := idx(r, s), idx(r, s+1)
			c, d := idx(r+1, s), idx(r+1, s+1)
			m.Triangles = append(m.Triangles, Triangle{a, b, d}, Triangle{a, d, c})
		}
	}
	// Bottom cap.
	for s := 0; s < segments; s++ {
		m.Triangles = append(m.Triangles, Triangle{southPole, idx(rings-1, s), idx(rings-1, s+1)})
	}
	return m, nil
}

// SphereWithTriangles generates a sphere whose triangle count is close to
// (and at least) target by choosing rings and segments.
func SphereWithTriangles(target int) (*Mesh, error) {
	if target < 8 {
		return nil, fmt.Errorf("mesh: sphere target %d too small", target)
	}
	// 2*s*(r-1) ~ target with s = 2r gives 4r^2 ~ target.
	r := int(math.Ceil(math.Sqrt(float64(target) / 4)))
	if r < 2 {
		r = 2
	}
	s := 2 * r
	for 2*s*(r-1) < target {
		r++
		s = 2 * r
	}
	return UVSphere(r, s)
}

// Torus generates a torus with major radius 1 and the given minor radius,
// with rings x segments quads (2*rings*segments triangles).
func Torus(minorRadius float64, rings, segments int) (*Mesh, error) {
	if rings < 3 || segments < 3 {
		return nil, fmt.Errorf("mesh: Torus needs rings, segments >= 3, got %d/%d", rings, segments)
	}
	if minorRadius <= 0 || minorRadius >= 1 {
		return nil, fmt.Errorf("mesh: Torus minor radius %v out of (0,1)", minorRadius)
	}
	m := &Mesh{}
	for r := 0; r < rings; r++ {
		u := 2 * math.Pi * float64(r) / float64(rings)
		for s := 0; s < segments; s++ {
			v := 2 * math.Pi * float64(s) / float64(segments)
			cx, cz := math.Cos(u), math.Sin(u)
			m.Vertices = append(m.Vertices, Vec3{
				X: (1 + minorRadius*math.Cos(v)) * cx,
				Y: minorRadius * math.Sin(v),
				Z: (1 + minorRadius*math.Cos(v)) * cz,
			})
		}
	}
	idx := func(r, s int) int { return (r%rings)*segments + (s % segments) }
	for r := 0; r < rings; r++ {
		for s := 0; s < segments; s++ {
			a, b := idx(r, s), idx(r+1, s)
			c, d := idx(r, s+1), idx(r+1, s+1)
			// Wound so normals face outward (positive enclosed volume).
			m.Triangles = append(m.Triangles, Triangle{a, d, b}, Triangle{a, c, d})
		}
	}
	return m, nil
}

// Blob generates an organic-looking closed surface: a sphere displaced by a
// deterministic multi-frequency bump field keyed by shapeSeed. It models
// assets with high-curvature detail (the paper's apricot, andy, ...).
func Blob(target int, shapeSeed uint64, roughness float64) (*Mesh, error) {
	m, err := SphereWithTriangles(target)
	if err != nil {
		return nil, err
	}
	// Deterministic pseudo-random lobe directions derived from the seed.
	lobes := make([]Vec3, 6)
	state := shapeSeed
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / (1 << 53)
	}
	for i := range lobes {
		theta := 2 * math.Pi * next()
		phi := math.Acos(2*next() - 1)
		lobes[i] = Vec3{
			X: math.Sin(phi) * math.Cos(theta),
			Y: math.Cos(phi),
			Z: math.Sin(phi) * math.Sin(theta),
		}
	}
	for i, v := range m.Vertices {
		disp := 0.0
		for k, l := range lobes {
			freq := 1.5 + float64(k)
			disp += math.Sin(freq*v.Dot(l)*math.Pi) / freq
		}
		m.Vertices[i] = v.Scale(1 + roughness*disp/float64(len(lobes)))
	}
	return m, nil
}

// Box generates an axis-aligned unit box with each face subdivided into an
// n x n grid (12*n*n triangles). It models flat, low-curvature assets (the
// paper's cabin).
func Box(n int) (*Mesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("mesh: Box subdivision %d must be >= 1", n)
	}
	m := &Mesh{}
	// Each face generated independently; duplicate edge vertices are fine
	// for our purposes (decimation treats them as boundary).
	addFace := func(origin, du, dv Vec3) {
		base := len(m.Vertices)
		for i := 0; i <= n; i++ {
			for j := 0; j <= n; j++ {
				p := origin.Add(du.Scale(float64(i) / float64(n))).Add(dv.Scale(float64(j) / float64(n)))
				m.Vertices = append(m.Vertices, p)
			}
		}
		at := func(i, j int) int { return base + i*(n+1) + j }
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a, b, c, d := at(i, j), at(i+1, j), at(i, j+1), at(i+1, j+1)
				m.Triangles = append(m.Triangles, Triangle{a, b, d}, Triangle{a, d, c})
			}
		}
	}
	x, y, z := Vec3{1, 0, 0}, Vec3{0, 1, 0}, Vec3{0, 0, 1}
	o := Vec3{-0.5, -0.5, -0.5}
	addFace(o, x, y)        // back (z = -0.5)
	addFace(o.Add(z), y, x) // front
	addFace(o, y, z)        // left
	addFace(o.Add(x), z, y) // right
	addFace(o, z, x)        // bottom
	addFace(o.Add(y), x, z) // top
	return m, nil
}
