package mesh

import "math"

// Statistics summarizes a mesh's structural and geometric properties; the
// quality pipeline and tests use it to validate generators and decimators.
type Statistics struct {
	Vertices  int
	Triangles int
	Edges     int
	// BoundaryEdges counts edges incident to exactly one triangle (zero for
	// a watertight surface).
	BoundaryEdges int
	// NonManifoldEdges counts edges incident to three or more triangles.
	NonManifoldEdges int
	// EulerCharacteristic is V − E + F (2 for a sphere, 0 for a torus).
	EulerCharacteristic int
	// SurfaceArea is the triangle-area total.
	SurfaceArea float64
	// Volume is the signed volume by the divergence theorem; meaningful for
	// closed, consistently oriented surfaces.
	Volume float64
	// MeanEdgeLength is the average edge length.
	MeanEdgeLength float64
}

// Stats computes the mesh's statistics in one pass over the triangles.
func Stats(m *Mesh) Statistics {
	st := Statistics{
		Vertices:    len(m.Vertices),
		Triangles:   len(m.Triangles),
		SurfaceArea: m.SurfaceArea(),
	}
	edgeUse := make(map[[2]int]int)
	edgeLenSum := 0.0
	for _, t := range m.Triangles {
		a, b, c := m.Vertices[t[0]], m.Vertices[t[1]], m.Vertices[t[2]]
		// Signed tetrahedron volume against the origin.
		st.Volume += a.Dot(b.Cross(c)) / 6
		for _, e := range [3][2]int{{t[0], t[1]}, {t[1], t[2]}, {t[2], t[0]}} {
			u, v := e[0], e[1]
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if edgeUse[key] == 0 {
				edgeLenSum += m.Vertices[u].Sub(m.Vertices[v]).Norm()
			}
			edgeUse[key]++
		}
	}
	st.Edges = len(edgeUse)
	for _, n := range edgeUse {
		switch {
		case n == 1:
			st.BoundaryEdges++
		case n > 2:
			st.NonManifoldEdges++
		}
	}
	st.EulerCharacteristic = st.Vertices - st.Edges + st.Triangles
	if st.Edges > 0 {
		st.MeanEdgeLength = edgeLenSum / float64(st.Edges)
	}
	return st
}

// IsWatertight reports whether every edge is shared by exactly two faces.
func (s Statistics) IsWatertight() bool {
	return s.BoundaryEdges == 0 && s.NonManifoldEdges == 0
}

// Genus returns the surface genus for a watertight, connected, orientable
// mesh (χ = 2 − 2g), or -1 when the mesh is not watertight.
func (s Statistics) Genus() int {
	if !s.IsWatertight() {
		return -1
	}
	g := (2 - s.EulerCharacteristic) / 2
	if g < 0 {
		return -1
	}
	return g
}

// SphereVolumeError returns the relative deviation of the measured volume
// from an ideal sphere with the mesh's surface area — a cheap sanity metric
// used by generator tests.
func (s Statistics) SphereVolumeError() float64 {
	if s.SurfaceArea <= 0 {
		return math.Inf(1)
	}
	r := math.Sqrt(s.SurfaceArea / (4 * math.Pi))
	ideal := 4.0 / 3 * math.Pi * r * r * r
	return math.Abs(s.Volume-ideal) / ideal
}
