package mesh

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// quadric is a symmetric 4x4 error quadric stored as its upper triangle:
// [a11 a12 a13 a14 a22 a23 a24 a33 a34 a44].
type quadric [10]float64

func (q *quadric) addPlane(a, b, c, d float64) {
	q[0] += a * a
	q[1] += a * b
	q[2] += a * c
	q[3] += a * d
	q[4] += b * b
	q[5] += b * c
	q[6] += b * d
	q[7] += c * c
	q[8] += c * d
	q[9] += d * d
}

func (q *quadric) add(o *quadric) {
	for i := range q {
		q[i] += o[i]
	}
}

// eval returns v^T Q v for the homogeneous point (v, 1).
func (q *quadric) eval(v Vec3) float64 {
	return q[0]*v.X*v.X + 2*q[1]*v.X*v.Y + 2*q[2]*v.X*v.Z + 2*q[3]*v.X +
		q[4]*v.Y*v.Y + 2*q[5]*v.Y*v.Z + 2*q[6]*v.Y +
		q[7]*v.Z*v.Z + 2*q[8]*v.Z +
		q[9]
}

// optimal solves for the position minimizing the quadric, returning ok=false
// when the system is near-singular (flat regions).
func (q *quadric) optimal() (Vec3, bool) {
	a11, a12, a13 := q[0], q[1], q[2]
	a22, a23 := q[4], q[5]
	a33 := q[7]
	b := Vec3{-q[3], -q[6], -q[8]}
	det := a11*(a22*a33-a23*a23) - a12*(a12*a33-a23*a13) + a13*(a12*a23-a22*a13)
	if math.Abs(det) < 1e-12 {
		return Vec3{}, false
	}
	inv := 1 / det
	x := (b.X*(a22*a33-a23*a23) - a12*(b.Y*a33-a23*b.Z) + a13*(b.Y*a23-a22*b.Z)) * inv
	y := (a11*(b.Y*a33-a23*b.Z) - b.X*(a12*a33-a13*a23) + a13*(a12*b.Z-b.Y*a13)) * inv
	z := (a11*(a22*b.Z-b.Y*a23) - a12*(a12*b.Z-b.Y*a13) + b.X*(a12*a23-a22*a13)) * inv
	return Vec3{x, y, z}, true
}

// collapse is a candidate edge contraction in the priority queue.
type collapse struct {
	u, v  int // vertex indices; v merges into u
	cost  float64
	pos   Vec3
	verU  int // vertex versions at push time; stale entries are skipped
	verV  int
	index int
}

type collapseHeap []*collapse

func (h collapseHeap) Len() int { return len(h) }

// Less orders by cost with a deterministic (u, v) tie-break so equal-cost
// collapses pop in the same order every run.
func (h collapseHeap) Less(i, j int) bool {
	//lint:allow errlint exact equality is the tie-break trigger; a bits compare would split numerically equal costs
	if h[i].cost != h[j].cost {
		return h[i].cost < h[j].cost
	}
	if h[i].u != h[j].u {
		return h[i].u < h[j].u
	}
	return h[i].v < h[j].v
}
func (h collapseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *collapseHeap) Push(x any)   { c := x.(*collapse); c.index = len(*h); *h = append(*h, c) }
func (h *collapseHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return c
}

// decimator holds the working state of one QEM simplification run.
type decimator struct {
	verts    []Vec3
	quadrics []quadric
	version  []int
	faces    []Triangle
	faceOK   []bool
	// vertFaces maps vertex -> set of incident live face indices.
	vertFaces []map[int]struct{}
	liveFaces int
	queue     collapseHeap
}

// Decimate simplifies the mesh to at most target triangles using
// quadric-error-metric edge collapse (Garland-Heckbert). The input mesh is
// not modified. Decimation is monotone: a smaller target never yields more
// triangles. Targets at or above the current count return a compacted copy.
func Decimate(m *Mesh, target int) (*Mesh, error) {
	if target < 0 {
		return nil, fmt.Errorf("mesh: negative decimation target %d", target)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if target >= m.TriangleCount() {
		return m.Clone().Compact(), nil
	}
	d := newDecimator(m)
	for d.liveFaces > target {
		if !d.step() {
			break // no valid collapse remains
		}
	}
	return d.extract(), nil
}

func newDecimator(m *Mesh) *decimator {
	d := &decimator{
		verts:     append([]Vec3(nil), m.Vertices...),
		quadrics:  make([]quadric, len(m.Vertices)),
		version:   make([]int, len(m.Vertices)),
		faces:     append([]Triangle(nil), m.Triangles...),
		faceOK:    make([]bool, len(m.Triangles)),
		vertFaces: make([]map[int]struct{}, len(m.Vertices)),
		liveFaces: len(m.Triangles),
	}
	for i := range d.vertFaces {
		d.vertFaces[i] = make(map[int]struct{})
	}
	for fi, t := range d.faces {
		d.faceOK[fi] = true
		for _, v := range t {
			d.vertFaces[v][fi] = struct{}{}
		}
		a, b, c := d.verts[t[0]], d.verts[t[1]], d.verts[t[2]]
		n := b.Sub(a).Cross(c.Sub(a))
		ln := n.Norm()
		if ln < 1e-15 {
			continue
		}
		n = n.Scale(1 / ln)
		off := -n.Dot(a)
		for _, v := range t {
			d.quadrics[v].addPlane(n.X, n.Y, n.Z, off)
		}
	}
	// Seed the queue with every edge once (u < v).
	seen := make(map[[2]int]struct{})
	for _, t := range d.faces {
		edges := [3][2]int{{t[0], t[1]}, {t[1], t[2]}, {t[2], t[0]}}
		for _, e := range edges {
			u, v := e[0], e[1]
			if u > v {
				u, v = v, u
			}
			key := [2]int{u, v}
			if _, dup := seen[key]; dup {
				continue
			}
			seen[key] = struct{}{}
			d.pushCollapse(u, v)
		}
	}
	return d
}

func (d *decimator) pushCollapse(u, v int) {
	var q quadric
	q = d.quadrics[u]
	q.add(&d.quadrics[v])
	pos, ok := q.optimal()
	if !ok {
		// Pick the best of endpoints and midpoint.
		mid := d.verts[u].Add(d.verts[v]).Scale(0.5)
		pos = mid
		best := q.eval(mid)
		if c := q.eval(d.verts[u]); c < best {
			best, pos = c, d.verts[u]
		}
		if c := q.eval(d.verts[v]); c < best {
			pos = d.verts[v]
		}
	}
	cost := q.eval(pos)
	if cost < 0 {
		cost = 0 // numeric noise on flat regions
	}
	heap.Push(&d.queue, &collapse{
		u: u, v: v, cost: cost, pos: pos,
		verU: d.version[u], verV: d.version[v],
	})
}

// step performs the cheapest valid collapse; it returns false when the queue
// is exhausted.
func (d *decimator) step() bool {
	for d.queue.Len() > 0 {
		c := heap.Pop(&d.queue).(*collapse)
		if c.verU != d.version[c.u] || c.verV != d.version[c.v] {
			continue // stale entry
		}
		if len(d.vertFaces[c.u]) == 0 || len(d.vertFaces[c.v]) == 0 {
			continue // dangling vertex
		}
		if !d.sharesEdge(c.u, c.v) {
			continue // edge disappeared through earlier collapses
		}
		if d.wouldFlip(c) {
			// Penalize instead of dropping forever: requeue with the
			// midpoint, which flips less often, unless already midpoint.
			mid := d.verts[c.u].Add(d.verts[c.v]).Scale(0.5)
			if mid != c.pos {
				c2 := *c
				c2.pos = mid
				c2.cost = c.cost + 1e-6
				heap.Push(&d.queue, &c2)
				continue
			}
			continue
		}
		d.apply(c)
		return true
	}
	return false
}

// sharesEdge reports whether u and v still share a live face.
func (d *decimator) sharesEdge(u, v int) bool {
	for fi := range d.vertFaces[u] {
		if _, ok := d.vertFaces[v][fi]; ok {
			return true
		}
	}
	return false
}

// wouldFlip reports whether moving u and v to the collapse position inverts
// any surviving incident face normal.
func (d *decimator) wouldFlip(c *collapse) bool {
	check := func(vertex, other int) bool {
		for fi := range d.vertFaces[vertex] {
			t := d.faces[fi]
			// Faces containing both endpoints disappear; skip them.
			if contains(t, c.u) && contains(t, c.v) {
				continue
			}
			var before, after [3]Vec3
			for k, vi := range t {
				before[k] = d.verts[vi]
				if vi == vertex {
					after[k] = c.pos
				} else {
					after[k] = d.verts[vi]
				}
			}
			n0 := before[1].Sub(before[0]).Cross(before[2].Sub(before[0]))
			n1 := after[1].Sub(after[0]).Cross(after[2].Sub(after[0]))
			if n0.Dot(n1) < 0 {
				return true
			}
		}
		return false
	}
	return check(c.u, c.v) || check(c.v, c.u)
}

func contains(t Triangle, v int) bool { return t[0] == v || t[1] == v || t[2] == v }

// apply performs the collapse: v merges into u at the optimal position.
func (d *decimator) apply(c *collapse) {
	u, v := c.u, c.v
	d.verts[u] = c.pos
	q := d.quadrics[v]
	d.quadrics[u].add(&q)
	d.version[u]++
	d.version[v]++

	// Kill faces containing both endpoints.
	for fi := range d.vertFaces[v] {
		t := d.faces[fi]
		if contains(t, u) {
			if d.faceOK[fi] {
				d.faceOK[fi] = false
				d.liveFaces--
			}
			for _, w := range t {
				delete(d.vertFaces[w], fi)
			}
		}
	}
	// Rewire v's remaining faces to u.
	for fi := range d.vertFaces[v] {
		t := &d.faces[fi]
		for k := range t {
			if t[k] == v {
				t[k] = u
			}
		}
		// The rewire may have created a degenerate face if u already
		// appeared; kill it.
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			if d.faceOK[fi] {
				d.faceOK[fi] = false
				d.liveFaces--
			}
			for _, w := range *t {
				delete(d.vertFaces[w], fi)
			}
			continue
		}
		d.vertFaces[u][fi] = struct{}{}
	}
	d.vertFaces[v] = make(map[int]struct{})

	// Refresh collapse candidates around u, visiting neighbours in a
	// deterministic order (map iteration order must not influence heap
	// insertion sequence, or same-seed runs would produce different
	// meshes).
	neighborSet := make(map[int]struct{})
	for fi := range d.vertFaces[u] {
		for _, w := range d.faces[fi] {
			if w != u {
				neighborSet[w] = struct{}{}
			}
		}
	}
	neighbors := make([]int, 0, len(neighborSet))
	for w := range neighborSet {
		neighbors = append(neighbors, w)
	}
	sort.Ints(neighbors)
	for _, w := range neighbors {
		a, b := u, w
		if a > b {
			a, b = b, a
		}
		d.pushCollapse(a, b)
	}
}

// extract builds the simplified mesh from the live faces.
func (d *decimator) extract() *Mesh {
	out := &Mesh{Vertices: d.verts}
	for fi, ok := range d.faceOK {
		if ok {
			out.Triangles = append(out.Triangles, d.faces[fi])
		}
	}
	return out.Compact()
}

// DecimateToRatio simplifies the mesh to ratio times its current triangle
// count (the paper's decimation ratio R). Ratio is clamped to [0, 1].
func DecimateToRatio(m *Mesh, ratio float64) (*Mesh, error) {
	if math.IsNaN(ratio) {
		return nil, fmt.Errorf("mesh: NaN decimation ratio")
	}
	if ratio < 0 {
		ratio = 0
	}
	if ratio > 1 {
		ratio = 1
	}
	return Decimate(m, int(math.Round(ratio*float64(m.TriangleCount()))))
}
