package mesh

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteOBJ serializes the mesh in Wavefront OBJ format (v/f records only),
// the interchange format AR asset pipelines consume.
func WriteOBJ(w io.Writer, m *Mesh) error {
	if err := m.Validate(); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %d vertices, %d triangles\n", len(m.Vertices), len(m.Triangles))
	for _, v := range m.Vertices {
		fmt.Fprintf(bw, "v %g %g %g\n", v.X, v.Y, v.Z)
	}
	for _, t := range m.Triangles {
		// OBJ indices are 1-based.
		fmt.Fprintf(bw, "f %d %d %d\n", t[0]+1, t[1]+1, t[2]+1)
	}
	return bw.Flush()
}

// ReadOBJ parses a Wavefront OBJ stream: v records become vertices, f
// records become triangles (faces with more than three vertices are fanned).
// Normals, texture coordinates, groups and materials are ignored; negative
// (relative) indices are supported.
func ReadOBJ(r io.Reader) (*Mesh, error) {
	m := &Mesh{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "v":
			if len(fields) < 4 {
				return nil, fmt.Errorf("mesh: obj line %d: vertex needs 3 coordinates", lineNo)
			}
			var coords [3]float64
			for i := 0; i < 3; i++ {
				val, err := strconv.ParseFloat(fields[i+1], 64)
				if err != nil {
					return nil, fmt.Errorf("mesh: obj line %d: %w", lineNo, err)
				}
				coords[i] = val
			}
			m.Vertices = append(m.Vertices, Vec3{X: coords[0], Y: coords[1], Z: coords[2]})
		case "f":
			if len(fields) < 4 {
				return nil, fmt.Errorf("mesh: obj line %d: face needs at least 3 vertices", lineNo)
			}
			idx := make([]int, 0, len(fields)-1)
			for _, f := range fields[1:] {
				// "v", "v/vt", "v//vn", "v/vt/vn" — the vertex index leads.
				head, _, _ := strings.Cut(f, "/")
				v, err := strconv.Atoi(head)
				if err != nil {
					return nil, fmt.Errorf("mesh: obj line %d: %w", lineNo, err)
				}
				switch {
				case v > 0:
					v-- // to 0-based
				case v < 0:
					v = len(m.Vertices) + v // relative index
				default:
					return nil, fmt.Errorf("mesh: obj line %d: zero face index", lineNo)
				}
				if v < 0 || v >= len(m.Vertices) {
					return nil, fmt.Errorf("mesh: obj line %d: face index %d out of range", lineNo, v)
				}
				idx = append(idx, v)
			}
			// Fan-triangulate polygons.
			for i := 1; i+1 < len(idx); i++ {
				tr := Triangle{idx[0], idx[i], idx[i+1]}
				if tr[0] == tr[1] || tr[1] == tr[2] || tr[0] == tr[2] {
					continue // skip degenerate slivers rather than failing
				}
				m.Triangles = append(m.Triangles, tr)
			}
		default:
			// vn, vt, g, o, s, usemtl, mtllib... all ignored.
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("mesh: reading obj: %w", err)
	}
	if len(m.Vertices) == 0 || len(m.Triangles) == 0 {
		return nil, fmt.Errorf("mesh: obj contains no usable geometry")
	}
	return m, m.Validate()
}
