// Package mesh implements the triangle-mesh substrate of the reproduction:
// mesh representation, procedural generators standing in for the paper's 3D
// assets (Table II), and quadric-error-metric edge-collapse decimation — the
// "virtual object decimation algorithm" that the paper's edge server runs
// (Fig. 3) to produce reduced-triangle-count versions of each object.
package mesh

import (
	"fmt"
	"math"
)

// Vec3 is a point or vector in model space.
type Vec3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product of v and w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Norm returns the Euclidean length of v.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Triangle indexes three vertices of a mesh, counter-clockwise when viewed
// from outside.
type Triangle [3]int

// Mesh is an indexed triangle mesh.
type Mesh struct {
	Vertices  []Vec3
	Triangles []Triangle
}

// TriangleCount returns the number of triangles.
func (m *Mesh) TriangleCount() int { return len(m.Triangles) }

// Clone returns a deep copy of the mesh.
func (m *Mesh) Clone() *Mesh {
	out := &Mesh{
		Vertices:  make([]Vec3, len(m.Vertices)),
		Triangles: make([]Triangle, len(m.Triangles)),
	}
	copy(out.Vertices, m.Vertices)
	copy(out.Triangles, m.Triangles)
	return out
}

// Validate checks structural invariants: triangle indices in range, no
// degenerate (repeated-index) triangles.
func (m *Mesh) Validate() error {
	n := len(m.Vertices)
	for i, t := range m.Triangles {
		for _, v := range t {
			if v < 0 || v >= n {
				return fmt.Errorf("mesh: triangle %d references vertex %d of %d", i, v, n)
			}
		}
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			return fmt.Errorf("mesh: triangle %d is degenerate: %v", i, t)
		}
	}
	return nil
}

// Bounds returns the axis-aligned bounding box (min, max) of the mesh. An
// empty mesh returns zero vectors.
func (m *Mesh) Bounds() (Vec3, Vec3) {
	if len(m.Vertices) == 0 {
		return Vec3{}, Vec3{}
	}
	lo, hi := m.Vertices[0], m.Vertices[0]
	for _, v := range m.Vertices[1:] {
		lo.X = math.Min(lo.X, v.X)
		lo.Y = math.Min(lo.Y, v.Y)
		lo.Z = math.Min(lo.Z, v.Z)
		hi.X = math.Max(hi.X, v.X)
		hi.Y = math.Max(hi.Y, v.Y)
		hi.Z = math.Max(hi.Z, v.Z)
	}
	return lo, hi
}

// SurfaceArea returns the total triangle area of the mesh.
func (m *Mesh) SurfaceArea() float64 {
	total := 0.0
	for _, t := range m.Triangles {
		a := m.Vertices[t[0]]
		b := m.Vertices[t[1]]
		c := m.Vertices[t[2]]
		total += b.Sub(a).Cross(c.Sub(a)).Norm() / 2
	}
	return total
}

// Centroid returns the vertex centroid of the mesh.
func (m *Mesh) Centroid() Vec3 {
	if len(m.Vertices) == 0 {
		return Vec3{}
	}
	var sum Vec3
	for _, v := range m.Vertices {
		sum = sum.Add(v)
	}
	return sum.Scale(1 / float64(len(m.Vertices)))
}

// Compact removes vertices not referenced by any triangle, remapping
// indices. It returns the same mesh for chaining.
func (m *Mesh) Compact() *Mesh {
	used := make([]bool, len(m.Vertices))
	for _, t := range m.Triangles {
		for _, v := range t {
			used[v] = true
		}
	}
	remap := make([]int, len(m.Vertices))
	var verts []Vec3
	for i, u := range used {
		if u {
			remap[i] = len(verts)
			verts = append(verts, m.Vertices[i])
		} else {
			remap[i] = -1
		}
	}
	for i, t := range m.Triangles {
		m.Triangles[i] = Triangle{remap[t[0]], remap[t[1]], remap[t[2]]}
	}
	m.Vertices = verts
	return m
}
