package mesh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUVSphereStructure(t *testing.T) {
	m, err := UVSphere(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	want := 2 * 16 * (8 - 1)
	if got := m.TriangleCount(); got != want {
		t.Fatalf("triangle count = %d, want %d", got, want)
	}
	// Closed surface: Euler characteristic V - E + F = 2, E = 3F/2.
	f := m.TriangleCount()
	v := len(m.Vertices)
	if chi := v - 3*f/2 + f; chi != 2 {
		t.Fatalf("Euler characteristic = %d, want 2", chi)
	}
	// All vertices on the unit sphere.
	for _, p := range m.Vertices {
		if math.Abs(p.Norm()-1) > 1e-9 {
			t.Fatalf("vertex %v not on unit sphere", p)
		}
	}
}

func TestUVSphereRejectsBadArgs(t *testing.T) {
	if _, err := UVSphere(1, 16); err == nil {
		t.Fatal("UVSphere(1,16) succeeded")
	}
	if _, err := UVSphere(8, 2); err == nil {
		t.Fatal("UVSphere(8,2) succeeded")
	}
}

func TestSphereWithTrianglesMeetsTarget(t *testing.T) {
	for _, target := range []int{10, 100, 1000, 5000, 20000} {
		m, err := SphereWithTriangles(target)
		if err != nil {
			t.Fatal(err)
		}
		if m.TriangleCount() < target {
			t.Errorf("sphere for target %d has %d triangles", target, m.TriangleCount())
		}
		if m.TriangleCount() > 3*target+100 {
			t.Errorf("sphere for target %d overshoots badly: %d", target, m.TriangleCount())
		}
	}
}

func TestTorus(t *testing.T) {
	m, err := Torus(0.3, 12, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.TriangleCount(), 2*12*8; got != want {
		t.Fatalf("torus triangles = %d, want %d", got, want)
	}
	f, v := m.TriangleCount(), len(m.Vertices)
	if chi := v - 3*f/2 + f; chi != 0 {
		t.Fatalf("torus Euler characteristic = %d, want 0", chi)
	}
}

func TestBlobDeterministicAndValid(t *testing.T) {
	a, err := Blob(2000, 7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Blob(2000, 7, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range a.Vertices {
		if a.Vertices[i] != b.Vertices[i] {
			t.Fatal("Blob is not deterministic for the same seed")
		}
	}
	c, err := Blob(2000, 8, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Vertices {
		if a.Vertices[i] != c.Vertices[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical blobs")
	}
}

func TestBox(t *testing.T) {
	m, err := Box(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if got, want := m.TriangleCount(), 12*4*4; got != want {
		t.Fatalf("box triangles = %d, want %d", got, want)
	}
	lo, hi := m.Bounds()
	if lo.X != -0.5 || hi.X != 0.5 {
		t.Fatalf("box bounds = %v..%v", lo, hi)
	}
}

func TestSurfaceAreaSphere(t *testing.T) {
	m, err := SphereWithTriangles(20000)
	if err != nil {
		t.Fatal(err)
	}
	// Inscribed polyhedron area approaches 4π from below.
	area := m.SurfaceArea()
	if area > 4*math.Pi || area < 4*math.Pi*0.98 {
		t.Fatalf("sphere surface area = %v, want just under %v", area, 4*math.Pi)
	}
}

func TestCompact(t *testing.T) {
	m := &Mesh{
		Vertices:  []Vec3{{0, 0, 0}, {9, 9, 9}, {1, 0, 0}, {0, 1, 0}},
		Triangles: []Triangle{{0, 2, 3}},
	}
	m.Compact()
	if len(m.Vertices) != 3 {
		t.Fatalf("compact left %d vertices, want 3", len(m.Vertices))
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDecimateReachesTarget(t *testing.T) {
	m, err := SphereWithTriangles(4000)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{2000, 1000, 400, 100} {
		out, err := Decimate(m, target)
		if err != nil {
			t.Fatal(err)
		}
		if err := out.Validate(); err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if out.TriangleCount() > target {
			t.Errorf("target %d: got %d triangles", target, out.TriangleCount())
		}
		if out.TriangleCount() < target/2 {
			t.Errorf("target %d: overshot down to %d triangles", target, out.TriangleCount())
		}
	}
}

func TestDecimatePreservesShape(t *testing.T) {
	m, err := SphereWithTriangles(4000)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decimate(m, 500)
	if err != nil {
		t.Fatal(err)
	}
	// All vertices should stay near the unit sphere.
	for _, p := range out.Vertices {
		if r := p.Norm(); r < 0.85 || r > 1.15 {
			t.Fatalf("decimated vertex at radius %v, want ~1", r)
		}
	}
	// Area should not collapse.
	if a := out.SurfaceArea(); a < 0.85*4*math.Pi {
		t.Fatalf("decimated sphere area = %v, want >= 85%% of 4π", a)
	}
}

func TestDecimateNoOpAtOrAboveCount(t *testing.T) {
	m, err := SphereWithTriangles(500)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Decimate(m, m.TriangleCount()+10)
	if err != nil {
		t.Fatal(err)
	}
	if out.TriangleCount() != m.TriangleCount() {
		t.Fatalf("no-op decimation changed count %d -> %d", m.TriangleCount(), out.TriangleCount())
	}
}

func TestDecimateRejectsNegativeTarget(t *testing.T) {
	m, _ := SphereWithTriangles(100)
	if _, err := Decimate(m, -1); err == nil {
		t.Fatal("negative target accepted")
	}
}

func TestDecimateMonotoneProperty(t *testing.T) {
	base, err := Blob(3000, 3, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	f := func(r1, r2 uint16) bool {
		// Map to ratios in [0.1, 1].
		a := 0.1 + 0.9*float64(r1)/65535
		b := 0.1 + 0.9*float64(r2)/65535
		if a > b {
			a, b = b, a
		}
		ma, err := DecimateToRatio(base, a)
		if err != nil {
			return false
		}
		mb, err := DecimateToRatio(base, b)
		if err != nil {
			return false
		}
		return ma.TriangleCount() <= mb.TriangleCount()+1 && ma.Validate() == nil && mb.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestVecOps(t *testing.T) {
	a := Vec3{1, 0, 0}
	b := Vec3{0, 1, 0}
	if c := a.Cross(b); c != (Vec3{0, 0, 1}) {
		t.Fatalf("cross = %v", c)
	}
	if d := a.Dot(b); d != 0 {
		t.Fatalf("dot = %v", d)
	}
	if s := a.Add(b).Sub(b); s != a {
		t.Fatalf("add/sub = %v", s)
	}
	if n := a.Scale(3).Norm(); n != 3 {
		t.Fatalf("norm = %v", n)
	}
}

func TestValidateCatchesBadMesh(t *testing.T) {
	bad := &Mesh{Vertices: []Vec3{{0, 0, 0}}, Triangles: []Triangle{{0, 0, 0}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("degenerate triangle passed validation")
	}
	oob := &Mesh{Vertices: []Vec3{{0, 0, 0}}, Triangles: []Triangle{{0, 1, 2}}}
	if err := oob.Validate(); err == nil {
		t.Fatal("out-of-range indices passed validation")
	}
}
