package mesh

import (
	"testing"
	"testing/quick"
)

// TestDecimateMonotoneInBudget checks the decimator's budget contract on
// random blob meshes and random target pairs: the output never exceeds the
// target, a smaller budget never yields more triangles than a larger one,
// and every output validates.
func TestDecimateMonotoneInBudget(t *testing.T) {
	f := func(seed uint64, roughRaw uint8, sizeRaw uint16, aRaw, bRaw uint16) bool {
		size := 60 + int(sizeRaw%300)
		rough := float64(roughRaw%50) / 100
		m, err := Blob(size, seed, rough)
		if err != nil {
			return false
		}
		n := m.TriangleCount()
		if n < 10 {
			return false
		}
		hi := 8 + int(aRaw)%(n-8)
		lo := 8 + int(bRaw)%(n-8)
		if lo > hi {
			lo, hi = hi, lo
		}
		outHi, err := Decimate(m, hi)
		if err != nil {
			return false
		}
		outLo, err := Decimate(m, lo)
		if err != nil {
			return false
		}
		if outHi.Validate() != nil || outLo.Validate() != nil {
			return false
		}
		if outHi.TriangleCount() > hi || outLo.TriangleCount() > lo {
			return false
		}
		return outLo.TriangleCount() <= outHi.TriangleCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
