package baselines

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/scenario"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

func buildSC1CF1(t *testing.T) *scenario.Built {
	t.Helper()
	built, err := scenario.SC1CF1().Build(42)
	if err != nil {
		t.Fatal(err)
	}
	return built
}

func TestSMQUsesStaticAllocationAndGivenRatio(t *testing.T) {
	built := buildSC1CF1(t)
	o, err := SMQ{HBORatio: 0.72}.Run(built.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if o.Ratio != 0.72 {
		t.Fatalf("SMQ ratio %v, want 0.72", o.Ratio)
	}
	// Static best on Pixel 7: mnist and the two model-metadata instances
	// prefer GPU; the rest prefer NNAPI (Table I).
	for id, want := range map[string]tasks.Resource{
		"mnist": tasks.GPU, "model-metadata": tasks.GPU, "model-metadata_2": tasks.GPU,
		"mobilenetDetv1": tasks.NNAPI, "mobilenetv1": tasks.NNAPI, "efficientclass-lite0": tasks.NNAPI,
	} {
		if o.Assignment[id] != want {
			t.Errorf("SMQ puts %s on %s, want %s", id, o.Assignment[id], want)
		}
	}
	if _, err := (SMQ{}).Run(built.Runtime); err == nil {
		t.Fatal("SMQ without ratio accepted")
	}
}

func TestSMLWalksDownToMatchLatency(t *testing.T) {
	built := buildSC1CF1(t)
	// Ask SML to match a moderately low epsilon: it must reduce the ratio
	// well below 1 (the paper's user study has SML at 0.2).
	o, err := SML{HBOEpsilon: 0.35, RMin: 0.1}.Run(built.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if o.Ratio >= 0.95 {
		t.Fatalf("SML kept ratio %v, expected reduction", o.Ratio)
	}
	if o.Ratio < 0.1 {
		t.Fatalf("SML went below RMin: %v", o.Ratio)
	}
	// An unreachable target bottoms out at RMin instead of looping forever.
	o2, err := SML{HBOEpsilon: 0.0, RMin: 0.1}.Run(built.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Ratio > 0.1001 {
		t.Fatalf("unreachable SML target should bottom out at RMin, got %v", o2.Ratio)
	}
}

func TestBNTKeepsFullQualityAndImprovesLatency(t *testing.T) {
	built := buildSC1CF1(t)
	rt := built.Runtime
	// Baseline: everything at its static-best allocation, full triangles.
	start, err := measure(rt, "start", staticAssignment(rt), 1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := BNT{Seed: 9}.Run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if o.Ratio != 1 {
		t.Fatalf("BNT ratio %v, want pinned at 1", o.Ratio)
	}
	if o.Quality < 0.99 {
		t.Fatalf("BNT quality %v, want full (no decimation)", o.Quality)
	}
	if o.Epsilon >= start.Epsilon {
		t.Errorf("BNT epsilon %.3f did not improve on static start %.3f", o.Epsilon, start.Epsilon)
	}
	if len(o.Assignment) != 6 {
		t.Fatalf("BNT assignment covers %d tasks", len(o.Assignment))
	}
}

func TestAllNPutsEverythingOnNNAPI(t *testing.T) {
	built := buildSC1CF1(t)
	o, err := AllN{}.Run(built.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	for id, r := range o.Assignment {
		if r != tasks.NNAPI {
			t.Errorf("AllN puts %s on %s", id, r)
		}
	}
	if o.Ratio != 1 || o.Quality < 0.99 {
		t.Fatalf("AllN must keep full quality: ratio %v quality %v", o.Ratio, o.Quality)
	}
}

func TestAllNFallsBackForUnsupportedModels(t *testing.T) {
	// deeplabv3 has no NNAPI support on Pixel 7; AllN must fall back.
	spec := scenario.Spec{
		Name:    "na-fallback",
		Device:  scenario.SC1CF1().Device,
		Objects: nil,
		Taskset: mustSet(t),
	}
	built, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	o, err := AllN{}.Run(built.Runtime)
	if err != nil {
		t.Fatal(err)
	}
	if o.Assignment["deeplabv3"] == tasks.NNAPI {
		t.Fatal("AllN assigned deeplabv3 to unsupported NNAPI")
	}
	if o.Assignment["mobilenetv1"] != tasks.NNAPI {
		t.Fatal("AllN should keep supported models on NNAPI")
	}
}

func mustSet(t *testing.T) tasks.Set {
	t.Helper()
	s, err := tasks.Expand("na-fallback", []tasks.ModelCount{
		{Model: tasks.DeepLabV3, Count: 1},
		{Model: tasks.MobileNetV1, Count: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFigure5Shape drives HBO and all four baselines on SC1-CF1 and checks
// the paper's headline comparison (Figs. 5b/5c): HBO achieves lower latency
// than every baseline, SMQ matches its quality, SML matches its latency at
// lower quality, and BNT/AllN keep full quality at much higher latency.
func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full baseline comparison is slow")
	}
	runHBO := func() (ratio, eps, q float64) {
		built := buildSC1CF1(t)
		res, err := core.RunActivation(built.Runtime, core.DefaultConfig(), sim.NewRNG(42))
		if err != nil {
			t.Fatal(err)
		}
		return res.Ratio, res.Epsilon, res.Quality
	}
	ratio, hboEps, hboQ := runHBO()

	fresh := func() *scenario.Built { return buildSC1CF1(t) }
	smq, err := SMQ{HBORatio: ratio}.Run(fresh().Runtime)
	if err != nil {
		t.Fatal(err)
	}
	sml, err := SML{HBOEpsilon: hboEps, RMin: 0.1}.Run(fresh().Runtime)
	if err != nil {
		t.Fatal(err)
	}
	bnt, err := BNT{Seed: 5}.Run(fresh().Runtime)
	if err != nil {
		t.Fatal(err)
	}
	alln, err := AllN{}.Run(fresh().Runtime)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("HBO : ratio=%.2f eps=%.3f Q=%.3f", ratio, hboEps, hboQ)
	for _, o := range []Outcome{smq, sml, bnt, alln} {
		t.Logf("%-4s: ratio=%.2f eps=%.3f Q=%.3f", o.Name, o.Ratio, o.Epsilon, o.Quality)
	}
	if smq.Epsilon <= hboEps {
		t.Errorf("SMQ eps %.3f should exceed HBO %.3f", smq.Epsilon, hboEps)
	}
	if bnt.Epsilon <= hboEps {
		t.Errorf("BNT eps %.3f should exceed HBO %.3f", bnt.Epsilon, hboEps)
	}
	if alln.Epsilon <= bnt.Epsilon {
		t.Errorf("AllN eps %.3f should exceed BNT %.3f", alln.Epsilon, bnt.Epsilon)
	}
	if sml.Quality >= hboQ {
		t.Errorf("SML quality %.3f should be below HBO %.3f at matched latency", sml.Quality, hboQ)
	}
}
