// Package baselines implements the four state-of-the-art baselines HBO is
// evaluated against in §V of the paper: the static allocators SMQ and SML,
// the latency-only Bayesian controller BNT, and the all-NNAPI policy AllN.
// Each baseline decides a per-task allocation and a total triangle ratio for
// a runtime, behind a common Controller interface, so the Figure 5 / Table
// IV comparison drives them uniformly.
package baselines

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/alloc"
	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Outcome is a baseline's chosen configuration and measured performance.
type Outcome struct {
	Name       string
	Assignment alloc.Assignment
	Ratio      float64
	Quality    float64
	Epsilon    float64
	// PerTaskLatency is the measured mean latency per task.
	PerTaskLatency map[string]float64
}

// Controller decides and enforces a configuration for a runtime, then
// measures it.
type Controller interface {
	// Name returns the paper's baseline label.
	Name() string
	// Run enforces the baseline's policy and measures the resulting steady
	// state.
	Run(rt *core.Runtime) (Outcome, error)
}

// settleMS and windowMS are the common measurement protocol for all
// baselines, matching HBO's control-period measurement.
const (
	settleMS = 1000
	windowMS = 5000
)

// measure enforces an allocation and ratio, lets the system settle, and
// measures a window.
func measure(rt *core.Runtime, name string, a alloc.Assignment, ratio float64) (Outcome, error) {
	if err := rt.ApplyAllocation(a); err != nil {
		return Outcome{}, fmt.Errorf("baselines: %s: %w", name, err)
	}
	if err := alloc.DistributeTriangles(rt.Scene.Objects(), ratio); err != nil {
		return Outcome{}, fmt.Errorf("baselines: %s: %w", name, err)
	}
	rt.SyncRenderLoad()
	rt.Sys.RunFor(settleMS)
	m, err := rt.Measure(windowMS)
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{
		Name:           name,
		Assignment:     cloneAssignment(a),
		Ratio:          ratio,
		Quality:        m.Quality,
		Epsilon:        m.Epsilon,
		PerTaskLatency: m.PerTaskLatency,
	}, nil
}

func cloneAssignment(a alloc.Assignment) alloc.Assignment {
	out := make(alloc.Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// staticAssignment maps every task to its isolation-best resource — the
// shared policy of SMQ and SML.
func staticAssignment(rt *core.Runtime) alloc.Assignment {
	out := make(alloc.Assignment, len(rt.Taskset.Tasks))
	for _, task := range rt.Taskset.Tasks {
		out[task.ID()] = rt.Profile.Best[task.ID()]
	}
	return out
}

// SMQ (Static Match Quality) keeps the static isolation-best allocation and
// uses the same triangle ratio as HBO, isolating the value of HBO's dynamic
// reallocation at equal virtual-object quality.
type SMQ struct {
	// HBORatio is the triangle ratio the HBO run under comparison chose.
	HBORatio float64
}

var _ Controller = SMQ{}

// Name implements Controller.
func (SMQ) Name() string { return "SMQ" }

// Run implements Controller.
func (b SMQ) Run(rt *core.Runtime) (Outcome, error) {
	if b.HBORatio <= 0 || b.HBORatio > 1 {
		return Outcome{}, fmt.Errorf("baselines: SMQ needs HBO's ratio in (0,1], got %v", b.HBORatio)
	}
	return measure(rt, "SMQ", staticAssignment(rt), b.HBORatio)
}

// SML (Static Match Latency) keeps the static allocation and lowers the
// total triangle ratio until the measured average latency approaches HBO's,
// isolating the quality cost of forgoing dynamic reallocation.
type SML struct {
	// HBOEpsilon is the normalized latency the HBO run under comparison
	// achieved.
	HBOEpsilon float64
	// RMin bounds the search from below (Constraint 10).
	RMin float64
}

var _ Controller = SML{}

// Name implements Controller.
func (SML) Name() string { return "SML" }

// Run implements Controller: walk the ratio down a fixed grid (the paper
// "gradually reduces" it) until the measured ε is within 10% of HBO's or
// the floor is reached.
func (b SML) Run(rt *core.Runtime) (Outcome, error) {
	if b.HBOEpsilon < 0 {
		return Outcome{}, fmt.Errorf("baselines: SML needs HBO's epsilon, got %v", b.HBOEpsilon)
	}
	rmin := b.RMin
	if rmin <= 0 {
		rmin = 0.1
	}
	static := staticAssignment(rt)
	target := b.HBOEpsilon * 1.10
	var last Outcome
	for ratio := 1.0; ; ratio -= 0.1 {
		if ratio < rmin {
			ratio = rmin
		}
		o, err := measure(rt, "SML", static, ratio)
		if err != nil {
			return Outcome{}, err
		}
		last = o
		if o.Epsilon <= target || ratio <= rmin {
			return last, nil
		}
	}
}

// BNT (Bayesian No Triangle) runs the same Bayesian/heuristic allocation
// machinery as HBO but never regulates the triangle ratio (x pinned at 1)
// and optimizes latency alone.
type BNT struct {
	// Samples and Iterations mirror HBO's activation budget.
	Samples    int
	Iterations int
	// Seed makes the run reproducible.
	Seed uint64
}

var _ Controller = BNT{}

// Name implements Controller.
func (BNT) Name() string { return "BNT" }

// Run implements Controller.
func (b BNT) Run(rt *core.Runtime) (Outcome, error) {
	samples := b.Samples
	if samples == 0 {
		samples = 5
	}
	iters := b.Iterations
	if iters == 0 {
		iters = 15
	}
	// BNT's domain is the allocation simplex only; the ratio input is
	// pinned by using RMin = 1 so every sampled x is exactly 1.
	dom := bo.Domain{N: tasks.NumResources, RMin: 1}
	cfg := bo.DefaultConfig()
	cfg.InitSamples = samples
	opt, err := bo.NewOptimizer(dom, cfg, sim.NewRNG(b.Seed))
	if err != nil {
		return Outcome{}, err
	}
	var best Outcome
	bestCost := math.Inf(1)
	for i := 0; i < samples+iters; i++ {
		point, err := opt.Next()
		if err != nil {
			return Outcome{}, err
		}
		counts, err := alloc.Counts(point[:tasks.NumResources], len(rt.Taskset.Tasks))
		if err != nil {
			return Outcome{}, err
		}
		assignment, err := alloc.Assign(counts, rt.Profile, rt.TaskIDs())
		if err != nil {
			return Outcome{}, err
		}
		if err := rt.ApplyAllocation(assignment); err != nil {
			return Outcome{}, err
		}
		if err := alloc.DistributeTriangles(rt.Scene.Objects(), 1); err != nil {
			return Outcome{}, err
		}
		rt.SyncRenderLoad()
		rt.Sys.RunFor(500)
		m, err := rt.Measure(2000)
		if err != nil {
			return Outcome{}, err
		}
		// Cost is the average latency alone (the paper: "its BO's cost
		// function solely incorporates the average latency").
		cost := m.Epsilon
		if err := opt.Observe(point, cost); err != nil {
			return Outcome{}, err
		}
		if cost < bestCost {
			bestCost = cost
			best = Outcome{Name: "BNT", Assignment: cloneAssignment(assignment), Ratio: 1}
		}
	}
	// Re-measure the winning configuration over the common window.
	return measure(rt, "BNT", best.Assignment, 1)
}

// AllN allocates every task to the NNAPI delegate (Android's default
// operator-level scheduler) and renders objects at full quality. Tasks whose
// model does not support NNAPI (Table I "NA") fall back to their best
// supported resource, as the Android runtime does.
type AllN struct{}

var _ Controller = AllN{}

// Name implements Controller.
func (AllN) Name() string { return "AllN" }

// Run implements Controller.
func (AllN) Run(rt *core.Runtime) (Outcome, error) {
	a := make(alloc.Assignment, len(rt.Taskset.Tasks))
	dev := rt.Sys.Device()
	for _, task := range rt.Taskset.Tasks {
		mp, err := dev.Model(task.Model)
		if err != nil {
			return Outcome{}, err
		}
		if mp.Supported(tasks.NNAPI) {
			a[task.ID()] = tasks.NNAPI
		} else {
			a[task.ID()] = rt.Profile.Best[task.ID()]
		}
	}
	return measure(rt, "AllN", a, 1)
}
