// Fixture for leaklint: goroutine launches with and without a reachable
// cancellation tie, and timer churn in loops. The package is named loadgen
// so it lands in leaklint's scope.
package loadgen

import (
	"context"
	"sync"
	"time"
)

// orphan launches work nothing can stop.
func orphan() {
	go func() { // want "goroutine launched with no cancellation tie"
		for {
			time.Sleep(time.Second)
		}
	}()
}

func pump() {
	for {
		time.Sleep(time.Millisecond)
	}
}

// orphanNamed: the same, through a same-package function.
func orphanNamed() {
	go pump() // want "goroutine launched with no cancellation tie"
}

// retryLoop allocates a timer per iteration.
func retryLoop(tries int) {
	for i := 0; i < tries; i++ {
		<-time.After(time.Millisecond) // want "time.After in a loop"
	}
}

// withCtx: the context in the closure is the tie.
func withCtx(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// withDone: a done channel is the tie.
func withDone(done chan struct{}) {
	go func() {
		<-done
	}()
}

// withWG: a WaitGroup is the tie.
func withWG() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}

func worker(ch chan int) {
	for range ch {
	}
}

// withArg: a channel handed to the goroutine at launch is the tie.
func withArg(ch chan int) {
	go worker(ch)
}

// single: time.After outside a loop is the ordinary one-shot idiom.
func single() {
	<-time.After(time.Millisecond)
}
