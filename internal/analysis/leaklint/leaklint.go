// Package leaklint flags goroutines launched with no reachable
// cancellation tie and timer churn in loops, scoped to the serving and
// load-generation packages where an orphaned goroutine survives for the
// life of a fleet process. Two rules:
//
//   - every `go` statement must launch work that can be told to stop: the
//     launched closure (or the body of the same-package function it
//     names, or the call's arguments) must reach a context.Context, a
//     channel (done/queue/semaphore — any channel is a tie, since closing
//     or draining it bounds the goroutine), a *sync.WaitGroup, or a
//     *sync.Cond. A goroutine with none of these can only be abandoned.
//   - time.After inside a for/range body allocates a timer per iteration
//     that cannot be collected until it fires — the canonical slow leak in
//     retry loops; hoist a time.NewTimer/NewTicker instead.
//
// Cross-package launches (e.g. `go srv.Serve(l)`) are assumed tied: their
// bodies are out of reach, and flagging them would punish the stdlib.
// Test files are exempt — test goroutines die with the test process.
package leaklint

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "leaklint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag goroutine launches with no cancellation tie and " +
		"time.After inside loops",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// scope lists the package basenames leaklint applies to: the session
// service and its store, the edge client/server, and the long-running
// load/experiment harnesses.
var scope = map[string]bool{
	"sessiond":    true,
	"snapstore":   true,
	"wire":        true,
	"edge":        true,
	"loadgen":     true,
	"experiments": true,
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) (any, error) {
	if !scope[pathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Same-package function bodies, for `go s.worker(sh)`-style launches.
	decls := map[*types.Func]*ast.FuncDecl{}
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		d := n.(*ast.FuncDecl)
		if d.Body == nil {
			return
		}
		if fn, ok := pass.TypesInfo.Defs[d.Name].(*types.Func); ok {
			decls[fn] = d
		}
	})

	ins.Preorder([]ast.Node{(*ast.GoStmt)(nil), (*ast.ForStmt)(nil), (*ast.RangeStmt)(nil)}, func(n ast.Node) {
		if lintutil.IsTestFile(pass.Fset, n.Pos()) {
			return
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			checkGo(pass, decls, n)
		case *ast.ForStmt:
			checkLoopTimers(pass, n.Body)
		case *ast.RangeStmt:
			checkLoopTimers(pass, n.Body)
		}
	})
	return nil, nil
}

// checkGo reports a goroutine launch with no cancellation tie reachable
// from the launch site.
func checkGo(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt) {
	// The arguments are evaluated at launch and handed to the goroutine:
	// a channel or context argument is a tie.
	for _, arg := range g.Call.Args {
		if exprHasTie(pass, arg) {
			return
		}
	}
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		if nodeHasTie(pass, fun) {
			return
		}
	default:
		fn, _ := typeutil.Callee(pass.TypesInfo, g.Call).(*types.Func)
		if fn == nil {
			return // dynamic call: nothing to inspect, assume tied
		}
		decl, ok := decls[fn]
		if !ok {
			return // cross-package: body out of reach, assume tied
		}
		if nodeHasTie(pass, decl.Body) {
			return
		}
	}
	lintutil.Report(pass, g, name,
		"goroutine launched with no cancellation tie: no context, channel, WaitGroup, "+
			"or Cond is reachable from the closure, so nothing can stop or await it")
}

// nodeHasTie walks a function body or literal looking for any expression
// whose type ties the goroutine to a canceler.
func nodeHasTie(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		e, ok := m.(ast.Expr)
		if !ok {
			return true
		}
		if exprHasTie(pass, e) {
			found = true
			return false
		}
		return true
	})
	return found
}

// exprHasTie reports whether e's type is a cancellation primitive: a
// channel, a context.Context, a sync.WaitGroup, or a sync.Cond (possibly
// behind a pointer).
func exprHasTie(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "context.Context", "sync.WaitGroup", "sync.Cond":
		return true
	}
	return false
}

// checkLoopTimers flags time.After calls in a loop body.
func checkLoopTimers(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.ForStmt, *ast.RangeStmt:
			// Nested loops report at their own visit; closures run elsewhere.
			return false
		case *ast.CallExpr:
			fn, _ := typeutil.Callee(pass.TypesInfo, n).(*types.Func)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "After" {
				lintutil.Report(pass, n, name,
					"time.After in a loop allocates a timer per iteration that lives until it fires; "+
						"hoist a time.NewTimer or time.NewTicker outside the loop")
			}
		}
		return true
	})
}
