package leaklint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/leaklint"
)

func TestLeaklint(t *testing.T) {
	analyzertest.Run(t, "testdata", leaklint.Analyzer, "loadgen")
}
