// Package ctxlint enforces the context-threading discipline PR 1
// established for the edge offloading path: library code must accept and
// propagate the caller's context so cancellation, per-attempt timeouts, and
// graceful shutdown compose. Two rules:
//
//   - context.Background() / context.TODO() are forbidden in library
//     packages (anything that is not package main and not a test file) —
//     a fresh root context there silently detaches the call tree from the
//     caller's deadline;
//   - HTTP requests must be built with a context: http.NewRequest and the
//     context-less convenience helpers (http.Get, http.Post, client.Get,
//     ...) are flagged everywhere, tests excepted.
//
// Deliberate roots — e.g. the context-less convenience wrappers of the edge
// client's public API — carry `//lint:allow ctxlint <reason>`.
package ctxlint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "ctxlint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid fresh root contexts in library packages and HTTP " +
		"requests built without a context",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// contextlessHTTP lists net/http package functions and *http.Client methods
// that build a request with context.Background under the hood.
var contextlessHTTP = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true, "NewRequest": true,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	isMain := pass.Pkg.Name() == "main"

	ins.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if lintutil.IsTestFile(pass.Fset, call.Pos()) {
			return
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return
		}
		switch fn.Pkg().Path() {
		case "context":
			if !isMain && (fn.Name() == "Background" || fn.Name() == "TODO") {
				lintutil.Report(pass, call, name,
					"context.%s() in library package %s: thread the caller's context "+
						"instead of detaching from its deadline and cancellation",
					fn.Name(), pass.Pkg.Name())
			}
		case "net/http":
			if !contextlessHTTP[fn.Name()] {
				return
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return
			}
			if sig.Recv() != nil && !isHTTPClient(sig.Recv().Type()) {
				return
			}
			lintutil.Report(pass, call, name,
				"http.%s builds a request without a context: use "+
					"http.NewRequestWithContext so timeouts and shutdown propagate", fn.Name())
		}
	})
	return nil, nil
}

func isHTTPClient(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Client"
}
