// Package lib is a library-package fixture for ctxlint: fresh root
// contexts and context-less HTTP constructors are flagged; threading the
// caller's context is not.
package lib

import (
	"context"
	"net/http"
)

func freshRoots() {
	_ = context.Background() // want `context\.Background\(\) in library package lib`
	_ = context.TODO()       // want `context\.TODO\(\) in library package lib`
}

func threaded(ctx context.Context) (*http.Request, error) {
	return http.NewRequestWithContext(ctx, http.MethodGet, "http://e", nil)
}

func contextlessRequests(c *http.Client) {
	_, _ = http.NewRequest(http.MethodGet, "http://e", nil) // want `http\.NewRequest builds a request without a context`
	_, _ = http.Get("http://e")                             // want `http\.Get builds a request without a context`
	_, _ = c.Post("http://e", "text/plain", nil)            // want `http\.Post builds a request without a context`
}

// Convenience wrappers that deliberately root a context carry a
// suppression with the reason inline.
func convenience() context.Context {
	//lint:allow ctxlint public convenience wrapper mirrors the Context variant
	return context.Background()
}

// derived contexts off a caller's ctx are fine.
func derived(ctx context.Context) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
