// Package main: process entry points own their root context, so
// context.Background is legal here — but HTTP without a context still is
// not.
package main

import (
	"context"
	"net/http"
)

func main() {
	ctx := context.Background()
	_ = ctx
	_, _ = http.Get("http://e") // want `http\.Get builds a request without a context`
}
