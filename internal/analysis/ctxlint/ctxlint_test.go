package ctxlint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/ctxlint"
)

func TestCtxlint(t *testing.T) {
	analyzertest.Run(t, "testdata", ctxlint.Analyzer, "lib", "mainpkg")
}
