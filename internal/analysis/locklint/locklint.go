// Package locklint enforces the session tier's locking contract with a
// flow-sensitive analysis over each function's control-flow graph (the
// vendored x/tools go/cfg — the closest offline stand-in for an SSA pass).
// It applies to the lock-striped serving packages (sessiond, snapstore),
// where a blocking operation inside a shard or store critical section
// stalls every session that hashes to the same stripe. Three rules:
//
//   - no blocking operation while a mutex is held: network/file I/O,
//     channel sends/receives (select-with-default excepted), time.Sleep,
//     WaitGroup/Cond waits, and SessionStore/FS/File method calls are
//     flagged when the must-held set is non-empty. Calls into
//     package-local functions are resolved through blocking summaries, so
//     a helper that hides a Store.Put still trips the caller's critical
//     section.
//   - lock/unlock path symmetry: a function must not return with a lock
//     it acquired still held (deferred unlocks count as released), and
//     must not unlock a mutex no path has locked.
//   - held state is tracked per mutex expression (sh.mu, sess.mu, ...) by
//     must/may dataflow to a fixpoint, so branches, loops, and early
//     returns are all modeled rather than pattern-matched.
//
// Two escape hatches, both explicit in source: a mutex field declared with
// a `//hbo:lockleaf <reason>` comment is an intentional serialization point
// for blocking work (the snapstore log mutex, the client's single-flight
// dial mutex) — blocking under it is exempt, while lock/unlock balance is
// still enforced; and the handful of store calls made inside shard critical
// sections (the store is a deliberate lock leaf — DESIGN.md §16) carry
// reasoned `//lint:allow locklint` suppressions. Anything new fails the
// build.
package locklint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/cfg"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "locklint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag blocking operations under a held shard/store mutex and " +
		"lock/unlock path mismatches in the session-tier packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// LeafDirective marks a mutex field whose critical sections intentionally
// serialize blocking work: //hbo:lockleaf <reason>.
const LeafDirective = "hbo:lockleaf"

// scope lists the package basenames subject to locklint: the lock-striped
// session service and its append-log store, where every critical section
// sits on the multi-session serving path.
var scope = map[string]bool{
	"sessiond":  true,
	"snapstore": true,
}

// blockingIfaces names interface types whose every method is assumed to
// block: the snapshot store and the filesystem seam it writes through.
var blockingIfaces = map[string]bool{
	"SessionStore": true,
	"FS":           true,
	"File":         true,
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// event is one lock-relevant action in source order within a CFG node.
type event struct {
	kind eventKind
	tok  string // normalized mutex expression, e.g. "sh.mu"
	pos  token.Pos
	desc string // human description for blocking events
}

type eventKind uint8

const (
	evLock eventKind = iota
	evUnlock
	evDeferUnlock
	evBlock
)

func run(pass *analysis.Pass) (any, error) {
	if !scope[pathBase(pass.Pkg.Path())] {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	a := &analyzer{
		pass:      pass,
		decls:     map[*types.Func]*ast.FuncDecl{},
		summaries: map[*types.Func]string{},
		nonBlock:  map[token.Pos]bool{},
		leafVars:  map[types.Object]bool{},
		leafToks:  map[string]bool{},
	}
	a.collectLeafVars()

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.SelectStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body == nil || lintutil.IsTestFile(pass.Fset, n.Pos()) {
				return
			}
			if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
				a.decls[fn] = n
			}
		case *ast.SelectStmt:
			// Channel operations in a select that has a default clause are
			// non-blocking by construction; remember their positions.
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				return
			}
			for _, c := range n.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					switch m := m.(type) {
					case *ast.SendStmt:
						a.nonBlock[m.Arrow] = true
					case *ast.UnaryExpr:
						if m.Op == token.ARROW {
							a.nonBlock[m.OpPos] = true
						}
					}
					return true
				})
			}
		}
	})

	a.buildSummaries()
	// Deterministic function order: by source position.
	fns := make([]*types.Func, 0, len(a.decls))
	for fn := range a.decls {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, j int) bool { return a.decls[fns[i]].Pos() < a.decls[fns[j]].Pos() })
	for _, fn := range fns {
		a.checkFunc(a.decls[fn])
	}
	return nil, nil
}

type analyzer struct {
	pass      *analysis.Pass
	decls     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func]string // fn -> why it blocks ("" absent)
	nonBlock  map[token.Pos]bool     // select-with-default channel ops
	leafVars  map[types.Object]bool  // //hbo:lockleaf-annotated mutex fields
	leafToks  map[string]bool        // normalized exprs resolving to leaf vars
}

// collectLeafVars records every struct field or variable declared with an
// //hbo:lockleaf comment. The directive requires a reason, same as
// //lint:allow: an unexplained exemption is itself a finding.
func (a *analyzer) collectLeafVars() {
	mark := func(names []*ast.Ident, groups ...*ast.CommentGroup) {
		directive := false
		for _, cg := range groups {
			if cg == nil {
				continue
			}
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if !strings.HasPrefix(text, LeafDirective) {
					continue
				}
				if len(strings.Fields(strings.TrimPrefix(text, LeafDirective))) == 0 {
					a.pass.Reportf(c.Pos(), "%s directive needs a reason: say why blocking under this mutex is intended", LeafDirective)
					continue
				}
				directive = true
			}
		}
		if !directive {
			return
		}
		for _, id := range names {
			if obj := a.pass.TypesInfo.Defs[id]; obj != nil {
				a.leafVars[obj] = true
			}
		}
	}
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				mark(n.Names, n.Doc, n.Comment)
			case *ast.ValueSpec:
				mark(n.Names, n.Doc, n.Comment)
			}
			return true
		})
	}
}

// isLeafExpr reports whether a mutex receiver expression resolves to an
// //hbo:lockleaf-annotated field or variable.
func (a *analyzer) isLeafExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		return a.leafVars[a.pass.TypesInfo.ObjectOf(e)]
	case *ast.SelectorExpr:
		return a.leafVars[a.pass.TypesInfo.ObjectOf(e.Sel)]
	case *ast.ParenExpr:
		return a.isLeafExpr(e.X)
	case *ast.StarExpr:
		return a.isLeafExpr(e.X)
	}
	return false
}

// buildSummaries computes, to a fixpoint, which package-local functions
// contain a blocking operation (directly or through package-local calls),
// so a critical section cannot hide I/O behind one level of helper.
func (a *analyzer) buildSummaries() {
	for {
		changed := false
		for fn, decl := range a.decls {
			if a.summaries[fn] != "" {
				continue
			}
			if reason := a.scanBlocks(decl); reason != "" {
				a.summaries[fn] = reason
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// scanBlocks reports the first blocking operation found in decl's body
// (excluding nested function literals, which run on other goroutines or at
// defer time), or "".
func (a *analyzer) scanBlocks(decl *ast.FuncDecl) string {
	reason := ""
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if desc, ok := a.blockingCall(n); ok {
				reason = desc
				return false
			}
		case *ast.SendStmt:
			if !a.nonBlock[n.Arrow] {
				reason = "channel send"
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !a.nonBlock[n.OpPos] {
				reason = "channel receive"
				return false
			}
		case *ast.RangeStmt:
			if t := a.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					reason = "channel-range receive"
					return false
				}
			}
		}
		return true
	}
	ast.Inspect(decl.Body, visit)
	return reason
}

// blockingCall classifies one call expression: a known blocking callee, a
// blocking interface method, or a package-local function whose summary says
// it blocks.
func (a *analyzer) blockingCall(call *ast.CallExpr) (string, bool) {
	fn := typeutil.Callee(a.pass.TypesInfo, call)
	callee, ok := fn.(*types.Func)
	if !ok || callee.Pkg() == nil {
		return "", false
	}
	if desc, ok := stdBlocking(callee); ok {
		return desc, true
	}
	sig, _ := callee.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if named, ok := recvNamed(sig.Recv().Type()); ok {
			if _, isIface := named.Underlying().(*types.Interface); isIface && blockingIfaces[named.Obj().Name()] {
				return fmt.Sprintf("%s.%s (store/file I/O)", named.Obj().Name(), callee.Name()), true
			}
		}
	}
	if callee.Pkg() == a.pass.Pkg {
		if why := a.summaries[callee]; why != "" {
			return fmt.Sprintf("call to %s (%s)", callee.Name(), why), true
		}
	}
	return "", false
}

// stdBlocking recognizes standard-library calls that park the goroutine or
// perform I/O.
func stdBlocking(fn *types.Func) (string, bool) {
	pkg := fn.Pkg().Path()
	recvName := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := recvNamed(sig.Recv().Type()); ok {
			recvName = named.Obj().Name()
		}
	}
	switch pkg {
	case "time":
		if recvName == "" && fn.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "os":
		if recvName == "" {
			switch fn.Name() {
			case "ReadFile", "WriteFile", "Open", "OpenFile", "Create", "Remove",
				"RemoveAll", "Rename", "Stat", "ReadDir", "Mkdir", "MkdirAll", "Truncate":
				return "os." + fn.Name() + " (file I/O)", true
			}
		}
		if recvName == "File" {
			switch fn.Name() {
			case "Read", "ReadAt", "Write", "WriteAt", "Sync", "Close", "Seek", "Truncate":
				return "(*os.File)." + fn.Name() + " (file I/O)", true
			}
		}
	case "net":
		if recvName == "" {
			switch fn.Name() {
			case "Dial", "DialTimeout", "Listen":
				return "net." + fn.Name() + " (network I/O)", true
			}
		}
		if recvName == "Conn" || recvName == "TCPConn" {
			switch fn.Name() {
			case "Read", "Write", "Close":
				return "net conn " + fn.Name() + " (network I/O)", true
			}
		}
	case "net/http":
		switch fn.Name() {
		case "Get", "Post", "PostForm", "Head", "Do":
			if recvName == "" || recvName == "Client" {
				return "http " + fn.Name() + " (network I/O)", true
			}
		}
	case "sync":
		if recvName == "WaitGroup" && fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait", true
		}
		if recvName == "Cond" && fn.Name() == "Wait" {
			return "sync.Cond.Wait", true
		}
	}
	return "", false
}

func recvNamed(t types.Type) (*types.Named, bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// mutexMethod classifies a call as (*sync.Mutex)/(*sync.RWMutex) Lock or
// Unlock family, returning the normalized receiver expression.
func (a *analyzer) mutexMethod(call *ast.CallExpr) (tok, method string, ok bool) {
	sel, selOK := call.Fun.(*ast.SelectorExpr)
	fn, fnOK := typeutil.Callee(a.pass.TypesInfo, call).(*types.Func)
	if !selOK || !fnOK || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "", "", false
	}
	named, nok := recvNamed(sig.Recv().Type())
	if !nok {
		return "", "", false
	}
	if n := named.Obj().Name(); n != "Mutex" && n != "RWMutex" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		tok = types.ExprString(sel.X)
		if a.isLeafExpr(sel.X) {
			a.leafToks[tok] = true
		}
		return tok, fn.Name(), true
	}
	return "", "", false
}

// events lists the lock-relevant actions of one CFG node in source order.
// Function literals are skipped (their bodies run elsewhere), except that a
// `defer mu.Unlock()` or a deferred closure unlocking at its top level
// registers the release.
func (a *analyzer) events(n ast.Node) []event {
	var evs []event
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			if tok, m, ok := a.mutexMethod(n.Call); ok && (m == "Unlock" || m == "RUnlock") {
				evs = append(evs, event{kind: evDeferUnlock, tok: tok, pos: n.Pos()})
				return false
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				for _, st := range lit.Body.List {
					es, ok := st.(*ast.ExprStmt)
					if !ok {
						continue
					}
					if call, ok := es.X.(*ast.CallExpr); ok {
						if tok, m, ok := a.mutexMethod(call); ok && (m == "Unlock" || m == "RUnlock") {
							evs = append(evs, event{kind: evDeferUnlock, tok: tok, pos: n.Pos()})
						}
					}
				}
			}
			return false
		case *ast.CallExpr:
			if tok, m, ok := a.mutexMethod(n); ok {
				switch m {
				case "Lock", "RLock":
					evs = append(evs, event{kind: evLock, tok: tok, pos: n.Pos()})
				case "Unlock", "RUnlock":
					evs = append(evs, event{kind: evUnlock, tok: tok, pos: n.Pos()})
				}
				return true
			}
			if desc, ok := a.blockingCall(n); ok {
				evs = append(evs, event{kind: evBlock, pos: n.Pos(), desc: desc})
			}
		case *ast.SendStmt:
			if !a.nonBlock[n.Arrow] {
				evs = append(evs, event{kind: evBlock, pos: n.Pos(), desc: "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !a.nonBlock[n.OpPos] {
				evs = append(evs, event{kind: evBlock, pos: n.Pos(), desc: "channel receive"})
			}
		}
		return true
	}
	ast.Inspect(n, visit)
	return evs
}

// lockState is the per-block dataflow fact: which mutexes may/must be held
// at block entry, plus which have a registered deferred release.
type lockState struct {
	may    map[string]token.Pos // token -> position of an acquiring Lock
	must   map[string]bool
	defers map[string]bool
	top    bool // unvisited (⊤ for the must-intersection)
}

func newTop() lockState {
	return lockState{top: true}
}

func (s lockState) clone() lockState {
	c := lockState{
		may:    make(map[string]token.Pos, len(s.may)),
		must:   make(map[string]bool, len(s.must)),
		defers: make(map[string]bool, len(s.defers)),
	}
	for k, v := range s.may {
		c.may[k] = v
	}
	for k := range s.must {
		c.must[k] = true
	}
	for k := range s.defers {
		c.defers[k] = true
	}
	return c
}

// join merges a predecessor's exit state into s (may/defers: union, must:
// intersection). Reports whether s changed.
func (s *lockState) join(o lockState) bool {
	if s.top {
		*s = o.clone()
		return true
	}
	changed := false
	for k, v := range o.may {
		if _, ok := s.may[k]; !ok {
			s.may[k] = v
			changed = true
		}
	}
	for k := range o.defers {
		if !s.defers[k] {
			s.defers[k] = true
			changed = true
		}
	}
	for k := range s.must {
		if !o.must[k] {
			delete(s.must, k)
			changed = true
		}
	}
	return changed
}

// apply runs one event against the state (no reporting).
func (s *lockState) apply(e event) {
	switch e.kind {
	case evLock:
		s.may[e.tok] = e.pos
		s.must[e.tok] = true
	case evUnlock:
		delete(s.may, e.tok)
		delete(s.must, e.tok)
	case evDeferUnlock:
		s.defers[e.tok] = true
	}
}

// checkFunc runs the dataflow over one function and reports violations.
func (a *analyzer) checkFunc(decl *ast.FuncDecl) {
	g := cfg.New(decl.Body, a.mayReturn)

	// Quick skip: no lock events at all.
	hasLock := false
	blockEvents := make([][]event, len(g.Blocks))
	for i, b := range g.Blocks {
		for _, n := range b.Nodes {
			evs := a.events(n)
			blockEvents[i] = append(blockEvents[i], evs...)
			for _, e := range evs {
				if e.kind != evBlock {
					hasLock = true
				}
			}
		}
	}
	if !hasLock {
		return
	}

	entry := make([]lockState, len(g.Blocks))
	for i := range entry {
		entry[i] = newTop()
	}
	entry[0] = lockState{may: map[string]token.Pos{}, must: map[string]bool{}, defers: map[string]bool{}}

	// Fixpoint over the (small) CFG.
	for changed := true; changed; {
		changed = false
		for i, b := range g.Blocks {
			if entry[i].top {
				continue
			}
			out := entry[i].clone()
			for _, e := range blockEvents[i] {
				out.apply(e)
			}
			for _, succ := range b.Succs {
				if entry[succ.Index].join(out) {
					changed = true
				}
			}
		}
	}

	// Reporting pass, deterministic block order, deduped by position.
	reported := map[token.Pos]bool{}
	reportf := func(pos token.Pos, format string, args ...any) {
		if reported[pos] || lintutil.Suppressed(a.pass, pos, name) {
			return
		}
		reported[pos] = true
		a.pass.Reportf(pos, format, args...)
	}
	for i, b := range g.Blocks {
		if entry[i].top || !b.Live {
			continue
		}
		st := entry[i].clone()
		for _, e := range blockEvents[i] {
			switch e.kind {
			case evBlock:
				toks := heldTokens(st.must)
				// Mutexes annotated //hbo:lockleaf serialize blocking work
				// by design; only non-leaf holds make this a finding.
				kept := toks[:0]
				for _, t := range toks {
					if !a.leafToks[t] {
						kept = append(kept, t)
					}
				}
				if len(kept) > 0 {
					pos := st.may[kept[0]]
					reportf(e.pos, "%s while %s is held (locked at %s): blocking in a critical section stalls every session on this stripe",
						e.desc, strings.Join(kept, ", "), a.pass.Fset.Position(pos))
				}
			case evUnlock:
				if _, held := st.may[e.tok]; !held {
					reportf(e.pos, "unlock of %s which no path has locked (lock/unlock mismatch)", e.tok)
				}
			}
			st.apply(e)
		}
		if ret := b.Return(); ret != nil {
			for _, tok := range heldTokens(st.must) {
				if !st.defers[tok] {
					reportf(ret.Pos(), "return with %s still held (locked at %s) and no deferred unlock on this path",
						tok, a.pass.Fset.Position(st.may[tok]))
				}
			}
		}
		// Implicit fallthrough off the end of the function body.
		if len(b.Succs) == 0 && b.Return() == nil && b.Live && b.Kind != cfg.KindUnreachable {
			for _, tok := range heldTokens(st.must) {
				if !st.defers[tok] {
					reportf(decl.Body.Rbrace, "function ends with %s still held (locked at %s) and no deferred unlock",
						tok, a.pass.Fset.Position(st.may[tok]))
				}
			}
		}
	}
}

func heldTokens(must map[string]bool) []string {
	toks := make([]string, 0, len(must))
	for t := range must {
		toks = append(toks, t)
	}
	sort.Strings(toks)
	return toks
}

// mayReturn treats panic, os.Exit, and log.Fatal* as terminating calls so
// their branches do not feed the exit checks.
func (a *analyzer) mayReturn(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := a.pass.TypesInfo.ObjectOf(fun).(*types.Builtin); isBuiltin {
				return false
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := typeutil.Callee(a.pass.TypesInfo, call).(*types.Func); ok && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "os":
				if fn.Name() == "Exit" {
					return false
				}
			case "log":
				if strings.HasPrefix(fn.Name(), "Fatal") || strings.HasPrefix(fn.Name(), "Panic") {
					return false
				}
			case "runtime":
				if fn.Name() == "Goexit" {
					return false
				}
			}
		}
	}
	return true
}
