package locklint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/locklint"
)

func TestLocklint(t *testing.T) {
	analyzertest.Run(t, "testdata", locklint.Analyzer, "sessiond")
}
