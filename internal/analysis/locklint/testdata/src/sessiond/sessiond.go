// Fixture for locklint: blocking operations under a held mutex, lock and
// unlock path mismatches, and the //hbo:lockleaf / //lint:allow escape
// hatches. The package is named sessiond so it lands in locklint's scope.
package sessiond

import (
	"sync"
	"time"
)

// SessionStore mirrors the real durability seam: locklint treats every
// method on an interface with this name as blocking store I/O.
type SessionStore interface {
	Put(id string, blob []byte) error
	Get(id string) ([]byte, bool, error)
}

type shard struct {
	mu       sync.Mutex
	sessions map[string][]byte
}

type service struct {
	store SessionStore
	sh    shard
	jobs  chan int
}

// bad blocks twice inside the critical section.
func (s *service) bad(id string) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	_ = s.store.Put(id, nil)     // want "SessionStore.Put .store/file I/O. while s.sh.mu is held"
	time.Sleep(time.Millisecond) // want "time.Sleep while s.sh.mu is held"
}

// save hides the store call one helper deep; the blocking summary carries
// it back to the caller's critical section.
func (s *service) save(id string) { _ = s.store.Put(id, nil) }

func (s *service) badIndirect(id string) {
	s.sh.mu.Lock()
	s.save(id) // want "call to save .SessionStore.Put"
	s.sh.mu.Unlock()
}

func (s *service) badSend() {
	s.sh.mu.Lock()
	s.jobs <- 1 // want "channel send while s.sh.mu is held"
	s.sh.mu.Unlock()
}

// badReturn leaks the lock on the early-return path.
func (s *service) badReturn(cond bool) {
	s.sh.mu.Lock()
	if cond {
		return // want "return with s.sh.mu still held"
	}
	s.sh.mu.Unlock()
}

func (s *service) badUnlock() {
	s.sh.mu.Unlock() // want "unlock of s.sh.mu which no path has locked"
}

// good collects under the lock, then does I/O after releasing — the
// pattern the real saveSession/Flush paths follow.
func (s *service) good(id string) {
	s.sh.mu.Lock()
	blob := s.sh.sessions[id]
	s.sh.mu.Unlock()
	_ = s.store.Put(id, blob)
}

// goodDefer: a deferred unlock balances every return path.
func (s *service) goodDefer(id string) ([]byte, bool) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	b, ok := s.sh.sessions[id]
	return b, ok
}

// goodTrySend: select with a default clause never blocks.
func (s *service) goodTrySend() bool {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	select {
	case s.jobs <- 1:
		return true
	default:
		return false
	}
}

// fileLog's mutex is a declared serialization point: blocking under it is
// the design, so locklint stays quiet.
type fileLog struct {
	mu    sync.Mutex //hbo:lockleaf single-writer log: serializing I/O is this mutex's job
	store SessionStore
}

func (l *fileLog) appendBlob(id string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.store.Put(id, nil)
}

// allowed demonstrates the reasoned per-line suppression protocol.
func (s *service) allowed(id string) {
	s.sh.mu.Lock()
	defer s.sh.mu.Unlock()
	_ = s.store.Put(id, nil) //lint:allow locklint fixture: atomic demote must happen under the shard lock
}
