// Package errlint closes two quiet data-loss holes:
//
//   - dropped errors from Close/Flush/Sync/Write/WriteString calls used as
//     bare statements in non-test code — on a written file that error is the
//     only notification the bytes never hit the disk. `_ = f.Close()` (an
//     explicit discard on an error path) and `defer f.Close()` on read-side
//     resources remain legal, matching the repo's established idiom of
//     checking the final Close;
//   - float ==/!= where both operands are non-constant floating-point
//     expressions — the golden artifacts are compared bit-exactly via
//     math.Float64bits (which compares integers and so never trips this),
//     and everything else wants a tolerance.
package errlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "errlint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "flag silently dropped Close/Flush/Write errors and exact " +
		"float equality outside bit-compare helpers",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var droppable = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Write": true, "WriteString": true,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.ExprStmt)(nil), (*ast.BinaryExpr)(nil)}
	ins.Preorder(nodeFilter, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.ExprStmt:
			checkDroppedError(pass, n)
		case *ast.BinaryExpr:
			checkFloatEquality(pass, n)
		}
	})
	return nil, nil
}

func checkDroppedError(pass *analysis.Pass, stmt *ast.ExprStmt) {
	if lintutil.IsTestFile(pass.Fset, stmt.Pos()) {
		return
	}
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || !droppable[fn.Name()] {
		return
	}
	if !returnsError(fn) || neverFails(fn) {
		return
	}
	lintutil.Report(pass, stmt, name,
		"%s's error is silently dropped: handle it, or discard explicitly with `_ = ...` "+
			"when a prior error already wins", fn.Name())
}

// neverFails exempts receivers documented to always return a nil error:
// strings.Builder and bytes.Buffer grow in memory and only signal length.
func neverFails(fn types.Object) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}

func returnsError(fn types.Object) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

func checkFloatEquality(pass *analysis.Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	// Golden tests legitimately assert exact float identity; the rule bites
	// in production code only.
	if lintutil.IsTestFile(pass.Fset, be.Pos()) {
		return
	}
	if !isNonConstFloat(pass, be.X) || !isNonConstFloat(pass, be.Y) {
		return
	}
	lintutil.Report(pass, be, name,
		"exact float %s comparison: compare math.Float64bits for bit identity "+
			"or use an explicit tolerance", be.Op)
}

// isNonConstFloat reports whether e is a floating-point expression that is
// not a compile-time constant. Comparisons against constants (x == 0
// sentinels) are exact by construction and stay legal.
func isNonConstFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
