// Package errs exercises errlint: silently dropped Close/Flush/Write
// errors and exact float equality.
package errs

import (
	"bufio"
	"math"
	"os"
	"strings"
)

// in-memory builders never fail, so their dropped "errors" are noise.
func builderWrites(b *strings.Builder) {
	b.WriteString("header\n")
	b.Write([]byte("row\n"))
}

func droppedErrors(f *os.File, bw *bufio.Writer) {
	f.Close()                  // want `Close's error is silently dropped`
	bw.Flush()                 // want `Flush's error is silently dropped`
	bw.WriteString("x")        // want `WriteString's error is silently dropped`
	f.Write([]byte("payload")) // want `Write's error is silently dropped`
}

func handledErrors(f *os.File, bw *bufio.Writer) error {
	if err := bw.Flush(); err != nil {
		_ = f.Close() // explicit discard: the flush error wins
		return err
	}
	defer f.Close() // read-side defer stays legal
	return nil
}

func suppressedDrop(f *os.File) {
	//lint:allow errlint close error is unreachable on the os.DevNull sink
	f.Close()
}

type sink struct{}

// Close returns nothing, so a bare call drops no error.
func (sink) Close() {}

func errorlessClose(s sink) {
	s.Close()
}

func floatEquality(a, b float64, f32 float32) bool {
	if a == b { // want `exact float == comparison`
		return true
	}
	if f32 != f32 { // want `exact float != comparison`
		return false
	}
	return a != b // want `exact float != comparison`
}

// bit-exact comparison goes through Float64bits, which compares integers
// and is the designated helper idiom.
func bitIdentical(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// comparisons against constants are exact by construction.
func sentinels(a float64) bool {
	return a == 0 || a != 1.5
}

func suppressedEquality(a, b float64) bool {
	//lint:allow errlint quantized grid values are exactly representable
	return a == b
}
