package errlint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/errlint"
)

func TestErrlint(t *testing.T) {
	analyzertest.Run(t, "testdata", errlint.Analyzer, "errs")
}
