package lintutil_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

// parsePass builds the minimal analysis.Pass that Suppressed consumes: a
// FileSet and the parsed files, no type information.
func parsePass(t *testing.T, src string) *analysis.Pass {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	return &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
}

// posOf returns the position of the first occurrence of marker in src,
// mapped into the pass's FileSet.
func posOf(t *testing.T, pass *analysis.Pass, src, marker string) token.Pos {
	t.Helper()
	off := strings.Index(src, marker)
	if off < 0 {
		t.Fatalf("marker %q not in fixture", marker)
	}
	tf := pass.Fset.File(pass.Files[0].Pos())
	return tf.Pos(off)
}

func TestSuppressedPlacement(t *testing.T) {
	src := `package fix

func sameLine() {
	target1() //lint:allow locklint the store is a lock leaf
}

func lineAbove() {
	//lint:allow locklint eviction save must stay under the shard lock
	target2()
}

func twoAbove() {
	//lint:allow locklint too far away to count
	_ = 0
	target3()
}

func target1() {}
func target2() {}
func target3() {}
`
	pass := parsePass(t, src)
	cases := []struct {
		marker string
		want   bool
	}{
		{"target1()", true},  // trailing on the flagged line
		{"target2()", true},  // alone on the line immediately above
		{"target3()", false}, // a blank-ish line in between breaks the tie
	}
	for _, c := range cases {
		if got := lintutil.Suppressed(pass, posOf(t, pass, src, c.marker), "locklint"); got != c.want {
			t.Errorf("Suppressed(%s, locklint) = %v, want %v", c.marker, got, c.want)
		}
	}
}

func TestSuppressedRequiresReason(t *testing.T) {
	src := `package fix

func bare() {
	target1() //lint:allow locklint
}

func spaced() {
	target2() //lint:allow   locklint
}

func reasoned() {
	target3() //lint:allow locklint single-flight dial gate
}

func target1() {}
func target2() {}
func target3() {}
`
	pass := parsePass(t, src)
	// A bare //lint:allow <analyzer> with no reason is not a suppression:
	// the reason is the whole point of the protocol.
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target1()"), "locklint") {
		t.Error("bare suppression without a reason should not suppress")
	}
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target2()"), "locklint") {
		t.Error("extra whitespace between tokens is not a reason")
	}
	if !lintutil.Suppressed(pass, posOf(t, pass, src, "target3()"), "locklint") {
		t.Error("well-formed suppression with a reason should suppress")
	}
}

func TestSuppressedAnalyzerNameMustMatch(t *testing.T) {
	src := `package fix

func wrongName() {
	target1() //lint:allow detlint reason aimed at a different analyzer
}

func prefixName() {
	target2() //lint:allow locklintx reason with a near-miss analyzer name
}

func target1() {}
func target2() {}
`
	pass := parsePass(t, src)
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target1()"), "locklint") {
		t.Error("suppression for detlint must not silence locklint")
	}
	// The converse direction must still work for the named analyzer.
	if !lintutil.Suppressed(pass, posOf(t, pass, src, "target1()"), "detlint") {
		t.Error("suppression for detlint should silence detlint")
	}
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target2()"), "locklint") {
		t.Error("analyzer name match is exact, not a prefix match")
	}
}

func TestSuppressedMalformedComments(t *testing.T) {
	src := `package fix

func noDirective() {
	target1() // lint:allow locklint a plain comment, not a directive? still counts: the parser trims the space
}

func unrelated() {
	target2() // TODO(lint): allow locklint someday
}

func doubled() {
	target3() //lint:allowlocklint missing separator glues the tokens
}

func target1() {}
func target2() {}
func target3() {}
`
	pass := parsePass(t, src)
	// "// lint:allow ..." (with a space) is accepted — the comment text is
	// trimmed before the prefix check, matching how gofmt rewrites comments.
	if !lintutil.Suppressed(pass, posOf(t, pass, src, "target1()"), "locklint") {
		t.Error("space after // should be tolerated (gofmt adds it)")
	}
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target2()"), "locklint") {
		t.Error("prose mentioning lint:allow mid-comment is not a directive")
	}
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target3()"), "locklint") {
		t.Error("lint:allowlocklint with no separator is not a directive")
	}
}

func TestSuppressedBlockComments(t *testing.T) {
	src := `package fix

func inlineBlock() {
	target1() /*lint:allow locklint block comment form on the same line*/
}

func multiLine() {
	/* lint:allow locklint
	a multi-line block comment starts two lines above the flagged line,
	so its position does not cover it */
	target2()
}

func target1() {}
func target2() {}
`
	pass := parsePass(t, src)
	if !lintutil.Suppressed(pass, posOf(t, pass, src, "target1()"), "locklint") {
		t.Error("single-line /* */ suppression on the flagged line should suppress")
	}
	// Suppression is keyed off the comment's starting line: a block comment
	// sprawling over several lines anchors where it opens, which here is
	// three lines above target2 — out of range by design, so suppressions
	// stay visually adjacent to what they silence.
	if lintutil.Suppressed(pass, posOf(t, pass, src, "target2()"), "locklint") {
		t.Error("multi-line block comment starting far above should not suppress")
	}
}
