// Package lintutil holds the helpers shared by the hbovet analyzers:
// the //lint:allow suppression protocol, the determinism-critical package
// list, obs-type recognition, and detection of the nil-receiver gate idiom
// that licenses wall-clock reads on instrumented paths.
package lintutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AllowPrefix introduces a suppression comment. The full syntax is
//
//	//lint:allow <analyzer> <reason>
//
// placed either on the flagged line or on its own line immediately above.
// The reason is mandatory: a suppression without one is ignored, so every
// silenced finding carries its justification in the source.
const AllowPrefix = "lint:allow"

// DeterminismCritical lists the package basenames whose outputs must be
// bit-identical across replays (the Figure/Table artifacts flow through
// them). detlint applies only to these.
var DeterminismCritical = map[string]bool{
	"sim":         true,
	"bo":          true,
	"alloc":       true,
	"mesh":        true,
	"soc":         true,
	"core":        true,
	"scenario":    true,
	"experiments": true,
	"sessiond":    true,
	"snapstore":   true,
	// Policy entrants must draw every sample from their injected sim.RNG:
	// a stray global-rand or clock read would desync replay-based restores
	// and break the arena's jobs-invariant goldens.
	"policies": true,
	"loadgen":  true,
	// The wire codec must re-encode every accepted frame byte-identically;
	// any nondeterminism there breaks the canonical-encoding invariant.
	"wire": true,
	// The shared-edge contention model is virtual-time physics: completion
	// times must be a pure function of the submission sequence or the
	// multi-user goldens break.
	"contend": true,
}

// IsDeterminismCritical reports whether the package at path is subject to
// detlint. Matching is by final path element so the same analyzers work on
// the real module tree and on single-element analysistest fixture paths.
func IsDeterminismCritical(path string) bool {
	return DeterminismCritical[pathBase(path)]
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// IsTestFile reports whether pos lies in a _test.go file. Some rules
// (dropped errors, float equality) are scoped to non-test code where the
// idioms they forbid are never legitimate.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// Suppressed reports whether a //lint:allow <analyzer> <reason> comment
// covers the line holding pos: either trailing on the same line or alone on
// the line immediately above.
func Suppressed(pass *analysis.Pass, pos token.Pos, analyzer string) bool {
	tf := pass.Fset.File(pos)
	if tf == nil {
		return false
	}
	line := tf.Line(pos)
	for _, f := range pass.Files {
		if pass.Fset.File(f.Pos()) != tf {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				cline := tf.Line(c.Pos())
				if cline != line && cline != line-1 {
					continue
				}
				if allowsAnalyzer(c.Text, analyzer) {
					return true
				}
			}
		}
	}
	return false
}

// allowsAnalyzer parses one raw comment ("//..." or "/*...*/") and reports
// whether it is a well-formed suppression for the named analyzer (with a
// non-empty reason).
func allowsAnalyzer(comment, analyzer string) bool {
	text := strings.TrimPrefix(comment, "//")
	text = strings.TrimPrefix(text, "/*")
	text = strings.TrimSuffix(text, "*/")
	// Tokenize rather than prefix-match, so "lint:allowlocklint ..." (a
	// glued directive) is malformed instead of silently suppressing.
	fields := strings.Fields(text)
	if len(fields) < 3 || fields[0] != AllowPrefix {
		return false
	}
	return fields[1] == analyzer
}

// Report emits the diagnostic unless a suppression comment covers node.
func Report(pass *analysis.Pass, node ast.Node, analyzer, format string, args ...any) {
	if Suppressed(pass, node.Pos(), analyzer) {
		return
	}
	pass.Reportf(node.Pos(), format, args...)
}

// obsTypeNames are the instrument types of internal/obs whose methods are
// nil-safe no-ops; *Registry is the lookup root.
var obsTypeNames = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func namedFromObsPackage(t types.Type, names map[string]bool) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || pathBase(obj.Pkg().Path()) != "obs" {
		return false
	}
	return names[obj.Name()]
}

// IsObsInstrument reports whether t is *obs.Counter, *obs.Gauge, or
// *obs.Histogram (by package basename, so fixture stubs qualify too).
func IsObsInstrument(t types.Type) bool {
	return namedFromObsPackage(t, obsTypeNames)
}

// IsObsRegistry reports whether t is *obs.Registry.
func IsObsRegistry(t types.Type) bool {
	return namedFromObsPackage(t, map[string]bool{"Registry": true})
}

func isObsGateExpr(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	return t != nil && (IsObsInstrument(t) || IsObsRegistry(t))
}

// condHasObsNilCheck reports whether cond contains a comparison of an
// obs instrument/registry expression against nil with the given operator.
func condHasObsNilCheck(pass *analysis.Pass, cond ast.Expr, op token.Token) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || be.Op != op {
			return true
		}
		x, y := be.X, be.Y
		if isNilIdent(pass, y) && isObsGateExpr(pass, x) {
			found = true
		}
		if isNilIdent(pass, x) && isObsGateExpr(pass, y) {
			found = true
		}
		return !found
	})
	return found
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	_, isNil := obj.(*types.Nil)
	return isNil
}

// terminatesFlow reports whether the guard body unconditionally leaves the
// enclosing flow (return, panic, continue, break, or os.Exit-style call is
// approximated by return/panic here — the idiom in this repo is return).
func terminatesFlow(body *ast.BlockStmt) bool {
	if body == nil || len(body.List) == 0 {
		return false
	}
	switch last := body.List[len(body.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// ObsGated reports whether the node at the top of stack is lexically
// protected by the nil-receiver observability gate: either an enclosing if
// whose condition checks an obs instrument/registry != nil, or an earlier
// guard clause `if <obs expr> == nil { return ... }` in any enclosing block.
// This is exactly the idiom PR 3 threads through the hot paths, so code that
// follows it never trips detlint's wall-clock rule.
func ObsGated(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.IfStmt:
			// Inside the body (not the init/cond themselves): a positive
			// nil-check licenses the whole branch.
			if i+1 < len(stack) && stack[i+1] == n.Body &&
				condHasObsNilCheck(pass, n.Cond, token.NEQ) {
				return true
			}
		case *ast.BlockStmt:
			if i+1 >= len(stack) {
				continue
			}
			for _, st := range n.List {
				if st == stack[i+1] {
					break
				}
				ifSt, ok := st.(*ast.IfStmt)
				if !ok {
					continue
				}
				if condHasObsNilCheck(pass, ifSt.Cond, token.EQL) && terminatesFlow(ifSt.Body) {
					return true
				}
			}
		}
	}
	return false
}
