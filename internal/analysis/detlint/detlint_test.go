package detlint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/detlint"
)

func TestDetlint(t *testing.T) {
	analyzertest.Run(t, "testdata", detlint.Analyzer, "sim", "notcritical", "policies")
}
