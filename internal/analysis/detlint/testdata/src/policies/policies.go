// Package policies is a determinism-critical fixture: an optimizer policy
// that draws from the global math/rand source (or reads the wall clock)
// would replay differently after a restore, so detlint must flag it.
package policies

import (
	"math/rand"
	"time"
)

type leakyPolicy struct {
	xs [][]float64
}

func (p *leakyPolicy) Next() ([]float64, error) {
	// A policy sampling its suggestion from process-global randomness: the
	// exact bug the Policy determinism contract forbids.
	point := []float64{rand.Float64(), rand.Float64()} // want `rand\.Float64 uses the global math/rand source` `rand\.Float64 uses the global math/rand source`
	p.xs = append(p.xs, point)
	return point, nil
}

func (p *leakyPolicy) Observe(point []float64, cost float64) error {
	if rand.Intn(2) == 0 { // want `rand\.Intn uses the global math/rand source`
		p.xs = append(p.xs, point)
	}
	return nil
}

func timedSuggest(p *leakyPolicy) ([]float64, float64) {
	start := time.Now() // want `un-gated wall-clock read time\.Now`
	point, _ := p.Next()
	return point, time.Since(start).Seconds() // want `un-gated wall-clock read time\.Since`
}
