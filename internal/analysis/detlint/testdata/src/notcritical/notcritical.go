// Package notcritical is outside the determinism-critical set, so detlint
// reports nothing here even for patterns it forbids elsewhere.
package notcritical

import (
	"math/rand"
	"time"
)

func clockAndRand() (time.Time, int) {
	time.Sleep(time.Microsecond)
	return time.Now(), rand.Intn(3)
}

func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}
