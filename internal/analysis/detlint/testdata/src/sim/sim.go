// Package sim is a determinism-critical fixture: every rule of detlint has
// a positive and a negative case here.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"obs"
)

// --- wall-clock rules ---

func ungatedClock() float64 {
	start := time.Now() // want `un-gated wall-clock read time\.Now`
	busy()
	return time.Since(start).Seconds() // want `un-gated wall-clock read time\.Since`
}

func sleeps() {
	time.Sleep(time.Millisecond) // want `time\.Sleep in determinism-critical package`
}

type engine struct {
	tickMS *obs.Histogram
}

// gatedClock follows the PR 3 idiom: the guard clause proves the registry
// is live, so the clock read vanishes when observability is off.
func (e *engine) gatedClock() {
	if e.tickMS == nil {
		busy()
		return
	}
	start := time.Now()
	busy()
	e.tickMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

func (e *engine) gatedPositive() {
	if e.tickMS != nil {
		start := time.Now()
		busy()
		e.tickMS.Observe(time.Since(start).Seconds())
	}
}

func suppressedClock() time.Time {
	//lint:allow detlint wall timing is reporting-only here
	return time.Now()
}

// --- global rand rules ---

func globalRand() int {
	return rand.Intn(10) // want `rand\.Intn uses the global math/rand source`
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// --- map iteration rules ---

func unsortedKeys(m map[string]float64) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice keys is appended to in map-iteration order and never sorted`
	}
	return keys
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func writesInMapOrder(m map[string]float64) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%g\n", k, v) // want `map iteration writes output in map order`
	}
	return b.String()
}

func accumulatesFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation over map iteration order is non-deterministic`
	}
	return sum
}

// intAccumulation is order-insensitive, so it stays legal.
func intAccumulation(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// sliceRange is not a map range at all.
func sliceRange(xs []float64) float64 {
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return sum
}

func busy() {}
