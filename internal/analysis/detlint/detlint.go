// Package detlint enforces the reproduction's determinism contract in the
// packages whose outputs must replay bit-identically (internal/sim, bo,
// alloc, mesh, soc, core, scenario, experiments):
//
//   - no wall-clock reads (time.Now, time.Since) unless gated behind a live
//     obs registry via the nil-receiver idiom, and no time.Sleep at all;
//   - no use of the global math/rand source (seeded construction via
//     rand.New/NewSource remains legal — the simulator owns its RNG);
//   - no range over a map whose body appends to an outer slice without a
//     subsequent sort, writes formatted output, or accumulates floats —
//     the exact bug class that silently reordered a Figure 2 series in PR 2.
//
// Intentional violations carry a `//lint:allow detlint <reason>` comment.
package detlint

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "detlint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid wall-clock reads, the global math/rand source, and " +
		"order-sensitive map iteration in determinism-critical packages",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// globalRandConstructors are the math/rand(/v2) names that do NOT touch the
// shared global source: building an explicitly seeded generator is how
// deterministic code is supposed to use the package.
var globalRandConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.IsDeterminismCritical(pass.Pkg.Path()) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, stack)
		case *ast.RangeStmt:
			checkMapRange(pass, n, stack)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Sleep":
			lintutil.Report(pass, call, name,
				"time.Sleep in determinism-critical package %s: virtual time only", pass.Pkg.Name())
		case "Now", "Since":
			if !lintutil.ObsGated(pass, stack) {
				lintutil.Report(pass, call, name,
					"un-gated wall-clock read time.%s in determinism-critical package %s: "+
						"gate behind a live obs registry (nil-receiver idiom) or use virtual time",
					fn.Name(), pass.Pkg.Name())
			}
		}
	case "math/rand", "math/rand/v2":
		// Methods on an explicitly constructed *rand.Rand are the sanctioned
		// deterministic path; only package-level functions hit the global
		// source.
		sig, isFunc := fn.Type().(*types.Signature)
		if isFunc && sig.Recv() == nil && !globalRandConstructors[fn.Name()] {
			lintutil.Report(pass, call, name,
				"rand.%s uses the global math/rand source: draw from an explicitly "+
					"seeded *rand.Rand (sim.NewRNG) instead", fn.Name())
		}
	}
}

// checkMapRange flags order-sensitive bodies of a direct map iteration.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}

	// Collect outer-declared slice variables appended to in the body, and
	// flag writes/float accumulation immediately.
	appendTargets := map[*types.Var]ast.Node{}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, rng, n, appendTargets)
		case *ast.CallExpr:
			if isOutputWrite(pass, n) {
				lintutil.Report(pass, n, name,
					"map iteration writes output in map order: iterate a sorted key "+
						"slice instead (this bug class broke the Figure 2 snapshot)")
			}
		}
		return true
	})

	// An append target is fine if some later statement in the enclosing
	// block sorts it (the canonical sortedKeys helper); otherwise the slice
	// inherits map order.
	for v, site := range appendTargets {
		if !sortedAfter(pass, rng, stack, v) {
			lintutil.Report(pass, site, name,
				"slice %s is appended to in map-iteration order and never sorted "+
					"before use: sort it (or iterate sorted keys)", v.Name())
		}
	}
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt, appendTargets map[*types.Var]ast.Node) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		for _, lhs := range as.Lhs {
			v := outerVar(pass, rng, lhs)
			if v == nil {
				continue
			}
			if b, ok := v.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				lintutil.Report(pass, as, name,
					"float accumulation over map iteration order is non-deterministic "+
						"(FP addition is not associative): iterate sorted keys")
			}
		}
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			if v := outerVar(pass, rng, as.Lhs[i]); v != nil {
				if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
					appendTargets[v] = as
				}
			}
		}
	}
}

// outerVar resolves e to a variable declared before the range statement
// (i.e. outside the loop), or nil.
func outerVar(pass *analysis.Pass, rng *ast.RangeStmt, e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var)
	if !ok || v.Pos() >= rng.Pos() {
		return nil
	}
	return v
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOutputWrite recognizes fmt.Fprint* calls and Write/WriteString-family
// method calls — emitting formatted output inside a map range serializes the
// map's random order straight into an artifact.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
}

func isOutputWrite(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := typeutil.Callee(pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return writeMethods[fn.Name()]
	}
	return false
}

// sortedAfter reports whether a statement after rng in an enclosing block
// passes v to sort.* or slices.Sort*.
func sortedAfter(pass *analysis.Pass, rng *ast.RangeStmt, stack []ast.Node, v *types.Var) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		block, ok := stack[i].(*ast.BlockStmt)
		if !ok {
			continue
		}
		past := false
		for _, st := range block.List {
			if !past {
				if st == stack[i+1] || st == ast.Node(rng) {
					past = true
				}
				continue
			}
			if stmtSorts(pass, st, v) {
				return true
			}
		}
	}
	return false
}

func stmtSorts(pass *analysis.Pass, st ast.Stmt, v *types.Var) bool {
	found := false
	ast.Inspect(st, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := typeutil.Callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == v {
				found = true
			}
		}
		return !found
	})
	return found
}
