// Fixture for codeclint: //hbo:codec pairs that agree (including the
// loop-vs-f64s vector equivalence and flag-gated optional sections) and
// pairs that diverge in width, tail length, or flag ties.
package codec

import (
	"encoding/binary"
	"errors"
)

const flagExtra = uint16(0x0001)

var errShort = errors.New("codec: short input")

type msg struct {
	id    []byte
	count uint32
	extra []byte
	vals  []float64
}

// reader mirrors the repo's bounds-checked decode idiom; codeclint maps
// its methods by name.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) u16() uint16 {
	if r.err != nil || r.off+2 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *reader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *reader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.b) {
		r.err = errShort
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *reader) take(n int) []byte {
	if r.err != nil || n < 0 || r.off+n > len(r.b) {
		r.err = errShort
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *reader) f64s(n int) []float64 {
	out := make([]float64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, float64(r.u64()))
	}
	return out
}

// good: full parity, including an optional section tied to flagExtra on
// both sides (encode via the `if hasExtra { flags |= flagExtra }` idiom).
//
//hbo:codec good encode
func encodeGood(m *msg) []byte {
	var flags uint16
	hasExtra := len(m.extra) > 0
	if hasExtra {
		flags |= flagExtra
	}
	b := make([]byte, 0, 64)
	b = binary.LittleEndian.AppendUint16(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(m.id)))
	b = append(b, m.id...)
	b = binary.LittleEndian.AppendUint32(b, m.count)
	if hasExtra {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.extra)))
		b = append(b, m.extra...)
	}
	return b
}

//hbo:codec good decode
func decodeGood(b []byte) (*msg, error) {
	r := &reader{b: b}
	m := &msg{}
	flags := r.u16()
	n := int(r.u16())
	m.id = r.take(n)
	m.count = r.u32()
	if flags&flagExtra != 0 {
		en := int(r.u16())
		m.extra = r.take(en)
	}
	if r.err != nil {
		return nil, r.err
	}
	return m, nil
}

// vec: an encode loop of u64 writes reads back as one f64s vector.
//
//hbo:codec vec encode
func encodeVec(m *msg) []byte {
	b := binary.LittleEndian.AppendUint16(nil, uint16(len(m.vals)))
	for _, v := range m.vals {
		b = binary.LittleEndian.AppendUint64(b, uint64(v))
	}
	return b
}

//hbo:codec vec decode
func decodeVec(b []byte) []float64 {
	r := &reader{b: b}
	n := int(r.u16())
	return r.f64s(n)
}

// width: encode writes 8 bytes where decode reads 4.
//
//hbo:codec width encode
func encodeWidth(count uint64) []byte {
	b := binary.LittleEndian.AppendUint64(nil, count) // want "encode writes u64 where decode reads u32"
	return b
}

//hbo:codec width decode
func decodeWidth(b []byte) uint64 {
	r := &reader{b: b}
	return uint64(r.u32())
}

// untied: the optional section has no flag bit, so a decoder cannot know
// whether the section is present.
//
//hbo:codec untied encode
func encodeUntied(m *msg) []byte {
	b := binary.LittleEndian.AppendUint32(nil, m.count)
	if len(m.extra) > 0 { // want "encode has an optional section with no flag tie"
		b = binary.LittleEndian.AppendUint16(b, uint16(len(m.extra)))
		b = append(b, m.extra...)
	}
	return b
}

//hbo:codec untied decode
func decodeUntied(b []byte, flags uint16) *msg {
	r := &reader{b: b}
	m := &msg{}
	m.count = r.u32()
	if flags&flagExtra != 0 {
		en := int(r.u16())
		m.extra = r.take(en)
	}
	return m
}

// tail: encode writes one op more than decode reads.
//
//hbo:codec tail encode
func encodeTail(m *msg) []byte {
	b := binary.LittleEndian.AppendUint32(nil, m.count)
	b = binary.LittleEndian.AppendUint64(b, uint64(len(m.vals))) // want "encode writes u64 with no matching read in decode"
	return b
}

//hbo:codec tail decode
func decodeTail(b []byte) uint32 {
	r := &reader{b: b}
	return r.u32()
}

// lonely: an annotated half with no counterpart is an annotation bug.
//
//hbo:codec lonely encode
func encodeLonely(x uint32) []byte { // want `codec group "lonely" has no decode half`
	return binary.LittleEndian.AppendUint32(nil, x)
}
