// Package codeclint checks encode/decode symmetry for the project's
// hand-rolled binary codecs — the invariant the wire protocol (DESIGN.md
// §14) and the snapshot format (§13) otherwise enforce only through
// goldens and fuzzing. Codec pairs are declared with a directive above
// each half:
//
//	//hbo:codec <group> encode
//	//hbo:codec <group> decode
//
// Both halves are lowered to an abstract operation stream — u8/u16/u32/u64
// writes and reads, length-prefixed byte strings, float vectors, repeated
// groups, optional flag-gated sections, and per-frame-type switches — and
// the two streams must agree step by step in order and width. Recognized
// forms: binary.LittleEndian.AppendUintN and byte appends on the encode
// side; the repo's bounds-checked reader methods (u8/u16/u32/u64/f64,
// take, bytes16, f64s, point) on the decode side; package-local helpers
// are inlined recursively so appendBytes16-style wrappers compare equal to
// their reader twins. CRC writes (an argument through crc32.ChecksumIEEE)
// are framing, verified out-of-band, and excluded, as is any line marked
// `//codec:skip`. Error guards (conditions mentioning err) are
// transparent; loops whose body reduces to float/u64 writes normalize to
// one vector op, so n×dim nested loops compare equal to a flat f64s read.
//
// Beyond order/width parity, every optional section must be tied to a flag
// bit — set if and only if the section is written (the canonicality
// invariant: one value, one encoding) — and the two halves must gate a
// section on the same flag constant.
package codeclint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "codeclint"

// Directive introduces a codec half: //hbo:codec <group> encode|decode.
const Directive = "hbo:codec"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "check that //hbo:codec encode/decode pairs write and read the " +
		"same fields in the same order and width, with flag bits set iff " +
		"their optional section is present",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// op is one abstract codec operation.
type op struct {
	kind  string // "u8","u16","u32","u64","bytes","vec","rep","opt","switch","crc"
	flag  string // opt: name of the gating flag constant ("" = untied)
	body  []op   // rep, opt
	cases []swCase
	pos   token.Pos
}

type swCase struct {
	key  string // comma-joined case label expressions
	body []op
}

func (o op) String() string {
	switch o.kind {
	case "rep":
		return "rep[" + opsString(o.body) + "]"
	case "opt":
		f := o.flag
		if f == "" {
			f = "?"
		}
		return "opt(" + f + ")[" + opsString(o.body) + "]"
	case "switch":
		return "switch"
	}
	return o.kind
}

func opsString(ops []op) string {
	parts := make([]string, len(ops))
	for i, o := range ops {
		parts[i] = o.String()
	}
	return strings.Join(parts, " ")
}

type half struct {
	decl *ast.FuncDecl
	pos  token.Pos
}

func run(pass *analysis.Pass) (any, error) {
	_ = pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	x := &extractor{
		pass:      pass,
		skipLines: map[string]map[int]bool{},
		cache:     map[*types.Func][]op{},
		inFlight:  map[*types.Func]bool{},
	}

	// Collect //codec:skip lines and the codec directives.
	type pair struct{ enc, dec *half }
	groups := map[string]*pair{}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if strings.Contains(c.Text, "codec:skip") {
					p := pass.Fset.Position(c.Pos())
					if x.skipLines[p.Filename] == nil {
						x.skipLines[p.Filename] = map[int]bool{}
					}
					x.skipLines[p.Filename][p.Line] = true
				}
			}
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				group, role, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				if groups[group] == nil {
					groups[group] = &pair{}
				}
				h := &half{decl: fd, pos: c.Pos()}
				switch role {
				case "encode":
					groups[group].enc = h
				case "decode":
					groups[group].dec = h
				default:
					pass.Reportf(c.Pos(), "malformed %s directive: role %q is not encode or decode", Directive, role)
				}
			}
		}
	}

	names := make([]string, 0, len(groups))
	for g := range groups {
		names = append(names, g)
	}
	sort.Strings(names)
	for _, g := range names {
		p := groups[g]
		if p.enc == nil || p.dec == nil {
			h := p.enc
			missing := "decode"
			if h == nil {
				h, missing = p.dec, "encode"
			}
			lintutil.Report(pass, ident(h.decl), name,
				"codec group %q has no %s half in this package", g, missing)
			continue
		}
		encOps := x.funcOps(p.enc.decl)
		decOps := x.funcOps(p.dec.decl)
		c := &comparer{pass: pass, group: g, enc: p.enc, dec: p.dec}
		c.compare(encOps, decOps)
	}
	return nil, nil
}

func ident(fd *ast.FuncDecl) ast.Node { return fd.Name }

func parseDirective(comment string) (group, role string, ok bool) {
	text := strings.TrimPrefix(comment, "//")
	if !strings.HasPrefix(text, Directive) {
		return "", "", false
	}
	fields := strings.Fields(strings.TrimPrefix(text, Directive))
	if len(fields) != 2 {
		return "", "", false
	}
	return fields[0], fields[1], true
}

// ---------------------------------------------------------------------------
// Extraction: lower a function body to an op stream.

type extractor struct {
	pass      *analysis.Pass
	skipLines map[string]map[int]bool
	cache     map[*types.Func][]op
	inFlight  map[*types.Func]bool
}

func (x *extractor) funcOps(fd *ast.FuncDecl) []op {
	return x.normalize(x.stmtOps(fd.Body.List, fd))
}

// stmtOps lowers a statement list in source order.
func (x *extractor) stmtOps(stmts []ast.Stmt, fd *ast.FuncDecl) []op {
	var out []op
	for _, st := range stmts {
		out = append(out, x.oneStmt(st, fd)...)
	}
	return out
}

func (x *extractor) oneStmt(st ast.Stmt, fd *ast.FuncDecl) []op {
	switch st := st.(type) {
	case *ast.ExprStmt:
		return x.exprOps(st.X)
	case *ast.AssignStmt:
		var out []op
		for _, r := range st.Rhs {
			out = append(out, x.exprOps(r)...)
		}
		return out
	case *ast.DeclStmt:
		var out []op
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				out = append(out, x.exprOps(e)...)
				return false
			}
			return true
		})
		return out
	case *ast.ReturnStmt:
		var out []op
		for _, r := range st.Results {
			out = append(out, x.exprOps(r)...)
		}
		return out
	case *ast.BlockStmt:
		return x.stmtOps(st.List, fd)
	case *ast.IfStmt:
		return x.ifOps(st, fd)
	case *ast.SwitchStmt:
		return x.switchOps(st, fd)
	case *ast.ForStmt:
		return x.loopOps(st.Cond, nil, st.Body, st.Pos(), fd)
	case *ast.RangeStmt:
		return x.loopOps(nil, st.X, st.Body, st.Pos(), fd)
	case *ast.IncDecStmt, *ast.BranchStmt, *ast.DeferStmt, *ast.GoStmt,
		*ast.SelectStmt, *ast.TypeSwitchStmt, *ast.LabeledStmt, *ast.SendStmt:
		return nil
	}
	return nil
}

func (x *extractor) ifOps(st *ast.IfStmt, fd *ast.FuncDecl) []op {
	var out []op
	if st.Init != nil {
		out = append(out, x.oneStmt(st.Init, fd)...)
	}
	out = append(out, x.exprOps(st.Cond)...)
	body := x.normalize(x.stmtOps(st.Body.List, fd))
	var elseOps []op
	if st.Else != nil {
		elseOps = x.normalize(x.oneStmt(st.Else, fd))
	}
	switch {
	case len(body) == 0 && len(elseOps) == 0:
		// Validation / bookkeeping branch: no codec content.
	case isErrGuard(st.Cond):
		// Error plumbing is transparent: the ops happen on the success path.
		out = append(out, body...)
		out = append(out, elseOps...)
	case len(body) > 0 && len(elseOps) > 0:
		if opsEqual(body, elseOps) {
			out = append(out, body...)
		} else {
			// Diverging branches cannot be modeled as one canonical layout.
			lintutil.Report(x.pass, st, name,
				"conditional encodes different layouts ([%s] vs [%s]): a canonical codec must write one shape per value",
				opsString(body), opsString(elseOps))
			out = append(out, body...)
		}
	default:
		section := body
		if len(section) == 0 {
			section = elseOps
		}
		out = append(out, op{kind: "opt", flag: x.flagKey(st.Cond, fd), body: section, pos: st.Pos()})
	}
	return out
}

func (x *extractor) switchOps(st *ast.SwitchStmt, fd *ast.FuncDecl) []op {
	var out []op
	if st.Init != nil {
		out = append(out, x.oneStmt(st.Init, fd)...)
	}
	if st.Tag != nil {
		out = append(out, x.exprOps(st.Tag)...)
	}
	sw := op{kind: "switch", pos: st.Pos()}
	any := false
	for _, cl := range st.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		key := "default"
		if cc.List != nil {
			parts := make([]string, len(cc.List))
			for i, e := range cc.List {
				parts[i] = types.ExprString(e)
			}
			key = strings.Join(parts, ",")
		}
		body := x.normalize(x.stmtOps(cc.Body, fd))
		if len(body) > 0 {
			any = true
		}
		sw.cases = append(sw.cases, swCase{key: key, body: body})
	}
	if any {
		out = append(out, sw)
	}
	return out
}

func (x *extractor) loopOps(cond ast.Expr, rangeX ast.Expr, body *ast.BlockStmt, pos token.Pos, fd *ast.FuncDecl) []op {
	var out []op
	if cond != nil {
		out = append(out, x.exprOps(cond)...)
	}
	if rangeX != nil {
		out = append(out, x.exprOps(rangeX)...)
	}
	inner := x.normalize(x.stmtOps(body.List, fd))
	if len(inner) == 0 {
		return out
	}
	return append(out, op{kind: "rep", body: inner, pos: pos})
}

// exprOps lowers one expression tree, left to right.
func (x *extractor) exprOps(e ast.Expr) []op {
	var out []op
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			ops, recurse := x.callOps(n)
			out = append(out, ops...)
			return recurse
		}
		return true
	})
	// Drop ops on //codec:skip lines (framing fields such as a length
	// prefix that the paired half strips before decoding).
	kept := out[:0]
	for _, o := range out {
		p := x.pass.Fset.Position(o.pos)
		if x.skipLines[p.Filename][p.Line] {
			continue
		}
		kept = append(kept, o)
	}
	return kept
}

// readerOps maps the repo's bounds-checked reader methods to op shapes.
var readerOps = map[string][]string{
	"u8":      {"u8"},
	"u16":     {"u16"},
	"u32":     {"u32"},
	"u64":     {"u64"},
	"f64":     {"u64"},
	"take":    {"bytes"},
	"bytes16": {"u16", "bytes"},
	"f64s":    {"vec"},
	"point":   {"u16", "vec"},
}

// callOps classifies one call. recurse reports whether the walk should
// descend into the call's children (arguments).
func (x *extractor) callOps(call *ast.CallExpr) (ops []op, recurse bool) {
	// Builtin append on a byte slice: ellipsis is a byte-string write, each
	// extra scalar argument one u8.
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
		if _, isBuiltin := x.pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && len(call.Args) > 0 {
			if isByteSlice(x.pass.TypesInfo.TypeOf(call.Args[0])) {
				if call.Ellipsis != token.NoPos {
					return []op{{kind: "bytes", pos: call.Pos()}}, true
				}
				for range call.Args[1:] {
					ops = append(ops, op{kind: "u8", pos: call.Pos()})
				}
				return ops, true
			}
			return nil, true // appending structure, not bytes; scan args
		}
	}
	fn, _ := typeutil.Callee(x.pass.TypesInfo, call).(*types.Func)
	if fn == nil || fn.Pkg() == nil {
		return nil, true // conversion or dynamic call: scan children
	}
	sig, _ := fn.Type().(*types.Signature)
	if fn.Pkg().Path() == "encoding/binary" {
		switch {
		case strings.HasPrefix(fn.Name(), "AppendUint"):
			kind := "u" + strings.TrimPrefix(fn.Name(), "AppendUint")
			if len(call.Args) == 2 && containsCRC(x.pass, call.Args[1]) {
				kind = "crc"
			}
			return []op{{kind: kind, pos: call.Pos()}}, false
		case strings.HasPrefix(fn.Name(), "PutUint"):
			return nil, false // in-place patch of already-counted framing
		}
		return nil, true
	}
	if sig != nil && sig.Recv() != nil && fn.Pkg() == x.pass.Pkg {
		if shapes, ok := readerOps[fn.Name()]; ok {
			for _, k := range shapes {
				ops = append(ops, op{kind: k, pos: call.Pos()})
			}
			return ops, false
		}
	}
	// Package-local helper (function or method): inline its ops so
	// appendBytes16-style wrappers compare against their reader twins.
	if fn.Pkg() == x.pass.Pkg {
		return x.inlined(fn), true
	}
	return nil, true
}

// inlined returns a package-local callee's op stream (cached, cycle-safe).
func (x *extractor) inlined(fn *types.Func) []op {
	if ops, ok := x.cache[fn]; ok {
		return ops
	}
	if x.inFlight[fn] {
		return nil // recursion: treat the nested call as opaque
	}
	var decl *ast.FuncDecl
	for _, f := range x.pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if def, ok := x.pass.TypesInfo.Defs[fd.Name].(*types.Func); ok && def == fn {
					decl = fd
				}
			}
		}
	}
	if decl == nil {
		return nil
	}
	x.inFlight[fn] = true
	ops := x.normalize(x.stmtOps(decl.Body.List, decl))
	delete(x.inFlight, fn)
	x.cache[fn] = ops
	return ops
}

// normalize collapses repeated-scalar loops to vectors and drops framing:
// rep[u64] and rep[vec] become vec (an n×m float block reads the same as a
// flat one), crc ops vanish, and op-free switches dissolve.
func (x *extractor) normalize(ops []op) []op {
	var out []op
	for _, o := range ops {
		switch o.kind {
		case "crc":
			continue
		case "rep":
			body := x.normalize(o.body)
			if len(body) == 0 {
				continue
			}
			if len(body) == 1 && (body[0].kind == "u64" || body[0].kind == "vec") {
				out = append(out, op{kind: "vec", pos: o.pos})
				continue
			}
			out = append(out, op{kind: "rep", body: body, pos: o.pos})
		case "opt":
			body := x.normalize(o.body)
			if len(body) == 0 {
				continue
			}
			out = append(out, op{kind: "opt", flag: o.flag, body: body, pos: o.pos})
		case "switch":
			any := false
			cases := make([]swCase, 0, len(o.cases))
			for _, c := range o.cases {
				b := x.normalize(c.body)
				if len(b) > 0 {
					any = true
				}
				cases = append(cases, swCase{key: c.key, body: b})
			}
			if !any {
				continue
			}
			out = append(out, op{kind: "switch", cases: cases, pos: o.pos})
		default:
			out = append(out, o)
		}
	}
	return out
}

// flagKey names the constant gating an optional section: a constant
// referenced directly in the condition, or — for an `if hasX` bool — the
// constant OR-ed into the flags word under the same bool elsewhere in the
// function (the `if hasX { flags |= FlagX }` idiom).
func (x *extractor) flagKey(cond ast.Expr, fd *ast.FuncDecl) string {
	key := ""
	ast.Inspect(cond, func(n ast.Node) bool {
		if key != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := x.pass.TypesInfo.ObjectOf(id).(*types.Const); ok && c.Name() != "true" && c.Name() != "false" {
			key = c.Name()
			return false
		}
		return true
	})
	if key != "" {
		return key
	}
	// `if hasX { section }` with `if hasX { flags |= FlagX }` elsewhere.
	condID, ok := cond.(*ast.Ident)
	if !ok {
		return ""
	}
	condObj := x.pass.TypesInfo.ObjectOf(condID)
	if condObj == nil {
		return ""
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if key != "" {
			return false
		}
		ifSt, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guard, ok := ifSt.Cond.(*ast.Ident)
		if !ok || x.pass.TypesInfo.ObjectOf(guard) != condObj {
			return true
		}
		for _, st := range ifSt.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || as.Tok != token.OR_ASSIGN {
				continue
			}
			ast.Inspect(as.Rhs[0], func(m ast.Node) bool {
				if key != "" {
					return false
				}
				if id, ok := m.(*ast.Ident); ok {
					if c, ok := x.pass.TypesInfo.ObjectOf(id).(*types.Const); ok {
						key = c.Name()
						return false
					}
				}
				return true
			})
		}
		return key == ""
	})
	return key
}

func isErrGuard(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == "err" {
			found = true
			return false
		}
		return !found
	})
	return found
}

func containsCRC(pass *analysis.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "hash/crc32" {
			found = true
			return false
		}
		return !found
	})
	return found
}

func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// ---------------------------------------------------------------------------
// Comparison.

type comparer struct {
	pass     *analysis.Pass
	group    string
	enc, dec *half
	reported bool
}

// compare walks both op streams in lockstep and reports the first
// divergence per pair (later ones are usually knock-on noise).
func (c *comparer) compare(enc, dec []op) {
	c.walk(enc, dec, "")
}

func (c *comparer) report(pos token.Pos, format string, args ...any) {
	if c.reported || lintutil.Suppressed(c.pass, pos, name) {
		return
	}
	c.reported = true
	prefix := fmt.Sprintf("codec %q: ", c.group)
	c.pass.Reportf(pos, prefix+format, args...)
}

func (c *comparer) walk(enc, dec []op, path string) {
	n := len(enc)
	if len(dec) < n {
		n = len(dec)
	}
	for i := 0; i < n; i++ {
		if c.reported {
			return
		}
		e, d := enc[i], dec[i]
		if e.kind != d.kind {
			c.report(e.pos, "encode writes %s where decode reads %s (step %d%s; decode at %s)",
				e.String(), d.String(), i+1, path, c.pass.Fset.Position(d.pos))
			return
		}
		switch e.kind {
		case "rep":
			c.walk(e.body, d.body, path+" > rep")
		case "opt":
			if e.flag == "" || d.flag == "" {
				side, pos := "encode", e.pos
				if e.flag != "" {
					side, pos = "decode", d.pos
				}
				c.report(pos, "%s has an optional section with no flag tie: the gating condition must "+
					"set/test a flag constant so presence is explicit on the wire", side)
				return
			}
			if e.flag != d.flag {
				c.report(e.pos, "optional section gated on %s in encode but %s in decode (at %s)",
					e.flag, d.flag, c.pass.Fset.Position(d.pos))
				return
			}
			c.walk(e.body, d.body, path+" > opt("+e.flag+")")
		case "switch":
			c.walkSwitch(e, d, path)
		}
	}
	if c.reported {
		return
	}
	if len(enc) > len(dec) {
		o := enc[len(dec)]
		c.report(o.pos, "encode writes %s with no matching read in decode (%s reads %d op(s)%s, encode writes %d)",
			o.String(), c.dec.decl.Name.Name, len(dec), path, len(enc))
	} else if len(dec) > len(enc) {
		o := dec[len(enc)]
		c.report(o.pos, "decode reads %s with no matching write in encode (%s writes %d op(s)%s, decode reads %d)",
			o.String(), c.enc.decl.Name.Name, len(enc), path, len(dec))
	}
}

func (c *comparer) walkSwitch(e, d op, path string) {
	em := map[string][]op{}
	for _, cs := range e.cases {
		em[cs.key] = cs.body
	}
	dm := map[string][]op{}
	for _, cs := range d.cases {
		dm[cs.key] = cs.body
	}
	keys := make([]string, 0, len(em))
	for k := range em {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if c.reported {
			return
		}
		db, ok := dm[k]
		if !ok {
			c.report(e.pos, "encode switch case %q has no matching decode case (decode at %s)",
				k, c.pass.Fset.Position(d.pos))
			return
		}
		c.walk(em[k], db, path+" > case "+k)
	}
	for k := range dm {
		if c.reported {
			return
		}
		if _, ok := em[k]; !ok {
			c.report(d.pos, "decode switch case %q has no matching encode case (encode at %s)",
				k, c.pass.Fset.Position(e.pos))
			return
		}
	}
}

func opsEqual(a, b []op) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].kind != b[i].kind || a[i].flag != b[i].flag {
			return false
		}
		if !opsEqual(a[i].body, b[i].body) {
			return false
		}
		if len(a[i].cases) != len(b[i].cases) {
			return false
		}
		for j := range a[i].cases {
			if a[i].cases[j].key != b[i].cases[j].key || !opsEqual(a[i].cases[j].body, b[i].cases[j].body) {
				return false
			}
		}
	}
	return true
}
