package codeclint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/codeclint"
)

func TestCodeclint(t *testing.T) {
	analyzertest.Run(t, "testdata", codeclint.Analyzer, "codec")
}
