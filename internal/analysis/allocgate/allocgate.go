// Package allocgate turns the compiler's escape analysis into a build
// gate: functions annotated `//hbo:noalloc` (the GP predict kernel, the
// wire codec, the shard drain hot path) must stay free of heap escapes, so
// a regression that would show up as AllocsPerRun creep in a benchmark
// fails the build instead.
//
// The gate recompiles the packages containing annotations with
// `go build -gcflags=-m=2`, parses the "escapes to heap" / "moved to heap"
// diagnostics, and reports any that land inside an annotated function
// body. Two exemptions, both visible in source:
//
//   - arguments to fmt.Errorf / errors.New / panic escape by construction
//     but sit on cold error paths the hot loop never takes; lines spanned
//     by such calls are exempt.
//   - a line marked `//hbo:allowalloc <reason>` is exempt — the scratch
//     warm-up allocation in GP.PredictInto is the canonical case. The
//     reason is mandatory, same as //lint:allow.
//
// Escape positions are attributed to the allocation site, so helpers
// called from an annotated function are gated only if annotated
// themselves — annotate the helper too when it sits on the hot path.
package allocgate

import (
	"bufio"
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Directive marks a function whose body must not allocate.
const Directive = "hbo:noalloc"

// AllowDirective exempts one line, with a mandatory reason.
const AllowDirective = "hbo:allowalloc"

// Target is one annotated function.
type Target struct {
	Func  string // name as declared ("PredictInto", "AppendFrame")
	File  string // path relative to the module root, slash-separated
	Start int    // first line of the declaration
	End   int    // last line of the body
	allow map[int]bool
}

// Finding is one escape diagnostic inside an annotated function, or a
// malformed directive.
type Finding struct {
	File string
	Line int
	Col  int
	Func string // enclosing annotated function ("" for directive errors)
	Msg  string
}

func (f Finding) String() string {
	if f.Func == "" {
		return fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s in //hbo:noalloc %s", f.File, f.Line, f.Col, f.Msg, f.Func)
}

// skipDirs are tree roots that never hold gated code.
var skipDirs = map[string]bool{
	".git": true, "bin": true, "testdata": true, "third_party": true, "results": true,
}

// Scan walks the module rooted at root and returns every //hbo:noalloc
// target plus findings for malformed directives.
func Scan(root string) ([]Target, []Finding, error) {
	var targets []Target
	var findings []Finding
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if path != root && (skipDirs[d.Name()] || strings.HasPrefix(d.Name(), ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ts, fs, err := scanFile(path, filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		targets = append(targets, ts...)
		findings = append(findings, fs...)
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Slice(targets, func(i, j int) bool {
		if targets[i].File != targets[j].File {
			return targets[i].File < targets[j].File
		}
		return targets[i].Start < targets[j].Start
	})
	return targets, findings, nil
}

func scanFile(path, rel string) ([]Target, []Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
	if err != nil {
		return nil, nil, err
	}
	marked := false
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, Directive) || strings.Contains(c.Text, AllowDirective) {
				marked = true
			}
		}
	}
	if !marked {
		return nil, nil, nil
	}

	// Lines exempted by //hbo:allowalloc, shared by all targets in the file.
	allow := map[int]bool{}
	var findings []Finding
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			i := strings.Index(text, AllowDirective)
			if i < 0 {
				continue
			}
			if len(strings.Fields(text[i+len(AllowDirective):])) == 0 {
				findings = append(findings, Finding{File: rel, Line: fset.Position(c.Pos()).Line,
					Msg: AllowDirective + " directive needs a reason: say why this allocation is intended"})
				continue
			}
			allow[fset.Position(c.Pos()).Line] = true
		}
	}

	var targets []Target
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		annotated := false
		for _, c := range fd.Doc.List {
			if strings.HasPrefix(strings.TrimPrefix(c.Text, "//"), Directive) {
				annotated = true
			}
		}
		if !annotated {
			continue
		}
		t := Target{
			Func:  fd.Name.Name,
			File:  rel,
			Start: fset.Position(fd.Pos()).Line,
			End:   fset.Position(fd.Body.End()).Line,
			allow: map[int]bool{},
		}
		for l := range allow {
			if l >= t.Start && l <= t.End {
				t.allow[l] = true
			}
		}
		// Cold error paths: every line spanned by a fmt.Errorf, errors.New,
		// or panic call escapes its arguments by construction.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isErrCall(call) {
				return true
			}
			from, to := fset.Position(call.Pos()).Line, fset.Position(call.End()).Line
			for l := from; l <= to; l++ {
				t.allow[l] = true
			}
			return true
		})
		targets = append(targets, t)
	}
	return targets, findings, nil
}

func isErrCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		return (pkg.Name == "fmt" && fun.Sel.Name == "Errorf") ||
			(pkg.Name == "errors" && fun.Sel.Name == "New")
	}
	return false
}

// diagRe matches one compiler escape diagnostic.
var diagRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*)$`)

// Check runs the gate over the module rooted at root using the given go
// binary ("go" for $PATH). It returns the targets gated, the findings, and
// an error only for infrastructure failures (a broken build, an unreadable
// tree) — findings are the caller's verdict to apply.
func Check(goBin, root string) ([]Target, []Finding, error) {
	targets, findings, err := Scan(root)
	if err != nil {
		return nil, nil, err
	}
	if len(targets) == 0 {
		return nil, findings, nil
	}

	// Recompile only the packages that contain annotations.
	pkgSet := map[string]bool{}
	for _, t := range targets {
		pkgSet["./"+filepath.ToSlash(filepath.Dir(t.File))] = true
	}
	pkgs := make([]string, 0, len(pkgSet))
	for p := range pkgSet {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)

	args := append([]string{"build", "-gcflags=-m=2"}, pkgs...)
	cmd := exec.Command(goBin, args...)
	cmd.Dir = root
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	runErr := cmd.Run()

	byFile := map[string][]Target{}
	for _, t := range targets {
		byFile[t.File] = append(byFile[t.File], t)
	}
	if runErr != nil {
		return targets, findings, fmt.Errorf("go build failed: %v\n%s", runErr, out.String())
	}
	seen := map[string]bool{}
	sc := bufio.NewScanner(&out)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := diagRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		msg := strings.TrimSuffix(m[4], ":")
		if !strings.Contains(msg, "escapes to heap") && !strings.Contains(msg, "moved to heap") {
			continue
		}
		file := filepath.ToSlash(m[1])
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		for _, t := range byFile[file] {
			if line < t.Start || line > t.End || t.allow[line] {
				continue
			}
			// One finding per source position: -m=2 narrates the same escape
			// several ways ("escapes to heap" with flow, "moved to heap: x").
			key := fmt.Sprintf("%s:%d:%d", file, line, col)
			if seen[key] {
				continue
			}
			seen[key] = true
			findings = append(findings, Finding{File: file, Line: line, Col: col, Func: t.Func, Msg: msg})
		}
	}
	if err := sc.Err(); err != nil {
		return targets, findings, err
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].File != findings[j].File {
			return findings[i].File < findings[j].File
		}
		if findings[i].Line != findings[j].Line {
			return findings[i].Line < findings[j].Line
		}
		return findings[i].Col < findings[j].Col
	})
	return targets, findings, nil
}
