package allocgate

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway module and returns its root.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for name, src := range files {
		path := filepath.Join(root, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func requireGo(t *testing.T) {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go binary not on PATH")
	}
}

const goMod = "module escapecheck\n\ngo 1.21\n"

// TestDeliberateEscapeFails is the acceptance check: adding a heap escape
// to a //hbo:noalloc function must fail the gate.
func TestDeliberateEscapeFails(t *testing.T) {
	requireGo(t)
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"esc/esc.go": `package esc

//hbo:noalloc
func Bad() *int {
	x := 42
	return &x // deliberate escape: x moves to the heap
}

//hbo:noalloc
func Good(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}

// Free is unannotated: its escape is not the gate's business.
func Free() *int {
	y := 1
	return &y
}
`,
	})
	targets, findings, err := Check("go", root)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(targets) != 2 {
		t.Fatalf("got %d targets, want 2 (Bad, Good): %v", len(targets), targets)
	}
	if len(findings) != 1 {
		t.Fatalf("got findings %v, want exactly one (Bad's escape)", findings)
	}
	f := findings[0]
	if f.Func != "Bad" || !strings.Contains(f.Msg, "heap") {
		t.Fatalf("finding %v: want a heap escape attributed to Bad", f)
	}
}

// TestExemptions: fmt.Errorf error paths and //hbo:allowalloc lines pass;
// the same allocation without the marker fails.
func TestExemptions(t *testing.T) {
	requireGo(t)
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"esc/esc.go": `package esc

import "fmt"

//hbo:noalloc
func ColdError(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // args escape, but this path is cold
	}
	return nil
}

type scratch struct{ buf []float64 }

//hbo:noalloc
func WarmUp(s *scratch, n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n) //hbo:allowalloc scratch warm-up, happens once
	}
}

//hbo:noalloc
func NoMarker(s *scratch, n int) {
	if cap(s.buf) < n {
		s.buf = make([]float64, n)
	}
}
`,
	})
	_, findings, err := Check("go", root)
	if err != nil {
		t.Fatalf("Check: %v", err)
	}
	if len(findings) != 1 {
		t.Fatalf("got findings %v, want exactly one (NoMarker's make)", findings)
	}
	if findings[0].Func != "NoMarker" {
		t.Fatalf("finding %v: want NoMarker, not the exempted functions", findings[0])
	}
}

// TestAllowallocNeedsReason: a bare marker is itself a finding.
func TestAllowallocNeedsReason(t *testing.T) {
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"esc/esc.go": `package esc

//hbo:noalloc
func F(n int) []int {
	return make([]int, n) //hbo:allowalloc
}
`,
	})
	_, findings, err := Scan(root)
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if len(findings) != 1 || !strings.Contains(findings[0].Msg, "reason") {
		t.Fatalf("got findings %v, want one demanding a reason", findings)
	}
}

// TestBrokenBuildIsAnError: compile failure must surface as err, not as a
// silently clean gate.
func TestBrokenBuildIsAnError(t *testing.T) {
	requireGo(t)
	root := writeModule(t, map[string]string{
		"go.mod": goMod,
		"esc/esc.go": `package esc

//hbo:noalloc
func F() int { return undefinedSymbol }
`,
	})
	if _, _, err := Check("go", root); err == nil {
		t.Fatal("Check on a broken build: got nil error, want failure")
	}
}
