package obslint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/obslint"
)

func TestObslint(t *testing.T) {
	analyzertest.Run(t, "testdata", obslint.Analyzer, "obsuse")
}
