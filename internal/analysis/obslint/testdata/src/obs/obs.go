// Package obs is a minimal stand-in for the repo's internal/obs used by
// analyzer fixtures: the analyzers recognize instruments by package
// basename and type name, so this stub exercises the same code paths.
package obs

type Counter struct{ v uint64 }

func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.v = v
}

type Histogram struct{ sum float64 }

func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.sum += v
}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter            { return nil }
func (r *Registry) Gauge(name string) *Gauge                { return nil }
func (r *Registry) Histogram(name string, b []float64) *Histogram { return nil }
