// Package obsuse exercises every obslint rule: chained registry lookups,
// zero-value instrument construction, and un-gated clock reads feeding
// instruments.
package obsuse

import (
	"time"

	"obs"
)

type server struct {
	reg      *obs.Registry
	requests *obs.Counter
	latency  *obs.Histogram
}

// resolveOnce is the sanctioned pattern: look up at setup, store the
// nil-safe pointer, use the pointer on the hot path.
func (s *server) resolveOnce() {
	s.requests = s.reg.Counter("requests")
	s.latency = s.reg.Histogram("latency_ms", nil)
	s.requests.Inc()
}

func (s *server) chainedLookup() {
	s.reg.Counter("requests").Inc() // want `chained registry lookup Counter\(\.\.\.\)\.Inc\(\.\.\.\)`
	s.reg.Gauge("depth").Set(1)     // want `chained registry lookup Gauge\(\.\.\.\)\.Set\(\.\.\.\)`
}

func zeroValueInstruments() {
	c := obs.Counter{} // want `instrument constructed as a composite literal`
	c.Inc()
	g := new(obs.Gauge) // want `instrument constructed with new\(\)`
	g.Set(2)
	p := &obs.Histogram{} // want `instrument constructed as a composite literal`
	p.Observe(1)
}

func (s *server) ungatedClock() {
	start := time.Now()
	s.latency.Observe(time.Since(start).Seconds()) // want `time\.Now/time\.Since feeds .*Observe without a nil guard`
}

func (s *server) gatedClock() {
	if s.latency == nil {
		return
	}
	start := time.Now()
	s.latency.Observe(time.Since(start).Seconds())
}

func (s *server) gatedInline() {
	if s.latency != nil {
		start := time.Now()
		s.latency.Observe(time.Since(start).Seconds())
	}
}

func (s *server) suppressedChain() {
	//lint:allow obslint one-shot setup path, lookup cost is fine
	s.reg.Counter("boot").Inc()
}

// plainObserve without a clock read needs no gate: instruments are nil-safe
// and pure observers.
func (s *server) plainObserve(v float64) {
	s.latency.Observe(v)
	s.requests.Inc()
}
