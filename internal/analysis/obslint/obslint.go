// Package obslint enforces the observability layer's zero-overhead
// contract (DESIGN.md §10): instruments are resolved once into concrete
// nil-safe pointers, and wall-clock reads exist only to feed instruments on
// paths already gated by a live registry. Three rules:
//
//   - no chained lookup-and-use (reg.Counter("x").Inc()): that re-pays the
//     registry map lookup and mutex on every hit instead of resolving once;
//   - no construction of instruments outside package obs (obs.Counter{} /
//     new(obs.Gauge)): the zero value is not registered anywhere, so its
//     updates are invisible — instruments come from a Registry;
//   - no time.Now/time.Since result feeding an instrument method unless the
//     statement is obs-gated by the nil-receiver idiom, so disabling
//     observability also removes the clock read.
package obslint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "obslint"

var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "enforce the nil-safe resolved-pointer instrument pattern and " +
		"registry-gated wall-clock reads of the obs layer",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var lookupMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func run(pass *analysis.Pass) (any, error) {
	if base := pass.Pkg.Name(); base == "obs" {
		return nil, nil // the implementation itself is exempt
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.CompositeLit)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n, stack)
		case *ast.CompositeLit:
			checkCompositeLit(pass, n)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	// new(obs.Counter) — same hole as a composite literal.
	if isBuiltinNew(pass, call) && len(call.Args) == 1 {
		if t := pass.TypesInfo.TypeOf(call.Args[0]); t != nil && lintutil.IsObsInstrument(types.NewPointer(t)) {
			lintutil.Report(pass, call, name,
				"instrument constructed with new(): obtain it from a Registry so it is registered and snapshot-visible")
		}
		return
	}

	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recvType := pass.TypesInfo.TypeOf(sel.X)
	if recvType == nil {
		return
	}

	if lintutil.IsObsInstrument(recvType) {
		// Chained lookup-and-use: receiver is itself a registry lookup call.
		if inner, ok := sel.X.(*ast.CallExpr); ok && isRegistryLookup(pass, inner) {
			lintutil.Report(pass, call, name,
				"chained registry lookup %s(...).%s(...): resolve the instrument once at setup "+
					"(nil-safe pointer field), not per call site", lookupName(inner), sel.Sel.Name)
		}
		// Wall-clock feeding an instrument without a gate.
		if (sel.Sel.Name == "Observe" || sel.Sel.Name == "Set" || sel.Sel.Name == "Add") &&
			argsReadClock(pass, call) && !lintutil.ObsGated(pass, stack) {
			lintutil.Report(pass, call, name,
				"time.Now/time.Since feeds %s.%s without a nil guard on the instrument: "+
					"gate the clock read behind the resolved pointer (if x == nil { ... })",
				types.TypeString(recvType, types.RelativeTo(pass.Pkg)), sel.Sel.Name)
		}
	}
}

func isBuiltinNew(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok && b.Name() == "new"
}

func isRegistryLookup(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !lookupMethods[sel.Sel.Name] {
		return false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	return t != nil && lintutil.IsObsRegistry(t)
}

func lookupName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "lookup"
}

func argsReadClock(pass *analysis.Pass, call *ast.CallExpr) bool {
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := typeutil.Callee(pass.TypesInfo, inner)
			if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
				(fn.Name() == "Now" || fn.Name() == "Since") {
				found = true
			}
			return !found
		})
	}
	return found
}

func checkCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit) {
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	if lintutil.IsObsInstrument(types.NewPointer(t)) {
		lintutil.Report(pass, lit, name,
			"instrument constructed as a composite literal: the zero value is unregistered "+
				"and invisible to snapshots — obtain it from a Registry")
	}
}
