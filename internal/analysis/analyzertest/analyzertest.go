// Package analyzertest is an offline, network-free stand-in for
// golang.org/x/tools/go/analysis/analysistest (which is not part of the
// toolchain-vendored x/tools subset this repo pins). It loads want-comment
// fixture packages from testdata/src/<pkg>, type-checks them against the
// real standard library via export data produced by `go list -export`
// (served from the local build cache, so no network), runs an analyzer and
// its Requires closure in-process, and diffs reported diagnostics against
// `// want "regexp"` expectations exactly like analysistest does.
//
// Fixture packages may import each other by bare path (testdata/src/obs is
// resolved before the standard library), which is how the obs nil-receiver
// idiom is reproduced in fixtures without importing the real module.
package analyzertest

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each named fixture package from dir/src/<pkg>, applies a, and
// checks diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	h := &harness{
		t:       t,
		fset:    token.NewFileSet(),
		srcRoot: filepath.Join(dir, "src"),
		typed:   map[string]*loadedPkg{},
		exports: map[string]string{},
	}
	for _, pkg := range pkgs {
		h.check(a, pkg)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type harness struct {
	t       *testing.T
	fset    *token.FileSet
	srcRoot string
	typed   map[string]*loadedPkg
	exports map[string]string // stdlib import path -> export data file
	gc      types.Importer
}

// Import implements types.Importer: fixture-local packages win, everything
// else is resolved from compiler export data.
func (h *harness) Import(path string) (*types.Package, error) {
	if lp, err := h.load(path); err == nil && lp != nil {
		return lp.pkg, nil
	} else if err != nil {
		return nil, err
	}
	if h.gc == nil {
		h.gc = importer.ForCompiler(h.fset, "gc", h.lookup)
	}
	return h.gc.Import(path)
}

// load parses and type-checks a fixture package, or returns (nil, nil) if
// no such fixture directory exists.
func (h *harness) load(path string) (*loadedPkg, error) {
	if lp, ok := h.typed[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(h.srcRoot, filepath.FromSlash(path))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil // not a fixture package
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(dir, e.Name()))
	}
	sort.Strings(names)
	for _, fname := range names {
		f, err := parser.ParseFile(h.fset, fname, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %v", fname, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("fixture package %s has no Go files", path)
	}
	h.resolveExports(files)
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: h}
	pkg, err := conf.Check(path, h.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	h.typed[path] = lp
	return lp, nil
}

// resolveExports maps every non-fixture import (transitively) to its export
// data file with a single `go list -export -deps` invocation per batch.
func (h *harness) resolveExports(files []*ast.File) {
	var need []string
	for _, f := range files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, done := h.exports[p]; done {
				continue
			}
			if st, err := os.Stat(filepath.Join(h.srcRoot, filepath.FromSlash(p))); err == nil && st.IsDir() {
				continue // fixture-local
			}
			need = append(need, p)
		}
	}
	if len(need) == 0 {
		return
	}
	args := append([]string{"list", "-export", "-deps", "-json=ImportPath,Export"}, need...)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		h.t.Fatalf("go list -export %v: %v", need, err)
	}
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		var rec struct{ ImportPath, Export string }
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			h.t.Fatalf("decode go list output: %v", err)
		}
		if rec.Export != "" {
			h.exports[rec.ImportPath] = rec.Export
		}
	}
}

func (h *harness) lookup(path string) (io.ReadCloser, error) {
	f, ok := h.exports[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q (is it missing from the fixture imports?)", path)
	}
	return os.Open(f)
}

// check runs a (and its Requires closure, topologically) over the fixture
// package and compares diagnostics to want comments.
func (h *harness) check(a *analysis.Analyzer, path string) {
	h.t.Helper()
	lp, err := h.load(path)
	if err != nil {
		h.t.Fatal(err)
	}
	if lp == nil {
		h.t.Fatalf("fixture package %s not found under %s", path, h.srcRoot)
	}

	results := map[*analysis.Analyzer]any{}
	var diags []analysis.Diagnostic
	var runAnalyzer func(a *analysis.Analyzer, collect bool)
	runAnalyzer = func(a *analysis.Analyzer, collect bool) {
		if _, done := results[a]; done && !collect {
			return
		}
		for _, req := range a.Requires {
			runAnalyzer(req, false)
		}
		pass := &analysis.Pass{
			Analyzer:   a,
			Fset:       h.fset,
			Files:      lp.files,
			Pkg:        lp.pkg,
			TypesInfo:  lp.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if collect {
					diags = append(diags, d)
				}
			},
		}
		res, err := a.Run(pass)
		if err != nil {
			h.t.Fatalf("%s on %s: %v", a.Name, path, err)
		}
		results[a] = res
	}
	runAnalyzer(a, true)
	h.compare(path, lp, diags)
}

type wantKey struct {
	file string
	line int
}

// compare matches diagnostics against // want "re" comments, in both
// directions, exactly like analysistest's expectation algebra (multiple
// quoted patterns per comment allowed).
func (h *harness) compare(path string, lp *loadedPkg, diags []analysis.Diagnostic) {
	h.t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := h.fset.Position(c.Pos())
				key := wantKey{pos.Filename, pos.Line}
				for _, q := range splitQuoted(h.t, strings.TrimPrefix(text, "want ")) {
					re, err := regexp.Compile(q)
					if err != nil {
						h.t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, q, err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	for _, d := range diags {
		pos := h.fset.Position(d.Pos)
		key := wantKey{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[key] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			h.t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
			continue
		}
		wants[key] = append(wants[key][:matched], wants[key][matched+1:]...)
	}
	keys := make([]wantKey, 0, len(wants))
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			h.t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
	_ = path
}

// splitQuoted extracts the double-quoted or backquoted patterns from a want
// comment tail.
func splitQuoted(t *testing.T, s string) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var end int
		switch s[0] {
		case '"':
			end = strings.Index(s[1:], `"`)
		case '`':
			end = strings.Index(s[1:], "`")
		default:
			t.Fatalf("malformed want comment tail: %q", s)
		}
		if end < 0 {
			t.Fatalf("unterminated quote in want comment: %q", s)
		}
		raw := s[:end+2]
		q, err := strconv.Unquote(raw)
		if err != nil {
			t.Fatalf("cannot unquote %q: %v", raw, err)
		}
		out = append(out, q)
		s = strings.TrimSpace(s[end+2:])
	}
	return out
}
