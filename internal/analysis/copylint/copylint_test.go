package copylint_test

import (
	"testing"

	"github.com/mar-hbo/hbo/internal/analysis/analyzertest"
	"github.com/mar-hbo/hbo/internal/analysis/copylint"
)

func TestCopylint(t *testing.T) {
	analyzertest.Run(t, "testdata", copylint.Analyzer, "copyfix")
}
