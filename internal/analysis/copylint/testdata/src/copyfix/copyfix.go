// Fixture for copylint: mutexes copied by value through parameters, value
// receivers, and assignments — and the aliasing/construction shapes that
// stay legal.
package copyfix

import "sync"

type store struct {
	mu   sync.Mutex
	data map[string]int
}

func byValParam(s store) int { // want "parameter passes .*store by value"
	return len(s.data)
}

func (s store) byValRecv() int { // want "receiver passes .*store by value"
	return len(s.data)
}

func copyAssign(a *store) int {
	b := *a // want "assignment copies a value containing"
	return len(b.data)
}

func mutexCopy(m *sync.Mutex) {
	c := *m // want "assignment copies a value containing sync.Mutex"
	c.Lock()
	c.Unlock()
}

func elemCopy(arr *[4]store) int {
	e := arr[0] // want "assignment copies a value containing"
	return len(e.data)
}

// fine: pointers alias, composite literals construct a fresh value.
func fine() *store {
	s := &store{data: map[string]int{}}
	t := s // pointer copy: both point at the same lock
	_ = t
	u := store{} // construction, not a copy of live lock state
	return &u
}

// fineParam: pointer parameters share the lock.
func fineParam(s *store) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.data)
}
