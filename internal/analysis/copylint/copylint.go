// Package copylint flags mutexes copied by value: a copied sync.Mutex (or
// any struct transitively containing one) forks the lock state, so the
// copy and the original serialize nothing against each other — the classic
// way a lock-striped store silently loses its striping. Three shapes:
//
//   - a function or method parameter taking a lock-bearing type by value;
//   - a method declared on a lock-bearing value receiver;
//   - an assignment whose right-hand side reads a lock-bearing value out
//     of a variable, field, element, or pointer dereference (composite
//     literals and call results are initialization, not aliasing, and
//     stay legal).
//
// The standard vet copylocks pass covers the same ground module-wide;
// copylint keeps the invariant inside the project's own analyzer suite so
// the offline fixtures pin the exact shapes the session tier must never
// reintroduce, with the same //lint:allow suppression protocol as the
// rest of hbovet.
package copylint

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"github.com/mar-hbo/hbo/internal/analysis/lintutil"
)

const name = "copylint"

var Analyzer = &analysis.Analyzer{
	Name:     name,
	Doc:      "flag sync.Mutex/RWMutex values copied via parameters, value receivers, or assignments",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil), (*ast.AssignStmt)(nil)}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Recv != nil {
				for _, f := range n.Recv.List {
					checkFieldByValue(pass, f, "receiver")
				}
			}
			checkParams(pass, n.Type)
		case *ast.FuncLit:
			checkParams(pass, n.Type)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				checkCopyExpr(pass, rhs)
			}
		}
	})
	return nil, nil
}

func checkParams(pass *analysis.Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	for _, f := range ft.Params.List {
		checkFieldByValue(pass, f, "parameter")
	}
}

func checkFieldByValue(pass *analysis.Pass, f *ast.Field, what string) {
	t := pass.TypesInfo.TypeOf(f.Type)
	if t == nil {
		return
	}
	if path := lockPath(t, nil); path != "" {
		lintutil.Report(pass, f, name,
			"%s passes %s by value: the copy contains %s, so caller and callee lock different mutexes",
			what, t.String(), path)
	}
}

// checkCopyExpr flags an assignment RHS that copies a lock-bearing value
// out of existing storage. Composite literals and call results construct a
// fresh value and are fine.
func checkCopyExpr(pass *analysis.Pass, rhs ast.Expr) {
	switch rhs.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(rhs)
	if t == nil {
		return
	}
	// Reading a pointer, interface, etc. is aliasing, not copying.
	if path := lockPath(t, nil); path != "" {
		lintutil.Report(pass, rhs, name,
			"assignment copies a value containing %s: both copies think they own the lock", path)
	}
}

// lockPath reports a dotted path to a mutex inside t ("" when none):
// "sync.Mutex" itself, or "field mu (sync.Mutex)" for embedded cases.
func lockPath(t types.Type, seen []*types.Named) string {
	if named, ok := t.(*types.Named); ok {
		for _, s := range seen {
			if s == named {
				return ""
			}
		}
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return "sync." + obj.Name()
		}
		seen = append(seen, named)
		return lockPath(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				if p2, ok := trimSelf(p); ok {
					return "field " + f.Name() + " (" + p2 + ")"
				}
				return p
			}
		}
	case *types.Array:
		return lockPath(u.Elem(), seen)
	}
	return ""
}

// trimSelf reports the root mutex type for nested path rendering.
func trimSelf(p string) (string, bool) {
	if p == "sync.Mutex" || p == "sync.RWMutex" {
		return p, true
	}
	return p, false
}
