package faults

import (
	"fmt"
	"io/fs"
	"sync"

	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
)

// FSPlan schedules filesystem faults by zero-based operation index, one
// counter per operation kind. Like the transport Plan's flap windows, the
// schedule is purely deterministic: a given (plan, operation sequence)
// injects exactly the same faults on every run, so crash scenarios are
// replayable in tests.
type FSPlan struct {
	// TornWrites maps a write index to how many bytes reach the file before
	// the write errors — a crash mid-append leaving a torn record.
	TornWrites map[int]int
	// ShortReads maps a read index to the maximum bytes it returns (with a
	// nil error from the fault layer; io semantics surface it as a short
	// read, exactly like a truncated file).
	ShortReads map[int]int
	// CorruptReads maps a read index to a byte offset whose bits are
	// flipped in the returned buffer — silent media corruption.
	CorruptReads map[int]int
	// SyncErrs lists sync indices that fail — a full disk or dying device
	// refusing the fsync.
	SyncErrs map[int]bool
	// OpenErrs lists open indices that fail.
	OpenErrs map[int]bool
}

// FSStats counts operations seen and faults injected.
type FSStats struct {
	Opens, Writes, Reads, Syncs                            int
	OpenErrs, TornWrites, ShortReads, CorruptReads, SyncErrs int
}

// FaultFS wraps a snapstore.FS with scheduled fault injection. Safe for
// concurrent use; operation counters are serialized under one mutex so the
// injection sequence is a deterministic function of operation arrival order.
type FaultFS struct {
	inner snapstore.FS

	mu    sync.Mutex
	plan  FSPlan
	stats FSStats
	opens, writes, reads, syncs int
}

// NewFaultFS wraps inner (nil means the real filesystem) with plan.
func NewFaultFS(inner snapstore.FS, plan FSPlan) *FaultFS {
	if inner == nil {
		inner = snapstore.OSFS{}
	}
	return &FaultFS{inner: inner, plan: plan}
}

// SetPlan swaps the fault schedule mid-run; operation counters continue.
func (f *FaultFS) SetPlan(plan FSPlan) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan = plan
}

// Stats returns a snapshot of the injection counters.
func (f *FaultFS) Stats() FSStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// FSFaultError marks every injected filesystem error, carrying the
// operation kind and index that triggered it.
type FSFaultError struct {
	Op  string
	Idx int
}

func (e *FSFaultError) Error() string {
	return fmt.Sprintf("faults: injected %s error (operation %d)", e.Op, e.Idx)
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (snapstore.File, error) {
	f.mu.Lock()
	idx := f.opens
	f.opens++
	f.stats.Opens++
	fail := f.plan.OpenErrs[idx]
	if fail {
		f.stats.OpenErrs++
	}
	f.mu.Unlock()
	if fail {
		return nil, &FSFaultError{Op: "open", Idx: idx}
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: inner}, nil
}

func (f *FaultFS) Remove(name string) error                   { return f.inner.Remove(name) }
func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) MkdirAll(name string, perm fs.FileMode) error {
	return f.inner.MkdirAll(name, perm)
}
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// faultFile threads per-file operations back through the owning FaultFS so
// the schedule indexes span all files in operation order.
type faultFile struct {
	fs    *FaultFS
	inner snapstore.File
}

// Write passes p through unless this write index is scheduled as torn, in
// which case only the scheduled prefix reaches the file and the call errors
// — the on-disk effect of a crash (or full disk) mid-append.
func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	idx := ff.fs.writes
	ff.fs.writes++
	ff.fs.stats.Writes++
	keep, torn := ff.fs.plan.TornWrites[idx]
	if torn {
		ff.fs.stats.TornWrites++
	}
	ff.fs.mu.Unlock()
	if !torn {
		return ff.inner.Write(p)
	}
	if keep > len(p) {
		keep = len(p)
	}
	n, err := ff.inner.Write(p[:keep])
	if err != nil {
		return n, err
	}
	return n, &FSFaultError{Op: "write", Idx: idx}
}

// ReadAt reads through the inner file, then applies any scheduled short
// read or byte corruption to what came back.
func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	ff.fs.mu.Lock()
	idx := ff.fs.reads
	ff.fs.reads++
	ff.fs.stats.Reads++
	maxN, short := ff.fs.plan.ShortReads[idx]
	flipAt, corrupt := ff.fs.plan.CorruptReads[idx]
	if short {
		ff.fs.stats.ShortReads++
	}
	if corrupt {
		ff.fs.stats.CorruptReads++
	}
	ff.fs.mu.Unlock()
	n, err := ff.inner.ReadAt(p, off)
	if short && n > maxN {
		n = maxN
		err = nil // a short read with no error: the file just "ended early"
	}
	if corrupt && n > 0 {
		p[flipAt%n] ^= 0xFF
	}
	return n, err
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	idx := ff.fs.syncs
	ff.fs.syncs++
	ff.fs.stats.Syncs++
	fail := ff.fs.plan.SyncErrs[idx]
	if fail {
		ff.fs.stats.SyncErrs++
	}
	ff.fs.mu.Unlock()
	if fail {
		return &FSFaultError{Op: "sync", Idx: idx}
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error { return ff.inner.Close() }
