package faults

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func echoServer(t *testing.T) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`))
	}))
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	client := &http.Client{Transport: tr}
	return client.Get(url)
}

func TestPassThrough(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{})
	for i := 0; i < 5; i++ {
		resp, err := get(t, tr, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		var out struct{ OK bool }
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if !out.OK {
			t.Fatal("payload mangled on clean plan")
		}
	}
	st := tr.Stats()
	if st.Requests != 5 || st.Passed != 5 || st.Drops+st.Synth5xx+st.Truncated+st.Corrupted != 0 {
		t.Fatalf("clean plan injected faults: %+v", st)
	}
}

func TestDropsAreDeterministic(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	outcomes := func(seed uint64) []bool {
		tr := NewTransport(nil, seed, Plan{DropRate: 0.5})
		var out []bool
		for i := 0; i < 20; i++ {
			resp, err := get(t, tr, ts.URL)
			if err == nil {
				_ = resp.Body.Close()
			}
			out = append(out, err != nil)
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at request %d", i)
		}
	}
	dropped := 0
	for _, d := range a {
		if d {
			dropped++
		}
	}
	if dropped < 4 || dropped > 16 {
		t.Fatalf("50%% drop rate yielded %d/20 drops", dropped)
	}
	var de *DropError
	tr := NewTransport(nil, 3, Plan{DropRate: 1})
	_, err := get(t, tr, ts.URL)
	if !errors.As(err, &de) {
		t.Fatalf("drop error type = %T (%v)", err, err)
	}
}

func TestSynth5xx(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{ServerErrorRate: 1})
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if st := tr.Stats(); st.Synth5xx != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTruncateAndCorruptBreakJSON(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	for name, plan := range map[string]Plan{
		"truncate": {TruncateRate: 1},
		"corrupt":  {CorruptRate: 1},
	} {
		tr := NewTransport(nil, 9, plan)
		resp, err := get(t, tr, ts.URL)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		var out struct{ OK bool }
		if json.Unmarshal(body, &out) == nil {
			t.Fatalf("%s: body still parses: %q", name, body)
		}
	}
}

func TestFlapWindow(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{Flaps: []Window{{From: 2, To: 5}}})
	for i := 0; i < 8; i++ {
		resp, err := get(t, tr, ts.URL)
		inFlap := i >= 2 && i < 5
		if inFlap && err == nil {
			t.Fatalf("request %d inside flap succeeded", i)
		}
		if !inFlap && err != nil {
			t.Fatalf("request %d outside flap failed: %v", i, err)
		}
		if err == nil {
			_ = resp.Body.Close()
		}
	}
	if st := tr.Stats(); st.Drops != 3 || st.Passed != 5 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLatencyInjection(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{LatencyMeanMS: 12})
	var mu sync.Mutex
	var slept time.Duration
	tr.SetSleep(func(d time.Duration) {
		mu.Lock()
		slept += d
		mu.Unlock()
	})
	for i := 0; i < 3; i++ {
		resp, err := get(t, tr, ts.URL)
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
	}
	if st := tr.Stats(); st.Delayed != 3 {
		t.Fatalf("stats = %+v", st)
	}
	if slept < 30*time.Millisecond {
		t.Fatalf("total injected latency %v, want >= 36ms-ish", slept)
	}
}

func TestSetPlanMidRun(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{DropRate: 1})
	if _, err := get(t, tr, ts.URL); err == nil {
		t.Fatal("chaos phase passed a request")
	}
	tr.SetPlan(Plan{})
	resp, err := get(t, tr, ts.URL)
	if err != nil {
		t.Fatalf("recovered phase still failing: %v", err)
	}
	_ = resp.Body.Close()
}

func TestConcurrentUse(t *testing.T) {
	ts := echoServer(t)
	defer ts.Close()
	tr := NewTransport(nil, 1, Plan{DropRate: 0.3, ServerErrorRate: 0.2})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := get(t, tr, ts.URL)
				if err == nil {
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
			}
		}()
	}
	wg.Wait()
	if st := tr.Stats(); st.Requests != 80 {
		t.Fatalf("requests = %d, want 80", st.Requests)
	}
}
