package faults

import (
	"bytes"
	"errors"
	"testing"

	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
)

// openStore opens a snapstore.FileStore over fsys (nil: the real FS).
func openStore(t *testing.T, dir string, fsys snapstore.FS, opts snapstore.Options) *snapstore.FileStore {
	t.Helper()
	s, err := snapstore.Open(fsys, dir, opts)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

// TestFaultFSTornWrite schedules a torn write under a live FileStore: the
// failed Put must surface the injected error, leave the in-memory index
// unchanged, and a later clean reopen must recover every committed record
// while the torn one never surfaces.
func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FSPlan{})
	opts := snapstore.Options{DisableAutoCompact: true}
	s := openStore(t, dir, ffs, opts)

	if err := s.Put("committed", bytes.Repeat([]byte{1}, 100)); err != nil {
		t.Fatal(err)
	}
	// The next write (index 1) is torn after 30 of its ~127 bytes.
	ffs.SetPlan(FSPlan{TornWrites: map[int]int{1: 30}})
	err := s.Put("torn", bytes.Repeat([]byte{2}, 100))
	var fe *FSFaultError
	if !errors.As(err, &fe) || fe.Op != "write" {
		t.Fatalf("torn put returned %v, want an injected write FSFaultError", err)
	}
	if _, ok, _ := s.Get("torn"); ok {
		t.Fatal("failed put is visible in the index (write-ahead violated)")
	}
	// The store rotated past the torn record; new appends stay reachable.
	if err := s.Put("after", bytes.Repeat([]byte{3}, 100)); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Stats().TornWrites; got != 1 {
		t.Fatalf("injected %d torn writes, want 1", got)
	}

	clean := openStore(t, dir, nil, opts)
	defer clean.Close()
	for _, id := range []string{"committed", "after"} {
		if _, ok, _ := clean.Get(id); !ok {
			t.Fatalf("committed record %q lost across the crash", id)
		}
	}
	if _, ok, _ := clean.Get("torn"); ok {
		t.Fatal("torn record resurrected by recovery")
	}
}

// TestFaultFSSyncError checks that with the fsync policy on, a scheduled
// fsync failure surfaces from Put — the caller knows durability was not
// achieved instead of silently carrying on.
func TestFaultFSSyncError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil, FSPlan{SyncErrs: map[int]bool{0: true}})
	s := openStore(t, dir, ffs, snapstore.Options{Fsync: true, DisableAutoCompact: true})
	defer s.Close()
	err := s.Put("id", []byte("payload"))
	var fe *FSFaultError
	if !errors.As(err, &fe) || fe.Op != "sync" {
		t.Fatalf("put under failing fsync returned %v, want injected sync error", err)
	}
	if ffs.Stats().SyncErrs != 1 {
		t.Fatal("sync error not counted")
	}
}

// TestFaultFSShortReadRecovery injects a short read during the recovery
// scan: the segment appears truncated, so the boot succeeds with only the
// records that fit in what was read.
func TestFaultFSShortReadRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := snapstore.Options{DisableAutoCompact: true}
	s := openStore(t, dir, nil, opts)
	if err := s.Put("first", bytes.Repeat([]byte{1}, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("second", bytes.Repeat([]byte{2}, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Recovery's segment scan is read index 0; cut it to 80 bytes — enough
	// for the first record (~77 bytes) but not the second.
	ffs := NewFaultFS(nil, FSPlan{ShortReads: map[int]int{0: 80}})
	s = openStore(t, dir, ffs, opts)
	defer s.Close()
	if _, ok, _ := s.Get("first"); !ok {
		t.Fatal("record before the short-read horizon lost")
	}
	if _, ok, _ := s.Get("second"); ok {
		t.Fatal("record beyond the short-read horizon surfaced")
	}
	if ffs.Stats().ShortReads != 1 {
		t.Fatal("short read not counted")
	}
}

// TestFaultFSCorruptReadRecovery flips a byte mid-scan: the CRC rejects the
// record, the scan stops there, and the boot still succeeds.
func TestFaultFSCorruptReadRecovery(t *testing.T) {
	dir := t.TempDir()
	opts := snapstore.Options{DisableAutoCompact: true}
	s := openStore(t, dir, nil, opts)
	if err := s.Put("only", bytes.Repeat([]byte{7}, 50)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := NewFaultFS(nil, FSPlan{CorruptReads: map[int]int{0: 20}})
	s = openStore(t, dir, ffs, opts)
	defer s.Close()
	if _, ok, _ := s.Get("only"); ok {
		t.Fatal("bit-rotted record passed the CRC")
	}
	if ffs.Stats().CorruptReads != 1 {
		t.Fatal("corrupt read not counted")
	}
}

// TestFaultFSDeterminism runs the same operation sequence against the same
// plan twice and requires identical stats — the property every chaos test
// leans on.
func TestFaultFSDeterminism(t *testing.T) {
	run := func() FSStats {
		dir := t.TempDir()
		ffs := NewFaultFS(nil, FSPlan{
			TornWrites: map[int]int{2: 10},
			SyncErrs:   map[int]bool{1: true},
		})
		s := openStore(t, dir, ffs, snapstore.Options{Fsync: true, DisableAutoCompact: true})
		for i := 0; i < 4; i++ {
			_ = s.Put("id", bytes.Repeat([]byte{byte(i)}, 40))
		}
		_ = s.Close()
		return ffs.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same plan and sequence diverged: %+v vs %+v", a, b)
	}
	if a.TornWrites != 1 || a.SyncErrs != 1 {
		t.Fatalf("expected both scheduled faults to fire: %+v", a)
	}
}
