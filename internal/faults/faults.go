// Package faults provides a deterministic, seedable fault-injecting
// http.RoundTripper for testing and benchmarking the edge offload path
// under an unreliable link. Every failure decision is drawn from a seeded
// RNG keyed off a per-transport request counter, so a given (seed, plan,
// request sequence) reproduces exactly the same faults — chaos scenarios
// are replayable in tests and benchmarks.
//
// Supported failure modes, composable per request:
//
//   - added latency (lognormal around a mean, i.e. occasional heavy-tail
//     spikes, like a congested wireless link)
//   - connection drops (the request errors before any response)
//   - synthesized 5xx responses (an overloaded or crashing edge server)
//   - truncated response bodies (mid-JSON cut, as on a reset connection)
//   - corrupted response bodies (bit rot / proxy mangling)
//   - flap windows: request-index ranges during which every request is
//     dropped, modeling a hard outage with a scheduled recovery
package faults

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/sim"
)

// Plan describes the fault mix. Rates are independent per-request
// probabilities in [0,1]; a zero Plan passes everything through untouched.
type Plan struct {
	// DropRate is the probability a request fails with a connection error
	// before reaching the server.
	DropRate float64
	// ServerErrorRate is the probability the transport short-circuits the
	// request with a synthesized 503 response.
	ServerErrorRate float64
	// TruncateRate is the probability a successful response body is cut to
	// half its length (invalid JSON mid-document).
	TruncateRate float64
	// CorruptRate is the probability a successful response body has bytes
	// overwritten with garbage.
	CorruptRate float64
	// LatencyMeanMS adds lognormal latency with this mean (ms) to every
	// request; LatencySigma is the shape of the underlying normal (0 gives
	// the constant mean, larger values give heavy-tailed spikes).
	LatencyMeanMS float64
	LatencySigma  float64
	// Flaps are request-index windows [From, To) during which every request
	// is dropped regardless of the rates above.
	Flaps []Window
}

// Window is a half-open request-index range [From, To).
type Window struct{ From, To int }

// Stats counts what the transport did, for assertions and bench reporting.
type Stats struct {
	Requests  int
	Passed    int
	Drops     int
	Synth5xx  int
	Truncated int
	Corrupted int
	Delayed   int
}

// Transport is the fault-injecting RoundTripper. Safe for concurrent use;
// fault decisions are serialized under a mutex so the (seed, plan) draw
// sequence is a deterministic function of request arrival order.
type Transport struct {
	inner http.RoundTripper
	sleep func(time.Duration)

	mu    sync.Mutex
	rng   *sim.RNG
	plan  Plan
	req   int
	stats Stats
}

// NewTransport wraps inner (nil means http.DefaultTransport) with the given
// seed and plan.
func NewTransport(inner http.RoundTripper, seed uint64, plan Plan) *Transport {
	if inner == nil {
		inner = http.DefaultTransport
	}
	return &Transport{inner: inner, rng: sim.NewRNG(seed), plan: plan, sleep: time.Sleep}
}

// SetPlan swaps the fault plan mid-run (e.g. clean → chaos → recovered
// phases of a chaos test). The request counter and RNG stream continue.
func (t *Transport) SetPlan(plan Plan) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.plan = plan
}

// SetSleep overrides the latency-injection sleeper (tests).
func (t *Transport) SetSleep(sleep func(time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sleep = sleep
}

// Stats returns a snapshot of the injection counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Requests returns how many requests the transport has seen.
func (t *Transport) Requests() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.req
}

// decision is what the seeded draw resolved for one request.
type decision struct {
	drop     bool
	synth5xx bool
	truncate bool
	corrupt  bool
	delay    time.Duration
	garbage  uint64
}

// decide consumes a fixed number of draws per request so the stream stays
// aligned regardless of which faults fire.
func (t *Transport) decide() (decision, func(time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := t.req
	t.req++
	t.stats.Requests++
	var d decision
	for _, w := range t.plan.Flaps {
		if idx >= w.From && idx < w.To {
			d.drop = true
		}
	}
	d.drop = d.drop || t.rng.Float64() < t.plan.DropRate
	d.synth5xx = t.rng.Float64() < t.plan.ServerErrorRate
	d.truncate = t.rng.Float64() < t.plan.TruncateRate
	d.corrupt = t.rng.Float64() < t.plan.CorruptRate
	if t.plan.LatencyMeanMS > 0 {
		ms := t.plan.LatencyMeanMS * t.rng.LogNormal(t.plan.LatencySigma)
		d.delay = time.Duration(ms * float64(time.Millisecond))
	}
	d.garbage = t.rng.Uint64()
	switch {
	case d.drop:
		t.stats.Drops++
	case d.synth5xx:
		t.stats.Synth5xx++
	case d.truncate:
		t.stats.Truncated++
	case d.corrupt:
		t.stats.Corrupted++
	default:
		t.stats.Passed++
	}
	if d.delay > 0 {
		t.stats.Delayed++
	}
	return d, t.sleep
}

// DropError is the error returned for injected connection drops.
type DropError struct{ Req int }

func (e *DropError) Error() string {
	return fmt.Sprintf("faults: injected connection drop (request %d)", e.Req)
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d, sleep := t.decide()
	if d.delay > 0 {
		sleep(d.delay)
	}
	if d.drop {
		return nil, &DropError{Req: t.Requests() - 1}
	}
	if d.synth5xx {
		// Drain and close the request body as a real transport would.
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		return &http.Response{
			Status:     "503 Service Unavailable",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{"Content-Type": []string{"text/plain"}},
			Body:    io.NopCloser(bytes.NewReader([]byte("faults: injected server error"))),
			Request: req,
		}, nil
	}
	resp, err := t.inner.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	if d.truncate || d.corrupt {
		body, rerr := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if d.truncate {
			body = body[:len(body)/2]
		} else {
			corrupt(body, d.garbage)
		}
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Del("Content-Length")
	}
	return resp, nil
}

// corrupt overwrites a handful of positions with garbage derived from the
// seeded draw, guaranteed to break a JSON document of any useful size.
func corrupt(body []byte, garbage uint64) {
	if len(body) == 0 {
		return
	}
	for i := 0; i < 8; i++ {
		pos := int((garbage >> (8 * i)) % uint64(len(body)))
		body[pos] = 0xFF
	}
}
