// Package quality implements the virtual-object quality model of the paper
// (§III-A): the per-object degradation error of Eq. 1, the average
// on-screen quality of Eq. 2, and — because the paper borrows the model from
// eAR with parameters "trained offline" — the training pipeline itself:
// fitting (a, b, c, d) to image-quality-assessment samples by alternating
// least squares.
package quality

import (
	"errors"
	"fmt"
	"math"
)

// Params are the trained per-object coefficients of Eq. 1:
//
//	D_error(R, D) = (a·R² + b·R + c) / D^d
//
// where R is the decimation ratio (selected/maximum triangles) and D the
// user-object distance.
type Params struct {
	A, B, C, D float64
}

// Error returns the normalized degradation error for decimation ratio r at
// distance dist, clamped to [0, 1]. Distances are clamped below at a small
// epsilon so the model stays finite when the user walks into an object.
func (p Params) Error(r, dist float64) float64 {
	if dist < 0.1 {
		dist = 0.1
	}
	e := (p.A*r*r + p.B*r + p.C) / math.Pow(dist, p.D)
	if e < 0 {
		return 0
	}
	if e > 1 {
		return 1
	}
	return e
}

// Quality returns 1 − Error, the per-object term of Eq. 2.
func (p Params) Quality(r, dist float64) float64 {
	return 1 - p.Error(r, dist)
}

// Validate rejects parameter sets that cannot come from a sane fit.
func (p Params) Validate() error {
	for _, v := range []float64{p.A, p.B, p.C, p.D} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("quality: non-finite parameter in %+v", p)
		}
	}
	if p.D < 0 {
		return fmt.Errorf("quality: negative distance exponent %v", p.D)
	}
	return nil
}

// ObjectState is one on-screen virtual object's current quality inputs.
type ObjectState struct {
	Params Params
	// Ratio is the object's current decimation ratio R in [0, 1].
	Ratio float64
	// Distance is the current user-object distance in meters.
	Distance float64
}

// Average computes Eq. 2: the mean of (1 − D_error) across the on-screen
// objects. An empty scene has perfect quality by convention (nothing is
// degraded).
func Average(objects []ObjectState) float64 {
	if len(objects) == 0 {
		return 1
	}
	sum := 0.0
	for _, o := range objects {
		sum += o.Params.Quality(o.Ratio, o.Distance)
	}
	return sum / float64(len(objects))
}

// Sample is one offline quality-assessment measurement: the observed
// degradation error of an object rendered at ratio R viewed from distance
// Dist, as produced by an image-quality metric such as GMSD.
type Sample struct {
	R, Dist, Error float64
}

// ErrTooFewSamples is returned when a fit is attempted with fewer samples
// than free parameters.
var ErrTooFewSamples = errors.New("quality: need at least 4 samples spanning 2 distances")

// Fit trains Eq. 1's parameters from measurement samples by alternating
// least squares: holding d fixed, (a, b, c) is a linear least-squares
// problem on errors rescaled by Dist^d; holding the quadratic fixed, d is a
// log-log regression. A handful of alternations converge because each step
// is globally optimal for its block.
func Fit(samples []Sample) (Params, error) {
	if len(samples) < 4 {
		return Params{}, ErrTooFewSamples
	}
	dists := map[float64]struct{}{}
	for _, s := range samples {
		if s.R < 0 || s.R > 1 || s.Dist <= 0 || math.IsNaN(s.Error) {
			return Params{}, fmt.Errorf("quality: invalid sample %+v", s)
		}
		dists[s.Dist] = struct{}{}
	}
	p := Params{D: 1}
	if len(dists) == 1 {
		// Single-distance data cannot identify d; pin it at zero so the
		// quadratic absorbs everything.
		p.D = 0
	}
	for iter := 0; iter < 20; iter++ {
		a, b, c, err := fitQuadratic(samples, p.D)
		if err != nil {
			return Params{}, err
		}
		p.A, p.B, p.C = a, b, c
		if len(dists) == 1 {
			break
		}
		d, ok := fitExponent(samples, p)
		if !ok {
			break
		}
		if math.Abs(d-p.D) < 1e-6 {
			p.D = d
			break
		}
		p.D = d
	}
	if p.D < 0 {
		p.D = 0
	}
	return p, p.Validate()
}

// fitQuadratic solves min Σ (a·R² + b·R + c − Error·Dist^d)² by normal
// equations.
func fitQuadratic(samples []Sample, d float64) (a, b, c float64, err error) {
	// Design matrix columns: R², R, 1. Accumulate X^T X and X^T y.
	var m [3][3]float64
	var rhs [3]float64
	for _, s := range samples {
		y := s.Error * math.Pow(s.Dist, d)
		x := [3]float64{s.R * s.R, s.R, 1}
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				m[i][j] += x[i] * x[j]
			}
			rhs[i] += x[i] * y
		}
	}
	sol, ok := solve3(m, rhs)
	if !ok {
		return 0, 0, 0, errors.New("quality: quadratic fit is singular (too few distinct ratios)")
	}
	return sol[0], sol[1], sol[2], nil
}

// fitExponent regresses log(q(R)/Error) against log(Dist) to recover d.
// Samples where the quadratic predicts non-positive error carry no distance
// information and are skipped.
func fitExponent(samples []Sample, p Params) (float64, bool) {
	var sx, sy, sxx, sxy float64
	n := 0.0
	for _, s := range samples {
		q := p.A*s.R*s.R + p.B*s.R + p.C
		if q <= 1e-9 || s.Error <= 1e-9 {
			continue
		}
		x := math.Log(s.Dist)
		y := math.Log(q / s.Error)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		n++
	}
	if n < 2 {
		return 0, false
	}
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// solve3 solves a 3x3 linear system by Gaussian elimination with partial
// pivoting.
func solve3(m [3][3]float64, rhs [3]float64) ([3]float64, bool) {
	a := m
	b := rhs
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		if math.Abs(a[p][col]) < 1e-12 {
			return [3]float64{}, false
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 3; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [3]float64
	for r := 2; r >= 0; r-- {
		x[r] = b[r]
		for c := r + 1; c < 3; c++ {
			x[r] -= a[r][c] * x[c]
		}
		x[r] /= a[r][r]
	}
	return x, true
}
