package quality

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Truth is the synthetic ground-truth perceptual degradation of one object,
// standing in for GMSD measurements of real rendered frames (the paper's
// image-quality-assessment step, borrowed from eAR). The parametric form
//
//	error(R, D) = Severity · (1 − R)^Gamma / D^DistExp
//
// is deliberately NOT the quadratic of Eq. 1, so the trained model inherits
// a fitting error exactly as the paper's does.
type Truth struct {
	// Severity is the maximum degradation at R → 0 viewed from 1 m.
	Severity float64
	// Gamma shapes how quickly quality is lost as triangles are removed;
	// high-curvature objects have low Gamma (immediate visible loss).
	Gamma float64
	// DistExp is the true distance exponent (farther objects hide loss).
	DistExp float64
}

// Error returns the true degradation error, clamped to [0, 1].
func (t Truth) Error(r, dist float64) float64 {
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	if dist < 0.1 {
		dist = 0.1
	}
	e := t.Severity * math.Pow(1-r, t.Gamma) / math.Pow(dist, t.DistExp)
	if e > 1 {
		return 1
	}
	return e
}

// Measure simulates one GMSD measurement: the true error with multiplicative
// observation noise.
func (t Truth) Measure(r, dist float64, rng *sim.RNG, noiseSigma float64) float64 {
	e := t.Error(r, dist) * rng.LogNormal(noiseSigma)
	if e > 1 {
		e = 1
	}
	return e
}

// CollectSamples runs the offline quality-assessment protocol: measure the
// object at every (ratio, distance) pair in the grid.
func CollectSamples(t Truth, ratios, dists []float64, rng *sim.RNG, noiseSigma float64) []Sample {
	out := make([]Sample, 0, len(ratios)*len(dists))
	for _, r := range ratios {
		for _, d := range dists {
			out = append(out, Sample{R: r, Dist: d, Error: t.Measure(r, d, rng, noiseSigma)})
		}
	}
	return out
}

// Train runs the full offline pipeline for one object: collect GMSD samples
// on a standard grid and fit Eq. 1's parameters, as the paper's server-side
// "virtual object parameter training" does.
func Train(t Truth, rng *sim.RNG, noiseSigma float64) (Params, error) {
	ratios := []float64{0.1, 0.2, 0.35, 0.5, 0.65, 0.8, 0.9, 1.0}
	dists := []float64{0.5, 1, 2, 4}
	return Fit(CollectSamples(t, ratios, dists, rng, noiseSigma))
}

// GeometricDeviation decimates the mesh to the given ratio and returns the
// RMS distance from the original vertices to the nearest decimated vertex,
// normalized by the bounding-box diagonal — a pure-geometry stand-in for
// rendering-based quality metrics, used when a real mesh is available.
func GeometricDeviation(m *mesh.Mesh, ratio float64) (float64, error) {
	if m.TriangleCount() == 0 {
		return 0, fmt.Errorf("quality: empty mesh")
	}
	dec, err := mesh.DecimateToRatio(m, ratio)
	if err != nil {
		return 0, err
	}
	lo, hi := m.Bounds()
	diag := hi.Sub(lo).Norm()
	if diag == 0 {
		return 0, fmt.Errorf("quality: degenerate mesh bounds")
	}
	// Sample at most a few hundred original vertices for tractability.
	step := len(m.Vertices)/256 + 1
	var sumSq float64
	n := 0
	for i := 0; i < len(m.Vertices); i += step {
		v := m.Vertices[i]
		best := math.Inf(1)
		for _, w := range dec.Vertices {
			if d := v.Sub(w).Norm(); d < best {
				best = d
			}
		}
		sumSq += best * best
		n++
	}
	return math.Sqrt(sumSq/float64(n)) / diag, nil
}

// TruthFromMesh derives a plausible ground-truth degradation law from real
// geometry: severity and gamma come from measured geometric deviation at two
// decimation levels, so detailed (high-curvature) meshes really do degrade
// faster than smooth ones.
func TruthFromMesh(m *mesh.Mesh, distExp float64) (Truth, error) {
	d20, err := GeometricDeviation(m, 0.2)
	if err != nil {
		return Truth{}, err
	}
	d50, err := GeometricDeviation(m, 0.5)
	if err != nil {
		return Truth{}, err
	}
	// error(R) = S(1-R)^γ: two equations at R=0.2, R=0.5. The geometric
	// deviations are small fractions of the diagonal; amplify into the
	// perceptual range.
	const amplify = 18.0
	e20 := clamp01(amplify * d20)
	e50 := clamp01(amplify * d50)
	gamma := 1.6
	if d20 > 1e-9 && d50 > 1e-9 && d20 > d50 {
		gamma = math.Log(e20/e50) / math.Log(0.8/0.5)
	}
	if gamma < 0.8 {
		gamma = 0.8
	}
	if gamma > 3 {
		gamma = 3
	}
	severity := e20 / math.Pow(0.8, gamma)
	if severity > 1 {
		severity = 1
	}
	if severity < 0.05 {
		severity = 0.05
	}
	if distExp <= 0 {
		distExp = 1
	}
	return Truth{Severity: severity, Gamma: gamma, DistExp: distExp}, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
