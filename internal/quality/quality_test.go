package quality

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/sim"
)

func TestParamsErrorClamping(t *testing.T) {
	p := Params{A: 2, B: -4, C: 2, D: 1} // 2(R-1)^2: 2 at R=0, 0 at R=1
	if e := p.Error(1, 1); e != 0 {
		t.Fatalf("error at R=1 should be 0, got %v", e)
	}
	if e := p.Error(0, 1); e != 1 {
		t.Fatalf("error at R=0 should clamp to 1, got %v", e)
	}
	// Distance reduces error.
	if p.Error(0.5, 4) >= p.Error(0.5, 1) {
		t.Fatal("error should decrease with distance")
	}
	// Distance clamped below.
	if e := p.Error(0.5, 0); math.IsInf(e, 0) || math.IsNaN(e) {
		t.Fatalf("error at zero distance = %v", e)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := (Params{A: 1, B: -2, C: 1, D: 1}).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Params{A: math.NaN()}).Validate(); err == nil {
		t.Fatal("NaN params passed validation")
	}
	if err := (Params{D: -1}).Validate(); err == nil {
		t.Fatal("negative exponent passed validation")
	}
}

func TestAverageQuality(t *testing.T) {
	if q := Average(nil); q != 1 {
		t.Fatalf("empty scene quality = %v, want 1", q)
	}
	objs := []ObjectState{
		{Params: Params{A: 0, B: 0, C: 0, D: 1}, Ratio: 1, Distance: 1},   // perfect
		{Params: Params{A: 0, B: 0, C: 0.5, D: 0}, Ratio: 1, Distance: 1}, // error 0.5
	}
	if q := Average(objs); math.Abs(q-0.75) > 1e-12 {
		t.Fatalf("average quality = %v, want 0.75", q)
	}
}

func TestFitRecoversQuadraticExactly(t *testing.T) {
	want := Params{A: 0.6, B: -1.1, C: 0.5, D: 1.2}
	var samples []Sample
	for _, r := range []float64{0, 0.25, 0.5, 0.75, 1} {
		for _, d := range []float64{0.5, 1, 2, 4} {
			e := (want.A*r*r + want.B*r + want.C) / math.Pow(d, want.D)
			samples = append(samples, Sample{R: r, Dist: d, Error: e})
		}
	}
	got, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	for name, pair := range map[string][2]float64{
		"A": {got.A, want.A}, "B": {got.B, want.B}, "C": {got.C, want.C}, "D": {got.D, want.D},
	} {
		if math.Abs(pair[0]-pair[1]) > 1e-3 {
			t.Errorf("param %s = %v, want %v", name, pair[0], pair[1])
		}
	}
}

func TestFitApproximatesTruthUnderNoise(t *testing.T) {
	truth := Truth{Severity: 0.7, Gamma: 1.6, DistExp: 1.1}
	rng := sim.NewRNG(5)
	p, err := Train(truth, rng, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	// The fitted model should track the truth within a coarse tolerance
	// over the operating range.
	var worst float64
	for _, r := range []float64{0.3, 0.5, 0.7, 0.9, 1.0} {
		for _, d := range []float64{0.7, 1, 2, 3} {
			diff := math.Abs(p.Error(r, d) - truth.Error(r, d))
			if diff > worst {
				worst = diff
			}
		}
	}
	if worst > 0.12 {
		t.Fatalf("worst fit error = %v, want <= 0.12", worst)
	}
}

func TestFitRejectsBadInput(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Fatal("empty fit succeeded")
	}
	bad := []Sample{{R: 2, Dist: 1, Error: 0.1}, {R: 0.1, Dist: 1, Error: 0.1}, {R: 0.2, Dist: 1, Error: 0.1}, {R: 0.3, Dist: 1, Error: 0.1}}
	if _, err := Fit(bad); err == nil {
		t.Fatal("out-of-range ratio accepted")
	}
	// All samples at the same ratio: the quadratic is unidentifiable.
	same := []Sample{{R: 0.5, Dist: 1, Error: 0.1}, {R: 0.5, Dist: 2, Error: 0.05}, {R: 0.5, Dist: 4, Error: 0.02}, {R: 0.5, Dist: 8, Error: 0.01}}
	if _, err := Fit(same); err == nil {
		t.Fatal("unidentifiable fit succeeded")
	}
}

func TestFitSingleDistancePinsExponent(t *testing.T) {
	var samples []Sample
	for _, r := range []float64{0.1, 0.4, 0.7, 1.0} {
		samples = append(samples, Sample{R: r, Dist: 1, Error: 0.5 * (1 - r)})
	}
	p, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if p.D != 0 {
		t.Fatalf("single-distance fit exponent = %v, want 0", p.D)
	}
}

func TestTruthErrorProperties(t *testing.T) {
	f := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		truth := Truth{
			Severity: 0.2 + 0.8*rng.Float64(),
			Gamma:    0.8 + 2*rng.Float64(),
			DistExp:  0.5 + rng.Float64(),
		}
		r1, r2 := rng.Float64(), rng.Float64()
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		d := 0.3 + 3*rng.Float64()
		// More triangles (higher ratio) can never look worse.
		if truth.Error(r2, d) > truth.Error(r1, d)+1e-12 {
			return false
		}
		e := truth.Error(r1, d)
		return e >= 0 && e <= 1 && truth.Error(1, d) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricDeviationDecreasesWithRatio(t *testing.T) {
	m, err := mesh.Blob(3000, 11, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	d20, err := GeometricDeviation(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	d80, err := GeometricDeviation(m, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if d20 <= d80 {
		t.Fatalf("deviation at 20%% (%v) should exceed deviation at 80%% (%v)", d20, d80)
	}
	if d80 < 0 {
		t.Fatalf("negative deviation %v", d80)
	}
}

func TestTruthFromMesh(t *testing.T) {
	detailed, err := mesh.Blob(3000, 13, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := mesh.SphereWithTriangles(3000)
	if err != nil {
		t.Fatal(err)
	}
	td, err := TruthFromMesh(detailed, 1)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := TruthFromMesh(smooth, 1)
	if err != nil {
		t.Fatal(err)
	}
	if td.Severity <= ts.Severity {
		t.Fatalf("detailed mesh severity %v should exceed smooth %v", td.Severity, ts.Severity)
	}
	for _, tr := range []Truth{td, ts} {
		if tr.Severity < 0.05 || tr.Severity > 1 || tr.Gamma < 0.8 || tr.Gamma > 3 {
			t.Fatalf("truth out of range: %+v", tr)
		}
	}
}

func TestSolve3(t *testing.T) {
	m := [3][3]float64{{2, 1, 0}, {1, 3, 1}, {0, 1, 2}}
	rhs := [3]float64{3, 8, 5}
	x, ok := solve3(m, rhs)
	if !ok {
		t.Fatal("solve3 reported singular")
	}
	// Verify residual.
	for i := 0; i < 3; i++ {
		got := m[i][0]*x[0] + m[i][1]*x[1] + m[i][2]*x[2]
		if math.Abs(got-rhs[i]) > 1e-9 {
			t.Fatalf("row %d residual: got %v want %v", i, got, rhs[i])
		}
	}
	singular := [3][3]float64{{1, 1, 1}, {2, 2, 2}, {3, 3, 3}}
	if _, ok := solve3(singular, rhs); ok {
		t.Fatal("singular system solved")
	}
}
