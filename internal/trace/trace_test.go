package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSeriesAddOrdering(t *testing.T) {
	var s Series
	if err := s.Add(1, 10); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(2, 20); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1.5, 15); err == nil {
		t.Fatal("out-of-order sample accepted")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSeriesWindow(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		if err := s.Add(float64(i*100), float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	w := s.Window(200, 500)
	if len(w) != 3 {
		t.Fatalf("window has %d points, want 3", len(w))
	}
	if w[0].Value != 2 || w[2].Value != 4 {
		t.Fatalf("window values wrong: %+v", w)
	}
}

func TestSummarize(t *testing.T) {
	st := Summarize([]float64{4, 1, 3, 2, 5})
	if st.Count != 5 || st.Mean != 3 || st.Min != 1 || st.Max != 5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.P50 != 3 {
		t.Fatalf("p50 = %v", st.P50)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summarize non-zero")
	}
}

func TestSummarizeQuantileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var vals []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, v)
			}
		}
		if len(vals) == 0 {
			return true
		}
		st := Summarize(vals)
		return st.Min <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	if err := r.Record("a", 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Record("b", 0, 2); err != nil {
		t.Fatal(err)
	}
	if err := r.Record("a", 100, 3); err != nil {
		t.Fatal(err)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
	if r.Series("a").Len() != 2 {
		t.Fatalf("series a has %d points", r.Series("a").Len())
	}
	if r.Series("ghost") != nil {
		t.Fatal("unknown series not nil")
	}
	csv := r.CSV()
	if !strings.HasPrefix(csv, "time_ms,series,value\n") {
		t.Fatalf("csv header wrong: %q", csv[:30])
	}
	if strings.Count(csv, "\n") != 4 {
		t.Fatalf("csv rows = %d, want 3+header", strings.Count(csv, "\n")-1)
	}
}

func TestASCIIChart(t *testing.T) {
	var s Series
	for i := 0; i < 50; i++ {
		if err := s.Add(float64(i), math.Sin(float64(i)/5)); err != nil {
			t.Fatal(err)
		}
	}
	out := ASCIIChart(&s, 40, 8)
	if !strings.Contains(out, "*") {
		t.Fatal("chart has no marks")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Fatalf("chart has %d lines", len(lines))
	}
	if got := ASCIIChart(nil, 40, 8); got != "(empty series)\n" {
		t.Fatalf("nil chart = %q", got)
	}
	// Constant series must not divide by zero.
	var c Series
	_ = c.Add(0, 5)
	_ = c.Add(1, 5)
	if out := ASCIIChart(&c, 10, 4); !strings.Contains(out, "*") {
		t.Fatal("constant series chart empty")
	}
}
