// Package trace records time series from simulation runs and renders them
// as the rows/series the paper's figures report: per-task latency timelines
// (Fig. 2), reward traces (Fig. 8), convergence curves (Figs. 4c, 6, 7).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one (time, value) sample.
type Point struct {
	TimeMS float64
	Value  float64
}

// Series is a named, time-ordered sequence of samples.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a sample; times must be non-decreasing.
func (s *Series) Add(timeMS, value float64) error {
	if n := len(s.Points); n > 0 && timeMS < s.Points[n-1].TimeMS {
		return fmt.Errorf("trace: sample at %v before last %v in series %s", timeMS, s.Points[n-1].TimeMS, s.Name)
	}
	s.Points = append(s.Points, Point{TimeMS: timeMS, Value: value})
	return nil
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Values returns just the sample values.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// Window returns the samples with TimeMS in [from, to).
func (s *Series) Window(from, to float64) []Point {
	var out []Point
	for _, p := range s.Points {
		if p.TimeMS >= from && p.TimeMS < to {
			out = append(out, p)
		}
	}
	return out
}

// Stats summarizes a slice of values.
type Stats struct {
	Count          int
	Mean, Min, Max float64
	P50, P95       float64
}

// Summarize computes summary statistics; an empty input returns zeroes.
func Summarize(values []float64) Stats {
	if len(values) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	return Stats{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
		P50:   quantile(sorted, 0.50),
		P95:   quantile(sorted, 0.95),
	}
}

// quantile interpolates the q-quantile of an already sorted slice.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Recorder collects multiple named series from one run.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Record appends a sample to the named series, creating it on first use.
func (r *Recorder) Record(name string, timeMS, value float64) error {
	s, ok := r.series[name]
	if !ok {
		s = &Series{Name: name}
		r.series[name] = s
		r.order = append(r.order, name)
	}
	return s.Add(timeMS, value)
}

// Series returns the named series, or nil if never recorded.
func (r *Recorder) Series(name string) *Series {
	return r.series[name]
}

// Names returns the series names in first-recorded order.
func (r *Recorder) Names() []string {
	return append([]string(nil), r.order...)
}

// CSV renders all series as a sparse CSV (time, series, value), suitable for
// replotting the paper's figures.
func (r *Recorder) CSV() string {
	var b strings.Builder
	b.WriteString("time_ms,series,value\n")
	for _, name := range r.order {
		for _, p := range r.series[name].Points {
			fmt.Fprintf(&b, "%.1f,%s,%.6g\n", p.TimeMS, name, p.Value)
		}
	}
	return b.String()
}

// ASCIIChart renders a crude fixed-width chart of a series — enough to
// eyeball a timeline in terminal output, the way the paper's figures are
// read.
func ASCIIChart(s *Series, width, height int) string {
	if s == nil || len(s.Points) == 0 || width < 2 || height < 2 {
		return "(empty series)\n"
	}
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		minV = math.Min(minV, p.Value)
		maxV = math.Max(maxV, p.Value)
	}
	//lint:allow errlint exact equality guards the zero-range division below
	if maxV == minV {
		maxV = minV + 1
	}
	t0 := s.Points[0].TimeMS
	t1 := s.Points[len(s.Points)-1].TimeMS
	//lint:allow errlint exact equality guards the zero-range division below
	if t1 == t0 {
		t1 = t0 + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, p := range s.Points {
		x := int((p.TimeMS - t0) / (t1 - t0) * float64(width-1))
		y := int((p.Value - minV) / (maxV - minV) * float64(height-1))
		row := height - 1 - y
		grid[row][x] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [%.3g .. %.3g]\n", s.Name, minV, maxV)
	for _, row := range grid {
		b.WriteString(string(row))
		b.WriteByte('\n')
	}
	return b.String()
}
