// Package sim provides the discrete-event simulation engine used by the SoC
// substrate: a virtual clock, an event queue, and a deterministic random
// number source. Everything in the repository that needs virtual time or
// randomness goes through this package so that experiment runs are exactly
// reproducible from a seed.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (splitmix64 core). It is deliberately not safe for concurrent use; each
// simulation owns its own instance, and derived streams are obtained with
// Split so that adding a consumer does not perturb the draws seen by others.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators built from the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// State returns the generator's current internal state. Passing it to NewRNG
// reconstructs a generator that continues the exact same draw stream — the
// hook session snapshots use to freeze and resume an optimizer's RNG
// bit-identically across process restarts.
func (r *RNG) State() uint64 {
	return r.state
}

// Split derives an independent child stream from the current generator state.
// The parent advances by one draw, so repeated Split calls yield distinct
// children.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform draw in [0, n). It panics if n <= 0, mirroring
// math/rand semantics.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Norm returns a standard normal draw (Box-Muller; one value per call).
func (r *RNG) Norm() float64 {
	// Guard against log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a multiplicative noise factor with median 1 and the given
// sigma of the underlying normal. sigma = 0 returns exactly 1.
func (r *RNG) LogNormal(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma * r.Norm())
}

// Exp returns an exponential draw with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -mean * math.Log(u)
}

// Dirichlet fills out with a symmetric Dirichlet(alpha) draw over len(out)
// components: non-negative entries summing to one. It panics if out is empty.
// Gamma variates are generated with the Marsaglia-Tsang method.
func (r *RNG) Dirichlet(alpha float64, out []float64) {
	if len(out) == 0 {
		panic("sim: Dirichlet needs at least one component")
	}
	sum := 0.0
	for i := range out {
		out[i] = r.gamma(alpha)
		sum += out[i]
	}
	if sum <= 0 {
		// Degenerate draw; fall back to uniform to keep the simplex invariant.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return
	}
	for i := range out {
		out[i] /= sum
	}
}

// gamma draws from Gamma(shape, 1) for shape > 0.
func (r *RNG) gamma(shape float64) float64 {
	if shape < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := r.Float64()
		if u < 1e-300 {
			u = 1e-300
		}
		return r.gamma(shape+1) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u < 1e-300 {
			u = 1e-300
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}
