package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var fired []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { fired = append(fired, tm) })
	}
	for e.Step() {
	}
	if !sort.Float64sAreSorted(fired) {
		t.Fatalf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Fatalf("fired %d events, want %d", len(fired), len(times))
	}
	if got := e.Now(); got != 5 {
		t.Fatalf("clock = %v, want 5", got)
	}
}

func TestEngineTieBreakIsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(7, func() { order = append(order, i) })
	}
	for e.Step() {
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired in order %v, want FIFO", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(1, func() { fired = true })
	ev.Cancel()
	e.RunUntil(10)
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", e.Pending())
	}
}

func TestEngineRunUntilAdvancesClock(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(3, func() {
		count++
		e.After(4, func() { count++ }) // fires at 7, inside horizon
		e.After(100, func() { count++ })
	})
	e.RunUntil(50)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %v, want 50", e.Now())
	}
	e.RunUntil(200)
	if count != 3 {
		t.Fatalf("count = %d, want 3 after extending horizon", count)
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(10)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func() {})
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(42)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first draws")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
	}
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMedianNearOne(t *testing.T) {
	r := NewRNG(11)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(0.3)
	}
	sort.Float64s(vals)
	median := vals[n/2]
	if math.Abs(median-1) > 0.05 {
		t.Fatalf("lognormal median = %v, want ~1", median)
	}
	if r.LogNormal(0) != 1 {
		t.Fatal("LogNormal(0) must be exactly 1")
	}
}

func TestDirichletOnSimplex(t *testing.T) {
	f := func(seed uint64, dim uint8) bool {
		d := int(dim%5) + 1
		r := NewRNG(seed)
		out := make([]float64, d)
		r.Dirichlet(1.0, out)
		sum := 0.0
		for _, v := range out {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(13)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	if mean := sum / n; math.Abs(mean-5) > 0.1 {
		t.Fatalf("exp mean = %v, want ~5", mean)
	}
}

func TestGammaSmallShape(t *testing.T) {
	r := NewRNG(17)
	// shape < 1 exercises the boost path; all draws must be positive finite.
	for i := 0; i < 1000; i++ {
		v := r.gamma(0.3)
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("gamma(0.3) draw %d = %v", i, v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}
