package sim

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/obs"
)

// Action is the callback executed when a scheduled event fires. The engine
// clock has already advanced to the event time when the action runs.
type Action func()

// Event is a scheduled callback in virtual time. Events are ordered by time,
// with sequence number as a deterministic tie-breaker.
type Event struct {
	time   float64
	seq    uint64
	action Action
	// canceled events stay in the heap but are skipped when popped; this is
	// cheaper than heap removal and keeps cancellation O(1).
	canceled bool
	index    int
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Cancel marks the event so it is skipped when its time comes. Canceling an
// already-fired or already-canceled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	//lint:allow errlint exact equality is the tie-break trigger for the seq ordering; virtual times are finite
	if q[i].time != q[j].time {
		return q[i].time < q[j].time
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulation engine. Time is in
// milliseconds of virtual time. The zero value is not usable; construct with
// NewEngine.
type Engine struct {
	now   float64
	seq   uint64
	queue eventQueue
	rng   *RNG

	// Observability instruments; nil (no-op) unless SetObserver is called.
	// Metrics are pure observers of the engine — they never read the RNG or
	// the wall clock, so event order is identical with or without them.
	metFired     *obs.Counter
	metScheduled *obs.Counter
	metQueueLen  *obs.Gauge
}

// SetObserver attaches a metrics registry. Passing nil detaches (restoring
// the zero-overhead path).
func (e *Engine) SetObserver(reg *obs.Registry) {
	e.metFired = reg.Counter("sim.events_fired")
	e.metScheduled = reg.Counter("sim.events_scheduled")
	e.metQueueLen = reg.Gauge("sim.event_queue_len")
}

// NewEngine returns an engine with the clock at zero and the given seed for
// its root random stream.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now returns the current virtual time in milliseconds.
func (e *Engine) Now() float64 { return e.now }

// RNG returns the engine's root random stream. Consumers that need isolation
// from each other should call RNG().Split() once at setup.
func (e *Engine) RNG() *RNG { return e.rng }

// At schedules action at absolute virtual time t. Scheduling in the past
// (t < Now) panics: it always indicates a model bug, and silently clamping
// would hide it.
func (e *Engine) At(t float64, action Action) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %.6f before now %.6f", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic(fmt.Sprintf("sim: scheduling event at non-finite time %v", t))
	}
	e.seq++
	ev := &Event{time: t, seq: e.seq, action: action}
	heap.Push(&e.queue, ev)
	e.metScheduled.Inc()
	e.metQueueLen.Set(float64(len(e.queue)))
	return ev
}

// After schedules action delay milliseconds from now.
func (e *Engine) After(delay float64, action Action) *Event {
	return e.At(e.now+delay, action)
}

// Step fires the next pending event, advancing the clock to its time. It
// returns false when the queue is empty.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.time
		e.metFired.Inc()
		e.metQueueLen.Set(float64(len(e.queue)))
		ev.action()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would be after t, then
// advances the clock to exactly t. Events scheduled by fired actions are
// honored if they fall within the horizon.
func (e *Engine) RunUntil(t float64) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%.6f) is before now %.6f", t, e.now))
	}
	for {
		next, ok := e.peek()
		if !ok || next.time > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// Pending reports the number of live (non-canceled) events in the queue.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

func (e *Engine) peek() (*Event, bool) {
	for e.queue.Len() > 0 {
		ev := e.queue[0]
		if ev.canceled {
			heap.Pop(&e.queue)
			continue
		}
		return ev, true
	}
	return nil, false
}
