package edge

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker-window tests.
type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func TestBreakerOpensAfterConsecutiveFailures(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, 2, time.Second, clk.now)
	if b.snapshot().State != BreakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.recordFailure()
	b.recordFailure()
	if st := b.snapshot().State; st != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", st)
	}
	b.recordFailure()
	if st := b.snapshot(); st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("state after 3 failures = %+v, want open/1", st)
	}
	if b.allow() {
		t.Fatal("open breaker allowed a request")
	}
	if st := b.snapshot(); st.ShortCircuits != 1 {
		t.Fatalf("short circuits = %d, want 1", st.ShortCircuits)
	}
}

func TestBreakerSuccessResetsFailureRun(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(3, 1, time.Second, clk.now)
	b.recordFailure()
	b.recordFailure()
	b.recordSuccess() // run broken
	b.recordFailure()
	b.recordFailure()
	if st := b.snapshot().State; st != BreakerClosed {
		t.Fatalf("interleaved successes still opened the breaker: %v", st)
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, 2, time.Second, clk.now)
	b.recordFailure() // opens
	if b.allow() {
		t.Fatal("allowed while open")
	}
	if b.ready() {
		t.Fatal("ready while open")
	}
	clk.advance(time.Second)
	if !b.ready() {
		t.Fatal("not ready after open window")
	}
	if !b.allow() {
		t.Fatal("probe rejected after open window")
	}
	if st := b.snapshot().State; st != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", st)
	}
	b.recordSuccess()
	if st := b.snapshot().State; st != BreakerHalfOpen {
		t.Fatalf("closed after 1/2 probe successes: %v", st)
	}
	b.recordSuccess()
	if st := b.snapshot().State; st != BreakerClosed {
		t.Fatalf("state after enough probe successes = %v, want closed", st)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	b := newBreaker(1, 1, time.Second, clk.now)
	b.recordFailure()
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("probe rejected")
	}
	b.recordFailure()
	if st := b.snapshot(); st.State != BreakerOpen || st.Opens != 2 {
		t.Fatalf("failed probe state = %+v, want open/2", st)
	}
	// The fresh window starts from the reopen, not the original open.
	clk.advance(900 * time.Millisecond)
	if b.allow() {
		t.Fatal("reopened breaker allowed a request inside the fresh window")
	}
}

func TestBreakerStateString(t *testing.T) {
	for st, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q", st, st.String())
		}
	}
}
