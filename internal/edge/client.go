package edge

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/sim"
)

// ClientConfig tunes the client's fault-tolerance behaviour: per-attempt
// timeouts, capped exponential backoff with deterministic jitter for the
// (idempotent) POSTs, the circuit breaker, and response-size bounds.
type ClientConfig struct {
	// Timeout bounds each individual HTTP attempt.
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (so a call
	// makes at most 1+MaxRetries attempts). All three edge endpoints are
	// pure computations, hence idempotent and safe to retry. 0 disables
	// retries — the fail-stop client the chaos bench compares against.
	MaxRetries int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts: base·2^(attempt−1), capped, with up to 50%
	// deterministic jitter subtracted.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// JitterSeed seeds the backoff jitter stream, keeping retry timing
	// reproducible under the fault injector.
	JitterSeed uint64
	// MaxResponseBytes bounds how much of a response body is read; larger
	// responses are rejected (a mesh at Table II sizes is well under 8 MiB).
	MaxResponseBytes int64
	// MaxIdleConnsPerHost sizes the keep-alive pool of the client's default
	// transport. The stdlib default of 2 throttles a multi-session load
	// generator into redialing almost every request; DefaultClientConfig
	// sets a pool wide enough for a full 256-session fleet. Ignored when
	// Transport is set — an explicit transport owns its own pooling.
	MaxIdleConnsPerHost int
	// BreakerFailureThreshold consecutive failed attempts open the circuit;
	// after BreakerOpenFor it half-opens, and BreakerSuccessThreshold
	// consecutive successful probes close it again.
	BreakerFailureThreshold int
	BreakerSuccessThreshold int
	BreakerOpenFor          time.Duration
	// Transport overrides the HTTP transport (fault injection, tests).
	Transport http.RoundTripper
	// Clock overrides time.Now for breaker timing (tests).
	Clock func() time.Time
	// Sleep overrides the backoff sleeper (tests).
	Sleep func(time.Duration)
}

// DefaultClientConfig returns production-shaped defaults: 5 s attempts, 3
// retries starting at 50 ms backoff capped at 2 s, an 8 MiB response bound,
// and a breaker that opens after 5 consecutive failures for 2 s.
func DefaultClientConfig() ClientConfig {
	return ClientConfig{
		Timeout:                 5 * time.Second,
		MaxRetries:              3,
		BackoffBase:             50 * time.Millisecond,
		BackoffMax:              2 * time.Second,
		JitterSeed:              1,
		MaxResponseBytes:        8 << 20,
		MaxIdleConnsPerHost:     256,
		BreakerFailureThreshold: 5,
		BreakerSuccessThreshold: 2,
		BreakerOpenFor:          2 * time.Second,
	}
}

// NewPooledTransport builds the client's default HTTP transport: the
// stdlib defaults with a keep-alive pool actually sized for concurrent
// sessions (MaxIdleConnsPerHost idle conns per host instead of the stdlib
// 2, no global idle cap). Exposed so tests and sibling transports can
// instrument the dialer while keeping identical pooling behaviour.
func NewPooledTransport(maxIdlePerHost int) *http.Transport {
	t := http.DefaultTransport.(*http.Transport).Clone()
	if maxIdlePerHost < 1 {
		maxIdlePerHost = 256
	}
	t.MaxIdleConns = 0 // no global cap; the per-host cap governs
	t.MaxIdleConnsPerHost = maxIdlePerHost
	t.IdleConnTimeout = 90 * time.Second
	return t
}

func (cfg ClientConfig) validate() error {
	if cfg.Timeout <= 0 {
		return fmt.Errorf("edge: non-positive timeout %v", cfg.Timeout)
	}
	if cfg.MaxRetries < 0 {
		return fmt.Errorf("edge: negative retry count %d", cfg.MaxRetries)
	}
	if cfg.BackoffBase <= 0 || cfg.BackoffMax < cfg.BackoffBase {
		return fmt.Errorf("edge: invalid backoff range [%v, %v]", cfg.BackoffBase, cfg.BackoffMax)
	}
	if cfg.MaxResponseBytes < 1024 {
		return fmt.Errorf("edge: response bound %d too small", cfg.MaxResponseBytes)
	}
	if cfg.BreakerFailureThreshold < 1 || cfg.BreakerSuccessThreshold < 1 {
		return fmt.Errorf("edge: breaker thresholds must be >= 1")
	}
	if cfg.BreakerOpenFor <= 0 {
		return fmt.Errorf("edge: non-positive breaker open window %v", cfg.BreakerOpenFor)
	}
	return nil
}

// Client talks to an edge Server and caches decimated meshes locally, the
// paper's "local cache" in Figure 3. Safe for concurrent use; the circuit
// breaker and cache are shared across goroutines so every caller sees the
// same view of the link's health.
type Client struct {
	base string
	http *http.Client
	cfg  ClientConfig

	breaker *breaker
	sleep   func(time.Duration)

	mu       sync.Mutex
	jitter   *sim.RNG
	cacheCap int
	cache    map[cacheKey]*list.Element
	lru      *list.List
	// hits and misses instrument the cache for the ablation bench; retries
	// counts attempts beyond each call's first.
	hits, misses int
	retries      int

	// Observability instruments; nil (no-op) unless SetObserver is called.
	metCalls           *obs.Counter
	metAttempts        *obs.Counter
	metAttemptFailures *obs.Counter
	metRetries         *obs.Counter
	metShortCircuits   *obs.Counter
	metCacheHits       *obs.Counter
	metCacheMisses     *obs.Counter
	metBreakerState    *obs.Gauge
}

// SetObserver attaches a metrics registry: per-call and per-attempt outcome
// counters, retry and short-circuit counts, cache hits/misses, and a breaker
// state gauge plus transition events (wall-clock timestamps — this runs in
// real processes, not the simulator). Call before the client is shared across
// goroutines; passing nil detaches.
func (c *Client) SetObserver(reg *obs.Registry) {
	c.metCalls = reg.Counter("edge.client.calls")
	c.metAttempts = reg.Counter("edge.client.attempts")
	c.metAttemptFailures = reg.Counter("edge.client.attempt_failures")
	c.metRetries = reg.Counter("edge.client.retries")
	c.metShortCircuits = reg.Counter("edge.client.short_circuits")
	c.metCacheHits = reg.Counter("edge.client.cache_hits")
	c.metCacheMisses = reg.Counter("edge.client.cache_misses")
	c.metBreakerState = reg.Gauge("edge.client.breaker_state")
	if reg == nil {
		c.breaker.setTransitionHook(nil)
		return
	}
	gauge := c.metBreakerState
	clock := c.breaker.now
	c.breaker.setTransitionHook(func(from, to BreakerState) {
		gauge.Set(float64(to))
		reg.Emit(obs.Event{
			TimeMS: float64(clock().UnixMilli()),
			Kind:   "edge.breaker.transition",
			Detail: from.String() + "->" + to.String(),
			Value:  float64(to),
		})
	})
}

type cacheKey struct {
	object string
	// ratioStep quantizes the ratio to 2% steps so near-identical requests
	// share an entry.
	ratioStep int
	// fast separates vertex-clustering results from quadric ones.
	fast bool
}

type cacheEntry struct {
	key  cacheKey
	mesh *mesh.Mesh
}

func keyFor(object string, ratio float64) cacheKey {
	return cacheKey{object: object, ratioStep: int(math.Round(ratio * 50))}
}

// NewClient builds a client for the server at base URL (no trailing slash)
// with an LRU decimation cache of the given capacity and default
// fault-tolerance settings.
func NewClient(base string, cacheCap int) (*Client, error) {
	return NewClientWithConfig(base, cacheCap, DefaultClientConfig())
}

// NewClientWithConfig builds a client with explicit fault-tolerance
// settings.
func NewClientWithConfig(base string, cacheCap int, cfg ClientConfig) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("edge: empty base URL")
	}
	if cacheCap < 1 {
		return nil, fmt.Errorf("edge: cache capacity %d must be >= 1", cacheCap)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	transport := cfg.Transport
	if transport == nil {
		transport = NewPooledTransport(cfg.MaxIdleConnsPerHost)
	}
	return &Client{
		base:     base,
		http:     &http.Client{Transport: transport},
		cfg:      cfg,
		breaker:  newBreaker(cfg.BreakerFailureThreshold, cfg.BreakerSuccessThreshold, cfg.BreakerOpenFor, cfg.Clock),
		sleep:    sleep,
		jitter:   sim.NewRNG(cfg.JitterSeed),
		cacheCap: cacheCap,
		cache:    make(map[cacheKey]*list.Element),
		lru:      list.New(),
	}, nil
}

// CacheStats returns cache hit/miss counters.
func (c *Client) CacheStats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Retries returns how many retry attempts (beyond each call's first) the
// client has made.
func (c *Client) Retries() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.retries
}

// BreakerStats returns the circuit breaker's state and counters.
func (c *Client) BreakerStats() BreakerStats { return c.breaker.snapshot() }

// Available reports whether calls would currently be attempted: true while
// the breaker is closed, half-open, or open past its window (a probe would
// flow). Degradation logic uses this to route work to the local fallback
// without paying a round of short-circuit errors.
func (c *Client) Available() bool { return c.breaker.ready() }

// Decimate returns the object decimated to the given ratio (quadric edge
// collapse), from cache when possible.
func (c *Client) Decimate(object string, ratio float64) (*mesh.Mesh, error) {
	//lint:allow ctxlint public convenience wrapper; DecimateContext is the threaded variant
	return c.DecimateContext(context.Background(), object, ratio)
}

// DecimateContext is Decimate with caller-controlled cancellation.
func (c *Client) DecimateContext(ctx context.Context, object string, ratio float64) (*mesh.Mesh, error) {
	return c.decimate(ctx, object, ratio, false)
}

// DecimateFast is the vertex-clustering path: coarser output, much lower
// server latency. Fast and precise results share the cache key space with a
// flag so one never masquerades as the other.
func (c *Client) DecimateFast(object string, ratio float64) (*mesh.Mesh, error) {
	//lint:allow ctxlint public convenience wrapper; DecimateFastContext is the threaded variant
	return c.DecimateFastContext(context.Background(), object, ratio)
}

// DecimateFastContext is DecimateFast with caller-controlled cancellation.
func (c *Client) DecimateFastContext(ctx context.Context, object string, ratio float64) (*mesh.Mesh, error) {
	return c.decimate(ctx, object, ratio, true)
}

// decimate serves a mesh from the LRU cache or the server. Returned meshes
// are clones: callers (scenes) mutate geometry freely without corrupting
// the cached copy.
func (c *Client) decimate(ctx context.Context, object string, ratio float64, fast bool) (*mesh.Mesh, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("edge: ratio %v out of (0,1]", ratio)
	}
	key := keyFor(object, ratio)
	key.fast = fast
	c.mu.Lock()
	if el, ok := c.cache[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		m := el.Value.(*cacheEntry).mesh.Clone()
		c.mu.Unlock()
		c.metCacheHits.Inc()
		return m, nil
	}
	c.misses++
	c.mu.Unlock()
	c.metCacheMisses.Inc()
	var resp DecimateResponse
	if err := c.post(ctx, "/decimate", DecimateRequest{Object: object, Ratio: ratio, Fast: fast}, &resp); err != nil {
		return nil, err
	}
	m := resp.Mesh.ToMesh()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("edge: server returned invalid mesh: %w", err)
	}
	c.mu.Lock()
	c.insert(key, m)
	c.mu.Unlock()
	return m.Clone(), nil
}

// insert adds a cache entry; callers hold c.mu.
func (c *Client) insert(key cacheKey, m *mesh.Mesh) {
	if el, ok := c.cache[key]; ok {
		// A concurrent miss already populated the key; refresh it.
		el.Value.(*cacheEntry).mesh = m
		c.lru.MoveToFront(el)
		return
	}
	el := c.lru.PushFront(&cacheEntry{key: key, mesh: m})
	c.cache[key] = el
	for c.lru.Len() > c.cacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.cache, oldest.Value.(*cacheEntry).key)
	}
}

// Train fits Eq. 1 parameters server-side from the given samples.
func (c *Client) Train(object string, samples []quality.Sample) (quality.Params, error) {
	//lint:allow ctxlint public convenience wrapper; TrainContext is the threaded variant
	return c.TrainContext(context.Background(), object, samples)
}

// TrainContext is Train with caller-controlled cancellation.
func (c *Client) TrainContext(ctx context.Context, object string, samples []quality.Sample) (quality.Params, error) {
	var resp TrainResponse
	if err := c.post(ctx, "/train", TrainRequest{Object: object, Samples: samples}, &resp); err != nil {
		return quality.Params{}, err
	}
	p := quality.Params{A: resp.A, B: resp.B, C: resp.C, D: resp.D}
	return p, p.Validate()
}

// BONext uploads the observation database and returns the next
// configuration to test (remote Bayesian optimization, §VI).
func (c *Client) BONext(resources int, rmin float64, seed uint64, obs []Observation) ([]float64, error) {
	//lint:allow ctxlint public convenience wrapper; BONextContext is the threaded variant
	return c.BONextContext(context.Background(), resources, rmin, seed, obs)
}

// BONextContext is BONext with caller-controlled cancellation.
func (c *Client) BONextContext(ctx context.Context, resources int, rmin float64, seed uint64, obs []Observation) ([]float64, error) {
	var resp BONextResponse
	req := BONextRequest{Resources: resources, RMin: rmin, Seed: seed, Observations: obs}
	if err := c.post(ctx, "/bo/next", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Point) != resources+1 {
		return nil, fmt.Errorf("edge: server returned %d-dim point, want %d", len(resp.Point), resources+1)
	}
	return resp.Point, nil
}

// BONextPoint adapts BONext to parallel point/cost slices — the shape
// core.BOBackend wants, so a session can plug the client in as its remote
// BO proposer without importing this package's wire types.
func (c *Client) BONextPoint(resources int, rmin float64, seed uint64, points [][]float64, costs []float64) ([]float64, error) {
	if len(points) != len(costs) {
		return nil, fmt.Errorf("edge: %d points vs %d costs", len(points), len(costs))
	}
	obs := make([]Observation, len(points))
	for i := range points {
		obs[i] = Observation{Point: points[i], Cost: costs[i]}
	}
	return c.BONext(resources, rmin, seed, obs)
}

// statusError is a non-2xx response, kept typed so the retry policy can
// distinguish server-side bursts (5xx, retryable) from rejections (4xx),
// and so an admission controller's Retry-After hint survives into the
// backoff computation.
type statusError struct {
	status string
	code   int
	msg    string
	// retryAfter is the server's Retry-After hint (zero when absent).
	retryAfter time.Duration
}

func (e *statusError) Error() string {
	return fmt.Sprintf("returned %s: %s", e.status, e.msg)
}

// NewStatusError builds the same typed error the JSON transport produces
// for a non-2xx response. The stream path maps its Error frames through
// this, so server rejections carry one error taxonomy whatever the
// transport: StatusCode extracts the code, the retry policy treats 5xx as
// transient, and a Retry-After hint survives into the backoff computation.
func NewStatusError(code int, msg string, retryAfter time.Duration) error {
	return &statusError{
		status:     fmt.Sprintf("%d %s", code, http.StatusText(code)),
		code:       code,
		msg:        msg,
		retryAfter: retryAfter,
	}
}

// PermanentError marks an error as categorically non-retryable, whatever
// its underlying cause. The stream client uses it when a server simply has
// no /session/stream route: retrying cannot help, and the caller falls back
// to the JSON path instead.
type PermanentError struct{ Err error }

func (e *PermanentError) Error() string { return e.Err.Error() }
func (e *PermanentError) Unwrap() error { return e.Err }

// Permanent wraps err so the retry policy fails fast on it.
func Permanent(err error) error { return &PermanentError{Err: err} }

// StatusCode extracts the HTTP status code buried in a client call error.
// ok is false for transport-level failures (drops, timeouts, breaker short
// circuits) that never produced a response. Callers use it to react to
// typed rejections — e.g. a 404 from the session service means the session
// was evicted and must be re-opened.
func StatusCode(err error) (code int, ok bool) {
	var se *statusError
	if errors.As(err, &se) {
		return se.code, true
	}
	return 0, false
}

// retryable reports whether an attempt error is worth retrying: transport
// errors, timeouts, 5xx responses, and mangled response bodies are
// transient link faults; 4xx rejections and explicitly Permanent errors are
// not.
func retryable(err error) bool {
	var pe *PermanentError
	if errors.As(err, &pe) {
		return false
	}
	var se *statusError
	if errors.As(err, &se) {
		return se.code >= 500
	}
	return true
}

// PostJSON sends one idempotent JSON POST through the client's full
// fault-tolerance stack — per-attempt timeouts, retries with backoff and
// Retry-After honoring, circuit breaker — decoding the response into resp.
// It is the extension point the session service's client builds on, so
// every session route inherits the same link-health view as the core
// endpoints.
func (c *Client) PostJSON(ctx context.Context, path string, req, resp any) error {
	return c.post(ctx, path, req, resp)
}

// Execute runs one idempotent operation under the client's full
// fault-tolerance stack: circuit-breaker admission, capped exponential
// backoff with deterministic jitter between attempts, Retry-After honoring,
// and breaker accounting of every outcome. It is the transport-agnostic
// core of PostJSON, exposed so the session stream path shares the same
// link-health view — a stream reconnect and a JSON retry are the same event
// to the breaker. op must be safe to call again after a failure. label
// names the operation in errors (the JSON path passes its route).
func (c *Client) Execute(ctx context.Context, label string, op func(ctx context.Context) error) error {
	c.metCalls.Inc()
	if !c.breaker.allow() {
		c.metShortCircuits.Inc()
		return fmt.Errorf("edge: %s: %w", label, ErrUnavailable)
	}
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.retries++
			delay := c.backoffLocked(attempt)
			c.mu.Unlock()
			// An explicit Retry-After from the previous rejection (the
			// session service's admission controller) overrides a shorter
			// computed backoff: the server told us when capacity frees up.
			var se *statusError
			if errors.As(lastErr, &se) && se.retryAfter > delay {
				delay = se.retryAfter
			}
			c.metRetries.Inc()
			if err := c.wait(ctx, delay); err != nil {
				return fmt.Errorf("edge: %s: %w", label, err)
			}
		}
		err := op(ctx)
		c.metAttempts.Inc()
		if err == nil {
			c.breaker.recordSuccess()
			return nil
		}
		c.metAttemptFailures.Inc()
		// A Permanent error is a condition of the call, not of the link
		// (e.g. "this server has no stream route") — failing fast is right,
		// but counting it toward opening the breaker would punish a healthy
		// link for something no retry or cooldown can change.
		var pe *PermanentError
		if !errors.As(err, &pe) {
			c.breaker.recordFailure()
		}
		lastErr = err
		if !retryable(err) || ctx.Err() != nil {
			break
		}
	}
	return fmt.Errorf("edge: %s %w", label, lastErr)
}

// post sends one idempotent JSON POST through Execute. When the breaker is
// open the call fails fast with ErrUnavailable, and the caller's local
// fallback takes over.
func (c *Client) post(ctx context.Context, path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("edge: encoding %s request: %w", path, err)
	}
	return c.Execute(ctx, path, func(ctx context.Context) error {
		return c.attempt(ctx, path, body, resp)
	})
}

// HTTPClient exposes the underlying HTTP client, so sibling transports (the
// session stream) ride the same connection pool, fault-injection transport,
// and dialer as the JSON path.
func (c *Client) HTTPClient() *http.Client { return c.http }

// BaseURL returns the server base URL this client was built for.
func (c *Client) BaseURL() string { return c.base }

// AttemptTimeout returns the per-attempt timeout, so sibling transports can
// bound their own attempts identically to the JSON path.
func (c *Client) AttemptTimeout() time.Duration { return c.cfg.Timeout }

// parseRetryAfter reads an integer-seconds Retry-After value (the only form
// this repo's servers emit); anything else maps to zero.
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoffLocked computes base·2^(attempt−1) capped at BackoffMax, minus up
// to 50% deterministic jitter; callers hold c.mu.
func (c *Client) backoffLocked(attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	return d - time.Duration(0.5*c.jitter.Float64()*float64(d))
}

// wait sleeps for delay or until ctx is cancelled.
func (c *Client) wait(ctx context.Context, delay time.Duration) error {
	done := ctx.Done()
	if done == nil {
		c.sleep(delay)
		return nil
	}
	t := time.NewTimer(delay)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-done:
		return ctx.Err()
	}
}

// attempt runs one HTTP round trip under the per-attempt timeout, with a
// bounded response read that rejects oversize bodies and trailing garbage
// after the JSON document.
func (c *Client) attempt(ctx context.Context, path string, body []byte, resp any) error {
	actx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	httpReq, err := http.NewRequestWithContext(actx, http.MethodPost, c.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	httpResp, err := c.http.Do(httpReq)
	if err != nil {
		return err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(httpResp.Body, 4096))
		_ = httpResp.Body.Close()
	}()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return &statusError{
			status:     httpResp.Status,
			code:       httpResp.StatusCode,
			msg:        string(bytes.TrimSpace(msg)),
			retryAfter: parseRetryAfter(httpResp.Header.Get("Retry-After")),
		}
	}
	limited := &countingReader{r: io.LimitReader(httpResp.Body, c.cfg.MaxResponseBytes+1)}
	dec := json.NewDecoder(limited)
	if err := dec.Decode(resp); err != nil {
		if limited.n > c.cfg.MaxResponseBytes {
			return fmt.Errorf("response exceeds %d-byte limit", c.cfg.MaxResponseBytes)
		}
		return fmt.Errorf("decoding response: %w", err)
	}
	if limited.n > c.cfg.MaxResponseBytes {
		return fmt.Errorf("response exceeds %d-byte limit", c.cfg.MaxResponseBytes)
	}
	// A valid document must be the whole body: trailing garbage means a
	// corrupted or concatenated payload, which must not be trusted.
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after JSON response")
	}
	return nil
}

// countingReader counts bytes so oversize responses are detected even when
// the JSON document itself parses.
type countingReader struct {
	r io.Reader
	n int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n += int64(n)
	return n, err
}
