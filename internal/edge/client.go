package edge

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"

	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/quality"
)

// Client talks to an edge Server and caches decimated meshes locally, the
// paper's "local cache" in Figure 3. It is not safe for concurrent use; one
// MAR app session owns one client.
type Client struct {
	base string
	http *http.Client

	cacheCap int
	cache    map[cacheKey]*list.Element
	lru      *list.List

	// hits and misses instrument the cache for the ablation bench.
	hits, misses int
}

type cacheKey struct {
	object string
	// ratioStep quantizes the ratio to 2% steps so near-identical requests
	// share an entry.
	ratioStep int
	// fast separates vertex-clustering results from quadric ones.
	fast bool
}

type cacheEntry struct {
	key  cacheKey
	mesh *mesh.Mesh
}

func keyFor(object string, ratio float64) cacheKey {
	return cacheKey{object: object, ratioStep: int(math.Round(ratio * 50))}
}

// NewClient builds a client for the server at base URL (no trailing slash)
// with an LRU decimation cache of the given capacity.
func NewClient(base string, cacheCap int) (*Client, error) {
	if base == "" {
		return nil, fmt.Errorf("edge: empty base URL")
	}
	if cacheCap < 1 {
		return nil, fmt.Errorf("edge: cache capacity %d must be >= 1", cacheCap)
	}
	return &Client{
		base:     base,
		http:     &http.Client{},
		cacheCap: cacheCap,
		cache:    make(map[cacheKey]*list.Element),
		lru:      list.New(),
	}, nil
}

// CacheStats returns cache hit/miss counters.
func (c *Client) CacheStats() (hits, misses int) { return c.hits, c.misses }

// Decimate returns the object decimated to the given ratio (quadric edge
// collapse), from cache when possible.
func (c *Client) Decimate(object string, ratio float64) (*mesh.Mesh, error) {
	return c.decimate(object, ratio, false)
}

// DecimateFast is the vertex-clustering path: coarser output, much lower
// server latency. Fast and precise results share the cache key space with a
// flag so one never masquerades as the other.
func (c *Client) DecimateFast(object string, ratio float64) (*mesh.Mesh, error) {
	return c.decimate(object, ratio, true)
}

func (c *Client) decimate(object string, ratio float64, fast bool) (*mesh.Mesh, error) {
	if ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("edge: ratio %v out of (0,1]", ratio)
	}
	key := keyFor(object, ratio)
	key.fast = fast
	if el, ok := c.cache[key]; ok {
		c.hits++
		c.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).mesh, nil
	}
	c.misses++
	var resp DecimateResponse
	if err := c.post("/decimate", DecimateRequest{Object: object, Ratio: ratio, Fast: fast}, &resp); err != nil {
		return nil, err
	}
	m := resp.Mesh.ToMesh()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("edge: server returned invalid mesh: %w", err)
	}
	c.insert(key, m)
	return m, nil
}

func (c *Client) insert(key cacheKey, m *mesh.Mesh) {
	el := c.lru.PushFront(&cacheEntry{key: key, mesh: m})
	c.cache[key] = el
	for c.lru.Len() > c.cacheCap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.cache, oldest.Value.(*cacheEntry).key)
	}
}

// Train fits Eq. 1 parameters server-side from the given samples.
func (c *Client) Train(object string, samples []quality.Sample) (quality.Params, error) {
	var resp TrainResponse
	if err := c.post("/train", TrainRequest{Object: object, Samples: samples}, &resp); err != nil {
		return quality.Params{}, err
	}
	p := quality.Params{A: resp.A, B: resp.B, C: resp.C, D: resp.D}
	return p, p.Validate()
}

// BONext uploads the observation database and returns the next
// configuration to test (remote Bayesian optimization, §VI).
func (c *Client) BONext(resources int, rmin float64, seed uint64, obs []Observation) ([]float64, error) {
	var resp BONextResponse
	req := BONextRequest{Resources: resources, RMin: rmin, Seed: seed, Observations: obs}
	if err := c.post("/bo/next", req, &resp); err != nil {
		return nil, err
	}
	if len(resp.Point) != resources+1 {
		return nil, fmt.Errorf("edge: server returned %d-dim point, want %d", len(resp.Point), resources+1)
	}
	return resp.Point, nil
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return fmt.Errorf("edge: encoding %s request: %w", path, err)
	}
	httpResp, err := c.http.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("edge: %s: %w", path, err)
	}
	defer func() {
		_ = httpResp.Body.Close()
	}()
	if httpResp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(httpResp.Body, 512))
		return fmt.Errorf("edge: %s returned %s: %s", path, httpResp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(httpResp.Body).Decode(resp); err != nil {
		return fmt.Errorf("edge: decoding %s response: %w", path, err)
	}
	return nil
}
