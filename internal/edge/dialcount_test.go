package edge

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
)

// countDials wraps a transport's dialer with an atomic counter, keeping
// everything else about the transport identical.
func countDials(t *http.Transport, n *atomic.Int64) {
	base := t.DialContext
	t.DialContext = func(ctx context.Context, network, addr string) (net.Conn, error) {
		n.Add(1)
		return base(ctx, network, addr)
	}
}

// runDialLoad drives sessions×calls concurrent POSTs through a client built
// on the given transport and returns how many TCP dials that cost.
func runDialLoad(t *testing.T, transport *http.Transport, sessions, calls int) int64 {
	t.Helper()
	var dials atomic.Int64
	countDials(transport, &dials)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{}`)
	}))
	defer ts.Close()
	cfg := DefaultClientConfig()
	cfg.Transport = transport
	c, err := NewClientWithConfig(ts.URL, 4, cfg)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	ctx := context.Background()
	// Waves, not free-running loops: all sessions fire one call, then the
	// connections sit idle until the next wave — the load generator's real
	// cadence (every client computes between suggests). An undersized idle
	// pool evicts most connections at each barrier and redials next wave.
	for k := 0; k < calls; k++ {
		var wg sync.WaitGroup
		errs := make(chan error, sessions)
		for i := 0; i < sessions; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var resp struct{}
				if err := c.PostJSON(ctx, "/echo", struct{}{}, &resp); err != nil {
					errs <- err
				}
			}()
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatalf("post (wave %d): %v", k, err)
		}
	}
	transport.CloseIdleConnections()
	return dials.Load()
}

// TestPooledTransportDialCount is the regression test for the keep-alive
// pool: 32 concurrent sessions issuing 20 requests each must be served from
// at most one connection per session. The stdlib default transport
// (MaxIdleConnsPerHost=2) drops all but two idle conns after every burst
// and redials most requests — the bug this pins down is the client
// accidentally riding that default again.
func TestPooledTransportDialCount(t *testing.T) {
	const sessions, calls = 32, 20
	pooled := runDialLoad(t, NewPooledTransport(DefaultClientConfig().MaxIdleConnsPerHost), sessions, calls)
	if pooled > sessions {
		t.Errorf("pooled transport dialed %d times for %d concurrent sessions, want <= %d",
			pooled, sessions, sessions)
	}
	stdlib := http.DefaultTransport.(*http.Transport).Clone() // MaxIdleConnsPerHost 0 -> stdlib default 2
	unpooled := runDialLoad(t, stdlib, sessions, calls)
	// Not asserting an exact count — scheduling decides how badly the default
	// pool thrashes — but it must be visibly worse than one dial per session,
	// or this test would pass vacuously on a server that kept nothing alive.
	if unpooled <= pooled {
		t.Errorf("stdlib-default transport dialed %d times vs pooled %d; expected the default pool to thrash",
			unpooled, pooled)
	}
	t.Logf("dials: pooled=%d stdlib-default=%d (%d sessions x %d calls)", pooled, unpooled, sessions, calls)
}
