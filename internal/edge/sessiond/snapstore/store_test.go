package snapstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// blobFor builds a recognizable payload for an id.
func blobFor(id string, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i) ^ id[len(id)-1]
	}
	return b
}

// mustPut is a fatal-on-error Put.
func mustPut(t *testing.T, s *FileStore, id string, blob []byte) {
	t.Helper()
	if err := s.Put(id, blob); err != nil {
		t.Fatalf("put %s: %v", id, err)
	}
}

// reopen closes the store and opens the same directory again.
func reopen(t *testing.T, s *FileStore, dir string, opts Options) *FileStore {
	t.Helper()
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return r
}

// TestFileStoreRoundTrip covers the basic contract: puts are readable,
// overwrites are later-wins, deletes tombstone, and everything survives a
// close/reopen cycle.
func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DisableAutoCompact: true}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "alpha", blobFor("alpha", 100))
	mustPut(t, s, "beta", blobFor("beta", 50))
	mustPut(t, s, "alpha", blobFor("alpha", 200)) // overwrite: later wins
	if err := s.Delete("beta"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatalf("deleting an absent id must be a no-op, got %v", err)
	}

	check := func(s *FileStore, phase string) {
		t.Helper()
		blob, ok, err := s.Get("alpha")
		if err != nil || !ok {
			t.Fatalf("%s: get alpha: ok=%v err=%v", phase, ok, err)
		}
		if !bytes.Equal(blob, blobFor("alpha", 200)) {
			t.Fatalf("%s: alpha holds stale bytes", phase)
		}
		if _, ok, _ := s.Get("beta"); ok {
			t.Fatalf("%s: deleted beta still readable", phase)
		}
		ids, err := s.IDs()
		if err != nil || len(ids) != 1 || ids[0] != "alpha" {
			t.Fatalf("%s: ids = %v (err %v)", phase, ids, err)
		}
	}
	check(s, "live")
	s = reopen(t, s, dir, opts)
	defer s.Close()
	check(s, "recovered")
	// 4 records: three puts plus one tombstone (the absent-id delete is a
	// pure no-op and writes nothing).
	if rec := s.Recovery(); rec.Records != 4 || rec.CorruptSegments != 0 {
		t.Fatalf("recovery stats %+v, want 4 clean records", rec)
	}
}

// TestFileStoreRotation forces tiny segments and checks that appends span
// multiple files and recovery replays them all in order.
func TestFileStoreRotation(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 256, DisableAutoCompact: true}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		mustPut(t, s, fmt.Sprintf("s%02d", i), blobFor("x", 100))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(entries))
	}
	s = reopen(t, s, dir, opts)
	defer s.Close()
	if n := s.Len(); n != 20 {
		t.Fatalf("recovered %d sessions, want 20", n)
	}
}

// TestFileStoreCompaction checks that Compact shrinks the log to live data
// only, removes old segments, and that the compacted store recovers.
func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 512, DisableAutoCompact: true}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Churn: many overwrites and deletes leave mostly garbage.
	for round := 0; round < 10; round++ {
		for i := 0; i < 5; i++ {
			mustPut(t, s, fmt.Sprintf("s%d", i), blobFor("y", 80+round))
		}
	}
	for i := 3; i < 5; i++ {
		if err := s.Delete(fmt.Sprintf("s%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	before := s.SizeBytes()
	if err := s.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	after := s.SizeBytes()
	if after >= before/2 {
		t.Fatalf("compaction barely helped: %d -> %d bytes", before, after)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 { // rewrite segment + fresh active
		t.Fatalf("compaction left %d segments, want 2", len(entries))
	}
	s = reopen(t, s, dir, opts)
	defer s.Close()
	if n := s.Len(); n != 3 {
		t.Fatalf("recovered %d sessions after compaction, want 3", n)
	}
	for i := 0; i < 3; i++ {
		blob, ok, _ := s.Get(fmt.Sprintf("s%d", i))
		if !ok || !bytes.Equal(blob, blobFor("y", 89)) {
			t.Fatalf("s%d lost its latest value through compaction", i)
		}
	}
}

// TestFileStoreAutoCompaction churns enough garbage to trip the background
// compactor and verifies (after Close, which waits for it) that the log
// shrank and nothing was lost.
func TestFileStoreAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 512}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	compacted := make(chan struct{}, 1)
	s.onCompact = func() {
		select {
		case compacted <- struct{}{}:
		default:
		}
	}
	for round := 0; round < 50; round++ {
		mustPut(t, s, "only", blobFor("z", 100))
	}
	<-compacted // go test's own timeout bounds a regression here
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	blob, ok, _ := s.Get("only")
	if !ok || !bytes.Equal(blob, blobFor("z", 100)) {
		t.Fatal("auto-compaction lost the live blob")
	}
	// Without compaction the log would replay all 50 appends; any compaction
	// collapses the overwrites it covers, so the recovered record count must
	// have dropped (how far depends on when the background pass ran).
	if rec := s.Recovery(); rec.Records >= 50 {
		t.Fatalf("recovery replayed %d records — the log never compacted", rec.Records)
	}
}

// TestFileStoreTornTail simulates a crash mid-append: garbage bytes on the
// active segment's tail. Recovery must keep every committed record, report
// and truncate the torn tail, and leave the store appendable.
func TestFileStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	opts := Options{DisableAutoCompact: true}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "committed-1", blobFor("a", 60))
	mustPut(t, s, "committed-2", blobFor("b", 60))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn append: a valid-looking header whose payload never made it.
	seg := filepath.Join(dir, segName(0))
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	torn := appendRecord(nil, opPut, "torn", blobFor("c", 500))
	if _, err := f.Write(torn[:len(torn)-200]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeWithTear, _ := os.Stat(seg)

	s, err = Open(nil, dir, opts)
	if err != nil {
		t.Fatalf("recovery failed on torn tail: %v", err)
	}
	rec := s.Recovery()
	if rec.Records != 2 || rec.CorruptSegments != 1 || rec.TornTailBytes == 0 {
		t.Fatalf("recovery stats %+v, want 2 records and a truncated tail", rec)
	}
	if _, ok, _ := s.Get("torn"); ok {
		t.Fatal("uncommitted torn record surfaced as data")
	}
	if fi, _ := os.Stat(seg); fi.Size() >= sizeWithTear.Size() {
		t.Fatalf("torn tail not truncated: %d bytes remain", fi.Size())
	}
	// The store must be appendable on the repaired boundary.
	mustPut(t, s, "after-crash", blobFor("d", 60))
	s = reopen(t, s, dir, opts)
	defer s.Close()
	if n := s.Len(); n != 3 {
		t.Fatalf("recovered %d sessions after repair, want 3", n)
	}
}

// TestFileStoreCorruptMidSegment flips a byte inside a sealed segment's
// first record: the scan of that segment stops (both its records are lost)
// but later segments still replay — boot never fails.
func TestFileStoreCorruptMidSegment(t *testing.T) {
	dir := t.TempDir()
	opts := Options{SegmentBytes: 128, DisableAutoCompact: true}
	s, err := Open(nil, dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, s, "victim-1", blobFor("a", 60))
	mustPut(t, s, "victim-2", blobFor("b", 60)) // same first segment region
	mustPut(t, s, "survivor", blobFor("c", 60)) // lands in a later segment
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	seg := filepath.Join(dir, segName(0))
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	raw[headerSize+10] ^= 0xFF
	if err := os.WriteFile(seg, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err = Open(nil, dir, opts)
	if err != nil {
		t.Fatalf("boot failed on mid-segment corruption: %v", err)
	}
	defer s.Close()
	if rec := s.Recovery(); rec.CorruptSegments != 1 {
		t.Fatalf("recovery stats %+v, want 1 corrupt segment", rec)
	}
	if _, ok, _ := s.Get("victim-1"); ok {
		t.Fatal("corrupt record surfaced as data")
	}
	if _, ok, _ := s.Get("survivor"); !ok {
		t.Fatal("corruption in an early segment destroyed later segments")
	}
}

// TestFileStoreRejectsOversize checks the framing caps.
func TestFileStoreRejectsOversize(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(nil, dir, Options{DisableAutoCompact: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty id accepted")
	}
	longID := string(make([]byte, maxStoreIDLen+1))
	if err := s.Put(longID, []byte("x")); err == nil {
		t.Fatal("oversize id accepted")
	}
}

// TestFileStoreClosedOps checks that a closed store refuses mutations.
func TestFileStoreClosedOps(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(nil, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close must be idempotent, got %v", err)
	}
	if err := s.Put("id", []byte("x")); err == nil {
		t.Fatal("put accepted after close")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("compact accepted after close")
	}
}

// TestMemStore pins the reference implementation's contract.
func TestMemStore(t *testing.T) {
	m := NewMemStore()
	if err := m.Put("a", []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("b", []byte{3}); err != nil {
		t.Fatal(err)
	}
	blob, ok, err := m.Get("a")
	if err != nil || !ok || !bytes.Equal(blob, []byte{1, 2}) {
		t.Fatalf("get a: %v %v %v", blob, ok, err)
	}
	blob[0] = 99 // callers own the returned copy
	if again, _, _ := m.Get("a"); again[0] != 1 {
		t.Fatal("Get returned an aliased buffer")
	}
	if err := m.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := m.Get("a"); ok {
		t.Fatal("deleted id still readable")
	}
	ids, _ := m.IDs()
	if len(ids) != 1 || ids[0] != "b" {
		t.Fatalf("ids = %v", ids)
	}
	if m.SizeBytes() <= 0 {
		t.Fatal("SizeBytes must report the live footprint")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
