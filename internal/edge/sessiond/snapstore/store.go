package snapstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Record framing inside a segment file:
//
//	magic      u32  "HBSL" (0x4842534C)
//	payloadLen u32  length of the payload that follows
//	crc        u32  IEEE CRC-32 of the payload
//	payload:   op u8 (1=put, 2=delete), idLen u16, id bytes, blob bytes
//
// Segments are named seg-%08d.log and replayed in ascending sequence order;
// within a segment, records apply in append order, and the latest record
// for an id wins. That single invariant makes every crash point safe: a
// torn tail is skipped (and truncated away), and a compaction interrupted
// at any instant leaves either the old segments, the old plus a partial
// rewrite, or both old and complete rewrite — all of which replay to the
// same live state.
const (
	recordMagic = 0x4842534C // "HBSL"
	headerSize  = 12

	opPut    = 1
	opDelete = 2

	// maxRecordBytes bounds one framed record; anything larger in a scan is
	// treated as corruption rather than a 4 GiB allocation.
	maxRecordBytes = 16 << 20
	// maxStoreIDLen bounds stored ids (sessiond's own cap is far smaller).
	maxStoreIDLen = 1024
)

// segName formats the filename for a segment sequence number.
func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.log", seq) }

// segSeq parses a segment filename, reporting ok=false for foreign files.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "seg-%08d.log", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// recordSize is the on-disk footprint of one framed record.
func recordSize(id string, blob []byte) int64 {
	return int64(headerSize + 1 + 2 + len(id) + len(blob))
}

// appendRecord frames one operation onto buf.
func appendRecord(buf []byte, op byte, id string, blob []byte) []byte {
	payloadLen := 1 + 2 + len(id) + len(blob)
	buf = binary.LittleEndian.AppendUint32(buf, recordMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payloadLen))
	payload := make([]byte, 0, payloadLen)
	payload = append(payload, op)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(id)))
	payload = append(payload, id...)
	payload = append(payload, blob...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// RecoveryStats reports what Open's scan found and repaired.
type RecoveryStats struct {
	// Segments is how many segment files were scanned.
	Segments int
	// Records is how many valid records were applied.
	Records int
	// CorruptSegments counts segments whose scan stopped early at a torn or
	// corrupt record; later records in such a segment are unreachable and
	// the affected sessions fall back to replay.
	CorruptSegments int
	// TornTailBytes is how many bytes were truncated off the active
	// segment's invalid tail so appends resume on a clean boundary.
	TornTailBytes int64
}

// Options tunes the file store.
type Options struct {
	// Fsync syncs the active segment after every append (and always after
	// rotation and compaction). Off, durability extends only to the OS page
	// cache — a process kill loses nothing, a host power cut may.
	Fsync bool
	// SegmentBytes rotates the active segment once it reaches this size.
	// Zero means 1 MiB.
	SegmentBytes int64
	// DisableAutoCompact turns off the background garbage-ratio compaction;
	// Compact may still be called explicitly.
	DisableAutoCompact bool
}

// FileStore is an append-only segmented-log blob store keyed by session id.
// Safe for concurrent use. All mutating state is guarded by mu; background
// compaction runs in its own goroutine but does its work under the same
// mutex, so callers observe it only as a changed segment layout.
type FileStore struct {
	fs   FS
	dir  string
	opts Options

	mu         sync.Mutex //hbo:lockleaf the store IS the serialization point: single-writer append log, I/O under mu by design
	blobs      map[string][]byte
	liveBytes  int64
	totalBytes int64
	activeSeq  uint64
	active     File
	activeSize int64
	segments   map[uint64]int64 // sealed + active segment sizes
	recovery   RecoveryStats
	compacting bool
	closed     bool
	wg         sync.WaitGroup

	// onCompact, when set (before any traffic), runs under mu after each
	// successful compaction — a deterministic test hook, nil in production.
	onCompact func()
}

// Open loads (or creates) a file store rooted at dir. A nil fsys means the
// real filesystem. The recovery scan replays every segment in sequence
// order, stops a segment's scan at the first torn or corrupt record rather
// than failing the boot, and truncates the active segment's invalid tail so
// new appends land on a clean record boundary.
func Open(fsys FS, dir string, opts Options) (*FileStore, error) {
	if fsys == nil {
		fsys = OSFS{}
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 1 << 20
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: mkdir %s: %w", dir, err)
	}
	s := &FileStore{
		fs:       fsys,
		dir:      dir,
		opts:     opts,
		blobs:    make(map[string][]byte),
		segments: make(map[uint64]int64),
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: readdir %s: %w", dir, err)
	}
	var seqs []uint64
	sizes := make(map[uint64]int64)
	for _, e := range entries {
		seq, ok := segSeq(e.Name())
		if !ok || e.IsDir() {
			continue
		}
		info, ierr := e.Info()
		if ierr != nil {
			return nil, fmt.Errorf("snapstore: stat %s: %w", e.Name(), ierr)
		}
		seqs = append(seqs, seq)
		sizes[seq] = info.Size()
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	for i, seq := range seqs {
		good, serr := s.scanSegment(seq, sizes[seq])
		if serr != nil {
			return nil, serr
		}
		s.recovery.Segments++
		if good < sizes[seq] {
			s.recovery.CorruptSegments++
			if i == len(seqs)-1 {
				// Active segment: cut the torn tail so appends resume on a
				// record boundary. Earlier segments are sealed history; their
				// tails are left alone (compaction will retire them).
				if terr := s.fs.Truncate(filepath.Join(dir, segName(seq)), good); terr != nil {
					return nil, fmt.Errorf("snapstore: truncate torn tail of %s: %w", segName(seq), terr)
				}
				s.recovery.TornTailBytes = sizes[seq] - good
				sizes[seq] = good
			}
		}
		s.segments[seq] = sizes[seq]
		s.totalBytes += sizes[seq]
	}
	for id, blob := range s.blobs {
		s.liveBytes += recordSize(id, blob)
	}
	if len(seqs) > 0 {
		s.activeSeq = seqs[len(seqs)-1]
		s.activeSize = sizes[s.activeSeq]
	}
	f, err := fsys.OpenFile(filepath.Join(dir, segName(s.activeSeq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("snapstore: open active segment: %w", err)
	}
	s.active = f
	if _, ok := s.segments[s.activeSeq]; !ok {
		s.segments[s.activeSeq] = 0
	}
	return s, nil
}

// scanSegment replays one segment into the in-memory index and returns the
// byte offset of the last valid record boundary. Scan errors inside the
// data are not fatal — the offset simply stops early — but an unreadable
// file is.
func (s *FileStore) scanSegment(seq uint64, size int64) (int64, error) {
	name := filepath.Join(s.dir, segName(seq))
	f, err := s.fs.OpenFile(name, os.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("snapstore: open %s: %w", segName(seq), err)
	}
	defer f.Close()
	buf := make([]byte, size)
	n, _ := f.ReadAt(buf, 0) // a short read scans like a torn tail
	buf = buf[:n]

	off := 0
	for {
		if len(buf)-off < headerSize {
			return int64(off), nil
		}
		if binary.LittleEndian.Uint32(buf[off:]) != recordMagic {
			return int64(off), nil
		}
		payloadLen := int(binary.LittleEndian.Uint32(buf[off+4:]))
		if payloadLen < 3 || payloadLen > maxRecordBytes || len(buf)-off-headerSize < payloadLen {
			return int64(off), nil
		}
		crc := binary.LittleEndian.Uint32(buf[off+8:])
		payload := buf[off+headerSize : off+headerSize+payloadLen]
		if crc32.ChecksumIEEE(payload) != crc {
			return int64(off), nil
		}
		op := payload[0]
		idLen := int(binary.LittleEndian.Uint16(payload[1:]))
		if idLen > maxStoreIDLen || 3+idLen > payloadLen {
			return int64(off), nil
		}
		id := string(payload[3 : 3+idLen])
		blob := payload[3+idLen:]
		switch op {
		case opPut:
			s.blobs[id] = append([]byte(nil), blob...)
		case opDelete:
			delete(s.blobs, id)
		default:
			return int64(off), nil
		}
		s.recovery.Records++
		off += headerSize + payloadLen
	}
}

// Recovery returns what Open's scan found and repaired.
func (s *FileStore) Recovery() RecoveryStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovery
}

// append writes one framed record to the active segment, rotating first if
// the segment is full. On a write error the active segment is sealed and a
// fresh one opened, because the scanner cannot see past a torn record — new
// appends must never land behind one.
func (s *FileStore) append(op byte, id string, blob []byte) error {
	if s.closed {
		return fmt.Errorf("snapstore: store is closed")
	}
	if len(id) == 0 || len(id) > maxStoreIDLen {
		return fmt.Errorf("snapstore: id length %d out of [1,%d]", len(id), maxStoreIDLen)
	}
	if recordSize(id, blob) > maxRecordBytes {
		return fmt.Errorf("snapstore: record of %d bytes over cap %d", recordSize(id, blob), maxRecordBytes)
	}
	if s.activeSize >= s.opts.SegmentBytes {
		if err := s.rotateLocked(); err != nil {
			return err
		}
	}
	rec := appendRecord(nil, op, id, blob)
	n, err := s.active.Write(rec)
	s.activeSize += int64(n)
	s.segments[s.activeSeq] = s.activeSize
	s.totalBytes += int64(n)
	if err == nil && n < len(rec) {
		err = fmt.Errorf("snapstore: short write (%d of %d bytes)", n, len(rec))
	}
	if err != nil {
		// The segment now ends in a torn record; seal it and move on so the
		// next append is reachable by the recovery scan.
		rerr := s.rotateLocked()
		if rerr != nil {
			return fmt.Errorf("snapstore: append failed (%w) and rotation failed (%v)", err, rerr)
		}
		return fmt.Errorf("snapstore: append: %w", err)
	}
	if s.opts.Fsync {
		if err := s.active.Sync(); err != nil {
			return fmt.Errorf("snapstore: fsync: %w", err)
		}
	}
	return nil
}

// rotateLocked seals the active segment and opens the next sequence.
func (s *FileStore) rotateLocked() error {
	if s.active != nil {
		if s.opts.Fsync {
			_ = s.active.Sync()
		}
		_ = s.active.Close()
		s.active = nil
	}
	seq := s.activeSeq + 1
	f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(seq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("snapstore: rotate to %s: %w", segName(seq), err)
	}
	s.activeSeq, s.active, s.activeSize = seq, f, 0
	s.segments[seq] = 0
	return nil
}

// Put durably records id → blob (write-ahead: the append happens before the
// in-memory index is updated, so an error leaves the index unchanged).
func (s *FileStore) Put(id string, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.append(opPut, id, blob); err != nil {
		return err
	}
	if old, ok := s.blobs[id]; ok {
		s.liveBytes -= recordSize(id, old)
	}
	cp := append([]byte(nil), blob...)
	s.blobs[id] = cp
	s.liveBytes += recordSize(id, cp)
	s.maybeCompactLocked()
	return nil
}

// Get returns a copy of the stored blob for id, with ok=false when absent.
func (s *FileStore) Get(id string) ([]byte, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.blobs[id]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), blob...), true, nil
}

// Delete durably removes id (a tombstone record; compaction drops it).
// Deleting an absent id is a no-op.
func (s *FileStore) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	old, ok := s.blobs[id]
	if !ok {
		return nil
	}
	if err := s.append(opDelete, id, nil); err != nil {
		return err
	}
	delete(s.blobs, id)
	s.liveBytes -= recordSize(id, old)
	s.maybeCompactLocked()
	return nil
}

// IDs lists stored session ids in sorted order.
func (s *FileStore) IDs() ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]string, 0, len(s.blobs))
	for id := range s.blobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

// Len reports how many blobs are live.
func (s *FileStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// SizeBytes reports the on-disk footprint across all segments (live +
// not-yet-compacted garbage).
func (s *FileStore) SizeBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.totalBytes
}

// maybeCompactLocked kicks off a background compaction when the garbage
// (dead record bytes) exceeds both one segment's worth and the live data
// itself — i.e. when at least half the log is rewrite-able away.
func (s *FileStore) maybeCompactLocked() {
	if s.opts.DisableAutoCompact || s.compacting || s.closed {
		return
	}
	garbage := s.totalBytes - s.liveBytes
	if garbage < s.opts.SegmentBytes || garbage < s.liveBytes {
		return
	}
	s.compacting = true
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.Compact()
	}()
}

// Compact rewrites all live blobs into a fresh segment and removes every
// older one. Crash-safe at any instant by later-wins replay: the rewrite
// segment has a higher sequence than everything it replaces, and old
// segments are removed only after the rewrite is complete and synced.
func (s *FileStore) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	defer func() { s.compacting = false }()
	if s.closed {
		return fmt.Errorf("snapstore: store is closed")
	}

	old := make([]uint64, 0, len(s.segments))
	for seq := range s.segments {
		old = append(old, seq)
	}
	sort.Slice(old, func(i, j int) bool { return old[i] < old[j] })

	// Seal the current active; the rewrite target is the next sequence.
	if s.active != nil {
		if s.opts.Fsync {
			_ = s.active.Sync()
		}
		_ = s.active.Close()
		s.active = nil
	}
	outSeq := s.activeSeq + 1
	out, err := s.fs.OpenFile(filepath.Join(s.dir, segName(outSeq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return s.compactAbort(outSeq, fmt.Errorf("snapstore: compact: open %s: %w", segName(outSeq), err))
	}
	ids := make([]string, 0, len(s.blobs))
	for id := range s.blobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	var outSize int64
	for _, id := range ids {
		rec := appendRecord(nil, opPut, id, s.blobs[id])
		n, werr := out.Write(rec)
		outSize += int64(n)
		if werr == nil && n < len(rec) {
			werr = fmt.Errorf("short write")
		}
		if werr != nil {
			_ = out.Close()
			return s.compactAbort(outSeq, fmt.Errorf("snapstore: compact: rewrite %s: %w", segName(outSeq), werr))
		}
	}
	// The rewrite must be durable before history is destroyed.
	if err := out.Sync(); err != nil {
		_ = out.Close()
		return s.compactAbort(outSeq, fmt.Errorf("snapstore: compact: sync: %w", err))
	}
	_ = out.Close()

	// Fresh active segment after the rewrite; appends never extend a
	// compacted segment, which keeps "later wins" trivially true.
	nextSeq := outSeq + 1
	f, err := s.fs.OpenFile(filepath.Join(s.dir, segName(nextSeq)), os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("snapstore: compact: open new active: %w", err)
	}
	for _, seq := range old {
		_ = s.fs.Remove(filepath.Join(s.dir, segName(seq)))
	}
	s.segments = map[uint64]int64{outSeq: outSize, nextSeq: 0}
	s.totalBytes = outSize
	s.activeSeq, s.active, s.activeSize = nextSeq, f, 0
	if s.onCompact != nil {
		s.onCompact()
	}
	return nil
}

// compactAbort cleans up a failed rewrite and restores an appendable
// active segment so the store stays usable after a compaction error.
func (s *FileStore) compactAbort(outSeq uint64, err error) error {
	_ = s.fs.Remove(filepath.Join(s.dir, segName(outSeq)))
	if rerr := s.rotateLocked(); rerr != nil {
		return fmt.Errorf("%w (and could not reopen an active segment: %v)", err, rerr)
	}
	return err
}

// Close waits for background compaction and seals the active segment.
func (s *FileStore) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.active != nil {
		if s.opts.Fsync {
			_ = s.active.Sync()
		}
		err := s.active.Close()
		s.active = nil
		return err
	}
	return nil
}

// MemStore is the trivial in-memory SessionStore: process-lifetime
// durability only, used as the default when no -store-dir is configured and
// as the reference implementation in tests.
type MemStore struct {
	mu    sync.Mutex
	blobs map[string][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{blobs: make(map[string][]byte)}
}

func (m *MemStore) Put(id string, blob []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.blobs[id] = append([]byte(nil), blob...)
	return nil
}

func (m *MemStore) Get(id string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	blob, ok := m.blobs[id]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), blob...), true, nil
}

func (m *MemStore) Delete(id string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.blobs, id)
	return nil
}

func (m *MemStore) IDs() ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ids := make([]string, 0, len(m.blobs))
	for id := range m.blobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids, nil
}

func (m *MemStore) SizeBytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for id, blob := range m.blobs {
		n += recordSize(id, blob)
	}
	return n
}

func (m *MemStore) Close() error { return nil }
