// Package snapstore provides durable storage for sessiond's checksummed
// session snapshots: a trivial in-memory store and an append-only segmented
// file store with write-ahead appends, a configurable fsync policy, segment
// rotation, background compaction, and a recovery scan that tolerates torn
// or corrupt tails instead of failing the boot.
//
// The package speaks opaque blobs — the snapshot codec lives in sessiond —
// so the store's own framing (per-record CRC, length caps) is the only
// integrity layer that matters here; snapshot-level checksums are defense
// in depth on top.
package snapstore

import (
	"io"
	"io/fs"
	"os"
)

// FS is the small filesystem surface the file store needs. Production uses
// OSFS; tests substitute a fault-injecting implementation (internal/faults)
// to rehearse torn writes, short reads, bit rot, and fsync failures on a
// deterministic schedule.
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// ReadDir lists a directory (sorted by filename, like os.ReadDir).
	ReadDir(name string) ([]fs.DirEntry, error)
	// MkdirAll creates a directory tree.
	MkdirAll(name string, perm fs.FileMode) error
	// Truncate cuts the named file to size bytes (tail repair on recovery).
	Truncate(name string, size int64) error
}

// File is the per-file surface: append writes, random reads, durability.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync flushes the file to stable storage (fsync).
	Sync() error
}

// OSFS is the production FS backed by the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		// Return an untyped nil so callers can test `file == nil` without
		// the classic non-nil-interface-around-nil-pointer trap.
		return nil, err
	}
	return f, nil
}

func (OSFS) Remove(name string) error                   { return os.Remove(name) }
func (OSFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OSFS) MkdirAll(name string, perm fs.FileMode) error { return os.MkdirAll(name, perm) }
func (OSFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
