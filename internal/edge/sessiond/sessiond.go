// Package sessiond is the multi-tenant session layer of the edge service:
// where package edge's /bo/next route re-derives a fresh optimizer from the
// full uploaded database on every call, sessiond keeps one HBO session per
// connected client alive server-side — its GP history (the BO database and
// the incrementally extended Cholesky factorization), its activation window
// of recent rewards, and a per-session mesh-cache handle over the shared
// object catalog.
//
// The store is sharded and lock-striped: a session's ID hashes to one of
// Config.Shards shards, each holding an independent mutex, session map, and
// suggest queue, so unrelated sessions never contend. Within a shard,
// capacity is bounded by LRU eviction over a logical touch tick (never the
// wall clock — eviction order is a pure function of the request sequence);
// sessions touched by the same batch drain share a tick, and ties evict the
// lexicographically smallest ID. An admission controller bounds each
// shard's suggest queue: when the queue is full the request is rejected
// with 503 and a Retry-After hint instead of queueing unboundedly, and the
// edge client's retry loop honors that hint.
//
// Suggest calls are batched per shard: one worker goroutine drains the
// queue in FIFO passes of up to Config.MaxBatch jobs, so concurrent clients
// amortize the per-pass overhead (one lock acquisition, one touch-tick
// stamp) and at most Shards GP computations run at once regardless of how
// many clients are connected. Because every session owns a persistent
// optimizer, each suggestion is an O(n²) incremental Cholesky extension
// rather than the stateless route's from-scratch O(n³) refit.
//
// Determinism contract: a session's suggestion stream is a pure function of
// its (seed, init, observation sequence) — batching, shard placement, and
// concurrent traffic from other sessions cannot perturb it, because every
// session draws from its own RNG and GP state. The package is listed in
// detlint's determinism-critical set and reads no wall clock outside
// obs-gated instrumentation.
package sessiond

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Decimator produces a decimated mesh from the shared object catalog.
// *edge.Server implements it; per-session mesh caches sit in front of it.
type Decimator interface {
	Decimate(object string, ratio float64, fast bool) (*mesh.Mesh, error)
}

// Server-side bounds, mirroring package edge's hardening constants.
const (
	// maxResources bounds the BO domain dimensionality per session.
	maxResources = 64
	// maxInitSamples bounds a session's init-phase budget.
	maxInitSamples = 100
	// maxSessionObservations bounds one session's GP database.
	maxSessionObservations = 10000
	// maxIDLen bounds session identifiers.
	maxIDLen = 128
	// windowCap bounds the per-session activation window of recent rewards.
	windowCap = 32
)

// Config tunes the session store, the admission controller, and the
// per-shard suggest batching.
type Config struct {
	// Shards is the number of lock stripes (and suggest workers).
	Shards int
	// SessionsPerShard caps each shard's session count; opening a session
	// in a full shard evicts that shard's least-recently-used session.
	SessionsPerShard int
	// QueueBound caps each shard's pending suggest queue; beyond it the
	// admission controller rejects with 503 + Retry-After.
	QueueBound int
	// RetryAfterSec is the Retry-After hint (whole seconds) sent with
	// admission rejections.
	RetryAfterSec int
	// MaxBatch caps how many queued suggests one drain pass serves.
	MaxBatch int
	// MeshCacheCap caps each session's decimated-mesh cache (entries).
	MeshCacheCap int
	// Store, when non-nil, persists session snapshots: eviction saves
	// instead of dropping state, open restores from snapshot in O(m) (full
	// replay remains the corrupt/missing fallback), and New performs a warm
	// restart from whatever the store holds. The caller owns the store's
	// lifecycle (Close); a nil Store reproduces the pre-durability behavior
	// exactly.
	Store SessionStore
	// SnapshotEvery additionally snapshots a session after this many
	// mutations since its last save (observations and served suggests both
	// count). Zero snapshots only on eviction and drain — cheapest, but a
	// crash loses everything since the last eviction.
	SnapshotEvery int
}

// DefaultConfig returns production-shaped defaults: 8 shards of up to 64
// sessions, 32 queued suggests per shard, 1 s Retry-After, 16-job batches,
// and 8 cached decimations per session.
func DefaultConfig() Config {
	return Config{
		Shards:           8,
		SessionsPerShard: 64,
		QueueBound:       32,
		RetryAfterSec:    1,
		MaxBatch:         16,
		MeshCacheCap:     8,
	}
}

func (c Config) validate() error {
	if c.Shards < 1 {
		return fmt.Errorf("sessiond: Shards %d must be >= 1", c.Shards)
	}
	if c.SessionsPerShard < 1 {
		return fmt.Errorf("sessiond: SessionsPerShard %d must be >= 1", c.SessionsPerShard)
	}
	if c.QueueBound < 1 {
		return fmt.Errorf("sessiond: QueueBound %d must be >= 1", c.QueueBound)
	}
	if c.RetryAfterSec < 1 {
		return fmt.Errorf("sessiond: RetryAfterSec %d must be >= 1", c.RetryAfterSec)
	}
	if c.MaxBatch < 1 {
		return fmt.Errorf("sessiond: MaxBatch %d must be >= 1", c.MaxBatch)
	}
	if c.MeshCacheCap < 1 {
		return fmt.Errorf("sessiond: MeshCacheCap %d must be >= 1", c.MeshCacheCap)
	}
	if c.SnapshotEvery < 0 {
		return fmt.Errorf("sessiond: SnapshotEvery %d must be >= 0", c.SnapshotEvery)
	}
	if c.SnapshotEvery > 0 && c.Store == nil {
		return fmt.Errorf("sessiond: SnapshotEvery set without a Store")
	}
	return nil
}

// params is the immutable per-session configuration fixed at open time.
// policy is stored in canonical form (policies.Canonical): the GP-EI
// default is "", so pre-arena clients and ones naming "gp-ei" explicitly
// compare equal under the idempotent-open == check.
type params struct {
	resources int
	rmin      float64
	seed      uint64
	init      int
	policy    string
}

func (p params) validate() error {
	if p.resources < 1 || p.resources > maxResources {
		return fmt.Errorf("sessiond: resources %d out of [1,%d]", p.resources, maxResources)
	}
	if p.rmin < 0 || p.rmin >= 1 {
		return fmt.Errorf("sessiond: rmin %v out of [0,1)", p.rmin)
	}
	if p.init < 1 || p.init > maxInitSamples {
		return fmt.Errorf("sessiond: init %d out of [1,%d]", p.init, maxInitSamples)
	}
	if p.policy != policies.Canonical(p.policy) {
		return fmt.Errorf("sessiond: policy %q not canonical", p.policy)
	}
	if !policies.Valid(p.policy) {
		return fmt.Errorf("sessiond: unknown policy %q (have %v)", p.policy, policies.Names())
	}
	return nil
}

// session is one client's server-side HBO state. The shard mutex guards its
// membership and lastTouch; the session's own mutex serializes optimizer
// and cache access, so a misbehaving client issuing concurrent calls for
// one session cannot corrupt GP state.
type session struct {
	id string
	p  params

	// lastTouch is the logical LRU tick, written under the shard mutex.
	lastTouch uint64

	mu  sync.Mutex
	opt bo.Policy
	// durable reports whether opt implements bo.DurablePolicy: durable
	// sessions snapshot on eviction/drain, ephemeral ones (e.g. cmaes) are
	// dropped and rebuilt via the client's replay fallback.
	durable bool
	// window is the activation window: the most recent rewards (−cost), a
	// bounded ring surfaced through /session/statz.
	window   []float64
	suggests int
	observes int
	meshes   *meshCache
	// dirty counts mutations (observations and served suggests — both move
	// optimizer state) since the last snapshot save; zero means the store
	// already holds this session's exact state.
	dirty int
}

// Service is the session store plus its HTTP surface. Safe for concurrent
// use once built; attach an observer before serving traffic.
type Service struct {
	cfg    Config
	dec    Decimator
	shards []*shard

	closeOnce sync.Once

	// Observability instruments; nil (no-op) unless SetObserver is called.
	metOpens         *obs.Counter
	metReopens       *obs.Counter
	metCloses        *obs.Counter
	metEvictions     *obs.Counter
	metRejects       *obs.Counter
	metUnknown       *obs.Counter
	metSuggests      *obs.Counter
	metObserves      *obs.Counter
	metDecimates     *obs.Counter
	metMeshHits      *obs.Counter
	metMeshMisses    *obs.Counter
	metBatches       *obs.Counter
	metBatchSize     *obs.Histogram
	metSessions      *obs.Gauge
	metQueueHighTide *obs.Gauge
	metSnapSaves     *obs.Counter
	metSnapSaveErrs  *obs.Counter
	metSnapRestores  *obs.Counter
	metSnapCorrupt   *obs.Counter
	metSnapSaveMS    *obs.Histogram
	metSnapRestoreMS *obs.Histogram
	metStoreBytes    *obs.Gauge

	// Stream-surface instruments (the binary /session/stream route).
	metStreamOpens      *obs.Counter
	metStreamFramesIn   *obs.Counter
	metStreamFramesOut  *obs.Counter
	metStreamDecodeErrs *obs.Counter
	metStreamsOpen      *obs.Gauge
	metStreamDurMS      *obs.Histogram

	// Durability counters kept as plain atomics so /session/statz is
	// correct without any registry attached.
	durSaves    atomic.Uint64
	durSaveErrs atomic.Uint64
	durRestores atomic.Uint64
	durCorrupt  atomic.Uint64

	// Stream counters, same pattern: statz stays correct registry or not.
	strOpen       atomic.Int64
	strFramesIn   atomic.Uint64
	strFramesOut  atomic.Uint64
	strDecodeErrs atomic.Uint64
}

// batchSizeBuckets covers drain-pass sizes from singletons up to MaxBatch.
var batchSizeBuckets = []float64{1, 2, 4, 8, 16, 32}

// New builds the service and starts one suggest worker per shard. dec may
// be nil, which disables the /session/decimate route. With a Store
// configured, New performs a warm restart first: every stored snapshot is
// re-hydrated into its shard (up to capacity; the rest restore lazily on
// open), so a restarted process serves its old sessions bit-identically.
func New(cfg Config, dec Decimator) (*Service, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, dec: dec, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			sessions: make(map[string]*session),
			queue:    make(chan *suggestJob, cfg.QueueBound),
		}
	}
	if cfg.Store != nil {
		if err := s.warmRestart(); err != nil {
			return nil, err
		}
	}
	for _, sh := range s.shards {
		go s.worker(sh)
	}
	return s, nil
}

// SetObserver attaches a metrics registry: open/close/eviction and
// admission-rejection counters, suggest/observe/decimate traffic, batching
// shape, and live session/queue gauges. Call before serving; passing nil
// detaches.
func (s *Service) SetObserver(reg *obs.Registry) {
	s.metOpens = reg.Counter("sessiond.opens")
	s.metReopens = reg.Counter("sessiond.reopens")
	s.metCloses = reg.Counter("sessiond.closes")
	s.metEvictions = reg.Counter("sessiond.evictions")
	s.metRejects = reg.Counter("sessiond.admission_rejects")
	s.metUnknown = reg.Counter("sessiond.unknown_session")
	s.metSuggests = reg.Counter("sessiond.suggests")
	s.metObserves = reg.Counter("sessiond.observes")
	s.metDecimates = reg.Counter("sessiond.decimates")
	s.metMeshHits = reg.Counter("sessiond.mesh_cache_hits")
	s.metMeshMisses = reg.Counter("sessiond.mesh_cache_misses")
	s.metBatches = reg.Counter("sessiond.batches")
	s.metSessions = reg.Gauge("sessiond.sessions")
	s.metQueueHighTide = reg.Gauge("sessiond.queue_high_tide")
	s.metSnapSaves = reg.Counter("sessiond.snapshot_saves")
	s.metSnapSaveErrs = reg.Counter("sessiond.snapshot_save_errors")
	s.metSnapRestores = reg.Counter("sessiond.snapshot_restores")
	s.metSnapCorrupt = reg.Counter("sessiond.snapshot_corrupt")
	s.metStoreBytes = reg.Gauge("sessiond.store_bytes")
	s.metStreamOpens = reg.Counter("sessiond.stream_opens")
	s.metStreamFramesIn = reg.Counter("sessiond.stream_frames_in")
	s.metStreamFramesOut = reg.Counter("sessiond.stream_frames_out")
	s.metStreamDecodeErrs = reg.Counter("sessiond.stream_decode_errors")
	s.metStreamsOpen = reg.Gauge("sessiond.streams_open")
	if reg != nil {
		s.metBatchSize = reg.Histogram("sessiond.batch_size", batchSizeBuckets)
		s.metSnapSaveMS = reg.Histogram("sessiond.snapshot_save_ms", obs.LatencyBucketsMS)
		s.metSnapRestoreMS = reg.Histogram("sessiond.snapshot_restore_ms", obs.LatencyBucketsMS)
		s.metStreamDurMS = reg.Histogram("sessiond.stream_open_ms", obs.LatencyBucketsMS)
	} else {
		s.metBatchSize = nil
		s.metSnapSaveMS = nil
		s.metSnapRestoreMS = nil
		s.metStreamDurMS = nil
	}
}

// Close stops the shard workers. Call only after the HTTP server owning the
// routes has fully shut down — a request arriving afterwards would enqueue
// into a closed channel.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		for _, sh := range s.shards {
			close(sh.queue)
		}
	})
}

// boConfig is the single source of truth for how a session's parameters map
// onto an optimizer configuration. Live creation (newSession) and snapshot
// restore must agree exactly, or a restored optimizer would diverge from the
// one that was exported.
func boConfig(p params) bo.Config {
	cfg := bo.DefaultConfig()
	cfg.InitSamples = p.init
	return cfg
}

// newSession builds a fresh session for the given parameters, resolving the
// optimizer through the policy registry (p.policy "" is the GP-EI default).
func (s *Service) newSession(id string, p params) (*session, error) {
	dom := bo.Domain{N: p.resources, RMin: p.rmin}
	opt, err := policies.New(p.policy, dom, boConfig(p), sim.NewRNG(p.seed))
	if err != nil {
		return nil, err
	}
	_, durable := opt.(bo.DurablePolicy)
	return &session{
		id:      id,
		p:       p,
		opt:     opt,
		durable: durable,
		meshes:  newMeshCache(s.cfg.MeshCacheCap),
	}, nil
}
