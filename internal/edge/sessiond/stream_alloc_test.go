package sessiond

import (
	"testing"
)

// TestStreamNilRegistryNoAlloc pins the observability contract for the
// stream instruments: with no registry attached, the per-frame accounting a
// stream handler performs on every frame — plain atomics plus nil-receiver
// metric calls — and the statz snapshot must not allocate. This is what
// keeps the zero-alloc frame hot path honest when observability is off.
func TestStreamNilRegistryNoAlloc(t *testing.T) {
	svc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	svc.SetObserver(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		// The exact bookkeeping streamRead/streamWriter do per frame.
		svc.strFramesIn.Add(1)
		svc.metStreamFramesIn.Inc()
		svc.strFramesOut.Add(1)
		svc.metStreamFramesOut.Inc()
		svc.strDecodeErrs.Add(1)
		svc.metStreamDecodeErrs.Inc()
		svc.metStreamsOpen.Set(float64(svc.strOpen.Add(1)))
		svc.metStreamsOpen.Set(float64(svc.strOpen.Add(-1)))
	}); allocs != 0 {
		t.Fatalf("per-frame stream accounting allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = svc.Streams() }); allocs != 0 {
		t.Fatalf("Streams() allocates %v times per run, want 0", allocs)
	}
	// The pending-slot pool must recycle: steady-state dispatch takes a slot
	// and returns it without growing the heap.
	p := getPending()
	putPending(p)
	if allocs := testing.AllocsPerRun(100, func() { putPending(getPending()) }); allocs != 0 {
		t.Fatalf("pending pool allocates %v times per run, want 0", allocs)
	}
}
