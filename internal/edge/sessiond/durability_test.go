package sessiond

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
	"github.com/mar-hbo/hbo/internal/sim"
)

// driveCost is the deterministic synthetic objective the durability tests
// evaluate suggestions against on both the session and its mirror.
func driveCost(point []float64) float64 {
	c := 0.0
	for i, v := range point {
		c += float64(i+1) * v
	}
	return c
}

// mirrorOptimizer builds the reference optimizer a restored session must
// stay bit-identical to, and drives it through rounds suggest+observe
// cycles.
func mirrorOptimizer(t *testing.T, p params, rounds int) *bo.Optimizer {
	t.Helper()
	opt, err := bo.NewOptimizer(bo.Domain{N: p.resources, RMin: p.rmin}, boConfig(p), sim.NewRNG(p.seed))
	if err != nil {
		t.Fatalf("mirror optimizer: %v", err)
	}
	for i := 0; i < rounds; i++ {
		pt, err := opt.Next()
		if err != nil {
			t.Fatalf("mirror Next %d: %v", i, err)
		}
		if err := opt.Observe(pt, driveCost(pt)); err != nil {
			t.Fatalf("mirror Observe %d: %v", i, err)
		}
	}
	return opt
}

// driveSession runs rounds suggest+observe cycles against a live session
// through the real serving paths (suggestOne, observe).
func driveSession(t *testing.T, sess *session, rounds int) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		res := suggestOne(sess)
		if res.err != nil {
			t.Fatalf("suggest %d: %v", i, res.err)
		}
		if _, _, err := sess.observe(res.point, driveCost(res.point)); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

// getStatz fetches and decodes /session/statz.
func getStatz(t *testing.T, baseURL string) StatsResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/session/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer resp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	return stats
}

// samePoint compares two suggestions bitwise — the determinism contract is
// bit-identity, not approximate equality.
func samePoint(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// TestDurabilityEvictionDemotesAndRestores is the core promise: eviction
// with a store configured demotes the victim to disk instead of destroying
// it, and the next open restores a session whose suggestion stream continues
// bit-identically — no replay.
func TestDurabilityEvictionDemotesAndRestores(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.SessionsPerShard = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	const rounds = 7
	p := testParams(42)
	sess, _, err := svc.open("a", p)
	if err != nil {
		t.Fatalf("open a: %v", err)
	}
	driveSession(t, sess, rounds)

	// Opening b in the single-slot shard evicts a — which must land in the
	// store, not evaporate.
	if _, res, err := svc.open("b", testParams(2)); err != nil || res.evicted != "a" {
		t.Fatalf("open b = (%+v err=%v), want eviction of a", res, err)
	}
	if _, ok, _ := store.Get("a"); !ok {
		t.Fatal("evicted session not demoted to the store")
	}
	d := svc.Durability()
	if d.Saves != 1 || d.SaveErrors != 0 {
		t.Fatalf("durability after eviction = %+v, want 1 save", d)
	}

	// Re-open a: restored from snapshot, already holding its history.
	sess2, res, err := svc.open("a", p)
	if err != nil || !res.restored || res.existing {
		t.Fatalf("re-open a = (%+v err=%v), want restored", res, err)
	}
	if got := sess2.observations(); got != rounds {
		t.Fatalf("restored session holds %d observations, want %d", got, rounds)
	}
	if svc.Durability().Restores != 1 {
		t.Fatalf("Restores = %d, want 1", svc.Durability().Restores)
	}

	// The restored stream must continue exactly where the original left off.
	mirror := mirrorOptimizer(t, p, rounds)
	for i := 0; i < 3; i++ {
		want, err := mirror.Next()
		if err != nil {
			t.Fatalf("mirror Next: %v", err)
		}
		got := suggestOne(sess2)
		if got.err != nil {
			t.Fatalf("restored suggest: %v", got.err)
		}
		if !samePoint(got.point, want) {
			t.Fatalf("restored suggestion %d = %v, want bit-identical %v", i, got.point, want)
		}
		if err := mirror.Observe(want, driveCost(want)); err != nil {
			t.Fatalf("mirror Observe: %v", err)
		}
		if _, _, err := sess2.observe(got.point, driveCost(got.point)); err != nil {
			t.Fatalf("restored observe: %v", err)
		}
	}
}

// TestDurabilityWarmRestart builds a second Service over the first one's
// store and checks the sessions come back live and bit-identical.
func TestDurabilityWarmRestart(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Store = store
	svc1, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}

	const rounds = 6
	ids := []string{"alpha", "beta", "gamma"}
	for i, id := range ids {
		sess, _, err := svc1.open(id, testParams(uint64(100+i)))
		if err != nil {
			t.Fatalf("open %s: %v", id, err)
		}
		driveSession(t, sess, rounds)
	}
	svc1.Flush()
	svc1.Close()
	if d := svc1.Durability(); d.Saves != uint64(len(ids)) {
		t.Fatalf("Flush saved %d sessions, want %d", d.Saves, len(ids))
	}

	svc2, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("warm-restart New: %v", err)
	}
	defer svc2.Close()
	if got := svc2.sessionCount(); got != len(ids) {
		t.Fatalf("warm restart brought back %d sessions, want %d", got, len(ids))
	}
	if d := svc2.Durability(); d.Restores != uint64(len(ids)) {
		t.Fatalf("Restores = %d, want %d", d.Restores, len(ids))
	}
	for i, id := range ids {
		sess, ok := svc2.peek(id)
		if !ok {
			t.Fatalf("session %s not live after warm restart", id)
		}
		mirror := mirrorOptimizer(t, testParams(uint64(100+i)), rounds)
		want, err := mirror.Next()
		if err != nil {
			t.Fatalf("mirror Next: %v", err)
		}
		got := suggestOne(sess)
		if got.err != nil {
			t.Fatalf("restored suggest for %s: %v", id, got.err)
		}
		if !samePoint(got.point, want) {
			t.Fatalf("session %s post-restart suggestion = %v, want %v", id, got.point, want)
		}
	}
}

// TestDurabilityFlushSkipsClean checks the dirty bookkeeping: a second Flush
// with no intervening mutations writes nothing.
func TestDurabilityFlushSkipsClean(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSession(t, sess, 3)
	svc.Flush()
	if d := svc.Durability(); d.Saves != 1 {
		t.Fatalf("first Flush: Saves = %d, want 1", d.Saves)
	}
	svc.Flush()
	if d := svc.Durability(); d.Saves != 1 {
		t.Fatalf("clean Flush re-saved: Saves = %d, want still 1", d.Saves)
	}
	// One more mutation re-dirties; the next Flush writes again.
	driveSession(t, sess, 1)
	svc.Flush()
	if d := svc.Durability(); d.Saves != 2 {
		t.Fatalf("post-mutation Flush: Saves = %d, want 2", d.Saves)
	}
}

// TestDurabilityRemoveDeletesSnapshot checks that an explicit close destroys
// durable state too — both when the session is live and when it only exists
// as a snapshot.
func TestDurabilityRemoveDeletesSnapshot(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSession(t, sess, 2)
	svc.Flush()
	if !svc.remove("a") {
		t.Fatal("remove of a live stored session reported not found")
	}
	if _, ok, _ := store.Get("a"); ok {
		t.Fatal("snapshot survived an explicit close")
	}

	// Store-only session (simulates an evicted one): remove still finds and
	// destroys it.
	sess, _, err = svc.open("b", testParams(2))
	if err != nil {
		t.Fatalf("open b: %v", err)
	}
	driveSession(t, sess, 2)
	svc.Flush()
	sh := svc.shardFor("b")
	sh.mu.Lock()
	delete(sh.sessions, "b")
	sh.mu.Unlock()
	if !svc.remove("b") {
		t.Fatal("remove of a store-only session reported not found")
	}
	if _, ok, _ := store.Get("b"); ok {
		t.Fatal("store-only snapshot survived remove")
	}
	if svc.remove("b") {
		t.Fatal("second remove reported found")
	}
}

// TestDurabilityParamChangeDiscardsSnapshot checks that a snapshot recorded
// under old parameters can never leak into a session opened with new ones.
func TestDurabilityParamChangeDiscardsSnapshot(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSession(t, sess, 3)
	svc.Flush()

	// Store-only, then re-open with different parameters: the stale snapshot
	// is discarded and the session starts fresh.
	sh := svc.shardFor("a")
	sh.mu.Lock()
	delete(sh.sessions, "a")
	sh.mu.Unlock()
	sess2, res, err := svc.open("a", testParams(999))
	if err != nil || res.restored || res.existing {
		t.Fatalf("param-change open = (%+v err=%v), want fresh", res, err)
	}
	if got := sess2.observations(); got != 0 {
		t.Fatalf("fresh session inherited %d observations from a stale snapshot", got)
	}
	if _, ok, _ := store.Get("a"); ok {
		t.Fatal("stale snapshot for old parameters survived")
	}

	// Live param change deletes too.
	driveSession(t, sess2, 2)
	svc.Flush()
	if _, res, err := svc.open("a", testParams(1000)); err != nil || res.restored || res.existing {
		t.Fatalf("live param-change open = (%+v err=%v), want fresh", res, err)
	}
	if _, ok, _ := store.Get("a"); ok {
		t.Fatal("live param change left the old-parameter snapshot behind")
	}
}

// TestDurabilityCorruptSnapshotFallsBack checks the degradation path: a
// snapshot that fails decode is counted, deleted, and the open falls back to
// a fresh session (zero observations — the client's cue to replay).
func TestDurabilityCorruptSnapshotFallsBack(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	if err := store.Put("a", []byte("not a snapshot")); err != nil {
		t.Fatalf("seeding corrupt blob: %v", err)
	}
	sess, res, err := svc.open("a", testParams(1))
	if err != nil || res.restored || res.existing {
		t.Fatalf("open over corrupt snapshot = (%+v err=%v), want fresh fallback", res, err)
	}
	if got := sess.observations(); got != 0 {
		t.Fatalf("fallback session holds %d observations, want 0", got)
	}
	d := svc.Durability()
	if d.Corrupt != 1 || d.Restores != 0 {
		t.Fatalf("durability = %+v, want exactly one corrupt, zero restores", d)
	}
	if _, ok, _ := store.Get("a"); ok {
		t.Fatal("corrupt snapshot not deleted")
	}

	// A snapshot stored under the wrong id is corruption too.
	sessB, _, err := svc.open("b", testParams(2))
	if err != nil {
		t.Fatalf("open b: %v", err)
	}
	driveSession(t, sessB, 2)
	svc.Flush()
	blob, ok, _ := store.Get("b")
	if !ok {
		t.Fatal("no snapshot for b after Flush")
	}
	if err := store.Put("c", blob); err != nil {
		t.Fatalf("planting mismatched snapshot: %v", err)
	}
	if _, res, err := svc.open("c", testParams(2)); err != nil || res.restored {
		t.Fatalf("open over mismatched snapshot = (%+v err=%v), want fresh", res, err)
	}
	if svc.Durability().Corrupt != 2 {
		t.Fatalf("Corrupt = %d, want 2", svc.Durability().Corrupt)
	}
}

// TestDurabilityHTTP drives the durability tier end to end over HTTP:
// SnapshotEvery-triggered saves, the statz durability block, and the
// Observations field clients use for tail-only replay.
func TestDurabilityHTTP(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	cfg.SnapshotEvery = 1
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ec, err := edge.NewClient(ts.URL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	ctx := context.Background()

	var open OpenResponse
	req := OpenRequest{ID: "h", Resources: 3, RMin: 0.1, Seed: 7, Init: 5}
	if err := ec.PostJSON(ctx, "/session/open", req, &open); err != nil {
		t.Fatalf("open: %v", err)
	}
	if open.Existing || open.Restored || open.Observations != 0 {
		t.Fatalf("fresh open = %+v", open)
	}
	const rounds = 4
	for i := 0; i < rounds; i++ {
		var sug SuggestResponse
		if err := ec.PostJSON(ctx, "/session/suggest", SuggestRequest{ID: "h"}, &sug); err != nil {
			t.Fatalf("suggest %d: %v", i, err)
		}
		var obsr ObserveResponse
		or := ObserveRequest{ID: "h", Point: sug.Point, Cost: driveCost(sug.Point)}
		if err := ec.PostJSON(ctx, "/session/observe", or, &obsr); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
		if obsr.Observations != i+1 {
			t.Fatalf("observe %d reported %d observations", i, obsr.Observations)
		}
	}
	// SnapshotEvery=1: every observe saved.
	if d := svc.Durability(); d.Saves != rounds {
		t.Fatalf("Saves = %d after %d observes with SnapshotEvery=1", d.Saves, rounds)
	}
	if _, ok, _ := store.Get("h"); !ok {
		t.Fatal("no snapshot after periodic saves")
	}

	stats := getStatz(t, ts.URL)
	if stats.Durability == nil {
		t.Fatal("statz missing durability block with a store configured")
	}
	if stats.Durability.Saves != rounds || stats.Durability.StoreBytes <= 0 {
		t.Fatalf("statz durability = %+v", stats.Durability)
	}

	// Drop the live session, then re-open: restored, reporting its history
	// size so a client replays only the tail.
	sh := svc.shardFor("h")
	sh.mu.Lock()
	delete(sh.sessions, "h")
	sh.mu.Unlock()
	if err := ec.PostJSON(ctx, "/session/open", req, &open); err != nil {
		t.Fatalf("re-open: %v", err)
	}
	if !open.Restored || open.Observations != rounds {
		t.Fatalf("re-open = %+v, want restored with %d observations", open, rounds)
	}
}

// TestDurabilityStatzWithoutStore checks the block stays absent with no
// store configured — the pre-durability statz shape is preserved.
func TestDurabilityStatzWithoutStore(t *testing.T) {
	svc, err := New(DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	stats := getStatz(t, ts.URL)
	if stats.Durability != nil {
		t.Fatalf("statz grew a durability block without a store: %+v", stats.Durability)
	}
}

// TestDurabilityNilRegistryNoAlloc pins the observability contract for the
// new durability instruments: without a registry, the hot-path bookkeeping
// around a clean session's save check performs no allocations.
func TestDurabilityNilRegistryNoAlloc(t *testing.T) {
	store := snapstore.NewMemStore()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.Store = store
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()
	svc.SetObserver(nil)
	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// A clean session's save is the steady-state path the periodic trigger
	// hits over and over; it must stay free.
	if allocs := testing.AllocsPerRun(100, func() { svc.saveSession(sess) }); allocs != 0 {
		t.Fatalf("clean saveSession allocates %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = svc.Durability() }); allocs != 0 {
		t.Fatalf("Durability allocates %v times per run, want 0", allocs)
	}
}
