package sessiond

import (
	"fmt"
	"math"
)

// suggestJob is one queued suggest call; reply is buffered so the worker
// never blocks on a caller that gave up waiting.
type suggestJob struct {
	sess  *session
	reply chan suggestResult
}

type suggestResult struct {
	point        []float64
	observations int
	err          error
}

// enqueueSuggest applies the admission control: the job is accepted only if
// the shard's queue has room right now. ok=false is the caller's cue to
// reject with Retry-After.
func (s *Service) enqueueSuggest(sess *session, job *suggestJob) bool {
	sh := s.shardFor(sess.id)
	select {
	case sh.queue <- job:
		if depth := float64(len(sh.queue)); depth > s.metQueueHighTide.Value() {
			s.metQueueHighTide.Set(depth)
		}
		return true
	default:
		return false
	}
}

// worker drains one shard's suggest queue in FIFO batch passes: the
// blocking receive picks up the first waiting job, then up to MaxBatch−1
// more are taken without blocking. The whole pass shares one LRU tick (one
// shard-lock acquisition per pass, and the source of eviction ties), then
// each job runs against its own session's optimizer.
//
//hbo:noalloc
func (s *Service) worker(sh *shard) {
	for job := range sh.queue {
		batch := make([]*suggestJob, 1, s.cfg.MaxBatch) //hbo:allowalloc one slice per batch pass, amortized over up to MaxBatch jobs
		batch[0] = job
	fill:
		for len(batch) < s.cfg.MaxBatch {
			select {
			case j, ok := <-sh.queue:
				if !ok {
					break fill
				}
				batch = append(batch, j)
			default:
				break fill
			}
		}
		sh.mu.Lock()
		sh.tick++
		t := sh.tick
		for _, j := range batch {
			j.sess.lastTouch = t
		}
		sh.mu.Unlock()
		s.metBatches.Inc()
		s.metBatchSize.Observe(float64(len(batch)))
		for _, j := range batch {
			j.reply <- suggestOne(j.sess)
		}
	}
}

// suggestOne serves one suggest against the session's persistent optimizer.
//
//hbo:noalloc
func suggestOne(sess *session) suggestResult {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	point, err := sess.opt.Next()
	if err != nil {
		return suggestResult{err: fmt.Errorf("sessiond: suggest for %s: %w", sess.id, err)}
	}
	sess.suggests++
	sess.dirty++ // the suggest advanced the RNG: the stored snapshot is stale
	return suggestResult{point: point, observations: sess.opt.Observations()}
}

// observe records one (point, cost) pair into the session's GP history and
// activation window, returning the database size and the session's mutation
// count since its last snapshot (the periodic-snapshot trigger input).
func (sess *session) observe(point []float64, cost float64) (int, int, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.observeLocked(point, cost)
}

// observeLocked is observe's body for callers already holding sess.mu (the
// stream path's indexed observe checks the database size under the same
// lock acquisition as the append).
//
//hbo:noalloc
func (sess *session) observeLocked(point []float64, cost float64) (int, int, error) {
	if sess.opt.Observations() >= maxSessionObservations {
		return 0, 0, fmt.Errorf("sessiond: session %s at the %d-observation limit", sess.id, maxSessionObservations)
	}
	if err := sess.opt.Observe(point, cost); err != nil {
		return 0, 0, err
	}
	sess.observes++
	sess.dirty++
	sess.window = append(sess.window, -cost)
	if len(sess.window) > windowCap {
		sess.window = sess.window[len(sess.window)-windowCap:]
	}
	return sess.opt.Observations(), sess.dirty, nil
}

// observations reads the session's current database size.
func (sess *session) observations() int {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.opt.Observations()
}

// windowStats summarizes the activation window: sample count and the mean
// of the retained recent rewards (NaN-free by construction — Observe
// rejects non-finite costs).
func (sess *session) windowStats() (n int, mean float64) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if len(sess.window) == 0 {
		return 0, math.NaN()
	}
	sum := 0.0
	for _, v := range sess.window {
		sum += v
	}
	return len(sess.window), sum / float64(len(sess.window))
}
