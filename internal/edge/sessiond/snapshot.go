package sessiond

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"github.com/mar-hbo/hbo/internal/bo"
)

// Snapshot wire format (versioned, checksummed, deterministic):
//
//	magic   u32  "HBSS" (0x48425353)
//	version u16  snapshotVersion
//	flags   u16  bit0: a GP factor is present; bit1: a policy name follows
//	id      u16 length + bytes                  (≤ maxIDLen)
//	params  resources u32, rmin f64, seed u64, init u32
//	counts  suggests u64, observes u64
//	rng     u64  sim.RNG state
//	window  u32 n + n×f64                       (≤ windowCap)
//	obs     u32 n, u32 dim, n×dim f64 xs, n f64 ys
//	gp      [flag] scale f64, rows u32, rows(rows+1)/2 f64 packed factor
//	policy  [flag] u16 length + bytes           (≤ maxSnapshotPolicyLen)
//	meshes  u32 n, n×(u16 len + object bytes, i32 ratioStep, u8 fast)
//	crc     u32  IEEE CRC-32 of every preceding byte
//
// All integers are little-endian; floats are raw IEEE-754 bit patterns, so
// encode∘decode is bit-exact and two encodes of the same state are
// byte-identical (no maps are walked — every sequence has a defined order).
// The decoder is hardened against adversarial bytes: every count is checked
// against both its semantic bound and the bytes actually remaining before
// any allocation, so truncated or hostile input fails cleanly without
// over-allocating, and the trailing CRC rejects bit rot up front.
const (
	snapshotMagic   = 0x48425353 // "HBSS"
	snapshotVersion = 1

	snapFlagGP = 1 << 0
	// snapFlagPolicy marks a non-default optimizer policy name. The flag is
	// set if and only if the name is non-empty (the GP-EI default is always
	// the empty string), so pre-arena snapshots stay byte-identical and a
	// flagged blob handed to a pre-arena decoder fails loudly instead of
	// restoring under the wrong policy.
	snapFlagPolicy = 1 << 1

	// maxSnapshotManifest bounds the decoded mesh-LRU manifest; real caches
	// are MeshCacheCap-sized (single digits), so this is pure decoder armor.
	maxSnapshotManifest = 1024
	// maxSnapshotObjectLen bounds one manifest object name.
	maxSnapshotObjectLen = 256
	// maxSnapshotPolicyLen bounds a decoded policy name (real names are
	// single words; this is decoder armor).
	maxSnapshotPolicyLen = 64
)

// snapshot is the decoded form of one session's durable state.
type snapshot struct {
	id       string
	p        params
	suggests uint64
	observes uint64
	window   []float64
	opt      *bo.OptimizerState
	manifest []meshKey
}

// encodeSnapshot serializes a snapshot. The layout above is append-only
// within a version; any layout change bumps snapshotVersion so old decoders
// refuse new blobs loudly instead of misparsing them.
//
//hbo:codec snapshot encode
func encodeSnapshot(s *snapshot) []byte {
	dim := s.p.resources + 1
	n := len(s.opt.X)
	size := 4 + 2 + 2 + // magic, version, flags
		2 + len(s.id) +
		4 + 8 + 8 + 4 + // params
		8 + 8 + 8 + // counts, rng
		4 + 8*len(s.window) +
		4 + 4 + 8*n*dim + 8*n
	hasGP := s.opt.GPRows > 0
	if hasGP {
		size += 8 + 4 + 8*len(s.opt.GPFactor)
	}
	hasPolicy := s.p.policy != ""
	if hasPolicy {
		size += 2 + len(s.p.policy)
	}
	size += 4
	for _, k := range s.manifest {
		size += 2 + len(k.object) + 4 + 1
	}
	size += 4 // crc

	b := make([]byte, 0, size)
	b = binary.LittleEndian.AppendUint32(b, snapshotMagic)
	b = binary.LittleEndian.AppendUint16(b, snapshotVersion)
	flags := uint16(0)
	if hasGP {
		flags |= snapFlagGP
	}
	if hasPolicy {
		flags |= snapFlagPolicy
	}
	b = binary.LittleEndian.AppendUint16(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s.id)))
	b = append(b, s.id...)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.p.resources))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.p.rmin))
	b = binary.LittleEndian.AppendUint64(b, s.p.seed)
	b = binary.LittleEndian.AppendUint32(b, uint32(s.p.init))
	b = binary.LittleEndian.AppendUint64(b, s.suggests)
	b = binary.LittleEndian.AppendUint64(b, s.observes)
	b = binary.LittleEndian.AppendUint64(b, s.opt.RNGState)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.window)))
	for _, v := range s.window {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(n))
	b = binary.LittleEndian.AppendUint32(b, uint32(dim))
	for _, x := range s.opt.X {
		for _, v := range x {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	for _, v := range s.opt.Y {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
	}
	if hasGP {
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.opt.GPLengthScale))
		b = binary.LittleEndian.AppendUint32(b, uint32(s.opt.GPRows))
		for _, v := range s.opt.GPFactor {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	}
	if hasPolicy {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.p.policy)))
		b = append(b, s.p.policy...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.manifest)))
	for _, k := range s.manifest {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(k.object)))
		b = append(b, k.object...)
		b = binary.LittleEndian.AppendUint32(b, uint32(int32(k.ratioStep)))
		if k.fast {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
	return b
}

// snapReader is a bounds-checked cursor over an untrusted snapshot payload.
type snapReader struct {
	b   []byte
	off int
	err error
}

func (r *snapReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("sessiond: snapshot: "+format, args...)
	}
}

func (r *snapReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated at offset %d (need %d of %d remaining)", r.off, n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *snapReader) u8() uint8 {
	if p := r.take(1); p != nil {
		return p[0]
	}
	return 0
}

func (r *snapReader) u16() uint16 {
	if p := r.take(2); p != nil {
		return binary.LittleEndian.Uint16(p)
	}
	return 0
}

func (r *snapReader) u32() uint32 {
	if p := r.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (r *snapReader) u64() uint64 {
	if p := r.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (r *snapReader) f64() float64 { return math.Float64frombits(r.u64()) }

// f64s reads a count-checked float vector. The remaining-bytes check in
// take guarantees the allocation is backed by real input, so a hostile
// length prefix cannot make the decoder allocate more than it was handed.
func (r *snapReader) f64s(n int) []float64 {
	if r.err != nil {
		return nil
	}
	if len(r.b)-r.off < 8*n {
		r.fail("truncated float vector of %d at offset %d", n, r.off)
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

// decodeSnapshot parses and validates an untrusted snapshot blob. It never
// panics: every read is bounds-checked, every count is validated against
// both its semantic limit and the remaining input, and the CRC is verified
// before any structure is trusted.
//
//hbo:codec snapshot decode
func decodeSnapshot(blob []byte) (*snapshot, error) {
	if len(blob) < 12 {
		return nil, fmt.Errorf("sessiond: snapshot: %d bytes is shorter than any valid snapshot", len(blob))
	}
	body, tail := blob[:len(blob)-4], blob[len(blob)-4:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return nil, fmt.Errorf("sessiond: snapshot: CRC mismatch (got %08x want %08x)", got, want)
	}
	r := &snapReader{b: body}
	if magic := r.u32(); r.err == nil && magic != snapshotMagic {
		return nil, fmt.Errorf("sessiond: snapshot: bad magic %08x", magic)
	}
	if v := r.u16(); r.err == nil && v != snapshotVersion {
		return nil, fmt.Errorf("sessiond: snapshot: unsupported version %d", v)
	}
	flags := r.u16()
	if r.err == nil && flags&^uint16(snapFlagGP|snapFlagPolicy) != 0 {
		// Unknown flags mean a future writer; refusing keeps decode∘encode
		// canonical (every accepted blob re-encodes to identical bytes).
		return nil, fmt.Errorf("sessiond: snapshot: unknown flags %04x", flags)
	}

	s := &snapshot{opt: &bo.OptimizerState{}}
	idLen := int(r.u16())
	if r.err == nil && idLen > maxIDLen {
		return nil, fmt.Errorf("sessiond: snapshot: id length %d over %d", idLen, maxIDLen)
	}
	s.id = string(r.take(idLen))
	s.p.resources = int(r.u32())
	s.p.rmin = r.f64()
	s.p.seed = r.u64()
	s.p.init = int(r.u32())
	if r.err == nil {
		if err := s.p.validate(); err != nil {
			return nil, fmt.Errorf("sessiond: snapshot: %w", err)
		}
	}
	s.suggests = r.u64()
	s.observes = r.u64()
	s.opt.RNGState = r.u64()

	wn := int(r.u32())
	if r.err == nil && wn > windowCap {
		return nil, fmt.Errorf("sessiond: snapshot: window of %d over cap %d", wn, windowCap)
	}
	s.window = r.f64s(wn)

	n := int(r.u32())
	dim := int(r.u32())
	if r.err == nil {
		if n > maxSessionObservations {
			return nil, fmt.Errorf("sessiond: snapshot: %d observations over cap %d", n, maxSessionObservations)
		}
		if dim != s.p.resources+1 {
			return nil, fmt.Errorf("sessiond: snapshot: dim %d does not match %d resources", dim, s.p.resources)
		}
	}
	if r.err == nil {
		s.opt.X = make([][]float64, 0, min(n, (len(r.b)-r.off)/(8*dim)+1))
		for i := 0; i < n && r.err == nil; i++ {
			s.opt.X = append(s.opt.X, r.f64s(dim))
		}
	}
	s.opt.Y = r.f64s(n)

	if flags&snapFlagGP != 0 {
		s.opt.GPLengthScale = r.f64()
		rows := int(r.u32())
		if r.err == nil && (rows < 1 || rows > n) {
			return nil, fmt.Errorf("sessiond: snapshot: factor rows %d out of [1,%d]", rows, n)
		}
		s.opt.GPRows = rows
		s.opt.GPFactor = r.f64s(rows * (rows + 1) / 2)
	}

	if flags&snapFlagPolicy != 0 {
		polLen := int(r.u16())
		if r.err == nil && (polLen < 1 || polLen > maxSnapshotPolicyLen) {
			return nil, fmt.Errorf("sessiond: snapshot: policy name length %d out of [1,%d]", polLen, maxSnapshotPolicyLen)
		}
		s.p.policy = string(r.take(polLen))
		if r.err == nil {
			// Re-run the params check now that the policy is known: the name
			// must be canonical (flag ⇔ non-empty keeps encode∘decode exact)
			// and registered.
			if err := s.p.validate(); err != nil {
				return nil, fmt.Errorf("sessiond: snapshot: %w", err)
			}
		}
	}

	mn := int(r.u32())
	if r.err == nil && mn > maxSnapshotManifest {
		return nil, fmt.Errorf("sessiond: snapshot: manifest of %d over cap %d", mn, maxSnapshotManifest)
	}
	if r.err == nil {
		s.manifest = make([]meshKey, 0, min(mn, (len(r.b)-r.off)/7+1))
		for i := 0; i < mn && r.err == nil; i++ {
			objLen := int(r.u16())
			if r.err == nil && objLen > maxSnapshotObjectLen {
				return nil, fmt.Errorf("sessiond: snapshot: manifest object name of %d over %d", objLen, maxSnapshotObjectLen)
			}
			obj := string(r.take(objLen))
			step := int(int32(r.u32()))
			fast := r.u8() != 0
			if r.err == nil {
				s.manifest = append(s.manifest, meshKey{object: obj, ratioStep: step, fast: fast})
			}
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("sessiond: snapshot: %d trailing bytes", len(r.b)-r.off)
	}
	return s, nil
}
