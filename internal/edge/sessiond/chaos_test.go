package sessiond

import (
	"context"
	"net/http/httptest"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/sim"
)

// The chaos tests exercise the full durability stack the way a crash would:
// a Service over a real segmented FileStore, driven through the HTTP
// client/backend layers, then abandoned without any graceful flush (the
// store is never Closed — exactly what SIGKILL leaves behind) and rebuilt
// from whatever reached the log.

// chaosHarness is one running service epoch over a shared store directory.
type chaosHarness struct {
	store *snapstore.FileStore
	svc   *Service
	ts    *httptest.Server
	ec    *edge.Client
}

// startChaosService opens the store directory (running crash recovery) and
// a fresh Service + HTTP stack over it. SnapshotEvery=1 makes every observe
// a commit point.
func startChaosService(t *testing.T, fsys snapstore.FS, dir string) *chaosHarness {
	t.Helper()
	store, err := snapstore.Open(fsys, dir, snapstore.Options{})
	if err != nil {
		t.Fatalf("snapstore.Open: %v", err)
	}
	cfg := DefaultConfig()
	cfg.Shards = 2
	cfg.Store = store
	cfg.SnapshotEvery = 1
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	ec, err := edge.NewClient(ts.URL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	return &chaosHarness{store: store, svc: svc, ts: ts, ec: ec}
}

// kill abandons the epoch the way SIGKILL would: the HTTP front stops and
// the workers die, but nothing is flushed and the store is never Closed —
// only what already reached the log survives.
func (h *chaosHarness) kill() {
	h.ts.Close()
	h.svc.Close()
}

// backend builds a fresh client+backend for one session, as a restarted MAR
// device would.
func (h *chaosHarness) backend(t *testing.T, id string, seed uint64) *Backend {
	t.Helper()
	c, err := NewClient(h.ec, id, 3, 0.1, seed, 5)
	if err != nil {
		t.Fatalf("NewClient %s: %v", id, err)
	}
	return NewBackend(context.Background(), c)
}

// driveBackend performs rounds BONextPoint cycles, growing the client-side
// history exactly like core's runtime does.
func driveBackend(t *testing.T, b *Backend, points [][]float64, costs []float64, rounds int) ([][]float64, []float64) {
	t.Helper()
	for i := 0; i < rounds; i++ {
		pt, err := b.BONextPoint(3, 0.1, b.c.p.seed, points, costs)
		if err != nil {
			t.Fatalf("BONextPoint: %v", err)
		}
		points = append(points, pt)
		costs = append(costs, driveCost(pt))
	}
	return points, costs
}

// expectContinuation computes the bit-exact suggestion a correct recovery
// must produce: a mirror optimizer replays committed rounds as full
// suggest+observe cycles (asserting the recorded points really are the
// deterministic stream), ingests the uncommitted tail as bare observations
// (their suggest-side RNG draws died with the process), and asks for the
// next point.
func expectContinuation(t *testing.T, seed uint64, points [][]float64, costs []float64, committed int) []float64 {
	t.Helper()
	p := params{resources: 3, rmin: 0.1, seed: seed, init: 5}
	opt, err := bo.NewOptimizer(bo.Domain{N: p.resources, RMin: p.rmin}, boConfig(p), sim.NewRNG(p.seed))
	if err != nil {
		t.Fatalf("mirror optimizer: %v", err)
	}
	for i := 0; i < committed; i++ {
		pt, err := opt.Next()
		if err != nil {
			t.Fatalf("mirror Next %d: %v", i, err)
		}
		if !samePoint(pt, points[i]) {
			t.Fatalf("recorded point %d diverges from the deterministic stream", i)
		}
		if err := opt.Observe(points[i], costs[i]); err != nil {
			t.Fatalf("mirror Observe %d: %v", i, err)
		}
	}
	for i := committed; i < len(points); i++ {
		if err := opt.Observe(points[i], costs[i]); err != nil {
			t.Fatalf("mirror tail Observe %d: %v", i, err)
		}
	}
	want, err := opt.Next()
	if err != nil {
		t.Fatalf("mirror continuation Next: %v", err)
	}
	return want
}

// TestChaosKillRestartBitIdentical is the tentpole acceptance test: a
// SIGKILL'd service restarted over the same store directory serves every
// previously-committed session with a bit-identical next suggestion, using
// snapshot restore plus tail-only replay — and a session that never reached
// a commit point degrades to the full-replay fallback.
func TestChaosKillRestartBitIdentical(t *testing.T) {
	dir := t.TempDir()
	h1 := startChaosService(t, nil, dir)

	// Committed sessions: m calls commit m−1 observations each (every
	// observe saves; the final suggest's RNG advance dies with the process).
	type driven struct {
		id     string
		seed   uint64
		rounds int
		points [][]float64
		costs  []float64
	}
	sessions := []*driven{
		{id: "kill-a", seed: 11, rounds: 5},
		{id: "kill-b", seed: 22, rounds: 3},
		{id: "kill-c", seed: 33, rounds: 7},
	}
	for _, d := range sessions {
		d.points, d.costs = driveBackend(t, h1.backend(t, d.id, d.seed), nil, nil, d.rounds)
	}
	// One session killed before any commit point: a single suggest, no
	// observe ever reached the server's store.
	fresh := &driven{id: "kill-virgin", seed: 44, rounds: 1}
	fresh.points, fresh.costs = driveBackend(t, h1.backend(t, fresh.id, fresh.seed), nil, nil, fresh.rounds)

	h1.kill()

	h2 := startChaosService(t, nil, dir)
	defer func() { h2.kill(); _ = h2.store.Close() }()
	for _, d := range sessions {
		if _, ok, _ := h2.store.Get(d.id); !ok {
			t.Fatalf("session %s missing from the recovered store", d.id)
		}
	}
	if got := h2.svc.Durability().Restores; got != uint64(len(sessions)) {
		t.Fatalf("warm restart restored %d sessions, want %d", got, len(sessions))
	}

	for _, d := range sessions {
		want := expectContinuation(t, d.seed, d.points, d.costs, d.rounds-1)
		got, err := h2.backend(t, d.id, d.seed).BONextPoint(3, 0.1, d.seed, d.points, d.costs)
		if err != nil {
			t.Fatalf("post-restart BONextPoint for %s: %v", d.id, err)
		}
		if !samePoint(got, want) {
			t.Fatalf("session %s post-restart suggestion = %v, want bit-identical %v", d.id, got, want)
		}
	}

	// The uncommitted session has no snapshot: its re-open reports zero
	// observations and the backend transparently replays the full history.
	want := expectContinuation(t, fresh.seed, fresh.points, fresh.costs, 0)
	got, err := h2.backend(t, fresh.id, fresh.seed).BONextPoint(3, 0.1, fresh.seed, fresh.points, fresh.costs)
	if err != nil {
		t.Fatalf("full-replay BONextPoint: %v", err)
	}
	if !samePoint(got, want) {
		t.Fatalf("full-replay continuation = %v, want %v", got, want)
	}
}

// TestChaosTornWriteDegradesToReplay injects a torn write into the last
// snapshot save before the kill: the service keeps serving (the save error
// only re-marks the session dirty), recovery truncates the torn record, and
// the restarted service comes back at the previous commit point — the
// client's tail replay covers the gap and the continuation stays
// bit-identical.
func TestChaosTornWriteDegradesToReplay(t *testing.T) {
	dir := t.TempDir()
	const rounds = 4
	// Writes are one per snapshot save; save i covers the state up to
	// observation i+1. Tearing the last write (index rounds−2) loses the
	// final commit.
	ffs := faults.NewFaultFS(nil, faults.FSPlan{
		TornWrites: map[int]int{rounds - 2: 8},
	})
	h1 := startChaosService(t, ffs, dir)

	const id, seed = "torn", uint64(77)
	points, costs := driveBackend(t, h1.backend(t, id, seed), nil, nil, rounds)
	if got := h1.svc.Durability(); got.SaveErrors != 1 || got.Saves != rounds-2 {
		t.Fatalf("pre-kill durability = %+v, want %d saves and 1 torn-write error", got, rounds-2)
	}
	st := ffs.Stats()
	if st.TornWrites != 1 {
		t.Fatalf("fault plan fired %d torn writes, want 1", st.TornWrites)
	}
	h1.kill()

	// Recovery on the real filesystem: the torn record is detected and the
	// segment holding it is counted corrupt. The store rotated away from
	// that segment when the write failed, so the tear sits in a sealed
	// segment — not the active tail, which recovery leaves untruncated.
	h2 := startChaosService(t, nil, dir)
	defer func() { h2.kill(); _ = h2.store.Close() }()
	rec := h2.store.Recovery()
	if rec.CorruptSegments != 1 {
		t.Fatalf("recovery = %+v, want exactly one corrupt segment", rec)
	}
	if rec.Records != rounds-2 {
		t.Fatalf("recovery replayed %d records, want the %d committed before the tear", rec.Records, rounds-2)
	}

	// The restored session is two observations behind the client; the
	// backend ships the missing tail and the stream continues bit-identically.
	want := expectContinuation(t, seed, points, costs, rounds-2)
	got, err := h2.backend(t, id, seed).BONextPoint(3, 0.1, seed, points, costs)
	if err != nil {
		t.Fatalf("post-recovery BONextPoint: %v", err)
	}
	if !samePoint(got, want) {
		t.Fatalf("degraded continuation = %v, want bit-identical %v", got, want)
	}
}
