package sessiond

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/edge"
)

// Request-handling bounds, mirroring package edge's hardening.
const (
	maxRequestBytes = 4 << 20
	handlerTimeout  = 30 * time.Second
)

// OpenRequest creates (or idempotently re-finds) a session. Init is the BO
// init-sample budget; zero means the paper's 5. Policy names the optimizer
// entrant (see internal/bo/policies); empty (or "gp-ei") means the paper's
// GP-EI default.
type OpenRequest struct {
	ID        string  `json:"id"`
	Resources int     `json:"resources"`
	RMin      float64 `json:"rmin"`
	Seed      uint64  `json:"seed"`
	Init      int     `json:"init,omitempty"`
	Policy    string  `json:"policy,omitempty"`
}

// OpenResponse reports the open outcome. Existing means the session was
// already live with identical parameters and was kept as-is; Restored means
// it was re-hydrated from a durable snapshot; Evicted names the LRU victim
// this open displaced ("" when the shard had room). Observations is the
// session's current database size — after a restore, the client replays
// only the history past this point instead of all of it.
// Ephemeral marks a session whose policy cannot snapshot (it carries state
// the snapshot format cannot express): eviction drops it and re-admission
// rebuilds via the client's full replay.
type OpenResponse struct {
	ID           string `json:"id"`
	Existing     bool   `json:"existing,omitempty"`
	Restored     bool   `json:"restored,omitempty"`
	Evicted      string `json:"evicted,omitempty"`
	Observations int    `json:"observations"`
	Ephemeral    bool   `json:"ephemeral,omitempty"`
}

// SuggestRequest asks for the session's next configuration.
type SuggestRequest struct {
	ID string `json:"id"`
}

// SuggestResponse carries the suggested point and the database size it was
// drawn against.
type SuggestResponse struct {
	Point        []float64 `json:"point"`
	Observations int       `json:"observations"`
}

// ObserveRequest records one measured (point, cost) pair.
type ObserveRequest struct {
	ID    string    `json:"id"`
	Point []float64 `json:"point"`
	Cost  float64   `json:"cost"`
}

// ObserveResponse echoes the database size after the append.
type ObserveResponse struct {
	Observations int `json:"observations"`
}

// CloseRequest tears a session down.
type CloseRequest struct {
	ID string `json:"id"`
}

// CloseResponse reports whether the session existed.
type CloseResponse struct {
	Closed bool `json:"closed"`
}

// DecimateRequest fetches a decimated mesh through the session's private
// mesh cache.
type DecimateRequest struct {
	ID     string  `json:"id"`
	Object string  `json:"object"`
	Ratio  float64 `json:"ratio"`
	Fast   bool    `json:"fast,omitempty"`
}

// DecimateResponse is the edge wire mesh plus a cache-hit marker.
type DecimateResponse struct {
	Object    string           `json:"object"`
	Ratio     float64          `json:"ratio"`
	Triangles int              `json:"triangles"`
	Cached    bool             `json:"cached"`
	Mesh      edge.MeshPayload `json:"mesh"`
}

// ShardStats is one stripe's live state.
type ShardStats struct {
	Sessions   int `json:"sessions"`
	QueueDepth int `json:"queue_depth"`
}

// StreamStats reports the binary stream surface's live and lifetime
// traffic: currently open streams, frames decoded and written, and frames
// the decoder refused (each of which terminated its stream).
type StreamStats struct {
	Open         int64  `json:"open"`
	FramesIn     uint64 `json:"frames_in"`
	FramesOut    uint64 `json:"frames_out"`
	DecodeErrors uint64 `json:"decode_errors"`
}

// Streams reads the stream counters. Correct with or without a registry —
// the counters are plain atomics, like the durability ones.
func (s *Service) Streams() StreamStats {
	return StreamStats{
		Open:         s.strOpen.Load(),
		FramesIn:     s.strFramesIn.Load(),
		FramesOut:    s.strFramesOut.Load(),
		DecodeErrors: s.strDecodeErrs.Load(),
	}
}

// StatsResponse is the /session/statz payload. Durability is present only
// when a session store is configured.
type StatsResponse struct {
	Sessions   int              `json:"sessions"`
	Shards     []ShardStats     `json:"shards"`
	Stream     StreamStats      `json:"stream"`
	Durability *DurabilityStats `json:"durability,omitempty"`
}

// Register mounts the session routes on mux. Every POST handler runs behind
// the same body cap and per-handler timeout as the core edge routes.
func (s *Service) Register(mux *http.ServeMux) {
	mux.Handle("POST /session/open", guard(s.handleOpen))
	mux.Handle("POST /session/suggest", guard(s.handleSuggest))
	mux.Handle("POST /session/observe", guard(s.handleObserve))
	mux.Handle("POST /session/close", guard(s.handleClose))
	mux.Handle("POST /session/decimate", guard(s.handleDecimate))
	// The stream route is deliberately unguarded: TimeoutHandler neither
	// supports Flush nor tolerates a response that outlives the timeout, and
	// a body cap would sever a healthy long-lived stream. The wire codec's
	// per-frame bounds and the stream's queue backpressure bound it instead.
	mux.HandleFunc("POST /session/stream", s.handleStream)
	mux.HandleFunc("GET /session/statz", s.handleStats)
}

// Handler returns a standalone mux holding only the session routes (tests,
// embedding under a stripped prefix).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Register(mux)
	return mux
}

// guard wraps a handler with the body cap and handler timeout.
func guard(h http.HandlerFunc) http.Handler {
	limited := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		h(w, r)
	})
	return http.TimeoutHandler(limited, handlerTimeout, "sessiond: handler timeout")
}

// decodeRequest decodes a guarded JSON body: MaxBytesReader trips map to
// 413, everything else to 400.
func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body over %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

func validID(id string) error {
	if id == "" {
		return fmt.Errorf("sessiond: empty session id")
	}
	if len(id) > maxIDLen {
		return fmt.Errorf("sessiond: session id over %d bytes", maxIDLen)
	}
	return nil
}

func (s *Service) handleOpen(w http.ResponseWriter, r *http.Request) {
	var req OpenRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if err := validID(req.ID); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p := params{
		resources: req.Resources,
		rmin:      req.RMin,
		seed:      req.Seed,
		init:      req.Init,
		policy:    policies.Canonical(req.Policy),
	}
	if p.init == 0 {
		p.init = 5
	}
	if err := p.validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	sess, res, err := s.open(req.ID, p)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if res.existing {
		s.metReopens.Inc()
	} else {
		s.metOpens.Inc()
	}
	if res.evicted != "" {
		s.metEvictions.Inc()
	}
	s.metSessions.Set(float64(s.sessionCount()))
	writeJSON(w, OpenResponse{
		ID:           req.ID,
		Existing:     res.existing,
		Restored:     res.restored,
		Evicted:      res.evicted,
		Observations: sess.observations(),
		Ephemeral:    !sess.durable,
	})
}

func (s *Service) handleSuggest(w http.ResponseWriter, r *http.Request) {
	var req SuggestRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	sess, ok := s.peek(req.ID)
	if !ok {
		s.metUnknown.Inc()
		http.Error(w, fmt.Sprintf("sessiond: unknown session %q", req.ID), http.StatusNotFound)
		return
	}
	job := &suggestJob{sess: sess, reply: make(chan suggestResult, 1)}
	if !s.enqueueSuggest(sess, job) {
		s.metRejects.Inc()
		w.Header().Set("Retry-After", strconv.Itoa(s.cfg.RetryAfterSec))
		http.Error(w, "sessiond: suggest queue full, retry later", http.StatusServiceUnavailable)
		return
	}
	select {
	case res := <-job.reply:
		if res.err != nil {
			http.Error(w, res.err.Error(), http.StatusInternalServerError)
			return
		}
		s.metSuggests.Inc()
		writeJSON(w, SuggestResponse{Point: res.point, Observations: res.observations})
	case <-r.Context().Done():
		// The worker will still serve the job; the abandoned reply lands in
		// the buffered channel and is garbage collected with it.
		http.Error(w, "sessiond: client went away", http.StatusServiceUnavailable)
	}
}

func (s *Service) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	sess, ok := s.lookup(req.ID)
	if !ok {
		s.metUnknown.Inc()
		http.Error(w, fmt.Sprintf("sessiond: unknown session %q", req.ID), http.StatusNotFound)
		return
	}
	if math.IsNaN(req.Cost) || math.IsInf(req.Cost, 0) {
		http.Error(w, fmt.Sprintf("sessiond: non-finite cost %v", req.Cost), http.StatusUnprocessableEntity)
		return
	}
	n, dirty, err := sess.observe(req.Point, req.Cost)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	s.metObserves.Inc()
	if s.cfg.SnapshotEvery > 0 && dirty >= s.cfg.SnapshotEvery {
		s.saveSession(sess)
	}
	writeJSON(w, ObserveResponse{Observations: n})
}

func (s *Service) handleClose(w http.ResponseWriter, r *http.Request) {
	var req CloseRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	closed := s.remove(req.ID)
	if closed {
		s.metCloses.Inc()
		s.metSessions.Set(float64(s.sessionCount()))
	}
	writeJSON(w, CloseResponse{Closed: closed})
}

func (s *Service) handleDecimate(w http.ResponseWriter, r *http.Request) {
	var req DecimateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if s.dec == nil {
		http.Error(w, "sessiond: no decimator attached", http.StatusNotImplemented)
		return
	}
	if math.IsNaN(req.Ratio) || req.Ratio <= 0 || req.Ratio > 1 {
		http.Error(w, fmt.Sprintf("sessiond: ratio %v out of (0,1]", req.Ratio), http.StatusBadRequest)
		return
	}
	sess, ok := s.lookup(req.ID)
	if !ok {
		s.metUnknown.Inc()
		http.Error(w, fmt.Sprintf("sessiond: unknown session %q", req.ID), http.StatusNotFound)
		return
	}
	m, cached, err := sess.decimate(s.dec, req.Object, req.Ratio, req.Fast)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if cached {
		s.metMeshHits.Inc()
	} else {
		s.metMeshMisses.Inc()
	}
	s.metDecimates.Inc()
	writeJSON(w, DecimateResponse{
		Object:    req.Object,
		Ratio:     req.Ratio,
		Triangles: m.TriangleCount(),
		Cached:    cached,
		Mesh:      edge.FromMesh(m),
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{Shards: make([]ShardStats, len(s.shards))}
	for i, sh := range s.shards {
		sh.mu.Lock()
		n := len(sh.sessions)
		sh.mu.Unlock()
		resp.Shards[i] = ShardStats{Sessions: n, QueueDepth: len(sh.queue)}
		resp.Sessions += n
	}
	resp.Stream = s.Streams()
	if s.cfg.Store != nil {
		d := s.Durability()
		resp.Durability = &d
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; error reporting is the middleware's job.
		return
	}
}
