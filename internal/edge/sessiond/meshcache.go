package sessiond

import (
	"container/list"
	"math"

	"github.com/mar-hbo/hbo/internal/mesh"
)

// meshKey identifies one decimated variant, quantized to 2% ratio steps the
// same way the edge client's cache does so the two tiers agree on identity.
type meshKey struct {
	object    string
	ratioStep int
	fast      bool
}

func meshKeyFor(object string, ratio float64, fast bool) meshKey {
	return meshKey{object: object, ratioStep: int(math.Round(ratio * 50)), fast: fast}
}

// meshCache is a session's private decimation LRU — the "mesh-cache handle"
// each session carries. Evicting the session releases the whole cache at
// once. Not safe for concurrent use on its own; the owning session's mutex
// guards it.
type meshCache struct {
	cap     int
	entries map[meshKey]*list.Element
	lru     *list.List
	hits    int
	misses  int
}

type meshEntry struct {
	key meshKey
	m   *mesh.Mesh
}

func newMeshCache(capacity int) *meshCache {
	return &meshCache{cap: capacity, entries: make(map[meshKey]*list.Element), lru: list.New()}
}

// get returns the cached mesh for key, or nil. A manifest placeholder
// (entry present, mesh nil) counts as a miss: the variant's identity
// survived a snapshot but its geometry did not, so it must be re-decimated.
func (c *meshCache) get(key meshKey) *mesh.Mesh {
	if el, ok := c.entries[key]; ok {
		if m := el.Value.(*meshEntry).m; m != nil {
			c.hits++
			c.lru.MoveToFront(el)
			return m
		}
	}
	c.misses++
	return nil
}

// put inserts a mesh, evicting the LRU entry beyond capacity.
func (c *meshCache) put(key meshKey, m *mesh.Mesh) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*meshEntry).m = m
		c.lru.MoveToFront(el)
		return
	}
	c.entries[key] = c.lru.PushFront(&meshEntry{key: key, m: m})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*meshEntry).key)
	}
}

// manifest lists the cached variant identities oldest-first — the order
// restoreManifest replays them to reproduce the LRU ordering exactly.
func (c *meshCache) manifest() []meshKey {
	keys := make([]meshKey, 0, c.lru.Len())
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		keys = append(keys, el.Value.(*meshEntry).key)
	}
	return keys
}

// restoreManifest installs placeholder entries (identity without geometry)
// for a snapshot's manifest, preserving LRU order. Meshes are deliberately
// not persisted — they are pure functions of (object, ratio, fast) and far
// larger than the rest of the snapshot — so a restored session re-decimates
// on first touch and the placeholder keeps its LRU slot honest meanwhile.
func (c *meshCache) restoreManifest(keys []meshKey) {
	for _, k := range keys {
		if _, ok := c.entries[k]; ok {
			continue
		}
		c.entries[k] = c.lru.PushFront(&meshEntry{key: k})
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.entries, oldest.Value.(*meshEntry).key)
		}
	}
}

// decimate serves a decimated mesh through the session's cache, falling
// back to the shared Decimator on a miss.
func (sess *session) decimate(dec Decimator, object string, ratio float64, fast bool) (*mesh.Mesh, bool, error) {
	key := meshKeyFor(object, ratio, fast)
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if m := sess.meshes.get(key); m != nil {
		return m, true, nil
	}
	m, err := dec.Decimate(object, ratio, fast)
	if err != nil {
		return nil, false, err
	}
	sess.meshes.put(key, m)
	return m, false, nil
}
