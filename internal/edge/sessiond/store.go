package sessiond

import (
	"sync"
)

// shard is one lock stripe of the session store: an independent mutex,
// session map, logical touch clock, and suggest queue.
type shard struct {
	mu       sync.Mutex
	sessions map[string]*session
	// tick is the logical LRU clock: monotonically increasing per touching
	// operation, with one shared tick per batch drain pass (so batch
	// members tie and the ID rule below decides).
	tick  uint64
	queue chan *suggestJob
}

// FNV-1a parameters, identical to hash/fnv's 32-bit variant. Inlined so the
// hot request paths hash without the hash.Hash allocation — shard placement
// must stay bit-identical to the original fnv.New32a mapping, because
// placement decides eviction order and the determinism suite pins both.
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

//hbo:noalloc
func fnv32aString(id string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(id); i++ {
		h ^= uint32(id[i])
		h *= fnvPrime32
	}
	return h
}

//hbo:noalloc
func fnv32aBytes(id []byte) uint32 {
	h := uint32(fnvOffset32)
	for _, c := range id {
		h ^= uint32(c)
		h *= fnvPrime32
	}
	return h
}

// shardFor maps a session ID onto its stripe (FNV-1a).
func (s *Service) shardFor(id string) *shard {
	return s.shards[int(fnv32aString(id))%len(s.shards)]
}

// shardForBytes is shardFor for an ID still aliasing a decode buffer.
func (s *Service) shardForBytes(id []byte) *shard {
	return s.shards[int(fnv32aBytes(id))%len(s.shards)]
}

// openResult reports what the open-path state machine did.
type openResult struct {
	existing bool   // session was live with identical parameters, kept as-is
	restored bool   // session was re-hydrated from a snapshot
	evicted  string // LRU victim this open displaced ("" when none)
}

// open creates (or re-finds) a session. An existing session with identical
// parameters is returned as-is — an idempotent open, so a client retrying a
// lost open response cannot destroy its own GP history; changed parameters
// rebuild the session from scratch. A session absent from memory but
// present in the store is restored from its snapshot in O(m) — the replay
// path is needed only when the snapshot is missing or corrupt. A full shard
// evicts its LRU victim first; with a store configured the victim's state
// is snapshotted instead of dropped, so eviction demotes a session to disk
// rather than destroying it.
func (s *Service) open(id string, p params) (sess *session, res openResult, err error) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cur, ok := sh.sessions[id]; ok {
		sh.tick++
		cur.lastTouch = sh.tick
		if cur.p == p {
			return cur, openResult{existing: true}, nil
		}
		// Parameter change: replace in place (does not count against
		// capacity, no eviction needed). Any stored snapshot describes the
		// old parameters and will never be wanted again.
		if s.cfg.Store != nil {
			_ = s.cfg.Store.Delete(id) //lint:allow locklint store is a lock leaf (DESIGN.md §16); deleting outside sh.mu would race a concurrent reopen restoring the stale snapshot
		}
		fresh, err := s.newSession(id, p)
		if err != nil {
			return nil, openResult{}, err
		}
		fresh.lastTouch = sh.tick
		sh.sessions[id] = fresh
		return fresh, openResult{}, nil
	}
	if restored, ok := s.loadSession(id); ok { //lint:allow locklint restore must happen under sh.mu or two racing opens could each build the session and one GP history would be lost
		if restored.p == p {
			sess, res.restored = restored, true
		} else {
			// Stale snapshot for different parameters: discard it.
			_ = s.cfg.Store.Delete(id) //lint:allow locklint store is a lock leaf (DESIGN.md §16); same atomicity argument as the restore above
		}
	}
	if sess == nil {
		sess, err = s.newSession(id, p)
		if err != nil {
			return nil, openResult{}, err
		}
	}
	if len(sh.sessions) >= s.cfg.SessionsPerShard {
		if victim := sh.evictLRULocked(); victim != nil {
			res.evicted = victim.id
			// Demote, don't destroy: the victim's next open restores it.
			s.saveSession(victim) //lint:allow locklint saving after releasing sh.mu would let a concurrent open of the victim id create a fresh session that this stale save then clobbers
		}
	}
	sh.tick++
	sess.lastTouch = sh.tick
	sh.sessions[id] = sess
	return sess, res, nil
}

// evictLRULocked removes and returns the shard's least-recently-used
// session: the smallest lastTouch tick, ties broken by the
// lexicographically smallest ID. Ties are real — every job served by one
// batch drain pass shares a tick — and the ID rule keeps eviction a
// deterministic function of the request sequence. Callers hold sh.mu.
func (sh *shard) evictLRULocked() *session {
	var victim *session
	for _, cand := range sh.sessions {
		if victim == nil {
			victim = cand
			continue
		}
		if cand.lastTouch < victim.lastTouch ||
			(cand.lastTouch == victim.lastTouch && cand.id < victim.id) {
			victim = cand
		}
	}
	if victim == nil {
		return nil
	}
	delete(sh.sessions, victim.id)
	return victim
}

// lookup finds a session and touches it (one fresh tick).
func (s *Service) lookup(id string) (*session, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[id]
	if !ok {
		return nil, false
	}
	sh.tick++
	sess.lastTouch = sh.tick
	return sess, true
}

// peek finds a session without touching it — enqueueing a suggest does not
// count as use until the batch drain actually serves it.
func (s *Service) peek(id string) (*session, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[id]
	return sess, ok
}

// lookupBytes is lookup for an ID aliasing a decode buffer: the
// map index through string(id) compiles to a no-copy lookup, so the stream
// hot path never materializes the ID as a string.
//
//hbo:noalloc
func (s *Service) lookupBytes(id []byte) (*session, bool) {
	sh := s.shardForBytes(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[string(id)]
	if !ok {
		return nil, false
	}
	sh.tick++
	sess.lastTouch = sh.tick
	return sess, true
}

// peekBytes is peek for an ID aliasing a decode buffer.
//
//hbo:noalloc
func (s *Service) peekBytes(id []byte) (*session, bool) {
	sh := s.shardForBytes(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[string(id)]
	return sess, ok
}

// remove deletes a session; reports whether it existed in memory or in the
// store. An explicit close is the one path that destroys durable state —
// the client said it is done, so the snapshot goes too.
func (s *Service) remove(id string) bool {
	sh := s.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.sessions[id]
	delete(sh.sessions, id)
	if s.cfg.Store != nil {
		if _, stored, _ := s.cfg.Store.Get(id); stored { //lint:allow locklint close must destroy memory and snapshot atomically under sh.mu or a racing open could resurrect the closed session
			ok = true
			_ = s.cfg.Store.Delete(id) //lint:allow locklint part of the same atomic close; store is a lock leaf (DESIGN.md §16)
		}
	}
	return ok
}

// sessionCount sums live sessions across shards.
func (s *Service) sessionCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}
