package sessiond_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
)

// The suggest benchmarks compare the two transports over the same server
// and the same server-side work. Sessions are held in the BO init phase
// (suggests without observes never leave it), so each round trip costs the
// server one shard dispatch and one domain sample — the measured difference
// is the transport: JSON POST with per-call encoding and header traffic
// versus length-prefixed binary frames on one long-lived stream.

func benchService(b *testing.B) *httptest.Server {
	b.Helper()
	svc, err := sessiond.New(sessiond.Config{
		Shards:           4,
		SessionsPerShard: 1024,
		QueueBound:       4096,
		RetryAfterSec:    1,
		MaxBatch:         32,
		MeshCacheCap:     2,
	}, nil)
	if err != nil {
		b.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	b.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return ts
}

func benchEdgeClient(b *testing.B, baseURL string) *edge.Client {
	b.Helper()
	ec, err := edge.NewClient(baseURL, 4)
	if err != nil {
		b.Fatalf("edge client: %v", err)
	}
	return ec
}

func benchOpen(b *testing.B, ec *edge.Client, stream *sessiond.StreamClient, id string) *sessiond.Client {
	b.Helper()
	sc, err := sessiond.NewClient(ec, id, testResources, testRMin, 1, testInit)
	if err != nil {
		b.Fatalf("session client: %v", err)
	}
	if stream != nil {
		sc.SetStream(stream)
	}
	if _, err := sc.Open(context.Background()); err != nil {
		b.Fatalf("open %s: %v", id, err)
	}
	return sc
}

func benchSuggestLoop(b *testing.B, sc *sessiond.Client) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := sc.Suggest(ctx); err != nil {
			b.Fatalf("suggest %d: %v", i, err)
		}
	}
}

func BenchmarkSuggestJSON(b *testing.B) {
	ts := benchService(b)
	ec := benchEdgeClient(b, ts.URL)
	sc := benchOpen(b, ec, nil, "bench-json")
	b.ReportAllocs()
	b.ResetTimer()
	benchSuggestLoop(b, sc)
}

func BenchmarkSuggestStream(b *testing.B) {
	ts := benchService(b)
	ec := benchEdgeClient(b, ts.URL)
	stream, err := sessiond.NewStreamClient(ec)
	if err != nil {
		b.Fatalf("stream client: %v", err)
	}
	b.Cleanup(func() { _ = stream.Close() })
	sc := benchOpen(b, ec, stream, "bench-stream")
	b.ReportAllocs()
	b.ResetTimer()
	benchSuggestLoop(b, sc)
}

// The parallel variants model the loadgen shape: many concurrent sessions
// per core sharing one edge client — and, for the stream flavor, one
// multiplexed connection, which lets the server's stream writer coalesce
// several responses per flush.
const benchSessionsPerCore = 8

func BenchmarkSuggestJSONParallel(b *testing.B) {
	ts := benchService(b)
	ec := benchEdgeClient(b, ts.URL)
	var n atomic.Int64
	b.SetParallelism(benchSessionsPerCore)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := benchOpen(b, ec, nil, fmt.Sprintf("bench-json-p%02d", n.Add(1)))
		ctx := context.Background()
		for pb.Next() {
			if _, err := sc.Suggest(ctx); err != nil {
				b.Errorf("suggest: %v", err)
				return
			}
		}
	})
}

func BenchmarkSuggestStreamParallel(b *testing.B) {
	ts := benchService(b)
	ec := benchEdgeClient(b, ts.URL)
	stream, err := sessiond.NewStreamClient(ec)
	if err != nil {
		b.Fatalf("stream client: %v", err)
	}
	b.Cleanup(func() { _ = stream.Close() })
	var n atomic.Int64
	b.SetParallelism(benchSessionsPerCore)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sc := benchOpen(b, ec, stream, fmt.Sprintf("bench-stream-p%02d", n.Add(1)))
		ctx := context.Background()
		for pb.Next() {
			if _, err := sc.Suggest(ctx); err != nil {
				b.Errorf("suggest: %v", err)
				return
			}
		}
	})
}
