// Package contend models the server side of the multi-user shared-edge
// scenario: one edge GPU serving every connected user's offloaded
// inferences under processor sharing, plus a bounded decimation worker
// pool, and a contention-aware cross-session scheduler that looks ahead
// over predicted per-session activity to admit, defer, or locally-degrade
// users.
//
// It sits beside sessiond's per-shard admission controller: where the
// admission controller bounds a live shard's suggest queue by rejecting
// overflow with 503s, contend models what the *compute* behind those
// queues does once requests are admitted — per-request latency that grows
// deterministically with concurrent load — and decides which sessions
// should even reach the queue. The machinery mirrors internal/soc's
// processor-sharing simulator (jobs with remaining demand, rates
// recomputed on every arrival and completion, deterministic tie-breaks),
// applied server-side to the shared GPU instead of a phone SoC.
//
// Determinism contract: the package reads no wall clock and owns no RNG.
// Completion times are a pure function of the submission sequence
// (arrival time, demand, submission order); simultaneous completions
// resolve by submission sequence, and equal-tick arrivals are served in
// submission order, so two identical runs produce bit-identical latency
// streams. The package is in detlint's determinism-critical set.
package contend

import (
	"fmt"
	"math"

	"github.com/mar-hbo/hbo/internal/obs"
)

// JobKind selects which shared resource a job consumes.
type JobKind int

const (
	// Inference jobs share the edge GPU under processor sharing.
	Inference JobKind = iota + 1
	// Decimation jobs run on the bounded worker pool (FIFO beyond the
	// worker count).
	Decimation
)

// Job is one request in flight on the shared edge. Fields are read-only to
// callers once submitted.
type Job struct {
	// ID is the submission sequence number — the deterministic tie-break
	// for equal-time events.
	ID int
	// User tags the submitting session (an index into the caller's fleet).
	User int
	// Kind selects the resource.
	Kind JobKind
	// Arrival is the virtual submission time (ms).
	Arrival float64
	// Demand is the service demand in ms at rate 1.
	Demand float64
	// Finish is the completion time; valid once Done.
	Finish float64
	// Done reports completion.
	Done bool

	remaining float64
	// serving marks a decimation job that holds a pool worker.
	serving bool
}

// Latency returns the job's end-to-end sojourn time; valid once Done.
func (j *Job) Latency() float64 { return j.Finish - j.Arrival }

// Config shapes the shared edge.
type Config struct {
	// GPUCapacity is how many milliseconds of inference demand the shared
	// GPU retires per millisecond (i.e. how many full-speed jobs it can
	// carry). Under processor sharing each in-flight job runs at
	// min(1, GPUCapacity/n).
	GPUCapacity float64
	// DecimWorkers is the decimation pool size; beyond it jobs queue FIFO.
	DecimWorkers int
	// DecimRate is each worker's service rate (demand ms retired per ms).
	DecimRate float64
}

// DefaultConfig returns an edge-GPU-shaped default: a server card worth
// roughly four phone-GPU inferences at full speed, with two decimation
// workers at double speed.
func DefaultConfig() Config {
	return Config{GPUCapacity: 4, DecimWorkers: 2, DecimRate: 2}
}

func (c Config) validate() error {
	if c.GPUCapacity <= 0 || math.IsNaN(c.GPUCapacity) || math.IsInf(c.GPUCapacity, 0) {
		return fmt.Errorf("contend: GPUCapacity %v must be finite and > 0", c.GPUCapacity)
	}
	if c.DecimWorkers < 1 {
		return fmt.Errorf("contend: DecimWorkers %d must be >= 1", c.DecimWorkers)
	}
	if c.DecimRate <= 0 || math.IsNaN(c.DecimRate) || math.IsInf(c.DecimRate, 0) {
		return fmt.Errorf("contend: DecimRate %v must be finite and > 0", c.DecimRate)
	}
	return nil
}

// SharedEdge is the deterministic shared-resource model. Not safe for
// concurrent use; one experiment cell owns one instance and drives it on
// virtual time.
type SharedEdge struct {
	cfg Config
	now float64
	seq int

	// gpu holds in-flight inference jobs in submission order; pool holds
	// decimation jobs (first DecimWorkers in service, rest queued FIFO).
	gpu  []*Job
	pool []*Job

	// served accumulates retired demand-milliseconds per resource, the
	// work-conservation ledger the property battery audits.
	servedGPU   float64
	servedDecim float64

	met edgeMetrics
}

// edgeMetrics is the instrument set: submission/completion counters per
// resource and queue-depth histograms sampled at every arrival. All
// instruments are nil (no-op) until SetObserver attaches a registry, and
// never feed back into completion times.
type edgeMetrics struct {
	inferSubmits *obs.Counter
	decimSubmits *obs.Counter
	completions  *obs.Counter
	gpuDepth     *obs.Histogram
	decimDepth   *obs.Histogram
	latency      *obs.Histogram
}

// queueDepthBuckets covers shared-edge queue depths from empty to a full
// 64-user fleet all in flight at once.
var queueDepthBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64}

// New builds a shared edge with the given configuration.
func New(cfg Config) (*SharedEdge, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &SharedEdge{cfg: cfg}, nil
}

// SetObserver attaches a metrics registry; nil detaches (zero-overhead).
func (e *SharedEdge) SetObserver(reg *obs.Registry) {
	e.met.inferSubmits = reg.Counter("contend.inference_submits")
	e.met.decimSubmits = reg.Counter("contend.decimation_submits")
	e.met.completions = reg.Counter("contend.completions")
	if reg != nil {
		e.met.gpuDepth = reg.Histogram("contend.gpu_queue_depth", queueDepthBuckets)
		e.met.decimDepth = reg.Histogram("contend.decim_queue_depth", queueDepthBuckets)
		e.met.latency = reg.Histogram("contend.latency_ms", obs.LatencyBucketsMS)
	} else {
		e.met.gpuDepth = nil
		e.met.decimDepth = nil
		e.met.latency = nil
	}
}

// Now returns the model's current virtual time.
func (e *SharedEdge) Now() float64 { return e.now }

// InFlight returns the number of incomplete jobs on both resources.
func (e *SharedEdge) InFlight() int { return len(e.gpu) + len(e.pool) }

// ServedGPU returns the total inference demand retired so far (ms at rate 1).
func (e *SharedEdge) ServedGPU() float64 { return e.servedGPU }

// ServedDecim returns the total decimation demand retired so far.
func (e *SharedEdge) ServedDecim() float64 { return e.servedDecim }

// Submit enters a job at virtual time t (>= Now; equal times are legal and
// serve in submission order). Zero-demand jobs complete instantly at t.
func (e *SharedEdge) Submit(kind JobKind, user int, t, demand float64) (*Job, error) {
	if t < e.now {
		return nil, fmt.Errorf("contend: submit at t=%v before now=%v", t, e.now)
	}
	if demand < 0 || math.IsNaN(demand) || math.IsInf(demand, 0) {
		return nil, fmt.Errorf("contend: demand %v must be finite and >= 0", demand)
	}
	e.AdvanceTo(t)
	j := &Job{ID: e.seq, User: user, Kind: kind, Arrival: t, Demand: demand, remaining: demand}
	e.seq++
	if demand == 0 {
		j.Done = true
		j.Finish = t
		e.met.completions.Inc()
		e.observeLatency(j)
		return j, nil
	}
	switch kind {
	case Inference:
		e.gpu = append(e.gpu, j)
		e.met.inferSubmits.Inc()
		e.met.gpuDepth.Observe(float64(len(e.gpu)))
	case Decimation:
		j.serving = len(e.pool) < e.cfg.DecimWorkers
		e.pool = append(e.pool, j)
		e.met.decimSubmits.Inc()
		e.met.decimDepth.Observe(float64(len(e.pool)))
	default:
		return nil, fmt.Errorf("contend: unknown job kind %d", kind)
	}
	return j, nil
}

// AdvanceTo advances virtual time to t, retiring work and completing jobs
// along the way. Completions that land at exactly the same instant resolve
// in submission order.
func (e *SharedEdge) AdvanceTo(t float64) {
	if math.IsNaN(t) || t <= e.now {
		return
	}
	for e.now < t {
		next, ripe := e.nextCompletion()
		if ripe == nil || next > t {
			e.accrue(t - e.now)
			e.now = t
			return
		}
		if next > e.now {
			e.accrue(next - e.now)
			e.now = next
		}
		// Force the event job to zero: accrual over exactly
		// remaining/rate can leave float residue, and progress must not
		// depend on epsilon luck. Identically-shaped ties hit zero by the
		// same arithmetic and complete in the same pass, in submission
		// order.
		ripe.remaining = 0
		e.completeRipe()
	}
}

// Drain advances until every in-flight job has completed.
func (e *SharedEdge) Drain() {
	for e.InFlight() > 0 {
		next, ripe := e.nextCompletion()
		if ripe == nil {
			return
		}
		if next > e.now {
			e.accrue(next - e.now)
			e.now = next
		}
		ripe.remaining = 0
		e.completeRipe()
	}
}

// gpuRate returns the per-job service rate on the GPU right now: processor
// sharing with each job capped at full speed, exactly soc's rule.
func (e *SharedEdge) gpuRate() float64 {
	n := len(e.gpu)
	if n == 0 {
		return 0
	}
	rate := e.cfg.GPUCapacity / float64(n)
	if rate > 1 {
		rate = 1
	}
	return rate
}

// nextCompletion returns the earliest absolute completion time among all
// in-flight jobs under current rates, and the job realizing it. The scan
// order is fixed (GPU in submission order, then the pool in submission
// order) and only strictly earlier times displace the incumbent, so the
// choice is deterministic; same-instant peers complete in the same
// completeRipe pass regardless of which realized the event.
func (e *SharedEdge) nextCompletion() (float64, *Job) {
	best := math.Inf(1)
	var ripe *Job
	if rate := e.gpuRate(); rate > 0 {
		for _, j := range e.gpu {
			if c := e.now + j.remaining/rate; c < best {
				best = c
				ripe = j
			}
		}
	}
	for i, j := range e.pool {
		if i >= e.cfg.DecimWorkers {
			break
		}
		if c := e.now + j.remaining/e.cfg.DecimRate; c < best {
			best = c
			ripe = j
		}
	}
	return best, ripe
}

// accrue retires dt milliseconds of service from every in-flight job at
// current rates. Rates are constant over the interval by construction: the
// caller never crosses a completion inside dt.
func (e *SharedEdge) accrue(dt float64) {
	if rate := e.gpuRate(); rate > 0 {
		for _, j := range e.gpu {
			step := rate * dt
			if step > j.remaining {
				step = j.remaining
			}
			j.remaining -= step
			e.servedGPU += step
		}
	}
	for i, j := range e.pool {
		if i >= e.cfg.DecimWorkers {
			break
		}
		step := e.cfg.DecimRate * dt
		if step > j.remaining {
			step = j.remaining
		}
		j.remaining -= step
		e.servedDecim += step
	}
}

// completeRipe finishes every job whose remaining demand has reached zero
// (within a relative epsilon of its total demand, absorbing float drift
// from rate recomputation), in submission order.
func (e *SharedEdge) completeRipe() {
	keepG := e.gpu[:0]
	for _, j := range e.gpu {
		if j.remaining <= ripeEps*j.Demand {
			e.finish(j)
		} else {
			keepG = append(keepG, j)
		}
	}
	e.gpu = keepG
	keepP := e.pool[:0]
	for _, j := range e.pool {
		if j.serving && j.remaining <= ripeEps*j.Demand {
			e.finish(j)
		} else {
			keepP = append(keepP, j)
		}
	}
	e.pool = keepP
	for i, j := range e.pool {
		j.serving = i < e.cfg.DecimWorkers
	}
}

// ripeEps is the relative completion tolerance: remaining demand below this
// fraction of the job's total is rounding residue, not real work.
const ripeEps = 1e-9

func (e *SharedEdge) finish(j *Job) {
	j.remaining = 0
	j.Done = true
	j.Finish = e.now
	e.met.completions.Inc()
	e.observeLatency(j)
}

func (e *SharedEdge) observeLatency(j *Job) {
	e.met.latency.Observe(j.Finish - j.Arrival)
}
