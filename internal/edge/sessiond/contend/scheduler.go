package contend

import (
	"fmt"
	"math"
	"sort"

	"github.com/mar-hbo/hbo/internal/obs"
)

// Action is a scheduler verdict for one session in one slot.
type Action int

const (
	// ActionAdmit grants the session its full edge demand this slot.
	ActionAdmit Action = iota + 1
	// ActionDegrade admits the session at its degraded (quality-capped)
	// demand: the session still offloads, but fetches a coarser LOD and a
	// cheaper inference, so it costs the shared edge less.
	ActionDegrade
	// ActionDefer pushes the session to local execution this slot; it
	// consumes no shared-edge capacity and re-bids next slot with
	// accumulated starvation priority.
	ActionDefer
)

// String names the action for tables and traces.
func (a Action) String() string {
	switch a {
	case ActionAdmit:
		return "admit"
	case ActionDegrade:
		return "degrade"
	case ActionDefer:
		return "defer"
	}
	return fmt.Sprintf("action(%d)", int(a))
}

// Request is one session's bid for the upcoming slot.
type Request struct {
	// User identifies the session (an index into the caller's fleet; also
	// the deterministic tie-break).
	User int
	// Demand is the edge service demand (ms at rate 1) the session wants
	// this slot at full quality.
	Demand float64
	// MinDemand is the demand after maximal acceptable local degradation
	// (the quality floor); Degrade grants exactly this.
	MinDemand float64
	// Future is the predicted per-slot demand over the scheduler's
	// look-ahead horizon (entry 0 = next slot). Shorter-than-horizon
	// forecasts are padded with their last value; empty means "assume the
	// current demand persists".
	Future []float64
}

// Decision is the scheduler's verdict for one request.
type Decision struct {
	Action Action
	// Grant is the edge demand admitted this slot (0 when deferred).
	Grant float64
}

// SchedulerConfig tunes the look-ahead scheduler.
type SchedulerConfig struct {
	// Capacity is the shared edge GPU capacity (demand ms retired per ms),
	// matching the SharedEdge it fronts.
	Capacity float64
	// SlotMS is the slot length in virtual milliseconds.
	SlotMS float64
	// TargetUtil is the utilization the scheduler plans to (0.9 keeps
	// headroom so admitted jobs finish inside their slot).
	TargetUtil float64
	// Horizon is how many future slots the look-ahead considers.
	Horizon int
	// MaxDefer is the starvation bound: a session deferred this many
	// consecutive slots is admitted (at least degraded) ahead of all
	// non-starved sessions.
	MaxDefer int
}

// DefaultSchedulerConfig returns defaults matched to DefaultConfig's edge:
// plan to 90% of a 4-demand/ms GPU over 100 ms slots, look 4 slots ahead,
// and never defer a session more than 2 slots in a row.
func DefaultSchedulerConfig() SchedulerConfig {
	return SchedulerConfig{Capacity: 4, SlotMS: 100, TargetUtil: 0.9, Horizon: 4, MaxDefer: 2}
}

func (c SchedulerConfig) validate() error {
	if c.Capacity <= 0 || math.IsNaN(c.Capacity) || math.IsInf(c.Capacity, 0) {
		return fmt.Errorf("contend: scheduler Capacity %v must be finite and > 0", c.Capacity)
	}
	if c.SlotMS <= 0 || math.IsNaN(c.SlotMS) || math.IsInf(c.SlotMS, 0) {
		return fmt.Errorf("contend: scheduler SlotMS %v must be finite and > 0", c.SlotMS)
	}
	if c.TargetUtil <= 0 || c.TargetUtil > 1 {
		return fmt.Errorf("contend: scheduler TargetUtil %v out of (0,1]", c.TargetUtil)
	}
	if c.Horizon < 1 {
		return fmt.Errorf("contend: scheduler Horizon %d must be >= 1", c.Horizon)
	}
	if c.MaxDefer < 1 {
		return fmt.Errorf("contend: scheduler MaxDefer %d must be >= 1", c.MaxDefer)
	}
	return nil
}

// Scheduler is the contention-aware cross-session admission planner: each
// slot it ranks sessions by service deficit (most starved first), then
// greedily fills the slot's capacity budget — full demand if it fits,
// degraded demand if only that fits, defer otherwise — with the budget
// tightened when the look-ahead predicts sustained overload, and a hard
// starvation bound that force-admits sessions deferred MaxDefer slots in a
// row. It sits beside sessiond's per-shard admission controller: that
// controller bounds a live queue reactively (reject on overflow), this one
// plans proactively from predicted per-session activity.
//
// Deterministic by construction: no RNG, no clock, stable sort with the
// user index as final tie-break. Not safe for concurrent use.
type Scheduler struct {
	cfg SchedulerConfig

	// credit is each user's cumulative granted demand *fraction* (grant
	// over bid, so 1 = fully served, 0 = deferred) minus the fleet mean
	// fraction: positive = over-served, negative = starved. Measuring the
	// deficit in fractions rather than demand-ms makes the scheduler
	// proportionally fair — a light and a heavy user deferred equally often
	// accumulate identical starvation, so priority rotates through the
	// fleet instead of chasing raw demand-ms.
	credit map[int]float64
	// deferred counts each user's consecutive deferrals.
	deferred map[int]int
	// forced counts starvation-bound force-admissions over the scheduler's
	// lifetime (the obs counter mirrors it when a registry is attached).
	forced int

	met schedMetrics
}

// schedMetrics counts verdicts and samples planned utilization; nil
// instruments (no registry) are no-ops and never affect planning.
type schedMetrics struct {
	admits   *obs.Counter
	degrades *obs.Counter
	defers   *obs.Counter
	forced   *obs.Counter
	planUtil *obs.Histogram
}

// planUtilBuckets covers planned slot utilization from idle to 2x over.
var planUtilBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2}

// NewScheduler builds a scheduler.
func NewScheduler(cfg SchedulerConfig) (*Scheduler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		cfg:      cfg,
		credit:   make(map[int]float64),
		deferred: make(map[int]int),
	}, nil
}

// SetObserver attaches a metrics registry; nil detaches.
func (s *Scheduler) SetObserver(reg *obs.Registry) {
	s.met.admits = reg.Counter("contend.sched_admits")
	s.met.degrades = reg.Counter("contend.sched_degrades")
	s.met.defers = reg.Counter("contend.sched_defers")
	s.met.forced = reg.Counter("contend.sched_forced_admits")
	if reg != nil {
		s.met.planUtil = reg.Histogram("contend.sched_plan_util", planUtilBuckets)
	} else {
		s.met.planUtil = nil
	}
}

// Credit returns the user's current service credit (negative = starved).
func (s *Scheduler) Credit(user int) float64 { return s.credit[user] }

// ForcedAdmits returns how many admissions the starvation bound forced.
func (s *Scheduler) ForcedAdmits() int { return s.forced }

// Plan decides the upcoming slot. decisions[i] answers reqs[i]. Every
// request gets exactly one verdict; the input slice is not retained.
func (s *Scheduler) Plan(reqs []Request) []Decision {
	decisions := make([]Decision, len(reqs))
	if len(reqs) == 0 {
		return decisions
	}
	budget := s.slotBudget(reqs)

	// Rank: starved-past-bound first (force-admit class), then ascending
	// credit, user index as the final tie-break. Stable order; input order
	// never leaks into the outcome because the ordering key is total.
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := reqs[order[a]], reqs[order[b]]
		fa, fb := s.deferred[ra.User] >= s.cfg.MaxDefer, s.deferred[rb.User] >= s.cfg.MaxDefer
		if fa != fb {
			return fa
		}
		ca, cb := s.credit[ra.User], s.credit[rb.User]
		if math.Float64bits(ca) != math.Float64bits(cb) {
			return ca < cb
		}
		return ra.User < rb.User
	})

	used := 0.0
	for _, i := range order {
		r := reqs[i]
		forced := s.deferred[r.User] >= s.cfg.MaxDefer
		switch {
		case used+r.Demand <= budget:
			decisions[i] = Decision{Action: ActionAdmit, Grant: r.Demand}
			used += r.Demand
		case used+r.MinDemand <= budget || forced:
			// A starved session is admitted at its floor even past the
			// budget: bounded overshoot beats unbounded starvation.
			decisions[i] = Decision{Action: ActionDegrade, Grant: r.MinDemand}
			used += r.MinDemand
			if forced {
				s.forced++
				s.met.forced.Inc()
			}
		default:
			decisions[i] = Decision{Action: ActionDefer}
		}
	}

	// Settle accounting: credits move by granted fraction minus the
	// fleet's mean granted fraction (zero-sum, so credits never drift),
	// deferral streaks reset on any admission.
	fracs := make([]float64, len(reqs))
	meanFrac := 0.0
	for i, r := range reqs {
		if r.Demand > 0 {
			fracs[i] = decisions[i].Grant / r.Demand
		} else if decisions[i].Action != ActionDefer {
			fracs[i] = 1
		}
		meanFrac += fracs[i]
	}
	meanFrac /= float64(len(reqs))
	for i, r := range reqs {
		d := decisions[i]
		s.credit[r.User] += fracs[i] - meanFrac
		if d.Action == ActionDefer {
			s.deferred[r.User]++
			s.met.defers.Inc()
		} else {
			s.deferred[r.User] = 0
			if d.Action == ActionAdmit {
				s.met.admits.Inc()
			} else {
				s.met.degrades.Inc()
			}
		}
	}
	s.met.planUtil.Observe(used / (s.cfg.Capacity * s.cfg.SlotMS))
	return decisions
}

// slotBudget returns the edge demand the slot may admit: the target
// utilization of one slot's capacity, tightened proportionally when the
// look-ahead predicts sustained demand beyond capacity (admit less now so
// the backlog cannot build faster than it drains).
func (s *Scheduler) slotBudget(reqs []Request) float64 {
	base := s.cfg.Capacity * s.cfg.SlotMS * s.cfg.TargetUtil
	horizon := 0.0
	for slot := 0; slot < s.cfg.Horizon; slot++ {
		for _, r := range reqs {
			horizon += predictedDemand(r, slot)
		}
	}
	capacity := s.cfg.Capacity * s.cfg.SlotMS * float64(s.cfg.Horizon)
	if capacity <= 0 {
		return base
	}
	pressure := horizon / capacity
	if pressure > 1 {
		// Scale down toward a floor of half the base budget: under
		// predicted 2x overload the scheduler plans to ~45% utilization,
		// trading slot fill for bounded queues.
		scale := 1 / pressure
		if scale < 0.5 {
			scale = 0.5
		}
		base *= scale
	}
	return base
}

// predictedDemand reads a request's forecast for a future slot, padding
// short forecasts with their last entry and empty ones with Demand.
func predictedDemand(r Request, slot int) float64 {
	if len(r.Future) == 0 {
		return r.Demand
	}
	if slot >= len(r.Future) {
		return r.Future[len(r.Future)-1]
	}
	return r.Future[slot]
}
