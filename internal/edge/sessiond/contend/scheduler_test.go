package contend

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/obs"
)

// reqsFromRaw derives a bounded request fleet from quick's raw bytes.
func reqsFromRaw(demands []uint8) []Request {
	n := len(demands)
	if n > 16 {
		n = 16
	}
	reqs := make([]Request, 0, n)
	for i := 0; i < n; i++ {
		d := 10 + float64(demands[i])/2 // [10, 137.5] demand-ms
		reqs = append(reqs, Request{User: i, Demand: d, MinDemand: 0.4 * d})
	}
	return reqs
}

// TestSchedulerLightLoadAdmitsAll: when the fleet's total demand fits the
// slot budget, every session is fully admitted.
func TestSchedulerLightLoadAdmitsAll(t *testing.T) {
	s, err := NewScheduler(DefaultSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{User: 0, Demand: 50, MinDemand: 20},
		{User: 1, Demand: 80, MinDemand: 30},
		{User: 2, Demand: 100, MinDemand: 40},
	}
	for _, d := range s.Plan(reqs) {
		if d.Action != ActionAdmit {
			t.Fatalf("light load verdict = %v, want admit", d.Action)
		}
	}
}

// TestSchedulerDeterministic: two schedulers fed the identical request
// sequence emit bit-identical decision streams. ~300 cases.
func TestSchedulerDeterministic(t *testing.T) {
	f := func(slots [][]uint8) bool {
		a, err := NewScheduler(DefaultSchedulerConfig())
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewScheduler(DefaultSchedulerConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) > 20 {
			slots = slots[:20]
		}
		for _, raw := range slots {
			reqs := reqsFromRaw(raw)
			da, db := a.Plan(reqs), b.Plan(reqs)
			for i := range da {
				if da[i].Action != db[i].Action ||
					math.Float64bits(da[i].Grant) != math.Float64bits(db[i].Grant) {
					t.Logf("decision %d diverged: %+v vs %+v", i, da[i], db[i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerStarvationBound: no session is ever deferred more than
// MaxDefer consecutive slots, under arbitrary overload. ~200 cases.
func TestSchedulerStarvationBound(t *testing.T) {
	f := func(demands []uint8, slotsRaw uint8) bool {
		cfg := DefaultSchedulerConfig()
		s, err := NewScheduler(cfg)
		if err != nil {
			t.Fatal(err)
		}
		reqs := reqsFromRaw(demands)
		if len(reqs) == 0 {
			return true
		}
		// Inflate demand so the slot is heavily oversubscribed.
		for i := range reqs {
			reqs[i].Demand *= 8
			reqs[i].MinDemand *= 8
		}
		slots := 5 + int(slotsRaw%40)
		streak := make([]int, len(reqs))
		for slot := 0; slot < slots; slot++ {
			for i, d := range s.Plan(reqs) {
				if d.Action == ActionDefer {
					streak[i]++
					if streak[i] > cfg.MaxDefer {
						t.Logf("user %d deferred %d consecutive slots (bound %d)",
							i, streak[i], cfg.MaxDefer)
						return false
					}
				} else {
					streak[i] = 0
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerCreditsZeroSum: the fleet's credits sum to ~zero after any
// plan sequence — the deficit ledger never drifts. ~200 cases.
func TestSchedulerCreditsZeroSum(t *testing.T) {
	f := func(slots [][]uint8) bool {
		s, err := NewScheduler(DefaultSchedulerConfig())
		if err != nil {
			t.Fatal(err)
		}
		if len(slots) > 20 {
			slots = slots[:20]
		}
		users := map[int]bool{}
		for _, raw := range slots {
			reqs := reqsFromRaw(raw)
			s.Plan(reqs)
			for _, r := range reqs {
				users[r.User] = true
			}
		}
		ids := make([]int, 0, len(users))
		for u := range users {
			ids = append(ids, u)
		}
		sort.Ints(ids)
		sum := 0.0
		for _, u := range ids {
			sum += s.Credit(u)
		}
		if math.Abs(sum) > 1e-6 {
			t.Logf("credits sum to %v, want ~0", sum)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSchedulerForcedAdmitPastBudget: a session whose floor never fits the
// budget is still admitted (degraded) once it hits the starvation bound,
// and the forced-admit ledger records it.
func TestSchedulerForcedAdmitPastBudget(t *testing.T) {
	cfg := DefaultSchedulerConfig() // budget = 4*100*0.9 = 360
	s, err := NewScheduler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{
		{User: 0, Demand: 300, MinDemand: 120},
		{User: 1, Demand: 500, MinDemand: 400}, // never fits, even degraded
	}
	deferred, degraded := 0, 0
	for slot := 0; slot < 6; slot++ {
		d := s.Plan(reqs)
		switch d[1].Action {
		case ActionDefer:
			deferred++
		case ActionDegrade:
			degraded++
			if d[1].Grant != reqs[1].MinDemand {
				t.Fatalf("forced admit grant = %v, want floor %v", d[1].Grant, reqs[1].MinDemand)
			}
		case ActionAdmit:
			t.Fatal("oversized session fully admitted")
		}
	}
	if degraded == 0 {
		t.Fatal("starved session never force-admitted")
	}
	if deferred > degraded*cfg.MaxDefer {
		t.Fatalf("deferred %d slots with only %d admissions (bound %d)", deferred, degraded, cfg.MaxDefer)
	}
	if s.ForcedAdmits() == 0 {
		t.Fatal("ForcedAdmits() = 0 after forced admissions")
	}
}

// TestSchedulerLookAheadTightensBudget: identical present demand admits less
// when the forecast predicts sustained overload.
func TestSchedulerLookAheadTightensBudget(t *testing.T) {
	plan := func(future []float64) (admits int) {
		s, err := NewScheduler(DefaultSchedulerConfig())
		if err != nil {
			t.Fatal(err)
		}
		reqs := make([]Request, 6)
		for i := range reqs {
			reqs[i] = Request{User: i, Demand: 55, MinDemand: 22, Future: future}
		}
		for _, d := range s.Plan(reqs) {
			if d.Action == ActionAdmit {
				admits++
			}
		}
		return admits
	}
	calm := plan(nil)             // 6*55 = 330 fits the 360 budget
	storm := plan([]float64{400}) // predicted 6*400 per slot vs 400 capacity
	if calm != 6 {
		t.Fatalf("calm forecast admits = %d, want 6", calm)
	}
	if storm >= calm {
		t.Fatalf("overload forecast admits %d >= calm %d; look-ahead did not tighten", storm, calm)
	}
}

// TestSchedulerInputOrderInvariant: permuting the request slice permutes the
// decisions with it — outcome per user is order-independent.
func TestSchedulerInputOrderInvariant(t *testing.T) {
	mk := func() []Request {
		return []Request{
			{User: 0, Demand: 200, MinDemand: 80},
			{User: 1, Demand: 150, MinDemand: 60},
			{User: 2, Demand: 180, MinDemand: 70},
			{User: 3, Demand: 90, MinDemand: 40},
		}
	}
	a, _ := NewScheduler(DefaultSchedulerConfig())
	b, _ := NewScheduler(DefaultSchedulerConfig())
	for slot := 0; slot < 8; slot++ {
		fwd := mk()
		rev := mk()
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		da := a.Plan(fwd)
		db := b.Plan(rev)
		for i := range fwd {
			// fwd[i] is rev[len-1-i].
			mirror := db[len(rev)-1-i]
			if da[i].Action != mirror.Action ||
				math.Float64bits(da[i].Grant) != math.Float64bits(mirror.Grant) {
				t.Fatalf("slot %d user %d: %+v forward vs %+v reversed",
					slot, fwd[i].User, da[i], mirror)
			}
		}
	}
}

// TestSchedulerConfigValidation rejects broken configs.
func TestSchedulerConfigValidation(t *testing.T) {
	bad := []SchedulerConfig{
		{Capacity: 0, SlotMS: 100, TargetUtil: 0.9, Horizon: 4, MaxDefer: 2},
		{Capacity: 4, SlotMS: 0, TargetUtil: 0.9, Horizon: 4, MaxDefer: 2},
		{Capacity: 4, SlotMS: 100, TargetUtil: 0, Horizon: 4, MaxDefer: 2},
		{Capacity: 4, SlotMS: 100, TargetUtil: 1.1, Horizon: 4, MaxDefer: 2},
		{Capacity: 4, SlotMS: 100, TargetUtil: 0.9, Horizon: 0, MaxDefer: 2},
		{Capacity: 4, SlotMS: 100, TargetUtil: 0.9, Horizon: 4, MaxDefer: 0},
		{Capacity: math.NaN(), SlotMS: 100, TargetUtil: 0.9, Horizon: 4, MaxDefer: 2},
	}
	for i, cfg := range bad {
		if _, err := NewScheduler(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if len(NewSchedulerMust(t).Plan(nil)) != 0 {
		t.Error("empty plan returned decisions")
	}
}

func NewSchedulerMust(t *testing.T) *Scheduler {
	t.Helper()
	s, err := NewScheduler(DefaultSchedulerConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestSchedulerObserver: verdict counters fill when attached; planning is
// identical without one.
func TestSchedulerObserver(t *testing.T) {
	reg := obs.New()
	s := NewSchedulerMust(t)
	s.SetObserver(reg)
	reqs := []Request{
		{User: 0, Demand: 300, MinDemand: 120},
		{User: 1, Demand: 300, MinDemand: 120},
		{User: 2, Demand: 300, MinDemand: 120},
	}
	for slot := 0; slot < 4; slot++ {
		s.Plan(reqs)
	}
	snap := reg.Snapshot()
	total := snap.Counters["contend.sched_admits"] +
		snap.Counters["contend.sched_degrades"] +
		snap.Counters["contend.sched_defers"]
	if total != 12 {
		t.Fatalf("verdict counters sum to %d, want 12 (3 users × 4 slots)", total)
	}
	if h, ok := snap.Histograms["contend.sched_plan_util"]; !ok || h.Count != 4 {
		t.Fatalf("plan_util samples = %+v, want 4", snap.Histograms["contend.sched_plan_util"])
	}
}
