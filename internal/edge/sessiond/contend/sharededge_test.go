package contend

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/mar-hbo/hbo/internal/obs"
)

// jobSpec derives a bounded job mix from quick's raw bytes: up to 12 jobs,
// demands in [0, 25.5] ms, arrivals packed into a few ticks so equal-time
// submissions are common.
type jobSpec struct {
	Kinds   []uint8
	Demands []uint8
	Ticks   []uint8
}

func (s jobSpec) jobs() (kinds []JobKind, demands, ticks []float64) {
	n := len(s.Kinds)
	if len(s.Demands) < n {
		n = len(s.Demands)
	}
	if len(s.Ticks) < n {
		n = len(s.Ticks)
	}
	if n > 12 {
		n = 12
	}
	tick := 0.0
	for i := 0; i < n; i++ {
		kind := Inference
		if s.Kinds[i]%2 == 1 {
			kind = Decimation
		}
		kinds = append(kinds, kind)
		demands = append(demands, float64(s.Demands[i])/10)
		// Non-decreasing arrivals; ~half the jobs share the previous tick.
		if s.Ticks[i]%2 == 0 {
			tick += float64(s.Ticks[i]) / 50
		}
		ticks = append(ticks, tick)
	}
	return kinds, demands, ticks
}

// TestWorkConservation: after draining an arbitrary job mix, every job is
// done, the served-demand ledgers equal the submitted demand exactly (up to
// relative float tolerance), and no job finished faster than its best
// possible service time. ~400 cases.
func TestWorkConservation(t *testing.T) {
	f := func(spec jobSpec) bool {
		kinds, demands, ticks := spec.jobs()
		e, err := New(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		var jobs []*Job
		var wantGPU, wantDecim float64
		for i := range kinds {
			j, err := e.Submit(kinds[i], i, ticks[i], demands[i])
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			jobs = append(jobs, j)
			if kinds[i] == Inference {
				wantGPU += demands[i]
			} else {
				wantDecim += demands[i]
			}
		}
		e.Drain()
		if e.InFlight() != 0 {
			t.Log("drain left jobs in flight")
			return false
		}
		tol := 1e-6 * (1 + wantGPU + wantDecim)
		if math.Abs(e.ServedGPU()-wantGPU) > tol || math.Abs(e.ServedDecim()-wantDecim) > tol {
			t.Logf("served (%v, %v) != submitted (%v, %v)",
				e.ServedGPU(), e.ServedDecim(), wantGPU, wantDecim)
			return false
		}
		for i, j := range jobs {
			if !j.Done || j.Finish < j.Arrival {
				t.Logf("job %d not done or finished before arrival: %+v", i, j)
				return false
			}
			// Best case: sole tenant at the capped rate (1 for the GPU,
			// DecimRate for the pool).
			minLat := j.Demand
			if j.Kind == Decimation {
				minLat = j.Demand / DefaultConfig().DecimRate
			}
			if j.Latency() < minLat-1e-9 {
				t.Logf("job %d latency %v beats physics (min %v)", i, j.Latency(), minLat)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestLatencyMonotoneInLoad: a probe job's latency never decreases when more
// concurrent load shares the edge. ~400 cases.
func TestLatencyMonotoneInLoad(t *testing.T) {
	f := func(probeRaw, bgRaw, nRaw uint8) bool {
		probe := 1 + float64(probeRaw)/20
		bg := 1 + float64(bgRaw)/20
		n := int(nRaw % 10)
		lat := func(background int) float64 {
			e, err := New(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			p, err := e.Submit(Inference, 0, 0, probe)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < background; i++ {
				if _, err := e.Submit(Inference, 1+i, 0, bg); err != nil {
					t.Fatal(err)
				}
			}
			e.Drain()
			return p.Latency()
		}
		lo, hi := lat(n), lat(n+1)
		// Completions segment the accrual differently between runs, so allow
		// ulp-level float residue; anything beyond that is a real violation.
		if hi < lo-1e-9*lo {
			t.Logf("latency fell when load rose: %v with %d background jobs, %v with %d", lo, n, hi, n+1)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestEqualArrivalDeterministicTieBreaks: identical runs produce bit-identical
// finish times, and same-tick equal-demand jobs complete together with
// submission order preserved in the completion sequence. ~300 cases.
func TestEqualArrivalDeterministicTieBreaks(t *testing.T) {
	f := func(spec jobSpec) bool {
		kinds, demands, ticks := spec.jobs()
		run := func() []*Job {
			e, err := New(DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var jobs []*Job
			for i := range kinds {
				j, err := e.Submit(kinds[i], i, ticks[i], demands[i])
				if err != nil {
					t.Fatal(err)
				}
				jobs = append(jobs, j)
			}
			e.Drain()
			return jobs
		}
		a, b := run(), run()
		for i := range a {
			if math.Float64bits(a[i].Finish) != math.Float64bits(b[i].Finish) {
				t.Logf("job %d finish diverged between identical runs", i)
				return false
			}
		}
		// Same-tick, same-kind, same-demand GPU jobs are symmetric: they must
		// finish at the identical instant.
		for i := range a {
			for k := i + 1; k < len(a); k++ {
				if a[i].Kind == Inference && a[k].Kind == Inference &&
					a[i].Arrival == a[k].Arrival && a[i].Demand == a[k].Demand {
					if math.Float64bits(a[i].Finish) != math.Float64bits(a[k].Finish) {
						t.Logf("symmetric jobs %d/%d finish apart: %v vs %v",
							i, k, a[i].Finish, a[k].Finish)
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestProcessorSharingRates pins the PS arithmetic on hand-computed cases.
func TestProcessorSharingRates(t *testing.T) {
	// Sole tenant runs at the full-speed cap, not at GPUCapacity.
	e, _ := New(DefaultConfig())
	j, err := e.Submit(Inference, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	e.Drain()
	if j.Finish != 10 {
		t.Fatalf("sole job finish = %v, want 10 (rate capped at 1)", j.Finish)
	}
	// Eight equal jobs on a capacity-4 GPU share at rate 0.5.
	e, _ = New(DefaultConfig())
	var jobs []*Job
	for i := 0; i < 8; i++ {
		j, err := e.Submit(Inference, i, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	e.Drain()
	for i, j := range jobs {
		if j.Finish != 20 {
			t.Fatalf("job %d finish = %v, want 20 (rate 0.5)", i, j.Finish)
		}
	}
}

// TestDecimationPoolFIFO: the third decimation job waits for a worker, then
// runs at the worker rate.
func TestDecimationPoolFIFO(t *testing.T) {
	e, _ := New(DefaultConfig()) // 2 workers at rate 2
	a, _ := e.Submit(Decimation, 0, 0, 4)
	b, _ := e.Submit(Decimation, 1, 0, 4)
	c, _ := e.Submit(Decimation, 2, 0, 4)
	e.Drain()
	if a.Finish != 2 || b.Finish != 2 {
		t.Fatalf("serving jobs finish = %v, %v, want 2, 2", a.Finish, b.Finish)
	}
	if c.Finish != 4 {
		t.Fatalf("queued job finish = %v, want 4 (starts when a worker frees)", c.Finish)
	}
}

// TestSubmitValidation: time travel and bad demands are rejected; zero
// demand completes instantly.
func TestSubmitValidation(t *testing.T) {
	e, _ := New(DefaultConfig())
	if _, err := e.Submit(Inference, 0, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(Inference, 0, 4, 1); err == nil {
		t.Fatal("submit before now succeeded")
	}
	for _, d := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := e.Submit(Inference, 0, 6, d); err == nil {
			t.Fatalf("demand %v accepted", d)
		}
	}
	if _, err := e.Submit(JobKind(0), 0, 6, 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
	j, err := e.Submit(Inference, 0, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !j.Done || j.Finish != 6 || j.Latency() != 0 {
		t.Fatalf("zero-demand job = %+v, want instant completion at 6", j)
	}
}

// TestConfigValidation rejects non-physical edges.
func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{GPUCapacity: 0, DecimWorkers: 1, DecimRate: 1},
		{GPUCapacity: math.NaN(), DecimWorkers: 1, DecimRate: 1},
		{GPUCapacity: 1, DecimWorkers: 0, DecimRate: 1},
		{GPUCapacity: 1, DecimWorkers: 1, DecimRate: 0},
		{GPUCapacity: 1, DecimWorkers: 1, DecimRate: math.Inf(1)},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestEdgeObserver: counters and histograms fill when attached and the model
// behaves identically without one (instruments never feed back).
func TestEdgeObserver(t *testing.T) {
	reg := obs.New()
	observed, _ := New(DefaultConfig())
	observed.SetObserver(reg)
	bare, _ := New(DefaultConfig())
	for i := 0; i < 5; i++ {
		jo, err := observed.Submit(Inference, i, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		jb, err := bare.Submit(Inference, i, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		_ = jo
		_ = jb
	}
	if _, err := observed.Submit(Decimation, 9, 1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := bare.Submit(Decimation, 9, 1, 2); err != nil {
		t.Fatal(err)
	}
	observed.Drain()
	bare.Drain()
	if math.Float64bits(observed.Now()) != math.Float64bits(bare.Now()) {
		t.Fatalf("observer changed completion times: %v vs %v", observed.Now(), bare.Now())
	}
	snap := reg.Snapshot()
	if got := snap.Counters["contend.inference_submits"]; got != 5 {
		t.Errorf("inference_submits = %d, want 5", got)
	}
	if got := snap.Counters["contend.decimation_submits"]; got != 1 {
		t.Errorf("decimation_submits = %d, want 1", got)
	}
	if got := snap.Counters["contend.completions"]; got != 6 {
		t.Errorf("completions = %d, want 6", got)
	}
	hist, ok := snap.Histograms["contend.gpu_queue_depth"]
	if !ok || hist.Count != 5 {
		t.Errorf("gpu_queue_depth samples = %+v, want 5", hist)
	}
	// Detach: further traffic must not touch the registry.
	observed.SetObserver(nil)
	if _, err := observed.Submit(Inference, 0, observed.Now(), 1); err != nil {
		t.Fatal(err)
	}
	observed.Drain()
	if got := reg.Snapshot().Counters["contend.inference_submits"]; got != 5 {
		t.Errorf("detached observer still counted: %d", got)
	}
}
