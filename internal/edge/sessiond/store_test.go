package sessiond

import (
	"testing"
)

func testParams(seed uint64) params {
	return params{resources: 3, rmin: 0.1, seed: seed, init: 5}
}

// TestEvictLRUOrdering exercises the eviction rule directly: smallest
// lastTouch tick first, ties broken by the lexicographically smallest ID.
// Ties are not hypothetical — every job served by one batch drain pass
// shares a tick.
func TestEvictLRUOrdering(t *testing.T) {
	cases := []struct {
		name    string
		touches map[string]uint64
		want    string
	}{
		{"empty shard", nil, ""},
		{"single", map[string]uint64{"only": 9}, "only"},
		{"distinct ticks", map[string]uint64{"a": 3, "b": 1, "c": 2}, "b"},
		{"all tied", map[string]uint64{"c": 5, "a": 5, "b": 5}, "a"},
		{"tie among oldest", map[string]uint64{"z": 1, "m": 1, "q": 7}, "m"},
		{"tie not at oldest", map[string]uint64{"a": 9, "b": 9, "c": 2}, "c"},
		{"zero ticks fresh batch", map[string]uint64{"s10": 0, "s02": 0, "s01": 0}, "s01"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh := &shard{sessions: make(map[string]*session)}
			for id, tick := range tc.touches {
				sh.sessions[id] = &session{id: id, lastTouch: tick}
			}
			victim := sh.evictLRULocked()
			got := ""
			if victim != nil {
				got = victim.id
			}
			if got != tc.want {
				t.Fatalf("evictLRULocked() = %q, want %q", got, tc.want)
			}
			if tc.want != "" {
				if _, still := sh.sessions[tc.want]; still {
					t.Fatalf("victim %q still in shard after eviction", tc.want)
				}
				if len(sh.sessions) != len(tc.touches)-1 {
					t.Fatalf("shard has %d sessions after eviction, want %d",
						len(sh.sessions), len(tc.touches)-1)
				}
			}
		})
	}
}

// TestOpenSemantics covers the open-path state machine: idempotent re-open
// with identical parameters, in-place rebuild on changed parameters, and
// LRU eviction when the shard is full.
func TestOpenSemantics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.SessionsPerShard = 2
	svc, err := New(cfg, nil)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer svc.Close()

	a1, res, err := svc.open("a", testParams(1))
	if err != nil || res.existing || res.evicted != "" {
		t.Fatalf("first open = (%+v err=%v), want fresh", res, err)
	}
	// Identical parameters: idempotent, same session object.
	a2, res, err := svc.open("a", testParams(1))
	if err != nil || !res.existing {
		t.Fatalf("idempotent open = (%+v err=%v), want existing", res, err)
	}
	if a1 != a2 {
		t.Fatal("idempotent open returned a different session object")
	}
	// Changed parameters: rebuilt in place, still one session.
	a3, res, err := svc.open("a", testParams(99))
	if err != nil || res.existing || res.evicted != "" {
		t.Fatalf("rebuild open = (%+v err=%v), want fresh rebuild", res, err)
	}
	if a3 == a1 {
		t.Fatal("parameter change did not rebuild the session")
	}
	if svc.sessionCount() != 1 {
		t.Fatalf("sessionCount = %d after rebuild, want 1", svc.sessionCount())
	}
	// Fill to capacity, then overflow: the LRU victim is a (touched at tick
	// 3 by the rebuild) versus b (tick 4).
	if _, _, err := svc.open("b", testParams(2)); err != nil {
		t.Fatalf("open b: %v", err)
	}
	_, res, err = svc.open("c", testParams(3))
	if err != nil {
		t.Fatalf("open c: %v", err)
	}
	if res.evicted != "a" {
		t.Fatalf("overflow evicted %q, want %q", res.evicted, "a")
	}
	if svc.sessionCount() != 2 {
		t.Fatalf("sessionCount = %d after eviction, want 2", svc.sessionCount())
	}
	// The evicted session is gone; the survivors are reachable.
	if _, ok := svc.peek("a"); ok {
		t.Fatal("evicted session a still reachable")
	}
	for _, id := range []string{"b", "c"} {
		if _, ok := svc.peek(id); !ok {
			t.Fatalf("session %s unreachable after unrelated eviction", id)
		}
	}
}
