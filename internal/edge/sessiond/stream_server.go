package sessiond

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/wire"
)

// Server side of the session stream (DESIGN.md §14). One POST to
// /session/stream is one long-lived full-duplex exchange: the client ships
// binary request frames down the request body, the server ships response
// frames back in request order, and neither side pays per-call HTTP
// overhead again for the life of the stream.
//
// Concurrency shape: the handler goroutine reads and dispatches frames —
// opens, observes, and closes run inline (they are cheap, and inline
// execution preserves the per-session operation order the determinism
// contract needs); suggests are enqueued into the same shard batch workers
// the JSON path uses, behind the same admission control. A single writer
// goroutine drains an ordered queue of response slots, waiting on each
// suggest's worker reply in turn, so responses leave in exactly the order
// their requests arrived — a stronger guarantee than the per-session
// ordering clients rely on — while queued suggests from many sessions still
// batch in the shard workers concurrently.
const (
	// streamOutDepth bounds responses in flight between the reader and the
	// writer goroutine; a full queue blocks frame intake (backpressure)
	// instead of buffering unboundedly.
	streamOutDepth = 256
	// streamWriteBuf sizes the writer's coalescing buffer: pipelined
	// responses share syscalls, and the writer flushes whenever the queue
	// goes momentarily idle.
	streamWriteBuf = 4096
)

// streamPending is one slot in a stream's ordered response queue: either a
// fully built response frame, or (for suggests) a reply channel the writer
// waits on before building the frame. Slots are pooled; the embedded
// suggest job's reply channel is allocated once and reused.
type streamPending struct {
	f       wire.Frame
	job     suggestJob
	suggest bool
}

var pendingPool = sync.Pool{New: func() any {
	return &streamPending{job: suggestJob{reply: make(chan suggestResult, 1)}}
}}

func getPending() *streamPending {
	p := pendingPool.Get().(*streamPending)
	p.f.Reset()
	p.suggest = false
	p.job.sess = nil
	return p
}

func putPending(p *streamPending) { pendingPool.Put(p) }

// errFrame turns p into an application-level error response carrying the
// HTTP status the JSON path would have sent.
func errFrame(p *streamPending, status int, msg string, retryAfter uint32) {
	p.f.Type = wire.TError
	p.f.Status = uint16(status)
	p.f.RetryAfterSec = retryAfter
	p.f.Msg = append(p.f.Msg[:0], msg...)
}

// handleStream serves one session stream. Registered without the guard
// middleware: a stream is long-lived by design, so the per-request timeout
// and body cap do not apply — per-frame bounds in the wire codec and the
// response-queue backpressure bound its resource use instead.
func (s *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	rc := http.NewResponseController(w)
	// The stream interleaves reads from the request body with writes to the
	// response. HTTP/1.x needs the explicit full-duplex opt-in; natively
	// duplex transports report ErrNotSupported and work regardless.
	_ = rc.EnableFullDuplex()
	// A stream lives as long as its client: clear the server's per-request
	// read/write deadlines (zero time means none — no clock is read, and
	// dead peers are reaped by TCP keepalive).
	_ = rc.SetReadDeadline(time.Time{})
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	// Commit the headers now so the client's round trip completes and it
	// can start writing frames.
	_ = rc.Flush()

	s.metStreamOpens.Inc()
	s.metStreamsOpen.Set(float64(s.strOpen.Add(1)))
	var start time.Time
	if s.metStreamDurMS != nil {
		start = time.Now()
	}

	out := make(chan *streamPending, streamOutDepth)
	writerDone := make(chan struct{})
	go s.streamWriter(w, rc, out, writerDone)
	s.streamRead(r.Body, out)
	close(out)
	<-writerDone

	s.metStreamsOpen.Set(float64(s.strOpen.Add(-1)))
	if s.metStreamDurMS != nil {
		s.metStreamDurMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	}
}

// streamRead is the handler-side frame loop: decode, dispatch, enqueue the
// response slot. A clean EOF (client closed its send side) ends the stream;
// a framing error also ends it — frames are byte-positional, so after one
// bad frame the stream cannot resync and terminating is the only safe move.
// Only codec-level rejections count as decode errors: a connection dropped
// mid-frame is ordinary churn, not corruption worth alerting on.
func (s *Service) streamRead(body io.Reader, out chan<- *streamPending) {
	fr := wire.GetReader(body)
	defer wire.PutReader(fr)
	var f wire.Frame
	for {
		if err := fr.Next(&f); err != nil {
			if wire.IsMalformed(err) {
				s.strDecodeErrs.Add(1)
				s.metStreamDecodeErrs.Inc()
			}
			return
		}
		s.strFramesIn.Add(1)
		s.metStreamFramesIn.Inc()
		p := getPending()
		p.f.Seq = f.Seq
		switch f.Type {
		case wire.THelloReq:
			s.streamHello(&f, p)
		case wire.TOpenReq:
			s.streamOpen(&f, p)
		case wire.TSuggestReq:
			s.streamSuggest(&f, p)
		case wire.TObserveReq:
			s.streamObserve(&f, p)
		case wire.TCloseReq:
			s.streamClose(&f, p)
		default:
			errFrame(p, http.StatusBadRequest, fmt.Sprintf("sessiond: unexpected %v frame", f.Type), 0)
		}
		out <- p
	}
}

// streamWriter drains the ordered response queue onto the connection. Only
// this goroutine writes to w after the handler commits the headers, so no
// write lock is needed; it flushes whenever the queue goes idle so a lone
// caller never waits on a buffer and a pipelined burst still coalesces.
func (s *Service) streamWriter(w io.Writer, rc *http.ResponseController, out <-chan *streamPending, done chan<- struct{}) {
	defer close(done)
	bw := bufio.NewWriterSize(w, streamWriteBuf)
	fw := wire.GetWriter(bw)
	defer wire.PutWriter(fw)
	var werr error
	for p := range out {
		if p.suggest {
			// The shard worker serves every accepted job, so this receive
			// always completes; after a write error the loop keeps draining
			// replies so no worker output is left dangling.
			res := <-p.job.reply
			if res.err != nil {
				errFrame(p, http.StatusInternalServerError, res.err.Error(), 0)
			} else {
				s.metSuggests.Inc()
				p.f.Type = wire.TSuggestResp
				p.f.Observations = uint32(res.observations)
				p.f.Point = res.point
			}
		}
		if werr == nil {
			if err := fw.WriteFrame(&p.f); err != nil {
				werr = err
			} else {
				s.strFramesOut.Add(1)
				s.metStreamFramesOut.Inc()
				if len(out) == 0 {
					if err := bw.Flush(); err != nil {
						werr = err
					} else {
						_ = rc.Flush()
					}
				}
			}
		}
		putPending(p)
	}
}

// streamHello answers version negotiation: the server states the version it
// will speak. A client version this server does not know is refused with an
// error frame, and the client falls back to the JSON path.
func (s *Service) streamHello(req *wire.Frame, p *streamPending) {
	if req.Version != wire.Version {
		errFrame(p, http.StatusHTTPVersionNotSupported,
			fmt.Sprintf("sessiond: unsupported wire version %d (server speaks %d)", req.Version, wire.Version), 0)
		return
	}
	p.f.Type = wire.THelloResp
	p.f.Version = wire.Version
}

// streamOpen is the frame twin of handleOpen: same validation, same open
// state machine, same metrics.
func (s *Service) streamOpen(req *wire.Frame, p *streamPending) {
	id := string(req.ID)
	if err := validID(id); err != nil {
		errFrame(p, http.StatusBadRequest, err.Error(), 0)
		return
	}
	pr := params{
		resources: int(req.Resources),
		rmin:      req.RMin,
		seed:      req.Seed,
		init:      int(req.Init),
		policy:    policies.Canonical(string(req.Policy)),
	}
	if pr.init == 0 {
		pr.init = 5
	}
	if err := pr.validate(); err != nil {
		errFrame(p, http.StatusBadRequest, err.Error(), 0)
		return
	}
	sess, res, err := s.open(id, pr)
	if err != nil {
		errFrame(p, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if res.existing {
		s.metReopens.Inc()
	} else {
		s.metOpens.Inc()
	}
	if res.evicted != "" {
		s.metEvictions.Inc()
	}
	s.metSessions.Set(float64(s.sessionCount()))
	p.f.Type = wire.TOpenResp
	if res.existing {
		p.f.Flags |= wire.FlagExisting
	}
	if res.restored {
		p.f.Flags |= wire.FlagRestored
	}
	if !sess.durable {
		p.f.Flags |= wire.FlagEphemeral
	}
	p.f.Evicted = append(p.f.Evicted[:0], res.evicted...)
	p.f.Observations = uint32(sess.observations())
}

// streamSuggest enqueues into the shard batch workers behind the same
// admission control as the JSON route; the writer goroutine completes the
// response when the worker replies.
func (s *Service) streamSuggest(req *wire.Frame, p *streamPending) {
	sess, ok := s.peekBytes(req.ID)
	if !ok {
		s.metUnknown.Inc()
		errFrame(p, http.StatusNotFound, fmt.Sprintf("sessiond: unknown session %q", req.ID), 0)
		return
	}
	p.job.sess = sess
	if !s.enqueueSuggest(sess, &p.job) {
		s.metRejects.Inc()
		errFrame(p, http.StatusServiceUnavailable, "sessiond: suggest queue full, retry later", uint32(s.cfg.RetryAfterSec))
		return
	}
	p.suggest = true
}

// streamObserve is the frame twin of handleObserve, plus the idempotency
// index: a replayed observe (already-applied index) is acknowledged without
// a second append, which is what makes reconnect-time retries safe.
func (s *Service) streamObserve(req *wire.Frame, p *streamPending) {
	sess, ok := s.lookupBytes(req.ID)
	if !ok {
		s.metUnknown.Inc()
		errFrame(p, http.StatusNotFound, fmt.Sprintf("sessiond: unknown session %q", req.ID), 0)
		return
	}
	if math.IsNaN(req.Cost) || math.IsInf(req.Cost, 0) {
		errFrame(p, http.StatusUnprocessableEntity, fmt.Sprintf("sessiond: non-finite cost %v", req.Cost), 0)
		return
	}
	n, dirty, dup, err := sess.observeAt(req.Index, req.Point, req.Cost)
	if err != nil {
		errFrame(p, http.StatusUnprocessableEntity, err.Error(), 0)
		return
	}
	s.metObserves.Inc()
	if !dup && s.cfg.SnapshotEvery > 0 && dirty >= s.cfg.SnapshotEvery {
		s.saveSession(sess)
	}
	p.f.Type = wire.TObserveResp
	p.f.Observations = uint32(n)
}

// observeAt records one (point, cost) pair with an idempotency index: the
// caller states which database slot (0-based) the observation should land
// in. wire.NoIndex skips the check (the JSON path's always-append
// behavior). An index below the current size is a replay of an observation
// the session already holds — acknowledged (dup=true) without a second
// append, so a client retrying an observe whose response was lost to a
// dropped connection cannot double-apply it. An index beyond the current
// size is a gap (the client skipped an observation) and is rejected.
func (sess *session) observeAt(index uint32, point []float64, cost float64) (n, dirty int, dup bool, err error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if index != wire.NoIndex {
		cur := sess.opt.Observations()
		if int64(index) < int64(cur) {
			return cur, sess.dirty, true, nil
		}
		if int64(index) > int64(cur) {
			return 0, 0, false, fmt.Errorf("sessiond: observe index %d ahead of session %s at %d observations", index, sess.id, cur)
		}
	}
	n, dirty, err = sess.observeLocked(point, cost)
	return n, dirty, false, err
}

// streamClose is the frame twin of handleClose.
func (s *Service) streamClose(req *wire.Frame, p *streamPending) {
	closed := s.remove(string(req.ID))
	if closed {
		s.metCloses.Inc()
		s.metSessions.Set(float64(s.sessionCount()))
	}
	p.f.Type = wire.TCloseResp
	p.f.Closed = closed
}
