package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"testing"
)

// sampleFrames returns one representative frame of every type.
func sampleFrames() []Frame {
	return []Frame{
		{Type: THelloReq, Seq: 1, Version: Version},
		{Type: THelloResp, Seq: 1, Version: Version},
		{Type: TOpenReq, Seq: 2, ID: []byte("c0001"), Resources: 3, RMin: 0.1, Seed: 42, Init: 5},
		{Type: TOpenReq, Seq: 2, Flags: FlagPolicy, ID: []byte("c0001"), Resources: 3, RMin: 0.1, Seed: 42, Init: 5, Policy: []byte("linucb")},
		{Type: TOpenResp, Seq: 2, Flags: FlagExisting | FlagRestored, Observations: 7, Evicted: []byte("c0009")},
		{Type: TOpenResp, Seq: 2, Flags: FlagEphemeral, Observations: 0},
		{Type: TSuggestReq, Seq: 3, ID: []byte("c0001")},
		{Type: TSuggestResp, Seq: 3, Observations: 7, Point: []float64{0.25, 0.5, 0.25, 0.75}},
		{Type: TObserveReq, Seq: 4, ID: []byte("c0001"), Index: 7, Cost: -1.25, Point: []float64{0.25, 0.5, 0.25, 0.75}},
		{Type: TObserveReq, Seq: 5, ID: []byte("c0001"), Index: NoIndex, Cost: math.Inf(1), Point: nil},
		{Type: TObserveResp, Seq: 4, Observations: 8},
		{Type: TCloseReq, Seq: 6, ID: []byte("c0001")},
		{Type: TCloseResp, Seq: 6, Closed: true},
		{Type: TCloseResp, Seq: 7, Closed: false},
		{Type: TError, Seq: 8, Status: 503, RetryAfterSec: 1, Msg: []byte("sessiond: suggest queue full, retry later")},
	}
}

func encode(t *testing.T, f *Frame) []byte {
	t.Helper()
	b, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatalf("AppendFrame(%v): %v", f.Type, err)
	}
	return b
}

// TestRoundTrip checks every frame type survives encode∘decode with every
// field intact and re-encodes byte-identically (the canonical invariant).
func TestRoundTrip(t *testing.T) {
	for _, orig := range sampleFrames() {
		b := encode(t, &orig)
		var got Frame
		if err := DecodeFrame(b[4:], &got); err != nil {
			t.Fatalf("DecodeFrame(%v): %v", orig.Type, err)
		}
		assertFrameEqual(t, &orig, &got)
		re, err := AppendFrame(nil, &got)
		if err != nil {
			t.Fatalf("re-encode %v: %v", orig.Type, err)
		}
		if !bytes.Equal(b, re) {
			t.Fatalf("%v: re-encode not canonical\n first: %x\nsecond: %x", orig.Type, b, re)
		}
	}
}

func assertFrameEqual(t *testing.T, want, got *Frame) {
	t.Helper()
	if want.Type != got.Type || want.Flags != got.Flags || want.Seq != got.Seq {
		t.Fatalf("header mismatch: want %+v got %+v", want, got)
	}
	if !bytes.Equal(want.ID, got.ID) || !bytes.Equal(want.Evicted, got.Evicted) ||
		!bytes.Equal(want.Msg, got.Msg) || !bytes.Equal(want.Policy, got.Policy) {
		t.Fatalf("%v: byte fields mismatch: want %+v got %+v", want.Type, want, got)
	}
	if len(want.Point) != len(got.Point) {
		t.Fatalf("%v: point length %d vs %d", want.Type, len(want.Point), len(got.Point))
	}
	for i := range want.Point {
		if math.Float64bits(want.Point[i]) != math.Float64bits(got.Point[i]) {
			t.Fatalf("%v: point[%d] %v vs %v", want.Type, i, want.Point[i], got.Point[i])
		}
	}
	if math.Float64bits(want.RMin) != math.Float64bits(got.RMin) ||
		math.Float64bits(want.Cost) != math.Float64bits(got.Cost) {
		t.Fatalf("%v: float fields mismatch: want %+v got %+v", want.Type, want, got)
	}
	if want.Resources != got.Resources || want.Seed != got.Seed || want.Init != got.Init ||
		want.Index != got.Index || want.Observations != got.Observations ||
		want.Closed != got.Closed || want.Status != got.Status ||
		want.RetryAfterSec != got.RetryAfterSec || want.Version != got.Version {
		t.Fatalf("%v: scalar fields mismatch: want %+v got %+v", want.Type, want, got)
	}
}

// TestDecodeRejects exercises the decoder armor on malformed input.
func TestDecodeRejects(t *testing.T) {
	good := encode(t, &Frame{Type: TSuggestResp, Seq: 1, Observations: 3, Point: []float64{0.5, 0.5}})
	body := good[4:]

	cases := map[string][]byte{
		"empty":     {},
		"too short": body[:8],
	}
	flip := append([]byte(nil), body...)
	flip[len(flip)-1] ^= 0xff
	cases["bad crc"] = flip

	badVersion := append([]byte(nil), body...)
	badVersion[0] = 99
	cases["bad version"] = recrc(badVersion)

	badType := append([]byte(nil), body...)
	badType[1] = 200
	cases["unknown type"] = recrc(badType)

	badFlags := append([]byte(nil), body...)
	binary.LittleEndian.PutUint16(badFlags[2:], 0x8000)
	cases["unknown flags"] = recrc(badFlags)

	trailing := append(append([]byte(nil), body[:len(body)-4]...), 0)
	cases["trailing byte"] = recrc(append(trailing, 0, 0, 0, 0)[:len(trailing)+4])

	hugePoint := append([]byte(nil), body...)
	binary.LittleEndian.PutUint16(hugePoint[16:], 60000)
	cases["hostile point length"] = recrc(hugePoint)

	closeBad := encode(t, &Frame{Type: TCloseResp, Seq: 1, Closed: true})[4:]
	closeBad = append([]byte(nil), closeBad...)
	closeBad[12] = 2
	cases["non-canonical bool"] = recrc(closeBad)

	for name, b := range cases {
		var f Frame
		if err := DecodeFrame(b, &f); err == nil {
			t.Errorf("%s: decode accepted %x", name, b)
		}
	}
}

// TestPolicyCanonicality pins the flag ⇔ non-empty invariant on both codec
// sides: the empty policy is spelled "no flag, no bytes", never "flag plus
// zero length", so pre-policy frames stay byte-identical and every encoding
// of a policy name is unique.
func TestPolicyCanonicality(t *testing.T) {
	if _, err := AppendFrame(nil, &Frame{Type: TOpenReq, Seq: 1, Flags: FlagPolicy,
		ID: []byte("c"), Resources: 3, RMin: 0.1, Seed: 1, Init: 5}); err == nil {
		t.Fatal("AppendFrame accepted FlagPolicy with empty policy")
	}
	long := bytes.Repeat([]byte("p"), 65)
	if _, err := AppendFrame(nil, &Frame{Type: TOpenReq, Seq: 1, Flags: FlagPolicy,
		ID: []byte("c"), Resources: 3, RMin: 0.1, Seed: 1, Init: 5, Policy: long}); err == nil {
		t.Fatal("AppendFrame accepted an oversize policy")
	}
	good := encode(t, &Frame{Type: TOpenReq, Seq: 1, Flags: FlagPolicy,
		ID: []byte("c"), Resources: 3, RMin: 0.1, Seed: 1, Init: 5, Policy: []byte("x")})
	body := append([]byte(nil), good[4:]...)
	// The policy field (u16 length + 1 byte) is the last thing before the
	// CRC; rewrite it as a zero-length payload with the flag still set.
	cut := append(body[:len(body)-4-3], 0, 0)
	var f Frame
	if err := DecodeFrame(recrc(append(cut, 0, 0, 0, 0)), &f); err == nil {
		t.Fatal("DecodeFrame accepted FlagPolicy with zero-length policy")
	}
}

// recrc rewrites the trailing CRC so a corruption test hits the field
// validation it targets instead of the checksum.
func recrc(b []byte) []byte {
	if len(b) < 4 {
		return b
	}
	body := b[:len(b)-4]
	sum := make([]byte, 4)
	binary.LittleEndian.PutUint32(sum, crc32IEEE(body))
	return append(append([]byte(nil), body...), sum...)
}

func crc32IEEE(b []byte) uint32 {
	tbl := makeCRCTable()
	crc := ^uint32(0)
	for _, v := range b {
		crc = tbl[byte(crc)^v] ^ (crc >> 8)
	}
	return ^crc
}

func makeCRCTable() *[256]uint32 {
	var tbl [256]uint32
	for i := range tbl {
		crc := uint32(i)
		for j := 0; j < 8; j++ {
			if crc&1 == 1 {
				crc = (crc >> 1) ^ 0xedb88320
			} else {
				crc >>= 1
			}
		}
		tbl[i] = crc
	}
	return &tbl
}

// TestReaderWriterStream pushes every sample frame through a Writer/Reader
// pair and checks clean EOF semantics at the stream boundary.
func TestReaderWriterStream(t *testing.T) {
	var buf bytes.Buffer
	wr := NewWriter(&buf)
	frames := sampleFrames()
	for i := range frames {
		if err := wr.WriteFrame(&frames[i]); err != nil {
			t.Fatalf("write %v: %v", frames[i].Type, err)
		}
	}
	rd := NewReader(&buf)
	var f Frame
	for i := range frames {
		if err := rd.Next(&f); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		assertFrameEqual(t, &frames[i], &f)
	}
	if err := rd.Next(&f); err != io.EOF {
		t.Fatalf("want io.EOF at stream end, got %v", err)
	}
}

// TestReaderPartialFrame checks a truncated tail surfaces as
// io.ErrUnexpectedEOF, not a clean EOF.
func TestReaderPartialFrame(t *testing.T) {
	b := encode(t, &Frame{Type: TSuggestReq, Seq: 1, ID: []byte("x")})
	rd := NewReader(bytes.NewReader(b[:len(b)-2]))
	var f Frame
	if err := rd.Next(&f); err != io.ErrUnexpectedEOF {
		t.Fatalf("want io.ErrUnexpectedEOF, got %v", err)
	}
}

// TestReaderRejectsOversizeLength checks the length prefix is bounded
// before any allocation.
func TestReaderRejectsOversizeLength(t *testing.T) {
	var pfx [4]byte
	binary.LittleEndian.PutUint32(pfx[:], uint32(MaxFrameBytes+1))
	rd := NewReader(bytes.NewReader(pfx[:]))
	var f Frame
	if err := rd.Next(&f); err == nil {
		t.Fatal("oversize length prefix accepted")
	}
}

// TestSteadyStateZeroAlloc proves the hot suggest/observe encode+decode
// path allocates nothing once buffers are warm — the codec-level guarantee
// behind the stream path's allocation budget, in the style of the bo
// PredictInto zero-alloc test.
func TestSteadyStateZeroAlloc(t *testing.T) {
	point := []float64{0.25, 0.5, 0.25, 0.75}
	req := Frame{Type: TObserveReq, ID: []byte("c0001"), Index: 3, Cost: -0.5, Point: point}
	sreq := Frame{Type: TSuggestReq, ID: []byte("c0001")}
	sresp := Frame{Type: TSuggestResp, Observations: 9, Point: point}

	buf := make([]byte, 0, 1024)
	var decoded Frame
	decoded.Point = make([]float64, 0, 8)

	var err error
	allocs := testing.AllocsPerRun(200, func() {
		for _, f := range []*Frame{&req, &sreq, &sresp} {
			buf, err = AppendFrame(buf[:0], f)
			if err != nil {
				t.Fatal(err)
			}
			if derr := DecodeFrame(buf[4:], &decoded); derr != nil {
				t.Fatal(derr)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state encode+decode made %v allocs/op, want 0", allocs)
	}
}

// TestReaderWriterSteadyStateZeroAlloc proves the framed io path is also
// allocation-free once the reader buffer and writer scratch are warm.
func TestReaderWriterSteadyStateZeroAlloc(t *testing.T) {
	var buf bytes.Buffer
	buf.Grow(1024)
	wr := NewWriter(&buf)
	rd := NewReader(&buf)
	req := Frame{Type: TSuggestReq, Seq: 1, ID: []byte("c0001")}
	var f Frame
	// Warm the internal buffers before counting.
	if err := wr.WriteFrame(&req); err != nil {
		t.Fatal(err)
	}
	if err := rd.Next(&f); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := wr.WriteFrame(&req); err != nil {
			t.Fatal(err)
		}
		if err := rd.Next(&f); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state framed io made %v allocs/op, want 0", allocs)
	}
}

// TestPooledCodecs checks Get/Put round-trips preserve nothing dangerous
// and rebind cleanly.
func TestPooledCodecs(t *testing.T) {
	var buf bytes.Buffer
	wr := GetWriter(&buf)
	if err := wr.WriteFrame(&Frame{Type: TCloseReq, Seq: 1, ID: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	PutWriter(wr)
	rd := GetReader(&buf)
	var f Frame
	if err := rd.Next(&f); err != nil {
		t.Fatal(err)
	}
	if f.Type != TCloseReq || string(f.ID) != "a" {
		t.Fatalf("pooled round trip mangled frame: %+v", f)
	}
	PutReader(rd)
}

func BenchmarkFrameEncodeSuggestResp(b *testing.B) {
	f := Frame{Type: TSuggestResp, Seq: 9, Observations: 12, Point: []float64{0.25, 0.5, 0.25, 0.75}}
	buf := make([]byte, 0, 256)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendFrame(buf[:0], &f)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameDecodeObserveReq(b *testing.B) {
	f := Frame{Type: TObserveReq, Seq: 9, ID: []byte("c0001"), Index: 3, Cost: -0.5, Point: []float64{0.25, 0.5, 0.25, 0.75}}
	buf, err := AppendFrame(nil, &f)
	if err != nil {
		b.Fatal(err)
	}
	var out Frame
	out.Point = make([]float64, 0, 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := DecodeFrame(buf[4:], &out); err != nil {
			b.Fatal(err)
		}
	}
}
