// Package wire is the compact deterministic binary codec for the session
// service's hot messages (DESIGN.md §14). Where the JSON POST path pays a
// full HTTP request plus marshal/unmarshal per suggest, the stream path
// moves little-endian length-prefixed frames over one persistent
// connection:
//
//	length  u32  bytes that follow (header + payload + crc)
//	version u8   wire protocol version (currently 1)
//	type    u8   frame type (Hello/Open/Suggest/Observe/Close/Error)
//	flags   u16  type-specific bits; unknown bits are rejected
//	seq     u64  request sequence echoed on the matching response
//	payload ...  type-specific, fixed layout (no varints, no maps)
//	crc     u32  IEEE CRC-32 of version..payload, as in the HBSS snapshots
//
// Floats travel as raw IEEE-754 bit patterns, so encode∘decode is bit-exact
// and the codec is canonical: every frame that decodes successfully
// re-encodes to byte-identical bytes (FuzzFrameDecode enforces this). The
// decoder is hardened against adversarial input — every length is checked
// against both its semantic bound and the bytes actually present before any
// use, and the CRC is verified before any field is trusted.
//
// The hot path is allocation-free: DecodeFrame aliases the caller-owned
// input buffer for byte-slice fields and reuses the Frame's Point capacity,
// AppendFrame appends into a caller-owned buffer, and Reader/Writer keep
// reusable scratch (pool one per stream via GetReader/GetWriter).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

// Version is the wire protocol version this package speaks. Hello frames
// negotiate it explicitly; every frame header carries it so a decoder can
// refuse a future layout loudly instead of misparsing it.
const Version = 1

// Type identifies a frame's layout and meaning.
type Type uint8

// Frame types. Requests are odd, their responses even, so a corrupted
// direction bit cannot silently turn one into the other.
const (
	THelloReq    Type = 1
	THelloResp   Type = 2
	TOpenReq     Type = 3
	TOpenResp    Type = 4
	TSuggestReq  Type = 5
	TSuggestResp Type = 6
	TObserveReq  Type = 7
	TObserveResp Type = 8
	TCloseReq    Type = 9
	TCloseResp   Type = 10
	TError       Type = 11
)

func (t Type) String() string {
	switch t {
	case THelloReq:
		return "HelloReq"
	case THelloResp:
		return "HelloResp"
	case TOpenReq:
		return "OpenReq"
	case TOpenResp:
		return "OpenResp"
	case TSuggestReq:
		return "SuggestReq"
	case TSuggestResp:
		return "SuggestResp"
	case TObserveReq:
		return "ObserveReq"
	case TObserveResp:
		return "ObserveResp"
	case TCloseReq:
		return "CloseReq"
	case TCloseResp:
		return "CloseResp"
	case TError:
		return "Error"
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// OpenReq flags.
const (
	// FlagPolicy marks an OpenReq carrying an explicit optimizer-policy
	// name after the fixed fields. The flag is set if and only if the name
	// is non-empty, so pre-arena frames (GP-EI default) stay byte-identical
	// and the codec stays canonical.
	FlagPolicy uint16 = 1 << 0
)

// OpenResp flags.
const (
	// FlagExisting marks an open that found the session already live with
	// identical parameters.
	FlagExisting uint16 = 1 << 0
	// FlagRestored marks an open satisfied from a durable snapshot.
	FlagRestored uint16 = 1 << 1
	// FlagEphemeral marks a session whose policy cannot snapshot: eviction
	// drops it and re-admission rebuilds via the client's full replay.
	FlagEphemeral uint16 = 1 << 2
)

// NoIndex is the ObserveReq index meaning "no idempotency information:
// always append". Indexed observes (the stream client's normal mode) let
// the server drop duplicate replays after a reconnect.
const NoIndex = ^uint32(0)

// Decoder armor bounds. Semantic validation (session-id length, domain
// dimensionality) stays server-side; these only cap what a hostile peer can
// make the decoder hold in memory.
const (
	headerLen = 12 // version u8 + type u8 + flags u16 + seq u64
	crcLen    = 4

	maxIDLen     = 256
	maxPointDim  = 1024
	maxMsgLen    = 1024
	maxPolicyLen = 64

	// MaxFrameBytes bounds one frame body (everything after the length
	// prefix). The largest legitimate frame — an ObserveReq at the session
	// tier's 64-resource ceiling — is under 1 KiB.
	MaxFrameBytes = headerLen + 16 + 2 + maxIDLen + 8*maxPointDim + crcLen
)

// Frame is the decoded form of any wire frame. One struct covers every
// type so a single instance can be reused across a stream's lifetime
// without allocation; only the fields of the decoded Type are meaningful.
// Byte-slice fields (ID, Evicted, Msg) alias the decode buffer — they are
// valid until the next Reader.Next or DecodeFrame call on that buffer.
type Frame struct {
	Type  Type
	Flags uint16
	Seq   uint64

	// Hello req/resp.
	Version uint16

	// OpenReq: ID, Resources, RMin, Seed, Init, and (under FlagPolicy) the
	// optimizer-policy name.
	// SuggestReq, CloseReq: ID.
	// ObserveReq: ID, Index, Cost, Point.
	ID        []byte
	Resources uint32
	RMin      float64
	Seed      uint64
	Init      uint32
	Policy    []byte
	Index     uint32
	Cost      float64
	Point     []float64

	// OpenResp: Observations, Evicted, FlagExisting/FlagRestored.
	// SuggestResp: Observations, Point. ObserveResp: Observations.
	Observations uint32
	Evicted      []byte

	// CloseResp.
	Closed bool

	// Error: an application-level failure for Seq's request. Status carries
	// the HTTP status code the JSON path would have sent, so both transports
	// share one error taxonomy; RetryAfterSec mirrors the Retry-After hint.
	Status        uint16
	RetryAfterSec uint32
	Msg           []byte
}

// Reset clears f to the zero frame while keeping Point's capacity for
// reuse.
func (f *Frame) Reset() {
	point := f.Point[:0]
	*f = Frame{Point: point}
}

// CopyFrom deep-copies src into f, reusing f's slice capacity where it can.
// DecodeFrame leaves byte and point fields aliasing the decode buffer; a
// frame that must outlive that buffer (a response handed across goroutines)
// is copied out through this.
func (f *Frame) CopyFrom(src *Frame) {
	point := append(f.Point[:0], src.Point...)
	id := append(f.ID[:0], src.ID...)
	evicted := append(f.Evicted[:0], src.Evicted...)
	msg := append(f.Msg[:0], src.Msg...)
	policy := append(f.Policy[:0], src.Policy...)
	*f = *src
	f.Point, f.ID, f.Evicted, f.Msg, f.Policy = point, id, evicted, msg, policy
}

// allowedFlags returns the flag bits a frame of type t may carry.
func allowedFlags(t Type) uint16 {
	switch t {
	case TOpenReq:
		return FlagPolicy
	case TOpenResp:
		return FlagExisting | FlagRestored | FlagEphemeral
	}
	return 0
}

// AppendFrame appends the complete length-prefixed encoding of f to dst and
// returns the extended slice. It allocates only when dst lacks capacity.
//
//hbo:codec frame encode
//hbo:noalloc
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if err := validateFrame(f); err != nil {
		return dst, err
	}
	if f.Type == TOpenReq && f.Flags&FlagPolicy != 0 && len(f.Policy) == 0 {
		// Flag ⇔ non-empty keeps the encoding canonical (the empty name is
		// spelled "no flag, no bytes", never "flag plus zero length").
		return dst, fmt.Errorf("wire: FlagPolicy set with empty policy name")
	}
	lenAt := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, 0) // patched below //codec:skip length prefix is framing; Reader strips it before DecodeFrame sees the buffer
	bodyAt := len(dst)
	dst = append(dst, Version, byte(f.Type))
	dst = binary.LittleEndian.AppendUint16(dst, f.Flags)
	dst = binary.LittleEndian.AppendUint64(dst, f.Seq)
	switch f.Type {
	case THelloReq, THelloResp:
		dst = binary.LittleEndian.AppendUint16(dst, f.Version)
	case TOpenReq:
		dst = appendBytes16(dst, f.ID)
		dst = binary.LittleEndian.AppendUint32(dst, f.Resources)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.RMin))
		dst = binary.LittleEndian.AppendUint64(dst, f.Seed)
		dst = binary.LittleEndian.AppendUint32(dst, f.Init)
		if f.Flags&FlagPolicy != 0 {
			dst = appendBytes16(dst, f.Policy)
		}
	case TOpenResp:
		dst = binary.LittleEndian.AppendUint32(dst, f.Observations)
		dst = appendBytes16(dst, f.Evicted)
	case TSuggestReq, TCloseReq:
		dst = appendBytes16(dst, f.ID)
	case TSuggestResp:
		dst = binary.LittleEndian.AppendUint32(dst, f.Observations)
		dst = appendPoint(dst, f.Point)
	case TObserveReq:
		dst = appendBytes16(dst, f.ID)
		dst = binary.LittleEndian.AppendUint32(dst, f.Index)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f.Cost))
		dst = appendPoint(dst, f.Point)
	case TObserveResp:
		dst = binary.LittleEndian.AppendUint32(dst, f.Observations)
	case TCloseResp:
		if f.Closed {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	case TError:
		dst = binary.LittleEndian.AppendUint16(dst, f.Status)
		dst = binary.LittleEndian.AppendUint32(dst, f.RetryAfterSec)
		dst = appendBytes16(dst, f.Msg)
	}
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(dst[bodyAt:]))
	binary.LittleEndian.PutUint32(dst[lenAt:], uint32(len(dst)-bodyAt))
	return dst, nil
}

// validateFrame rejects frames the canonical encoding cannot represent.
func validateFrame(f *Frame) error {
	switch f.Type {
	case THelloReq, THelloResp, TOpenReq, TOpenResp, TSuggestReq, TSuggestResp,
		TObserveReq, TObserveResp, TCloseReq, TCloseResp, TError:
	default:
		return fmt.Errorf("wire: unknown frame type %d", f.Type)
	}
	if f.Flags&^allowedFlags(f.Type) != 0 {
		return fmt.Errorf("wire: flags %04x invalid for %v", f.Flags, f.Type)
	}
	if len(f.ID) > maxIDLen {
		return fmt.Errorf("wire: id of %d bytes over %d", len(f.ID), maxIDLen)
	}
	if len(f.Evicted) > maxIDLen {
		return fmt.Errorf("wire: evicted id of %d bytes over %d", len(f.Evicted), maxIDLen)
	}
	if len(f.Msg) > maxMsgLen {
		return fmt.Errorf("wire: message of %d bytes over %d", len(f.Msg), maxMsgLen)
	}
	if len(f.Point) > maxPointDim {
		return fmt.Errorf("wire: point of %d dims over %d", len(f.Point), maxPointDim)
	}
	if len(f.Policy) > maxPolicyLen {
		return fmt.Errorf("wire: policy name of %d bytes over %d", len(f.Policy), maxPolicyLen)
	}
	return nil
}

func appendBytes16(dst, b []byte) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(b)))
	return append(dst, b...)
}

func appendPoint(dst []byte, p []float64) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(p)))
	for _, v := range p {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// frameReader is a bounds-checked cursor over one untrusted frame body.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: "+format, args...)
	}
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.b)-r.off < n {
		r.fail("truncated at offset %d (need %d of %d remaining)", r.off, n, len(r.b)-r.off)
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *frameReader) u8() uint8 {
	if p := r.take(1); p != nil {
		return p[0]
	}
	return 0
}

func (r *frameReader) u16() uint16 {
	if p := r.take(2); p != nil {
		return binary.LittleEndian.Uint16(p)
	}
	return 0
}

func (r *frameReader) u32() uint32 {
	if p := r.take(4); p != nil {
		return binary.LittleEndian.Uint32(p)
	}
	return 0
}

func (r *frameReader) u64() uint64 {
	if p := r.take(8); p != nil {
		return binary.LittleEndian.Uint64(p)
	}
	return 0
}

func (r *frameReader) f64() float64 { return math.Float64frombits(r.u64()) }

// bytes16 reads a u16-prefixed byte string, aliasing the input buffer.
func (r *frameReader) bytes16(what string, limit int) []byte {
	n := int(r.u16())
	if r.err == nil && n > limit {
		r.fail("%s of %d bytes over %d", what, n, limit)
		return nil
	}
	return r.take(n)
}

// point reads a u16-prefixed float vector into dst's capacity.
func (r *frameReader) point(dst []float64) []float64 {
	n := int(r.u16())
	if r.err != nil {
		return dst[:0]
	}
	if n > maxPointDim {
		r.fail("point of %d dims over %d", n, maxPointDim)
		return dst[:0]
	}
	if len(r.b)-r.off < 8*n {
		r.fail("truncated point of %d dims at offset %d", n, r.off)
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	for i := range dst {
		dst[i] = r.f64()
	}
	return dst
}

// DecodeFrame parses one frame body (the bytes after the length prefix)
// into f. Byte-slice fields of f alias buf; Point reuses f's existing
// capacity. It never panics on hostile input: the CRC is checked before any
// field is trusted, every length against the bytes actually present, and
// any accepted frame re-encodes to exactly buf (canonical codec).
//
//hbo:codec frame decode
//hbo:noalloc
func DecodeFrame(buf []byte, f *Frame) error {
	if len(buf) < headerLen+crcLen {
		return fmt.Errorf("wire: %d-byte frame shorter than any valid frame", len(buf))
	}
	if len(buf) > MaxFrameBytes {
		return fmt.Errorf("wire: %d-byte frame over the %d-byte bound", len(buf), MaxFrameBytes)
	}
	body, tail := buf[:len(buf)-crcLen], buf[len(buf)-crcLen:]
	if got, want := binary.LittleEndian.Uint32(tail), crc32.ChecksumIEEE(body); got != want {
		return fmt.Errorf("wire: frame CRC mismatch (got %08x want %08x)", got, want)
	}
	r := &frameReader{b: body}
	if v := r.u8(); v != Version {
		return fmt.Errorf("wire: unsupported frame version %d", v)
	}
	f.Reset()
	f.Type = Type(r.u8())
	f.Flags = r.u16()
	f.Seq = r.u64()
	if err := validateFrame(f); err != nil {
		return err
	}
	switch f.Type {
	case THelloReq, THelloResp:
		f.Version = r.u16()
	case TOpenReq:
		f.ID = r.bytes16("id", maxIDLen)
		f.Resources = r.u32()
		f.RMin = r.f64()
		f.Seed = r.u64()
		f.Init = r.u32()
		if f.Flags&FlagPolicy != 0 {
			f.Policy = r.bytes16("policy", maxPolicyLen)
			if r.err == nil && len(f.Policy) == 0 {
				return fmt.Errorf("wire: FlagPolicy set with empty policy name")
			}
		}
	case TOpenResp:
		f.Observations = r.u32()
		f.Evicted = r.bytes16("evicted id", maxIDLen)
	case TSuggestReq, TCloseReq:
		f.ID = r.bytes16("id", maxIDLen)
	case TSuggestResp:
		f.Observations = r.u32()
		f.Point = r.point(f.Point)
	case TObserveReq:
		f.ID = r.bytes16("id", maxIDLen)
		f.Index = r.u32()
		f.Cost = r.f64()
		f.Point = r.point(f.Point)
	case TObserveResp:
		f.Observations = r.u32()
	case TCloseResp:
		switch r.u8() {
		case 0:
			f.Closed = false
		case 1:
			f.Closed = true
		default:
			if r.err == nil {
				return fmt.Errorf("wire: non-canonical CloseResp bool")
			}
		}
	case TError:
		f.Status = r.u16()
		f.RetryAfterSec = r.u32()
		f.Msg = r.bytes16("message", maxMsgLen)
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.b) {
		return fmt.Errorf("wire: %d trailing bytes after %v frame", len(r.b)-r.off, f.Type)
	}
	return nil
}

// MalformedError marks a codec-level rejection from Reader.Next — a frame
// the peer encoded wrong (length prefix out of bounds, CRC mismatch, layout
// violation) as opposed to an I/O error reading the stream. The distinction
// matters to servers: a malformed frame is peer corruption worth counting
// and alerting on, while a dropped connection mid-frame is ordinary churn.
type MalformedError struct{ Err error }

func (e *MalformedError) Error() string { return e.Err.Error() }
func (e *MalformedError) Unwrap() error { return e.Err }

// IsMalformed reports whether err is a codec-level rejection.
func IsMalformed(err error) bool {
	var me *MalformedError
	return errors.As(err, &me)
}

// Reader decodes a stream of length-prefixed frames from r, reusing one
// internal buffer across frames. Frames decoded by Next alias that buffer,
// so each frame must be consumed before the next call.
type Reader struct {
	r      io.Reader
	prefix [4]byte
	buf    []byte
}

// NewReader builds a frame reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Reset rebinds the reader to a new stream, keeping its buffer.
func (rd *Reader) Reset(r io.Reader) { rd.r = r }

// Next reads and decodes one frame into f. io.EOF at a frame boundary is
// returned as-is (clean end of stream); any partial frame surfaces as
// io.ErrUnexpectedEOF.
func (rd *Reader) Next(f *Frame) error {
	if _, err := io.ReadFull(rd.r, rd.prefix[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint32(rd.prefix[:])
	if n < headerLen+crcLen || n > MaxFrameBytes {
		return &MalformedError{Err: fmt.Errorf("wire: frame length %d outside [%d,%d]", n, headerLen+crcLen, MaxFrameBytes)}
	}
	if cap(rd.buf) < int(n) {
		rd.buf = make([]byte, n)
	}
	rd.buf = rd.buf[:n]
	if _, err := io.ReadFull(rd.r, rd.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return err
	}
	if err := DecodeFrame(rd.buf, f); err != nil {
		return &MalformedError{Err: err}
	}
	return nil
}

// Writer encodes frames onto w through one reusable scratch buffer. Not
// safe for concurrent use; callers serialize (the stream client under its
// connection mutex, the server on its single writer goroutine).
type Writer struct {
	w       io.Writer
	scratch []byte
}

// NewWriter builds a frame writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Reset rebinds the writer to a new stream, keeping its scratch.
func (wr *Writer) Reset(w io.Writer) { wr.w = w }

// WriteFrame encodes f and writes the length-prefixed frame in one Write
// call (one syscall on an unbuffered conn, one copy on a bufio.Writer).
func (wr *Writer) WriteFrame(f *Frame) error {
	b, err := AppendFrame(wr.scratch[:0], f)
	if err != nil {
		return err
	}
	wr.scratch = b[:0]
	_, err = wr.w.Write(b)
	return err
}

// readerPool and writerPool recycle per-stream codec state, so opening a
// session stream does not re-grow fresh scratch buffers each time.
var readerPool = sync.Pool{New: func() any { return &Reader{} }}
var writerPool = sync.Pool{New: func() any { return &Writer{} }}

// GetReader fetches a pooled frame reader bound to r.
func GetReader(r io.Reader) *Reader {
	rd := readerPool.Get().(*Reader)
	rd.Reset(r)
	return rd
}

// PutReader returns a reader to the pool; the caller must not use it again.
func PutReader(rd *Reader) {
	rd.Reset(nil)
	readerPool.Put(rd)
}

// GetWriter fetches a pooled frame writer bound to w.
func GetWriter(w io.Writer) *Writer {
	wr := writerPool.Get().(*Writer)
	wr.Reset(w)
	return wr
}

// PutWriter returns a writer to the pool; the caller must not use it again.
func PutWriter(wr *Writer) {
	wr.Reset(nil)
	writerPool.Put(wr)
}
