package wire

import (
	"bytes"
	"testing"
)

// FuzzFrameDecode throws arbitrary bytes at the frame decoder. Two
// invariants: the decoder never panics whatever the input, and any input it
// accepts re-encodes to byte-identical bytes (the canonical-codec
// invariant — there is exactly one wire representation of every frame, so a
// proxy or store can re-frame traffic without changing it).
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		b, err := AppendFrame(nil, &fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b[4:]) // frame body without the length prefix
	}
	// Hostile shapes: truncations, zero bytes, a huge length field.
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, 16))
	f.Add([]byte{1, 5, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, body []byte) {
		var fr Frame
		if err := DecodeFrame(body, &fr); err != nil {
			return
		}
		re, err := AppendFrame(nil, &fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v (%+v)", err, fr)
		}
		if !bytes.Equal(re[4:], body) {
			t.Fatalf("decode not canonical:\n   in: %x\nre-out: %x", body, re[4:])
		}
		// Decoding the re-encoded frame must agree with itself (fixpoint).
		var again Frame
		if err := DecodeFrame(re[4:], &again); err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
	})
}
