package sessiond_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/mesh"
)

// stubDecimator fabricates a tiny valid mesh and counts calls, so cache
// hits are observable as calls that never reach it.
type stubDecimator struct {
	calls int
	fail  bool
}

func (d *stubDecimator) Decimate(object string, ratio float64, fast bool) (*mesh.Mesh, error) {
	d.calls++
	if d.fail {
		return nil, fmt.Errorf("stub: no such object %q", object)
	}
	return &mesh.Mesh{
		Vertices: []mesh.Vec3{
			{X: 0, Y: 0, Z: 0},
			{X: 1, Y: 0, Z: 0},
			{X: 0, Y: 1, Z: 0},
		},
		Triangles: []mesh.Triangle{{0, 1, 2}},
	}, nil
}

func newDecimatorService(t *testing.T, dec sessiond.Decimator) (*sessiond.Service, *httptest.Server) {
	t.Helper()
	cfg := sessiond.DefaultConfig()
	cfg.Shards = 1
	svc, err := sessiond.New(cfg, dec)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(svc.Close)
	return svc, ts
}

// TestSessionDecimateCaching drives the per-session mesh cache: a repeated
// (object, ratio) hits the cache, a new ratio misses, and quantization maps
// near-identical ratios onto one cache entry.
func TestSessionDecimateCaching(t *testing.T) {
	dec := &stubDecimator{}
	_, ts := newDecimatorService(t, dec)
	ctx := context.Background()
	sc := newTestClient(t, ts.URL, "meshy", 5)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	m, err := sc.Decimate(ctx, "cube", 0.5, false)
	if err != nil {
		t.Fatalf("decimate: %v", err)
	}
	if m.TriangleCount() != 1 {
		t.Fatalf("triangles = %d, want 1", m.TriangleCount())
	}
	if dec.calls != 1 {
		t.Fatalf("decimator calls = %d, want 1", dec.calls)
	}
	// Same ratio again: served from the session cache.
	if _, err := sc.Decimate(ctx, "cube", 0.5, false); err != nil {
		t.Fatalf("decimate (cached): %v", err)
	}
	if dec.calls != 1 {
		t.Fatalf("decimator calls after repeat = %d, want 1 (cache miss leaked through)", dec.calls)
	}
	// A ratio inside the same 2% quantization step shares the entry.
	if _, err := sc.Decimate(ctx, "cube", 0.501, false); err != nil {
		t.Fatalf("decimate (quantized): %v", err)
	}
	if dec.calls != 1 {
		t.Fatalf("decimator calls after quantized repeat = %d, want 1", dec.calls)
	}
	// A genuinely different ratio misses.
	if _, err := sc.Decimate(ctx, "cube", 0.25, false); err != nil {
		t.Fatalf("decimate (new ratio): %v", err)
	}
	if dec.calls != 2 {
		t.Fatalf("decimator calls after new ratio = %d, want 2", dec.calls)
	}
	// The fast path is a distinct cache identity.
	if _, err := sc.Decimate(ctx, "cube", 0.25, true); err != nil {
		t.Fatalf("decimate (fast): %v", err)
	}
	if dec.calls != 3 {
		t.Fatalf("decimator calls after fast variant = %d, want 3", dec.calls)
	}
}

// TestDecimateErrors covers the decimate route's failure surface.
func TestDecimateErrors(t *testing.T) {
	ctx := context.Background()
	t.Run("no decimator attached", func(t *testing.T) {
		_, ts := newDecimatorService(t, nil)
		sc := newTestClient(t, ts.URL, "s", 1)
		if _, err := sc.Open(ctx); err != nil {
			t.Fatalf("open: %v", err)
		}
		_, err := sc.Decimate(ctx, "cube", 0.5, false)
		if code, ok := edge.StatusCode(err); !ok || code != http.StatusNotImplemented {
			t.Fatalf("decimate without decimator = %v, want 501", err)
		}
	})
	t.Run("unknown session", func(t *testing.T) {
		_, ts := newDecimatorService(t, &stubDecimator{})
		sc := newTestClient(t, ts.URL, "ghost", 1)
		_, err := sc.Decimate(ctx, "cube", 0.5, false)
		if code, ok := edge.StatusCode(err); !ok || code != http.StatusNotFound {
			t.Fatalf("decimate on unknown session = %v, want 404", err)
		}
	})
	t.Run("invalid ratio", func(t *testing.T) {
		_, ts := newDecimatorService(t, &stubDecimator{})
		sc := newTestClient(t, ts.URL, "s", 1)
		if _, err := sc.Open(ctx); err != nil {
			t.Fatalf("open: %v", err)
		}
		for _, ratio := range []float64{0, -0.5, 1.5} {
			_, err := sc.Decimate(ctx, "cube", ratio, false)
			if code, ok := edge.StatusCode(err); !ok || code != http.StatusBadRequest {
				t.Fatalf("decimate ratio %v = %v, want 400", ratio, err)
			}
		}
	})
	t.Run("decimator failure", func(t *testing.T) {
		_, ts := newDecimatorService(t, &stubDecimator{fail: true})
		sc := newTestClient(t, ts.URL, "s", 1)
		if _, err := sc.Open(ctx); err != nil {
			t.Fatalf("open: %v", err)
		}
		_, err := sc.Decimate(ctx, "nosuch", 0.5, false)
		if code, ok := edge.StatusCode(err); !ok || code != http.StatusNotFound {
			t.Fatalf("decimate of unknown object = %v, want 404", err)
		}
	})
}

// TestStatzAndObserveValidation covers /session/statz and the observe
// route's input validation.
func TestStatzAndObserveValidation(t *testing.T) {
	svc, ts := newDecimatorService(t, nil)
	_ = svc
	ctx := context.Background()
	sc := newTestClient(t, ts.URL, "s", 1)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}

	resp, err := http.Get(ts.URL + "/session/statz")
	if err != nil {
		t.Fatalf("statz: %v", err)
	}
	defer resp.Body.Close()
	var stats sessiond.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatalf("statz decode: %v", err)
	}
	if stats.Sessions != 1 || len(stats.Shards) != 1 {
		t.Fatalf("statz = %+v, want 1 session in 1 shard", stats)
	}

	ec, err := edge.NewClient(ts.URL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	point, err := sc.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest: %v", err)
	}
	// A point outside the domain is a 422.
	var oresp sessiond.ObserveResponse
	err = ec.PostJSON(ctx, "/session/observe", sessiond.ObserveRequest{ID: "s", Point: []float64{-1, -1, -1, -1}, Cost: 0.5}, &oresp)
	if code, ok := edge.StatusCode(err); !ok || code != http.StatusUnprocessableEntity {
		t.Fatalf("observe out-of-domain = %v, want 422", err)
	}
	// Unknown session observe is a 404.
	err = ec.PostJSON(ctx, "/session/observe", sessiond.ObserveRequest{ID: "ghost", Point: point, Cost: 0.5}, &oresp)
	if code, ok := edge.StatusCode(err); !ok || code != http.StatusNotFound {
		t.Fatalf("observe unknown session = %v, want 404", err)
	}
	// Close is idempotent in outcome reporting.
	if err := sc.CloseSession(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	err = ec.PostJSON(ctx, "/session/close", sessiond.CloseRequest{ID: "s"}, &struct {
		Closed bool `json:"closed"`
	}{})
	if err != nil {
		t.Fatalf("double close: %v", err)
	}
}
