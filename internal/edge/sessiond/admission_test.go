package sessiond

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/mar-hbo/hbo/internal/edge"
)

// stalledService builds a Service whose shard workers are never started, so
// enqueued suggests sit in the queue forever — the deterministic way to
// exercise the admission controller without racing a real worker.
func stalledService(t *testing.T, queueBound, retryAfterSec int) *Service {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Shards = 1
	cfg.QueueBound = queueBound
	cfg.RetryAfterSec = retryAfterSec
	if err := cfg.validate(); err != nil {
		t.Fatalf("config: %v", err)
	}
	return &Service{
		cfg: cfg,
		shards: []*shard{{
			sessions: make(map[string]*session),
			queue:    make(chan *suggestJob, cfg.QueueBound),
		}},
	}
}

// TestAdmissionQueueBound checks, across bounds, that exactly QueueBound
// suggests are admitted and the next is rejected.
func TestAdmissionQueueBound(t *testing.T) {
	cases := []struct {
		name  string
		bound int
	}{
		{"bound 1", 1},
		{"bound 4", 4},
		{"bound 32", 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			svc := stalledService(t, tc.bound, 1)
			sess, _, err := svc.open("a", testParams(1))
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			for i := 0; i < tc.bound; i++ {
				job := &suggestJob{sess: sess, reply: make(chan suggestResult, 1)}
				if !svc.enqueueSuggest(sess, job) {
					t.Fatalf("enqueue %d rejected below the bound %d", i, tc.bound)
				}
			}
			job := &suggestJob{sess: sess, reply: make(chan suggestResult, 1)}
			if svc.enqueueSuggest(sess, job) {
				t.Fatalf("enqueue beyond bound %d admitted", tc.bound)
			}
		})
	}
}

// fillQueue saturates the single shard's suggest queue.
func fillQueue(t *testing.T, svc *Service, sess *session) {
	t.Helper()
	for i := 0; i < svc.cfg.QueueBound; i++ {
		if !svc.enqueueSuggest(sess, &suggestJob{sess: sess, reply: make(chan suggestResult, 1)}) {
			t.Fatalf("queue filled early at %d of %d", i, svc.cfg.QueueBound)
		}
	}
}

// TestAdmissionRejectHTTP checks the HTTP face of a rejection: 503 with the
// configured Retry-After hint in whole seconds.
func TestAdmissionRejectHTTP(t *testing.T) {
	const retryAfterSec = 3
	svc := stalledService(t, 2, retryAfterSec)
	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillQueue(t, svc, sess)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	ec, err := edge.NewClient(ts.URL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	var resp SuggestResponse
	err = ec.PostJSON(context.Background(), "/session/suggest", SuggestRequest{ID: "a"}, &resp)
	if err == nil {
		t.Fatal("suggest against a full queue succeeded, want 503")
	}
	code, ok := edge.StatusCode(err)
	if !ok || code != 503 {
		t.Fatalf("suggest error = %v, want status 503", err)
	}
	if svc.metRejects != nil {
		t.Fatal("sanity: no registry attached, counters must be nil")
	}
}

// TestClientHonorsRetryAfter checks that the edge client's retry loop
// stretches its backoff to the admission controller's Retry-After hint when
// the hint exceeds the computed exponential delay.
func TestClientHonorsRetryAfter(t *testing.T) {
	const retryAfterSec = 2
	svc := stalledService(t, 1, retryAfterSec)
	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillQueue(t, svc, sess)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var slept []time.Duration
	cfg := edge.DefaultClientConfig()
	cfg.MaxRetries = 2
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 10 * time.Second
	cfg.Sleep = func(d time.Duration) { slept = append(slept, d) }
	ec, err := edge.NewClientWithConfig(ts.URL, 4, cfg)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	var resp SuggestResponse
	err = ec.PostJSON(context.Background(), "/session/suggest", SuggestRequest{ID: "a"}, &resp)
	if code, ok := edge.StatusCode(err); !ok || code != 503 {
		t.Fatalf("suggest = %v, want terminal 503", err)
	}
	if len(slept) != cfg.MaxRetries {
		t.Fatalf("client slept %d times, want %d", len(slept), cfg.MaxRetries)
	}
	for i, d := range slept {
		if d != retryAfterSec*time.Second {
			t.Fatalf("backoff %d = %v, want the Retry-After hint %v (computed exponential "+
				"delay from a %v base must be overridden)", i, d, retryAfterSec*time.Second, cfg.BackoffBase)
		}
	}
}

// TestBreakerOpensOnSustainedRejects checks the interaction between the
// admission controller and the client's circuit breaker: enough consecutive
// 503 rejections open the circuit, after which calls fail fast with
// ErrUnavailable without reaching the server.
func TestBreakerOpensOnSustainedRejects(t *testing.T) {
	svc := stalledService(t, 1, 1)
	sess, _, err := svc.open("a", testParams(1))
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	fillQueue(t, svc, sess)

	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const threshold = 3
	cfg := edge.DefaultClientConfig()
	cfg.MaxRetries = 0
	cfg.BreakerFailureThreshold = threshold
	cfg.Sleep = func(time.Duration) {}
	ec, err := edge.NewClientWithConfig(ts.URL, 4, cfg)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < threshold; i++ {
		var resp SuggestResponse
		err := ec.PostJSON(ctx, "/session/suggest", SuggestRequest{ID: "a"}, &resp)
		if code, ok := edge.StatusCode(err); !ok || code != 503 {
			t.Fatalf("reject %d = %v, want 503", i, err)
		}
	}
	if ec.Available() {
		t.Fatalf("circuit still closed after %d consecutive rejections", threshold)
	}
	var resp SuggestResponse
	err = ec.PostJSON(ctx, "/session/suggest", SuggestRequest{ID: "a"}, &resp)
	if !errors.Is(err, edge.ErrUnavailable) {
		t.Fatalf("call with open circuit = %v, want ErrUnavailable", err)
	}
}
