package sessiond_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
)

// newStreamService spins up a service plus HTTP server shaped like the
// integration suite's.
func newStreamService(t *testing.T) (*sessiond.Service, *httptest.Server) {
	t.Helper()
	svc, err := sessiond.New(sessiond.Config{
		Shards:           4,
		SessionsPerShard: 32,
		QueueBound:       128,
		RetryAfterSec:    1,
		MaxBatch:         8,
		MeshCacheCap:     2,
	}, nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// attachStream gives a session client a stream transport of its own.
func attachStream(t *testing.T, sc *sessiond.Client, ec *edge.Client) *sessiond.StreamClient {
	t.Helper()
	stream, err := sessiond.NewStreamClient(ec)
	if err != nil {
		t.Fatalf("stream client: %v", err)
	}
	sc.SetStream(stream)
	t.Cleanup(func() { _ = stream.Close() })
	return stream
}

func newStreamedClient(t *testing.T, baseURL, id string, seed uint64) (*sessiond.Client, *sessiond.StreamClient, *edge.Client) {
	t.Helper()
	ec, err := edge.NewClient(baseURL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	sc, err := sessiond.NewClient(ec, id, testResources, testRMin, seed, testInit)
	if err != nil {
		t.Fatalf("session client: %v", err)
	}
	return sc, attachStream(t, sc, ec), ec
}

// driveSession runs steps suggest→observe rounds against a reference
// optimizer, failing on the first bitwise divergence.
func driveSession(t *testing.T, ctx context.Context, sc *sessiond.Client, seed uint64, from, to int) {
	t.Helper()
	ref := refOptimizer(t, seed)
	refPoints := make([][]float64, 0, to)
	for k := 0; k < to; k++ {
		want, err := ref.Next()
		if err != nil {
			t.Fatalf("reference next %d: %v", k, err)
		}
		refPoints = append(refPoints, want)
		if k < from {
			// Catch the reference up to where the server session already is.
			if err := ref.Observe(want, testCost(seed, k, want)); err != nil {
				t.Fatalf("reference observe %d: %v", k, err)
			}
			continue
		}
		got, err := sc.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d: %v", k, err)
		}
		for d := range want {
			if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
				t.Fatalf("step %d dim %d: got %x want %x", k, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
			}
		}
		cost := testCost(seed, k, want)
		if err := sc.ObserveAt(ctx, k, want, cost); err != nil {
			t.Fatalf("observe %d: %v", k, err)
		}
		if err := ref.Observe(want, cost); err != nil {
			t.Fatalf("reference observe %d: %v", k, err)
		}
	}
	_ = refPoints
}

// TestStreamMatchesJSONBitIdentical drives two same-seeded sessions through
// the same server, one over JSON POSTs and one over the binary stream, and
// requires bitwise-identical suggestion trajectories — the stream transport
// must be a pure transport swap, invisible to the optimizer.
func TestStreamMatchesJSONBitIdentical(t *testing.T) {
	_, ts := newStreamService(t)
	ctx := context.Background()
	const seed = 4242
	const steps = 8

	jsonClient := newTestClient(t, ts.URL, "wire-json", seed)
	if _, err := jsonClient.Open(ctx); err != nil {
		t.Fatalf("json open: %v", err)
	}
	streamClient, stream, _ := newStreamedClient(t, ts.URL, "wire-stream", seed)
	if _, err := streamClient.Open(ctx); err != nil {
		t.Fatalf("stream open: %v", err)
	}

	refJSON := refOptimizer(t, seed)
	for k := 0; k < steps; k++ {
		pj, err := jsonClient.Suggest(ctx)
		if err != nil {
			t.Fatalf("json suggest %d: %v", k, err)
		}
		ps, err := streamClient.Suggest(ctx)
		if err != nil {
			t.Fatalf("stream suggest %d: %v", k, err)
		}
		want, err := refJSON.Next()
		if err != nil {
			t.Fatalf("reference %d: %v", k, err)
		}
		for d := range want {
			wb := math.Float64bits(want[d])
			if math.Float64bits(pj[d]) != wb {
				t.Fatalf("json step %d dim %d diverged from reference", k, d)
			}
			if math.Float64bits(ps[d]) != wb {
				t.Fatalf("stream step %d dim %d: got %x want %x", k, d, math.Float64bits(ps[d]), wb)
			}
		}
		cost := testCost(seed, k, want)
		if err := jsonClient.Observe(ctx, want, cost); err != nil {
			t.Fatalf("json observe %d: %v", k, err)
		}
		if err := streamClient.ObserveAt(ctx, k, want, cost); err != nil {
			t.Fatalf("stream observe %d: %v", k, err)
		}
		if err := refJSON.Observe(want, cost); err != nil {
			t.Fatalf("reference observe %d: %v", k, err)
		}
	}
	if got := stream.Mode(); got != "stream" {
		t.Fatalf("stream client negotiated mode %q, want stream", got)
	}
	if err := streamClient.CloseSession(ctx); err != nil {
		t.Fatalf("stream close: %v", err)
	}
}

// TestStreamFallbackOldServer points a stream-enabled client at a server
// without the /session/stream route (an old binary: its mux 404s unknown
// paths). Every call must transparently fall back to JSON, the negotiated
// mode must latch to "json", and — critically — the failed probe must not
// trip the circuit breaker, because a missing route is not link failure.
func TestStreamFallbackOldServer(t *testing.T) {
	svc, err := sessiond.New(sessiond.DefaultConfig(), nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	defer svc.Close()
	full := svc.Handler()
	oldServer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/session/stream" {
			http.NotFound(w, r)
			return
		}
		full.ServeHTTP(w, r)
	}))
	defer oldServer.Close()

	ctx := context.Background()
	const seed = 99
	sc, stream, ec := newStreamedClient(t, oldServer.URL, "old-srv", seed)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open via fallback: %v", err)
	}
	driveSession(t, ctx, sc, seed, 0, 4)
	if err := sc.CloseSession(ctx); err != nil {
		t.Fatalf("close via fallback: %v", err)
	}
	if got := stream.Mode(); got != "json" {
		t.Fatalf("negotiated mode %q, want json", got)
	}
	bs := ec.BreakerStats()
	if bs.State != edge.BreakerClosed {
		t.Fatalf("breaker state %v after fallback, want closed", bs.State)
	}
	if bs.ShortCircuits != 0 {
		t.Fatalf("breaker short-circuited %d calls during fallback", bs.ShortCircuits)
	}
	// "No stream route" is a property of the server, not link sickness: the
	// probe must not register breaker failures at all.
	if bs.Failures != 0 {
		t.Fatalf("fallback recorded %d breaker failures, want 0", bs.Failures)
	}
}

// TestJSONClientAgainstStreamServer pins the other compatibility direction:
// a plain JSON client (no stream attached) against a stream-capable server.
func TestJSONClientAgainstStreamServer(t *testing.T) {
	_, ts := newStreamService(t)
	ctx := context.Background()
	sc := newTestClient(t, ts.URL, "json-only", 7)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	driveSession(t, ctx, sc, 7, 0, 3)
	if err := sc.CloseSession(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestStreamReconnectAfterDrop severs every live connection mid-session and
// checks the stream client transparently redials: the trajectory continues
// bit-identically (the indexed observes make retries exactly-once) and the
// breaker ends the run closed.
func TestStreamReconnectAfterDrop(t *testing.T) {
	_, ts := newStreamService(t)
	ctx := context.Background()
	const seed = 31337
	sc, stream, ec := newStreamedClient(t, ts.URL, "dropper", seed)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	ref := refOptimizer(t, seed)
	for k := 0; k < 10; k++ {
		if k == 3 || k == 7 {
			// Sever every connection the server holds — the stream dies
			// between calls, exactly like an edge network drop.
			ts.CloseClientConnections()
		}
		got, err := sc.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d after drop: %v", k, err)
		}
		want, err := ref.Next()
		if err != nil {
			t.Fatalf("reference %d: %v", k, err)
		}
		for d := range want {
			if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
				t.Fatalf("step %d dim %d diverged after reconnect", k, d)
			}
		}
		cost := testCost(seed, k, want)
		if err := sc.ObserveAt(ctx, k, want, cost); err != nil {
			t.Fatalf("observe %d after drop: %v", k, err)
		}
		if err := ref.Observe(want, cost); err != nil {
			t.Fatalf("reference observe %d: %v", k, err)
		}
	}
	if got := stream.Mode(); got != "stream" {
		t.Fatalf("mode %q after reconnects, want stream — a drop must not demote to JSON", got)
	}
	if bs := ec.BreakerStats(); bs.State != edge.BreakerClosed {
		t.Fatalf("breaker state %v after reconnects, want closed", bs.State)
	}
}

// TestStreamDuplicateObserveAcked replays an already-applied indexed observe
// — what a reconnect retry does when the first send landed but its response
// was lost — and requires the server to acknowledge without double-applying.
func TestStreamDuplicateObserveAcked(t *testing.T) {
	_, ts := newStreamService(t)
	ctx := context.Background()
	const seed = 555
	sc, stream, _ := newStreamedClient(t, ts.URL, "dup", seed)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	point, err := sc.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest: %v", err)
	}
	resp, err := stream.Observe(ctx, "dup", 0, point, 0.25)
	if err != nil {
		t.Fatalf("first observe: %v", err)
	}
	if resp.Observations != 1 {
		t.Fatalf("first observe: server holds %d observations, want 1", resp.Observations)
	}
	// The replay: same index, same payload. Must ack, not append.
	resp, err = stream.Observe(ctx, "dup", 0, point, 0.25)
	if err != nil {
		t.Fatalf("replayed observe: %v", err)
	}
	if resp.Observations != 1 {
		t.Fatalf("replayed observe appended: server holds %d observations, want 1", resp.Observations)
	}
	// A gap — index beyond the database — must be rejected, not applied.
	if _, err := stream.Observe(ctx, "dup", 5, point, 0.25); err == nil {
		t.Fatal("gapped observe index accepted")
	}
	// The session must still be coherent: reference fed the point once.
	ref := refOptimizer(t, seed)
	refP, err := ref.Next()
	if err != nil {
		t.Fatalf("reference next: %v", err)
	}
	if err := ref.Observe(refP, 0.25); err != nil {
		t.Fatalf("reference observe: %v", err)
	}
	got, err := sc.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest after replay: %v", err)
	}
	want, err := ref.Next()
	if err != nil {
		t.Fatalf("reference next 2: %v", err)
	}
	for d := range want {
		if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
			t.Fatalf("dim %d diverged after duplicate observe — double-applied?", d)
		}
	}
}

// TestStreamMultiplexSharedClient runs 16 sessions concurrently over ONE
// stream client (one connection) and requires every session's suggestion
// stream to match its private reference — multiplexing must not leak or
// reorder responses across sessions.
func TestStreamMultiplexSharedClient(t *testing.T) {
	_, ts := newStreamService(t)
	ec, err := edge.NewClient(ts.URL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	shared, err := sessiond.NewStreamClient(ec)
	if err != nil {
		t.Fatalf("stream client: %v", err)
	}
	defer func() { _ = shared.Close() }()

	ctx := context.Background()
	const sessions = 16
	const steps = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("mux-%02d", i)
			seed := uint64(9000 + i)
			sc, err := sessiond.NewClient(ec, id, testResources, testRMin, seed, testInit)
			if err != nil {
				errs <- err
				return
			}
			sc.SetStream(shared)
			if _, err := sc.Open(ctx); err != nil {
				errs <- fmt.Errorf("%s: open: %w", id, err)
				return
			}
			ref := refOptimizer(t, seed)
			for k := 0; k < steps; k++ {
				got, err := sc.Suggest(ctx)
				if err != nil {
					errs <- fmt.Errorf("%s: suggest %d: %w", id, k, err)
					return
				}
				want, err := ref.Next()
				if err != nil {
					errs <- fmt.Errorf("%s: reference %d: %w", id, k, err)
					return
				}
				for d := range want {
					if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
						errs <- fmt.Errorf("%s: step %d dim %d: cross-session bleed over shared stream", id, k, d)
						return
					}
				}
				cost := testCost(seed, k, want)
				if err := sc.ObserveAt(ctx, k, want, cost); err != nil {
					errs <- fmt.Errorf("%s: observe %d: %w", id, k, err)
					return
				}
				if err := ref.Observe(want, cost); err != nil {
					errs <- fmt.Errorf("%s: reference observe %d: %w", id, k, err)
					return
				}
			}
			if err := sc.CloseSession(ctx); err != nil {
				errs <- fmt.Errorf("%s: close: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestStreamDecodeErrorAccounting separates the two ways a stream read loop
// ends early: codec garbage must increment the decode-error counter, while
// a connection dropped mid-frame — ordinary client churn — must not. The
// load generator's own clean shutdowns were once miscounted as corruption.
func TestStreamDecodeErrorAccounting(t *testing.T) {
	svc, ts := newStreamService(t)
	// Codec garbage: a length prefix far outside the frame bounds.
	resp, err := http.Post(ts.URL+"/session/stream", "application/octet-stream",
		bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))
	if err != nil {
		t.Fatalf("garbage post: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := svc.Streams().DecodeErrors; got != 1 {
		t.Fatalf("garbage frame counted %d decode errors, want 1", got)
	}
	// Mid-frame drop: a plausible length prefix, then the body dies.
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/session/stream", pr)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err = ts.Client().Do(req) // returns once the server flushes 200
	if err != nil {
		t.Fatalf("stream post: %v", err)
	}
	if _, err := pw.Write([]byte{16, 0, 0, 0, 1, 2}); err != nil {
		t.Fatalf("partial frame: %v", err)
	}
	_ = pw.CloseWithError(errors.New("simulated drop"))
	_ = resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for svc.Streams().Open != 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never noticed the dropped stream")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Streams().DecodeErrors; got != 1 {
		t.Fatalf("dropped connection counted as decode error: %d, want 1", got)
	}
}

// TestStreamStatz drives stream traffic without any registry attached and
// checks the /session/statz stream block counts it — the plain-atomic path
// must work observer or not.
func TestStreamStatz(t *testing.T) {
	svc, ts := newStreamService(t)
	ctx := context.Background()
	sc, _, _ := newStreamedClient(t, ts.URL, "statz", 12)
	if _, err := sc.Open(ctx); err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := sc.Suggest(ctx); err != nil {
		t.Fatalf("suggest: %v", err)
	}
	st := svc.Streams()
	// Hello + open + suggest at minimum, each answered.
	if st.FramesIn < 3 || st.FramesOut < 3 {
		t.Fatalf("stream stats undercount traffic: %+v", st)
	}
	if st.Open != 1 {
		t.Fatalf("streams open = %d, want 1", st.Open)
	}
	if st.DecodeErrors != 0 {
		t.Fatalf("decode errors on a clean stream: %+v", st)
	}
}
