package sessiond

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/sim"
)

var genCorpus = flag.Bool("gen-corpus", false, "rewrite the FuzzSnapshotDecode seed corpus from the current codec")

// snapTestCost is a smooth deterministic objective for driving optimizers.
func snapTestCost(p []float64) float64 {
	c := 0.0
	for i, v := range p {
		c += v * float64(i+1) * 0.2
	}
	return math.Cos(c*5) + c
}

// buildSnapshot drives a fresh optimizer through rounds suggest+observe
// cycles and wraps its exported state in a full session snapshot.
func buildSnapshot(t *testing.T, id string, rounds int) *snapshot {
	t.Helper()
	p := params{resources: 3, rmin: 0.1, seed: 99, init: 4}
	opt, err := bo.NewOptimizer(bo.Domain{N: p.resources, RMin: p.rmin}, boConfig(p), sim.NewRNG(p.seed))
	if err != nil {
		t.Fatal(err)
	}
	window := make([]float64, 0, windowCap)
	for i := 0; i < rounds; i++ {
		pt, err := opt.Next()
		if err != nil {
			t.Fatal(err)
		}
		c := snapTestCost(pt)
		if err := opt.Observe(pt, c); err != nil {
			t.Fatal(err)
		}
		if len(window) == windowCap {
			copy(window, window[1:])
			window = window[:windowCap-1]
		}
		window = append(window, -c)
	}
	return &snapshot{
		id:       id,
		p:        p,
		suggests: uint64(rounds),
		observes: uint64(rounds),
		window:   window,
		opt:      opt.ExportState(),
		manifest: []meshKey{
			{object: "teapot", ratioStep: 25, fast: false},
			{object: "teapot", ratioStep: 40, fast: true},
			{object: "bunny", ratioStep: 50, fast: false},
		},
	}
}

// sameSnapshot compares every field of two snapshots bit for bit.
func sameSnapshot(t *testing.T, got, want *snapshot) {
	t.Helper()
	if got.id != want.id || got.p != want.p ||
		got.suggests != want.suggests || got.observes != want.observes {
		t.Fatalf("header mismatch: got %+v want %+v", got, want)
	}
	sameF64s := func(tag string, g, w []float64) {
		if len(g) != len(w) {
			t.Fatalf("%s: len %d vs %d", tag, len(g), len(w))
		}
		for i := range w {
			if math.Float64bits(g[i]) != math.Float64bits(w[i]) {
				t.Fatalf("%s[%d]: %x vs %x", tag, i, math.Float64bits(g[i]), math.Float64bits(w[i]))
			}
		}
	}
	sameF64s("window", got.window, want.window)
	if got.opt.RNGState != want.opt.RNGState {
		t.Fatalf("rng state %x vs %x", got.opt.RNGState, want.opt.RNGState)
	}
	if len(got.opt.X) != len(want.opt.X) {
		t.Fatalf("points: %d vs %d", len(got.opt.X), len(want.opt.X))
	}
	for i := range want.opt.X {
		sameF64s(fmt.Sprintf("x[%d]", i), got.opt.X[i], want.opt.X[i])
	}
	sameF64s("y", got.opt.Y, want.opt.Y)
	if got.opt.GPRows != want.opt.GPRows {
		t.Fatalf("gp rows %d vs %d", got.opt.GPRows, want.opt.GPRows)
	}
	if want.opt.GPRows > 0 {
		if math.Float64bits(got.opt.GPLengthScale) != math.Float64bits(want.opt.GPLengthScale) {
			t.Fatalf("gp scale %v vs %v", got.opt.GPLengthScale, want.opt.GPLengthScale)
		}
		sameF64s("factor", got.opt.GPFactor, want.opt.GPFactor)
	}
	if len(got.manifest) != len(want.manifest) {
		t.Fatalf("manifest: %d vs %d", len(got.manifest), len(want.manifest))
	}
	for i := range want.manifest {
		if got.manifest[i] != want.manifest[i] {
			t.Fatalf("manifest[%d]: %+v vs %+v", i, got.manifest[i], want.manifest[i])
		}
	}
}

// TestSnapshotRoundTrip is the codec's core contract: decode(encode(s))
// reproduces every field bit for bit, at every stage of a session's life —
// empty, mid-init, and with a live GP factor.
func TestSnapshotRoundTrip(t *testing.T) {
	for _, rounds := range []int{0, 2, 9} {
		s := buildSnapshot(t, "round-trip", rounds)
		blob := encodeSnapshot(s)
		got, err := decodeSnapshot(blob)
		if err != nil {
			t.Fatalf("rounds=%d: decode: %v", rounds, err)
		}
		sameSnapshot(t, got, s)

		// The codec is canonical: re-encoding an accepted snapshot yields
		// the identical byte string (the property the fuzz target leans on).
		if !bytes.Equal(encodeSnapshot(got), blob) {
			t.Fatalf("rounds=%d: re-encode differs", rounds)
		}

		// A restored optimizer must continue the suggestion stream.
		restored, err := bo.NewOptimizerFromState(bo.Domain{N: s.p.resources, RMin: s.p.rmin}, boConfig(s.p), got.opt)
		if err != nil {
			t.Fatalf("rounds=%d: restore: %v", rounds, err)
		}
		ref, err := bo.NewOptimizerFromState(bo.Domain{N: s.p.resources, RMin: s.p.rmin}, boConfig(s.p), s.opt)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := ref.Next()
		if err != nil {
			t.Fatal(err)
		}
		gp, err := restored.Next()
		if err != nil {
			t.Fatal(err)
		}
		for d := range wp {
			if math.Float64bits(gp[d]) != math.Float64bits(wp[d]) {
				t.Fatalf("rounds=%d: post-decode suggestion differs at dim %d", rounds, d)
			}
		}
	}
}

// TestSnapshotEncodeDeterministic pins byte-level determinism: encoding the
// same state twice must produce identical blobs (no map iteration leaks in).
func TestSnapshotEncodeDeterministic(t *testing.T) {
	s := buildSnapshot(t, "determinism", 6)
	if !bytes.Equal(encodeSnapshot(s), encodeSnapshot(s)) {
		t.Fatal("two encodes of the same snapshot differ")
	}
}

// TestSnapshotDetectsCorruption flips every byte of a valid snapshot in turn;
// the decoder must reject each mutant (CRC catches any single-byte flip).
func TestSnapshotDetectsCorruption(t *testing.T) {
	blob := encodeSnapshot(buildSnapshot(t, "corrupt", 5))
	for i := range blob {
		mutant := append([]byte(nil), blob...)
		mutant[i] ^= 0x41
		if _, err := decodeSnapshot(mutant); err == nil {
			t.Fatalf("byte flip at %d of %d accepted", i, len(blob))
		}
	}
}

// TestSnapshotDetectsTruncation cuts a valid snapshot at every length; no
// prefix may decode (the CRC tail plus length framing reject them all).
func TestSnapshotDetectsTruncation(t *testing.T) {
	blob := encodeSnapshot(buildSnapshot(t, "trunc", 5))
	for n := 0; n < len(blob); n++ {
		if _, err := decodeSnapshot(blob[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", n, len(blob))
		}
	}
}

// rewrapCRC replaces the trailing checksum with a freshly computed one so
// structural tests (and the fuzzer) can get past the integrity gate.
func rewrapCRC(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

// TestSnapshotRejectsHostileCounts hand-corrupts structural fields and
// re-wraps a valid CRC, proving the bounds checks (not just the checksum)
// hold the line against over-allocation.
func TestSnapshotRejectsHostileCounts(t *testing.T) {
	s := buildSnapshot(t, "hostile", 5)
	blob := encodeSnapshot(s)
	body := blob[:len(blob)-4]
	idLen := len(s.id)

	// Byte offsets into the fixed prefix of the wire format (see snapshot.go).
	offWindow := 8 + 2 + idLen + 24 + 24
	offObsCount := offWindow + 4 + 8*len(s.window)

	mutate := func(name string, off int, val uint32) {
		t.Run(name, func(t *testing.T) {
			m := append([]byte(nil), body...)
			binary.LittleEndian.PutUint32(m[off:], val)
			if _, err := decodeSnapshot(rewrapCRC(m)); err == nil {
				t.Fatal("hostile count accepted")
			}
		})
	}
	mutate("window count over cap", offWindow, windowCap+1)
	mutate("window count huge", offWindow, math.MaxUint32)
	mutate("observation count over cap", offObsCount, maxSessionObservations+1)
	mutate("observation count huge", offObsCount, math.MaxUint32)
	mutate("dim mismatch", offObsCount+4, uint32(s.p.resources+2))
	mutate("resources over cap", 8+2+idLen, maxResources+1)

	t.Run("unknown flags", func(t *testing.T) {
		m := append([]byte(nil), body...)
		binary.LittleEndian.PutUint16(m[6:], 0x8000)
		if _, err := decodeSnapshot(rewrapCRC(m)); err == nil {
			t.Fatal("unknown flag bits accepted")
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		m := append(append([]byte(nil), body...), 0xAA)
		if _, err := decodeSnapshot(rewrapCRC(m)); err == nil {
			t.Fatal("trailing bytes accepted")
		}
	})
}

// TestMeshCacheManifestRoundTrip pins the manifest contract: restoring a
// manifest reproduces LRU order with placeholder entries that miss (and
// re-fill) on first touch rather than serving nil geometry.
func TestMeshCacheManifestRoundTrip(t *testing.T) {
	c := newMeshCache(4)
	keys := []meshKey{
		{object: "a", ratioStep: 10},
		{object: "b", ratioStep: 20, fast: true},
		{object: "c", ratioStep: 30},
	}
	for _, k := range keys {
		c.put(k, nil)
	}
	man := c.manifest()
	if len(man) != len(keys) {
		t.Fatalf("manifest has %d entries, want %d", len(man), len(keys))
	}
	for i, k := range keys {
		if man[i] != k {
			t.Fatalf("manifest[%d] = %+v, want %+v (oldest first)", i, man[i], k)
		}
	}

	r := newMeshCache(4)
	r.restoreManifest(man)
	got := r.manifest()
	for i := range man {
		if got[i] != man[i] {
			t.Fatalf("restored manifest[%d] = %+v, want %+v", i, got[i], man[i])
		}
	}
	// Placeholders must read as misses: identity survived, geometry did not.
	if m := r.get(keys[0]); m != nil {
		t.Fatalf("placeholder returned a mesh: %v", m)
	}
	if r.misses != 1 || r.hits != 0 {
		t.Fatalf("placeholder get counted hits=%d misses=%d, want 0/1", r.hits, r.misses)
	}
}

// corpusDir is where FuzzSnapshotDecode's checked-in seeds live.
const corpusDir = "testdata/fuzz/FuzzSnapshotDecode"

// corpusSeeds builds the seed corpus deterministically from the current
// codec: full valid snapshots at several life stages plus structurally
// interesting mutants. Regenerate the files with -gen-corpus whenever the
// wire format changes.
func corpusSeeds(t *testing.T) map[string][]byte {
	empty := encodeSnapshot(buildSnapshot(t, "seed-empty", 0))
	mid := encodeSnapshot(buildSnapshot(t, "seed-midinit", 2))
	gp := encodeSnapshot(buildSnapshot(t, "seed-gp", 9))
	badMagic := append([]byte(nil), gp[:len(gp)-4]...)
	binary.LittleEndian.PutUint32(badMagic, 0xDEADBEEF)
	return map[string][]byte{
		"seed-valid-empty":   empty,
		"seed-valid-midinit": mid,
		"seed-valid-gp":      gp,
		"seed-bad-magic":     rewrapCRC(badMagic),
		"seed-truncated":     gp[:len(gp)/2],
		"seed-short":         {0x53, 0x53, 0x42, 0x48},
	}
}

// TestFuzzSnapshotCorpus keeps the checked-in seed corpus in lockstep with
// the codec. With -gen-corpus it rewrites the files; without, it fails if
// they drifted (e.g. after a snapshotVersion bump).
func TestFuzzSnapshotCorpus(t *testing.T) {
	seeds := corpusSeeds(t)
	if *genCorpus {
		if err := os.MkdirAll(corpusDir, 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range seeds {
			content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
			if err := os.WriteFile(filepath.Join(corpusDir, name), []byte(content), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return
	}
	for name, data := range seeds {
		raw, err := os.ReadFile(filepath.Join(corpusDir, name))
		if err != nil {
			t.Fatalf("seed corpus out of date (run with -gen-corpus): %v", err)
		}
		want := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if string(raw) != want {
			t.Fatalf("seed %s drifted from the current codec (run with -gen-corpus)", name)
		}
	}
}

// FuzzSnapshotDecode hammers the snapshot decoder with adversarial bytes.
// The decoder must never panic and never over-allocate (every count is
// validated against the bytes actually present). To reach structural checks
// beyond the integrity gate, each input is also retried with a freshly
// computed valid CRC appended. Any accepted blob must round-trip: the codec
// is canonical, so re-encoding must reproduce the accepted bytes exactly.
func FuzzSnapshotDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x53, 0x53, 0x42, 0x48})
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := decodeSnapshot(data); err == nil {
			if !bytes.Equal(encodeSnapshot(s), data) {
				t.Fatalf("accepted blob does not re-encode canonically")
			}
		}
		wrapped := rewrapCRC(data)
		if s, err := decodeSnapshot(wrapped); err == nil {
			if !bytes.Equal(encodeSnapshot(s), wrapped) {
				t.Fatalf("accepted rewrapped blob does not re-encode canonically")
			}
		}
	})
}
