package sessiond

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/wire"
)

// ErrStreamUnsupported reports that the server has no /session/stream route
// (or speaks an incompatible wire version). The condition is permanent for
// the life of the StreamClient: the first detection switches it into JSON
// mode, every later call fails fast with this error, and Client treats the
// error as "use the JSON path" — old servers keep working with zero
// configuration.
var ErrStreamUnsupported = errors.New("sessiond: server does not support the session stream")

// errStreamClientClosed fails calls issued after Close.
var errStreamClientClosed = errors.New("sessiond: stream client closed")

type streamMode int

const (
	modeUnknown streamMode = iota // no probe yet: first call dials
	modeStream                    // server speaks the stream protocol
	modeJSON                      // server does not; permanent fallback
)

// StreamClient multiplexes session calls from any number of sessions over
// one binary stream connection per server (DESIGN.md §14). Every call runs
// through the owning edge.Client's Execute, so the retry/backoff/breaker
// machinery governs stream traffic exactly as it governs JSON posts — a
// dead connection surfaces as a failed attempt, and the retry's next
// attempt transparently redials. Safe for concurrent use.
type StreamClient struct {
	ec *edge.Client

	// dialMu serializes dialing (and the first-contact support probe), so a
	// burst of first calls against a JSON-only server costs one failed
	// probe, not one per caller — never enough to trip the breaker.
	dialMu sync.Mutex //hbo:lockleaf single-flight dial: serializing the blocking probe is this mutex's entire job

	mu     sync.Mutex
	mode   streamMode
	conn   *streamConn
	closed bool
}

// NewStreamClient builds a stream transport on top of an edge client. The
// edge client supplies the HTTP connection pool, base URL, per-attempt
// timeout, and the whole fault-tolerance stack.
func NewStreamClient(ec *edge.Client) (*StreamClient, error) {
	if ec == nil {
		return nil, fmt.Errorf("sessiond: nil edge client")
	}
	return &StreamClient{ec: ec}, nil
}

// Mode reports the negotiated transport: "stream", "json", or "unknown"
// before first contact.
func (sc *StreamClient) Mode() string {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	switch sc.mode {
	case modeStream:
		return "stream"
	case modeJSON:
		return "json"
	default:
		return "unknown"
	}
}

// Close tears down the live connection (the server sees EOF and ends the
// stream) and fails all future calls fast.
func (sc *StreamClient) Close() error {
	sc.mu.Lock()
	sc.closed = true
	cn := sc.conn
	sc.conn = nil
	sc.mu.Unlock()
	if cn != nil {
		cn.fail(errStreamClientClosed)
	}
	return nil
}

// streamCall is one in-flight request/response pair. Pooled; the reply
// channel is allocated once and reused, and both frames keep their slice
// capacity across uses.
type streamCall struct {
	req  wire.Frame
	resp wire.Frame
	done chan error
}

var callPool = sync.Pool{New: func() any {
	return &streamCall{done: make(chan error, 1)}
}}

func getCall() *streamCall {
	c := callPool.Get().(*streamCall)
	// Drain a stale completion a previous abandoned use may have left.
	select {
	case <-c.done:
	default:
	}
	c.req.Reset()
	c.resp.Reset()
	return c
}

func putCall(c *streamCall) { callPool.Put(c) }

// streamConn is one live stream connection: a pipe feeding the request
// body, the response body feeding a reader goroutine, and the table of
// calls awaiting their response frame.
type streamConn struct {
	cancel context.CancelFunc // tears down the HTTP exchange
	body   io.ReadCloser      // response body: frames in
	pw     *io.PipeWriter     // request body: frames out

	wmu sync.Mutex
	fw  *wire.Writer

	mu      sync.Mutex
	err     error
	seq     uint64
	pending map[uint64]*streamCall
}

func (cn *streamConn) dead() bool {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.err != nil
}

// fail poisons the connection: every waiting and future call gets err, the
// request pipe is broken (the server sees the stream end), and the HTTP
// exchange is cancelled. Idempotent; the first error wins.
func (cn *streamConn) fail(err error) {
	cn.mu.Lock()
	if cn.err != nil {
		cn.mu.Unlock()
		return
	}
	cn.err = err
	pend := cn.pending
	cn.pending = nil
	cn.mu.Unlock()
	_ = cn.pw.CloseWithError(err)
	_ = cn.body.Close()
	cn.cancel()
	for _, c := range pend {
		c.done <- err
	}
}

// readLoop demultiplexes response frames to their waiting calls by
// sequence number. Frames for abandoned calls are dropped. Any read or
// decode error — including a clean EOF, which mid-conversation means the
// server went away — poisons the connection; the callers' retry loops
// redial.
func (cn *streamConn) readLoop() {
	fr := wire.NewReader(cn.body)
	var f wire.Frame
	for {
		if err := fr.Next(&f); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			cn.fail(fmt.Errorf("sessiond: stream read: %w", err))
			return
		}
		cn.mu.Lock()
		c := cn.pending[f.Seq]
		delete(cn.pending, f.Seq)
		cn.mu.Unlock()
		if c == nil {
			continue
		}
		if f.Type == wire.TError {
			// Server rejections map onto the same typed errors the JSON
			// transport produces, so StatusCode, Retry-After honoring, and
			// the eviction/readmit logic work unchanged.
			c.done <- edge.NewStatusError(int(f.Status), string(f.Msg),
				time.Duration(f.RetryAfterSec)*time.Second)
			continue
		}
		c.resp.CopyFrom(&f)
		c.done <- nil
	}
}

// abandon detaches a call whose caller stopped waiting. If the call was
// still pending the reader can never touch it again and it is safe to
// reuse; if the reader already took it, the completion is consumed so the
// pooled call carries no stale state.
func (cn *streamConn) abandon(c *streamCall, seq uint64) {
	cn.mu.Lock()
	_, pending := cn.pending[seq]
	delete(cn.pending, seq)
	cn.mu.Unlock()
	if !pending {
		<-c.done
	}
}

// roundTrip sends one request frame and waits for its response frame. The
// response lands in c.resp. A context expiry while waiting abandons only
// this call; a stalled frame write poisons the whole connection (the pipe
// is a serialization point — if it is stuck, so is every other call).
func (cn *streamConn) roundTrip(ctx context.Context, c *streamCall) error {
	cn.mu.Lock()
	if cn.err != nil {
		err := cn.err
		cn.mu.Unlock()
		return err
	}
	cn.seq++
	seq := cn.seq
	c.req.Seq = seq
	cn.pending[seq] = c
	cn.mu.Unlock()

	stop := context.AfterFunc(ctx, func() {
		cn.fail(fmt.Errorf("sessiond: stream write stalled: %w", context.Cause(ctx)))
	})
	cn.wmu.Lock()
	werr := cn.fw.WriteFrame(&c.req)
	cn.wmu.Unlock()
	stop()
	if werr != nil {
		cn.abandon(c, seq)
		cn.fail(fmt.Errorf("sessiond: stream write: %w", werr))
		return werr
	}
	select {
	case err := <-c.done:
		return err
	case <-ctx.Done():
		cn.abandon(c, seq)
		return ctx.Err()
	}
}

// getConn returns the live connection, dialing (and handshaking) if there
// is none. A server found not to speak the protocol flips the client into
// permanent JSON mode; the sentinel is wrapped Permanent so the retry loop
// fails fast instead of burning attempts on a condition retries cannot fix.
func (sc *StreamClient) getConn(ctx context.Context) (*streamConn, error) {
	sc.dialMu.Lock()
	defer sc.dialMu.Unlock()
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		return nil, edge.Permanent(errStreamClientClosed)
	}
	if sc.mode == modeJSON {
		sc.mu.Unlock()
		return nil, edge.Permanent(ErrStreamUnsupported)
	}
	if cn := sc.conn; cn != nil && !cn.dead() {
		sc.mu.Unlock()
		return cn, nil
	}
	sc.mu.Unlock()

	cn, err := sc.dial(ctx)
	if err != nil {
		if errors.Is(err, ErrStreamUnsupported) {
			sc.mu.Lock()
			sc.mode = modeJSON
			sc.mu.Unlock()
			return nil, edge.Permanent(ErrStreamUnsupported)
		}
		return nil, err
	}
	sc.mu.Lock()
	if sc.closed {
		sc.mu.Unlock()
		cn.fail(errStreamClientClosed)
		return nil, edge.Permanent(errStreamClientClosed)
	}
	sc.mode = modeStream
	sc.conn = cn
	sc.mu.Unlock()
	return cn, nil
}

// probe runs the Hello version handshake as one ordinary finite POST: a
// single Hello frame as the whole request body. This is deliberately NOT
// the streaming exchange — an old server without the route would sit on an
// endless request body waiting for EOF before it could even deliver its
// 404, deadlocking against a client waiting for that response. A finite
// probe gets an answer from every server: new ones echo a Hello frame,
// old ones 404 cleanly, version mismatches come back as a typed refusal.
func (sc *StreamClient) probe(ctx context.Context) error {
	var hello wire.Frame
	hello.Type = wire.THelloReq
	hello.Version = wire.Version
	body, err := wire.AppendFrame(nil, &hello)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, sc.ec.BaseURL()+"/session/stream", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := sc.ec.HTTPClient().Do(req)
	if err != nil {
		return fmt.Errorf("sessiond: stream probe: %w", err)
	}
	defer func() {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		_ = resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound, http.StatusMethodNotAllowed, http.StatusNotImplemented:
		// No such route: an old server. Distinct from a session-level 404 —
		// this must never look like an eviction to the readmit logic.
		return ErrStreamUnsupported
	default:
		return fmt.Errorf("sessiond: stream probe: server returned %s", resp.Status)
	}
	fr := wire.NewReader(resp.Body)
	var f wire.Frame
	if err := fr.Next(&f); err != nil {
		return fmt.Errorf("sessiond: stream probe: %w", err)
	}
	if f.Type != wire.THelloResp || f.Version != wire.Version {
		// Including a TError refusal for an unsupported version: whatever
		// this server speaks, it is not our protocol.
		return ErrStreamUnsupported
	}
	return nil
}

// dial verifies protocol support with a finite probe, then opens the
// long-lived streaming exchange. ctx bounds only the dial — the
// established stream outlives the dialing call, living on a detached
// context until fail tears it down.
func (sc *StreamClient) dial(ctx context.Context) (*streamConn, error) {
	if err := sc.probe(ctx); err != nil {
		return nil, err
	}
	connCtx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	// If the dialing attempt dies before the exchange is established, kill
	// it; once Do returns the watchdog is detached.
	stop := context.AfterFunc(ctx, cancel)
	pr, pw := io.Pipe()
	req, err := http.NewRequestWithContext(connCtx, http.MethodPost, sc.ec.BaseURL()+"/session/stream", pr)
	if err != nil {
		stop()
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := sc.ec.HTTPClient().Do(req)
	if err != nil {
		stop()
		cancel()
		_ = pw.CloseWithError(err)
		return nil, fmt.Errorf("sessiond: stream dial: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		// The probe just said this route exists; anything but 200 here is a
		// transient server problem, not "unsupported".
		stop()
		cancel()
		_ = pw.Close()
		_ = resp.Body.Close()
		return nil, fmt.Errorf("sessiond: stream dial: server returned %s", resp.Status)
	}
	stop()
	cn := &streamConn{
		cancel:  cancel,
		body:    resp.Body,
		pw:      pw,
		fw:      wire.NewWriter(pw),
		pending: make(map[uint64]*streamCall),
	}
	go cn.readLoop()
	return cn, nil
}

// do runs one stream round trip under the edge client's full
// fault-tolerance stack. A connection lost mid-call is just a failed
// attempt: the retry redials through getConn, and the breaker sees stream
// and JSON failures as one health signal.
func (sc *StreamClient) do(ctx context.Context, label string, c *streamCall) error {
	sc.mu.Lock()
	latchedJSON := sc.mode == modeJSON
	sc.mu.Unlock()
	if latchedJSON {
		// Already negotiated down: fail fast without touching the retry
		// stack, so the JSON fallback costs nothing per call.
		return ErrStreamUnsupported
	}
	return sc.ec.Execute(ctx, label, func(ctx context.Context) error {
		actx, cancel := context.WithTimeout(ctx, sc.ec.AttemptTimeout())
		defer cancel()
		cn, err := sc.getConn(actx)
		if err != nil {
			return err
		}
		return cn.roundTrip(actx, c)
	})
}

// Open creates (or idempotently re-finds) the server-side session over the
// stream; the response is identical to the JSON route's.
func (sc *StreamClient) Open(ctx context.Context, req OpenRequest) (OpenResponse, error) {
	c := getCall()
	defer putCall(c)
	c.req.Type = wire.TOpenReq
	c.req.ID = append(c.req.ID[:0], req.ID...)
	c.req.Resources = uint32(req.Resources)
	c.req.RMin = req.RMin
	c.req.Seed = req.Seed
	c.req.Init = uint32(req.Init)
	if req.Policy != "" {
		c.req.Flags |= wire.FlagPolicy
		c.req.Policy = append(c.req.Policy[:0], req.Policy...)
	}
	if err := sc.do(ctx, "stream open", c); err != nil {
		return OpenResponse{}, err
	}
	if c.resp.Type != wire.TOpenResp {
		return OpenResponse{}, fmt.Errorf("sessiond: server answered open with frame type %d", c.resp.Type)
	}
	return OpenResponse{
		ID:           req.ID,
		Existing:     c.resp.Flags&wire.FlagExisting != 0,
		Restored:     c.resp.Flags&wire.FlagRestored != 0,
		Evicted:      string(c.resp.Evicted),
		Observations: int(c.resp.Observations),
		Ephemeral:    c.resp.Flags&wire.FlagEphemeral != 0,
	}, nil
}

// Suggest asks for the session's next configuration. The returned point is
// the caller's to keep.
func (sc *StreamClient) Suggest(ctx context.Context, id string) (SuggestResponse, error) {
	c := getCall()
	defer putCall(c)
	c.req.Type = wire.TSuggestReq
	c.req.ID = append(c.req.ID[:0], id...)
	if err := sc.do(ctx, "stream suggest", c); err != nil {
		return SuggestResponse{}, err
	}
	if c.resp.Type != wire.TSuggestResp {
		return SuggestResponse{}, fmt.Errorf("sessiond: server answered suggest with frame type %d", c.resp.Type)
	}
	return SuggestResponse{
		Point:        append([]float64(nil), c.resp.Point...),
		Observations: int(c.resp.Observations),
	}, nil
}

// Observe records one (point, cost) pair. index is the 0-based database
// slot the observation belongs in (the count of observations the server
// held when it was measured); a retried observe whose first send actually
// landed is then acknowledged instead of double-applied. index < 0 sends
// wire.NoIndex — the JSON route's unconditional append.
func (sc *StreamClient) Observe(ctx context.Context, id string, index int, point []float64, cost float64) (ObserveResponse, error) {
	c := getCall()
	defer putCall(c)
	c.req.Type = wire.TObserveReq
	c.req.ID = append(c.req.ID[:0], id...)
	if index < 0 {
		c.req.Index = wire.NoIndex
	} else {
		c.req.Index = uint32(index)
	}
	c.req.Cost = cost
	c.req.Point = append(c.req.Point[:0], point...)
	if err := sc.do(ctx, "stream observe", c); err != nil {
		return ObserveResponse{}, err
	}
	if c.resp.Type != wire.TObserveResp {
		return ObserveResponse{}, fmt.Errorf("sessiond: server answered observe with frame type %d", c.resp.Type)
	}
	return ObserveResponse{Observations: int(c.resp.Observations)}, nil
}

// CloseSession tears the server-side session down.
func (sc *StreamClient) CloseSession(ctx context.Context, id string) (CloseResponse, error) {
	c := getCall()
	defer putCall(c)
	c.req.Type = wire.TCloseReq
	c.req.ID = append(c.req.ID[:0], id...)
	if err := sc.do(ctx, "stream close", c); err != nil {
		return CloseResponse{}, err
	}
	if c.resp.Type != wire.TCloseResp {
		return CloseResponse{}, fmt.Errorf("sessiond: server answered close with frame type %d", c.resp.Type)
	}
	return CloseResponse{Closed: c.resp.Closed}, nil
}
