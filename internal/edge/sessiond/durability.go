package sessiond

import (
	"fmt"
	"sort"
	"time"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/bo/policies"
)

// SessionStore persists per-session snapshots as opaque blobs keyed by
// session id. snapstore.FileStore (durable, segmented log) and
// snapstore.MemStore (process lifetime) both satisfy it. Implementations
// must be safe for concurrent use; the service calls into the store while
// holding session (and sometimes shard) locks, so a store must never call
// back into the service — it is a lock leaf.
type SessionStore interface {
	// Put durably records id → blob, overwriting any previous snapshot.
	Put(id string, blob []byte) error
	// Get returns the stored blob, with ok=false when absent.
	Get(id string) ([]byte, bool, error)
	// Delete removes the snapshot; deleting an absent id is a no-op.
	Delete(id string) error
	// IDs lists stored ids in sorted order.
	IDs() ([]string, error)
	// SizeBytes reports the store's footprint (the statz gauge).
	SizeBytes() int64
	// Close releases resources; the store must not be used afterwards.
	Close() error
}

// DurabilityStats is the /session/statz durability block, maintained with
// plain atomics so it is correct even when no obs registry is attached.
type DurabilityStats struct {
	// Saves counts snapshots written (eviction, periodic, drain flush).
	Saves uint64 `json:"saves"`
	// SaveErrors counts failed snapshot writes (the session stays live and
	// dirty; the next trigger retries).
	SaveErrors uint64 `json:"save_errors"`
	// Restores counts sessions rebuilt from a snapshot in O(m) instead of a
	// full history replay.
	Restores uint64 `json:"restores"`
	// Corrupt counts snapshots that failed decode or validation; each one
	// degraded to the replay-fallback path (a fresh session).
	Corrupt uint64 `json:"corrupt"`
	// StoreBytes is the store's current on-disk (or in-memory) footprint.
	StoreBytes int64 `json:"store_bytes"`
}

// snapshotLocked captures the session's durable state. Caller holds sess.mu
// and has already checked sess.durable, so the assertion cannot fail.
func (sess *session) snapshotLocked() *snapshot {
	return &snapshot{
		id:       sess.id,
		p:        sess.p,
		suggests: uint64(sess.suggests),
		observes: uint64(sess.observes),
		window:   append([]float64(nil), sess.window...),
		opt:      sess.opt.(bo.DurablePolicy).ExportState(),
		manifest: sess.meshes.manifest(),
	}
}

// saveSession snapshots a dirty session into the store. A clean session
// (nothing mutated since the last save) is skipped for free, and so is an
// ephemeral one — its policy carries state the snapshot cannot express, so
// eviction drops it and the client's replay fallback rebuilds it. Save
// errors leave the session live and dirty — the next trigger retries — and
// are surfaced only through counters, because every call site (eviction,
// drain, periodic) must keep serving regardless.
func (s *Service) saveSession(sess *session) {
	if s.cfg.Store == nil || !sess.durable {
		return
	}
	sess.mu.Lock()
	if sess.dirty == 0 {
		sess.mu.Unlock()
		return
	}
	snap := sess.snapshotLocked()
	sess.dirty = 0
	sess.mu.Unlock()

	blob := encodeSnapshot(snap)
	err := s.storePut(snap.id, blob)
	if err != nil {
		// The state those bytes carried is still only in memory; mark the
		// session dirty again so a later trigger retries.
		sess.mu.Lock()
		sess.dirty++
		sess.mu.Unlock()
		s.durSaveErrs.Add(1)
		s.metSnapSaveErrs.Inc()
		return
	}
	s.durSaves.Add(1)
	s.metSnapSaves.Inc()
	s.metStoreBytes.Set(float64(s.cfg.Store.SizeBytes()))
}

// storePut writes one snapshot blob, timing the write when the latency
// histogram is attached.
func (s *Service) storePut(id string, blob []byte) error {
	if s.metSnapSaveMS == nil {
		return s.cfg.Store.Put(id, blob)
	}
	start := time.Now()
	err := s.cfg.Store.Put(id, blob)
	s.metSnapSaveMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return err
}

// timedRestore runs a restore closure, timing it when the latency histogram
// is attached.
func (s *Service) timedRestore(restore func()) {
	if s.metSnapRestoreMS == nil {
		restore()
		return
	}
	start := time.Now()
	restore()
	s.metSnapRestoreMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
}

// restoreSession rebuilds a live session from a decoded snapshot: the
// policy resumes from its exported state via the registry (for GP-EI that
// is O(m) factor/RNG copies — no replay, no refit), and the mesh-cache
// manifest is reinstalled as placeholders that re-decimate lazily. A
// snapshot naming an ephemeral policy cannot exist through the save path
// and fails here, degrading to the replay fallback.
func (s *Service) restoreSession(snap *snapshot) (*session, error) {
	dom := bo.Domain{N: snap.p.resources, RMin: snap.p.rmin}
	opt, err := policies.Restore(snap.p.policy, dom, boConfig(snap.p), snap.opt)
	if err != nil {
		return nil, fmt.Errorf("sessiond: restoring %s: %w", snap.id, err)
	}
	_, durable := opt.(bo.DurablePolicy)
	meshes := newMeshCache(s.cfg.MeshCacheCap)
	meshes.restoreManifest(snap.manifest)
	return &session{
		id:       snap.id,
		p:        snap.p,
		opt:      opt,
		durable:  durable,
		window:   snap.window,
		suggests: int(snap.suggests),
		observes: int(snap.observes),
		meshes:   meshes,
	}, nil
}

// loadSession fetches and rebuilds one session from the store. ok=false
// with a nil error means no snapshot exists; a corrupt or unreadable
// snapshot is counted, deleted (it will never decode better), and reported
// as ok=false so the caller falls back to a fresh session — the client's
// replay path recovers the history.
func (s *Service) loadSession(id string) (*session, bool) {
	if s.cfg.Store == nil {
		return nil, false
	}
	blob, ok, err := s.cfg.Store.Get(id)
	if err != nil || !ok {
		return nil, false
	}
	var sess *session
	restore := func() {
		snap, derr := decodeSnapshot(blob)
		if derr == nil && snap.id != id {
			derr = fmt.Errorf("sessiond: snapshot for %q stored under %q", snap.id, id)
		}
		if derr == nil {
			sess, derr = s.restoreSession(snap)
		}
		if derr != nil {
			sess = nil
			s.durCorrupt.Add(1)
			s.metSnapCorrupt.Inc()
			_ = s.cfg.Store.Delete(id)
		}
	}
	s.timedRestore(restore)
	if sess == nil {
		return nil, false
	}
	s.durRestores.Add(1)
	s.metSnapRestores.Inc()
	return sess, true
}

// warmRestart re-hydrates sessions from the store at startup, in sorted id
// order (deterministic shard ticks), respecting each shard's capacity —
// sessions beyond a full shard stay on disk and restore lazily on their
// next open. Corrupt snapshots are skipped (counted and deleted); a warm
// restart never fails the boot.
func (s *Service) warmRestart() error {
	ids, err := s.cfg.Store.IDs()
	if err != nil {
		return fmt.Errorf("sessiond: warm restart: listing store: %w", err)
	}
	for _, id := range ids {
		if validID(id) != nil {
			continue
		}
		sess, ok := s.loadSession(id)
		if !ok {
			continue
		}
		sh := s.shardFor(id)
		sh.mu.Lock()
		if len(sh.sessions) < s.cfg.SessionsPerShard {
			sh.tick++
			sess.lastTouch = sh.tick
			sh.sessions[id] = sess
		}
		sh.mu.Unlock()
	}
	s.metStoreBytes.Set(float64(s.cfg.Store.SizeBytes()))
	return nil
}

// Flush snapshots every dirty session (sorted ids within each shard, shards
// in index order — a deterministic pass). This is the SIGTERM drain hook:
// after the HTTP listener stops and the last in-flight request completes,
// Flush makes the store agree with memory before the process exits.
func (s *Service) Flush() {
	if s.cfg.Store == nil {
		return
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		sessions := make([]*session, 0, len(sh.sessions))
		for _, sess := range sh.sessions {
			sessions = append(sessions, sess)
		}
		sh.mu.Unlock()
		sort.Slice(sessions, func(i, j int) bool { return sessions[i].id < sessions[j].id })
		for _, sess := range sessions {
			s.saveSession(sess)
		}
	}
}

// Durability returns the current durability counters (zero-valued when no
// store is configured).
func (s *Service) Durability() DurabilityStats {
	d := DurabilityStats{
		Saves:      s.durSaves.Load(),
		SaveErrors: s.durSaveErrs.Load(),
		Restores:   s.durRestores.Load(),
		Corrupt:    s.durCorrupt.Load(),
	}
	if s.cfg.Store != nil {
		d.StoreBytes = s.cfg.Store.SizeBytes()
	}
	return d
}
