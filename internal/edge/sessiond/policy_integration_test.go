package sessiond_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/edge/sessiond/snapstore"
	"github.com/mar-hbo/hbo/internal/sim"
)

// refPolicy mirrors exactly how the service builds a session's policy, so a
// test can predict every suggestion a policy-selected session must produce.
func refPolicy(t *testing.T, name string, seed uint64) bo.Policy {
	t.Helper()
	cfg := bo.DefaultConfig()
	cfg.InitSamples = testInit
	p, err := policies.New(name, bo.Domain{N: testResources, RMin: testRMin}, cfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatalf("reference policy %q: %v", name, err)
	}
	return p
}

func newPolicyService(t *testing.T, store sessiond.SessionStore) *sessiond.Service {
	t.Helper()
	svc, err := sessiond.New(sessiond.Config{
		Shards:           1,
		SessionsPerShard: 1,
		QueueBound:       8,
		RetryAfterSec:    1,
		MaxBatch:         4,
		MeshCacheCap:     2,
		Store:            store,
	}, nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	return svc
}

func newPolicyClient(t *testing.T, baseURL, id, policy string, seed uint64, stream bool) *sessiond.Client {
	t.Helper()
	sc := newTestClient(t, baseURL, id, seed)
	if err := sc.SetPolicy(policy); err != nil {
		t.Fatalf("set policy %q: %v", policy, err)
	}
	if stream {
		ec, err := edge.NewClient(baseURL, 4)
		if err != nil {
			t.Fatalf("stream edge client: %v", err)
		}
		str, err := sessiond.NewStreamClient(ec)
		if err != nil {
			t.Fatalf("stream client: %v", err)
		}
		t.Cleanup(func() { _ = str.Close() })
		sc.SetStream(str)
	}
	return sc
}

// drivePolicySteps runs steps suggest/observe rounds through the client,
// asserting bit-identity against the reference policy at every step.
func drivePolicySteps(t *testing.T, ctx context.Context, sc *sessiond.Client, ref bo.Policy, seed uint64, from, to int) {
	t.Helper()
	for k := from; k < to; k++ {
		got, err := sc.Suggest(ctx)
		if err != nil {
			t.Fatalf("suggest %d: %v", k, err)
		}
		want, err := ref.Next()
		if err != nil {
			t.Fatalf("reference next %d: %v", k, err)
		}
		for d := range want {
			if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
				t.Fatalf("step %d dim %d: got %x want %x",
					k, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
			}
		}
		cost := testCost(seed, k, want)
		if err := ref.Observe(want, cost); err != nil {
			t.Fatalf("reference observe %d: %v", k, err)
		}
		if err := sc.Observe(ctx, got, cost); err != nil {
			t.Fatalf("observe %d: %v", k, err)
		}
	}
}

// TestLinUCBSessionSurvivesEviction drives a linucb session over both
// transports through the full durability lifecycle: open with an explicit
// policy, build history, get evicted by an intruder in a size-1 shard,
// re-open from the snapshot (Restored=true), and continue bit-identically
// with an uninterrupted reference policy. This is the acceptance criterion:
// a non-default policy serves suggest/observe over JSON and stream and
// survives eviction/re-admission.
func TestLinUCBSessionSurvivesEviction(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream bool
	}{
		{"json", false},
		{"stream", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := snapstore.NewMemStore()
			svc := newPolicyService(t, store)
			ts := httptest.NewServer(svc.Handler())
			t.Cleanup(func() {
				ts.Close()
				svc.Close()
			})

			ctx := context.Background()
			const seed = 42
			sc := newPolicyClient(t, ts.URL, "victim", policies.NameLinUCB, seed, tc.stream)
			res, err := sc.Open(ctx)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if res.Ephemeral {
				t.Fatal("linucb session reported ephemeral, want durable")
			}
			ref := refPolicy(t, policies.NameLinUCB, seed)
			drivePolicySteps(t, ctx, sc, ref, seed, 0, 7)

			// Evict the victim; its snapshot must land in the store.
			intruder := newPolicyClient(t, ts.URL, "intruder", "", 7, tc.stream)
			ires, err := intruder.Open(ctx)
			if err != nil {
				t.Fatalf("open intruder: %v", err)
			}
			if ires.Evicted != "victim" {
				t.Fatalf("intruder evicted %q, want victim", ires.Evicted)
			}
			if _, ok, err := store.Get("victim"); err != nil || !ok {
				t.Fatalf("store.Get(victim) = ok=%v err=%v, want snapshot present", ok, err)
			}

			// Re-open restores from the snapshot; the continuation must stay
			// bit-identical to the never-evicted reference.
			res, err = sc.Open(ctx)
			if err != nil {
				t.Fatalf("re-open: %v", err)
			}
			if !res.Restored {
				t.Fatal("re-open did not restore from snapshot")
			}
			if res.Observations != 7 {
				t.Fatalf("restored observations = %d, want 7", res.Observations)
			}
			drivePolicySteps(t, ctx, sc, ref, seed, 7, 12)
		})
	}
}

// TestEphemeralPolicySession checks the cmaes contract on both transports:
// the open response carries the ephemeral marker, eviction writes no
// snapshot, and a re-open starts a fresh session (Restored=false) whose
// suggestion stream equals a fresh reference policy's.
func TestEphemeralPolicySession(t *testing.T) {
	for _, tc := range []struct {
		name   string
		stream bool
	}{
		{"json", false},
		{"stream", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			store := snapstore.NewMemStore()
			svc := newPolicyService(t, store)
			ts := httptest.NewServer(svc.Handler())
			t.Cleanup(func() {
				ts.Close()
				svc.Close()
			})

			ctx := context.Background()
			const seed = 11
			sc := newPolicyClient(t, ts.URL, "eph", policies.NameCMAES, seed, tc.stream)
			res, err := sc.Open(ctx)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			if !res.Ephemeral {
				t.Fatal("cmaes session not marked ephemeral")
			}
			ref := refPolicy(t, policies.NameCMAES, seed)
			drivePolicySteps(t, ctx, sc, ref, seed, 0, 6)

			intruder := newPolicyClient(t, ts.URL, "intruder", "", 7, tc.stream)
			if _, err := intruder.Open(ctx); err != nil {
				t.Fatalf("open intruder: %v", err)
			}
			if _, ok, err := store.Get("eph"); err != nil || ok {
				t.Fatalf("store.Get(eph) = ok=%v err=%v, want no snapshot for ephemeral policy", ok, err)
			}

			// Re-open is a fresh start, still marked ephemeral.
			res, err = sc.Open(ctx)
			if err != nil {
				t.Fatalf("re-open: %v", err)
			}
			if res.Restored {
				t.Fatal("ephemeral session claims restored")
			}
			if !res.Ephemeral {
				t.Fatal("re-opened cmaes session not marked ephemeral")
			}
			fresh := refPolicy(t, policies.NameCMAES, seed)
			drivePolicySteps(t, ctx, sc, fresh, seed, 0, 3)
		})
	}
}

// TestBackendReplayRecoversEphemeralPolicy checks that the client-side
// replay fallback makes even a snapshot-less policy survive eviction: the
// Backend re-opens the session and replays the full history, and the result
// equals a fresh reference policy fed that history.
func TestBackendReplayRecoversEphemeralPolicy(t *testing.T) {
	store := snapstore.NewMemStore()
	svc := newPolicyService(t, store)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	ctx := context.Background()
	const seed = 42
	sc := newPolicyClient(t, ts.URL, "victim", policies.NameCMAES, seed, false)
	backend := sessiond.NewBackend(ctx, sc)

	ref := refPolicy(t, policies.NameCMAES, seed)
	var points [][]float64
	var costs []float64
	for k := 0; k < 5; k++ {
		got, err := backend.BONextPoint(testResources, testRMin, seed, points, costs)
		if err != nil {
			t.Fatalf("backend step %d: %v", k, err)
		}
		want, err := ref.Next()
		if err != nil {
			t.Fatalf("reference step %d: %v", k, err)
		}
		for d := range want {
			if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
				t.Fatalf("pre-eviction step %d dim %d: got %x want %x",
					k, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
			}
		}
		cost := testCost(seed, k, want)
		if err := ref.Observe(want, cost); err != nil {
			t.Fatalf("reference observe: %v", err)
		}
		points = append(points, want)
		costs = append(costs, cost)
	}

	intruder := newTestClient(t, ts.URL, "intruder", 7)
	if _, err := intruder.Open(ctx); err != nil {
		t.Fatalf("open intruder: %v", err)
	}

	got, err := backend.BONextPoint(testResources, testRMin, seed, points, costs)
	if err != nil {
		t.Fatalf("backend after eviction: %v", err)
	}
	rebuilt := refPolicy(t, policies.NameCMAES, seed)
	for i := range points {
		if err := rebuilt.Observe(points[i], costs[i]); err != nil {
			t.Fatalf("rebuilt reference observe: %v", err)
		}
	}
	want, err := rebuilt.Next()
	if err != nil {
		t.Fatalf("rebuilt reference: %v", err)
	}
	for d := range want {
		if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
			t.Fatalf("post-readmission dim %d: got %x want %x",
				d, math.Float64bits(got[d]), math.Float64bits(want[d]))
		}
	}
	if sc.Reopens() != 1 {
		t.Fatalf("Reopens() = %d, want 1", sc.Reopens())
	}
}

// TestPolicyRejectedWhenUnknown pins the validation surface: an unknown
// policy name fails client-side in SetPolicy, and a raw request with a bad
// name is rejected by the server.
func TestPolicyRejectedWhenUnknown(t *testing.T) {
	sc := newTestClient(t, "http://127.0.0.1:0", "x", 1)
	if err := sc.SetPolicy("no-such-policy"); err == nil {
		t.Fatal("SetPolicy accepted an unknown policy")
	}
	if err := sc.SetPolicy(policies.NameGPEI); err != nil {
		t.Fatalf("SetPolicy rejected the gp-ei alias: %v", err)
	}
}
