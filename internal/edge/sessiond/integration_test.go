package sessiond_test

import (
	"context"
	"fmt"
	"math"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/edge/sessiond"
	"github.com/mar-hbo/hbo/internal/sim"
)

const (
	testResources = 3
	testRMin      = 0.1
	testInit      = 5
)

// refOptimizer mirrors exactly how the service builds a session's
// optimizer, so a test can predict every suggestion a session must produce.
func refOptimizer(t *testing.T, seed uint64) *bo.Optimizer {
	t.Helper()
	cfg := bo.DefaultConfig()
	cfg.InitSamples = testInit
	opt, err := bo.NewOptimizer(bo.Domain{N: testResources, RMin: testRMin}, cfg, sim.NewRNG(seed))
	if err != nil {
		t.Fatalf("reference optimizer: %v", err)
	}
	return opt
}

// testCost is a deterministic per-session cost function, different per seed
// so two sessions never feed their GPs identical observations.
func testCost(seed uint64, step int, point []float64) float64 {
	c := float64(seed%97)/97 - 0.5
	for i, v := range point {
		c += v * float64(i+1) * 0.01
	}
	return c + float64(step)*0.001
}

func newTestClient(t *testing.T, baseURL, id string, seed uint64) *sessiond.Client {
	t.Helper()
	ec, err := edge.NewClient(baseURL, 4)
	if err != nil {
		t.Fatalf("edge client: %v", err)
	}
	sc, err := sessiond.NewClient(ec, id, testResources, testRMin, seed, testInit)
	if err != nil {
		t.Fatalf("session client: %v", err)
	}
	return sc
}

// TestConcurrentSessionIsolation drives 64 concurrent sessions through the
// HTTP surface and checks, bit for bit, that every session's suggestion
// stream equals a private reference optimizer fed the same observations —
// i.e. no GP state bleeds between sessions no matter how the per-shard
// batch workers interleave them. Run under -race this also exercises the
// store's locking.
func TestConcurrentSessionIsolation(t *testing.T) {
	svc, err := sessiond.New(sessiond.Config{
		Shards:           4,
		SessionsPerShard: 32,
		QueueBound:       128,
		RetryAfterSec:    1,
		MaxBatch:         8,
		MeshCacheCap:     2,
	}, nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	const sessions = 64
	const steps = 8
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("iso-%02d", i)
			seed := uint64(1000 + i)
			sc := newTestClient(t, ts.URL, id, seed)
			if _, err := sc.Open(ctx); err != nil {
				errs <- fmt.Errorf("%s: open: %w", id, err)
				return
			}
			ref := refOptimizer(t, seed)
			for k := 0; k < steps; k++ {
				got, err := sc.Suggest(ctx)
				if err != nil {
					errs <- fmt.Errorf("%s: suggest %d: %w", id, k, err)
					return
				}
				want, err := ref.Next()
				if err != nil {
					errs <- fmt.Errorf("%s: reference next %d: %w", id, k, err)
					return
				}
				for d := range want {
					if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
						errs <- fmt.Errorf("%s: step %d dim %d: got %x want %x — cross-session bleed",
							id, k, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
						return
					}
				}
				cost := testCost(seed, k, want)
				if err := ref.Observe(want, cost); err != nil {
					errs <- fmt.Errorf("%s: reference observe %d: %w", id, k, err)
					return
				}
				if err := sc.Observe(ctx, got, cost); err != nil {
					errs <- fmt.Errorf("%s: observe %d: %w", id, k, err)
					return
				}
			}
			if err := sc.CloseSession(ctx); err != nil {
				errs <- fmt.Errorf("%s: close: %w", id, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEvictionAndReadmission fills a one-shard store beyond capacity and
// checks the full lifecycle: deterministic LRU eviction, 404 on the evicted
// session, and a clean re-open that starts from fresh optimizer state.
func TestEvictionAndReadmission(t *testing.T) {
	svc, err := sessiond.New(sessiond.Config{
		Shards:           1,
		SessionsPerShard: 2,
		QueueBound:       8,
		RetryAfterSec:    1,
		MaxBatch:         4,
		MeshCacheCap:     2,
	}, nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	ctx := context.Background()
	a := newTestClient(t, ts.URL, "a", 1)
	b := newTestClient(t, ts.URL, "b", 2)
	c := newTestClient(t, ts.URL, "c", 3)

	for _, sc := range []*sessiond.Client{a, b} {
		if _, err := sc.Open(ctx); err != nil {
			t.Fatalf("open %s: %v", sc.ID(), err)
		}
	}
	// Touch b so a is strictly least-recently-used.
	if _, err := b.Suggest(ctx); err != nil {
		t.Fatalf("suggest b: %v", err)
	}
	// Opening c in the full shard must evict a.
	if _, err := c.Open(ctx); err != nil {
		t.Fatalf("open c: %v", err)
	}
	if _, err := a.Suggest(ctx); err == nil {
		t.Fatal("suggest on evicted session a succeeded, want 404")
	} else if code, ok := edge.StatusCode(err); !ok || code != 404 {
		t.Fatalf("suggest on evicted session a: got %v, want status 404", err)
	}
	// b must be untouched by a's eviction: its next suggestion continues
	// the same stream a reference optimizer predicts.
	ref := refOptimizer(t, 2)
	first, err := ref.Next()
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	second, err := ref.Next()
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	_ = first
	got, err := b.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest b after eviction: %v", err)
	}
	for d := range second {
		if math.Float64bits(got[d]) != math.Float64bits(second[d]) {
			t.Fatalf("b's stream perturbed by eviction: dim %d got %x want %x",
				d, math.Float64bits(got[d]), math.Float64bits(second[d]))
		}
	}
	// Re-admitting a starts from fresh state: its first suggestion equals a
	// fresh reference optimizer's.
	if _, err := a.Open(ctx); err != nil {
		t.Fatalf("re-open a: %v", err)
	}
	refA := refOptimizer(t, 1)
	wantA, err := refA.Next()
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	gotA, err := a.Suggest(ctx)
	if err != nil {
		t.Fatalf("suggest re-admitted a: %v", err)
	}
	for d := range wantA {
		if math.Float64bits(gotA[d]) != math.Float64bits(wantA[d]) {
			t.Fatalf("re-admitted a not fresh: dim %d got %x want %x",
				d, math.Float64bits(gotA[d]), math.Float64bits(wantA[d]))
		}
	}
}

// TestBackendReplayAfterEviction checks the transparent re-admission path:
// a Backend whose server-side session was evicted mid-run re-opens it,
// replays the full observation history, and produces exactly the suggestion
// a never-evicted session would have.
func TestBackendReplayAfterEviction(t *testing.T) {
	svc, err := sessiond.New(sessiond.Config{
		Shards:           1,
		SessionsPerShard: 1,
		QueueBound:       8,
		RetryAfterSec:    1,
		MaxBatch:         4,
		MeshCacheCap:     2,
	}, nil)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()

	ctx := context.Background()
	sc := newTestClient(t, ts.URL, "victim", 42)
	backend := sessiond.NewBackend(ctx, sc)

	// Build a history through the backend, mirroring with a reference.
	ref := refOptimizer(t, 42)
	var points [][]float64
	var costs []float64
	for k := 0; k < 4; k++ {
		got, err := backend.BONextPoint(testResources, testRMin, 42, points, costs)
		if err != nil {
			t.Fatalf("backend step %d: %v", k, err)
		}
		want, err := ref.Next()
		if err != nil {
			t.Fatalf("reference step %d: %v", k, err)
		}
		for d := range want {
			if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
				t.Fatalf("pre-eviction step %d dim %d: got %x want %x",
					k, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
			}
		}
		cost := testCost(42, k, want)
		if err := ref.Observe(want, cost); err != nil {
			t.Fatalf("reference observe: %v", err)
		}
		points = append(points, want)
		costs = append(costs, cost)
	}

	// Evict the victim by opening another session in the size-1 shard.
	intruder := newTestClient(t, ts.URL, "intruder", 7)
	if _, err := intruder.Open(ctx); err != nil {
		t.Fatalf("open intruder: %v", err)
	}

	// The next backend call must transparently re-admit: re-open, replay
	// the full history, and suggest. The rebuilt session's optimizer starts
	// from a fresh RNG stream, so the contract is equality with a fresh
	// reference optimizer fed the same history — not with the pre-eviction
	// persistent mirror, whose RNG had already advanced.
	got, err := backend.BONextPoint(testResources, testRMin, 42, points, costs)
	if err != nil {
		t.Fatalf("backend after eviction: %v", err)
	}
	rebuilt := refOptimizer(t, 42)
	for i := range points {
		if err := rebuilt.Observe(points[i], costs[i]); err != nil {
			t.Fatalf("rebuilt reference observe: %v", err)
		}
	}
	want, err := rebuilt.Next()
	if err != nil {
		t.Fatalf("rebuilt reference: %v", err)
	}
	for d := range want {
		if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
			t.Fatalf("post-readmission dim %d: got %x want %x",
				d, math.Float64bits(got[d]), math.Float64bits(want[d]))
		}
	}
	if sc.Reopens() != 1 {
		t.Fatalf("Reopens() = %d, want 1", sc.Reopens())
	}
}
