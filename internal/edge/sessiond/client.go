package sessiond

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"time"

	"github.com/mar-hbo/hbo/internal/bo/policies"
	"github.com/mar-hbo/hbo/internal/edge"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/obs"
)

// Client drives one server-side session through an edge.Client, inheriting
// its full fault-tolerance stack: per-attempt timeouts, retries that honor
// the admission controller's Retry-After hint, and the shared circuit
// breaker (sustained admission rejections open the circuit exactly like any
// other server failure burst). Not safe for concurrent use — one client is
// one MAR session, which issues its calls in order; that ordering is what
// makes the session's suggestion stream deterministic.
type Client struct {
	ec *edge.Client
	id string
	p  params

	// stream, when set, carries open/suggest/observe/close as binary frames
	// over one multiplexed connection; nil (and any server that turns out
	// not to speak the protocol) means the JSON POST routes.
	stream *StreamClient

	reopens  int
	restores int

	// Observability instruments; nil (no-op) unless SetObserver is called.
	metSuggestMS *obs.Histogram
	metReopens   *obs.Counter
}

// NewClient builds a session client. resources/rmin/seed/init fix the
// server-side session's parameters; init <= 0 means the paper's 5.
func NewClient(ec *edge.Client, id string, resources int, rmin float64, seed uint64, init int) (*Client, error) {
	if ec == nil {
		return nil, fmt.Errorf("sessiond: nil edge client")
	}
	if err := validID(id); err != nil {
		return nil, err
	}
	if init <= 0 {
		init = 5
	}
	p := params{resources: resources, rmin: rmin, seed: seed, init: init}
	if err := p.validate(); err != nil {
		return nil, err
	}
	return &Client{ec: ec, id: id, p: p}, nil
}

// SetPolicy selects the server-side optimizer policy for this session (see
// internal/bo/policies); empty (or "gp-ei") keeps the paper's GP-EI
// default. Call before Open — the policy is part of the session's
// parameters, and changing it after the server created the session would
// rebuild it from scratch on the next open.
func (c *Client) SetPolicy(name string) error {
	p := c.p
	p.policy = policies.Canonical(name)
	if err := p.validate(); err != nil {
		return err
	}
	c.p = p
	return nil
}

// SetObserver attaches a metrics registry: a suggest round-trip latency
// histogram (the load generator's tail-latency source) and a re-admission
// counter. Passing nil detaches.
func (c *Client) SetObserver(reg *obs.Registry) {
	c.metReopens = reg.Counter("load.session_reopens")
	if reg != nil {
		c.metSuggestMS = reg.Histogram("load.suggest_wall_ms", obs.LatencyBucketsMS)
	} else {
		c.metSuggestMS = nil
	}
}

// SetStream attaches a stream transport for the session calls
// (open/suggest/observe/close — decimate stays on JSON, mesh payloads are
// not frame traffic). The StreamClient may be shared across many session
// clients; it multiplexes them over one connection. Against a server
// without the stream route, every call transparently falls back to the
// JSON path after one cheap probe. Passing nil detaches.
func (c *Client) SetStream(sc *StreamClient) { c.stream = sc }

// useJSON reports whether err is the stream transport saying "this server
// does not speak the protocol" — the cue to serve the call over JSON.
func useJSON(err error) bool { return errors.Is(err, ErrStreamUnsupported) }

// ID returns the session identifier.
func (c *Client) ID() string { return c.id }

// Reopens counts the re-admissions this client performed after server-side
// evictions.
func (c *Client) Reopens() int { return c.reopens }

// Restores counts how many of this client's opens the server satisfied from
// a durable snapshot (O(m) restore) instead of a fresh session (full
// replay). Always zero against a server without a session store.
func (c *Client) Restores() int { return c.restores }

// Available reports whether the underlying link would currently attempt
// work (circuit not open).
func (c *Client) Available() bool { return c.ec.Available() }

// Open creates (or idempotently re-finds) the server-side session. The
// response says whether the session was already live, was restored from a
// durable snapshot, and how many observations the server already holds —
// the caller's cue to replay only the unseen tail of its history.
func (c *Client) Open(ctx context.Context) (OpenResponse, error) {
	req := OpenRequest{ID: c.id, Resources: c.p.resources, RMin: c.p.rmin, Seed: c.p.seed, Init: c.p.init, Policy: c.p.policy}
	if c.stream != nil {
		resp, err := c.stream.Open(ctx, req)
		if err == nil || !useJSON(err) {
			return resp, err
		}
	}
	var resp OpenResponse
	if err := c.ec.PostJSON(ctx, "/session/open", req, &resp); err != nil {
		return OpenResponse{}, err
	}
	return resp, nil
}

// Suggest returns the session's next configuration to evaluate.
func (c *Client) Suggest(ctx context.Context) ([]float64, error) {
	if c.metSuggestMS == nil {
		return c.suggest(ctx)
	}
	start := time.Now()
	p, err := c.suggest(ctx)
	c.metSuggestMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return p, err
}

func (c *Client) suggest(ctx context.Context) ([]float64, error) {
	var resp SuggestResponse
	if c.stream != nil {
		sresp, err := c.stream.Suggest(ctx, c.id)
		if err == nil {
			resp = sresp
		} else if !useJSON(err) {
			return nil, err
		}
	}
	if resp.Point == nil {
		if err := c.ec.PostJSON(ctx, "/session/suggest", SuggestRequest{ID: c.id}, &resp); err != nil {
			return nil, err
		}
	}
	if len(resp.Point) != c.p.resources+1 {
		return nil, fmt.Errorf("sessiond: server returned %d-dim point, want %d", len(resp.Point), c.p.resources+1)
	}
	return resp.Point, nil
}

// Observe records one measured (point, cost) pair into the session's GP
// history, appending unconditionally (no idempotency index).
func (c *Client) Observe(ctx context.Context, point []float64, cost float64) error {
	return c.ObserveAt(ctx, -1, point, cost)
}

// ObserveAt is Observe with an idempotency index: the 0-based database slot
// this observation belongs in (how many observations the server held when
// it was measured). Over the stream transport a retried observe whose
// first send actually landed is acknowledged rather than double-applied;
// the JSON path has no index field and appends unconditionally, as it
// always has. index < 0 means "always append" on both transports.
func (c *Client) ObserveAt(ctx context.Context, index int, point []float64, cost float64) error {
	if c.stream != nil {
		_, err := c.stream.Observe(ctx, c.id, index, point, cost)
		if err == nil || !useJSON(err) {
			return err
		}
	}
	var resp ObserveResponse
	return c.ec.PostJSON(ctx, "/session/observe", ObserveRequest{ID: c.id, Point: point, Cost: cost}, &resp)
}

// CloseSession tears the server-side session down.
func (c *Client) CloseSession(ctx context.Context) error {
	if c.stream != nil {
		_, err := c.stream.CloseSession(ctx, c.id)
		if err == nil || !useJSON(err) {
			return err
		}
	}
	var resp CloseResponse
	return c.ec.PostJSON(ctx, "/session/close", CloseRequest{ID: c.id}, &resp)
}

// Decimate fetches a decimated mesh through the session's server-side mesh
// cache. The returned mesh is the caller's to mutate.
func (c *Client) Decimate(ctx context.Context, object string, ratio float64, fast bool) (*mesh.Mesh, error) {
	var resp DecimateResponse
	if err := c.ec.PostJSON(ctx, "/session/decimate", DecimateRequest{ID: c.id, Object: object, Ratio: ratio, Fast: fast}, &resp); err != nil {
		return nil, err
	}
	m := resp.Mesh.ToMesh()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("sessiond: server returned invalid mesh: %w", err)
	}
	return m, nil
}

// evicted reports whether err is the server telling us the session no
// longer exists (LRU eviction, restart).
func evicted(err error) bool {
	code, ok := edge.StatusCode(err)
	return ok && code == http.StatusNotFound
}

// Backend adapts the session client to core.BOBackend: the runtime hands it
// the full observation history every call, and the backend ships only the
// tail the server has not seen yet before asking for the next suggestion.
// When the server evicted the session mid-run, the backend transparently
// re-admits: re-open, sync histories, and retry the suggestion once. With a
// durable store behind the server the re-open restores from snapshot, so
// the sync ships only the observations the snapshot missed — O(m) instead
// of the full O(n) replay, which remains the corrupt/missing-snapshot
// fallback (the session seed makes the rebuilt optimizer deterministic).
type Backend struct {
	c   *Client
	ctx context.Context

	opened bool
	sent   int
}

// NewBackend wraps a session client for use as a core.BOBackend. The
// context bounds every call the runtime makes through it.
func NewBackend(ctx context.Context, c *Client) *Backend {
	return &Backend{c: c, ctx: ctx}
}

// BONextPoint implements core.BOBackend.
func (b *Backend) BONextPoint(resources int, rmin float64, seed uint64, points [][]float64, costs []float64) ([]float64, error) {
	if len(points) != len(costs) {
		return nil, fmt.Errorf("sessiond: %d points vs %d costs", len(points), len(costs))
	}
	if resources != b.c.p.resources || math.Float64bits(rmin) != math.Float64bits(b.c.p.rmin) {
		return nil, fmt.Errorf("sessiond: backend opened for %d resources (rmin %v), asked for %d (rmin %v)",
			b.c.p.resources, b.c.p.rmin, resources, rmin)
	}
	if !b.opened {
		resp, err := b.c.Open(b.ctx)
		if err != nil {
			return nil, err
		}
		if resp.Observations > len(points) {
			return nil, fmt.Errorf("sessiond: server session holds %d observations, client only %d", resp.Observations, len(points))
		}
		if resp.Restored {
			b.c.restores++
		}
		b.opened = true
		// A warm-restarted (or still-live) server session already holds a
		// prefix of our history; only the tail needs shipping.
		b.sent = resp.Observations
	}
	for b.sent < len(points) {
		// The slot index doubles as the idempotency index: over the stream
		// transport a retry after a lost response cannot double-apply.
		if err := b.c.ObserveAt(b.ctx, b.sent, points[b.sent], costs[b.sent]); err != nil {
			if evicted(err) {
				return b.readmit(points, costs)
			}
			return nil, err
		}
		b.sent++
	}
	p, err := b.c.Suggest(b.ctx)
	if err != nil {
		if evicted(err) {
			return b.readmit(points, costs)
		}
		return nil, err
	}
	return p, nil
}

// Available lets core's degradation probe skip remote proposals while the
// link's circuit is open.
func (b *Backend) Available() bool { return b.c.Available() }

// readmit re-opens an evicted session and syncs the observation history
// before retrying the suggestion. When the re-open restored a snapshot the
// server already holds the first resp.Observations points, so only the tail
// is shipped; a missing or corrupt snapshot reports zero observations and
// degrades to the full-history replay this method has always been. No
// second-chance recursion: a re-eviction inside the sync fails the call,
// and core's local fallback takes over for this iteration.
func (b *Backend) readmit(points [][]float64, costs []float64) ([]float64, error) {
	resp, err := b.c.Open(b.ctx)
	if err != nil {
		return nil, err
	}
	if resp.Observations > len(points) {
		return nil, fmt.Errorf("sessiond: restored session holds %d observations, client only %d", resp.Observations, len(points))
	}
	if resp.Restored {
		b.c.restores++
	}
	b.c.reopens++
	b.c.metReopens.Inc()
	for i := resp.Observations; i < len(points); i++ {
		if err := b.c.ObserveAt(b.ctx, i, points[i], costs[i]); err != nil {
			return nil, fmt.Errorf("sessiond: replaying history after eviction: %w", err)
		}
	}
	b.sent = len(points)
	return b.c.Suggest(b.ctx)
}

// LOD adapts the session client to render.LODProvider, binding a context
// and the precise (non-fast) decimation path the paper's TD step uses.
type LOD struct {
	c   *Client
	ctx context.Context
}

// NewLOD wraps a session client as a level-of-detail provider.
func NewLOD(ctx context.Context, c *Client) *LOD { return &LOD{c: c, ctx: ctx} }

// Decimate implements render.LODProvider.
func (l *LOD) Decimate(object string, ratio float64) (*mesh.Mesh, error) {
	return l.c.Decimate(l.ctx, object, ratio, false)
}

// Available implements render.Availability.
func (l *LOD) Available() bool { return l.c.Available() }
