package edge

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
)

func newPair(t *testing.T, cacheCap int) (*Server, *Client, func()) {
	t.Helper()
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 2000, Shape: render.ShapeBlob, ShapeSeed: 1, Roughness: 0.3, DistExp: 1},
		{Name: "cabin", MaxTriangles: 1200, Shape: render.ShapeBox, ShapeSeed: 2, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client, err := NewClient(ts.URL, cacheCap)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return srv, client, ts.Close
}

func TestDecimateRoundTrip(t *testing.T) {
	_, client, closeFn := newPair(t, 8)
	defer closeFn()
	m, err := client.Decimate("apricot", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TriangleCount() < 500 || m.TriangleCount() > 1200 {
		t.Fatalf("decimated count %d not near half of ~2000", m.TriangleCount())
	}
}

func TestDecimateCache(t *testing.T) {
	_, client, closeFn := newPair(t, 8)
	defer closeFn()
	if _, err := client.Decimate("apricot", 0.5); err != nil {
		t.Fatal(err)
	}
	// Same quantized ratio: cache hit, even with a tiny ratio difference.
	if _, err := client.Decimate("apricot", 0.505); err != nil {
		t.Fatal(err)
	}
	hits, misses := client.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
}

func TestDecimateCacheEviction(t *testing.T) {
	_, client, closeFn := newPair(t, 2)
	defer closeFn()
	ratios := []float64{0.3, 0.5, 0.7} // 3 entries into a 2-entry cache
	for _, r := range ratios {
		if _, err := client.Decimate("cabin", r); err != nil {
			t.Fatal(err)
		}
	}
	// 0.3 was evicted; re-requesting it is a miss.
	if _, err := client.Decimate("cabin", 0.3); err != nil {
		t.Fatal(err)
	}
	hits, misses := client.CacheStats()
	if hits != 0 || misses != 4 {
		t.Fatalf("cache stats = %d/%d, want 0 hits, 4 misses", hits, misses)
	}
	// 0.7 is still resident.
	if _, err := client.Decimate("cabin", 0.7); err != nil {
		t.Fatal(err)
	}
	if h, _ := client.CacheStats(); h != 1 {
		t.Fatalf("expected hit on resident entry, got %d", h)
	}
}

func TestDecimateErrors(t *testing.T) {
	_, client, closeFn := newPair(t, 4)
	defer closeFn()
	if _, err := client.Decimate("ghost", 0.5); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown object error = %v", err)
	}
	if _, err := client.Decimate("apricot", 0); err == nil {
		t.Fatal("zero ratio accepted")
	}
	if _, err := client.Decimate("apricot", 1.5); err == nil {
		t.Fatal("ratio > 1 accepted")
	}
}

func TestTrainRoundTrip(t *testing.T) {
	_, client, closeFn := newPair(t, 4)
	defer closeFn()
	truth := quality.Truth{Severity: 0.6, Gamma: 1.5, DistExp: 1.1}
	rng := sim.NewRNG(3)
	samples := quality.CollectSamples(truth,
		[]float64{0.1, 0.3, 0.5, 0.7, 0.9, 1}, []float64{0.5, 1, 2, 4}, rng, 0.03)
	p, err := client.Train("apricot", samples)
	if err != nil {
		t.Fatal(err)
	}
	if p.Error(1, 1) > 0.1 {
		t.Fatalf("trained params give error %v at full quality", p.Error(1, 1))
	}
	if p.Error(0.2, 1) < 0.2 {
		t.Fatalf("trained params give error %v at heavy decimation, want substantial", p.Error(0.2, 1))
	}
	// Unfittable sample sets surface as errors.
	if _, err := client.Train("apricot", nil); err == nil {
		t.Fatal("empty training set accepted")
	}
}

func TestBONextRoundTrip(t *testing.T) {
	_, client, closeFn := newPair(t, 4)
	defer closeFn()
	obs := []Observation{
		{Point: []float64{0.5, 0.3, 0.2, 0.8}, Cost: 1.0},
		{Point: []float64{0.1, 0.8, 0.1, 0.5}, Cost: 0.4},
		{Point: []float64{0.3, 0.3, 0.4, 0.3}, Cost: 0.7},
		{Point: []float64{0.2, 0.6, 0.2, 0.9}, Cost: 0.5},
		{Point: []float64{0.6, 0.2, 0.2, 0.2}, Cost: 1.2},
	}
	point, err := client.BONext(3, 0.1, 42, obs)
	if err != nil {
		t.Fatal(err)
	}
	if len(point) != 4 {
		t.Fatalf("point dim = %d", len(point))
	}
	sum := point[0] + point[1] + point[2]
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("returned proportions sum to %v", sum)
	}
	if point[3] < 0.1 || point[3] > 1 {
		t.Fatalf("returned ratio %v out of bounds", point[3])
	}
	// Determinism: same database and seed yield the same suggestion.
	again, err := client.BONext(3, 0.1, 42, obs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range point {
		if point[i] != again[i] {
			t.Fatalf("remote BO not deterministic: %v vs %v", point, again)
		}
	}
	// Bad observations are rejected.
	if _, err := client.BONext(3, 0.1, 1, []Observation{{Point: []float64{9, 9, 9, 9}, Cost: 1}}); err == nil {
		t.Fatal("out-of-domain observation accepted")
	}
}

func TestMeshPayloadRoundTrip(t *testing.T) {
	spec := render.ObjectSpec{Name: "x", MaxTriangles: 500, Shape: render.ShapeSphere}
	m, err := spec.Geometry()
	if err != nil {
		t.Fatal(err)
	}
	back := FromMesh(m).ToMesh()
	if back.TriangleCount() != m.TriangleCount() || len(back.Vertices) != len(m.Vertices) {
		t.Fatal("payload round trip changed mesh size")
	}
	if back.Vertices[10] != m.Vertices[10] {
		t.Fatal("payload round trip changed vertex data")
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient("", 4); err == nil {
		t.Fatal("empty base accepted")
	}
	if _, err := NewClient("http://x", 0); err == nil {
		t.Fatal("zero cache accepted")
	}
}

func TestNewServerRejectsDuplicates(t *testing.T) {
	_, err := NewServer([]render.ObjectSpec{
		{Name: "a", MaxTriangles: 100, Shape: render.ShapeSphere},
		{Name: "a", MaxTriangles: 100, Shape: render.ShapeSphere},
	})
	if err == nil {
		t.Fatal("duplicate specs accepted")
	}
}

func TestServerConcurrentDecimation(t *testing.T) {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 2000, Shape: render.ShapeBlob, ShapeSeed: 1, Roughness: 0.3, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Hammer the same (lazily built) mesh from many goroutines; run with
	// -race to catch cache races.
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		go func() {
			client, err := NewClient(ts.URL, 4)
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 5; i++ {
				ratio := 0.2 + 0.15*float64((w+i)%5)
				if _, err := client.Decimate("apricot", ratio); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestDecimateFastPath(t *testing.T) {
	_, client, closeFn := newPair(t, 8)
	defer closeFn()
	precise, err := client.Decimate("apricot", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := client.DecimateFast("apricot", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if err := fast.Validate(); err != nil {
		t.Fatal(err)
	}
	if fast.TriangleCount() > precise.TriangleCount()+100 {
		t.Fatalf("fast path returned %d triangles vs target-bound %d", fast.TriangleCount(), precise.TriangleCount())
	}
	// Fast and precise results must not share cache entries.
	hits, misses := client.CacheStats()
	if hits != 0 || misses != 2 {
		t.Fatalf("cache stats %d/%d: fast result aliased the precise one", hits, misses)
	}
	if _, err := client.DecimateFast("apricot", 0.3); err != nil {
		t.Fatal(err)
	}
	if h, _ := client.CacheStats(); h != 1 {
		t.Fatal("repeated fast request should hit the cache")
	}
}

func TestClientServesSceneLOD(t *testing.T) {
	// The edge client satisfies render.LODProvider: a scene can fetch its
	// decimated geometry over the wire, with the local cache absorbing
	// repeated ratios — the full Fig. 3 loop.
	specs := []render.ObjectSpec{
		{Name: "cabin", MaxTriangles: 1200, Shape: render.ShapeBox, ShapeSeed: 2, DistExp: 1},
		{Name: "hammer", MaxTriangles: 1500, Shape: render.ShapeTorus, ShapeSeed: 3, DistExp: 1.2},
	}
	srv, err := NewServer(specs)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client, err := NewClient(ts.URL, 8)
	if err != nil {
		t.Fatal(err)
	}
	var _ render.LODProvider = client

	lib, err := render.NewLibrary(specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	scene := render.NewScene(lib)
	for _, sp := range specs {
		if _, err := scene.Place(sp.Name, 1, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	for _, o := range scene.Objects() {
		o.Triangles = o.Spec.MaxTriangles / 2
	}
	if err := scene.ApplyLOD(client, 0.02); err != nil {
		t.Fatal(err)
	}
	for _, o := range scene.Objects() {
		if o.Geometry == nil || o.Geometry.TriangleCount() == 0 {
			t.Fatalf("object %s got no geometry over the wire", o.ID())
		}
	}
	// Re-applying at the same ratios touches only the cache.
	_, missesBefore := client.CacheStats()
	for _, o := range scene.Objects() {
		o.GeometryRatio = 0 // force refetch through the provider
	}
	if err := scene.ApplyLOD(client, 0.02); err != nil {
		t.Fatal(err)
	}
	hits, misses := client.CacheStats()
	if misses != missesBefore {
		t.Fatalf("refetch at same ratios caused server round-trips: %d -> %d misses", missesBefore, misses)
	}
	if hits == 0 {
		t.Fatal("no cache hits on refetch")
	}
}

func TestServerRejectsOversizeBody(t *testing.T) {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 500, Shape: render.ShapeSphere, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A body past the request cap must come back 413, not be buffered.
	body := `{"object":"` + strings.Repeat("x", (4<<20)+1024) + `"}`
	resp, err := http.Post(ts.URL+"/decimate", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestServerValidatesBONextLimits(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for name, body := range map[string]string{
		"zero resources": `{"resources":0,"rmin":0.1}`,
		"huge resources": `{"resources":1000,"rmin":0.1}`,
	} {
		resp, err := http.Post(ts.URL+"/bo/next", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestServerRejectsNaNRatio(t *testing.T) {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 500, Shape: render.ShapeSphere, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// JSON can't carry NaN directly, but a missing ratio decodes to 0 and
	// must be rejected the same way.
	resp, err := http.Post(ts.URL+"/decimate", "application/json", strings.NewReader(`{"object":"apricot"}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
