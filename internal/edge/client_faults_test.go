package edge

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/mar-hbo/hbo/internal/faults"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/render"
)

// testClientConfig returns a config with no real sleeping and tight
// timeouts so fault-path tests run instantly.
func testClientConfig() ClientConfig {
	cfg := DefaultClientConfig()
	cfg.Timeout = 2 * time.Second
	cfg.BackoffBase = time.Millisecond
	cfg.BackoffMax = 4 * time.Millisecond
	cfg.Sleep = func(time.Duration) {}
	return cfg
}

func newFaultyPair(t *testing.T, plan faults.Plan, seed uint64, mut func(*ClientConfig)) (*Client, *faults.Transport, func()) {
	t.Helper()
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 2000, Shape: render.ShapeBlob, ShapeSeed: 1, Roughness: 0.3, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	tr := faults.NewTransport(nil, seed, plan)
	tr.SetSleep(func(time.Duration) {})
	cfg := testClientConfig()
	cfg.Transport = tr
	if mut != nil {
		mut(&cfg)
	}
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		ts.Close()
		t.Fatal(err)
	}
	return client, tr, ts.Close
}

func TestRetryRecoversFromTransientDrops(t *testing.T) {
	// The first two requests drop; the retry loop must ride it out.
	client, tr, closeFn := newFaultyPair(t, faults.Plan{Flaps: []faults.Window{{From: 0, To: 2}}}, 1, nil)
	defer closeFn()
	m, err := client.Decimate("apricot", 0.5)
	if err != nil {
		t.Fatalf("decimate through transient drops: %v", err)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if r := client.Retries(); r != 2 {
		t.Fatalf("retries = %d, want 2", r)
	}
	if st := tr.Stats(); st.Drops != 2 || st.Passed != 1 {
		t.Fatalf("injector stats = %+v", st)
	}
}

func TestRetryRecoversFrom5xxBurst(t *testing.T) {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 2000, Shape: render.ShapeBlob, ShapeSeed: 1, Roughness: 0.3, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// A two-request 502 burst, then clean.
	rt := &scriptedRT{failures: 2, code: http.StatusBadGateway}
	cfg := testClientConfig()
	cfg.Transport = rt
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Decimate("apricot", 0.5); err != nil {
		t.Fatalf("decimate through 5xx burst: %v", err)
	}
	if client.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", client.Retries())
	}
	st := client.BreakerStats()
	if st.Failures != 2 || st.Successes != 1 || st.State != BreakerClosed {
		t.Fatalf("breaker stats = %+v", st)
	}
}

// scriptedRT fails the first N requests with an HTTP status (0 = drop the
// connection), optionally mangles bodies, then passes through.
type scriptedRT struct {
	mu       sync.Mutex
	seen     int
	failures int
	code     int
	mangle   func([]byte) []byte
}

func (s *scriptedRT) RoundTrip(req *http.Request) (*http.Response, error) {
	s.mu.Lock()
	n := s.seen
	s.seen++
	s.mu.Unlock()
	if n < s.failures {
		if req.Body != nil {
			_, _ = io.Copy(io.Discard, req.Body)
			_ = req.Body.Close()
		}
		if s.code == 0 {
			return nil, errors.New("scripted connection failure")
		}
		return &http.Response{
			Status:     http.StatusText(s.code),
			StatusCode: s.code,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1, ProtoMinor: 1,
			Header:  http.Header{},
			Body:    io.NopCloser(strings.NewReader("scripted failure")),
			Request: req,
		}, nil
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil || s.mangle == nil {
		return resp, err
	}
	body, rerr := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if rerr != nil {
		return nil, rerr
	}
	resp.Body = io.NopCloser(strings.NewReader(string(s.mangle(body))))
	resp.Header.Del("Content-Length")
	resp.ContentLength = -1
	return resp, nil
}

func TestMalformedJSONRetriedThenFails(t *testing.T) {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "apricot", MaxTriangles: 800, Shape: render.ShapeSphere, DistExp: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// Every response is truncated mid-document: retries burn out and the
	// call reports a decode failure rather than hanging or panicking.
	rt := &scriptedRT{mangle: func(b []byte) []byte { return b[:len(b)/2] }}
	cfg := testClientConfig()
	cfg.Transport = rt
	cfg.MaxRetries = 2
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Decimate("apricot", 0.5)
	if err == nil || !strings.Contains(err.Error(), "decoding response") {
		t.Fatalf("truncated responses: err = %v", err)
	}
	if rt.seen != 3 {
		t.Fatalf("attempts = %d, want 1 + 2 retries", rt.seen)
	}
}

func TestTrailingGarbageRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"object":"x","ratio":0.5,"triangles":0,"mesh":{"vertices":[],"triangles":[]}}{"sneaky":1}`))
	}))
	defer ts.Close()
	cfg := testClientConfig()
	cfg.MaxRetries = 0
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Decimate("apricot", 0.5)
	if err == nil || !strings.Contains(err.Error(), "trailing data") {
		t.Fatalf("trailing garbage: err = %v", err)
	}
}

func TestOversizeResponseRejected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"object":"` + strings.Repeat("x", 4096) + `"}`))
	}))
	defer ts.Close()
	cfg := testClientConfig()
	cfg.MaxRetries = 0
	cfg.MaxResponseBytes = 1024
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Decimate("apricot", 0.5)
	if err == nil || !strings.Contains(err.Error(), "limit") {
		t.Fatalf("oversize response: err = %v", err)
	}
}

func TestClientErrorsNotRetried(t *testing.T) {
	client, tr, closeFn := newFaultyPair(t, faults.Plan{}, 1, nil)
	defer closeFn()
	_, err := client.Decimate("ghost", 0.5)
	if err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("unknown object: err = %v", err)
	}
	if tr.Requests() != 1 {
		t.Fatalf("404 was retried: %d requests", tr.Requests())
	}
}

func TestBONextDimensionMismatch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"point":[0.5,0.5]}`))
	}))
	defer ts.Close()
	cfg := testClientConfig()
	client, err := NewClientWithConfig(ts.URL, 8, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.BONext(3, 0.1, 1, nil)
	if err == nil || !strings.Contains(err.Error(), "2-dim point, want 4") {
		t.Fatalf("dimension mismatch: err = %v", err)
	}
}

func TestBreakerOpensAndShortCircuits(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	client, tr, closeFn := newFaultyPair(t, faults.Plan{DropRate: 1}, 1, func(cfg *ClientConfig) {
		cfg.MaxRetries = 1
		cfg.BreakerFailureThreshold = 4
		cfg.Clock = clk.now
	})
	defer closeFn()
	// Two calls × two attempts: four consecutive failures open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := client.Decimate("apricot", 0.5); err == nil {
			t.Fatal("call through dead link succeeded")
		}
	}
	if st := client.BreakerStats(); st.State != BreakerOpen || st.Opens != 1 {
		t.Fatalf("breaker = %+v, want open", st)
	}
	before := tr.Requests()
	_, err := client.Decimate("apricot", 0.5)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("short-circuit error = %v, want ErrUnavailable", err)
	}
	if tr.Requests() != before {
		t.Fatal("short-circuited call still hit the network")
	}
	if client.Available() {
		t.Fatal("Available() true while breaker open")
	}
}

func TestBreakerHalfOpenRecloses(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0)}
	// Exactly the first two requests fail; afterwards the link is clean.
	client, _, closeFn := newFaultyPair(t, faults.Plan{Flaps: []faults.Window{{From: 0, To: 2}}}, 1, func(cfg *ClientConfig) {
		cfg.MaxRetries = 0
		cfg.BreakerFailureThreshold = 2
		cfg.BreakerSuccessThreshold = 2
		cfg.Clock = clk.now
	})
	defer closeFn()
	for i := 0; i < 2; i++ {
		if _, err := client.Decimate("apricot", 0.5); err == nil {
			t.Fatal("call through flap succeeded")
		}
	}
	if st := client.BreakerStats(); st.State != BreakerOpen {
		t.Fatalf("breaker = %+v, want open", st)
	}
	// Probes flow once the open window elapses; two successes re-close.
	clk.advance(client.cfg.BreakerOpenFor)
	if !client.Available() {
		t.Fatal("Available() false after open window")
	}
	if _, err := client.Decimate("apricot", 0.4); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if st := client.BreakerStats(); st.State != BreakerHalfOpen {
		t.Fatalf("breaker after 1 probe = %+v, want half-open", st)
	}
	if _, err := client.Decimate("apricot", 0.6); err != nil {
		t.Fatalf("second probe: %v", err)
	}
	if st := client.BreakerStats(); st.State != BreakerClosed {
		t.Fatalf("breaker after recovery = %+v, want closed", st)
	}
}

func TestCacheReturnsCopies(t *testing.T) {
	// Mutating a mesh handed out by the client must not corrupt the cache
	// (a scene adjusts geometry in place after ApplyLOD).
	_, client, closeFn := newPair(t, 8)
	defer closeFn()
	first, err := client.Decimate("apricot", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := first.Vertices[0]
	first.Vertices[0].X += 1e6
	first.Triangles[0] = mesh.Triangle{0, 0, 0} // degenerate — would fail Validate
	second, err := client.Decimate("apricot", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if h, _ := client.CacheStats(); h != 1 {
		t.Fatalf("second fetch missed the cache (hits=%d)", h)
	}
	if second.Vertices[0] != want {
		t.Fatalf("cache entry corrupted by caller mutation: %+v", second.Vertices[0])
	}
	if err := second.Validate(); err != nil {
		t.Fatalf("cached mesh no longer valid: %v", err)
	}
	if &second.Vertices[0] == &first.Vertices[0] {
		t.Fatal("cache hit aliases previously returned mesh")
	}
}

func TestClientConcurrentCallers(t *testing.T) {
	// One client shared by goroutines: cache, counters, and breaker must be
	// race-free (run under -race).
	client, _, closeFn := newFaultyPair(t, faults.Plan{DropRate: 0.2}, 5, func(cfg *ClientConfig) {
		cfg.MaxRetries = 2
		cfg.BreakerFailureThreshold = 50 // keep the circuit closed for the hammer
	})
	defer closeFn()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				ratio := 0.2 + 0.1*float64((w+i)%7)
				_, _ = client.Decimate("apricot", ratio)
			}
		}()
	}
	wg.Wait()
}

func TestDecimateContextCancellation(t *testing.T) {
	client, tr, closeFn := newFaultyPair(t, faults.Plan{DropRate: 1}, 1, func(cfg *ClientConfig) {
		cfg.MaxRetries = 10
	})
	defer closeFn()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := client.DecimateContext(ctx, "apricot", 0.5)
	if err == nil {
		t.Fatal("cancelled context succeeded")
	}
	// The retry loop must stop on cancellation, not burn all 10 retries.
	if tr.Requests() > 2 {
		t.Fatalf("cancelled call made %d requests", tr.Requests())
	}
}
