package edge

import (
	"errors"
	"sync"
	"time"
)

// ErrUnavailable is returned (wrapped) when the client's circuit breaker is
// open and the call was short-circuited without touching the network. Callers
// holding a local fallback (render.LocalDecimator, on-device BO) should
// switch to it on this error rather than treating the session as failed.
var ErrUnavailable = errors.New("edge server unavailable (circuit open)")

// BreakerState is the circuit breaker's three-state machine.
type BreakerState int

const (
	// BreakerClosed: requests flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are short-circuited until the open window ends.
	BreakerOpen
	// BreakerHalfOpen: probe requests flow; enough successes re-close the
	// circuit, any failure re-opens it.
	BreakerHalfOpen
)

// String returns the state name for logs and bench output.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats is a snapshot of the breaker's counters, exposed for the
// chaos bench and for operators deciding whether degraded windows correlate
// with link faults.
type BreakerStats struct {
	State BreakerState
	// Opens counts closed/half-open → open transitions.
	Opens int
	// ShortCircuits counts requests rejected without touching the network.
	ShortCircuits int
	// Failures and Successes count recorded attempt outcomes.
	Failures  int
	Successes int
	// ConsecutiveFailures is the current run of failures while closed.
	ConsecutiveFailures int
}

// breaker is a three-state circuit breaker. All methods are safe for
// concurrent use. Time is injectable so tests control the open window.
type breaker struct {
	mu sync.Mutex

	failureThreshold int
	successThreshold int
	openFor          time.Duration
	now              func() time.Time

	state     BreakerState
	failures  int // consecutive, while closed
	successes int // consecutive, while half-open
	openedAt  time.Time
	stats     BreakerStats

	// onTransition, when set, is invoked (with b.mu held) after every state
	// change. The hook must not call back into the breaker.
	onTransition func(from, to BreakerState)
}

// setTransitionHook installs (or, with nil, removes) the state-change hook.
func (b *breaker) setTransitionHook(hook func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onTransition = hook
}

// transition switches states and fires the hook; callers hold b.mu.
func (b *breaker) transition(to BreakerState) {
	from := b.state
	b.state = to
	if b.onTransition != nil && from != to {
		b.onTransition(from, to)
	}
}

func newBreaker(failureThreshold, successThreshold int, openFor time.Duration, now func() time.Time) *breaker {
	if now == nil {
		now = time.Now
	}
	return &breaker{
		failureThreshold: failureThreshold,
		successThreshold: successThreshold,
		openFor:          openFor,
		now:              now,
	}
}

// allow reports whether a request may proceed, moving open → half-open once
// the open window has elapsed. A false return is counted as a short circuit.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		if b.now().Sub(b.openedAt) >= b.openFor {
			b.transition(BreakerHalfOpen)
			b.successes = 0
		} else {
			b.stats.ShortCircuits++
			return false
		}
	}
	return true
}

// ready reports whether a request would be allowed, without mutating state
// or counting a short circuit — the availability probe degradation checks
// use before deciding between edge and local fallback.
func (b *breaker) ready() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != BreakerOpen || b.now().Sub(b.openedAt) >= b.openFor
}

// recordSuccess feeds one successful attempt outcome.
func (b *breaker) recordSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Successes++
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.successes++
		if b.successes >= b.successThreshold {
			b.transition(BreakerClosed)
			b.failures = 0
		}
	}
}

// recordFailure feeds one failed attempt outcome.
func (b *breaker) recordFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.stats.Failures++
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.failureThreshold {
			b.open()
		}
	case BreakerHalfOpen:
		// A failing probe re-opens for a fresh window.
		b.open()
	}
}

// open transitions to BreakerOpen; callers hold b.mu.
func (b *breaker) open() {
	b.transition(BreakerOpen)
	b.openedAt = b.now()
	b.failures = 0
	b.successes = 0
	b.stats.Opens++
}

// snapshot returns the current counters.
func (b *breaker) snapshot() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	st := b.stats
	st.State = b.state
	st.ConsecutiveFailures = b.failures
	return st
}
