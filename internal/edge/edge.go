// Package edge implements the edge-server side of the paper's Figure 3
// architecture: a small HTTP service that runs the virtual-object decimation
// algorithm and the Eq. 1 parameter training for its clients, plus the §VI
// option of offloading the Bayesian-optimization step itself ("the payload
// for exchanging such information is in the order of a few Bytes"). The
// matching client keeps a local cache of decimated versions, exactly as the
// paper's HBO control plane does ("each decimated version can either be
// found in the local cache or downloaded from a server").
package edge

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/bo"
	"github.com/mar-hbo/hbo/internal/mesh"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/quality"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Server-side request limits. One client is a single MAR session, so even
// generous bounds are tiny next to what an unvalidated request could cost:
// an unbounded body pins memory, an enormous BO database pins a CPU for the
// O(K^3) GP fit, and a handler that never finishes pins a connection.
const (
	// maxRequestBytes bounds any request body (a full Table II training
	// upload is well under 1 MiB).
	maxRequestBytes = 4 << 20
	// maxTrainSamples bounds one /train upload.
	maxTrainSamples = 100000
	// maxObservations bounds the /bo/next database (the paper's budget is
	// 20 observations per activation).
	maxObservations = 10000
	// maxResources bounds the BO domain dimensionality.
	maxResources = 64
	// handlerTimeout bounds one request's server-side work.
	handlerTimeout = 30 * time.Second
)

// DecimateRequest asks for a decimated version of a catalog object. Fast
// selects the vertex-clustering path (coarser quality, much lower server
// latency) instead of the default quadric edge collapse.
type DecimateRequest struct {
	Object string  `json:"object"`
	Ratio  float64 `json:"ratio"`
	Fast   bool    `json:"fast,omitempty"`
}

// MeshPayload is a wire-format triangle mesh.
type MeshPayload struct {
	Vertices  [][3]float64 `json:"vertices"`
	Triangles [][3]int     `json:"triangles"`
}

// ToMesh converts the payload to a mesh.
func (p MeshPayload) ToMesh() *mesh.Mesh {
	m := &mesh.Mesh{
		Vertices:  make([]mesh.Vec3, len(p.Vertices)),
		Triangles: make([]mesh.Triangle, len(p.Triangles)),
	}
	for i, v := range p.Vertices {
		m.Vertices[i] = mesh.Vec3{X: v[0], Y: v[1], Z: v[2]}
	}
	for i, t := range p.Triangles {
		m.Triangles[i] = mesh.Triangle{t[0], t[1], t[2]}
	}
	return m
}

// FromMesh converts a mesh to its wire format.
func FromMesh(m *mesh.Mesh) MeshPayload {
	p := MeshPayload{
		Vertices:  make([][3]float64, len(m.Vertices)),
		Triangles: make([][3]int, len(m.Triangles)),
	}
	for i, v := range m.Vertices {
		p.Vertices[i] = [3]float64{v.X, v.Y, v.Z}
	}
	for i, t := range m.Triangles {
		p.Triangles[i] = [3]int{t[0], t[1], t[2]}
	}
	return p
}

// DecimateResponse carries the decimated mesh.
type DecimateResponse struct {
	Object    string      `json:"object"`
	Ratio     float64     `json:"ratio"`
	Triangles int         `json:"triangles"`
	Mesh      MeshPayload `json:"mesh"`
}

// TrainRequest carries quality-assessment samples for Eq. 1 fitting.
type TrainRequest struct {
	Object  string           `json:"object"`
	Samples []quality.Sample `json:"samples"`
}

// TrainResponse returns the fitted parameters.
type TrainResponse struct {
	Object string  `json:"object"`
	A      float64 `json:"a"`
	B      float64 `json:"b"`
	C      float64 `json:"c"`
	D      float64 `json:"d"`
}

// Observation is one (configuration, cost) pair of the BO database D.
type Observation struct {
	Point []float64 `json:"point"`
	Cost  float64   `json:"cost"`
}

// BONextRequest uploads the BO database and domain; the server returns the
// next configuration to test. This is the §VI remote-BO path: the payload is
// a few dozen bytes per iteration.
type BONextRequest struct {
	Resources    int           `json:"resources"`
	RMin         float64       `json:"rmin"`
	Seed         uint64        `json:"seed"`
	Observations []Observation `json:"observations"`
}

// BONextResponse returns the next configuration to evaluate.
type BONextResponse struct {
	Point []float64 `json:"point"`
}

// Server is the edge service. It owns the object catalog whose meshes it can
// decimate. Safe for concurrent use: net/http serves each request on its own
// goroutine.
type Server struct {
	specs map[string]render.ObjectSpec

	mu     sync.Mutex
	meshes map[string]*mesh.Mesh // full-quality geometry, built lazily

	// reg is the attached metrics registry; nil leaves Handler uninstrumented
	// (no wrapper, no per-request overhead at all).
	reg *obs.Registry
}

// SetObserver attaches a metrics registry to the server: per-endpoint request
// and error counters plus wall-clock latency histograms. Call before
// Handler(); passing nil (the default) keeps the routes unwrapped.
func (s *Server) SetObserver(reg *obs.Registry) { s.reg = reg }

// NewServer builds a server for the given catalog.
func NewServer(specs []render.ObjectSpec) (*Server, error) {
	s := &Server{
		specs:  make(map[string]render.ObjectSpec, len(specs)),
		meshes: make(map[string]*mesh.Mesh),
	}
	for _, sp := range specs {
		if _, dup := s.specs[sp.Name]; dup {
			return nil, fmt.Errorf("edge: duplicate spec %q", sp.Name)
		}
		s.specs[sp.Name] = sp
	}
	return s, nil
}

// Handler returns the HTTP routes. Every POST handler runs behind a
// request-body size cap and a per-handler timeout, so one abusive or stuck
// request cannot pin the server's memory or connections.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /decimate", s.instrument("decimate", guard(s.handleDecimate)))
	mux.Handle("POST /train", s.instrument("train", guard(s.handleTrain)))
	mux.Handle("POST /bo/next", s.instrument("bo_next", guard(s.handleBONext)))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		_, _ = w.Write([]byte("ok\n"))
	})
	return mux
}

// instrument wraps a route with request/error counters and a latency
// histogram when a registry is attached; with none it returns h unchanged.
// Instruments are resolved once here, so the per-request cost is two atomic
// increments and a histogram observe.
func (s *Server) instrument(name string, h http.Handler) http.Handler {
	if s.reg == nil {
		return h
	}
	requests := s.reg.Counter("edge.server.requests." + name)
	errors := s.reg.Counter("edge.server.errors." + name)
	latency := s.reg.Histogram("edge.server.latency_ms."+name, obs.LatencyBucketsMS)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(rec, r)
		latency.Observe(float64(time.Since(start)) / float64(time.Millisecond))
		requests.Inc()
		if rec.status >= 400 {
			errors.Inc()
		}
	})
}

// statusRecorder captures the response status for the error counter.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// guard wraps a handler with the body cap and handler timeout.
func guard(h http.HandlerFunc) http.Handler {
	limited := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
		h(w, r)
	})
	return http.TimeoutHandler(limited, handlerTimeout, "edge: handler timeout")
}

// decodeRequest decodes a guarded JSON request body, translating the
// MaxBytesReader trip into 413 and everything else into 400.
func decodeRequest(w http.ResponseWriter, r *http.Request, into any) bool {
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			http.Error(w, fmt.Sprintf("request body over %d bytes", tooLarge.Limit), http.StatusRequestEntityTooLarge)
			return false
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// geometry returns (building if needed) the full-quality mesh for an object.
// The cache is guarded: concurrent requests for the same object build it at
// most once while the lock is held (geometry generation is fast enough that
// holding the lock across the build is simpler than per-key once values).
func (s *Server) geometry(name string) (*mesh.Mesh, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m, ok := s.meshes[name]; ok {
		return m, nil
	}
	spec, ok := s.specs[name]
	if !ok {
		return nil, fmt.Errorf("edge: unknown object %q", name)
	}
	m, err := spec.Geometry()
	if err != nil {
		return nil, err
	}
	s.meshes[name] = m
	return m, nil
}

// Decimate runs the server's decimation pipeline directly: full-quality
// geometry from the catalog cache, then quadric edge collapse (or vertex
// clustering when fast). It is the computational core behind the /decimate
// route, exported so the session service can serve per-session mesh caches
// from the same catalog without a loopback HTTP hop.
func (s *Server) Decimate(object string, ratio float64, fast bool) (*mesh.Mesh, error) {
	if math.IsNaN(ratio) || ratio <= 0 || ratio > 1 {
		return nil, fmt.Errorf("edge: ratio %v out of (0,1]", ratio)
	}
	full, err := s.geometry(object)
	if err != nil {
		return nil, err
	}
	if fast {
		target := int(ratio * float64(full.TriangleCount()))
		if target < 1 {
			target = 1
		}
		return mesh.VertexClustering(full, target)
	}
	return mesh.DecimateToRatio(full, ratio)
}

func (s *Server) handleDecimate(w http.ResponseWriter, r *http.Request) {
	var req DecimateRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if math.IsNaN(req.Ratio) || req.Ratio <= 0 || req.Ratio > 1 {
		http.Error(w, fmt.Sprintf("ratio %v out of (0,1]", req.Ratio), http.StatusBadRequest)
		return
	}
	if _, err := s.geometry(req.Object); err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	dec, err := s.Decimate(req.Object, req.Ratio, req.Fast)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, DecimateResponse{
		Object:    req.Object,
		Ratio:     req.Ratio,
		Triangles: dec.TriangleCount(),
		Mesh:      FromMesh(dec),
	})
}

func (s *Server) handleTrain(w http.ResponseWriter, r *http.Request) {
	var req TrainRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if len(req.Samples) > maxTrainSamples {
		http.Error(w, fmt.Sprintf("%d samples over the %d limit", len(req.Samples), maxTrainSamples), http.StatusBadRequest)
		return
	}
	p, err := quality.Fit(req.Samples)
	if err != nil {
		http.Error(w, err.Error(), http.StatusUnprocessableEntity)
		return
	}
	writeJSON(w, TrainResponse{Object: req.Object, A: p.A, B: p.B, C: p.C, D: p.D})
}

func (s *Server) handleBONext(w http.ResponseWriter, r *http.Request) {
	var req BONextRequest
	if !decodeRequest(w, r, &req) {
		return
	}
	if req.Resources < 1 || req.Resources > maxResources {
		http.Error(w, fmt.Sprintf("resources %d out of [1,%d]", req.Resources, maxResources), http.StatusBadRequest)
		return
	}
	if len(req.Observations) > maxObservations {
		http.Error(w, fmt.Sprintf("%d observations over the %d limit", len(req.Observations), maxObservations), http.StatusBadRequest)
		return
	}
	dom := bo.Domain{N: req.Resources, RMin: req.RMin}
	opt, err := bo.NewOptimizer(dom, bo.DefaultConfig(), sim.NewRNG(req.Seed))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	for _, o := range req.Observations {
		if err := opt.Observe(o.Point, o.Cost); err != nil {
			http.Error(w, err.Error(), http.StatusUnprocessableEntity)
			return
		}
	}
	point, err := opt.Next()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, BONextResponse{Point: point})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Headers are already out; nothing more useful to do than log-level
		// reporting, which this package leaves to the caller's middleware.
		return
	}
}
