package edge

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/mar-hbo/hbo/internal/render"
)

// fuzzHandler builds the server routes once for the whole fuzz run; the
// catalog is tiny so accidental valid decimate requests stay cheap.
var fuzzHandler = sync.OnceValue(func() http.Handler {
	srv, err := NewServer([]render.ObjectSpec{
		{Name: "fuzzy", MaxTriangles: 500, Shape: render.ShapeBlob, ShapeSeed: 7, Roughness: 0.3, DistExp: 1},
	})
	if err != nil {
		panic(err)
	}
	return srv.Handler()
})

// FuzzEdgeRequestDecode throws arbitrary bodies at each POST endpoint's
// request decoding and validation. The server must never panic and must
// always answer with a plausible HTTP status, whatever the body contains —
// truncated JSON, out-of-range numbers, huge polygon counts, or a valid
// request for an unknown object.
func FuzzEdgeRequestDecode(f *testing.F) {
	seeds := []struct {
		endpoint byte
		body     string
	}{
		{0, `{"object":"fuzzy","ratio":0.5}`},
		{0, `{"object":"fuzzy","ratio":0.1,"fast":true}`},
		{0, `{"object":"missing","ratio":0.5}`},
		{0, `{"object":"fuzzy","ratio":1e999}`},
		{0, `{"object":"fuzzy","ratio":-1}`},
		{1, `{"object":"fuzzy","samples":[{"ratio":0.5,"score":0.8},{"ratio":1,"score":1}]}`},
		{1, `{"object":"fuzzy","samples":[]}`},
		{2, `{"resources":3,"rmin":0.1,"seed":1,"observations":[]}`},
		{2, `{"resources":-1,"rmin":0.1,"seed":1,"observations":[]}`},
		{2, `{"resources":3,"rmin":0.1,"seed":1,"observations":[{"point":[1,0,0,0.5],"cost":0.2}]}`},
		{2, `{"resources":3,"rmin":2}`},
		{0, `{`},
		{1, `null`},
		{2, `[]`},
		{3, ``},
	}
	for _, s := range seeds {
		f.Add(s.endpoint, []byte(s.body))
	}
	paths := []string{"/decimate", "/train", "/bo/next"}
	f.Fuzz(func(t *testing.T, endpoint byte, body []byte) {
		path := paths[int(endpoint)%len(paths)]
		req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		fuzzHandler().ServeHTTP(rec, req)
		if rec.Code < 200 || rec.Code > 599 {
			t.Fatalf("%s returned impossible status %d", path, rec.Code)
		}
	})
}
