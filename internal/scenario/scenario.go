// Package scenario assembles the paper's experimental setups (Table II):
// device + virtual-object set + AI taskset combinations (SC{1,2} × CF{1,2}),
// plus the scripted timelines behind the motivation study (Fig. 2) and the
// activation study (Fig. 8).
package scenario

import (
	"fmt"

	"github.com/mar-hbo/hbo/internal/core"
	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/render"
	"github.com/mar-hbo/hbo/internal/sim"
	"github.com/mar-hbo/hbo/internal/soc"
	"github.com/mar-hbo/hbo/internal/tasks"
)

// Spec is a reproducible experimental setup.
type Spec struct {
	// Name identifies the combination ("SC1-CF1").
	Name string
	// Device builds a fresh device profile.
	Device func() *soc.DeviceProfile
	// Objects is the Table II object list (may be empty for AI-only runs).
	Objects []render.ObjectCount
	// Taskset is the AI taskset.
	Taskset tasks.Set
	// Distance is the initial user-object distance for every placement.
	Distance float64
	// StartEmpty trains the object library but places nothing, for
	// experiments that script their own object additions (Figs. 2 and 8).
	StartEmpty bool
}

// Built is a fully assembled scenario ready to run.
type Built struct {
	Spec    Spec
	Engine  *sim.Engine
	System  *soc.System
	Library *render.Library
	Scene   *render.Scene
	Profile *soc.Profile
	Runtime *core.Runtime
}

// Build assembles the scenario deterministically from the seed: train the
// object library, profile the taskset offline, place all objects at the
// initial distance, and start every AI task on its profiled best resource.
func (s Spec) Build(seed uint64) (*Built, error) {
	if s.Device == nil {
		return nil, fmt.Errorf("scenario %s: nil device", s.Name)
	}
	dev := s.Device()
	lib, err := render.LibraryFor(s.Objects, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	prof, err := soc.ProfileTaskset(dev, s.Taskset, seed)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	eng := sim.NewEngine(seed)
	sys := soc.NewSystem(eng, dev, soc.DefaultConfig())
	scene := render.NewScene(lib)
	if !s.StartEmpty {
		if err := scene.PlaceAll(s.Objects, s.Distance); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
		}
	}
	rt, err := core.NewRuntime(sys, scene, prof, s.Taskset)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	// Wire the process-wide registry (if any) through every layer. With no
	// registry set — the default — each SetObserver stores nil instruments
	// and the hot paths keep their zero-overhead no-op behaviour.
	if reg := obs.Default(); reg != nil {
		eng.SetObserver(reg)
		sys.SetObserver(reg)
		rt.SetObserver(reg)
	}
	return &Built{
		Spec:    s,
		Engine:  eng,
		System:  sys,
		Library: lib,
		Scene:   scene,
		Profile: prof,
		Runtime: rt,
	}, nil
}

// defaultDistance is the initial user-object distance used across the
// evaluation scenarios.
const defaultDistance = 1.5

// SC1CF1 returns the heavy-objects/six-tasks scenario on the Pixel 7 — the
// paper's most contended combination (§V-C uses it for the baseline
// comparison).
func SC1CF1() Spec {
	return Spec{Name: "SC1-CF1", Device: soc.Pixel7, Objects: render.SC1(), Taskset: tasks.CF1(), Distance: defaultDistance}
}

// SC2CF1 returns light objects with the six-task CF1 set.
func SC2CF1() Spec {
	return Spec{Name: "SC2-CF1", Device: soc.Pixel7, Objects: render.SC2(), Taskset: tasks.CF1(), Distance: defaultDistance}
}

// SC1CF2 returns heavy objects with the three-task CF2 set.
func SC1CF2() Spec {
	return Spec{Name: "SC1-CF2", Device: soc.Pixel7, Objects: render.SC1(), Taskset: tasks.CF2(), Distance: defaultDistance}
}

// SC2CF2 returns the lightest combination.
func SC2CF2() Spec {
	return Spec{Name: "SC2-CF2", Device: soc.Pixel7, Objects: render.SC2(), Taskset: tasks.CF2(), Distance: defaultDistance}
}

// All returns the four evaluation scenarios in paper order.
func All() []Spec {
	return []Spec{SC1CF1(), SC2CF1(), SC1CF2(), SC2CF2()}
}

// ByName finds an evaluation scenario by its paper name.
func ByName(name string) (Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("scenario: unknown scenario %q", name)
}
