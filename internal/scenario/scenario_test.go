package scenario

import (
	"testing"
)

func TestAllScenarioNames(t *testing.T) {
	want := []string{"SC1-CF1", "SC2-CF1", "SC1-CF2", "SC2-CF2"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d scenarios", len(all))
	}
	for i, s := range all {
		if s.Name != want[i] {
			t.Errorf("scenario %d = %s, want %s", i, s.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	s, err := ByName("SC1-CF2")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Taskset.Tasks) != 3 {
		t.Fatalf("SC1-CF2 has %d tasks, want 3", len(s.Taskset.Tasks))
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}

func TestBuildSC2CF2(t *testing.T) {
	built, err := SC2CF2().Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if built.Scene.Len() != 7 {
		t.Fatalf("scene has %d objects, want 7", built.Scene.Len())
	}
	if got := len(built.System.TaskIDs()); got != 3 {
		t.Fatalf("system has %d tasks, want 3", got)
	}
	// Tasks start on their profiled best resources.
	for id, best := range built.Profile.Best {
		got, err := built.System.Allocation(id)
		if err != nil {
			t.Fatal(err)
		}
		if got != best {
			t.Errorf("task %s starts on %s, want %s", id, got, best)
		}
	}
	// Render load synced to the full-quality scene.
	if built.System.RenderUtil() <= 0 {
		t.Fatal("render util not synced")
	}
}

func TestBuildStartEmpty(t *testing.T) {
	spec := SC1CF1()
	spec.StartEmpty = true
	built, err := spec.Build(1)
	if err != nil {
		t.Fatal(err)
	}
	if built.Scene.Len() != 0 {
		t.Fatalf("StartEmpty scene has %d objects", built.Scene.Len())
	}
	// The library still knows the catalog.
	if _, err := built.Scene.Place("bike", 1, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBuildRejectsNilDevice(t *testing.T) {
	spec := SC1CF1()
	spec.Device = nil
	if _, err := spec.Build(1); err == nil {
		t.Fatal("nil device accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := SC2CF2().Build(5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SC2CF2().Build(5)
	if err != nil {
		t.Fatal(err)
	}
	la := a.System.MeanLatencies(2000)
	lb := b.System.MeanLatencies(2000)
	for id, v := range la {
		if lb[id] != v {
			t.Errorf("task %s differs across same-seed builds: %v vs %v", id, v, lb[id])
		}
	}
}
