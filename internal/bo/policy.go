package bo

// Policy is the pluggable contract over the joint (c_t, x_t) search: any
// sequential decision procedure that suggests points in a Domain and learns
// from observed costs. The GP-EI Optimizer is the reference implementation;
// rival entrants (bandits, evolution strategies, random search) live in
// internal/bo/policies and race under internal/experiments' arena harness.
//
// The determinism contract every implementation must honor:
//
//   - All randomness flows through a seeded *sim.RNG supplied at
//     construction. No wall clock, no global math/rand, no map-iteration
//     order may influence a suggestion.
//   - Next is a pure function of (construction parameters, RNG position,
//     observation history): two policies built identically and fed the same
//     Observe sequence emit bit-identical suggestion streams.
//   - Observe must not retroactively mutate a slice previously returned by
//     Next; suggestions are owned by the caller once returned.
//
// Policies are not safe for concurrent use; callers serialize access
// (sessiond holds the per-session lock, the arena runs one policy per
// goroutine).
type Policy interface {
	// Next suggests the next configuration to evaluate, encoded as
	// [c_1 ... c_N, x] in the policy's Domain.
	Next() ([]float64, error)
	// Observe records the measured cost of a previously suggested point.
	Observe(p []float64, cost float64) error
	// Observations returns the number of recorded (point, cost) pairs.
	Observations() int
	// Best returns the lowest-cost observed point, ok=false before any
	// observation.
	Best() (p []float64, cost float64, ok bool)
}

// DurablePolicy is a Policy whose complete resumable state fits in an
// OptimizerState: the RNG position plus the observation database (the GP
// fields stay zero for non-GP entrants). sessiond snapshots DurablePolicy
// sessions across evictions and restarts; policies that carry state an
// OptimizerState cannot express (e.g. CMA-ES evolution paths) are
// "ephemeral" — eviction drops them and re-admission rebuilds via client
// replay.
type DurablePolicy interface {
	Policy
	// ExportState deep-copies the policy's resumable state. Restoring via
	// the policies registry must yield a policy whose future suggestion
	// stream is bit-identical to the exporter's.
	ExportState() *OptimizerState
}

var (
	_ Policy        = (*Optimizer)(nil)
	_ DurablePolicy = (*Optimizer)(nil)
)
