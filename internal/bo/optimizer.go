package bo

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/mar-hbo/hbo/internal/obs"
	"github.com/mar-hbo/hbo/internal/sim"
)

// Domain is the paper's joint search space: an N-dimensional simplex of
// per-resource task proportions c (Constraints 8–9) crossed with the
// triangle-count ratio x in [RMin, 1] (Constraint 10). Points are encoded as
// vectors [c_1 ... c_N, x].
type Domain struct {
	// N is the number of allocatable resources.
	N int
	// RMin is the minimum total triangle ratio R^min.
	RMin float64
}

// Dim returns the point dimensionality (N proportions plus the ratio).
func (d Domain) Dim() int { return d.N + 1 }

// Validate checks the domain itself.
func (d Domain) Validate() error {
	if d.N < 1 {
		return fmt.Errorf("bo: domain needs at least one resource, got %d", d.N)
	}
	if d.RMin < 0 || d.RMin > 1 {
		return fmt.Errorf("bo: RMin %v out of [0,1]", d.RMin)
	}
	return nil
}

// Contains reports whether p satisfies Constraints 8–10 up to tolerance.
func (d Domain) Contains(p []float64) bool {
	if len(p) != d.Dim() {
		return false
	}
	sum := 0.0
	for i := 0; i < d.N; i++ {
		if p[i] < -1e-9 || p[i] > 1+1e-9 {
			return false
		}
		sum += p[i]
	}
	if math.Abs(sum-1) > 1e-6 {
		return false
	}
	x := p[d.N]
	return x >= d.RMin-1e-9 && x <= 1+1e-9
}

// Project maps an arbitrary vector onto the domain: proportions are clipped
// at zero and renormalized, the ratio is clamped.
func (d Domain) Project(p []float64) {
	sum := 0.0
	for i := 0; i < d.N; i++ {
		if p[i] < 0 || math.IsNaN(p[i]) {
			p[i] = 0
		}
		sum += p[i]
	}
	if sum <= 0 {
		for i := 0; i < d.N; i++ {
			p[i] = 1 / float64(d.N)
		}
	} else {
		for i := 0; i < d.N; i++ {
			p[i] /= sum
		}
	}
	x := p[d.N]
	if math.IsNaN(x) || x < d.RMin {
		x = d.RMin
	}
	if x > 1 {
		x = 1
	}
	p[d.N] = x
}

// Sample draws a uniform point: Dirichlet(1) on the simplex, uniform ratio.
func (d Domain) Sample(rng *sim.RNG) []float64 {
	p := make([]float64, d.Dim())
	d.sampleInto(rng, p)
	return p
}

// sampleInto draws a uniform point into p, which must have length Dim().
func (d Domain) sampleInto(rng *sim.RNG, p []float64) {
	rng.Dirichlet(1, p[:d.N])
	p[d.N] = d.RMin + (1-d.RMin)*rng.Float64()
}

// Distance returns the Euclidean distance between two points (used for the
// paper's Figure 6a exploration/exploitation analysis).
func Distance(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		diff := a[i] - b[i]
		s += diff * diff
	}
	return math.Sqrt(s)
}

// Config tunes the optimizer.
type Config struct {
	// InitSamples is the number of random configurations explored before
	// the GP drives acquisition (the paper uses 5).
	InitSamples int
	// Candidates is the size of the random candidate pool scored by EI at
	// each suggestion.
	Candidates int
	// RefineSteps is the number of stochastic local-refinement steps
	// applied to the best EI candidate.
	RefineSteps int
	// NoiseVar is the observation-noise variance of the GP.
	NoiseVar float64
	// LengthScale is the Matérn length scale ℓ (the paper uses 1).
	LengthScale float64
	// Acquisition selects the acquisition function; nil means EI (the
	// paper's choice).
	Acquisition Acquisition
	// AutoLengthScale re-selects the Matérn length scale at every
	// suggestion by maximizing the log marginal likelihood over a small
	// grid, instead of using the fixed LengthScale.
	AutoLengthScale bool
	// Jobs bounds the worker goroutines scoring the candidate pool; 0
	// means GOMAXPROCS. Candidates are pre-drawn sequentially from the
	// seeded RNG and the argmax breaks ties by lowest index, so the
	// suggestion is bit-identical for every Jobs value.
	Jobs int
}

// DefaultConfig returns the paper-matching configuration.
func DefaultConfig() Config {
	return Config{
		InitSamples: 5,
		Candidates:  1024,
		RefineSteps: 60,
		NoiseVar:    0.01,
		LengthScale: 0.3,
		Acquisition: EI{},
	}
}

// Optimizer is a sequential model-based minimizer of a black-box function
// over a Domain, implementing the paper's BO(D) step (Algorithm 1, line 1).
// It is not safe for concurrent use. Between suggestions it keeps the GP
// surrogate's Cholesky factorization and extends it incrementally, so a
// suggestion costs O(n²) in the database size instead of O(n³).
type Optimizer struct {
	dom Domain
	cfg Config
	rng *sim.RNG

	xs [][]float64
	ys []float64

	// Persistent surrogate state: the factorization is reused across Next
	// calls while the length scale is unchanged (see DESIGN.md §9).
	gp      *GP
	gpScale float64

	// Reusable scratch: winsorization buffers, the pre-drawn candidate
	// pool, its scores, per-worker prediction scratch, and the two
	// refinement buffers.
	clipBuf   []float64
	sortBuf   []float64
	candFlat  []float64
	cands     [][]float64
	scores    []float64
	scratches []PredictScratch
	refineA   []float64
	refineB   []float64

	// Observability instruments; nil (no-op) unless SetObserver is called.
	// The wall clock is read only when the suggestion-latency histogram is
	// live, and its value never feeds back into the search, so suggestions
	// are bit-identical with metrics on or off.
	metSuggestions *obs.Counter
	metRefits      *obs.Counter
	metUpdates     *obs.Counter
	metRestarts    *obs.Counter
	metGPSize      *obs.Gauge
	metSuggestMS   *obs.Histogram
}

// SetObserver attaches a metrics registry: suggestion count and wall-clock
// latency, GP database size, full refits versus incremental extensions, and
// Cholesky jitter-ladder restarts. Passing nil detaches.
func (o *Optimizer) SetObserver(reg *obs.Registry) {
	o.metSuggestions = reg.Counter("bo.suggestions")
	o.metRefits = reg.Counter("bo.gp_refits")
	o.metUpdates = reg.Counter("bo.gp_incremental_updates")
	o.metRestarts = reg.Counter("bo.jitter_restarts")
	o.metGPSize = reg.Gauge("bo.gp_size")
	if reg != nil {
		o.metSuggestMS = reg.Histogram("bo.suggest_wall_ms", obs.LatencyBucketsMS)
	} else {
		o.metSuggestMS = nil
	}
	if o.gp != nil {
		o.gp.metRestarts = o.metRestarts
	}
}

// NewOptimizer builds an optimizer for the domain.
func NewOptimizer(dom Domain, cfg Config, rng *sim.RNG) (*Optimizer, error) {
	if err := dom.Validate(); err != nil {
		return nil, err
	}
	if cfg.InitSamples < 1 {
		return nil, fmt.Errorf("bo: InitSamples must be >= 1, got %d", cfg.InitSamples)
	}
	if cfg.Candidates < 1 || cfg.RefineSteps < 0 {
		return nil, fmt.Errorf("bo: invalid search budget %d/%d", cfg.Candidates, cfg.RefineSteps)
	}
	if cfg.LengthScale <= 0 {
		return nil, fmt.Errorf("bo: length scale must be positive, got %v", cfg.LengthScale)
	}
	if cfg.Jobs < 0 {
		return nil, fmt.Errorf("bo: Jobs must be >= 0, got %d", cfg.Jobs)
	}
	if rng == nil {
		return nil, fmt.Errorf("bo: nil RNG")
	}
	if cfg.Acquisition == nil {
		cfg.Acquisition = EI{}
	}
	return &Optimizer{dom: dom, cfg: cfg, rng: rng}, nil
}

// Observations returns the number of recorded (point, cost) pairs.
func (o *Optimizer) Observations() int { return len(o.xs) }

// Observe records the measured cost of a previously suggested point; it is
// Algorithm 1's database update (line 26).
func (o *Optimizer) Observe(p []float64, cost float64) error {
	if !o.dom.Contains(p) {
		return fmt.Errorf("bo: observed point %v outside domain", p)
	}
	if math.IsNaN(cost) || math.IsInf(cost, 0) {
		return fmt.Errorf("bo: non-finite cost %v", cost)
	}
	cp := append([]float64(nil), p...)
	o.xs = append(o.xs, cp)
	o.ys = append(o.ys, cost)
	return nil
}

// Best returns the lowest-cost observed point. It returns ok=false before
// any observation.
func (o *Optimizer) Best() (p []float64, cost float64, ok bool) {
	if len(o.ys) == 0 {
		return nil, 0, false
	}
	bi := 0
	for i, y := range o.ys {
		if y < o.ys[bi] {
			bi = i
		}
	}
	return append([]float64(nil), o.xs[bi]...), o.ys[bi], true
}

// Next suggests the next configuration to evaluate: random during the
// initialization phase, then the EI-maximizing candidate under the GP
// posterior. The candidate pool is pre-drawn sequentially from the seeded
// RNG and scored on a bounded worker pool (Config.Jobs); the result is
// bit-identical to a serial scan.
func (o *Optimizer) Next() ([]float64, error) {
	o.metSuggestions.Inc()
	if o.metSuggestMS == nil {
		return o.next()
	}
	start := time.Now()
	p, err := o.next()
	o.metSuggestMS.Observe(float64(time.Since(start)) / float64(time.Millisecond))
	return p, err
}

func (o *Optimizer) next() ([]float64, error) {
	if len(o.xs) < o.cfg.InitSamples {
		return o.dom.Sample(o.rng), nil
	}
	lengthScale := o.cfg.LengthScale
	clipped := o.clippedCosts()
	if o.cfg.AutoLengthScale {
		if l, err := SelectLengthScale(o.xs, clipped, o.cfg.NoiseVar,
			[]float64{0.1, 0.2, 0.3, 0.5, 0.8, 1.2}); err == nil {
			lengthScale = l
		}
	}
	if err := o.ensureSurrogate(lengthScale, clipped); err != nil {
		return nil, err
	}
	bestPoint, best, _ := o.Best()

	// Candidate pool: uniform draws plus perturbations of the incumbent,
	// mixing exploration and exploitation. All draws happen here, on the
	// single RNG stream, before any concurrent scoring.
	dim := o.dom.Dim()
	o.ensureSearchBuffers(o.cfg.Candidates, dim)
	for i := 0; i < o.cfg.Candidates; i++ {
		if i%4 == 0 {
			o.perturbInto(o.cands[i], bestPoint, 0.15)
		} else {
			o.dom.sampleInto(o.rng, o.cands[i])
		}
	}
	o.scoreCandidates(best)
	topIdx := 0
	topEI := math.Inf(-1)
	for i, ei := range o.scores[:o.cfg.Candidates] {
		if ei > topEI {
			topEI = ei
			topIdx = i
		}
	}

	// Stochastic local refinement with a shrinking step.
	top := append(o.refineA[:0], o.cands[topIdx]...)
	cand := o.refineB[:dim]
	scratch := &o.scratches[0]
	step := 0.2
	for i := 0; i < o.cfg.RefineSteps; i++ {
		o.perturbInto(cand, top, step)
		mean, variance := o.gp.PredictInto(cand, scratch)
		if ei := o.cfg.Acquisition.Score(mean, variance, best); ei > topEI {
			topEI = ei
			top, cand = cand, top
		} else {
			step *= 0.93
		}
	}
	o.refineA, o.refineB = top, cand
	return append([]float64(nil), top...), nil
}

// ensureSurrogate brings the persistent GP in sync with the observation
// database: a full refit when the length scale changed (or no fit exists),
// an O(n²) incremental extension otherwise. Targets are re-standardized
// every call because the winsorization clip level moves with the database.
func (o *Optimizer) ensureSurrogate(lengthScale float64, clipped []float64) error {
	if o.gp == nil || math.Float64bits(lengthScale) != math.Float64bits(o.gpScale) {
		gp, err := NewGP(Matern52{LengthScale: lengthScale, SignalVar: 1}, o.cfg.NoiseVar)
		if err != nil {
			return err
		}
		gp.metRestarts = o.metRestarts
		if err := gp.Fit(o.xs, clipped); err != nil {
			return fmt.Errorf("bo: surrogate fit: %w", err)
		}
		o.gp, o.gpScale = gp, lengthScale
		o.metRefits.Inc()
		o.metGPSize.Set(float64(gp.Observations()))
		return nil
	}
	if err := o.gp.Update(o.xs, clipped); err != nil {
		return fmt.Errorf("bo: surrogate fit: %w", err)
	}
	o.metUpdates.Inc()
	o.metGPSize.Set(float64(o.gp.Observations()))
	return nil
}

// ensureSearchBuffers sizes the candidate pool, score, scratch, and
// refinement buffers without allocating on the steady state.
func (o *Optimizer) ensureSearchBuffers(n, dim int) {
	if cap(o.candFlat) < n*dim {
		o.candFlat = make([]float64, n*dim)
		o.cands = make([][]float64, n)
		for i := range o.cands {
			o.cands[i] = o.candFlat[i*dim : (i+1)*dim]
		}
	}
	if cap(o.scores) < n {
		o.scores = make([]float64, n)
	}
	o.scores = o.scores[:n]
	if cap(o.refineA) < dim {
		o.refineA = make([]float64, dim)
		o.refineB = make([]float64, dim)
	}
	o.refineA, o.refineB = o.refineA[:dim], o.refineB[:dim]
	workers := o.workers(n)
	if len(o.scratches) < workers {
		o.scratches = make([]PredictScratch, workers)
	}
}

// workers resolves the candidate-scoring concurrency.
func (o *Optimizer) workers(n int) int {
	w := o.cfg.Jobs
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// scoreCandidates fills o.scores for the pre-drawn pool. Each candidate's
// score depends only on the frozen GP and the incumbent, so the split into
// contiguous worker chunks cannot change any value.
func (o *Optimizer) scoreCandidates(best float64) {
	n := o.cfg.Candidates
	acq := o.cfg.Acquisition
	workers := o.workers(n)
	if workers == 1 {
		s := &o.scratches[0]
		for i := 0; i < n; i++ {
			mean, variance := o.gp.PredictInto(o.cands[i], s)
			o.scores[i] = acq.Score(mean, variance, best)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int, s *PredictScratch) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				mean, variance := o.gp.PredictInto(o.cands[i], s)
				o.scores[i] = acq.Score(mean, variance, best)
			}
		}(lo, hi, &o.scratches[w])
	}
	wg.Wait()
}

// clippedCosts returns the observations winsorized at an upper quantile,
// reusing internal buffers (the returned slice is valid until the next
// call). HBO's cost is unbounded above (a saturated configuration can be
// orders of magnitude slower than a good one); feeding such outliers to the
// GP blows up the output scale and erases the resolution needed to
// discriminate among *good* configurations. Clipping preserves "this region
// is bad" while keeping the interesting region's scale.
func (o *Optimizer) clippedCosts() []float64 {
	ys := append(o.clipBuf[:0], o.ys...)
	o.clipBuf = ys
	sorted := append(o.sortBuf[:0], o.ys...)
	o.sortBuf = sorted
	sort.Float64s(sorted)
	// 70th percentile as the clip level, but never below best + a minimal
	// spread so early iterations (few points, all bad) still discriminate.
	clip := sorted[(len(sorted)*7)/10]
	if len(sorted) >= 2 {
		if minSpread := sorted[0] + (sorted[1] - sorted[0]) + 1e-9; clip < minSpread {
			clip = minSpread
		}
	}
	for i, y := range ys {
		if y > clip {
			ys[i] = clip
		}
	}
	return ys
}

// perturbInto writes a projected Gaussian perturbation of p into dst.
func (o *Optimizer) perturbInto(dst, p []float64, scale float64) {
	for i := range p {
		dst[i] = p[i] + scale*o.rng.Norm()
	}
	o.dom.Project(dst)
}
