package bo

import (
	"math"
	"testing"

	"github.com/mar-hbo/hbo/internal/sim"
)

// stateTestCost is an arbitrary smooth deterministic objective.
func stateTestCost(p []float64) float64 {
	c := 0.0
	for i, v := range p {
		c += v * float64(i+1) * 0.1
	}
	return math.Sin(c*7) + c
}

// drive advances an optimizer through k suggest+observe rounds.
func drive(t *testing.T, o *Optimizer, k int) {
	t.Helper()
	for i := 0; i < k; i++ {
		p, err := o.Next()
		if err != nil {
			t.Fatalf("next %d: %v", i, err)
		}
		if err := o.Observe(p, stateTestCost(p)); err != nil {
			t.Fatalf("observe %d: %v", i, err)
		}
	}
}

// samePoints compares two suggestions bit for bit.
func samePoints(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: dim %d vs %d", tag, len(got), len(want))
	}
	for d := range want {
		if math.Float64bits(got[d]) != math.Float64bits(want[d]) {
			t.Fatalf("%s: dim %d got %x want %x",
				tag, d, math.Float64bits(got[d]), math.Float64bits(want[d]))
		}
	}
}

// TestExportImportBitIdentity is the core durability contract: exporting an
// optimizer at any point of its life and rebuilding it from the state must
// continue the exact suggestion stream the original would have produced —
// through the init phase, right after init, and deep into GP-driven search.
func TestExportImportBitIdentity(t *testing.T) {
	dom := Domain{N: 3, RMin: 0.1}
	cfg := DefaultConfig()
	cfg.Candidates = 128
	cfg.RefineSteps = 10
	for _, rounds := range []int{0, 2, 5, 9, 17} {
		live, err := NewOptimizer(dom, cfg, sim.NewRNG(42))
		if err != nil {
			t.Fatalf("optimizer: %v", err)
		}
		drive(t, live, rounds)
		st := live.ExportState()

		restored, err := NewOptimizerFromState(dom, cfg, st)
		if err != nil {
			t.Fatalf("rounds=%d: restore: %v", rounds, err)
		}
		// Continue both for several more rounds; every suggestion must agree
		// bit for bit (the restored factor extends incrementally exactly as
		// the live one does).
		for k := 0; k < 4; k++ {
			wp, err := live.Next()
			if err != nil {
				t.Fatalf("live next: %v", err)
			}
			gp, err := restored.Next()
			if err != nil {
				t.Fatalf("restored next: %v", err)
			}
			samePoints(t, "after restore", gp, wp)
			c := stateTestCost(wp)
			if err := live.Observe(wp, c); err != nil {
				t.Fatal(err)
			}
			if err := restored.Observe(gp, c); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestExportAfterSuggestBeforeObserve pins the mid-cycle case the session
// tier hits constantly: state exported between a suggest and its observe
// (RNG already advanced) must resume bit-identically.
func TestExportAfterSuggestBeforeObserve(t *testing.T) {
	dom := Domain{N: 2, RMin: 0.2}
	cfg := DefaultConfig()
	cfg.Candidates = 64
	cfg.RefineSteps = 5
	live, err := NewOptimizer(dom, cfg, sim.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, live, 7)
	if _, err := live.Next(); err != nil { // dangling suggest: RNG moved, no observe yet
		t.Fatal(err)
	}
	restored, err := NewOptimizerFromState(dom, cfg, live.ExportState())
	if err != nil {
		t.Fatal(err)
	}
	wp, err := live.Next()
	if err != nil {
		t.Fatal(err)
	}
	gp, err := restored.Next()
	if err != nil {
		t.Fatal(err)
	}
	samePoints(t, "dangling suggest", gp, wp)
}

// TestImportValidation exercises the defensive checks against states that
// crossed a disk boundary and rotted.
func TestImportValidation(t *testing.T) {
	dom := Domain{N: 2, RMin: 0.1}
	cfg := DefaultConfig()
	cfg.Candidates = 32
	cfg.RefineSteps = 2
	base, err := NewOptimizer(dom, cfg, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	drive(t, base, 8)
	good := base.ExportState()
	if good.GPRows == 0 {
		t.Fatal("expected an exported factor after 8 rounds")
	}

	mutations := []struct {
		name string
		mut  func(st *OptimizerState)
	}{
		{"nil state is rejected via nil pointer", nil},
		{"length mismatch", func(st *OptimizerState) { st.Y = st.Y[:len(st.Y)-1] }},
		{"point outside domain", func(st *OptimizerState) { st.X[0][0] = 9 }},
		{"non-finite cost", func(st *OptimizerState) { st.Y[0] = math.NaN() }},
		{"factor rows beyond database", func(st *OptimizerState) { st.GPRows = len(st.X) + 1 }},
		{"factor length mismatch", func(st *OptimizerState) { st.GPFactor = st.GPFactor[:len(st.GPFactor)-1] }},
		{"non-positive diagonal", func(st *OptimizerState) { st.GPFactor[0] = 0 }},
		{"NaN diagonal", func(st *OptimizerState) { st.GPFactor[0] = math.NaN() }},
		{"bad length scale", func(st *OptimizerState) { st.GPLengthScale = -1 }},
	}
	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			if m.mut == nil {
				if _, err := NewOptimizerFromState(dom, cfg, nil); err == nil {
					t.Fatal("nil state accepted")
				}
				return
			}
			// Re-export so each mutation starts from a pristine deep copy.
			st := base.ExportState()
			m.mut(st)
			if _, err := NewOptimizerFromState(dom, cfg, st); err == nil {
				t.Fatal("corrupt state accepted")
			}
		})
	}
}
